// Crash vs Byzantine resilience: reproduces the paper's central comparison
// in one program. It trains the crash-tolerant baseline through a live
// primary crash (showing fail-over works), then subjects both the
// crash-tolerant baseline and the Byzantine-resilient MSMW deployment to the
// reversed-vectors attack — only the latter survives, which is the paper's
// Figure 5 in miniature.
//
// Each of the three parts is one scenario preset; the primary crash is a
// declarative fault-schedule entry ({"after": 75, "kind": "crash-server"})
// rather than hand-driven cluster surgery.
//
// Run with: go run ./examples/crashvsbyz
package main

import (
	"fmt"
	"log"

	"garfield"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func runPreset(name string) (*garfield.Result, error) {
	sp, err := garfield.ScenarioByName(name)
	if err != nil {
		return nil, err
	}
	return garfield.RunScenario(sp)
}

func run() error {
	// Part 1: crash fail-over. The fault schedule kills the primary at
	// iteration 75 of 150; the backup replica takes over.
	after, err := runPreset("crashvsbyz-failover")
	if err != nil {
		return err
	}
	fmt.Printf("crash-tolerant baseline, accuracy after primary crash + fail-over: %.4f\n",
		after.Accuracy.Last())

	// Part 2: the same crash-tolerant protocol under a Byzantine attack.
	crashUnderAttack, err := runPreset("crashvsbyz-attack")
	if err != nil {
		return err
	}

	// Part 3: Byzantine-resilient MSMW under the same attack.
	msmwUnderAttack, err := runPreset("crashvsbyz-msmw")
	if err != nil {
		return err
	}

	fmt.Printf("under reversed-vectors attack (1 Byzantine worker):\n")
	fmt.Printf("  crash-tolerant accuracy: %.4f   (crash tolerance is not enough)\n",
		crashUnderAttack.Accuracy.Last())
	fmt.Printf("  MSMW accuracy:           %.4f   (Byzantine resilience holds)\n",
		msmwUnderAttack.Accuracy.Last())
	return nil
}
