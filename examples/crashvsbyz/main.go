// Crash vs Byzantine resilience: reproduces the paper's central comparison
// in one program. It trains the crash-tolerant baseline through a live
// primary crash (showing fail-over works), then subjects both the
// crash-tolerant baseline and the Byzantine-resilient MSMW deployment to the
// reversed-vectors attack — only the latter survives, which is the paper's
// Figure 5 in miniature.
//
// Run with: go run ./examples/crashvsbyz
package main

import (
	"fmt"
	"log"

	"garfield"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func task() (garfield.Model, *garfield.Dataset, *garfield.Dataset, error) {
	train, test, err := garfield.GenerateDataset(garfield.SyntheticSpec{
		Name: "crashvsbyz", Dim: 64, Classes: 10,
		Train: 4000, Test: 1000,
		Separation: 0.45, Noise: 1.0, Seed: 4,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	arch, err := garfield.NewLinearSoftmax(64, 10)
	return arch, train, test, err
}

func run() error {
	arch, train, test, err := task()
	if err != nil {
		return err
	}
	base := garfield.Config{
		Arch: arch, Train: train, Test: test,
		BatchSize: 32,
		NW:        9, FW: 1,
		NPS: 4, FPS: 1,
		Rule: garfield.RuleMedian,
		LR:   garfield.ConstantLR(0.25),
		Seed: 4,
	}

	// Part 1: crash fail-over. Train halfway, kill the primary, continue.
	crashCfg := base
	crashCfg.FW, crashCfg.FPS = 0, 0
	crashCluster, err := garfield.NewCluster(crashCfg)
	if err != nil {
		return err
	}
	defer crashCluster.Close()
	if _, err := crashCluster.RunCrashTolerant(garfield.RunOptions{Iterations: 75}); err != nil {
		return err
	}
	crashCluster.CrashServer(0)
	after, err := crashCluster.RunCrashTolerant(garfield.RunOptions{Iterations: 75})
	if err != nil {
		return err
	}
	fmt.Printf("crash-tolerant baseline, accuracy after primary crash + fail-over: %.4f\n",
		after.Accuracy.Last())

	// Part 2: the same crash-tolerant protocol under a Byzantine attack.
	reversed, err := garfield.NewAttack(garfield.AttackReversed, nil)
	if err != nil {
		return err
	}
	atkCfg := base
	atkCfg.WorkerAttack = reversed
	atkCluster, err := garfield.NewCluster(atkCfg)
	if err != nil {
		return err
	}
	defer atkCluster.Close()
	crashUnderAttack, err := atkCluster.RunCrashTolerant(garfield.RunOptions{Iterations: 150})
	if err != nil {
		return err
	}

	// Part 3: Byzantine-resilient MSMW under the same attack.
	msmwCluster, err := garfield.NewCluster(atkCfg)
	if err != nil {
		return err
	}
	defer msmwCluster.Close()
	msmwUnderAttack, err := msmwCluster.RunMSMW(garfield.RunOptions{Iterations: 150})
	if err != nil {
		return err
	}

	fmt.Printf("under reversed-vectors attack (1 Byzantine worker):\n")
	fmt.Printf("  crash-tolerant accuracy: %.4f   (crash tolerance is not enough)\n",
		crashUnderAttack.Accuracy.Last())
	fmt.Printf("  MSMW accuracy:           %.4f   (Byzantine resilience holds)\n",
		msmwUnderAttack.Accuracy.Last())
	return nil
}
