// Decentralized learning: the paper's Listing 3 — peer-to-peer training
// with no parameter server, on non-IID data (each node sees only a couple of
// classes), using the multi-round contract step to pull the correct nodes'
// states together.
//
// Run with: go run ./examples/decentralized
package main

import (
	"fmt"
	"log"

	"garfield"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	train, test, err := garfield.GenerateDataset(garfield.SyntheticSpec{
		Name: "decentralized-demo", Dim: 64, Classes: 10,
		Train: 5000, Test: 1000,
		Separation: 0.45, Noise: 1.0, Seed: 3,
	})
	if err != nil {
		return err
	}
	arch, err := garfield.NewLinearSoftmax(64, 10)
	if err != nil {
		return err
	}

	// 6 peers, 1 Byzantine; every node owns a Server and a Worker
	// object (NPS == NW pairs them up). Data is sharded by label, so no
	// single node can learn the task alone.
	cluster, err := garfield.NewCluster(garfield.Config{
		Arch: arch, Train: train, Test: test,
		BatchSize: 32,
		NW:        6, FW: 1,
		NPS:           6,
		Rule:          garfield.RuleMedian,
		NonIID:        true,
		ContractSteps: 2,
		LR:            garfield.ConstantLR(0.25),
		Seed:          3,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	res, err := cluster.RunDecentralized(garfield.RunOptions{Iterations: 200, AccEvery: 25})
	if err != nil {
		return err
	}
	fmt.Println("decentralized learning on non-IID shards (each node holds ~2 classes):")
	for _, p := range res.Accuracy.Points {
		fmt.Printf("iteration %4.0f  accuracy %.4f\n", p.X, p.Y)
	}
	return nil
}
