// Decentralized learning: the paper's Listing 3 — peer-to-peer training
// with no parameter server, on non-IID data (each node sees only a couple of
// classes), using the multi-round contract step to pull the correct nodes'
// states together. The deployment is the "decentralized-demo" preset of the
// scenario engine.
//
// Run with: go run ./examples/decentralized
package main

import (
	"fmt"
	"log"

	"garfield"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 6 peers, 1 Byzantine; every node owns a Server and a Worker object.
	// Data is sharded by label, so no single node can learn the task
	// alone.
	sp, err := garfield.ScenarioByName("decentralized-demo")
	if err != nil {
		return err
	}
	res, err := garfield.RunScenario(sp)
	if err != nil {
		return err
	}
	fmt.Println("decentralized learning on non-IID shards (each node holds ~2 classes):")
	for _, p := range res.Accuracy.Points {
		fmt.Printf("iteration %4.0f  accuracy %.4f\n", p.X, p.Y)
	}
	return nil
}
