// MNIST_CNN: trains the paper's smallest Table-1 architecture family — a
// convolutional network on 28x28 images — through the Byzantine-resilient
// SSMW protocol, with one worker mounting the little-is-enough attack
// (stealthy collusion), the hardest published attack implemented here.
//
// Run with: go run ./examples/mnistcnn
package main

import (
	"fmt"
	"log"

	"garfield"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Synthetic MNIST: same 28x28x1 shape and 10 classes as the real
	// dataset (drop-in replaceable via the data loaders, see README).
	train, test, err := garfield.GenerateDataset(garfield.SyntheticSpec{
		Name: "synthetic-mnist", Dim: 28 * 28, Classes: 10,
		Train: 1200, Test: 400,
		Separation: 0.25, Noise: 0.5, Seed: 6,
	})
	if err != nil {
		return err
	}
	arch, err := garfield.NewMNISTCNN()
	if err != nil {
		return err
	}

	lie, err := garfield.NewAttack(garfield.AttackLittleIsEnough, garfield.NewRNG(6))
	if err != nil {
		return err
	}
	cluster, err := garfield.NewCluster(garfield.Config{
		Arch: arch, Train: train, Test: test,
		BatchSize: 16,
		NW:        5, FW: 1,
		Rule:         garfield.RuleMedian,
		WorkerAttack: lie,
		// The attacker estimates honest statistics from its own shard,
		// the strongest realistic adversary (no omniscience).
		AttackSelfPeers: 3,
		LR:              garfield.ConstantLR(0.1),
		Seed:            6,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	fmt.Printf("training MNIST_CNN (%d parameters) under the little-is-enough attack\n", arch.Dim())
	res, err := cluster.RunSSMW(garfield.RunOptions{Iterations: 60, AccEvery: 15})
	if err != nil {
		return err
	}
	for _, p := range res.Accuracy.Points {
		fmt.Printf("iteration %3.0f  accuracy %.4f\n", p.X, p.Y)
	}
	return nil
}
