// MNIST_CNN: trains the paper's smallest Table-1 architecture family — a
// convolutional network on 28x28 images — through the Byzantine-resilient
// SSMW protocol, with one worker mounting the little-is-enough attack
// (stealthy collusion), the hardest published attack implemented here. The
// deployment is the "mnistcnn-lie" preset of the scenario engine.
//
// Run with: go run ./examples/mnistcnn
package main

import (
	"fmt"
	"log"

	"garfield"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sp, err := garfield.ScenarioByName("mnistcnn-lie")
	if err != nil {
		return err
	}
	arch, err := garfield.NewMNISTCNN()
	if err != nil {
		return err
	}
	fmt.Printf("training MNIST_CNN (%d parameters) under the little-is-enough attack\n", arch.Dim())
	res, err := garfield.RunScenario(sp)
	if err != nil {
		return err
	}
	for _, p := range res.Accuracy.Points {
		fmt.Printf("iteration %3.0f  accuracy %.4f\n", p.X, p.Y)
	}
	return nil
}
