// MSMW: the paper's Listing 2 — replicated parameter servers tolerating
// Byzantine servers as well as Byzantine workers, demonstrated under live
// attack: Byzantine workers reverse and amplify their gradients (x -100) and
// a Byzantine server serves random models. Vanilla averaging collapses under
// this attack; the Garfield deployment converges.
//
// Both runs derive from the "msmw-demo" scenario preset — the baseline is
// the same spec with its topology flipped to vanilla, which is the whole
// point of declarative scenarios.
//
// Run with: go run ./examples/msmw
package main

import (
	"fmt"
	"log"

	"garfield"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sp, err := garfield.ScenarioByName("msmw-demo")
	if err != nil {
		return err
	}

	// Byzantine-resilient deployment under attack.
	robust, err := garfield.RunScenario(sp)
	if err != nil {
		return err
	}

	// The same attack against the vanilla (averaging) baseline.
	vanillaSpec := sp
	vanillaSpec.Topology = "vanilla"
	vanilla, err := garfield.RunScenario(vanillaSpec)
	if err != nil {
		return err
	}

	fmt.Println("accuracy under attack (1 Byzantine worker x(-100), 1 Byzantine server):")
	fmt.Printf("%-12s %-10s %s\n", "iteration", "MSMW", "vanilla")
	for i, p := range robust.Accuracy.Points {
		v := 0.0
		if i < len(vanilla.Accuracy.Points) {
			v = vanilla.Accuracy.Points[i].Y
		}
		fmt.Printf("%-12.0f %-10.4f %.4f\n", p.X, p.Y, v)
	}
	return nil
}
