// MSMW: the paper's Listing 2 — replicated parameter servers tolerating
// Byzantine servers as well as Byzantine workers, demonstrated under live
// attack: Byzantine workers reverse and amplify their gradients (x -100) and
// a Byzantine server serves random models. Vanilla averaging collapses under
// this attack; the Garfield deployment converges.
//
// Run with: go run ./examples/msmw
package main

import (
	"fmt"
	"log"

	"garfield"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	train, test, err := garfield.GenerateDataset(garfield.SyntheticSpec{
		Name: "msmw-demo", Dim: 64, Classes: 10,
		Train: 4000, Test: 1000,
		Separation: 0.45, Noise: 1.0, Seed: 2,
	})
	if err != nil {
		return err
	}
	arch, err := garfield.NewLinearSoftmax(64, 10)
	if err != nil {
		return err
	}

	reversed, err := garfield.NewAttack(garfield.AttackReversed, nil)
	if err != nil {
		return err
	}
	random, err := garfield.NewAttack(garfield.AttackRandom, garfield.NewRNG(99))
	if err != nil {
		return err
	}

	cfg := garfield.Config{
		Arch: arch, Train: train, Test: test,
		BatchSize: 32,
		NW:        11, FW: 1,
		NPS: 4, FPS: 1,
		Rule:         garfield.RuleMultiKrum,
		SyncQuorum:   true,
		WorkerAttack: reversed,
		ServerAttack: random,
		LR:           garfield.ConstantLR(0.25),
		Seed:         2,
	}

	// Byzantine-resilient deployment under attack.
	cluster, err := garfield.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer cluster.Close()
	robust, err := cluster.RunMSMW(garfield.RunOptions{Iterations: 150, AccEvery: 25})
	if err != nil {
		return err
	}

	// The same attack against the vanilla (averaging) baseline.
	vanillaCluster, err := garfield.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer vanillaCluster.Close()
	vanilla, err := vanillaCluster.RunVanilla(garfield.RunOptions{Iterations: 150, AccEvery: 25})
	if err != nil {
		return err
	}

	fmt.Println("accuracy under attack (1 Byzantine worker x(-100), 1 Byzantine server):")
	fmt.Printf("%-12s %-10s %s\n", "iteration", "MSMW", "vanilla")
	for i, p := range robust.Accuracy.Points {
		v := 0.0
		if i < len(vanilla.Accuracy.Points) {
			v = vanilla.Accuracy.Points[i].Y
		}
		fmt.Printf("%-12.0f %-10.4f %.4f\n", p.X, p.Y, v)
	}
	return nil
}
