// Quickstart: the paper's Listing 1 — a single trusted server and multiple
// workers, some of which are Byzantine, trained with a statistically-robust
// gradient aggregation rule (SSMW).
//
// The deployment is the "quickstart" preset of the declarative scenario
// engine: one spec instead of hand-wired cluster setup. Print it with
//
//	garfield-scenarios describe quickstart
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"garfield"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The preset bundles the synthetic MNIST-like task, 9 workers of
	// which up to 2 Byzantine, and Multi-Krum aggregation; tweak any field
	// before running (it is a plain value).
	sp, err := garfield.ScenarioByName("quickstart")
	if err != nil {
		return err
	}

	// The training loop of Listing 1 — get_gradients, aggregate,
	// update_model, compute_accuracy — driven by the scenario engine.
	res, err := garfield.RunScenario(sp)
	if err != nil {
		return err
	}
	for _, p := range res.Accuracy.Points {
		fmt.Printf("iteration %4.0f  accuracy %.4f\n", p.X, p.Y)
	}
	fmt.Printf("throughput: %.1f updates/sec\n", res.UpdatesPerSec())
	return nil
}
