// Quickstart: the paper's Listing 1 — a single trusted server and multiple
// workers, some of which are Byzantine, trained with a statistically-robust
// gradient aggregation rule (SSMW).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"garfield"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A synthetic MNIST-like task (the repository substitutes deterministic
	// Gaussian mixtures for the real datasets; see DESIGN.md).
	train, test, err := garfield.GenerateDataset(garfield.SyntheticSpec{
		Name: "quickstart", Dim: 64, Classes: 10,
		Train: 4000, Test: 1000,
		Separation: 0.45, Noise: 1.0, Seed: 1,
	})
	if err != nil {
		return err
	}
	arch, err := garfield.NewLinearSoftmax(64, 10)
	if err != nil {
		return err
	}

	// 9 workers, up to 2 of them Byzantine, aggregated with Multi-Krum.
	cluster, err := garfield.NewCluster(garfield.Config{
		Arch: arch, Train: train, Test: test,
		BatchSize: 32,
		NW:        9, FW: 2,
		Rule: garfield.RuleMultiKrum,
		LR:   garfield.ConstantLR(0.25),
		Seed: 1,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// The training loop of Listing 1 — get_gradients, aggregate,
	// update_model, compute_accuracy — packaged as RunSSMW.
	res, err := cluster.RunSSMW(garfield.RunOptions{Iterations: 150, AccEvery: 25})
	if err != nil {
		return err
	}
	for _, p := range res.Accuracy.Points {
		fmt.Printf("iteration %4.0f  accuracy %.4f\n", p.X, p.Y)
	}
	fmt.Printf("throughput: %.1f updates/sec\n", res.UpdatesPerSec())
	return nil
}
