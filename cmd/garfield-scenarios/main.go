// Command garfield-scenarios is the CLI front end of the declarative
// scenario engine (internal/scenario): it lists and describes the named
// presets reproducing the paper's headline configurations, runs a single
// scenario from a preset, a JSON file or flag overrides, and executes
// scenario sweeps (cartesian matrices of topologies x GARs x attacks x f
// values) with CSV + JSON artifacts.
//
// Usage:
//
//	garfield-scenarios list
//	garfield-scenarios describe <preset>
//	garfield-scenarios run [-preset name | -spec file.json] [overrides] [-format table|csv]
//	garfield-scenarios sweep [-preset name | -spec file.json] -topologies a,b -rules c,d -attacks e,f [-fws 1,2] [-out dir] [-timing]
//	garfield-scenarios sim [-n 5000] [-fw 500] [-replicas 20] [-topology msmw] [-rule median] [-iters 10] [-latency-ms 1] [-jitter-ms 0.2] [-bandwidth-mbps 0] [-seed n] [-out dir]
//	garfield-scenarios chaos [-preset chaos-name] [-quick] [-seed n]
//
// The sim command runs one deployment on the discrete-event cluster
// simulator (internal/sim): thousands of nodes in one process on a virtual
// clock, reporting step-latency p50/p99 and rounds per simulated second.
// At a fixed seed the run — timing included — is bit-identical across
// hosts; -out writes the standard sweep artifacts (curve CSV, summary.csv,
// sweep.json) with the sim columns filled.
//
// Run overrides (zero values keep the loaded spec's setting): -topology,
// -rule, -attack, -nw, -fw, -nps, -fps, -iters, -acc-every, -seed, -async,
// -staleness-bound, -compress (gradient codec: fp64/none, fp16, int8, topk),
// -topk (top-k coordinate budget). Runs report a wire line with pull-reply
// bytes shipped and bytes saved against the fp64 baseline.
//
// A sweep at a fixed seed without -timing produces bit-identical artifacts
// across runs; -timing adds the wall-clock columns, which naturally vary.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"garfield/internal/chaos"
	"garfield/internal/metrics"
	"garfield/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "garfield-scenarios:", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: garfield-scenarios <command> [flags]

commands:
  list                 list the named scenario presets
  describe <preset>    print a preset's full spec as JSON
  run                  run one scenario (preset, JSON file, or flag overrides)
  sweep                expand and run a scenario matrix, emitting artifacts
  sim                  run one deployment on the discrete-event cluster simulator
  chaos                run the chaos presets under their resilience invariants

run 'garfield-scenarios <command> -h' for command flags`)
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		usage(out)
		return fmt.Errorf("a command is required")
	}
	switch args[0] {
	case "list":
		return runList(out)
	case "describe":
		return runDescribe(args[1:], out)
	case "run":
		return runRun(args[1:], out)
	case "sweep":
		return runSweep(args[1:], out)
	case "sim":
		return runSim(args[1:], out)
	case "chaos":
		return runChaos(args[1:], out)
	case "-h", "-help", "--help", "help":
		usage(out)
		return nil
	}
	usage(out)
	return fmt.Errorf("unknown command %q", args[0])
}

func runList(out io.Writer) error {
	for _, name := range scenario.Names() {
		desc, err := scenario.Describe(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-28s %s\n", name, desc)
	}
	return nil
}

func runDescribe(args []string, out io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: garfield-scenarios describe <preset>")
	}
	sp, err := scenario.ByName(args[0])
	if err != nil {
		return err
	}
	return sp.EncodeJSON(out)
}

// loadSpec resolves the -preset/-spec pair shared by run and sweep.
func loadSpec(preset, specFile string) (scenario.Spec, error) {
	if preset != "" && specFile != "" {
		return scenario.Spec{}, fmt.Errorf("-preset and -spec are mutually exclusive")
	}
	if specFile != "" {
		f, err := os.Open(specFile)
		if err != nil {
			return scenario.Spec{}, err
		}
		defer f.Close()
		return scenario.DecodeJSON(f)
	}
	if preset == "" {
		return scenario.Spec{}, fmt.Errorf("one of -preset or -spec is required")
	}
	return scenario.ByName(preset)
}

func runRun(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("garfield-scenarios run", flag.ContinueOnError)
	preset := fs.String("preset", "", "named preset to run (see list)")
	specFile := fs.String("spec", "", "JSON spec file to run")
	format := fs.String("format", "table", "output format: table or csv")
	topology := fs.String("topology", "", "override topology")
	rule := fs.String("rule", "", "override the GAR")
	atk := fs.String("attack", "", "override the worker attack (none clears it)")
	nw := fs.Int("nw", 0, "override total workers")
	fw := fs.Int("fw", -1, "override Byzantine workers")
	nps := fs.Int("nps", 0, "override server replicas")
	fps := fs.Int("fps", -1, "override Byzantine servers")
	iters := fs.Int("iters", 0, "override iterations")
	accEvery := fs.Int("acc-every", -1, "override accuracy-measurement period")
	seed := fs.Uint64("seed", 0, "override the cluster seed")
	async := fs.Bool("async", false, "run the bounded-staleness async engine (ssmw, msmw)")
	stalenessBound := fs.Int("staleness-bound", 0, "override the async staleness bound tau (0: core default)")
	compressCodec := fs.String("compress", "", "override the gradient codec: fp64/none, fp16, int8, topk")
	topK := fs.Int("topk", 0, "override the top-k coordinate budget (with -compress topk)")
	shards := fs.Int("shards", 0, "override the shard count (sharded topology)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	sp, err := loadSpec(*preset, *specFile)
	if err != nil {
		return err
	}
	if *topology != "" {
		sp.Topology = *topology
	}
	if *rule != "" {
		sp.Rule = *rule
	}
	if *atk != "" {
		if *atk == "none" {
			sp.WorkerAttack = scenario.AttackSpec{}
		} else {
			sp.WorkerAttack.Name = *atk
		}
	}
	if *nw > 0 {
		sp.NW = *nw
	}
	if *fw >= 0 {
		sp.FW = *fw
	}
	if *nps > 0 {
		sp.NPS = *nps
	}
	if *fps >= 0 {
		sp.FPS = *fps
	}
	if *iters > 0 {
		sp.Iterations = *iters
	}
	if *accEvery >= 0 {
		sp.AccEvery = *accEvery
	}
	if *seed != 0 {
		sp.Seed = *seed
	}
	if *async {
		sp.Async = true
	}
	if *stalenessBound > 0 {
		sp.StalenessBound = *stalenessBound
	}
	if *compressCodec != "" {
		sp.Compression = *compressCodec
		if sp.Compression == "none" || sp.Compression == "fp64" {
			sp.Compression = ""
		}
		if sp.Compression != "topk" {
			// A top-k budget inherited from the loaded spec only makes
			// sense for the top-k codec; clear it so overriding a topk
			// preset with a dense codec validates.
			sp.TopK = 0
		}
	}
	if *topK > 0 {
		sp.TopK = *topK
	}
	if *shards > 0 {
		sp.Shards = *shards
	}

	res, err := scenario.Run(sp)
	if err != nil {
		return err
	}
	name := sp.Name
	if name == "" {
		name = sp.Topology
	}
	fig := &metrics.Figure{
		Title:  fmt.Sprintf("%s: %s x %s (nw=%d fw=%d)", name, sp.Topology, sp.Rule, sp.NW, sp.FW),
		XLabel: "iteration", YLabel: "accuracy",
	}
	s := fig.AddSeries("accuracy")
	s.Points = append(s.Points, res.Accuracy.Points...)
	switch *format {
	case "table":
		if err := fig.Render(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "final accuracy %.4f after %d updates (%.1f updates/sec)\n",
			res.Accuracy.Last(), res.Updates, res.UpdatesPerSec())
		if sp.Async {
			fmt.Fprintf(out, "avg staleness %.2f steps, %d gradients dropped beyond the bound\n",
				res.AvgStaleness, res.StaleDrops)
		}
		if w := res.Wire; w.Replies > 0 {
			saved := int64(w.ReplyFP64Bytes) - int64(w.ReplyPayloadBytes)
			codec := sp.Compression
			if codec == "" {
				codec = "fp64"
			}
			fmt.Fprintf(out, "wire: %d pull replies, %.1f KB shipped (%s), %.1f KB saved vs fp64 (%.2fx)\n",
				w.Replies, float64(w.ReplyPayloadBytes)/1024, codec,
				float64(saved)/1024, w.ReplyCompressionRatio())
		}
		if sp.Topology == scenario.TopoSharded {
			fmt.Fprintf(out, "sharded: %d committed rounds, %d aborted, %d failovers; %d shard pulls, %.1f KB ranged replies\n",
				res.ShardRounds, res.ShardAborts, res.ShardFailovers,
				res.Wire.ShardPulls, float64(res.Wire.ShardReplyBytes)/1024)
		}
		return nil
	case "csv":
		return fig.RenderCSV(out)
	}
	return fmt.Errorf("unknown format %q (want table or csv)", *format)
}

func runSweep(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("garfield-scenarios sweep", flag.ContinueOnError)
	preset := fs.String("preset", "sweep-default", "preset used as the sweep base")
	specFile := fs.String("spec", "", "JSON spec file used as the sweep base")
	name := fs.String("name", "", "sweep name in the report")
	topologies := fs.String("topologies", "", "comma-separated topologies to sweep")
	rules := fs.String("rules", "", "comma-separated GARs to sweep")
	attacks := fs.String("attacks", "", "comma-separated worker attacks to sweep (none = honest)")
	fws := fs.String("fws", "", "comma-separated Byzantine worker counts to sweep")
	iters := fs.Int("iters", 0, "override base iterations")
	seed := fs.Uint64("seed", 0, "override the base seed")
	outDir := fs.String("out", "", "artifact directory (per-cell CSVs, summary.csv, sweep.json)")
	parallel := fs.Int("parallel", 0, "max concurrently-running cells (0: GOMAXPROCS)")
	timing := fs.Bool("timing", false, "include wall-clock columns (non-deterministic run to run)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	basePreset := *preset
	if *specFile != "" {
		basePreset = "" // an explicit spec file wins over the preset default
	}
	base, err := loadSpec(basePreset, *specFile)
	if err != nil {
		return err
	}
	if *iters > 0 {
		base.Iterations = *iters
	}
	if *seed != 0 {
		base.Seed = *seed
	}
	m := scenario.Matrix{
		Name:       *name,
		Base:       base,
		Topologies: splitList(*topologies),
		Rules:      splitList(*rules),
		Attacks:    splitList(*attacks),
		FWs:        nil,
	}
	for _, s := range splitList(*fws) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("bad -fws entry %q: %w", s, err)
		}
		m.FWs = append(m.FWs, v)
	}

	rep, err := scenario.RunSweep(m, scenario.SweepOptions{
		Parallel: *parallel, OutDir: *outDir, Timing: *timing,
	})
	if err != nil {
		return err
	}

	t := &metrics.Table{
		Title:  fmt.Sprintf("Sweep: %d cells (seed %d)", len(rep.Cells), rep.Seed),
		Header: []string{"cell", "status", "final acc", "max acc", "updates"},
	}
	failures := 0
	for _, c := range rep.Cells {
		status := c.Status
		if c.Status != "ok" {
			failures++
			status = "error: " + c.Error
		}
		t.AddRow(c.ID, status,
			fmt.Sprintf("%.4f", c.FinalAccuracy),
			fmt.Sprintf("%.4f", c.MaxAccuracy),
			strconv.Itoa(c.Updates))
	}
	if err := t.Render(out); err != nil {
		return err
	}
	if *outDir != "" {
		fmt.Fprintf(out, "artifacts written to %s\n", *outDir)
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d cells failed", failures, len(rep.Cells))
	}
	return nil
}

// runSim runs one deployment on the discrete-event simulator. The learning
// task is a fixed small linear-softmax problem sized to the worker count
// (every worker gets a shard), because at simulator scale the question is
// protocol throughput and robustness versus n, f, codec and staleness — not
// the task. The run goes through the sweep runner as a single-cell matrix,
// so -out emits exactly the standard artifact set.
func runSim(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("garfield-scenarios sim", flag.ContinueOnError)
	n := fs.Int("n", 5000, "total simulated workers")
	fw := fs.Int("fw", 500, "Byzantine (reversed) workers among them")
	replicas := fs.Int("replicas", 20, "server replicas (msmw topology)")
	topology := fs.String("topology", "msmw", "topology: vanilla, ssmw, aggregathor, msmw")
	rule := fs.String("rule", "median", "gradient GAR")
	iters := fs.Int("iters", 10, "training iterations")
	latency := fs.Float64("latency-ms", 1.0, "base one-way link latency (virtual ms)")
	jitter := fs.Float64("jitter-ms", 0.2, "per-message uniform jitter bound (virtual ms)")
	bandwidth := fs.Float64("bandwidth-mbps", 0, "per-link bandwidth in MB/s (0: infinite)")
	async := fs.Bool("async", false, "run the deterministic async replay (ssmw only)")
	stalenessBound := fs.Int("staleness-bound", 0, "async staleness bound tau (0: core default)")
	compressCodec := fs.String("compress", "", "gradient codec: fp16, int8, topk")
	topK := fs.Int("topk", 0, "top-k coordinate budget (with -compress topk)")
	seed := fs.Uint64("seed", 20210, "base seed (artifacts are bit-identical per seed)")
	outDir := fs.String("out", "", "artifact directory (curve CSV, summary.csv, sweep.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	sp := scenario.Spec{
		Name:     "sim",
		Topology: *topology,
		NW:       *n, FW: *fw,
		Rule:          *rule,
		Deterministic: true,
		Engine:        scenario.EngineSim,
		SimLatencyMS:  *latency,
		SimJitterMS:   *jitter, SimBandwidthMBps: *bandwidth,
		Compression: *compressCodec, TopK: *topK,
		Model: scenario.ModelSpec{Kind: scenario.ModelLinear, In: 16, Classes: 4},
		Dataset: scenario.DatasetSpec{
			Name: "sim-scale", Dim: 16, Classes: 4,
			Train: 2 * *n, Test: 64,
			Separation: 1.0, Noise: 0.2, Seed: 1,
		},
		BatchSize: 2,
		Seed:      *seed, Iterations: *iters,
	}
	if *fw > 0 {
		sp.WorkerAttack = scenario.AttackSpec{Name: "reversed"}
	}
	if *topology == scenario.TopoMSMW {
		sp.NPS = *replicas
		sp.SyncQuorum = true
	}
	if *async {
		sp.Async = true
		sp.SyncQuorum = false
		sp.StalenessBound = *stalenessBound
	}

	rep, err := scenario.RunSweep(scenario.Matrix{Name: "sim", Base: sp},
		scenario.SweepOptions{OutDir: *outDir})
	if err != nil {
		return err
	}
	c := rep.Cells[0]
	if c.Status != "ok" {
		return fmt.Errorf("sim run failed: %s", c.Error)
	}
	fmt.Fprintf(out, "sim: %s nw=%d fw=%d", c.Topology, c.NW, c.FW)
	if sp.NPS > 0 {
		fmt.Fprintf(out, " replicas=%d", sp.NPS)
	}
	fmt.Fprintf(out, " seed=%d\n", c.Seed)
	fmt.Fprintf(out, "updates %d, final accuracy %.4f\n", c.Updates, c.FinalAccuracy)
	fmt.Fprintf(out, "step latency p50 %.3f ms, p99 %.3f ms; %.2f rounds/virtual-sec\n",
		c.SimStepP50MS, c.SimStepP99MS, c.SimRoundsPerSec)
	if *outDir != "" {
		fmt.Fprintf(out, "artifacts written to %s\n", *outDir)
	}
	return nil
}

// runChaos executes the chaos invariant harness: every chaos preset (or one
// named with -preset) runs under a seeded fault program and its machine-
// checked resilience properties; any failed invariant makes the command exit
// non-zero.
func runChaos(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("garfield-scenarios chaos", flag.ContinueOnError)
	preset := fs.String("preset", "", "run one chaos preset (default: all)")
	quick := fs.Bool("quick", false, "shrink runs ~3x for a fast smoke pass")
	seed := fs.Uint64("seed", 0, "override preset seeds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	opt := chaos.Options{Quick: *quick, Seed: *seed}
	var reports []*chaos.Report
	if *preset != "" {
		rep, err := chaos.Run(*preset, opt)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	} else {
		var err error
		if reports, err = chaos.RunAll(opt); err != nil {
			return err
		}
	}

	t, failed := chaos.ReportTable("Chaos invariants", reports)
	if err := t.Render(out); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d chaos invariants failed", failed)
	}
	fmt.Fprintf(out, "all %d invariants held across %d presets\n", rows(reports), len(reports))
	return nil
}

// rows counts invariant verdicts across reports.
func rows(reports []*chaos.Report) int {
	n := 0
	for _, rep := range reports {
		n += len(rep.Checks)
	}
	return n
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
