package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"garfield/internal/scenario"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"quickstart", "msmw-demo", "sweep-default"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("list output missing preset %q", want)
		}
	}
}

func TestDescribeEmitsValidSpec(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"describe", "quickstart"}, &buf); err != nil {
		t.Fatal(err)
	}
	sp, err := scenario.DecodeJSON(&buf)
	if err != nil {
		t.Fatalf("describe output is not a decodable spec: %v", err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("described spec fails validation: %v", err)
	}
}

func TestDescribeUnknown(t *testing.T) {
	if err := run([]string{"describe", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("want error for unknown preset")
	}
}

func TestUnknownCommand(t *testing.T) {
	if err := run([]string{"frobnicate"}, &bytes.Buffer{}); err == nil {
		t.Fatal("want error for unknown command")
	}
}

// tinySpecFile writes a fast-running spec to disk and returns its path.
func tinySpecFile(t *testing.T) string {
	t.Helper()
	sp := scenario.Spec{
		Name:     "tiny",
		Topology: scenario.TopoSSMW,
		NW:       5, FW: 1,
		NPS:        3,
		Rule:       "median",
		SyncQuorum: true, Deterministic: true,
		Model:     scenario.ModelSpec{Kind: scenario.ModelLinear, In: 8, Classes: 4},
		Dataset:   scenario.DatasetSpec{Name: "t", Dim: 8, Classes: 4, Train: 120, Test: 40, Separation: 1, Noise: 1, Seed: 2},
		BatchSize: 8,
		Seed:      2, Iterations: 4, AccEvery: 2,
	}
	path := filepath.Join(t.TempDir(), "tiny.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := sp.EncodeJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFromSpecFileWithOverrides(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"run", "-spec", tinySpecFile(t), "-iters", "3", "-rule", "krum", "-format", "csv"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "iteration,accuracy") {
		t.Errorf("csv output missing header: %q", out)
	}
}

// TestRunCompressOverride: the -compress override enables the codec on any
// preset and the run reports the wire line with bytes saved vs fp64.
func TestRunCompressOverride(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"run", "-spec", tinySpecFile(t), "-iters", "3", "-compress", "int8"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "saved vs fp64") || !strings.Contains(out, "(int8)") {
		t.Errorf("run output missing the wire accounting line: %q", out)
	}
}

// TestRunCompressOverrideClearsStaleTopK: overriding a topk preset with a
// dense codec must drop the inherited top-k budget, or validation rejects
// the pairing.
func TestRunCompressOverrideClearsStaleTopK(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"run", "-preset", "compress-topk", "-iters", "3", "-compress", "int8"}, &buf)
	if err != nil {
		t.Fatalf("int8 override on the topk preset rejected: %v", err)
	}
	if !strings.Contains(buf.String(), "(int8)") {
		t.Errorf("override did not take effect: %q", buf.String())
	}
}

// TestRunTopKOverride: -compress topk needs -topk, and validation rejects a
// missing budget loudly.
func TestRunTopKOverride(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"run", "-spec", tinySpecFile(t), "-iters", "3", "-compress", "topk"}, &buf); err == nil {
		t.Fatal("topk without -topk accepted")
	}
	buf.Reset()
	if err := run([]string{"run", "-spec", tinySpecFile(t), "-iters", "3", "-compress", "topk", "-topk", "8"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(topk)") {
		t.Errorf("run output missing topk wire line: %q", buf.String())
	}
}

func TestSweepArtifacts(t *testing.T) {
	outDir := filepath.Join(t.TempDir(), "artifacts")
	var buf bytes.Buffer
	err := run([]string{"sweep", "-spec", tinySpecFile(t),
		"-topologies", "ssmw,msmw", "-rules", "median,krum", "-out", outDir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(outDir, "sweep.json"))
	if err != nil {
		t.Fatalf("sweep.json not written: %v", err)
	}
	var rep scenario.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("sweep.json not parseable: %v", err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Status != "ok" {
			t.Errorf("cell %s failed: %s", c.ID, c.Error)
		}
	}
	if _, err := os.Stat(filepath.Join(outDir, "summary.csv")); err != nil {
		t.Errorf("summary.csv not written: %v", err)
	}
}

// TestSimCommand runs a small deployment on the discrete-event engine and
// checks the step-latency/throughput report plus the artifact set with the
// sim columns.
func TestSimCommand(t *testing.T) {
	outDir := filepath.Join(t.TempDir(), "sim")
	var buf bytes.Buffer
	err := run([]string{"sim", "-n", "100", "-fw", "10", "-replicas", "3",
		"-iters", "3", "-out", outDir}, &buf)
	if err != nil {
		t.Fatalf("sim command failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"step latency p50", "rounds/virtual-sec", "updates 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("sim output missing %q:\n%s", want, out)
		}
	}
	summary, err := os.ReadFile(filepath.Join(outDir, "summary.csv"))
	if err != nil {
		t.Fatalf("summary.csv not written: %v", err)
	}
	if !strings.Contains(string(summary), "sim_step_p50_ms") {
		t.Errorf("summary.csv missing sim columns:\n%s", summary)
	}
}

func TestChaosCommandSinglePreset(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"chaos", "-preset", "chaos-corrupt-link", "-quick"}, &buf); err != nil {
		t.Fatalf("chaos command failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"chaos-corrupt-link", "corruption-rejected", "PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("an invariant failed:\n%s", out)
	}
}

func TestChaosCommandRejectsUnknownPreset(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"chaos", "-preset", "chaos-imaginary"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "unknown chaos preset") {
		t.Fatalf("err = %v", err)
	}
}
