// Command garfield-controller deploys a whole cluster from a JSON manifest —
// the paper's Controller module (Section 3.2). It validates the manifest
// (including GAR resilience preconditions), prints the per-node launch plan,
// and with -run starts every node as a local child process, streaming their
// output until the servers finish.
//
// Usage:
//
//	garfield-controller [-run] [-node-binary path] manifest.json
//
// Without -run it only prints the launch plan (the commands one would run on
// each host of a real multi-machine deployment).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"garfield/internal/controller"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "garfield-controller:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("garfield-controller", flag.ContinueOnError)
	launch := fs.Bool("run", false, "launch the cluster as local child processes")
	binary := fs.String("node-binary", "garfield-node", "path to the garfield-node executable")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: garfield-controller [-run] [-node-binary path] manifest.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one manifest file expected")
	}
	raw, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	m, err := controller.Parse(raw)
	if err != nil {
		return err
	}

	fmt.Printf("launch plan: %s, %d workers (fw=%d), %d servers (fps=%d), rule=%s\n",
		m.Protocol, len(m.Workers), m.FW, len(m.Servers), m.FPS, m.Rule)
	for _, c := range m.Commands() {
		fmt.Printf("  [%s @ %s] garfield-node %s\n", c.Role, c.Addr, strings.Join(c.Args, " "))
	}
	if !*launch {
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	l := controller.Launcher{Binary: *binary, Stdout: os.Stdout, Stderr: os.Stderr}
	return l.Run(ctx, m)
}
