// Command measure-variance is the Go port of the paper's
// measure_variance.py tool (Section 3.1): it checks empirically whether a
// deployment satisfies the variance condition each GAR's resilience proof
// requires,
//
//	kappa * Delta(GAR) * sqrt(E ||g_i - E g_i||^2)  <=  ||grad L||,
//
// by running a few training steps, estimating the true gradient with a huge
// batch, and reporting how often the condition held for each rule.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"garfield/internal/data"
	"garfield/internal/gar"
	"garfield/internal/model"
	"garfield/internal/sgd"
	"garfield/internal/tensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "measure-variance:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("measure-variance", flag.ContinueOnError)
	n := fs.Int("n", 10, "number of workers")
	f := fs.Int("f", 2, "declared Byzantine workers")
	batch := fs.Int("batch", 32, "per-worker mini-batch size")
	steps := fs.Int("steps", 20, "training steps to sample")
	dim := fs.Int("dim", 64, "feature dimension of the synthetic task")
	classes := fs.Int("classes", 10, "classes of the synthetic task")
	seed := fs.Uint64("seed", 1, "random seed")
	momentum := fs.Float64("momentum", 0, "worker-side momentum (variance reduction; 0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 || *f < 0 || *f >= *n {
		return fmt.Errorf("invalid n=%d f=%d", *n, *f)
	}

	train, _, err := data.Generate(data.SyntheticSpec{
		Name: "variance-probe", Dim: *dim, Classes: *classes,
		Train: max(2000, *n**batch*4), Test: 10,
		Separation: 1.0, Noise: 1.0, Seed: *seed,
	})
	if err != nil {
		return err
	}
	arch, err := model.NewLinearSoftmax(*dim, *classes)
	if err != nil {
		return err
	}
	shards, err := data.PartitionIID(train, *n, *seed)
	if err != nil {
		return err
	}
	samplers := make([]*data.Sampler, *n)
	for i := range samplers {
		if samplers[i], err = data.NewSampler(shards[i], *seed+uint64(i)); err != nil {
			return err
		}
	}

	params := arch.InitParams(tensor.NewRNG(*seed))
	opt, err := sgd.New(sgd.Constant(0.1))
	if err != nil {
		return err
	}
	// The "true" gradient is estimated with the whole training set, the
	// tool's huge-batch stand-in.
	allIdx := make([]int, train.Len())
	for i := range allIdx {
		allIdx[i] = i
	}
	fullBatch := train.Batch(allIdx)

	if *momentum < 0 || *momentum >= 1 {
		return fmt.Errorf("invalid momentum %v", *momentum)
	}
	// Worker-side momentum state (one velocity per worker): the paper's
	// Section 8 notes that variance-reduction techniques like distributed
	// momentum "help restore the resilience guarantees of such GARs"; the
	// -momentum flag lets this tool demonstrate exactly that effect on the
	// measured ratios.
	velocities := make([]tensor.Vector, *n)

	rules := []string{gar.NameMDA, gar.NameKrum, gar.NameMedian}
	satisfied := make(map[string]int, len(rules))
	fmt.Fprintf(out, "step  %-8s %-8s %-8s   (ratio = ||grad L|| / (Delta * stddev); condition holds when > 1)\n",
		rules[0], rules[1], rules[2])
	for step := 0; step < *steps; step++ {
		grads := make([]tensor.Vector, *n)
		for i := 0; i < *n; i++ {
			g, err := arch.Gradient(params, samplers[i].Next(*batch))
			if err != nil {
				return err
			}
			if *momentum > 0 {
				if velocities[i] == nil {
					velocities[i] = tensor.New(len(g))
				}
				for c := range g {
					velocities[i][c] = *momentum*velocities[i][c] + g[c]
				}
				g = velocities[i].Clone()
				// The smoothed gradient approximates 1/(1-mu) times
				// the true gradient at steady state; rescale so the
				// ratio stays comparable across momentum settings.
				g.ScaleInPlace(1 - *momentum)
			}
			grads[i] = g
		}
		trueGrad, err := arch.Gradient(params, fullBatch)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%4d ", step)
		for _, rule := range rules {
			rep, err := gar.CheckVarianceCondition(rule, *f, grads, trueGrad)
			if err != nil {
				return err
			}
			if rep.Satisfied {
				satisfied[rule]++
			}
			fmt.Fprintf(out, " %8.3f", rep.Ratio)
		}
		fmt.Fprintln(out)
		if err := opt.Apply(params, trueGrad); err != nil {
			return err
		}
	}
	fmt.Fprintln(out)
	for _, rule := range rules {
		fmt.Fprintf(out, "%-8s condition satisfied in %d/%d steps\n", rule, satisfied[rule], *steps)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
