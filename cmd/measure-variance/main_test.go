package main

import (
	"fmt"
	"strings"
	"testing"
)

func TestMeasureVariance(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "8", "-f", "1", "-steps", "5", "-dim", "16", "-classes", "3", "-batch", "16"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mda", "krum", "median", "condition satisfied in"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// 5 sampled steps plus headers and summary.
	if strings.Count(out, "\n") < 9 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestMeasureVarianceInvalidConfig(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "2", "-f", "3"}, &sb); err == nil {
		t.Fatal("expected error for f >= n")
	}
	if err := run([]string{"-momentum", "1.5"}, &sb); err == nil {
		t.Fatal("expected error for momentum >= 1")
	}
}

// TestMomentumRestoresCondition checks the Section 8 claim this tool
// demonstrates: worker-side momentum (variance reduction) raises the
// measured ratios, satisfying the GAR condition in more steps.
func TestMomentumRestoresCondition(t *testing.T) {
	satisfiedCount := func(extra ...string) int {
		args := append([]string{"-n", "10", "-f", "3", "-steps", "8"}, extra...)
		var sb strings.Builder
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		out := sb.String()
		// "median" also appears in the header; the summary line is last.
		idx := strings.LastIndex(out, "median")
		if idx < 0 {
			t.Fatalf("missing summary:\n%s", out)
		}
		// Line shape: "median   condition satisfied in N/M steps".
		var n, total int
		line := out[idx:]
		if _, err := fmt.Sscanf(line, "median condition satisfied in %d/%d steps", &n, &total); err != nil {
			t.Fatalf("cannot parse %q: %v", line, err)
		}
		return n
	}
	raw := satisfiedCount()
	smoothed := satisfiedCount("-momentum", "0.9")
	if smoothed <= raw {
		t.Fatalf("momentum did not improve the condition: %d vs %d steps satisfied", raw, smoothed)
	}
}
