// Command garfield-node runs one Garfield node as a standalone process over
// TCP — the deployment path of the paper's Controller module. A cluster is a
// set of worker processes plus one or more server processes, all started with
// the same task flags (seed, dim, classes, nw) so that every node generates
// the same synthetic dataset and takes its own shard of it.
//
// Start, e.g., three workers and one server on one machine:
//
//	garfield-node -role worker -listen 127.0.0.1:7001 -index 0 -nw 3 &
//	garfield-node -role worker -listen 127.0.0.1:7002 -index 1 -nw 3 &
//	garfield-node -role worker -listen 127.0.0.1:7003 -index 2 -nw 3 &
//	garfield-node -role server -listen 127.0.0.1:7000 -nw 3 -fw 0 \
//	    -workers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
//	    -rule median -iterations 100
//
// A server process runs the SSMW loop (Listing 1) or, with -peers, the MSMW
// loop (Listing 2) and prints accuracy as it trains. Worker processes serve
// until killed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"garfield/internal/core"
	"garfield/internal/data"
	"garfield/internal/model"
	"garfield/internal/rpc"
	"garfield/internal/sgd"
	"garfield/internal/tensor"
	"garfield/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "garfield-node:", err)
		os.Exit(1)
	}
}

type nodeFlags struct {
	role       string
	listen     string
	index      int
	nw, fw     int
	fps        int
	workers    string
	peers      string
	rule       string
	modelRule  string
	iterations int
	batch      int
	accEvery   int
	dim        int
	classes    int
	trainN     int
	testN      int
	lr         float64
	seed       uint64
	timeout    time.Duration

	contractSteps int
	nonIID        bool
	linger        time.Duration
}

func parseFlags(args []string) (*nodeFlags, error) {
	fs := flag.NewFlagSet("garfield-node", flag.ContinueOnError)
	nf := &nodeFlags{}
	fs.StringVar(&nf.role, "role", "", "node role: worker, server, or peer (required)")
	fs.StringVar(&nf.listen, "listen", "127.0.0.1:0", "listen address")
	fs.IntVar(&nf.index, "index", 0, "worker shard index (worker role)")
	fs.IntVar(&nf.nw, "nw", 3, "total number of workers")
	fs.IntVar(&nf.fw, "fw", 0, "declared Byzantine workers")
	fs.IntVar(&nf.fps, "fps", 0, "declared Byzantine servers (msmw)")
	fs.StringVar(&nf.workers, "workers", "", "comma-separated worker addresses (server role)")
	fs.StringVar(&nf.peers, "peers", "", "comma-separated server replica addresses incl. self (enables MSMW)")
	fs.StringVar(&nf.rule, "rule", "median", "gradient aggregation rule")
	fs.StringVar(&nf.modelRule, "model-rule", "median", "model aggregation rule (msmw)")
	fs.IntVar(&nf.iterations, "iterations", 100, "training iterations (server role)")
	fs.IntVar(&nf.batch, "batch", 32, "per-worker mini-batch size")
	fs.IntVar(&nf.accEvery, "acc-every", 10, "accuracy measurement period")
	fs.IntVar(&nf.dim, "dim", 64, "synthetic task feature dimension")
	fs.IntVar(&nf.classes, "classes", 10, "synthetic task classes")
	fs.IntVar(&nf.trainN, "train", 4000, "synthetic training examples")
	fs.IntVar(&nf.testN, "test", 1000, "synthetic test examples")
	fs.Float64Var(&nf.lr, "lr", 0.25, "learning rate")
	fs.Uint64Var(&nf.seed, "seed", 1, "shared random seed (must match across nodes)")
	fs.DurationVar(&nf.timeout, "timeout", 30*time.Second, "per-pull timeout")
	fs.IntVar(&nf.contractSteps, "contract-steps", 1, "contract rounds per iteration (peer role)")
	fs.BoolVar(&nf.nonIID, "non-iid", false, "shard data by label (peer role)")
	fs.DurationVar(&nf.linger, "linger", 5*time.Second,
		"keep serving after finishing so slower peers can complete (peer role)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	switch nf.role {
	case "worker", "server", "peer":
	default:
		return nil, fmt.Errorf("-role must be worker, server or peer, got %q", nf.role)
	}
	return nf, nil
}

func run(args []string, out io.Writer) error {
	nf, err := parseFlags(args)
	if err != nil {
		return err
	}
	arch, err := model.NewLinearSoftmax(nf.dim, nf.classes)
	if err != nil {
		return err
	}
	_, test, err := data.Generate(data.SyntheticSpec{
		Name: "node-task", Dim: nf.dim, Classes: nf.classes,
		Train: nf.trainN, Test: nf.testN,
		Separation: 1.0, Noise: 1.0, Seed: nf.seed,
	})
	if err != nil {
		return err
	}
	switch nf.role {
	case "worker":
		return runWorker(nf, out)
	case "peer":
		return runPeer(nf, arch, test, out)
	default:
		return runServer(nf, arch, test, out)
	}
}

// runPeer deploys one decentralized node (Listing 3): a Worker and a Server
// behind a single TCP endpoint, driving the contract-based training loop
// against the peer set.
func runPeer(nf *nodeFlags, arch model.Model, test *data.Dataset, out io.Writer) error {
	peerAddrs := splitAddrs(nf.peers)
	if len(peerAddrs) != nf.nw {
		return fmt.Errorf("-peers lists %d addresses, -nw is %d", len(peerAddrs), nf.nw)
	}
	train, _, err := data.Generate(data.SyntheticSpec{
		Name: "node-task", Dim: nf.dim, Classes: nf.classes,
		Train: nf.trainN, Test: nf.testN,
		Separation: 1.0, Noise: 1.0, Seed: nf.seed,
	})
	if err != nil {
		return err
	}
	var shards []*data.Dataset
	if nf.nonIID {
		shards, err = data.PartitionByLabel(train, nf.nw)
	} else {
		shards, err = data.PartitionIID(train, nf.nw, nf.seed)
	}
	if err != nil {
		return err
	}
	if nf.index < 0 || nf.index >= nf.nw {
		return fmt.Errorf("peer index %d out of range [0, %d)", nf.index, nf.nw)
	}
	w, err := core.NewWorker(arch, shards[nf.index], nf.batch, nf.seed+uint64(nf.index)+1, nil)
	if err != nil {
		return err
	}
	opt, err := sgd.New(sgd.Constant(nf.lr))
	if err != nil {
		return err
	}
	client := rpc.NewPooledClient(transport.TCP{})
	defer client.Close()
	s, err := core.NewServer(core.ServerConfig{
		Arch:      arch,
		Init:      arch.InitParams(tensor.NewRNG(nf.seed)),
		Optimizer: opt,
		Client:    client,
		Workers:   peerAddrs, // gradient pulls hit every node's worker half
		Peers:     peerAddrs,
	})
	if err != nil {
		return err
	}
	node, err := core.NewPeerNode(w, s)
	if err != nil {
		return err
	}
	srv, err := rpc.Serve(transport.TCP{}, nf.listen, node)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(out, "peer %d on %s: %s over %d nodes (f=%d)\n",
		nf.index, srv.Addr(), nf.rule, nf.nw, nf.fw)

	// Process startup is not synchronized: without a readiness gate the
	// fastest peer's first pull round fails on connection-refused dials and
	// the failure cascades across the cluster.
	if err := awaitPeers(nf.timeout, client, peerAddrs); err != nil {
		return err
	}

	q := nf.nw - nf.fw
	contract := 0
	if nf.nonIID {
		contract = nf.contractSteps
	}
	for i := 0; i < nf.iterations; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), nf.timeout)
		err := node.DecentralizedStep(ctx, i, q, nf.fw, nf.rule, nf.modelRule, contract)
		cancel()
		if err != nil {
			return fmt.Errorf("iteration %d: %w", i, err)
		}
		if nf.accEvery > 0 && (i+1)%nf.accEvery == 0 {
			acc, err := s.ComputeAccuracy(test)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "peer %d iteration %4d  accuracy %.4f\n", nf.index, i+1, acc)
		}
	}
	acc, err := s.ComputeAccuracy(test)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "peer %d done: final accuracy %.4f\n", nf.index, acc)
	// Decentralized peers have no coordinator; a node that exits the
	// moment its own loop ends would break the quorum of slower peers
	// mid-round, so keep serving pulls for a grace period.
	time.Sleep(nf.linger)
	return nil
}

// awaitPeers pings every address with exponential backoff until it answers
// or the per-address timeout expires — the readiness gate run before a
// node's first pull round. A peer that answers the ping at all (even by
// declining) is up and serving.
func awaitPeers(timeout time.Duration, client rpc.Caller, addrs []string) error {
	for _, addr := range addrs {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		backoff := 10 * time.Millisecond
		for {
			_, err := client.Call(ctx, addr, rpc.Request{Kind: rpc.KindPing})
			if err == nil || errors.Is(err, rpc.ErrNotServed) {
				break
			}
			select {
			case <-ctx.Done():
				cancel()
				return fmt.Errorf("waiting for peer %s: %w", addr, err)
			case <-time.After(backoff):
			}
			if backoff < 500*time.Millisecond {
				backoff *= 2
			}
		}
		cancel()
	}
	return nil
}

// startWorker builds the worker node and starts serving; it returns the
// running RPC server and the shard size. Factored out of runWorker so tests
// can run workers without SIGINT plumbing.
func startWorker(nf *nodeFlags) (*rpc.Server, int, error) {
	arch, err := model.NewLinearSoftmax(nf.dim, nf.classes)
	if err != nil {
		return nil, 0, err
	}
	train, _, err := data.Generate(data.SyntheticSpec{
		Name: "node-task", Dim: nf.dim, Classes: nf.classes,
		Train: nf.trainN, Test: nf.testN,
		Separation: 1.0, Noise: 1.0, Seed: nf.seed,
	})
	if err != nil {
		return nil, 0, err
	}
	shards, err := data.PartitionIID(train, nf.nw, nf.seed)
	if err != nil {
		return nil, 0, err
	}
	if nf.index < 0 || nf.index >= nf.nw {
		return nil, 0, fmt.Errorf("worker index %d out of range [0, %d)", nf.index, nf.nw)
	}
	w, err := core.NewWorker(arch, shards[nf.index], nf.batch, nf.seed+uint64(nf.index)+1, nil)
	if err != nil {
		return nil, 0, err
	}
	srv, err := rpc.Serve(transport.TCP{}, nf.listen, w)
	if err != nil {
		return nil, 0, err
	}
	return srv, shards[nf.index].Len(), nil
}

func runWorker(nf *nodeFlags, out io.Writer) error {
	srv, shardLen, err := startWorker(nf)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(out, "worker %d serving on %s (shard: %d examples)\n",
		nf.index, srv.Addr(), shardLen)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(out, "worker shutting down")
	return nil
}

func runServer(nf *nodeFlags, arch model.Model, test *data.Dataset, out io.Writer) error {
	workerAddrs := splitAddrs(nf.workers)
	if len(workerAddrs) != nf.nw {
		return fmt.Errorf("-workers lists %d addresses, -nw is %d", len(workerAddrs), nf.nw)
	}
	peerAddrs := splitAddrs(nf.peers)
	msmw := len(peerAddrs) > 0

	opt, err := sgd.New(sgd.Constant(nf.lr))
	if err != nil {
		return err
	}
	client := rpc.NewPooledClient(transport.TCP{})
	defer client.Close()
	s, err := core.NewServer(core.ServerConfig{
		Arch:      arch,
		Init:      arch.InitParams(tensor.NewRNG(nf.seed)),
		Optimizer: opt,
		Client:    client,
		Workers:   workerAddrs,
		Peers:     peerAddrs,
	})
	if err != nil {
		return err
	}
	// Serve model pulls from replica peers (MSMW) on the listen address.
	srv, err := rpc.Serve(transport.TCP{}, nf.listen, s)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(out, "server on %s: %s over %d workers (fw=%d)",
		srv.Addr(), nf.rule, nf.nw, nf.fw)
	if msmw {
		fmt.Fprintf(out, ", %d replicas (fps=%d)", len(peerAddrs), nf.fps)
	}
	fmt.Fprintln(out)

	// Readiness gate: wait for the worker fleet (and replica peers under
	// MSMW) before the first pull round, so process startup order cannot
	// fail the quorum.
	if err := awaitPeers(nf.timeout, client, workerAddrs); err != nil {
		return err
	}
	if msmw {
		if err := awaitPeers(nf.timeout, client, peerAddrs); err != nil {
			return err
		}
	}

	qw := nf.nw
	if msmw {
		qw = nf.nw - nf.fw
	}
	// Rules and output buffers are constructed once and reused every
	// iteration (the steady-state zero-allocation aggregation path); this
	// also rejects an unknown or infeasible rule before training starts.
	gradAgg, err := core.NewAggregator(nf.rule, qw, nf.fw)
	if err != nil {
		return err
	}
	var modelAgg *core.Aggregator
	if msmw {
		if modelAgg, err = core.NewAggregator(nf.modelRule, len(peerAddrs)-nf.fps, nf.fps); err != nil {
			return err
		}
	}
	for i := 0; i < nf.iterations; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), nf.timeout)
		grads, err := s.GetGradients(ctx, i, qw)
		if err != nil {
			cancel()
			return fmt.Errorf("iteration %d: %w", i, err)
		}
		aggr, err := gradAgg.Aggregate(grads)
		if err != nil {
			cancel()
			return fmt.Errorf("iteration %d: %w", i, err)
		}
		if err := s.UpdateModel(aggr); err != nil {
			cancel()
			return err
		}
		if msmw {
			models, err := s.GetModels(ctx, len(peerAddrs)-nf.fps)
			if err != nil {
				cancel()
				return fmt.Errorf("iteration %d models: %w", i, err)
			}
			aggrM, err := modelAgg.Aggregate(models)
			if err != nil {
				cancel()
				return err
			}
			if err := s.WriteModel(aggrM); err != nil {
				cancel()
				return err
			}
		}
		cancel()
		if nf.accEvery > 0 && (i+1)%nf.accEvery == 0 {
			acc, err := s.ComputeAccuracy(test)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "iteration %4d  accuracy %.4f\n", i+1, acc)
		}
	}
	acc, err := s.ComputeAccuracy(test)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "done: final accuracy %.4f\n", acc)
	if msmw {
		// A replica that exits the moment its own loop ends breaks the
		// final model pull of any slower replica; keep serving for the
		// grace period, like decentralized peers do.
		time.Sleep(nf.linger)
	}
	return nil
}

func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
