package main

import (
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// freePorts reserves n distinct loopback addresses by binding and releasing
// ephemeral ports.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	for _, l := range listeners {
		_ = l.Close()
	}
	return addrs
}

func TestParseFlagsValidation(t *testing.T) {
	if _, err := parseFlags([]string{"-role", "director"}); err == nil {
		t.Fatal("expected error for bad role")
	}
	nf, err := parseFlags([]string{"-role", "worker", "-index", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if nf.index != 2 || nf.role != "worker" {
		t.Fatalf("flags = %+v", nf)
	}
}

func TestSplitAddrs(t *testing.T) {
	got := splitAddrs(" a:1, b:2 ,,c:3")
	if len(got) != 3 || got[0] != "a:1" || got[2] != "c:3" {
		t.Fatalf("splitAddrs = %v", got)
	}
	if splitAddrs("") != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestServerRejectsWorkerCountMismatch(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-role", "server", "-nw", "3", "-workers", "a:1,b:2",
		"-iterations", "1",
	}, &sb)
	if err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestStartWorkerBadIndex(t *testing.T) {
	nf := &nodeFlags{
		role: "worker", listen: "127.0.0.1:0", index: 9,
		nw: 3, batch: 16, dim: 16, classes: 3, trainN: 300, testN: 100, seed: 1,
	}
	if _, _, err := startWorker(nf); err == nil {
		t.Fatal("expected out-of-range index error")
	}
}

// TestEndToEndSSMWOverTCP deploys 3 worker nodes and an SSMW server over
// loopback TCP — the real multi-process communication path, in-process for
// testability.
func TestEndToEndSSMWOverTCP(t *testing.T) {
	addrs := freePorts(t, 3)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i, addr := range addrs {
		nf := &nodeFlags{
			role: "worker", listen: addr, index: i,
			nw: 3, batch: 16, dim: 16, classes: 3,
			trainN: 400, testN: 150, seed: 11,
		}
		srv, shardLen, err := startWorker(nf)
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		if shardLen == 0 {
			t.Fatalf("worker %d got empty shard", i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-stop
			_ = srv.Close()
		}()
	}
	defer func() {
		close(stop)
		wg.Wait()
	}()

	var sb strings.Builder
	err := run([]string{
		"-role", "server",
		"-listen", "127.0.0.1:0",
		"-nw", "3", "-fw", "0",
		"-workers", strings.Join(addrs, ","),
		"-rule", "median",
		"-iterations", "30",
		"-acc-every", "10",
		"-dim", "16", "-classes", "3", "-train", "400", "-test", "150",
		"-lr", "0.5",
		"-seed", "11",
		"-timeout", "10s",
	}, &sb)
	if err != nil {
		t.Fatalf("server run: %v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	idx := strings.LastIndex(out, "final accuracy ")
	if idx < 0 {
		t.Fatalf("missing final accuracy:\n%s", out)
	}
	accStr := strings.TrimSpace(out[idx+len("final accuracy "):])
	acc, err := strconv.ParseFloat(accStr, 64)
	if err != nil {
		t.Fatalf("cannot parse accuracy %q: %v", accStr, err)
	}
	if acc < 0.7 {
		t.Fatalf("end-to-end accuracy = %v", acc)
	}
}

// TestEndToEndDecentralizedOverTCP deploys three decentralized peer nodes
// over loopback TCP, each running the Listing-3 loop with the retry-based
// contract step.
func TestEndToEndDecentralizedOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second TCP e2e; skipped in -short runs")
	}
	addrs := freePorts(t, 3)
	peerArgs := func(index int) []string {
		return []string{
			"-role", "peer",
			"-listen", addrs[index],
			"-index", strconv.Itoa(index),
			"-nw", "3", "-fw", "0",
			"-peers", strings.Join(addrs, ","),
			"-rule", "median", "-model-rule", "median",
			"-iterations", "15",
			"-acc-every", "0",
			"-non-iid", "-contract-steps", "1",
			"-dim", "16", "-classes", "3", "-train", "450", "-test", "150",
			"-lr", "0.5",
			"-seed", "17",
			"-timeout", "20s",
		}
	}
	type result struct {
		out string
		err error
	}
	results := make(chan result, 3)
	for i := 0; i < 3; i++ {
		i := i
		go func() {
			var sb strings.Builder
			err := run(peerArgs(i), &sb)
			results <- result{out: sb.String(), err: err}
		}()
	}
	deadline := time.After(90 * time.Second)
	for i := 0; i < 3; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("peer failed: %v\n%s", r.err, r.out)
			}
			if !strings.Contains(r.out, "done: final accuracy") {
				t.Fatalf("peer did not finish:\n%s", r.out)
			}
		case <-deadline:
			t.Fatal("decentralized peers did not finish in time")
		}
	}
}

// TestEndToEndMSMWOverTCP deploys workers plus two MSMW server replicas over
// TCP, each replica driven by its own goroutine, exchanging models through
// the get_models pull.
func TestEndToEndMSMWOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second TCP e2e; skipped in -short runs")
	}
	workerAddrs := freePorts(t, 3)
	serverAddrs := freePorts(t, 2)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i, addr := range workerAddrs {
		nf := &nodeFlags{
			role: "worker", listen: addr, index: i,
			nw: 3, batch: 16, dim: 16, classes: 3,
			trainN: 400, testN: 150, seed: 13,
		}
		srv, _, err := startWorker(nf)
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-stop
			_ = srv.Close()
		}()
	}
	defer func() {
		close(stop)
		wg.Wait()
	}()

	serverArgs := func(listen string) []string {
		return []string{
			"-role", "server",
			"-listen", listen,
			"-nw", "3", "-fw", "0", "-fps", "0",
			"-workers", strings.Join(workerAddrs, ","),
			"-peers", strings.Join(serverAddrs, ","),
			"-rule", "median", "-model-rule", "median",
			"-iterations", "20",
			"-acc-every", "0",
			"-dim", "16", "-classes", "3", "-train", "400", "-test", "150",
			"-lr", "0.5",
			"-seed", "13",
			"-timeout", "10s",
		}
	}
	type result struct {
		out string
		err error
	}
	results := make(chan result, len(serverAddrs))
	for _, addr := range serverAddrs {
		addr := addr
		go func() {
			var sb strings.Builder
			err := run(serverArgs(addr), &sb)
			results <- result{out: sb.String(), err: err}
		}()
	}
	deadline := time.After(60 * time.Second)
	for range serverAddrs {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("msmw server: %v\n%s", r.err, r.out)
			}
			if !strings.Contains(r.out, "final accuracy") {
				t.Fatalf("missing accuracy:\n%s", r.out)
			}
		case <-deadline:
			t.Fatal("msmw servers did not finish in time")
		}
	}
}
