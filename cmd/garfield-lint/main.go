// Command garfield-lint runs the repo's invariant analyzers (see
// internal/analysis): wallclock, seededrand, bufdiscipline and detorder.
//
// Standalone mode loads and checks package patterns directly:
//
//	garfield-lint ./...
//	garfield-lint -only wallclock,detorder ./internal/core/...
//
// The binary also speaks the `go vet -vettool` protocol, so the same
// analyzers run under cmd/go's package graph and action cache:
//
//	go build -o bin/garfield-lint ./cmd/garfield-lint
//	go vet -vettool=$PWD/bin/garfield-lint ./...
//
// Exit status: 0 clean, 1 tool failure, 2 diagnostics found (the unitchecker
// convention, which `go vet` surfaces as a failed vet run).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"garfield/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The vettool handshake comes before flag parsing: cmd/go probes the
	// tool's identity with -V=full and its flag schema with -flags, then
	// invokes `tool [flags] <objdir>/vet.cfg` once per package.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			analysis.PrintVersion(os.Stdout, "garfield-lint")
			return 0
		case "-flags", "--flags":
			fmt.Println(`[{"Name":"only","Bool":false,"Usage":"comma-separated analyzer subset to run (default: all)"}]`)
			return 0
		}
	}
	fs := flag.NewFlagSet("garfield-lint", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated analyzer subset to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "garfield-lint: %v\n", err)
		return 1
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	rest := fs.Args()
	if len(rest) == 1 && analysis.IsVetCfg(rest[0]) {
		return analysis.VetUnit(analyzers, rest[0])
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "garfield-lint: %v\n", err)
		return 1
	}
	pkgs, err := analysis.Load(dir, rest...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "garfield-lint: %v\n", err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "garfield-lint: %v\n", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		found += len(diags)
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "garfield-lint: %d unsuppressed diagnostic(s)\n", found)
		return 2
	}
	return 0
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if only == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: wallclock, seededrand, bufdiscipline, detorder)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
