package main

import (
	"strings"
	"testing"

	"garfield/internal/analysis"
)

// cmd/go probes a vettool with -V=full and requires at least three
// space-separated fields with "version" second (see buildid.go's toolID);
// a format drift here silently breaks the -vettool integration.
func TestVersionHandshakeFormat(t *testing.T) {
	var buf strings.Builder
	analysis.PrintVersion(&buf, "garfield-lint")
	f := strings.Fields(buf.String())
	if len(f) < 3 || f[0] != "garfield-lint" || f[1] != "version" {
		t.Fatalf("version line %q does not satisfy the cmd/go toolID contract", buf.String())
	}
	if !strings.HasPrefix(f[len(f)-1], "buildID=") {
		t.Fatalf("version line %q lacks the buildID= field", buf.String())
	}
}

func TestHandshakeExitCodes(t *testing.T) {
	if got := run([]string{"-V=full"}); got != 0 {
		t.Errorf("run(-V=full) = %d, want 0", got)
	}
	if got := run([]string{"-flags"}); got != 0 {
		t.Errorf("run(-flags) = %d, want 0", got)
	}
	if got := run([]string{"-list"}); got != 0 {
		t.Errorf("run(-list) = %d, want 0", got)
	}
}

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(analysis.All()) {
		t.Fatalf("selectAnalyzers(\"\") = %d analyzers, err %v; want all %d", len(all), err, len(analysis.All()))
	}
	subset, err := selectAnalyzers("wallclock, detorder")
	if err != nil || len(subset) != 2 {
		t.Fatalf("selectAnalyzers subset = %v, err %v; want [wallclock detorder]", subset, err)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Fatal("selectAnalyzers(nosuch) succeeded, want error naming the unknown analyzer")
	}
}

// The standalone mode end to end on a real (clean) package.
func TestStandaloneCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short")
	}
	if got := run([]string{"garfield/internal/tensor"}); got != 0 {
		t.Errorf("run(garfield/internal/tensor) = %d, want 0 (lint-clean tree)", got)
	}
}
