// Command garfield-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	garfield-bench [-quick] [-seed N] <experiment-id>|all|list
//
// Experiment ids follow the paper's numbering: table1, fig3a ... fig16,
// table2. "all" runs the full suite in order; "list" prints the catalogue.
package main

import (
	"flag"
	"fmt"
	"os"

	"garfield/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "garfield-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("garfield-bench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "run reduced-scale experiments (seconds instead of minutes)")
	seed := fs.Uint64("seed", 20211, "random seed for all experiments")
	format := fs.String("format", "table", "output format: table or csv")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: garfield-bench [-quick] [-seed N] [-format table|csv] <experiment-id>|all|list")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one experiment id expected, got %d", fs.NArg())
	}
	opt := experiments.Options{Quick: *quick, Seed: *seed}
	target := fs.Arg(0)

	render := experiments.Run
	switch *format {
	case "table":
	case "csv":
		render = experiments.RunCSV
	default:
		return fmt.Errorf("unknown format %q (want table or csv)", *format)
	}

	switch target {
	case "list":
		for _, id := range experiments.IDs() {
			desc, err := experiments.Describe(id)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-14s %s\n", id, desc)
		}
		return nil
	case "all":
		for _, id := range experiments.IDs() {
			if err := render(id, opt, out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	default:
		return render(target, opt, out)
	}
}
