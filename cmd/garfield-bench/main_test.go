package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestList(t *testing.T) {
	out, err := capture(t, []string{"list"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "fig3a", "fig16", "table2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable1(t *testing.T) {
	out, err := capture(t, []string{"-quick", "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "VGG") {
		t.Fatalf("table1 output:\n%s", out)
	}
}

func TestRunSimnetFigure(t *testing.T) {
	out, err := capture(t, []string{"-quick", "fig7"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "decentralized") {
		t.Fatalf("fig7 output:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := capture(t, []string{"nonsense"}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestNoArgs(t *testing.T) {
	if _, err := capture(t, nil); err == nil {
		t.Fatal("expected usage error")
	}
}
