package garfield_test

import (
	"fmt"
	"log"

	"garfield"
)

// ExampleAggregate shows robust aggregation directly: the median of three
// gradients ignores the Byzantine outlier.
func ExampleAggregate() {
	honest1 := garfield.Vector{0.9, 1.1}
	honest2 := garfield.Vector{1.1, 0.9}
	byzantine := garfield.Vector{-1000, 1000}

	out, err := garfield.Aggregate(garfield.RuleMedian, 1,
		[]garfield.Vector{honest1, honest2, byzantine})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	// Output: [0.9 1.1]
}

// ExampleNewRule constructs a GAR with the paper's init(name, n, f)
// interface; the resilience precondition is validated eagerly.
func ExampleNewRule() {
	rule, err := garfield.NewRule(garfield.RuleBulyan, 15, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rule.Name(), rule.N(), rule.F())

	_, err = garfield.NewRule(garfield.RuleBulyan, 10, 3) // needs n >= 4f+3
	fmt.Println(err != nil)
	// Output:
	// bulyan 15 3
	// true
}

// ExampleNewCluster trains the paper's Listing-1 deployment (SSMW) with a
// Byzantine worker mounting the reversed-gradient attack.
func ExampleNewCluster() {
	train, test, err := garfield.GenerateDataset(garfield.SyntheticSpec{
		Name: "example", Dim: 12, Classes: 3, Train: 400, Test: 150,
		Separation: 1.5, Noise: 0.6, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	arch, err := garfield.NewLinearSoftmax(12, 3)
	if err != nil {
		log.Fatal(err)
	}
	atk, err := garfield.NewAttack(garfield.AttackReversed, nil)
	if err != nil {
		log.Fatal(err)
	}

	cluster, err := garfield.NewCluster(garfield.Config{
		Arch: arch, Train: train, Test: test,
		BatchSize: 16,
		NW:        7, FW: 1,
		Rule:         garfield.RuleMedian,
		WorkerAttack: atk,
		LR:           garfield.ConstantLR(0.5),
		Seed:         5,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	res, err := cluster.RunSSMW(garfield.RunOptions{Iterations: 60})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("learned under attack:", res.Accuracy.Last() > 0.8)
	// Output: learned under attack: true
}

// ExampleNewAttack lists the built-in Byzantine behaviours.
func ExampleNewAttack() {
	for _, name := range garfield.AttackNames() {
		fmt.Println(name)
	}
	// Output:
	// none
	// random
	// reversed
	// drop
	// littleisenough
	// fallofempires
	// stale
}
