module garfield

go 1.22
