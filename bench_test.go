package garfield_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"garfield"
	"garfield/internal/compress"
	"garfield/internal/experiments"
	"garfield/internal/gar"
	"garfield/internal/rpc"
	"garfield/internal/shard"
	"garfield/internal/tensor"
	"garfield/internal/transport"
)

// One benchmark per paper table/figure: each run regenerates the experiment
// end to end at quick scale (the same generators back `garfield-bench` at
// full scale). Shapes, not absolute numbers, are the reproduction target;
// see EXPERIMENTS.md.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opt := experiments.Options{Quick: true, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, opt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Models(b *testing.B)           { benchExperiment(b, "table1") }
func BenchmarkFig3aGARsByN(b *testing.B)           { benchExperiment(b, "fig3a") }
func BenchmarkFig3bGARsByD(b *testing.B)           { benchExperiment(b, "fig3b") }
func BenchmarkFig4aConvergenceTF(b *testing.B)     { benchExperiment(b, "fig4a") }
func BenchmarkFig4bConvergencePT(b *testing.B)     { benchExperiment(b, "fig4b") }
func BenchmarkFig5aRandomAttack(b *testing.B)      { benchExperiment(b, "fig5a") }
func BenchmarkFig5bReversedAttack(b *testing.B)    { benchExperiment(b, "fig5b") }
func BenchmarkFig6aSlowdownCPU(b *testing.B)       { benchExperiment(b, "fig6a") }
func BenchmarkFig6bSlowdownGPU(b *testing.B)       { benchExperiment(b, "fig6b") }
func BenchmarkFig7BreakdownCPU(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8aScalabilityCPU(b *testing.B)    { benchExperiment(b, "fig8a") }
func BenchmarkFig8bScalabilityGPU(b *testing.B)    { benchExperiment(b, "fig8b") }
func BenchmarkFig9aDecCommByN(b *testing.B)        { benchExperiment(b, "fig9a") }
func BenchmarkFig9bDecCommByD(b *testing.B)        { benchExperiment(b, "fig9b") }
func BenchmarkFig10aByzWorkers(b *testing.B)       { benchExperiment(b, "fig10a") }
func BenchmarkFig10bByzServers(b *testing.B)       { benchExperiment(b, "fig10b") }
func BenchmarkFig11aTimeToAccuracyTF(b *testing.B) { benchExperiment(b, "fig11a") }
func BenchmarkFig11bTimeToAccuracyPT(b *testing.B) { benchExperiment(b, "fig11b") }
func BenchmarkFig12aMDAConvergence(b *testing.B)   { benchExperiment(b, "fig12a") }
func BenchmarkFig12bMDAOverTime(b *testing.B)      { benchExperiment(b, "fig12b") }
func BenchmarkFig13aFwSweepCPU(b *testing.B)       { benchExperiment(b, "fig13a") }
func BenchmarkFig13bFwSweepGPU(b *testing.B)       { benchExperiment(b, "fig13b") }
func BenchmarkFig14aFpsSweepCPU(b *testing.B)      { benchExperiment(b, "fig14a") }
func BenchmarkFig14bFpsSweepGPU(b *testing.B)      { benchExperiment(b, "fig14b") }
func BenchmarkFig15SlowdownPT(b *testing.B)        { benchExperiment(b, "fig15") }
func BenchmarkFig16BreakdownPT(b *testing.B)       { benchExperiment(b, "fig16") }
func BenchmarkTable2Alignment(b *testing.B)        { benchExperiment(b, "table2") }

// Extension experiments (DESIGN.md §6 ablations beyond the paper).
func BenchmarkExtMomentumVariance(b *testing.B) { benchExperiment(b, "ext-momentum") }
func BenchmarkExtGARsUnderAttack(b *testing.B)  { benchExperiment(b, "ext-gars") }
func BenchmarkExtStaleFault(b *testing.B)       { benchExperiment(b, "ext-stale") }
func BenchmarkExtLiveThroughput(b *testing.B)   { benchExperiment(b, "ext-throughput") }

// --- GAR micro-benchmarks (the raw numbers behind Figure 3) ---

func benchRule(b *testing.B, name string, n, f, d int) {
	b.Helper()
	r, err := gar.New(name, n, f)
	if err != nil {
		b.Fatal(err)
	}
	rng := tensor.NewRNG(7)
	inputs := make([]tensor.Vector, n)
	for i := range inputs {
		inputs[i] = rng.NormalVector(d, 0, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Aggregate(inputs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGARAverage(b *testing.B)     { benchRule(b, gar.NameAverage, 17, 0, 100_000) }
func BenchmarkGARMedian(b *testing.B)      { benchRule(b, gar.NameMedian, 17, 3, 100_000) }
func BenchmarkGARTrimmedMean(b *testing.B) { benchRule(b, gar.NameTrimmedMean, 17, 3, 100_000) }
func BenchmarkGARKrum(b *testing.B)        { benchRule(b, gar.NameKrum, 17, 3, 100_000) }
func BenchmarkGARMultiKrum(b *testing.B)   { benchRule(b, gar.NameMultiKrum, 17, 3, 100_000) }
func BenchmarkGARMDA(b *testing.B)         { benchRule(b, gar.NameMDA, 17, 3, 100_000) }
func BenchmarkGARBulyan(b *testing.B)      { benchRule(b, gar.NameBulyan, 17, 3, 100_000) }

// BenchmarkShardedAggregation times the per-replica critical path of one
// sharded median round at paper scale (d = 1M, n = 7, f = 2). The flat case
// is a single box aggregating all d coordinates; shards=S times the widest
// shard's slice — the work each replica performs concurrently in a real
// deployment, so throughput relative to flat is the protocol's scaling claim
// (coordinate-wise rules are O(width), so 4 shards should run close to 4x).
func BenchmarkShardedAggregation(b *testing.B) {
	const n, f, d = 7, 2, 1_000_000
	rng := tensor.NewRNG(7)
	inputs := make([]tensor.Vector, n)
	for i := range inputs {
		inputs[i] = rng.NormalVector(d, 0, 1)
	}
	r, err := gar.New(gar.NameMedian, n, f)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("flat", func(b *testing.B) {
		dst := make(tensor.Vector, d)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.AggregateInto(dst, inputs); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, shards := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			plan, err := shard.NewPlan(d, shards)
			if err != nil {
				b.Fatal(err)
			}
			lo, hi := plan.Range(0) // shard 0 is always a widest shard
			views := make([]tensor.Vector, n)
			for j, v := range inputs {
				views[j] = v[lo:hi]
			}
			dst := make(tensor.Vector, hi-lo)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.AggregateInto(dst, views); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Design ablations called out in DESIGN.md ---

// BenchmarkAblationMedian compares the parallel coordinate-sharded median
// (the paper's CPU strategy, Section 4.3) against a sequential baseline.
func BenchmarkAblationMedian(b *testing.B) {
	const n, f, d = 17, 3, 1_000_000
	rng := tensor.NewRNG(7)
	inputs := make([]tensor.Vector, n)
	for i := range inputs {
		inputs[i] = rng.NormalVector(d, 0, 1)
	}
	b.Run("parallel", func(b *testing.B) {
		r, err := gar.NewMedian(n, f)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := r.Aggregate(inputs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		r, err := gar.NewSequentialMedian(n, f)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := r.Aggregate(inputs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBulyanInner compares Bulyan's inner selection rules
// (Multi-Krum, as evaluated in the paper, vs Median).
func BenchmarkAblationBulyanInner(b *testing.B) {
	const n, f, d = 15, 3, 100_000
	rng := tensor.NewRNG(7)
	inputs := make([]tensor.Vector, n)
	for i := range inputs {
		inputs[i] = rng.NormalVector(d, 0, 1)
	}
	for _, inner := range []string{gar.NameMultiKrum, gar.NameMedian} {
		inner := inner
		b.Run(inner, func(b *testing.B) {
			r, err := gar.NewBulyanInner(n, f, inner)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := r.Aggregate(inputs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRPCClient compares the dial-per-call client (the default,
// whose per-call independence makes straggler cancellation safe) against the
// persistent-connection pooled client.
func BenchmarkAblationRPCClient(b *testing.B) {
	net := transport.NewMem()
	rng := tensor.NewRNG(3)
	vec := rng.NormalVector(10_000, 0, 1)
	srv, err := rpc.Serve(net, "peer", rpc.HandlerFunc(func(rpc.Request) rpc.Response {
		return rpc.Response{OK: true, Vec: vec}
	}))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	req := rpc.Request{Kind: rpc.KindGetModel}

	b.Run("dial-per-call", func(b *testing.B) {
		c := rpc.NewClient(net)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Call(context.Background(), "peer", req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		c := rpc.NewPooledClient(net)
		defer c.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Call(context.Background(), "peer", req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRPCPullFirstQ measures the first-q-of-n pull primitive that
// implements get_gradients(t, q), over the in-memory transport with the
// protocol-default pooled client.
func BenchmarkRPCPullFirstQ(b *testing.B) {
	net := transport.NewMem()
	const peers = 9
	const d = 10_000
	rng := tensor.NewRNG(3)
	vec := rng.NormalVector(d, 0, 1)
	addrs := make([]string, peers)
	for i := range addrs {
		addrs[i] = "peer-" + string(rune('a'+i))
		srv, err := rpc.Serve(net, addrs[i], rpc.HandlerFunc(func(rpc.Request) rpc.Response {
			return rpc.Response{OK: true, Vec: vec}
		}))
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
	}
	client := rpc.NewPooledClient(net)
	defer client.Close()
	req := rpc.Request{Kind: rpc.KindGetModel}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.PullFirstQ(context.Background(), addrs, peers-2, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVectorCodec measures the tensor wire (de)serialization cost the
// paper identifies as non-negligible (Section 4.1). The decode receiver is
// reused across iterations — the steady-state shape of the RPC server loop —
// so a capacity-reusing UnmarshalBinary makes the round trip allocation-free.
func BenchmarkVectorCodec(b *testing.B) {
	rng := tensor.NewRNG(5)
	v := rng.NormalVector(1_000_000, 0, 1)
	buf := make([]byte, v.EncodedSize())
	var w tensor.Vector
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.EncodeTo(buf); err != nil {
			b.Fatal(err)
		}
		if err := w.UnmarshalBinary(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Gradient-compression codec benchmarks (internal/compress) ---

// benchCodec measures one compress+decode round trip of a 1M-coordinate
// gradient — the serve-side cost a worker pays per pull reply plus the
// client-side decompression, the pair that must stay cheap relative to the
// network bytes it saves. The compressor and decode receiver are reused
// across iterations (the steady-state shape of the pull loop).
func benchCodec(b *testing.B, enc compress.Encoding, k int) {
	b.Helper()
	const d = 1_000_000
	rng := tensor.NewRNG(5)
	v := rng.NormalVector(d, 0, 1)
	comp, err := compress.NewCompressor(enc, k)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 0, comp.MaxEncodedSize(d))
	var out tensor.Vector
	// One warmup round trip grows the compressor scratch and the decode
	// receiver to size, so B/op reports the steady state instead of smearing
	// one-time setup allocations across b.N (at the default 1s benchtime the
	// smear once passed itself off as ~1.2MB/op on the top-k codec — see
	// TestCompressorSteadyStateZeroAlloc for the regression lock).
	payload := comp.Compress(buf[:0], v)
	if err := compress.Decode(&out, enc, payload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := comp.Compress(buf[:0], v)
		if err := compress.Decode(&out, enc, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(compress.FP64EncodedSize(d)))
}

func BenchmarkCompressFP64(b *testing.B) { benchCodec(b, compress.EncFP64, 0) }
func BenchmarkCompressFP16(b *testing.B) { benchCodec(b, compress.EncFP16, 0) }
func BenchmarkCompressInt8(b *testing.B) { benchCodec(b, compress.EncInt8, 0) }
func BenchmarkCompressTopK(b *testing.B) { benchCodec(b, compress.EncTopK, 10_000) }

// BenchmarkCompressedPull measures the full RPC pull with int8-compressed
// replies against the fp64 baseline of BenchmarkRPCPullFirstQ's shape: the
// wire moves ~7.8x fewer payload bytes per reply.
func BenchmarkCompressedPull(b *testing.B) {
	net := transport.NewMem()
	const d = 10_000
	rng := tensor.NewRNG(3)
	vec := rng.NormalVector(d, 0, 1)
	comp, err := compress.NewCompressor(compress.EncInt8, 0)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := rpc.Serve(net, "peer", rpc.HandlerFunc(func(req rpc.Request) rpc.Response {
		if req.Accept != compress.EncInt8 {
			return rpc.Response{OK: true, Vec: vec}
		}
		buf := compress.GetBuf(comp.MaxEncodedSize(d))
		return rpc.Response{OK: true, Enc: compress.EncInt8, Payload: comp.Compress(buf, vec), FreePayload: true}
	}))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := rpc.NewPooledClient(net)
	defer client.Close()
	req := rpc.Request{Kind: rpc.KindGetModel, Accept: compress.EncInt8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(context.Background(), "peer", req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveSSMWIteration measures one live SSMW training iteration over
// the in-memory cluster (communication + aggregation + update).
func BenchmarkLiveSSMWIteration(b *testing.B) {
	train, test, err := garfield.GenerateDataset(garfield.SyntheticSpec{
		Name: "bench", Dim: 32, Classes: 5, Train: 500, Test: 100,
		Separation: 1, Noise: 1, Seed: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	arch, err := garfield.NewLinearSoftmax(32, 5)
	if err != nil {
		b.Fatal(err)
	}
	cluster, err := garfield.NewCluster(garfield.Config{
		Arch: arch, Train: train, Test: test,
		BatchSize: 16, NW: 7, FW: 1,
		Rule: garfield.RuleMedian, Seed: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	b.ResetTimer()
	if _, err := cluster.RunSSMW(garfield.RunOptions{Iterations: b.N}); err != nil {
		b.Fatal(err)
	}
}
