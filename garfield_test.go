package garfield_test

import (
	"testing"

	"garfield"
)

// These tests exercise the public facade end to end, mirroring what the
// examples do: everything a downstream user needs must be reachable from the
// root package alone.

func facadeTask(t *testing.T) (garfield.Model, *garfield.Dataset, *garfield.Dataset) {
	t.Helper()
	train, test, err := garfield.GenerateDataset(garfield.SyntheticSpec{
		Name: "facade", Dim: 12, Classes: 3, Train: 400, Test: 150,
		Separation: 1.5, Noise: 0.6, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	arch, err := garfield.NewLinearSoftmax(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	return arch, train, test
}

func TestFacadeQuickstartSSMW(t *testing.T) {
	arch, train, test := facadeTask(t)
	cluster, err := garfield.NewCluster(garfield.Config{
		Arch: arch, Train: train, Test: test,
		BatchSize: 16, NW: 7, FW: 1,
		Rule: garfield.RuleMedian,
		LR:   garfield.ConstantLR(0.5),
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	res, err := cluster.RunSSMW(garfield.RunOptions{Iterations: 60, AccEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy.Last() < 0.8 {
		t.Fatalf("accuracy = %v", res.Accuracy.Last())
	}
}

func TestFacadeMSMWUnderAttack(t *testing.T) {
	arch, train, test := facadeTask(t)
	atk, err := garfield.NewAttack(garfield.AttackReversed, nil)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := garfield.NewCluster(garfield.Config{
		Arch: arch, Train: train, Test: test,
		BatchSize: 16, NW: 7, FW: 1, NPS: 4, FPS: 1,
		Rule:         garfield.RuleMedian,
		WorkerAttack: atk,
		LR:           garfield.ConstantLR(0.5),
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	res, err := cluster.RunMSMW(garfield.RunOptions{Iterations: 60, AccEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy.Last() < 0.75 {
		t.Fatalf("accuracy under attack = %v", res.Accuracy.Last())
	}
}

func TestFacadeAggregate(t *testing.T) {
	out, err := garfield.Aggregate(garfield.RuleMedian, 1,
		[]garfield.Vector{{1}, {2}, {100}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 {
		t.Fatalf("median = %v", out[0])
	}
}

func TestFacadeRuleAndAttackRegistries(t *testing.T) {
	if len(garfield.RuleNames()) != 9 {
		t.Fatalf("rules = %v", garfield.RuleNames())
	}
	if len(garfield.AttackNames()) != 7 {
		t.Fatalf("attacks = %v", garfield.AttackNames())
	}
	for _, name := range garfield.RuleNames() {
		n := 15
		f := 1
		if name == garfield.RuleAverage {
			f = 0
		}
		if _, err := garfield.NewRule(name, n, f); err != nil {
			t.Fatalf("NewRule(%s): %v", name, err)
		}
	}
	for _, name := range garfield.AttackNames() {
		if _, err := garfield.NewAttack(name, garfield.NewRNG(1)); err != nil {
			t.Fatalf("NewAttack(%s): %v", name, err)
		}
	}
}

func TestFacadeSpecs(t *testing.T) {
	m := garfield.MNISTSpec(100, 10, 1)
	if m.Dim != 784 {
		t.Fatalf("mnist dim = %d", m.Dim)
	}
	c := garfield.CIFAR10Spec(100, 10, 1)
	if c.Dim != 3072 {
		t.Fatalf("cifar dim = %d", c.Dim)
	}
}

func TestFacadeSchedules(t *testing.T) {
	if garfield.ConstantLR(0.1).LR(100) != 0.1 {
		t.Fatal("ConstantLR broken")
	}
	s := garfield.InverseDecayLR(1, 10)
	if s.LR(0) != 1 || s.LR(10) >= 1 {
		t.Fatal("InverseDecayLR broken")
	}
}

func TestFacadeMLP(t *testing.T) {
	m, err := garfield.NewMLP(8, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 8*4+4+4*3+3 {
		t.Fatalf("dim = %d", m.Dim())
	}
}

func TestFacadeChaos(t *testing.T) {
	names := garfield.ChaosPresets()
	if len(names) < 4 {
		t.Fatalf("chaos presets = %v, want at least 4", names)
	}
	rep, err := garfield.RunChaos("chaos-corrupt-link", garfield.ChaosOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("chaos invariants failed: %+v", rep.Checks)
	}
}
