// Package garfield is the public API of Garfield-Go, a from-scratch Go
// reproduction of "Garfield: System Support for Byzantine Machine Learning"
// (Guerraoui et al., DSN 2021).
//
// Garfield makes SGD-based distributed learning resilient to Byzantine
// (arbitrarily faulty) participants by replacing gradient averaging with
// statistically-robust gradient aggregation rules (GARs) and by replicating
// the parameter server. The library provides:
//
//   - the GARs of the paper — Median, Krum, Multi-Krum, MDA, Bulyan — plus
//     Average and TrimmedMean, behind one Aggregate call;
//   - Server and Worker node objects with the paper's pull-based
//     communication abstractions get_gradients(t, q) / get_models(q);
//   - the three applications of the paper as ready-to-run protocols over an
//     in-process cluster: SSMW (single server, multiple workers), MSMW
//     (replicated Byzantine-resilient servers) and decentralized learning,
//     along with vanilla, AggregaThor-style and crash-tolerant baselines;
//   - the published attacks (random / reversed / dropped vectors, little is
//     enough, fall of empires) for adversarial evaluation;
//   - synthetic datasets, differentiable models, an SGD optimizer, and the
//     experiment harness regenerating every table and figure of the paper;
//   - a gradient-compression subsystem (fp16 / int8 quantization and top-k
//     sparsification with error feedback) negotiated per pull reply on the
//     wire, with byte accounting exposed through Result.Wire.
//
// # Quickstart
//
// Training a Byzantine-resilient SSMW deployment (Listing 1 of the paper)
// takes a cluster config and one call:
//
//	cluster, err := garfield.NewCluster(garfield.Config{
//		Arch: arch, Train: train, Test: test,
//		BatchSize: 32, NW: 9, FW: 1, Rule: garfield.RuleMedian,
//	})
//	if err != nil { ... }
//	defer cluster.Close()
//	res, err := cluster.RunSSMW(garfield.RunOptions{Iterations: 200, AccEvery: 20})
//
// See examples/ for complete programs covering all three applications.
package garfield

import (
	"garfield/internal/attack"
	"garfield/internal/chaos"
	"garfield/internal/compress"
	"garfield/internal/core"
	"garfield/internal/data"
	"garfield/internal/gar"
	"garfield/internal/model"
	"garfield/internal/rpc"
	"garfield/internal/scenario"
	"garfield/internal/sgd"
	"garfield/internal/tensor"
)

// Re-exported core types: cluster construction, protocol runners, node
// objects.
type (
	// Config describes a deployment: cluster shape, task, GAR, attacks.
	Config = core.Config
	// Cluster is a fully-wired in-process deployment.
	Cluster = core.Cluster
	// RunOptions tunes one training run.
	RunOptions = core.RunOptions
	// Result carries accuracy curves, throughput and latency breakdown.
	Result = core.Result
	// Server is the stateful node object (owns and updates the model).
	Server = core.Server
	// Worker is the passive node object (computes gradient estimates).
	Worker = core.Worker
)

// Re-exported learning-stack types.
type (
	// Vector is the flat float64 parameter/gradient vector everything
	// operates on.
	Vector = tensor.Vector
	// RNG is the deterministic random generator seeding all randomness.
	RNG = tensor.RNG
	// Dataset is a labelled set of flattened examples.
	Dataset = data.Dataset
	// SyntheticSpec parameterizes synthetic dataset generation.
	SyntheticSpec = data.SyntheticSpec
	// Model is a differentiable classifier over a flat parameter vector.
	Model = model.Model
	// Attack is a Byzantine payload corruption.
	Attack = attack.Attack
	// Rule is a gradient aggregation rule.
	Rule = gar.Rule
	// Schedule maps step index to learning rate.
	Schedule = sgd.Schedule
)

// GAR names accepted by Config.Rule and NewRule.
const (
	RuleAverage     = gar.NameAverage
	RuleMedian      = gar.NameMedian
	RuleTrimmedMean = gar.NameTrimmedMean
	RuleKrum        = gar.NameKrum
	RuleMultiKrum   = gar.NameMultiKrum
	RuleMDA         = gar.NameMDA
	RuleBulyan      = gar.NameBulyan
	RuleGeoMedian   = gar.NameGeoMedian
	RulePhocas      = gar.NamePhocas
)

// Attack names accepted by NewAttack.
const (
	AttackNone           = attack.NameNone
	AttackRandom         = attack.NameRandom
	AttackReversed       = attack.NameReversed
	AttackDrop           = attack.NameDrop
	AttackLittleIsEnough = attack.NameLittleIsEnough
	AttackFallOfEmpires  = attack.NameFallOfEmpires
)

// Declarative scenario engine types (internal/scenario): serializable
// deployment descriptions, named presets and matrix sweeps.
type (
	// Scenario declaratively describes one deployment: topology, n/f,
	// GAR, attacks, task, fault schedule and seeds. It round-trips
	// through JSON.
	Scenario = scenario.Spec
	// ScenarioMatrix crosses a base scenario with topology/GAR/attack/f
	// value lists for sweep runs.
	ScenarioMatrix = scenario.Matrix
	// SweepOptions tunes RunScenarioSweep (parallelism, artifact
	// directory, timing columns).
	SweepOptions = scenario.SweepOptions
	// SweepReport aggregates the per-cell results of a sweep.
	SweepReport = scenario.Report
)

// WireStats is one run's byte accounting (Result.Wire): frame bytes in and
// out, plus pull-reply payload bytes as shipped versus their fp64 baseline —
// the pair gradient-compression ratios derive from.
type WireStats = rpc.WireStats

// Gradient-compression codec names accepted by Config.Compression and
// Scenario.Compression. CodecFP64 (or "") is the lossless passthrough;
// CodecTopK additionally needs the TopK coordinate budget and carries a
// per-worker error-feedback residual across steps.
const (
	CodecFP64 = "fp64"
	CodecFP16 = "fp16"
	CodecInt8 = "int8"
	CodecTopK = "topk"
)

// CompressionCodecs returns the gradient codec names in wire-value order.
func CompressionCodecs() []string { return compress.Names() }

// NewCluster shards the data and wires up an in-process deployment.
func NewCluster(cfg Config) (*Cluster, error) { return core.NewCluster(cfg) }

// ScenarioNames returns the named scenario presets: the paper's headline
// configurations plus the example deployments.
func ScenarioNames() []string { return scenario.Names() }

// ScenarioByName returns a copy of the named preset, ready to run or to
// tweak first.
func ScenarioByName(name string) (Scenario, error) { return scenario.ByName(name) }

// RunScenario materializes a scenario, drives its protocol through the
// fault schedule and returns the result.
func RunScenario(sp Scenario) (*Result, error) { return scenario.Run(sp) }

// RunScenarioSweep expands a scenario matrix and runs every cell in
// parallel with deterministic per-cell seeding, optionally emitting CSV and
// JSON artifacts.
func RunScenarioSweep(m ScenarioMatrix, opt SweepOptions) (*SweepReport, error) {
	return scenario.RunSweep(m, opt)
}

// Chaos-engine types (internal/chaos): seeded fault programs checked
// against machine-readable resilience invariants.
type (
	// ChaosOptions tunes a chaos harness run (quick mode, seed override).
	ChaosOptions = chaos.Options
	// ChaosReport is one preset's invariant verdicts.
	ChaosReport = chaos.Report
)

// ChaosPresets returns the chaos preset names the invariant harness knows.
func ChaosPresets() []string { return chaos.Presets() }

// RunChaos executes one chaos preset under its resilience-invariant suite:
// safety (bounded honest-model drift with a diverging non-robust contrast),
// liveness (post-heal throughput recovery), determinism (bit-identical
// metrics CSV per seed) and corruption rejection (checksummed RPC frames).
func RunChaos(preset string, opt ChaosOptions) (*ChaosReport, error) {
	return chaos.Run(preset, opt)
}

// Aggregate applies the named GAR, tolerating up to f Byzantine inputs, to
// the given vectors — the `gar(gradients, f)` call of the paper's listings.
func Aggregate(rule string, f int, vs []Vector) (Vector, error) {
	return core.Aggregate(rule, f, vs)
}

// NewRule constructs a GAR by name for n inputs with at most f Byzantine —
// the paper's init(name, n, f).
func NewRule(name string, n, f int) (Rule, error) { return gar.New(name, n, f) }

// RuleNames returns the GAR names NewRule accepts.
func RuleNames() []string { return gar.Names() }

// NewAttack constructs a Byzantine behaviour by name with paper-default
// parameters.
func NewAttack(name string, rng *RNG) (Attack, error) { return attack.New(name, rng) }

// AttackNames returns the attack names NewAttack accepts.
func AttackNames() []string { return attack.Names() }

// NewRNG returns a deterministic random generator.
func NewRNG(seed uint64) *RNG { return tensor.NewRNG(seed) }

// GenerateDataset materializes synthetic train/test splits from a spec.
func GenerateDataset(spec SyntheticSpec) (train, test *Dataset, err error) {
	return data.Generate(spec)
}

// MNISTSpec returns the synthetic stand-in for MNIST at the given scale.
func MNISTSpec(train, test int, seed uint64) SyntheticSpec {
	return data.MNISTSpec(train, test, seed)
}

// CIFAR10Spec returns the synthetic stand-in for CIFAR-10.
func CIFAR10Spec(train, test int, seed uint64) SyntheticSpec {
	return data.CIFAR10Spec(train, test, seed)
}

// NewLinearSoftmax returns a linear softmax classifier (multinomial logistic
// regression).
func NewLinearSoftmax(in, classes int) (Model, error) {
	return model.NewLinearSoftmax(in, classes)
}

// NewMLP returns a one-hidden-layer perceptron classifier.
func NewMLP(in, hidden, classes int) (Model, error) {
	return model.NewMLP(in, hidden, classes)
}

// NewCNN returns a convolutional classifier (conv + ReLU + 2x2 max-pool +
// dense softmax) over h x w x c inputs.
func NewCNN(h, w, c, k, filters, classes int) (Model, error) {
	return model.NewCNN(h, w, c, k, filters, classes)
}

// NewMNISTCNN returns the stand-in for the paper's MNIST_CNN architecture
// (28x28x1 input, 10 classes).
func NewMNISTCNN() (Model, error) { return model.NewMNISTCNN() }

// ConstantLR returns a fixed learning-rate schedule.
func ConstantLR(lr float64) Schedule { return sgd.Constant(lr) }

// InverseDecayLR returns gamma_k = base / (1 + k/halfLife).
func InverseDecayLR(base, halfLife float64) Schedule {
	return sgd.InverseDecay{Base: base, HalfLife: halfLife}
}
