package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestMemDialListen(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("node-a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		buf := make([]byte, 5)
		if _, err := conn.Read(buf); err != nil {
			done <- err
			return
		}
		_, err = conn.Write(buf)
		done <- err
	}()

	conn, err := m.Dial(context.Background(), "node-a")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echo = %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMemDialUnknownAddr(t *testing.T) {
	m := NewMem()
	if _, err := m.Dial(context.Background(), "ghost"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused", err)
	}
}

func TestMemDuplicateListen(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := m.Listen("a"); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("err = %v, want ErrAddrInUse", err)
	}
}

func TestMemListenAfterClose(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Address is released; re-listen must work.
	l2, err := m.Listen("a")
	if err != nil {
		t.Fatalf("re-listen: %v", err)
	}
	defer l2.Close()
}

func TestMemAcceptAfterClose(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := m.Dial(context.Background(), "a"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("dial err = %v, want ErrConnRefused", err)
	}
}

func TestMemDialCancelled(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Nobody accepts; a cancelled context must unblock the dial.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := m.Dial(ctx, "a"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestMemAddr(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("worker-3")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Addr().String() != "worker-3" || l.Addr().Network() != "mem" {
		t.Fatalf("addr = %v/%v", l.Addr().Network(), l.Addr().String())
	}
}

func TestFaultyCrashAndRecover(t *testing.T) {
	f := NewFaulty(NewMem())
	l, err := f.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	f.Crash("a")
	if _, err := f.Dial(context.Background(), "a"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("crashed dial err = %v", err)
	}
	f.Recover("a")
	conn, err := f.Dial(context.Background(), "a")
	if err != nil {
		t.Fatalf("recovered dial: %v", err)
	}
	conn.Close()
}

func TestFaultyDelay(t *testing.T) {
	f := NewFaulty(NewMem())
	l, err := f.Listen("slow")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	f.SetDelay("slow", 30*time.Millisecond)
	start := time.Now()
	conn, err := f.Dial(context.Background(), "slow")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delay not applied: %v", elapsed)
	}
}

func TestFaultyDelayRespectsContext(t *testing.T) {
	f := NewFaulty(NewMem())
	f.SetDelay("slow", time.Hour)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := f.Dial(ctx, "slow"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	var n TCP
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 2)
		if _, err := c.Read(buf); err == nil {
			c.Write(buf)
		}
	}()
	conn, err := n.Dial(context.Background(), l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ok" {
		t.Fatalf("echo = %q", buf)
	}
}

// TestFaultyCrashSeversEstablishedConns pins the fidelity persistent-
// connection clients rely on: crashing an address must kill its live
// connections, not just refuse new dials.
func TestFaultyCrashSeversEstablishedConns(t *testing.T) {
	f := NewFaulty(NewMem())
	l, err := f.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	conn, err := f.Dial(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	f.Crash("a")
	buf := make([]byte, 1)
	errc := make(chan error, 1)
	go func() {
		_, err := conn.Read(buf)
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("read on severed connection succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read on severed connection did not unblock")
	}
}

// TestFaultySetDelaySeversEstablishedConns: a newly-injected delay must also
// apply to clients holding pooled connections, which requires severing them.
func TestFaultySetDelaySeversEstablishedConns(t *testing.T) {
	f := NewFaulty(NewMem())
	l, err := f.Listen("slow")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	conn, err := f.Dial(context.Background(), "slow")
	if err != nil {
		t.Fatal(err)
	}
	f.SetDelay("slow", time.Millisecond)
	if _, err := conn.Write([]byte{1}); err == nil {
		t.Fatal("write on severed connection succeeded")
	}
}
