// Package transport abstracts how Garfield nodes reach each other. The paper
// uses gRPC over datacenter Ethernet; this package provides the same
// dial/listen contract over three interchangeable backends:
//
//   - TCP on the local machine (the deployment path used by cmd/garfield-node),
//   - a fully in-memory network (used by tests and in-process clusters), and
//   - a fault-injecting wrapper that adds per-node crashes and link delays,
//     so protocol code never special-cases failures.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Network is the dial/listen contract every backend implements.
type Network interface {
	// Listen starts accepting connections at addr.
	Listen(addr string) (net.Listener, error)
	// Dial connects to addr, honouring ctx cancellation.
	Dial(ctx context.Context, addr string) (net.Conn, error)
}

var (
	// ErrAddrInUse is returned by Listen when addr already has a listener.
	ErrAddrInUse = errors.New("transport: address already in use")

	// ErrConnRefused is returned by Dial when no listener exists at addr
	// or the node is crashed.
	ErrConnRefused = errors.New("transport: connection refused")

	// ErrClosed is returned after a listener has been closed.
	ErrClosed = errors.New("transport: listener closed")
)

// TCP is the real-network backend; addresses are host:port strings.
type TCP struct{}

var _ Network = TCP{}

// Listen implements Network.
func (TCP) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// Dial implements Network.
func (TCP) Dial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// Mem is an in-memory network: listeners register under arbitrary string
// addresses and Dial hands the listener one end of a net.Pipe. The zero
// value is not usable; create instances with NewMem.
type Mem struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

var _ Network = (*Mem)(nil)

// NewMem returns an empty in-memory network.
func NewMem() *Mem {
	return &Mem{listeners: make(map[string]*memListener)}
}

// Listen implements Network.
func (m *Mem) Listen(addr string) (net.Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.listeners[addr]; ok {
		return nil, fmt.Errorf("%w: %q", ErrAddrInUse, addr)
	}
	l := &memListener{
		net:    m,
		addr:   addr,
		accept: make(chan net.Conn),
		closed: make(chan struct{}),
	}
	m.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (m *Mem) Dial(ctx context.Context, addr string) (net.Conn, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrConnRefused, addr)
	}
	client, server := net.Pipe()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.closed:
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("%w: %q", ErrConnRefused, addr)
	case <-ctx.Done():
		_ = client.Close()
		_ = server.Close()
		return nil, ctx.Err()
	}
}

func (m *Mem) remove(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.listeners, addr)
}

type memListener struct {
	net    *Mem
	addr   string
	accept chan net.Conn

	closeOnce sync.Once
	closed    chan struct{}
}

var _ net.Listener = (*memListener)(nil)

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.net.remove(l.addr)
	})
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

// Faulty wraps a Network with crash and delay injection keyed by address.
// Crashing an address makes dials to it fail and severs its established
// connections (the node looks dead to old and new RPC attempts alike — the
// fidelity persistent-connection clients need); a dial delay models a slow
// link or straggler node, and setting one also severs established
// connections so pooled callers re-dial through the delay.
type Faulty struct {
	inner Network

	mu      sync.Mutex
	crashed map[string]bool
	delays  map[string]time.Duration
	conns   map[string]map[*faultyConn]struct{} // live dials per remote addr
}

var _ Network = (*Faulty)(nil)

// NewFaulty wraps inner with fault injection; initially no faults.
func NewFaulty(inner Network) *Faulty {
	return &Faulty{
		inner:   inner,
		crashed: make(map[string]bool),
		delays:  make(map[string]time.Duration),
		conns:   make(map[string]map[*faultyConn]struct{}),
	}
}

// faultyConn tracks a dialed connection so injected faults can sever it.
type faultyConn struct {
	net.Conn
	f    *Faulty
	addr string
}

// Close implements net.Conn, deregistering the connection.
func (c *faultyConn) Close() error {
	c.f.forget(c)
	return c.Conn.Close()
}

func (f *Faulty) forget(c *faultyConn) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if set, ok := f.conns[c.addr]; ok {
		delete(set, c)
	}
}

// sever closes every established connection to addr.
func (f *Faulty) sever(addr string) {
	f.mu.Lock()
	set := f.conns[addr]
	delete(f.conns, addr)
	f.mu.Unlock()
	for c := range set {
		_ = c.Conn.Close()
	}
}

// Crash makes dials to addr fail and severs its established connections
// until Recover is called — a process crash as observed both by in-flight
// traffic and by new RPC attempts.
func (f *Faulty) Crash(addr string) {
	f.mu.Lock()
	f.crashed[addr] = true
	f.mu.Unlock()
	f.sever(addr)
}

// Recover clears a crash.
func (f *Faulty) Recover(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.crashed, addr)
}

// SetDelay makes every dial to addr wait d before connecting, modelling a
// straggler or a slow link. Established connections are severed so clients
// holding persistent connections observe the new delay on their next use.
func (f *Faulty) SetDelay(addr string, d time.Duration) {
	f.mu.Lock()
	f.delays[addr] = d
	f.mu.Unlock()
	f.sever(addr)
}

// Listen implements Network.
func (f *Faulty) Listen(addr string) (net.Listener, error) {
	return f.inner.Listen(addr)
}

// Dial implements Network.
func (f *Faulty) Dial(ctx context.Context, addr string) (net.Conn, error) {
	f.mu.Lock()
	crashed := f.crashed[addr]
	delay := f.delays[addr]
	f.mu.Unlock()
	if crashed {
		return nil, fmt.Errorf("%w: %q (crashed)", ErrConnRefused, addr)
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	conn, err := f.inner.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	fc := &faultyConn{Conn: conn, f: f, addr: addr}
	f.mu.Lock()
	if f.crashed[addr] {
		// Crashed while the dial was in flight.
		f.mu.Unlock()
		_ = conn.Close()
		return nil, fmt.Errorf("%w: %q (crashed)", ErrConnRefused, addr)
	}
	if f.conns[addr] == nil {
		f.conns[addr] = make(map[*faultyConn]struct{})
	}
	f.conns[addr][fc] = struct{}{}
	f.mu.Unlock()
	return fc, nil
}
