// Package transport abstracts how Garfield nodes reach each other. The paper
// uses gRPC over datacenter Ethernet; this package provides the same
// dial/listen contract over three interchangeable backends:
//
//   - TCP on the local machine (the deployment path used by cmd/garfield-node),
//   - a fully in-memory network (used by tests and in-process clusters), and
//   - a fault-injecting wrapper that adds per-node crashes, link delays,
//     network partitions and seeded per-link chaos programs (message drop,
//     duplication, reordering, byte corruption — see chaos.go), so protocol
//     code never special-cases failures.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// Network is the dial/listen contract every backend implements.
type Network interface {
	// Listen starts accepting connections at addr.
	Listen(addr string) (net.Listener, error)
	// Dial connects to addr, honouring ctx cancellation.
	Dial(ctx context.Context, addr string) (net.Conn, error)
}

var (
	// ErrAddrInUse is returned by Listen when addr already has a listener.
	ErrAddrInUse = errors.New("transport: address already in use")

	// ErrConnRefused is returned by Dial when no listener exists at addr
	// or the node is crashed.
	ErrConnRefused = errors.New("transport: connection refused")

	// ErrClosed is returned after a listener has been closed.
	ErrClosed = errors.New("transport: listener closed")
)

// TCP is the real-network backend; addresses are host:port strings.
type TCP struct{}

var _ Network = TCP{}

// Listen implements Network.
func (TCP) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// Dial implements Network.
func (TCP) Dial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// Mem is an in-memory network: listeners register under arbitrary string
// addresses and Dial hands the listener one end of a net.Pipe. The zero
// value is not usable; create instances with NewMem.
type Mem struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

var _ Network = (*Mem)(nil)

// NewMem returns an empty in-memory network.
func NewMem() *Mem {
	return &Mem{listeners: make(map[string]*memListener)}
}

// Listen implements Network.
func (m *Mem) Listen(addr string) (net.Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.listeners[addr]; ok {
		return nil, fmt.Errorf("%w: %q", ErrAddrInUse, addr)
	}
	l := &memListener{
		net:    m,
		addr:   addr,
		accept: make(chan net.Conn),
		closed: make(chan struct{}),
	}
	m.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (m *Mem) Dial(ctx context.Context, addr string) (net.Conn, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrConnRefused, addr)
	}
	client, server := net.Pipe()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.closed:
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("%w: %q", ErrConnRefused, addr)
	case <-ctx.Done():
		_ = client.Close()
		_ = server.Close()
		return nil, ctx.Err()
	}
}

func (m *Mem) remove(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.listeners, addr)
}

type memListener struct {
	net    *Mem
	addr   string
	accept chan net.Conn

	closeOnce sync.Once
	closed    chan struct{}
}

var _ net.Listener = (*memListener)(nil)

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.net.remove(l.addr)
	})
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

// Faulty wraps a Network with fault injection keyed by address. Crashing an
// address makes dials to it fail and severs its established connections (the
// node looks dead to old and new RPC attempts alike — the fidelity
// persistent-connection clients need); a dial delay models a slow link or
// straggler node; a LinkFault program mangles the framed traffic of every
// connection to an address (see chaos.go); and Partition blocks traffic
// between two node groups until Heal. Every fault that changes how a link
// behaves also severs its established connections, so pooled callers
// re-dial through the new behaviour.
type Faulty struct {
	inner Network

	mu      sync.Mutex
	crashed map[string]bool
	delays  map[string]time.Duration
	links   map[string]*linkProgram
	cuts    []cut
	// epochs counts sever events per address. A dial records the target's
	// epoch before handing off to the inner network; if the epoch moved
	// while the dial was in flight the connection predates a Crash,
	// SetDelay, SetLinkFault or Partition and is refused instead of
	// registered — otherwise a conn dialed before the fault would slip
	// past the sever and survive it.
	epochs map[string]uint64
	conns  map[string]map[*faultyConn]struct{} // live dials per remote addr
}

// cut is one partition: traffic between the two groups is blocked.
type cut struct {
	a, b map[string]struct{}
}

// crosses reports whether a (src, dst) link spans the cut. An empty src (a
// dial through the unbound Faulty rather than a Bind view) belongs to no
// group and is never partitioned.
func (c cut) crosses(src, dst string) bool {
	if src == "" {
		return false
	}
	_, srcA := c.a[src]
	_, srcB := c.b[src]
	_, dstA := c.a[dst]
	_, dstB := c.b[dst]
	return (srcA && dstB) || (srcB && dstA)
}

var _ Network = (*Faulty)(nil)

// NewFaulty wraps inner with fault injection; initially no faults.
func NewFaulty(inner Network) *Faulty {
	return &Faulty{
		inner:   inner,
		crashed: make(map[string]bool),
		delays:  make(map[string]time.Duration),
		links:   make(map[string]*linkProgram),
		epochs:  make(map[string]uint64),
		conns:   make(map[string]map[*faultyConn]struct{}),
	}
}

// faultyConn tracks a dialed connection so injected faults can sever it.
type faultyConn struct {
	net.Conn
	f    *Faulty
	src  string // the Bind address the dial originated from ("" if unbound)
	addr string

	closeOnce sync.Once
	closeErr  error
}

// Close implements net.Conn, deregistering the connection. Both the owner
// and an injected sever may race to close; the underlying Close runs once.
func (c *faultyConn) Close() error {
	c.f.forget(c)
	c.closeOnce.Do(func() { c.closeErr = c.Conn.Close() })
	return c.closeErr
}

// severClose closes the underlying connection without deregistering (the
// caller already removed it from the conn table).
func (c *faultyConn) severClose() {
	c.closeOnce.Do(func() { c.closeErr = c.Conn.Close() })
}

func (f *Faulty) forget(c *faultyConn) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if set, ok := f.conns[c.addr]; ok {
		delete(set, c)
		if len(set) == 0 {
			delete(f.conns, c.addr)
		}
	}
}

// sever closes every established connection to addr and bumps the address
// epoch so in-flight dials from before the sever are refused on completion.
func (f *Faulty) sever(addr string) {
	f.mu.Lock()
	f.epochs[addr]++
	set := f.conns[addr]
	delete(f.conns, addr)
	f.mu.Unlock()
	for c := range set {
		c.severClose()
	}
}

// Crash makes dials to addr fail and severs its established connections
// until Recover is called — a process crash as observed both by in-flight
// traffic and by new RPC attempts.
func (f *Faulty) Crash(addr string) {
	f.mu.Lock()
	f.crashed[addr] = true
	f.mu.Unlock()
	f.sever(addr)
}

// Recover clears a crash.
func (f *Faulty) Recover(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.crashed, addr)
}

// Crashed reports whether addr is currently crashed (Crash without a
// matching Recover).
func (f *Faulty) Crashed(addr string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed[addr]
}

// SeverEpoch returns the number of sever events addr has seen so far: every
// Crash, SetDelay, SetLinkFault or Partition touching the address bumps it.
// The counter is the transport's failure-detector signal — a membership
// layer records the epoch when a node registers and treats any later advance
// as evidence the node's connections were torn down (see
// core.Cluster.DepartWorker).
func (f *Faulty) SeverEpoch(addr string) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epochs[addr]
}

// SetDelay makes every dial to addr wait d before connecting, modelling a
// straggler or a slow link. Established connections are severed so clients
// holding persistent connections observe the new delay on their next use.
func (f *Faulty) SetDelay(addr string, d time.Duration) {
	f.mu.Lock()
	f.delays[addr] = d
	f.mu.Unlock()
	f.sever(addr)
}

// SetLinkFault installs a seeded fault program on every connection to addr:
// each framed message crossing the link is independently dropped, duplicated,
// reordered or corrupted with the program's probabilities (see LinkFault).
// Established connections are severed so pooled callers re-dial through the
// program. A zero-valued LinkFault clears the program (as does
// ClearLinkFault).
func (f *Faulty) SetLinkFault(addr string, lf LinkFault, seed uint64) {
	f.mu.Lock()
	if lf.enabled() {
		f.links[addr] = &linkProgram{lf: lf, seed: seed}
	} else {
		delete(f.links, addr)
	}
	f.mu.Unlock()
	f.sever(addr)
}

// ClearLinkFault removes addr's fault program and severs its connections so
// subsequent traffic flows clean.
func (f *Faulty) ClearLinkFault(addr string) {
	f.SetLinkFault(addr, LinkFault{}, 0)
}

// LinkStats returns the accumulated fault decisions of addr's current
// program (zero stats when none is installed).
func (f *Faulty) LinkStats(addr string) LinkStats {
	f.mu.Lock()
	prog := f.links[addr]
	f.mu.Unlock()
	if prog == nil {
		return LinkStats{}
	}
	prog.mu.Lock()
	defer prog.mu.Unlock()
	return prog.stats
}

// Partition blocks traffic between groupA and groupB (addresses on one side
// cannot dial the other, in either direction) and severs every established
// connection crossing the cut. Partitions accumulate; Heal removes them all.
// Source addresses are only known for dials through Bind views — dials
// through the Faulty itself carry no source and are never partitioned.
func (f *Faulty) Partition(groupA, groupB []string) {
	c := cut{a: make(map[string]struct{}, len(groupA)), b: make(map[string]struct{}, len(groupB))}
	for _, addr := range groupA {
		c.a[addr] = struct{}{}
	}
	for _, addr := range groupB {
		c.b[addr] = struct{}{}
	}
	f.mu.Lock()
	f.cuts = append(f.cuts, c)
	// Bump epochs on both sides so in-flight dials crossing the new cut
	// are refused when they complete.
	for _, addr := range groupA {
		f.epochs[addr]++
	}
	for _, addr := range groupB {
		f.epochs[addr]++
	}
	var crossing []*faultyConn
	for _, set := range f.conns {
		for fc := range set {
			if c.crosses(fc.src, fc.addr) {
				crossing = append(crossing, fc)
			}
		}
	}
	// The conns tables are maps, so the collection order above is a per-run
	// shuffle; sever in (dst, src) order so a partition's observable close
	// sequence is a pure function of the cut, not of map layout.
	sort.Slice(crossing, func(i, j int) bool {
		if crossing[i].addr != crossing[j].addr {
			return crossing[i].addr < crossing[j].addr
		}
		return crossing[i].src < crossing[j].src
	})
	for _, fc := range crossing {
		if set, ok := f.conns[fc.addr]; ok {
			delete(set, fc)
			if len(set) == 0 {
				delete(f.conns, fc.addr)
			}
		}
	}
	f.mu.Unlock()
	for _, fc := range crossing {
		fc.severClose()
	}
}

// Heal removes every partition. Link programs, delays and crashes are
// unaffected — healing restores reachability, not link quality.
func (f *Faulty) Heal() {
	f.mu.Lock()
	f.cuts = nil
	f.mu.Unlock()
}

// partitioned reports whether the (src, dst) link crosses any active cut.
// Callers hold f.mu.
func (f *Faulty) partitioned(src, dst string) bool {
	for _, c := range f.cuts {
		if c.crosses(src, dst) {
			return true
		}
	}
	return false
}

// Bind returns a view of the network bound to a local address: dials through
// the view carry local as their source, which is what partition cuts match
// against. Listen passes through unchanged.
func (f *Faulty) Bind(local string) Network {
	return &boundNetwork{f: f, local: local}
}

// boundNetwork is a source-addressed view of a Faulty network.
type boundNetwork struct {
	f     *Faulty
	local string
}

var _ Network = (*boundNetwork)(nil)

// Listen implements Network.
func (b *boundNetwork) Listen(addr string) (net.Listener, error) {
	return b.f.Listen(addr)
}

// Dial implements Network.
func (b *boundNetwork) Dial(ctx context.Context, addr string) (net.Conn, error) {
	return b.f.dialFrom(ctx, b.local, addr)
}

// Listen implements Network.
func (f *Faulty) Listen(addr string) (net.Listener, error) {
	return f.inner.Listen(addr)
}

// Dial implements Network.
func (f *Faulty) Dial(ctx context.Context, addr string) (net.Conn, error) {
	return f.dialFrom(ctx, "", addr)
}

// dialFrom is Dial with a known source address (empty for unbound dials).
func (f *Faulty) dialFrom(ctx context.Context, src, addr string) (net.Conn, error) {
	f.mu.Lock()
	crashed := f.crashed[addr]
	cutOff := f.partitioned(src, addr)
	delay := f.delays[addr]
	prog := f.links[addr]
	epoch := f.epochs[addr]
	f.mu.Unlock()
	if crashed {
		return nil, fmt.Errorf("%w: %q (crashed)", ErrConnRefused, addr)
	}
	if cutOff {
		return nil, fmt.Errorf("%w: %q (partitioned from %q)", ErrConnRefused, addr, src)
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	conn, err := f.inner.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	inner := conn
	if prog != nil {
		inner = newChaosConn(conn, prog)
	}
	fc := &faultyConn{Conn: inner, f: f, src: src, addr: addr}
	f.mu.Lock()
	if f.crashed[addr] || f.partitioned(src, addr) || f.epochs[addr] != epoch {
		// The node crashed, a cut appeared, or a sever event (crash/
		// recover cycle, delay or link-fault change) happened while the
		// dial was in flight: this connection belongs to the pre-fault
		// world and must not survive into the post-fault one.
		f.mu.Unlock()
		_ = conn.Close()
		return nil, fmt.Errorf("%w: %q (faulted mid-dial)", ErrConnRefused, addr)
	}
	if f.conns[addr] == nil {
		f.conns[addr] = make(map[*faultyConn]struct{})
	}
	f.conns[addr][fc] = struct{}{}
	f.mu.Unlock()
	return fc, nil
}
