package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// frame encodes a length-prefixed message the way the RPC layer does.
func frame(body []byte) []byte {
	out := make([]byte, 4+len(body))
	binary.LittleEndian.PutUint32(out, uint32(len(body)))
	copy(out[4:], body)
	return out
}

// echoServer accepts connections at addr and echoes every byte.
func echoServer(t *testing.T, n Network, addr string) {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}()
		}
	}()
}

// readFrames reads k frames off conn, returning their bodies.
func readFrames(t *testing.T, conn net.Conn, k int) [][]byte {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	out := make([][]byte, 0, k)
	for i := 0; i < k; i++ {
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			t.Fatalf("frame %d header: %v", i, err)
		}
		body := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(conn, body); err != nil {
			t.Fatalf("frame %d body: %v", i, err)
		}
		out = append(out, body)
	}
	return out
}

func TestLinkFaultCorruptFlipsOneBodyByte(t *testing.T) {
	f := NewFaulty(NewMem())
	echoServer(t, f, "a")
	f.SetLinkFault("a", LinkFault{Corrupt: 1}, 7)

	conn, err := f.Dial(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := conn.Write(frame(body)); err != nil {
		t.Fatal(err)
	}
	// The echo reflects the (write-corrupted) frame; the read direction
	// corrupts again. Either way the framing must survive and at least one
	// body byte must differ while the length is preserved.
	got := readFrames(t, conn, 1)[0]
	if len(got) != len(body) {
		t.Fatalf("body length %d, want %d (length prefix must survive corruption)", len(got), len(body))
	}
	diff := 0
	for i := range body {
		if got[i] != body[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("corrupt program with probability 1 left the body intact")
	}
	stats := f.LinkStats("a")
	if stats.Corrupted == 0 || stats.Frames == 0 {
		t.Fatalf("stats = %+v, want corrupted frames recorded", stats)
	}
}

func TestLinkFaultDropLosesMessages(t *testing.T) {
	f := NewFaulty(NewMem())
	echoServer(t, f, "a")
	f.SetLinkFault("a", LinkFault{Drop: 1}, 3)

	conn, err := f.Dial(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(frame([]byte{9, 9})); err != nil {
		t.Fatal(err) // the sender of a dropped message observes success
	}
	_ = conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err == nil {
		t.Fatal("read returned data for a fully-dropped link")
	}
	if stats := f.LinkStats("a"); stats.Dropped == 0 {
		t.Fatalf("stats = %+v, want drops recorded", stats)
	}
}

func TestLinkFaultDuplicateDeliversTwice(t *testing.T) {
	f := NewFaulty(NewMem())
	echoServer(t, f, "a")
	// Duplicate only on the write path's first frame: probability 1 means
	// every frame duplicates; the echo then duplicates again on read, so
	// one sent frame comes back fourfold.
	f.SetLinkFault("a", LinkFault{Duplicate: 1}, 5)

	conn, err := f.Dial(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body := []byte{42}
	if _, err := conn.Write(frame(body)); err != nil {
		t.Fatal(err)
	}
	for i, got := range readFrames(t, conn, 4) {
		if len(got) != 1 || got[0] != 42 {
			t.Fatalf("copy %d = %v, want [42]", i, got)
		}
	}
	if stats := f.LinkStats("a"); stats.Duplicated == 0 {
		t.Fatalf("stats = %+v, want duplicates recorded", stats)
	}
}

func TestLinkFaultReorderSwapsAdjacentFrames(t *testing.T) {
	f := NewFaulty(NewMem())
	echoServer(t, f, "a")
	// Reorder applies per frame with probability 1: frame 0 is held, frame
	// 1 is emitted then held... With two frames written in one direction,
	// the wire sees 1 then 0. Read direction: disable by clearing after
	// writing? The read mangler would also reorder the echoed pair back.
	// Double reorder restores order, so assert on the server side instead:
	// dial a raw listener that records arrival order.
	l, err := f.Listen("rec")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := make(chan [][]byte, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		var bodies [][]byte
		for i := 0; i < 2; i++ {
			var hdr [4]byte
			if _, err := io.ReadFull(c, hdr[:]); err != nil {
				return
			}
			body := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
			if _, err := io.ReadFull(c, body); err != nil {
				return
			}
			bodies = append(bodies, body)
		}
		got <- bodies
	}()
	f.SetLinkFault("rec", LinkFault{Reorder: 1}, 11)
	conn, err := f.Dial(context.Background(), "rec")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(frame([]byte{1})); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame([]byte{2})); err != nil {
		t.Fatal(err)
	}
	select {
	case bodies := <-got:
		if bodies[0][0] != 2 || bodies[1][0] != 1 {
			t.Fatalf("arrival order = %v,%v; want 2,1 (adjacent swap)", bodies[0], bodies[1])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver did not observe both frames")
	}
	if stats := f.LinkStats("rec"); stats.Reordered == 0 {
		t.Fatalf("stats = %+v, want reorders recorded", stats)
	}
}

func TestLinkFaultSeededDeterminism(t *testing.T) {
	run := func(seed uint64) []byte {
		f := NewFaulty(NewMem())
		echoServer(t, f, "a")
		f.SetLinkFault("a", LinkFault{Corrupt: 0.5, Drop: 0}, seed)
		conn, err := f.Dial(context.Background(), "a")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		var out []byte
		for i := 0; i < 8; i++ {
			if _, err := conn.Write(frame([]byte{byte(i), byte(i), byte(i), byte(i)})); err != nil {
				t.Fatal(err)
			}
			out = append(out, readFrames(t, conn, 1)[0]...)
		}
		return out
	}
	a, b := run(99), run(99)
	if string(a) != string(b) {
		t.Fatalf("same seed produced different fault decisions:\n%v\n%v", a, b)
	}
	c := run(100)
	if string(a) == string(c) {
		t.Fatal("different seeds produced identical 8-frame corruption patterns (suspicious)")
	}
}

func TestLinkFaultSplitWritesReassembleFrames(t *testing.T) {
	// Frames split across many tiny writes must still be reassembled and
	// mangled frame-wise, not byte-wise.
	f := NewFaulty(NewMem())
	echoServer(t, f, "a")
	f.SetLinkFault("a", LinkFault{Corrupt: 1}, 17)
	conn, err := f.Dial(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := frame([]byte{5, 6, 7, 8, 9})
	for _, b := range msg {
		if _, err := conn.Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	got := readFrames(t, conn, 1)[0]
	if len(got) != 5 {
		t.Fatalf("reassembled body length %d, want 5", len(got))
	}
}

func TestPartitionBlocksCrossGroupDialsAndSevers(t *testing.T) {
	f := NewFaulty(NewMem())
	echoServer(t, f, "server-1")
	a := f.Bind("server-0")

	conn, err := a.Dial(context.Background(), "server-1")
	if err != nil {
		t.Fatal(err)
	}
	f.Partition([]string{"server-0"}, []string{"server-1"})

	// The established cross-cut connection is severed.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on a partitioned connection succeeded")
	}
	// New cross-cut dials are refused, in both directions.
	if _, err := a.Dial(context.Background(), "server-1"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("cross-cut dial err = %v, want ErrConnRefused", err)
	}
	echoServer(t, f, "server-0")
	if _, err := f.Bind("server-1").Dial(context.Background(), "server-0"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("reverse cross-cut dial err = %v, want ErrConnRefused", err)
	}
	// Unbound dials carry no source and are never partitioned.
	c2, err := f.Dial(context.Background(), "server-1")
	if err != nil {
		t.Fatalf("unbound dial: %v", err)
	}
	c2.Close()

	f.Heal()
	c3, err := a.Dial(context.Background(), "server-1")
	if err != nil {
		t.Fatalf("post-heal dial: %v", err)
	}
	c3.Close()
}

func TestPartitionLeavesSameSideTrafficAlone(t *testing.T) {
	f := NewFaulty(NewMem())
	echoServer(t, f, "server-1")
	echoServer(t, f, "worker-0")
	s0 := f.Bind("server-0")

	f.Partition([]string{"server-0", "server-1"}, []string{"worker-0"})
	// server-0 -> server-1 stays within group A.
	conn, err := s0.Dial(context.Background(), "server-1")
	if err != nil {
		t.Fatalf("same-side dial: %v", err)
	}
	conn.Close()
	if _, err := s0.Dial(context.Background(), "worker-0"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("cross-cut dial err = %v, want ErrConnRefused", err)
	}
}

// TestRecoverAfterCrashRefusesMidDialConn locks the mid-dial bookkeeping:
// a connection whose inner dial straddles a Crash/Recover cycle belongs to
// the pre-crash world and must be refused, not registered as live.
func TestRecoverAfterCrashRefusesMidDialConn(t *testing.T) {
	slow := &slowDialNet{Network: NewMem(), entered: make(chan struct{}), gate: make(chan struct{})}
	f := NewFaulty(slow)
	echoServer(t, slow.Network, "a")

	done := make(chan error, 1)
	go func() {
		_, err := f.Dial(context.Background(), "a")
		done <- err
	}()
	<-slow.entered // the dial is in flight
	f.Crash("a")
	f.Recover("a")
	close(slow.gate) // let the inner dial complete
	if err := <-done; !errors.Is(err, ErrConnRefused) {
		t.Fatalf("mid-dial crash/recover: err = %v, want ErrConnRefused", err)
	}
}

// slowDialNet gates inner dials so tests can interleave faults mid-dial.
type slowDialNet struct {
	Network
	once    sync.Once
	entered chan struct{}
	gate    chan struct{}
}

func (s *slowDialNet) Dial(ctx context.Context, addr string) (net.Conn, error) {
	s.once.Do(func() { close(s.entered) })
	<-s.gate
	return s.Network.Dial(ctx, addr)
}

// TestSeverThenOwnerCloseSingleUnderlyingClose locks the double-close fix: a
// sever and the owner's Close race to close the same underlying conn; it
// must be closed exactly once.
func TestSeverThenOwnerCloseSingleUnderlyingClose(t *testing.T) {
	cc := &closeCounting{Network: NewMem()}
	f := NewFaulty(cc)
	echoServer(t, cc.Network, "a")

	conn, err := f.Dial(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	f.Crash("a") // severs: first underlying close
	_ = conn.Close()
	_ = conn.Close() // owner closes (twice, even)
	if got := cc.closes.Load(); got != 1 {
		t.Fatalf("underlying conn closed %d times, want exactly 1", got)
	}
}

type closeCounting struct {
	Network
	closes atomic64
}

type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) Add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) Load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

func (c *closeCounting) Dial(ctx context.Context, addr string) (net.Conn, error) {
	conn, err := c.Network.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &closeCountingConn{Conn: conn, n: &c.closes}, nil
}

type closeCountingConn struct {
	net.Conn
	n *atomic64
}

func (c *closeCountingConn) Close() error {
	c.n.Add(1)
	return c.Conn.Close()
}

// TestConcurrentCrashRecoverDialStress hammers Crash/Recover/Dial/Close from
// many goroutines; run under -race it locks the Faulty bookkeeping. The
// invariant checked at the end: after a final Crash, no connection remains
// registered (nothing leaked past the sever).
func TestConcurrentCrashRecoverDialStress(t *testing.T) {
	f := NewFaulty(NewMem())
	echoServer(t, f, "a")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				conn, err := f.Dial(ctx, "a")
				cancel()
				if err == nil {
					_, _ = conn.Write(frame([]byte{1}))
					_ = conn.Close()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			f.Crash("a")
			f.Recover("a")
		}
	}()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	f.Crash("a")
	f.mu.Lock()
	remaining := len(f.conns["a"])
	f.mu.Unlock()
	if remaining != 0 {
		t.Fatalf("%d connections leaked past the final crash's sever", remaining)
	}
}
