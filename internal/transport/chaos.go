package transport

import (
	"encoding/binary"
	"hash/fnv"
	"net"
	"sync"
	"time"
)

// This file is the adversarial-network half of the fault injector: seeded,
// per-link fault programs that mangle the framed byte streams flowing over a
// connection. Where Crash and SetDelay model fail-stop and slow nodes, a
// LinkFault models a Byzantine network element — a router that drops,
// duplicates, reorders or corrupts messages in flight. Programs are seeded,
// so a chaos run replays the same fault decisions for the same seed and
// frame sequence.
//
// All Garfield traffic is length-prefixed frames (the RPC layer's wire
// format), so the programs operate frame-wise: a chaos conn reassembles the
// 4-byte little-endian length prefix + body structure from the byte stream
// and applies one seeded decision per frame. Operating on frames rather than
// raw bytes keeps the faults meaningful — a dropped frame is a lost message
// (the peer looks mute for that exchange), not a desynchronized stream that
// merely looks like a connection reset, which Crash already models. Payload
// corruption flips a byte inside the frame body while preserving the length
// prefix; the RPC checksum path is responsible for detecting and rejecting
// the mangled payload (proven by tests in internal/rpc).

// LinkFault is a per-link fault program: independent per-frame probabilities
// for each fault class. The zero value injects nothing.
type LinkFault struct {
	// Drop is the probability a frame is silently discarded.
	Drop float64
	// Duplicate is the probability a frame is delivered twice.
	Duplicate float64
	// Reorder is the probability a frame is held back and delivered after
	// the frame that follows it (swapping adjacent messages). A held frame
	// with no successor by the time the connection closes is lost.
	Reorder float64
	// Corrupt is the probability one byte of the frame body is flipped
	// (XORed with a non-zero mask). The length prefix is preserved, so the
	// corruption reaches the decoder as a well-framed, mangled payload.
	Corrupt float64
}

// enabled reports whether the program injects any fault at all.
func (lf LinkFault) enabled() bool {
	return lf.Drop > 0 || lf.Duplicate > 0 || lf.Reorder > 0 || lf.Corrupt > 0
}

// LinkStats counts the fault decisions a link's program has taken, summed
// over both directions and all connections to the link's address.
type LinkStats struct {
	Frames     uint64 // frames that traversed the link
	Dropped    uint64
	Duplicated uint64
	Reordered  uint64
	Corrupted  uint64
}

// linkProgram is the shared per-address program state: the fault spec, the
// seed new connection streams derive from, and the accumulated stats.
type linkProgram struct {
	lf   LinkFault
	seed uint64

	mu    sync.Mutex
	dials uint64 // distinct chaos conns opened under this program
	stats LinkStats
}

// streamSeed derives an independent seed for one direction of one
// connection: FNV-64a over the program seed, a connection counter and a
// direction tag, so replaying a run with deterministic per-link connection
// order replays the same fault decisions.
func (p *linkProgram) streamSeed(conn uint64, dir string) uint64 {
	h := fnv.New64a()
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], p.seed)
	binary.LittleEndian.PutUint64(b[8:], conn)
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(dir))
	return h.Sum64()
}

func (p *linkProgram) add(delta LinkStats) {
	p.mu.Lock()
	p.stats.Frames += delta.Frames
	p.stats.Dropped += delta.Dropped
	p.stats.Duplicated += delta.Duplicated
	p.stats.Reordered += delta.Reordered
	p.stats.Corrupted += delta.Corrupted
	p.mu.Unlock()
}

// splitmix64 is the same tiny deterministic generator tensor.RNG uses,
// reimplemented locally so transport stays dependency-free.
type splitmix64 struct{ state uint64 }

func (r *splitmix64) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitmix64) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// frameMangler applies one direction's fault program to a framed byte
// stream: feed bytes in, take mangled bytes out. It reassembles frames
// incrementally, so writes and reads may split frames arbitrarily.
type frameMangler struct {
	prog *linkProgram
	rng  splitmix64

	partial []byte // accumulating bytes of the frame being reassembled
	need    int    // total frame size once the header is known (0: header pending)
	held    []byte // a reorder-held frame awaiting its successor
}

func newFrameMangler(prog *linkProgram, seed uint64) *frameMangler {
	return &frameMangler{prog: prog, rng: splitmix64{state: seed}}
}

// push feeds raw stream bytes through the program and returns the bytes to
// deliver. The returned slice is freshly allocated per call (chaos links are
// a test facility; fidelity beats allocation count here).
func (m *frameMangler) push(b []byte) []byte {
	var out []byte
	var delta LinkStats
	for len(b) > 0 {
		if m.need == 0 {
			// Accumulate the 4-byte length prefix.
			take := 4 - len(m.partial)
			if take > len(b) {
				take = len(b)
			}
			m.partial = append(m.partial, b[:take]...)
			b = b[take:]
			if len(m.partial) < 4 {
				continue
			}
			m.need = 4 + int(binary.LittleEndian.Uint32(m.partial))
		}
		take := m.need - len(m.partial)
		if take > len(b) {
			take = len(b)
		}
		m.partial = append(m.partial, b[:take]...)
		b = b[take:]
		if len(m.partial) < m.need {
			continue
		}
		out = m.emit(out, m.partial, &delta)
		m.partial, m.need = nil, 0
	}
	m.prog.add(delta)
	return out
}

// emit applies one frame's fault decisions and appends the surviving bytes
// to out. Decision order is fixed (drop, duplicate, reorder, corrupt) so a
// seed fully determines the outcome sequence.
func (m *frameMangler) emit(out, frame []byte, delta *LinkStats) []byte {
	lf := m.prog.lf
	delta.Frames++
	if lf.Drop > 0 && m.rng.float64() < lf.Drop {
		delta.Dropped++
		return m.flush(out)
	}
	copies := 1
	if lf.Duplicate > 0 && m.rng.float64() < lf.Duplicate {
		delta.Duplicated++
		copies = 2
	}
	hold := lf.Reorder > 0 && m.rng.float64() < lf.Reorder
	if lf.Corrupt > 0 && m.rng.float64() < lf.Corrupt && len(frame) > 4 {
		delta.Corrupted++
		frame = append([]byte(nil), frame...)
		i := 4 + int(m.rng.next()%uint64(len(frame)-4))
		mask := byte(m.rng.next())
		if mask == 0 {
			mask = 0xff
		}
		frame[i] ^= mask
	}
	if hold && m.held == nil {
		// Hold this frame; it rides out behind the next one.
		delta.Reordered++
		held := make([]byte, 0, len(frame)*copies)
		for c := 0; c < copies; c++ {
			held = append(held, frame...)
		}
		m.held = held
		return out
	}
	for c := 0; c < copies; c++ {
		out = append(out, frame...)
	}
	return m.flush(out)
}

// flush releases a reorder-held frame behind the frame just emitted.
func (m *frameMangler) flush(out []byte) []byte {
	if m.held != nil {
		out = append(out, m.held...)
		m.held = nil
	}
	return out
}

// chaosConn wraps a dialed connection with the link's fault program, one
// mangler per direction: writes traverse the dialer-to-peer direction, reads
// the peer-to-dialer direction. Both directions consume independent seeded
// streams, so request and response faults do not correlate.
//
// Outbound bytes are flushed by a background goroutine through an ordered
// queue rather than written inline. The decoupling models the buffering any
// real network path has — and is required for correctness over the
// in-memory transport: net.Pipe is a synchronous rendezvous, so a
// duplicated frame inline-written while the peer is itself blocked writing
// (a strict request/response server that has stopped reading) would
// deadlock both ends, where a real kernel socket buffer simply absorbs the
// amplification.
type chaosConn struct {
	net.Conn

	wmu   sync.Mutex
	wm    *frameMangler
	rmu   sync.Mutex
	rm    *frameMangler
	rdBuf []byte // mangled bytes awaiting delivery to the reader

	fmu     sync.Mutex
	fcond   *sync.Cond
	fqueue  [][]byte // mangled writes awaiting flush, in order
	fclosed bool
	ferr    error
}

func newChaosConn(inner net.Conn, prog *linkProgram) *chaosConn {
	prog.mu.Lock()
	conn := prog.dials
	prog.dials++
	prog.mu.Unlock()
	c := &chaosConn{
		Conn: inner,
		wm:   newFrameMangler(prog, prog.streamSeed(conn, "w")),
		rm:   newFrameMangler(prog, prog.streamSeed(conn, "r")),
	}
	c.fcond = sync.NewCond(&c.fmu)
	go c.flush()
	return c
}

// flush drains the outbound queue into the underlying connection, in order.
// A write error parks the connection (surfaced on the next Write); Close
// unblocks an in-flight underlying write and ends the goroutine.
func (c *chaosConn) flush() {
	for {
		c.fmu.Lock()
		for len(c.fqueue) == 0 && !c.fclosed && c.ferr == nil {
			c.fcond.Wait()
		}
		if c.ferr != nil || (c.fclosed && len(c.fqueue) == 0) {
			c.fmu.Unlock()
			return
		}
		out := c.fqueue[0]
		c.fqueue = c.fqueue[1:]
		c.fmu.Unlock()
		if _, err := c.Conn.Write(out); err != nil {
			c.fmu.Lock()
			c.ferr = err
			c.fmu.Unlock()
			return
		}
	}
}

// Write implements net.Conn: the program decides the fate of every complete
// frame in b; surviving bytes are queued for the flusher. A fully-dropped
// write still reports success — the sender of a lost message observes
// nothing.
func (c *chaosConn) Write(b []byte) (int, error) {
	c.wmu.Lock()
	out := c.wm.push(b)
	c.wmu.Unlock()
	c.fmu.Lock()
	defer c.fmu.Unlock()
	if c.ferr != nil {
		return 0, c.ferr
	}
	if c.fclosed {
		return 0, net.ErrClosed
	}
	if len(out) > 0 {
		c.fqueue = append(c.fqueue, out)
		c.fcond.Signal()
	}
	return len(b), nil
}

// Close implements net.Conn, stopping the flusher (any queued-but-unflushed
// bytes are lost with the connection, as on a real teardown).
func (c *chaosConn) Close() error {
	c.fmu.Lock()
	c.fclosed = true
	c.fcond.Broadcast()
	c.fmu.Unlock()
	return c.Conn.Close()
}

// SetDeadline applies to reads only: once Write has queued bytes, they are
// "in the network" — a caller-side deadline (the pooled client poisons the
// deadline to unblock a cancelled call's I/O) must not abort the flusher's
// delivery, exactly as cancelling a call does not recall bytes a kernel
// socket buffer already accepted. Close remains the way to stop delivery.
func (c *chaosConn) SetDeadline(t time.Time) error {
	return c.Conn.SetReadDeadline(t)
}

// SetWriteDeadline is a no-op; see SetDeadline.
func (c *chaosConn) SetWriteDeadline(time.Time) error { return nil }

// Read implements net.Conn, delivering the mangled inbound stream. A read
// that yields only dropped frames loops back to the underlying connection
// rather than returning zero bytes.
func (c *chaosConn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for len(c.rdBuf) == 0 {
		buf := make([]byte, 32*1024)
		n, err := c.Conn.Read(buf)
		if n > 0 {
			c.rdBuf = append(c.rdBuf, c.rm.push(buf[:n])...)
		}
		if err != nil {
			if len(c.rdBuf) > 0 {
				break
			}
			return 0, err
		}
	}
	n := copy(p, c.rdBuf)
	c.rdBuf = c.rdBuf[n:]
	return n, nil
}
