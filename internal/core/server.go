package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"garfield/internal/attack"
	"garfield/internal/compress"
	"garfield/internal/data"
	"garfield/internal/gar"
	"garfield/internal/model"
	"garfield/internal/rpc"
	"garfield/internal/sgd"
	"garfield/internal/tensor"
)

// Server is the stateful node of Garfield's design (Section 3.2): it owns
// the model state, asks workers for gradient estimates, aggregates them and
// updates the model. It exposes the two networking abstractions of the paper
// — GetGradients(t, q) and GetModels(q) — plus GetAggrGrads(q) for the
// decentralized contract step, and serves the corresponding pull requests
// from its peers.
//
// A Byzantine server is the same object with a non-nil attack, which
// corrupts the models and aggregated gradients it serves.
type Server struct {
	arch   model.Model
	opt    *sgd.Optimizer
	client rpc.Caller
	atk    attack.Attack
	det    bool

	// arena holds the fused decode destinations for this server's pulls:
	// peer i's reply decodes straight into slot i's reusable backing array
	// (rpc.Caller.PullFirstQInto), so steady-state pulls allocate no
	// per-reply vectors whatever codec is on the wire. Sharing one arena
	// across GetGradients/GetModels/GetAggrGrads is safe because a server
	// issues pulls one at a time and every protocol step aggregates a
	// pull's replies — into the Aggregator's own scratch, which never
	// aliases its inputs — before issuing the next pull.
	arena *gar.ReplyArena

	// rosterMu guards the pull target lists, which the membership layer
	// rebinds on every roster epoch transition (Cluster join/leave/scale).
	// The lists are replaced wholesale, never mutated in place, so a pull
	// round that snapshotted them keeps running against the old roster
	// while new rounds observe the new one.
	rosterMu sync.RWMutex
	workers  []string
	peers    []string // other server replicas
	// accept is the payload encoding this server advertises on gradient
	// pulls (Request.Accept): workers configured with the matching codec
	// compress their replies; everything else falls back to fp64. Model
	// and aggregated-gradient pulls between replicas stay passthrough —
	// model state has no error-feedback stream to absorb quantization
	// noise, so compressing it would compound error across contractions.
	accept compress.Encoding

	mu          sync.RWMutex
	params      tensor.Vector
	latestAggr  tensor.Vector
	currentStep uint32

	// Deterministic-mode reply cache for Byzantine servers: a stochastic
	// attack draws once per (kind, step) and every puller of that step
	// receives the same corrupted vector, mirroring the worker's
	// per-step broadcast cache. Honest servers (attack.None) bypass it.
	detMu   sync.Mutex
	detKind rpc.Kind
	detStep uint32
	detHas  bool
	detOK   bool
	detVec  tensor.Vector

	// partMu guards the shard-part store of the sharded-aggregation
	// protocol: the aggregated parts this replica owns for the current
	// round, served to peers via KindGetShardPart. Entries are keyed by
	// shard index and stamped with their step; a pull whose step does not
	// match the stored stamp is declined, so a part from an aborted or
	// older round can never leak into a later reassembly. Buffers are
	// reused across rounds (SetShardPart copies in place).
	partMu sync.RWMutex
	parts  map[uint16]*shardPart
}

// shardPart is one owned aggregated part: the round it belongs to and its
// coordinates (a shard slice for coordinate-wise rules, a full-dimension
// group winner for hierarchical selection).
type shardPart struct {
	step uint32
	vec  tensor.Vector
}

// ServerConfig collects the dependencies of a Server.
type ServerConfig struct {
	// Arch is the model architecture (shared by all nodes).
	Arch model.Model
	// Init is the initial parameter vector; the server clones it.
	Init tensor.Vector
	// Optimizer applies aggregated gradients.
	Optimizer *sgd.Optimizer
	// Client issues pulls; Workers and Peers are the pull targets. The
	// pooled client is the standard choice (see rpc.PooledClient).
	Client  rpc.Caller
	Workers []string
	Peers   []string
	// Attack, when non-nil, makes this a Byzantine server.
	Attack attack.Attack
	// Deterministic orders pulled reply sets canonically (by peer
	// address) instead of by arrival; see Config.Deterministic.
	Deterministic bool
	// Accept is the payload encoding to advertise on gradient pulls
	// (compress.EncFP64 requests plain passthrough replies).
	Accept compress.Encoding
}

var _ rpc.Handler = (*Server)(nil)

// NewServer returns a server with the given dependencies.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Arch == nil || cfg.Optimizer == nil || cfg.Client == nil {
		return nil, fmt.Errorf("%w: server needs arch, optimizer and client", ErrConfig)
	}
	if len(cfg.Init) != cfg.Arch.Dim() {
		return nil, fmt.Errorf("%w: init params dim %d, model dim %d",
			ErrConfig, len(cfg.Init), cfg.Arch.Dim())
	}
	atk := cfg.Attack
	if atk == nil {
		atk = attack.None{}
	}
	n := len(cfg.Workers)
	if len(cfg.Peers) > n {
		n = len(cfg.Peers)
	}
	return &Server{
		arch:    cfg.Arch,
		opt:     cfg.Optimizer,
		client:  cfg.Client,
		workers: append([]string(nil), cfg.Workers...),
		peers:   append([]string(nil), cfg.Peers...),
		atk:     atk,
		det:     cfg.Deterministic,
		accept:  cfg.Accept,
		params:  cfg.Init.Clone(),
		arena:   gar.NewReplyArena(n),
	}, nil
}

// Params returns a copy of the current model state.
func (s *Server) Params() tensor.Vector {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.params.Clone()
}

// Step returns the current iteration counter.
func (s *Server) Step() uint32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.currentStep
}

// Snapshot returns a copy of the model state together with the step it
// belongs to, as one consistent read — the async fetchers tag gradients with
// the step their parameters came from, so the pair must not tear.
func (s *Server) Snapshot() (tensor.Vector, uint32) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.params.Clone(), s.currentStep
}

// workerList returns the current worker pull targets. The slice is replaced,
// never mutated, so the snapshot is safe to iterate without the lock.
func (s *Server) workerList() []string {
	s.rosterMu.RLock()
	defer s.rosterMu.RUnlock()
	return s.workers
}

// peerList returns the current server-replica pull targets.
func (s *Server) peerList() []string {
	s.rosterMu.RLock()
	defer s.rosterMu.RUnlock()
	return s.peers
}

// SetWorkers rebinds the server's worker pull targets — a roster epoch
// transition. In-flight pull rounds keep their snapshot of the old list.
func (s *Server) SetWorkers(workers []string) {
	fresh := append([]string(nil), workers...)
	s.rosterMu.Lock()
	s.workers = fresh
	s.rosterMu.Unlock()
}

// SetPeers rebinds the server's replica pull targets.
func (s *Server) SetPeers(peers []string) {
	fresh := append([]string(nil), peers...)
	s.rosterMu.Lock()
	s.peers = fresh
	s.rosterMu.Unlock()
}

// ResetDerived clears the server's derived state — the published aggregated
// gradient and the deterministic per-step reply cache — without touching the
// model or the optimizer. Crash recovery goes through it: both pieces were
// produced on the pre-crash timeline, and serving them after the replica
// rejoins would hand peers vectors from rounds the rest of the fleet has
// moved past (exactly what checkpoint restore resets, minus the rollback).
func (s *Server) ResetDerived() {
	s.mu.Lock()
	s.latestAggr = nil
	s.mu.Unlock()
	s.detMu.Lock()
	s.detHas, s.detOK, s.detVec = false, false, nil
	s.detMu.Unlock()
	s.partMu.Lock()
	s.parts = nil
	s.partMu.Unlock()
}

// AdoptState overwrites the replica's model state and step counter with a
// peer's — the catch-up path of the sharded protocol, where a recovered
// replica bootstraps from the fleet's newest live model before rejoining
// reassembly. Checkpoint-restore semantics minus the encoding: optimizer
// schedule state realigns to the adopted step, and every piece of derived
// state (published aggregate, deterministic reply cache, owned shard parts)
// is dropped — it was produced on a timeline this replica no longer
// inhabits.
func (s *Server) AdoptState(params tensor.Vector, step uint32) error {
	if len(params) != s.arch.Dim() {
		return fmt.Errorf("%w: adopt_state dim %d, model dim %d", ErrConfig, len(params), s.arch.Dim())
	}
	s.mu.Lock()
	copy(s.params, params)
	s.currentStep = step
	s.latestAggr = nil
	s.opt.ResetTo(int(step))
	s.mu.Unlock()
	s.detMu.Lock()
	s.detHas, s.detOK, s.detVec = false, false, nil
	s.detMu.Unlock()
	s.partMu.Lock()
	s.parts = nil
	s.partMu.Unlock()
	return nil
}

// GetGradients implements the paper's get_gradients(t, q): it broadcasts the
// current model to the workers (folded into the pull request) and returns
// the fastest q gradient estimates. q == len(workers) is the synchronous
// mode; q < len(workers) tolerates stragglers and faults.
func (s *Server) GetGradients(ctx context.Context, t int, q int) ([]tensor.Vector, error) {
	req := rpc.Request{Kind: rpc.KindGetGradient, Step: uint32(t), Accept: s.accept, Vec: s.Params()}
	replies, err := s.client.PullFirstQInto(ctx, s.workerList(), q, req, s.arena)
	if err != nil {
		return nil, fmt.Errorf("core: get_gradients(t=%d, q=%d): %w", t, q, err)
	}
	return s.replyVectors(replies), nil
}

// GetGradientsRange is get_gradients(t, q) restricted to one coordinate
// shard: the request still carries the full model (the worker needs every
// coordinate to compute its gradient) but asks for only the [lo, hi) slice
// of the estimate, so the reply payload — and the decode bound — shrink to
// the shard's width. shard tags the pull for per-shard wire accounting.
func (s *Server) GetGradientsRange(ctx context.Context, t, q int, shard uint16, lo, hi int) ([]tensor.Vector, error) {
	req := rpc.Request{
		Kind: rpc.KindGetGradient, Step: uint32(t), Accept: s.accept,
		Shard: shard, Lo: uint32(lo), Hi: uint32(hi), Vec: s.Params(),
	}
	replies, err := s.client.PullFirstQInto(ctx, s.workerList(), q, req, s.arena)
	if err != nil {
		return nil, fmt.Errorf("core: get_gradients_range(t=%d, q=%d, [%d:%d)): %w", t, q, lo, hi, err)
	}
	return s.replyVectors(replies), nil
}

// GetGradientsFrom is get_gradients(t, q) against an explicit worker subset
// — the group-local pull of the hierarchical sharded protocol, where a
// shard owner collects full gradients from its group's members only.
func (s *Server) GetGradientsFrom(ctx context.Context, t int, workers []string, q int) ([]tensor.Vector, error) {
	req := rpc.Request{Kind: rpc.KindGetGradient, Step: uint32(t), Accept: s.accept, Vec: s.Params()}
	replies, err := s.client.PullFirstQInto(ctx, workers, q, req, s.arena)
	if err != nil {
		return nil, fmt.Errorf("core: get_gradients_from(t=%d, q=%d of %d): %w", t, q, len(workers), err)
	}
	return s.replyVectors(replies), nil
}

// GetModels implements the paper's get_models(q): it pulls the current model
// state of the fastest q server replicas (out of all peers).
func (s *Server) GetModels(ctx context.Context, q int) ([]tensor.Vector, error) {
	req := rpc.Request{Kind: rpc.KindGetModel, Step: s.Step()}
	replies, err := s.client.PullFirstQInto(ctx, s.peerList(), q, req, s.arena)
	if err != nil {
		return nil, fmt.Errorf("core: get_models(q=%d): %w", q, err)
	}
	return s.replyVectors(replies), nil
}

// GetAggrGrads pulls the latest aggregated gradient of the fastest q peers —
// the multi-round contract step of the decentralized application
// (Listing 3).
func (s *Server) GetAggrGrads(ctx context.Context, q int) ([]tensor.Vector, error) {
	req := rpc.Request{Kind: rpc.KindGetAggrGrad, Step: s.Step()}
	replies, err := s.client.PullFirstQInto(ctx, s.peerList(), q, req, s.arena)
	if err != nil {
		return nil, fmt.Errorf("core: get_aggr_grads(q=%d): %w", q, err)
	}
	return s.replyVectors(replies), nil
}

// replyVectors extracts the pulled vectors. Replies arrive fastest-first;
// in deterministic mode they are re-ordered canonically by peer address so
// that aggregation input order — and with it the floating-point reduction
// order of order-sensitive GARs — does not depend on scheduling.
func (s *Server) replyVectors(replies []rpc.Reply) []tensor.Vector {
	if s.det {
		sort.Slice(replies, func(i, j int) bool { return replies[i].From < replies[j].From })
	}
	out := make([]tensor.Vector, len(replies))
	for i, r := range replies {
		out[i] = r.Vec
	}
	return out
}

// UpdateModel applies an aggregated gradient through the optimizer — the
// paper's update_model method.
func (s *Server) UpdateModel(aggrGrad tensor.Vector) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.opt.Apply(s.params, aggrGrad); err != nil {
		return fmt.Errorf("core: update_model: %w", err)
	}
	s.currentStep++
	return nil
}

// WriteModel overwrites the model state — the paper's write_model method,
// used after model aggregation among server replicas.
func (s *Server) WriteModel(m tensor.Vector) error {
	if len(m) != s.arch.Dim() {
		return fmt.Errorf("%w: write_model dim %d, model dim %d", ErrConfig, len(m), s.arch.Dim())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	copy(s.params, m)
	return nil
}

// SetLatestAggrGrad publishes the node's aggregated gradient for peers to
// pull during the contract step (Listing 3, line 18).
func (s *Server) SetLatestAggrGrad(g tensor.Vector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latestAggr = g.Clone()
}

// SetShardPart publishes this replica's aggregated part for (step, shard),
// copying into the slot's reused buffer — the owner's half of the sharded
// protocol's Phase A. Peers pull it with KindGetShardPart during Phase B
// reassembly.
func (s *Server) SetShardPart(step uint32, shard uint16, part tensor.Vector) {
	s.partMu.Lock()
	defer s.partMu.Unlock()
	if s.parts == nil {
		s.parts = make(map[uint16]*shardPart)
	}
	e := s.parts[shard]
	if e == nil {
		e = &shardPart{}
		s.parts[shard] = e
	}
	e.step = step
	e.vec = tensor.Resize(e.vec, len(part))
	copy(e.vec, part)
}

// shardPartLocal returns the replica's own stored part for (step, shard)
// without a network round trip — the owner's local read during Phase B. The
// returned vector aliases the store; the single-goroutine sharded round
// reads it before any later SetShardPart can overwrite it.
func (s *Server) shardPartLocal(step uint32, shard uint16) (tensor.Vector, bool) {
	s.partMu.RLock()
	defer s.partMu.RUnlock()
	e := s.parts[shard]
	if e == nil || e.step != step {
		return nil, false
	}
	return e.vec, true
}

// GetShardPart pulls one aggregated part from its owner — the reassembly
// pull of Phase B. lo/hi carry the expected coordinate range so the reply
// decoder is bounded by the part's width (hierarchical group winners span
// the full dimension: lo=0, hi=d).
func (s *Server) GetShardPart(ctx context.Context, owner string, step uint32, shard uint16, lo, hi int) (tensor.Vector, error) {
	req := rpc.Request{
		Kind: rpc.KindGetShardPart, Step: step,
		Shard: shard, Lo: uint32(lo), Hi: uint32(hi),
	}
	v, err := s.client.Call(ctx, owner, req)
	if err != nil {
		return nil, fmt.Errorf("core: get_shard_part(step=%d, shard=%d) from %s: %w", step, shard, owner, err)
	}
	return v, nil
}

// ComputeAccuracy evaluates top-1 accuracy of the current model on the test
// set — the paper's compute_accuracy method.
func (s *Server) ComputeAccuracy(test *data.Dataset) (float64, error) {
	return s.arch.Accuracy(s.Params(), test)
}

// Handle implements rpc.Handler: serves model, aggregated-gradient and ping
// requests. A Byzantine server corrupts the vectors it serves.
func (s *Server) Handle(req rpc.Request) rpc.Response {
	switch req.Kind {
	case rpc.KindGetModel:
		return s.serveVector(req, s.Params())
	case rpc.KindGetAggrGrad:
		s.mu.RLock()
		aggr := s.latestAggr
		s.mu.RUnlock()
		if aggr == nil {
			return rpc.Response{}
		}
		return s.serveVector(req, aggr.Clone())
	case rpc.KindGetShardPart:
		s.partMu.RLock()
		var part tensor.Vector
		if e := s.parts[req.Shard]; e != nil && e.step == req.Step {
			// Clone under the lock: the response encoder reads the vector
			// after Handle returns, when a later round's SetShardPart could
			// already be overwriting the slot.
			part = e.vec.Clone()
		}
		s.partMu.RUnlock()
		if part == nil {
			return rpc.Response{} // nothing owned for that (step, shard)
		}
		return s.serveVector(req, part)
	case rpc.KindPing:
		return rpc.Response{OK: true}
	default:
		return rpc.Response{}
	}
}

func (s *Server) serveVector(req rpc.Request, v tensor.Vector) rpc.Response {
	if _, honest := s.atk.(attack.None); s.det && !honest {
		return s.serveVectorDeterministic(req, v)
	}
	out, ok := s.atk.Apply(v, nil)
	if !ok {
		return rpc.Response{}
	}
	return rpc.Response{OK: true, Vec: out}
}

// serveVectorDeterministic serves Byzantine replies in deterministic mode:
// the attack is applied once per (kind, step) — a stochastic attack draws
// once — and every puller of that step receives the identical corrupted
// vector. A Byzantine server's state is static (its training loop is not
// driven), so the step alone keys the cache. With several Byzantine
// replicas sharing one stochastic attack instance the draw interleaving
// across replicas remains scheduling-dependent; deterministic runs use at
// most one stochastic Byzantine server (fps <= 1), as the presets do.
func (s *Server) serveVectorDeterministic(req rpc.Request, v tensor.Vector) rpc.Response {
	s.detMu.Lock()
	defer s.detMu.Unlock()
	if s.detHas && s.detKind == req.Kind && s.detStep == req.Step {
		if !s.detOK {
			return rpc.Response{}
		}
		return rpc.Response{OK: true, Vec: s.detVec}
	}
	s.detKind, s.detStep, s.detHas, s.detOK, s.detVec = req.Kind, req.Step, true, false, nil
	out, ok := s.atk.Apply(v, nil)
	if !ok {
		return rpc.Response{} // omission, replayed for the step
	}
	s.detOK, s.detVec = true, out
	return rpc.Response{OK: true, Vec: out}
}
