package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"garfield/internal/gar"
	"garfield/internal/tensor"
)

// Stepper is the per-round protocol state machine, decoupled from the run
// loop that drives it. Step(i) executes iteration i — pulls, aggregation,
// model updates, whatever the topology's round consists of — and Observed
// returns the replica accuracy is measured at after the step. Extracting
// the state machine behind this interface is what lets one loop
// (driveSteps) serve both execution engines: the live runner drives
// steppers over goroutine-per-node RPC and the wall clock, the
// discrete-event simulator drives the same steppers over direct
// virtual-time dispatch.
type Stepper interface {
	// Step executes iteration i and returns the round's root-cause error.
	Step(i int) error
	// Observed returns the replica the run's accuracy is measured at —
	// valid after a successful Step.
	Observed() *Server
}

// phaseTimer starts a per-phase duration measurement on the cluster's clock
// and returns its stop function. Under the simulator wiring the measured
// spans are virtual time, so phase breakdowns are deterministic per seed
// instead of scheduler noise.
func (c *Cluster) phaseTimer() func() time.Duration {
	start := c.clock.Now()
	return func() time.Duration { return c.clock.Now().Sub(start) }
}

// driveSteps is the engine-agnostic run loop shared by every lockstep
// protocol runner: one Step, one throughput tick and one accuracy check per
// iteration, all measured on the cluster's clock. Whether the stepper
// underneath fans out goroutines over real RPC or advances a virtual clock
// over direct dispatch is invisible from here.
func (c *Cluster) driveSteps(res *Result, st Stepper, opt RunOptions) (*Result, error) {
	start := c.clock.Now()
	wire0 := c.WireStats()
	for i := 0; i < opt.Iterations; i++ {
		if err := st.Step(i); err != nil {
			return nil, err
		}
		res.Breakdown.EndIteration()
		res.Updates++
		if err := c.recordAccuracy(res, st.Observed(), opt, i, start); err != nil {
			return nil, err
		}
	}
	res.WallTime = c.clock.Now().Sub(start)
	res.Wire = c.WireStats().Sub(wire0)
	return res, nil
}

// singleServerStepper is the round of the single-server topologies (vanilla,
// SSMW, AggregaThor): the roster's first replica pulls a full worker quorum,
// aggregates with the topology's rule and applies the update. The roster is
// re-read every step, so mid-run joins/leaves take effect at the next round,
// and the aggregator rebuilds only when the fleet shape changes.
type singleServerStepper struct {
	c      *Cluster
	res    *Result
	rule   string
	robust bool
	name   string
	agg    *Aggregator
	key    aggKey
	obs    *Server
}

func (st *singleServerStepper) Step(i int) error {
	c := st.c
	ro := c.Roster()
	s := c.Server(ro.Servers[0])
	st.obs = s
	q, f := ro.NW(), 0
	if st.robust {
		f = ro.FW
	}
	ag, err := cachedAggregator(&st.agg, &st.key, st.rule, q, f)
	if err != nil {
		return fmt.Errorf("core: %s: %w", st.name, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.PullTimeout)
	commDone := c.phaseTimer()
	grads, err := s.GetGradients(ctx, i, q)
	cancel()
	st.res.Breakdown.AddComm(commDone())
	if err != nil {
		return fmt.Errorf("core: %s iteration %d: %w", st.name, i, err)
	}
	aggDone := c.phaseTimer()
	aggr, err := ag.Aggregate(grads)
	st.res.Breakdown.AddAgg(aggDone())
	if err != nil {
		return fmt.Errorf("core: %s iteration %d: %w", st.name, i, err)
	}
	return s.UpdateModel(aggr)
}

func (st *singleServerStepper) Observed() *Server { return st.obs }

// crashStepper is the round of the strawman crash-tolerant baseline of
// Section 6.2: every live replica collects all worker gradients and
// averages, the primary's failure aborts the run, a backup's does not.
// Aggregators are cached per replica slot — slots are stable across roster
// transitions, and a slot's rule rebuilds only when the active worker count
// changes under it.
type crashStepper struct {
	c    *Cluster
	res  *Result
	aggs map[int]*Aggregator
	keys map[int]aggKey
	obs  *Server
}

func (st *crashStepper) Step(i int) error {
	c := st.c
	ro := c.Roster()
	p, ok := c.primary()
	if !ok {
		return fmt.Errorf("core: crash-tolerant: all %d replicas crashed or departed", c.Servers())
	}
	st.obs = c.Server(p)
	// Every live replica performs the averaging step so a backup's model
	// stays close to the primary's.
	var wg sync.WaitGroup
	errs := make([]error, len(ro.Servers))
	var pErr *error
	for k, r := range ro.Servers {
		if c.serverCrashed(r) {
			continue
		}
		slot, key := st.aggs[r], st.keys[r]
		agg, err := cachedAggregator(&slot, &key, gar.NameAverage, ro.NW(), 0)
		if err != nil {
			return fmt.Errorf("core: crash-tolerant: %w", err)
		}
		st.aggs[r], st.keys[r] = slot, key
		k, r := k, r
		if r == p {
			pErr = &errs[k]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[k] = c.crashStep(st.res, agg, r, i, ro.NW(), r == p)
		}()
	}
	wg.Wait()
	if pErr != nil && *pErr != nil {
		return fmt.Errorf("core: crash-tolerant iteration %d: %w", i, *pErr)
	}
	return nil
}

func (st *crashStepper) Observed() *Server { return st.obs }

// msmwStepper is the round of the multi-server multi-worker application of
// Listing 2. It has two schedules with identical semantics: the concurrent
// one fans a goroutine per honest replica (barrier-free — the default
// execution whose timing the throughput experiments measure), and the
// lockstep one runs the replicas in explicit phase order on one goroutine.
// Deterministic mode uses the lockstep schedule: it is the barrier
// alignment of the concurrent path expressed as program order, and the only
// schedule a virtual clock can drive reproducibly — so live deterministic
// runs and simulated runs share the exact same code path.
type msmwStepper struct {
	c         *Cluster
	res       *Result
	gradAggs  map[int]*Aggregator
	gradKeys  map[int]aggKey
	modelAggs map[int]*Aggregator
	modelKeys map[int]aggKey
	obs       *Server
}

func newMSMWStepper(c *Cluster, res *Result) *msmwStepper {
	return &msmwStepper{
		c: c, res: res,
		gradAggs: make(map[int]*Aggregator), gradKeys: make(map[int]aggKey),
		modelAggs: make(map[int]*Aggregator), modelKeys: make(map[int]aggKey),
	}
}

func (st *msmwStepper) Step(i int) error {
	c, cfg := st.c, st.c.cfg
	ro := c.Roster()
	honest := ro.HonestServers()
	if len(honest) == 0 {
		return fmt.Errorf("%w: msmw iteration %d: no honest replicas left", ErrConfig, i)
	}
	st.obs = c.Server(honest[0])
	qw, qps := ro.NW()-ro.FW, ro.NPS()-ro.FPS
	if cfg.SyncQuorum {
		qw, qps = ro.NW(), ro.NPS()
	}
	// Per-slot aggregator caches: replica indices are stable across roster
	// transitions, and a slot's rules rebuild only when the quorum shape
	// changes under it (a join/leave between rounds).
	gradAgg := make([]*Aggregator, len(honest))
	modelAgg := make([]*Aggregator, len(honest))
	for k, r := range honest {
		gradSlot, gradKey := st.gradAggs[r], st.gradKeys[r]
		ga, err := cachedAggregator(&gradSlot, &gradKey, cfg.Rule, qw, ro.FW)
		if err != nil {
			return fmt.Errorf("core: msmw: %w", err)
		}
		st.gradAggs[r], st.gradKeys[r] = gradSlot, gradKey
		modelSlot, modelKey := st.modelAggs[r], st.modelKeys[r]
		ma, err := cachedAggregator(&modelSlot, &modelKey, cfg.ModelRule, qps, ro.FPS)
		if err != nil {
			return fmt.Errorf("core: msmw: %w", err)
		}
		st.modelAggs[r], st.modelKeys[r] = modelSlot, modelKey
		gradAgg[k], modelAgg[k] = ga, ma
	}
	if cfg.Deterministic {
		return st.stepLockstep(i, honest, gradAgg, modelAgg, qw, qps)
	}
	return st.stepConcurrent(i, honest, gradAgg, modelAgg, qw, qps)
}

func (st *msmwStepper) Observed() *Server { return st.obs }

// stepConcurrent drives the honest replicas concurrently; Byzantine
// replicas do not need a training loop — their adversarial behaviour lives
// in how they answer pulls (attack-corrupted models).
func (st *msmwStepper) stepConcurrent(i int, honest []int, gradAgg, modelAgg []*Aggregator, qw, qps int) error {
	c := st.c
	var wg sync.WaitGroup
	errs := make([]error, len(honest))
	for k, r := range honest {
		k, r := k, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[k] = c.msmwStep(st.res, gradAgg[k], modelAgg[k], r, i, qw, qps, k == 0)
		}()
	}
	wg.Wait()
	if k, err := firstRootCause(errs); err != nil {
		return fmt.Errorf("core: msmw iteration %d replica %d: %w", i, honest[k], err)
	}
	return nil
}

// stepLockstep runs the round in explicit phase order on one goroutine:
// every replica pulls gradients, aggregates and updates its model; then
// every replica pulls peer models; then every replica aggregates those and
// overwrites its state. All pulls complete before any write — the property
// the concurrent path needs a barrier for — by construction.
func (st *msmwStepper) stepLockstep(i int, honest []int, gradAgg, modelAgg []*Aggregator, qw, qps int) error {
	c, cfg := st.c, st.c.cfg
	ctx, cancel := context.WithTimeout(context.Background(), cfg.PullTimeout)
	defer cancel()
	for k, r := range honest {
		s := c.Server(r)
		record := k == 0
		commDone := c.phaseTimer()
		grads, err := s.GetGradients(ctx, i, qw)
		if record {
			st.res.Breakdown.AddComm(commDone())
		}
		if err != nil {
			return fmt.Errorf("core: msmw iteration %d replica %d: %w", i, r, err)
		}
		aggDone := c.phaseTimer()
		aggr, err := gradAgg[k].Aggregate(grads)
		if record {
			st.res.Breakdown.AddAgg(aggDone())
		}
		if err != nil {
			return fmt.Errorf("core: msmw iteration %d replica %d: %w", i, r, err)
		}
		if err := s.UpdateModel(aggr); err != nil {
			return fmt.Errorf("core: msmw iteration %d replica %d: %w", i, r, err)
		}
	}
	if (i+1)%cfg.ModelAggEvery != 0 {
		return nil // contraction is periodic; no model exchange this round
	}
	pulled := make([][]tensor.Vector, len(honest))
	for k, r := range honest {
		s := c.Server(r)
		commDone := c.phaseTimer()
		models, err := s.GetModels(ctx, qps)
		if k == 0 {
			st.res.Breakdown.AddComm(commDone())
		}
		if err != nil {
			return fmt.Errorf("core: msmw iteration %d replica %d: %w", i, r, err)
		}
		pulled[k] = models
	}
	for k, r := range honest {
		s := c.Server(r)
		aggDone := c.phaseTimer()
		aggrModel, err := modelAgg[k].Aggregate(pulled[k])
		if k == 0 {
			st.res.Breakdown.AddAgg(aggDone())
		}
		if err != nil {
			return fmt.Errorf("core: msmw iteration %d replica %d: %w", i, r, err)
		}
		if err := s.WriteModel(aggrModel); err != nil {
			return fmt.Errorf("core: msmw iteration %d replica %d: %w", i, r, err)
		}
	}
	return nil
}

// decentralizedStepper is the round of the peer-to-peer application of
// Listing 3: every node pairs a Worker with a Server, and each round runs
// collect → aggregate → (contract) → update → model exchange across all
// honest nodes, aligned by an in-process barrier. Goroutine-per-node by
// nature, so it runs on the live wiring only.
type decentralizedStepper struct {
	c         *Cluster
	res       *Result
	gradAggs  []*Aggregator
	modelAggs []*Aggregator
}

func (st *decentralizedStepper) Step(i int) error {
	c := st.c
	honest := len(st.gradAggs)
	b := newBarrier(honest)
	var wg sync.WaitGroup
	errs := make([]error, honest)
	for r := 0; r < honest; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = c.decentralizedStep(st.res, st.gradAggs[r], st.modelAggs[r], r, i, b, r == 0)
		}()
	}
	wg.Wait()
	if r, err := firstRootCause(errs); err != nil {
		return fmt.Errorf("core: decentralized iteration %d node %d: %w", i, r, err)
	}
	return nil
}

func (st *decentralizedStepper) Observed() *Server { return st.c.Server(0) }
