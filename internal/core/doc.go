// Package core implements Garfield's main objects and applications
// (Sections 3.2 and 5 of the paper): the Server and Worker node objects,
// their Byzantine variants, the get_gradients / get_models / get_aggr_grads
// communication abstractions, and the training protocols built from them —
// vanilla, AggregaThor-style, crash-tolerant, SSMW, MSMW and decentralized
// learning.
//
// # The Cluster contract
//
// Cluster is a fully-wired in-process deployment built from one Config:
// NewCluster shards the training data (IID or by label), spawns nw Worker
// nodes and nps Server replicas, and serves each over the RPC layer on a
// fault-injecting in-memory network (transport.Faulty over transport.Mem).
// Byzantine roles go to the last fw workers and last fps servers — a
// Byzantine node is the same object with a non-nil attack.Attack corrupting
// what it serves, exactly the paper's inheritance structure.
//
// A Cluster is driven by the protocol runners — RunVanilla, RunSSMW,
// RunAggregaThor, RunCrashTolerant, RunMSMW, RunDecentralized — each of
// which executes the corresponding listing's training loop and returns a
// Result (accuracy curves, throughput, a per-phase latency breakdown).
// RunAsyncSSMW and RunAsyncMSMW run the bounded-staleness asynchronous
// engine instead (see async.go): no lockstep rounds, per-worker gradient
// queues with staleness tags, aggregation over the q = nw - fw freshest
// estimates with stale-gradient damping. Runners may be invoked repeatedly
// on one cluster: model state persists, so callers can interleave training
// segments with fault injection (CrashServer, CrashWorker, DelayWorker,
// SlowWorker), which is how the scenario engine's declarative fault
// schedules execute. Close shuts every node down; it must be called exactly
// once.
//
// Nodes communicate exclusively through the pull-based RPC layer
// (internal/rpc) over an injectable transport, so the same protocol code
// runs over in-memory pipes in tests, over loopback TCP in
// cmd/garfield-node, and under fault injection in the Byzantine experiments.
//
// # Aggregation in the steady state
//
// Aggregate is the one-shot convenience mirroring the paper's inline
// gar(gradients, f) call. Training loops instead construct an Aggregator,
// which owns the rule's scratch arena and reuses one output vector across
// iterations via the AggregateInto convention of internal/gar — per-step
// aggregation then allocates nothing (Section 4.4's memory management,
// threaded through every protocol loop).
//
// # Deterministic mode
//
// Config.Deterministic trades a little synchronization for bit-identical
// runs at a fixed seed: workers compute one gradient estimate per step and
// serve it to every puller (the paper's broadcast semantics), servers
// aggregate pulled vectors in canonical peer order rather than arrival
// order, and the replicated protocols exchange models in lockstep.
// Replicated topologies additionally need SyncQuorum — with q < n the
// responding subset itself is timing-dependent. The scenario sweep runner
// uses this mode to make its artifacts reproducible byte for byte.
package core
