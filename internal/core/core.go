package core

import (
	"errors"
	"fmt"

	"garfield/internal/gar"
	"garfield/internal/tensor"
)

var (
	// ErrConfig reports an invalid cluster or training configuration.
	ErrConfig = errors.New("core: invalid configuration")
)

// Aggregate applies the named GAR to the given vectors, constructing the
// rule for exactly len(vs) inputs — the inline `gar(gradients, f)` call of
// the paper's listings. Training loops that aggregate every iteration should
// use an Aggregator instead, which reuses the rule's scratch arena and the
// output vector across calls.
func Aggregate(rule string, f int, vs []tensor.Vector) (tensor.Vector, error) {
	r, err := gar.New(rule, len(vs), f)
	if err != nil {
		return nil, fmt.Errorf("core: aggregate: %w", err)
	}
	out, err := r.Aggregate(vs)
	if err != nil {
		return nil, fmt.Errorf("core: aggregate: %w", err)
	}
	return out, nil
}

// Aggregator is the steady-state aggregation path of the training loops: the
// rule (and its scratch arena) is constructed once and the output vector is
// reused across iterations, so per-step aggregation stops allocating — the
// memory-management optimization of Section 4.4 threaded through the
// protocol layer. An Aggregator is owned by one protocol goroutine and must
// not be shared.
type Aggregator struct {
	rule gar.Rule
	dst  tensor.Vector
}

// NewAggregator constructs the named GAR for n inputs tolerating f Byzantine
// ones, with reusable output storage.
func NewAggregator(rule string, n, f int) (*Aggregator, error) {
	r, err := gar.New(rule, n, f)
	if err != nil {
		return nil, fmt.Errorf("core: aggregator: %w", err)
	}
	return &Aggregator{rule: r}, nil
}

// Aggregate combines the vectors. The returned vector is owned by the
// Aggregator and valid until the next Aggregate call; callers that need to
// retain it across iterations must clone it.
func (a *Aggregator) Aggregate(vs []tensor.Vector) (tensor.Vector, error) {
	out, err := a.rule.AggregateInto(a.dst, vs)
	if err != nil {
		return nil, fmt.Errorf("core: aggregate: %w", err)
	}
	a.dst = out
	return out, nil
}
