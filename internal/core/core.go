// Package core implements Garfield's main objects and applications
// (Sections 3.2 and 5 of the paper): the Server and Worker node objects,
// their Byzantine variants, the get_gradients / get_models / get_aggr_grads
// communication abstractions, and the training protocols built from them —
// vanilla, AggregaThor-style, crash-tolerant, SSMW, MSMW and decentralized
// learning.
//
// Nodes communicate exclusively through the pull-based RPC layer
// (internal/rpc) over an injectable transport, so the same protocol code
// runs over in-memory pipes in tests, over loopback TCP in cmd/garfield-node,
// and under fault injection in the Byzantine experiments.
package core

import (
	"errors"
	"fmt"

	"garfield/internal/gar"
	"garfield/internal/tensor"
)

var (
	// ErrConfig reports an invalid cluster or training configuration.
	ErrConfig = errors.New("core: invalid configuration")
)

// Aggregate applies the named GAR to the given vectors, constructing the
// rule for exactly len(vs) inputs — the inline `gar(gradients, f)` call of
// the paper's listings.
func Aggregate(rule string, f int, vs []tensor.Vector) (tensor.Vector, error) {
	r, err := gar.New(rule, len(vs), f)
	if err != nil {
		return nil, fmt.Errorf("core: aggregate: %w", err)
	}
	out, err := r.Aggregate(vs)
	if err != nil {
		return nil, fmt.Errorf("core: aggregate: %w", err)
	}
	return out, nil
}
