package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"garfield/internal/attack"
	"garfield/internal/rpc"
	"garfield/internal/tensor"
)

func TestAsyncSSMWConverges(t *testing.T) {
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	res, err := c.RunAsyncSSMW(RunOptions{Iterations: 80, AccEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc < 0.8 {
		t.Fatalf("async ssmw final accuracy = %v, want >= 0.8", acc)
	}
	if res.Updates != 80 {
		t.Fatalf("updates = %d", res.Updates)
	}
}

func TestAsyncSSMWToleratesReversedAttack(t *testing.T) {
	cfg := baseConfig(t)
	cfg.NW, cfg.FW = 9, 2
	cfg.WorkerAttack = attack.Reversed{Factor: -100}
	c := newTestCluster(t, cfg)
	res, err := c.RunAsyncSSMW(RunOptions{Iterations: 80, AccEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc < 0.75 {
		t.Fatalf("async ssmw under attack accuracy = %v", acc)
	}
}

func TestAsyncSSMWRidesOutWorkerCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("live async engine with crash backoff (~2s)")
	}
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	if _, err := c.RunAsyncSSMW(RunOptions{Iterations: 20, AccEvery: 0}); err != nil {
		t.Fatal(err)
	}
	c.CrashWorker(6) // the declared-Byzantine slot: quorum 6 of 7 remains
	res, err := c.RunAsyncSSMW(RunOptions{Iterations: 40, AccEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc < 0.75 {
		t.Fatalf("async ssmw after crash accuracy = %v", acc)
	}
}

func TestAsyncSSMWQuorumFailure(t *testing.T) {
	cfg := baseConfig(t)
	cfg.PullTimeout = 200 * time.Millisecond
	c := newTestCluster(t, cfg)
	// Quorum is nw - fw = 6; crashing two workers leaves only 5.
	c.CrashWorker(0)
	c.CrashWorker(1)
	_, err := c.RunAsyncSSMW(RunOptions{Iterations: 5})
	if !errors.Is(err, rpc.ErrQuorum) {
		t.Fatalf("err = %v, want ErrQuorum", err)
	}
}

// TestAsyncSSMWOutpacesLockstepUnderStraggler is the engine's raison d'etre
// and the PR's acceptance bar: with one worker serving every request 15ms
// late, the synchronous q = n runner is paced by it (a hard sleep floor of
// (iters-1) * delay) while the async engine updates from the fresh quorum —
// at least 1.5x the updates/sec, in practice far more. Wall-clock ratios on
// a loaded machine (test binaries compiling/running concurrently) can be
// starved arbitrarily, so the delay is chosen to dominate plausible
// scheduler noise and a transient failure is retried.
func TestAsyncSSMWOutpacesLockstepUnderStraggler(t *testing.T) {
	const iters = 12
	delay := 15 * time.Millisecond

	run := func(async bool) *Result {
		cfg := baseConfig(t)
		c := newTestCluster(t, cfg)
		c.SlowWorker(6, delay)
		var res *Result
		var err error
		if async {
			res, err = c.RunAsyncSSMW(RunOptions{Iterations: iters})
		} else {
			res, err = c.RunSSMW(RunOptions{Iterations: iters})
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var ratio float64
	for attempt := 0; attempt < 3; attempt++ {
		sync := run(false)
		async := run(true)
		// Both engines must learn regardless of timing.
		if sync.Accuracy.Last() < 0.7 || async.Accuracy.Last() < 0.7 {
			t.Fatalf("accuracy: lockstep %v, async %v", sync.Accuracy.Last(), async.Accuracy.Last())
		}
		ratio = async.UpdatesPerSec() / sync.UpdatesPerSec()
		if ratio >= 1.5 {
			return
		}
		t.Logf("attempt %d: ratio %.2f (async %.1f u/s, lockstep %.1f u/s); retrying",
			attempt, ratio, async.UpdatesPerSec(), sync.UpdatesPerSec())
	}
	t.Fatalf("async/lockstep throughput ratio = %.2f after retries, want >= 1.5", ratio)
}

func TestAsyncMSMWConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence run; skipped in -short runs")
	}
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	res, err := c.RunAsyncMSMW(RunOptions{Iterations: 80, AccEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc < 0.75 {
		t.Fatalf("async msmw accuracy = %v", acc)
	}
}

func TestAsyncMSMWToleratesByzantineServersAndWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence run; skipped in -short runs")
	}
	cfg := baseConfig(t)
	cfg.FW, cfg.FPS = 1, 1
	cfg.WorkerAttack = attack.Reversed{Factor: -100}
	cfg.ServerAttack = attack.NewRandom(tensor.NewRNG(5), 10)
	c := newTestCluster(t, cfg)
	res, err := c.RunAsyncMSMW(RunOptions{Iterations: 100, AccEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc < 0.7 {
		t.Fatalf("async msmw under dual attack accuracy = %v", acc)
	}
}

func TestAsyncMSMWRejectsDeterministic(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Deterministic = true
	cfg.SyncQuorum = false
	c := newTestCluster(t, cfg)
	if _, err := c.RunAsyncMSMW(RunOptions{Iterations: 5}); !errors.Is(err, ErrConfig) {
		t.Fatalf("err = %v, want ErrConfig", err)
	}
}

// TestAsyncReplayBitIdentical is the async determinism contract: two replay
// runs of the same deterministic config end with bit-identical model state
// and identical staleness accounting.
func TestAsyncReplayBitIdentical(t *testing.T) {
	run := func() (*Result, tensor.Vector) {
		cfg := detConfig(t)
		cfg.SyncQuorum = false
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		res, err := c.RunAsyncSSMW(RunOptions{Iterations: 12})
		if err != nil {
			t.Fatal(err)
		}
		return res, c.Server(0).Params()
	}
	resA, a := run()
	resB, b := run()
	if !a.Equal(b) {
		t.Error("async replay parameters differ between identical runs")
	}
	if resA.AvgStaleness != resB.AvgStaleness || resA.StaleDrops != resB.StaleDrops {
		t.Errorf("staleness accounting differs: (%v, %d) vs (%v, %d)",
			resA.AvgStaleness, resA.StaleDrops, resB.AvgStaleness, resB.StaleDrops)
	}
}

// TestAsyncReplayExercisesStaleness: the replay's seeded latency process
// must actually produce stale-but-accepted gradients, otherwise the damping
// path is dead code in deterministic mode.
func TestAsyncReplayExercisesStaleness(t *testing.T) {
	cfg := detConfig(t)
	cfg.SyncQuorum = false
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.RunAsyncSSMW(RunOptions{Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgStaleness == 0 {
		t.Error("replay schedule produced no staleness at all")
	}
}

// TestGradQueuesCollectSemantics pins the queue contract single-threaded:
// bound filtering, freshest-first selection, pop-on-select and drop
// accounting.
func TestGradQueuesCollectSemantics(t *testing.T) {
	g := newGradQueues([]int{0, 1, 2, 3})
	vec := func(x float64) tensor.Vector { return tensor.Vector{x} }
	g.push(0, taggedGrad{vec: vec(0), step: 10}) // staleness 0
	g.push(1, taggedGrad{vec: vec(1), step: 8})  // staleness 2
	g.push(2, taggedGrad{vec: vec(2), step: 5})  // staleness 5: beyond tau=3
	g.push(3, taggedGrad{vec: vec(3), step: 9})  // staleness 1

	if picks := g.tryCollect(10, 4, 3); picks != nil {
		t.Fatalf("collect found 4 fresh workers, one should be too stale: %+v", picks)
	}
	if g.dropCount() != 1 {
		t.Fatalf("drops = %d, want 1 (worker 2's over-bound entry)", g.dropCount())
	}
	picks := g.tryCollect(10, 3, 3)
	if picks == nil {
		t.Fatal("3 fresh workers available, collect failed")
	}
	wantOrder := []int{0, 3, 1} // staleness 0, 1, 2
	for i, p := range picks {
		if p.worker != wantOrder[i] {
			t.Fatalf("pick %d = worker %d, want %d (freshest first)", i, p.worker, wantOrder[i])
		}
	}
	// Selected entries are consumed.
	if picks = g.tryCollect(10, 1, 3); picks != nil {
		t.Fatalf("queues should be empty after consumption, got %+v", picks)
	}
}

func TestGradQueuesDepthEvictsOldest(t *testing.T) {
	g := newGradQueues([]int{0})
	for s := uint32(0); s < 5; s++ {
		g.push(0, taggedGrad{vec: tensor.Vector{float64(s)}, step: s})
	}
	picks := g.tryCollect(4, 1, 4)
	if picks == nil || picks[0].vec[0] != 4 {
		t.Fatalf("newest entry not served after eviction: %+v", picks)
	}
}

// TestGradQueuesConcurrentStress hammers the queue set from one producer per
// worker while a consumer collects under a staleness bound — the test is
// meaningful mainly under -race, but the invariants (quorum size, bound,
// distinct workers) are asserted in any mode.
func TestGradQueuesConcurrentStress(t *testing.T) {
	if testing.Short() {
		t.Skip("long stress loop; skipped in -short runs")
	}
	const (
		workers = 8
		quorum  = 6
		tau     = 3
		rounds  = 200
	)
	g := newGradQueues([]int{0, 1, 2, 3, 4, 5, 6, 7})
	var step uint32 // the consumer's model clock, read by producers
	var stepMu sync.Mutex
	now := func() uint32 {
		stepMu.Lock()
		defer stepMu.Unlock()
		return step
	}
	advance := func() {
		stepMu.Lock()
		step++
		stepMu.Unlock()
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				g.push(w, taggedGrad{vec: tensor.Vector{float64(w)}, step: now()})
			}
		}()
	}

	for i := 0; i < rounds; i++ {
		picks, err := g.collect(now(), quorum, tau, 2*time.Second)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if len(picks) != quorum {
			t.Fatalf("round %d: %d picks, want %d", i, len(picks), quorum)
		}
		seen := map[int]bool{}
		for _, p := range picks {
			if p.staleness < 0 || p.staleness > tau {
				t.Fatalf("round %d: staleness %d outside [0, %d]", i, p.staleness, tau)
			}
			if seen[p.worker] {
				t.Fatalf("round %d: worker %d picked twice", i, p.worker)
			}
			seen[p.worker] = true
		}
		advance()
	}
	close(done)
	wg.Wait()
}

// TestBarrierWaitReportsBroken pins the bugfix contract: wait() must tell a
// participant that the barrier was broken so it can abort its round, both
// when it was already blocked and when it arrives afterwards.
func TestBarrierWaitReportsBroken(t *testing.T) {
	b := newBarrier(3)

	blocked := make(chan bool, 2)
	for i := 0; i < 2; i++ {
		go func() { blocked <- b.wait() }()
	}
	// Let both participants block, then the third one fails.
	time.Sleep(10 * time.Millisecond)
	b.break_()
	for i := 0; i < 2; i++ {
		select {
		case ok := <-blocked:
			if ok {
				t.Fatal("wait() reported an intact barrier after break_()")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("wait() did not return after break_()")
		}
	}
	// Late arrivals observe the break too.
	if b.wait() {
		t.Fatal("post-break wait() reported an intact barrier")
	}
}

func TestBarrierWaitIntactRounds(t *testing.T) {
	b := newBarrier(2)
	for round := 0; round < 3; round++ {
		other := make(chan bool, 1)
		go func() { other <- b.wait() }()
		if !b.wait() {
			t.Fatalf("round %d: intact barrier reported broken", round)
		}
		if !<-other {
			t.Fatalf("round %d: peer saw a broken barrier", round)
		}
	}
}

func TestFirstRootCausePrefersRealFailures(t *testing.T) {
	boom := errors.New("boom")
	r, err := firstRootCause([]error{errBarrierBroken, nil, boom})
	if r != 2 || !errors.Is(err, boom) {
		t.Fatalf("got (%d, %v), want the real failure at index 2", r, err)
	}
	r, err = firstRootCause([]error{nil, errBarrierBroken})
	if r != 1 || !errors.Is(err, errBarrierBroken) {
		t.Fatalf("got (%d, %v), want the barrier break at index 1", r, err)
	}
	if r, err = firstRootCause([]error{nil, nil}); r != -1 || err != nil {
		t.Fatalf("got (%d, %v) for a clean round", r, err)
	}
}
