package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"garfield/internal/rpc"
	"garfield/internal/tensor"
)

// The asynchronous bounded-staleness execution path. The lockstep protocols
// of protocols.go advance one iteration at a time, waiting for a full pull
// round before every update; here the servers and workers are decoupled the
// way the paper's asynchronous deployment mode describes: per-worker fetcher
// loops keep pulling gradient estimates against whatever model state is
// current, tag each estimate with the step its parameters came from, and
// enqueue it. The server-side step loop aggregates as soon as a quorum
// q = n_w - f_w of sufficiently fresh gradients is available — a straggler
// or crashed worker delays nothing, it simply stops contributing.
//
// Staleness control follows the standard bounded-staleness recipe: a
// gradient computed at step t0 and consumed at step t has staleness t - t0.
// Entries staler than the bound tau are discarded; accepted stale entries
// are damped by damping^staleness, shrinking the contribution of gradients
// computed against old parameters instead of letting them drag the model
// back. Config.StalenessBound / Config.StalenessDamping tune both knobs.
//
// The engine is roster-aware: the step loop polls the cluster's roster epoch
// between iterations; on a transition it rebinds — fetchers of departed
// workers are cancelled, fetchers for joiners are spawned, their queues are
// dropped or created, and the quorum and aggregator shapes track the new
// fleet. The iteration in flight completes against the old roster.
//
// Two determinism regimes exist, mirroring the lockstep protocols:
//
//   - the live engine (goroutine fetchers, real queues) is throughput-true
//     but scheduling-dependent, like any async system;
//   - with Config.Deterministic set, RunAsyncSSMW switches to a
//     single-threaded seeded replay (runAsyncSSMWReplay): worker fetch
//     latencies are drawn from an RNG derived from the cluster seed, and
//     the whole queue/staleness-filter/damping pipeline runs over that
//     synthetic schedule, so a run is bit-identical at the same seed. The
//     replay snapshots the roster once at run start — segmented scenarios
//     apply churn between runs, and each run re-reads the roster.

// Default async tuning; see Config.StalenessBound / StalenessDamping.
const (
	DefaultStalenessBound   = 3
	DefaultStalenessDamping = 0.5
)

// asyncQueueDepth bounds each worker's queue: a slow consumer sees at most
// this many pending estimates per worker, newest kept, oldest evicted.
const asyncQueueDepth = 2

// taggedGrad is one queued gradient estimate and the step of the model state
// it was computed against.
type taggedGrad struct {
	vec  tensor.Vector
	step uint32
}

// gradQueues is the per-worker bounded queue set shared by the fetchers
// (producers) and the server step loop (consumer). Queues are keyed by the
// worker's stable slot index and gated by a membership set, so a roster
// rebind drops departed workers' queues and a straggling fetcher of a
// departed worker cannot re-insert one.
type gradQueues struct {
	mu     sync.Mutex
	slots  map[int][]taggedGrad // per member worker, oldest first
	member map[int]bool
	drops  int // entries discarded for exceeding the bound
	// notify wakes the consumer after a push; capacity 1 is enough because
	// the consumer re-scans all slots on every wake.
	notify chan struct{}
}

func newGradQueues(workers []int) *gradQueues {
	g := &gradQueues{
		slots:  make(map[int][]taggedGrad, len(workers)),
		member: make(map[int]bool, len(workers)),
		notify: make(chan struct{}, 1),
	}
	for _, w := range workers {
		g.member[w] = true
	}
	return g
}

// rebind replaces the membership set: departed workers' queues (and any
// estimate they hold — computed for the old roster) are dropped, joiners get
// an empty queue on their first push.
func (g *gradQueues) rebind(workers []int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	fresh := make(map[int]bool, len(workers))
	for _, w := range workers {
		fresh[w] = true
	}
	for w := range g.slots {
		if !fresh[w] {
			delete(g.slots, w)
		}
	}
	g.member = fresh
}

// push enqueues a tagged gradient for worker w, evicting the oldest entry
// when the slot is full, and wakes the consumer. Pushes from non-members
// (a fetcher racing its own cancellation across a rebind) are ignored.
func (g *gradQueues) push(w int, tg taggedGrad) {
	g.mu.Lock()
	if !g.member[w] {
		g.mu.Unlock()
		return
	}
	slot := g.slots[w]
	if len(slot) >= asyncQueueDepth {
		copy(slot, slot[1:])
		slot = slot[:len(slot)-1]
	}
	g.slots[w] = append(slot, tg)
	g.mu.Unlock()
	select {
	case g.notify <- struct{}{}:
	default:
	}
}

// asyncPick is one selected gradient with its provenance.
type asyncPick struct {
	worker    int
	staleness int
	vec       tensor.Vector
}

// tryCollect scans the queues at model step now: entries staler than tau are
// dropped, and if at least q workers still have a fresh entry, the q
// freshest (ties broken by worker index, so selection is reproducible given
// the same queue state) are popped and returned.
func (g *gradQueues) tryCollect(now uint32, q, tau int) []asyncPick {
	g.mu.Lock()
	defer g.mu.Unlock()
	candidates := make([]asyncPick, 0, len(g.slots))
	for w, slot := range g.slots {
		// Evict entries beyond the bound; the slot is oldest-first, so the
		// fresh suffix survives.
		keep := 0
		for keep < len(slot) && int(now-slot[keep].step) > tau {
			keep++
		}
		if keep > 0 {
			g.drops += keep
			copy(slot, slot[keep:])
			g.slots[w] = slot[:len(slot)-keep]
			slot = g.slots[w]
		}
		if len(slot) == 0 {
			continue
		}
		newest := slot[len(slot)-1]
		candidates = append(candidates, asyncPick{
			worker: w, staleness: int(now - newest.step), vec: newest.vec,
		})
	}
	if len(candidates) < q {
		return nil
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].staleness != candidates[j].staleness {
			return candidates[i].staleness < candidates[j].staleness
		}
		return candidates[i].worker < candidates[j].worker
	})
	picked := candidates[:q]
	for _, p := range picked {
		slot := g.slots[p.worker]
		g.slots[p.worker] = slot[:len(slot)-1] // pop the newest (the one selected)
	}
	return picked
}

// collect blocks until tryCollect succeeds or the deadline passes.
func (g *gradQueues) collect(now uint32, q, tau int, timeout time.Duration) ([]asyncPick, error) {
	//lint:allow wallclock(liveness timeout of the live async engine; deterministic async runs use the single-threaded replay, which never calls collect)
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		if picked := g.tryCollect(now, q, tau); picked != nil {
			return picked, nil
		}
		select {
		case <-g.notify:
		case <-timer.C:
			return nil, fmt.Errorf("core: async step %d: %w: fewer than %d fresh gradients within %v",
				now, rpc.ErrQuorum, q, timeout)
		}
	}
}

// dropCount returns the number of bound-exceeding entries discarded so far.
func (g *gradQueues) dropCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.drops
}

// asyncFetch is one worker's fetcher loop: snapshot the replica's model,
// pull a gradient estimate against it, tag it with the snapshot step and
// enqueue. Failures (a crashed worker, an omitted Byzantine reply) back off
// and retry — in the async regime a missing worker costs freshness, never
// progress. The worker's address is resolved at spawn time: a fetcher
// belongs to one roster binding and is cancelled, not retargeted, when the
// worker departs.
func (c *Cluster) asyncFetch(ctx context.Context, s *Server, queues *gradQueues, w int, addr string) {
	backoff := time.Millisecond
	for ctx.Err() == nil {
		params, step := s.Snapshot()
		callCtx, cancel := context.WithTimeout(ctx, c.cfg.PullTimeout)
		vec, err := s.client.Call(callCtx, addr, rpc.Request{
			Kind: rpc.KindGetGradient, Step: step, Accept: s.accept, Vec: params,
		})
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			// Back off on the cluster clock (virtual under the simulator
			// wiring) so retry pacing cannot leak wall time into a
			// simulated run.
			c.clock.Sleep(backoff)
			if backoff < 50*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		backoff = time.Millisecond
		queues.push(w, taggedGrad{vec: vec, step: step})
	}
}

// dampPicks scales stale gradients by damping^staleness in place (the popped
// vectors are owned by the caller) and returns the summed staleness.
func dampPicks(picks []asyncPick, damping float64) (staleSum int) {
	for _, p := range picks {
		staleSum += p.staleness
		if p.staleness == 0 || damping == 1 {
			continue
		}
		f := math.Pow(damping, float64(p.staleness))
		for i := range p.vec {
			p.vec[i] *= f
		}
	}
	return staleSum
}

// pickVectors extracts the gradient vectors in selection order.
func pickVectors(picks []asyncPick) []tensor.Vector {
	out := make([]tensor.Vector, len(picks))
	for i, p := range picks {
		out[i] = p.vec
	}
	return out
}

// RunAsyncSSMW trains the single-server multi-worker topology with the
// bounded-staleness engine: the server updates as soon as q_w = n_w - f_w
// sufficiently fresh gradients are queued, instead of barrier-waiting a full
// pull round. With Config.Deterministic it switches to the seeded
// single-threaded replay, which is bit-identical across runs at one seed.
func (c *Cluster) RunAsyncSSMW(opt RunOptions) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if c.cfg.Deterministic {
		return c.runAsyncSSMWReplay(opt)
	}
	res := newResult("async-ssmw")
	start := c.clock.Now()
	wire0 := c.WireStats()
	s := c.Server(c.Roster().Servers[0])
	if err := c.asyncReplicaLoop(res, s, false, opt, start, true); err != nil {
		return nil, fmt.Errorf("core: async-ssmw: %w", err)
	}
	res.WallTime = c.clock.Now().Sub(start)
	res.Wire = c.WireStats().Sub(wire0)
	return res, nil
}

// RunAsyncMSMW trains the replicated topology asynchronously: every honest
// replica runs its own bounded-staleness gradient loop (own fetchers, own
// queues), and every Config.ModelAggEvery updates it pulls q_ps = n_ps -
// f_ps peer models and robust-aggregates them — without any cross-replica
// barrier, so replicas observe each other mid-update and contraction is what
// keeps them close. Accuracy, throughput and staleness are observed at the
// first honest replica. Deterministic mode is not supported here (the replay
// story covers the single-server topology); RunAsyncMSMW returns ErrConfig
// for it.
func (c *Cluster) RunAsyncMSMW(opt RunOptions) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if c.Roster().NPS() < 2 {
		return nil, fmt.Errorf("%w: async msmw needs at least 2 server replicas", ErrConfig)
	}
	if c.cfg.Deterministic {
		return nil, fmt.Errorf("%w: deterministic async replay supports the single-server topology only", ErrConfig)
	}
	honest := c.Roster().HonestServers()
	res := newResult("async-msmw")
	start := c.clock.Now()
	wire0 := c.WireStats()
	var wg sync.WaitGroup
	errs := make([]error, len(honest))
	for k, r := range honest {
		k, s := k, c.Server(r)
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[k] = c.asyncReplicaLoop(res, s, true, opt, start, k == 0)
		}()
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: async-msmw replica %d: %w", honest[k], err)
		}
	}
	res.WallTime = c.clock.Now().Sub(start)
	res.Wire = c.WireStats().Sub(wire0)
	return res, nil
}

// asyncReplicaLoop drives one replica's bounded-staleness training loop:
// fetchers feed the queues, each iteration collects a fresh quorum, damps,
// aggregates and updates, and (with contract set) every ModelAggEvery
// updates the replica contracts toward its peers by pulling and
// robust-aggregating q_ps models. Between iterations the loop polls the
// roster epoch and rebinds on a transition: departed workers' fetchers are
// cancelled and their queues dropped, joiners get fresh fetchers, and the
// quorums and aggregator shapes follow the new fleet. Only the recording
// replica writes into res.
func (c *Cluster) asyncReplicaLoop(res *Result, s *Server, contract bool, opt RunOptions, start time.Time, record bool) error {
	cfg := c.cfg
	tau, damping := cfg.asyncParams()

	ctx, cancel := context.WithCancel(context.Background())
	var fetchers sync.WaitGroup
	// Stop order matters: cancel the fetchers, then wait them out (defers
	// run last-in first-out).
	defer fetchers.Wait()
	defer cancel()

	ro := c.Roster()
	queues := newGradQueues(ro.Workers)
	cancels := make(map[int]context.CancelFunc, len(ro.Workers))
	spawn := func(w int, addr string) {
		fctx, fcancel := context.WithCancel(ctx)
		cancels[w] = fcancel
		fetchers.Add(1)
		go func() {
			defer fetchers.Done()
			c.asyncFetch(fctx, s, queues, w, addr)
		}()
	}
	for k, w := range ro.Workers {
		spawn(w, ro.WorkerAddrs[k])
	}

	var gradAgg, modelAgg *Aggregator
	var gradKey, modelKey aggKey
	staleSum, quorumSum := 0, 0
	for i := 0; i < opt.Iterations; i++ {
		if fresh := c.Roster(); fresh.Epoch != ro.Epoch {
			ro = fresh
			queues.rebind(ro.Workers)
			member := make(map[int]bool, len(ro.Workers))
			for _, w := range ro.Workers {
				member[w] = true
			}
			for w, fcancel := range cancels {
				if !member[w] {
					fcancel()
					delete(cancels, w)
				}
			}
			for k, w := range ro.Workers {
				if _, ok := cancels[w]; !ok {
					spawn(w, ro.WorkerAddrs[k])
				}
			}
		}
		q := ro.NW() - ro.FW
		ga, err := cachedAggregator(&gradAgg, &gradKey, cfg.Rule, q, ro.FW)
		if err != nil {
			return fmt.Errorf("async iteration %d: %w", i, err)
		}
		commDone := c.phaseTimer()
		picks, err := queues.collect(s.Step(), q, tau, cfg.PullTimeout)
		if record {
			res.Breakdown.AddComm(commDone())
		}
		if err != nil {
			return err
		}
		aggDone := c.phaseTimer()
		staleSum += dampPicks(picks, damping)
		quorumSum += q
		aggr, err := ga.Aggregate(pickVectors(picks))
		if record {
			res.Breakdown.AddAgg(aggDone())
		}
		if err != nil {
			return fmt.Errorf("async iteration %d: %w", i, err)
		}
		if err := s.UpdateModel(aggr); err != nil {
			return err
		}
		if contract && (i+1)%cfg.ModelAggEvery == 0 {
			qps := ro.NPS() - ro.FPS
			ma, err := cachedAggregator(&modelAgg, &modelKey, cfg.ModelRule, qps, ro.FPS)
			if err != nil {
				return fmt.Errorf("async iteration %d: %w", i, err)
			}
			if err := c.asyncModelExchange(s, ma, qps); err != nil {
				return fmt.Errorf("async iteration %d: %w", i, err)
			}
		}
		if record {
			res.Breakdown.EndIteration()
			res.Updates++
			if err := c.recordAccuracy(res, s, opt, i, start); err != nil {
				return err
			}
		}
	}
	if record {
		if quorumSum > 0 {
			res.AvgStaleness = float64(staleSum) / float64(quorumSum)
		}
		res.StaleDrops = queues.dropCount()
	}
	return nil
}

// asyncModelExchange is the barrier-free contraction step: pull the fastest
// q_ps peer models (whatever state they are in) and overwrite local state
// with their robust aggregate.
func (c *Cluster) asyncModelExchange(s *Server, modelAgg *Aggregator, qps int) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.PullTimeout)
	defer cancel()
	models, err := s.GetModels(ctx, qps)
	if err != nil {
		return err
	}
	aggr, err := modelAgg.Aggregate(models)
	if err != nil {
		return err
	}
	return s.WriteModel(aggr)
}

// asyncReplaySalt domain-separates the replay schedule RNG from every other
// consumer of the cluster seed.
const asyncReplaySalt = 0x61737963 // "asyc"

// replayFetch models one worker's in-flight pull in the seeded replay.
type replayFetch struct {
	tag  uint32  // step of the parameters the fetch observes
	done float64 // virtual completion time
	dead bool    // worker no longer answers (crashed or always-omitting)
}

// replayLatency draws one fetch duration (in model steps) from the replay's
// latency process: most fetches take about one step, a seeded minority
// straggle by up to tau+1 extra steps so the staleness filter and damping
// genuinely engage.
func replayLatency(rng *tensor.RNG, tau int) float64 {
	l := 0.6 + 0.8*rng.Float64()
	if rng.Float64() < 0.2 {
		l += float64(1 + rng.Intn(tau+1))
	}
	return l
}

// runAsyncSSMWReplay is the deterministic counterpart of the live async
// engine: a single-threaded event simulation in which worker fetch latencies
// come from an RNG seeded by the cluster seed instead of the scheduler. The
// same queue semantics apply — gradients are tagged with the step of the
// parameters they observed, filtered by the staleness bound and damped — but
// fetch completion order is a pure function of the seed, so two runs are
// bit-identical. Gradient pulls still travel the real RPC path (issued
// sequentially, in completion order), so attacks, momentum and fault
// injection behave exactly as in the live engine. The roster is snapshotted
// once at run start: segmented scenarios apply churn between runs, and the
// fleet shape at that point (not the construction-time Config) defines the
// schedule, so the replay stays bit-identical per (seed, roster).
func (c *Cluster) runAsyncSSMWReplay(opt RunOptions) (*Result, error) {
	cfg := c.cfg
	ro := c.Roster()
	q := ro.NW() - ro.FW
	tau, damping := cfg.asyncParams()
	agg, err := NewAggregator(cfg.Rule, q, ro.FW)
	if err != nil {
		return nil, fmt.Errorf("core: async-ssmw: %w", err)
	}
	res := newResult("async-ssmw")
	s := c.Server(ro.Servers[0])
	rng := tensor.NewRNG(cfg.Seed ^ asyncReplaySalt)

	// Ring of parameter snapshots for the last tau+1 steps: a fetch tagged
	// with step t0 reads snapshots[t0 % depth], valid exactly while the
	// result could still pass the staleness filter.
	depth := uint32(tau + 1)
	snapshots := make([]tensor.Vector, depth)

	fetches := make([]replayFetch, ro.NW())
	vt := 0.0 // virtual clock
	for k := range fetches {
		fetches[k] = replayFetch{tag: s.Step(), done: replayLatency(rng, tau)}
	}

	start := c.clock.Now()
	wire0 := c.WireStats()
	staleSum, drops := 0, 0
	for i := 0; i < opt.Iterations; i++ {
		now := s.Step()
		snapshots[now%depth] = s.Params()

		// Run fetch completions, earliest virtual finisher first, until q
		// distinct workers hold a fresh gradient for this step.
		ready := make(map[int]asyncPick, q)
		guard := 0
		for len(ready) < q {
			if guard++; guard > 4*ro.NW()*(tau+2)+16 {
				return nil, fmt.Errorf("core: async-ssmw replay step %d: schedule failed to produce a quorum", now)
			}
			k, live := -1, 0
			for j := range fetches {
				if fetches[j].dead {
					continue
				}
				live++
				if k < 0 || fetches[j].done < fetches[k].done {
					k = j
				}
			}
			if live < q {
				return nil, fmt.Errorf("core: async-ssmw replay step %d: %w: %d live workers for quorum %d",
					now, rpc.ErrQuorum, live, q)
			}
			if fetches[k].done > vt {
				vt = fetches[k].done
			}
			if staleness := int(now - fetches[k].tag); staleness <= tau {
				vec, err := c.replayPull(s, ro.WorkerAddrs[k], fetches[k].tag, snapshots[fetches[k].tag%depth])
				if err != nil {
					// A crashed or always-omitting worker: out of the
					// schedule for the rest of this run segment.
					fetches[k].dead = true
					continue
				}
				ready[k] = asyncPick{worker: ro.Workers[k], staleness: staleness, vec: vec}
			} else {
				drops++ // completed too stale to be worth pulling
			}
			// Start the next fetch against the current model state.
			fetches[k].tag = now
			fetches[k].done = vt + replayLatency(rng, tau)
		}

		picks := make([]asyncPick, 0, len(ready))
		for _, p := range ready {
			picks = append(picks, p)
		}
		sort.Slice(picks, func(a, b int) bool {
			if picks[a].staleness != picks[b].staleness {
				return picks[a].staleness < picks[b].staleness
			}
			return picks[a].worker < picks[b].worker
		})
		staleSum += dampPicks(picks, damping)
		aggr, err := agg.Aggregate(pickVectors(picks))
		if err != nil {
			return nil, fmt.Errorf("core: async-ssmw replay iteration %d: %w", i, err)
		}
		if err := s.UpdateModel(aggr); err != nil {
			return nil, err
		}
		res.Breakdown.EndIteration()
		res.Updates++
		if err := c.recordAccuracy(res, s, opt, i, start); err != nil {
			return nil, err
		}
	}
	if opt.Iterations > 0 && q > 0 {
		res.AvgStaleness = float64(staleSum) / float64(opt.Iterations*q)
	}
	res.StaleDrops = drops
	res.WallTime = c.clock.Now().Sub(start)
	res.Wire = c.WireStats().Sub(wire0)
	return res, nil
}

// replayPull issues one sequential gradient pull over the real RPC path for
// the replay engine.
func (c *Cluster) replayPull(s *Server, addr string, step uint32, params tensor.Vector) (tensor.Vector, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.PullTimeout)
	defer cancel()
	return s.client.Call(ctx, addr, rpc.Request{
		Kind: rpc.KindGetGradient, Step: step, Accept: s.accept, Vec: params,
	})
}
