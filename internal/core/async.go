package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"garfield/internal/metrics"
	"garfield/internal/rpc"
	"garfield/internal/tensor"
)

// The asynchronous bounded-staleness execution path. The lockstep protocols
// of protocols.go advance one iteration at a time, waiting for a full pull
// round before every update; here the servers and workers are decoupled the
// way the paper's asynchronous deployment mode describes: per-worker fetcher
// loops keep pulling gradient estimates against whatever model state is
// current, tag each estimate with the step its parameters came from, and
// enqueue it. The server-side step loop aggregates as soon as a quorum
// q = n_w - f_w of sufficiently fresh gradients is available — a straggler
// or crashed worker delays nothing, it simply stops contributing.
//
// Staleness control follows the standard bounded-staleness recipe: a
// gradient computed at step t0 and consumed at step t has staleness t - t0.
// Entries staler than the bound tau are discarded; accepted stale entries
// are damped by damping^staleness, shrinking the contribution of gradients
// computed against old parameters instead of letting them drag the model
// back. Config.StalenessBound / Config.StalenessDamping tune both knobs.
//
// Two determinism regimes exist, mirroring the lockstep protocols:
//
//   - the live engine (goroutine fetchers, real queues) is throughput-true
//     but scheduling-dependent, like any async system;
//   - with Config.Deterministic set, RunAsyncSSMW switches to a
//     single-threaded seeded replay (runAsyncSSMWReplay): worker fetch
//     latencies are drawn from an RNG derived from the cluster seed, and
//     the whole queue/staleness-filter/damping pipeline runs over that
//     synthetic schedule, so a run is bit-identical at the same seed.

// Default async tuning; see Config.StalenessBound / StalenessDamping.
const (
	DefaultStalenessBound   = 3
	DefaultStalenessDamping = 0.5
)

// asyncQueueDepth bounds each worker's queue: a slow consumer sees at most
// this many pending estimates per worker, newest kept, oldest evicted.
const asyncQueueDepth = 2

// taggedGrad is one queued gradient estimate and the step of the model state
// it was computed against.
type taggedGrad struct {
	vec  tensor.Vector
	step uint32
}

// gradQueues is the per-worker bounded queue set shared by the fetchers
// (producers) and the server step loop (consumer).
type gradQueues struct {
	mu    sync.Mutex
	slots [][]taggedGrad // per worker, oldest first
	drops int            // entries discarded for exceeding the bound
	// notify wakes the consumer after a push; capacity 1 is enough because
	// the consumer re-scans all slots on every wake.
	notify chan struct{}
}

func newGradQueues(n int) *gradQueues {
	return &gradQueues{
		slots:  make([][]taggedGrad, n),
		notify: make(chan struct{}, 1),
	}
}

// push enqueues a tagged gradient for worker w, evicting the oldest entry
// when the slot is full, and wakes the consumer.
func (g *gradQueues) push(w int, tg taggedGrad) {
	g.mu.Lock()
	slot := g.slots[w]
	if len(slot) >= asyncQueueDepth {
		copy(slot, slot[1:])
		slot = slot[:len(slot)-1]
	}
	g.slots[w] = append(slot, tg)
	g.mu.Unlock()
	select {
	case g.notify <- struct{}{}:
	default:
	}
}

// asyncPick is one selected gradient with its provenance.
type asyncPick struct {
	worker    int
	staleness int
	vec       tensor.Vector
}

// tryCollect scans the queues at model step now: entries staler than tau are
// dropped, and if at least q workers still have a fresh entry, the q
// freshest (ties broken by worker index, so selection is reproducible given
// the same queue state) are popped and returned.
func (g *gradQueues) tryCollect(now uint32, q, tau int) []asyncPick {
	g.mu.Lock()
	defer g.mu.Unlock()
	candidates := make([]asyncPick, 0, len(g.slots))
	for w, slot := range g.slots {
		// Evict entries beyond the bound; the slot is oldest-first, so the
		// fresh suffix survives.
		keep := 0
		for keep < len(slot) && int(now-slot[keep].step) > tau {
			keep++
		}
		if keep > 0 {
			g.drops += keep
			copy(slot, slot[keep:])
			g.slots[w] = slot[:len(slot)-keep]
			slot = g.slots[w]
		}
		if len(slot) == 0 {
			continue
		}
		newest := slot[len(slot)-1]
		candidates = append(candidates, asyncPick{
			worker: w, staleness: int(now - newest.step), vec: newest.vec,
		})
	}
	if len(candidates) < q {
		return nil
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].staleness != candidates[j].staleness {
			return candidates[i].staleness < candidates[j].staleness
		}
		return candidates[i].worker < candidates[j].worker
	})
	picked := candidates[:q]
	for _, p := range picked {
		slot := g.slots[p.worker]
		g.slots[p.worker] = slot[:len(slot)-1] // pop the newest (the one selected)
	}
	return picked
}

// collect blocks until tryCollect succeeds or the deadline passes.
func (g *gradQueues) collect(now uint32, q, tau int, timeout time.Duration) ([]asyncPick, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		if picked := g.tryCollect(now, q, tau); picked != nil {
			return picked, nil
		}
		select {
		case <-g.notify:
		case <-timer.C:
			return nil, fmt.Errorf("core: async step %d: %w: fewer than %d fresh gradients within %v",
				now, rpc.ErrQuorum, q, timeout)
		}
	}
}

// dropCount returns the number of bound-exceeding entries discarded so far.
func (g *gradQueues) dropCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.drops
}

// asyncFetch is one worker's fetcher loop: snapshot the replica's model,
// pull a gradient estimate against it, tag it with the snapshot step and
// enqueue. Failures (a crashed worker, an omitted Byzantine reply) back off
// and retry — in the async regime a missing worker costs freshness, never
// progress.
func (c *Cluster) asyncFetch(ctx context.Context, s *Server, queues *gradQueues, w int) {
	addr := c.workerAddrs[w]
	backoff := time.Millisecond
	for ctx.Err() == nil {
		params, step := s.Snapshot()
		callCtx, cancel := context.WithTimeout(ctx, c.cfg.PullTimeout)
		vec, err := s.client.Call(callCtx, addr, rpc.Request{
			Kind: rpc.KindGetGradient, Step: step, Accept: s.accept, Vec: params,
		})
		cancel()
		if err != nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff < 50*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		backoff = time.Millisecond
		queues.push(w, taggedGrad{vec: vec, step: step})
	}
}

// dampPicks scales stale gradients by damping^staleness in place (the popped
// vectors are owned by the caller) and returns the summed staleness.
func dampPicks(picks []asyncPick, damping float64) (staleSum int) {
	for _, p := range picks {
		staleSum += p.staleness
		if p.staleness == 0 || damping == 1 {
			continue
		}
		f := math.Pow(damping, float64(p.staleness))
		for i := range p.vec {
			p.vec[i] *= f
		}
	}
	return staleSum
}

// pickVectors extracts the gradient vectors in selection order.
func pickVectors(picks []asyncPick) []tensor.Vector {
	out := make([]tensor.Vector, len(picks))
	for i, p := range picks {
		out[i] = p.vec
	}
	return out
}

// RunAsyncSSMW trains the single-server multi-worker topology with the
// bounded-staleness engine: the server updates as soon as q_w = n_w - f_w
// sufficiently fresh gradients are queued, instead of barrier-waiting a full
// pull round. With Config.Deterministic it switches to the seeded
// single-threaded replay, which is bit-identical across runs at one seed.
func (c *Cluster) RunAsyncSSMW(opt RunOptions) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if c.cfg.Deterministic {
		return c.runAsyncSSMWReplay(opt)
	}
	q := c.cfg.NW - c.cfg.FW
	agg, err := NewAggregator(c.cfg.Rule, q, c.cfg.FW)
	if err != nil {
		return nil, fmt.Errorf("core: async-ssmw: %w", err)
	}
	res := newResult("async-ssmw")
	start := time.Now()
	wire0 := c.WireStats()
	if err := c.asyncReplicaLoop(res, c.servers[0], agg, nil, opt, start, true); err != nil {
		return nil, fmt.Errorf("core: async-ssmw: %w", err)
	}
	res.WallTime = time.Since(start)
	res.Wire = c.WireStats().Sub(wire0)
	return res, nil
}

// RunAsyncMSMW trains the replicated topology asynchronously: every honest
// replica runs its own bounded-staleness gradient loop (own fetchers, own
// queues), and every Config.ModelAggEvery updates it pulls q_ps = n_ps -
// f_ps peer models and robust-aggregates them — without any cross-replica
// barrier, so replicas observe each other mid-update and contraction is what
// keeps them close. Accuracy, throughput and staleness are observed at
// replica 0. Deterministic mode is not supported here (the replay story
// covers the single-server topology); RunAsyncMSMW returns ErrConfig for it.
func (c *Cluster) RunAsyncMSMW(opt RunOptions) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	cfg := c.cfg
	if c.Servers() < 2 {
		return nil, fmt.Errorf("%w: async msmw needs at least 2 server replicas", ErrConfig)
	}
	if cfg.Deterministic {
		return nil, fmt.Errorf("%w: deterministic async replay supports the single-server topology only", ErrConfig)
	}
	honest := c.Servers() - cfg.FPS
	qw := cfg.NW - cfg.FW
	qps := c.Servers() - cfg.FPS
	res := newResult("async-msmw")
	gradAggs := make([]*Aggregator, honest)
	modelAggs := make([]*Aggregator, honest)
	for r := 0; r < honest; r++ {
		var err error
		if gradAggs[r], err = NewAggregator(cfg.Rule, qw, cfg.FW); err != nil {
			return nil, fmt.Errorf("core: async-msmw: %w", err)
		}
		if modelAggs[r], err = NewAggregator(cfg.ModelRule, qps, cfg.FPS); err != nil {
			return nil, fmt.Errorf("core: async-msmw: %w", err)
		}
	}
	start := time.Now()
	wire0 := c.WireStats()
	var wg sync.WaitGroup
	errs := make([]error, honest)
	for r := 0; r < honest; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = c.asyncReplicaLoop(res, c.servers[r], gradAggs[r], modelAggs[r], opt, start, r == 0)
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: async-msmw replica %d: %w", r, err)
		}
	}
	res.WallTime = time.Since(start)
	res.Wire = c.WireStats().Sub(wire0)
	return res, nil
}

// asyncReplicaLoop drives one replica's bounded-staleness training loop:
// fetchers feed the queues, each iteration collects a fresh quorum, damps,
// aggregates and updates, and (when modelAgg is non-nil) every ModelAggEvery
// updates the replica contracts toward its peers by pulling and
// robust-aggregating q_ps models. Only the recording replica writes into
// res.
func (c *Cluster) asyncReplicaLoop(res *Result, s *Server, gradAgg, modelAgg *Aggregator, opt RunOptions, start time.Time, record bool) error {
	cfg := c.cfg
	q := cfg.NW - cfg.FW
	tau, damping := cfg.asyncParams()
	qps := c.Servers() - cfg.FPS

	ctx, cancel := context.WithCancel(context.Background())
	queues := newGradQueues(cfg.NW)
	var fetchers sync.WaitGroup
	// Stop order matters: cancel the fetchers, then wait them out (defers
	// run last-in first-out).
	defer fetchers.Wait()
	defer cancel()
	for w := 0; w < cfg.NW; w++ {
		w := w
		fetchers.Add(1)
		go func() {
			defer fetchers.Done()
			c.asyncFetch(ctx, s, queues, w)
		}()
	}

	staleSum := 0
	for i := 0; i < opt.Iterations; i++ {
		commDone := metrics.Start()
		picks, err := queues.collect(s.Step(), q, tau, cfg.PullTimeout)
		if record {
			res.Breakdown.AddComm(commDone())
		}
		if err != nil {
			return err
		}
		aggDone := metrics.Start()
		staleSum += dampPicks(picks, damping)
		aggr, err := gradAgg.Aggregate(pickVectors(picks))
		if record {
			res.Breakdown.AddAgg(aggDone())
		}
		if err != nil {
			return fmt.Errorf("async iteration %d: %w", i, err)
		}
		if err := s.UpdateModel(aggr); err != nil {
			return err
		}
		if modelAgg != nil && (i+1)%cfg.ModelAggEvery == 0 {
			if err := c.asyncModelExchange(s, modelAgg, qps); err != nil {
				return fmt.Errorf("async iteration %d: %w", i, err)
			}
		}
		if record {
			res.Breakdown.EndIteration()
			res.Updates++
			if err := c.recordAccuracy(res, s, opt, i, start); err != nil {
				return err
			}
		}
	}
	if record {
		if opt.Iterations > 0 && q > 0 {
			res.AvgStaleness = float64(staleSum) / float64(opt.Iterations*q)
		}
		res.StaleDrops = queues.dropCount()
	}
	return nil
}

// asyncModelExchange is the barrier-free contraction step: pull the fastest
// q_ps peer models (whatever state they are in) and overwrite local state
// with their robust aggregate.
func (c *Cluster) asyncModelExchange(s *Server, modelAgg *Aggregator, qps int) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.PullTimeout)
	defer cancel()
	models, err := s.GetModels(ctx, qps)
	if err != nil {
		return err
	}
	aggr, err := modelAgg.Aggregate(models)
	if err != nil {
		return err
	}
	return s.WriteModel(aggr)
}

// asyncReplaySalt domain-separates the replay schedule RNG from every other
// consumer of the cluster seed.
const asyncReplaySalt = 0x61737963 // "asyc"

// replayFetch models one worker's in-flight pull in the seeded replay.
type replayFetch struct {
	tag  uint32  // step of the parameters the fetch observes
	done float64 // virtual completion time
	dead bool    // worker no longer answers (crashed or always-omitting)
}

// replayLatency draws one fetch duration (in model steps) from the replay's
// latency process: most fetches take about one step, a seeded minority
// straggle by up to tau+1 extra steps so the staleness filter and damping
// genuinely engage.
func replayLatency(rng *tensor.RNG, tau int) float64 {
	l := 0.6 + 0.8*rng.Float64()
	if rng.Float64() < 0.2 {
		l += float64(1 + rng.Intn(tau+1))
	}
	return l
}

// runAsyncSSMWReplay is the deterministic counterpart of the live async
// engine: a single-threaded event simulation in which worker fetch latencies
// come from an RNG seeded by the cluster seed instead of the scheduler. The
// same queue semantics apply — gradients are tagged with the step of the
// parameters they observed, filtered by the staleness bound and damped — but
// fetch completion order is a pure function of the seed, so two runs are
// bit-identical. Gradient pulls still travel the real RPC path (issued
// sequentially, in completion order), so attacks, momentum and fault
// injection behave exactly as in the live engine.
func (c *Cluster) runAsyncSSMWReplay(opt RunOptions) (*Result, error) {
	cfg := c.cfg
	q := cfg.NW - cfg.FW
	tau, damping := cfg.asyncParams()
	agg, err := NewAggregator(cfg.Rule, q, cfg.FW)
	if err != nil {
		return nil, fmt.Errorf("core: async-ssmw: %w", err)
	}
	res := newResult("async-ssmw")
	s := c.servers[0]
	rng := tensor.NewRNG(cfg.Seed ^ asyncReplaySalt)

	// Ring of parameter snapshots for the last tau+1 steps: a fetch tagged
	// with step t0 reads snapshots[t0 % depth], valid exactly while the
	// result could still pass the staleness filter.
	depth := uint32(tau + 1)
	snapshots := make([]tensor.Vector, depth)

	fetches := make([]replayFetch, cfg.NW)
	vt := 0.0 // virtual clock
	for w := range fetches {
		fetches[w] = replayFetch{tag: s.Step(), done: replayLatency(rng, tau)}
	}

	start := time.Now()
	wire0 := c.WireStats()
	staleSum, drops := 0, 0
	for i := 0; i < opt.Iterations; i++ {
		now := s.Step()
		snapshots[now%depth] = s.Params()

		// Run fetch completions, earliest virtual finisher first, until q
		// distinct workers hold a fresh gradient for this step.
		ready := make(map[int]asyncPick, q)
		guard := 0
		for len(ready) < q {
			if guard++; guard > 4*cfg.NW*(tau+2)+16 {
				return nil, fmt.Errorf("core: async-ssmw replay step %d: schedule failed to produce a quorum", now)
			}
			w, live := -1, 0
			for j := range fetches {
				if fetches[j].dead {
					continue
				}
				live++
				if w < 0 || fetches[j].done < fetches[w].done {
					w = j
				}
			}
			if live < q {
				return nil, fmt.Errorf("core: async-ssmw replay step %d: %w: %d live workers for quorum %d",
					now, rpc.ErrQuorum, live, q)
			}
			if fetches[w].done > vt {
				vt = fetches[w].done
			}
			if staleness := int(now - fetches[w].tag); staleness <= tau {
				vec, err := c.replayPull(s, w, fetches[w].tag, snapshots[fetches[w].tag%depth])
				if err != nil {
					// A crashed or always-omitting worker: out of the
					// schedule for the rest of this run segment.
					fetches[w].dead = true
					continue
				}
				ready[w] = asyncPick{worker: w, staleness: staleness, vec: vec}
			} else {
				drops++ // completed too stale to be worth pulling
			}
			// Start the next fetch against the current model state.
			fetches[w].tag = now
			fetches[w].done = vt + replayLatency(rng, tau)
		}

		picks := make([]asyncPick, 0, len(ready))
		for _, p := range ready {
			picks = append(picks, p)
		}
		sort.Slice(picks, func(a, b int) bool {
			if picks[a].staleness != picks[b].staleness {
				return picks[a].staleness < picks[b].staleness
			}
			return picks[a].worker < picks[b].worker
		})
		staleSum += dampPicks(picks, damping)
		aggr, err := agg.Aggregate(pickVectors(picks))
		if err != nil {
			return nil, fmt.Errorf("core: async-ssmw replay iteration %d: %w", i, err)
		}
		if err := s.UpdateModel(aggr); err != nil {
			return nil, err
		}
		res.Breakdown.EndIteration()
		res.Updates++
		if err := c.recordAccuracy(res, s, opt, i, start); err != nil {
			return nil, err
		}
	}
	if opt.Iterations > 0 && q > 0 {
		res.AvgStaleness = float64(staleSum) / float64(opt.Iterations*q)
	}
	res.StaleDrops = drops
	res.WallTime = time.Since(start)
	res.Wire = c.WireStats().Sub(wire0)
	return res, nil
}

// replayPull issues one sequential gradient pull over the real RPC path for
// the replay engine.
func (c *Cluster) replayPull(s *Server, w int, step uint32, params tensor.Vector) (tensor.Vector, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.PullTimeout)
	defer cancel()
	return s.client.Call(ctx, c.workerAddrs[w], rpc.Request{
		Kind: rpc.KindGetGradient, Step: step, Accept: s.accept, Vec: params,
	})
}
