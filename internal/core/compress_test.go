package core

import (
	"bytes"
	"testing"

	"garfield/internal/compress"
	"garfield/internal/gar"
	"garfield/internal/rpc"
	"garfield/internal/tensor"
)

// compressConfig is baseConfig with a gradient codec enabled.
func compressConfig(t *testing.T, codec string, topK int) Config {
	cfg := baseConfig(t)
	cfg.Compression = codec
	cfg.TopK = topK
	return cfg
}

// TestCompressionConfigValidation: codec knobs are vetted at construction.
func TestCompressionConfigValidation(t *testing.T) {
	bad := []struct {
		name  string
		codec string
		topK  int
	}{
		{"unknown codec", "gzip", 0},
		{"topk without budget", "topk", 0},
		{"budget without topk", "int8", 9},
	}
	for _, tc := range bad {
		if _, err := NewCluster(compressConfig(t, tc.codec, tc.topK)); err == nil {
			t.Errorf("%s: NewCluster accepted compression=%q top_k=%d", tc.name, tc.codec, tc.topK)
		}
	}
}

// TestInt8ReducesReplyBytes is the subsystem's headline acceptance check:
// with int8 quantization, the run's pull-reply payload bytes shrink at least
// 4x against the fp64 baseline the byte counters track reply by reply — and
// the run still trains.
func TestInt8ReducesReplyBytes(t *testing.T) {
	cfg := compressConfig(t, "int8", 0)
	c := newTestCluster(t, cfg)
	res, err := c.RunSSMW(RunOptions{Iterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Wire
	if w.Replies == 0 || w.ReplyPayloadBytes == 0 {
		t.Fatalf("no reply accounting recorded: %+v", w)
	}
	if w.ReplyFP64Bytes < 4*w.ReplyPayloadBytes {
		t.Fatalf("int8 reply bytes %d vs fp64 baseline %d: ratio %.2fx < 4x",
			w.ReplyPayloadBytes, w.ReplyFP64Bytes, w.ReplyCompressionRatio())
	}
	if res.Accuracy.Last() < 0.5 {
		t.Fatalf("compressed run failed to train: final accuracy %v", res.Accuracy.Last())
	}
}

// TestUncompressedBaselineRatioIsOne: without a codec the shipped bytes ARE
// the baseline, so the ratio collapses to exactly 1 — the counters agree
// with themselves.
func TestUncompressedBaselineRatioIsOne(t *testing.T) {
	c := newTestCluster(t, baseConfig(t))
	res, err := c.RunSSMW(RunOptions{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Wire
	if w.ReplyPayloadBytes != w.ReplyFP64Bytes {
		t.Fatalf("uncompressed run: shipped %d != baseline %d", w.ReplyPayloadBytes, w.ReplyFP64Bytes)
	}
	if w.BytesIn == 0 || w.BytesOut == 0 || w.Calls == 0 {
		t.Fatalf("wire accounting empty: %+v", w)
	}
}

// TestCompressedConvergesLikeUncompressed: the dense codecs are near-lossless
// at gradient scale, so final accuracy must match the uncompressed run
// closely on the same task and seed.
func TestCompressedConvergesLikeUncompressed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run convergence comparison")
	}
	run := func(codec string, topK int) float64 {
		cfg := compressConfig(t, codec, topK)
		c := newTestCluster(t, cfg)
		res, err := c.RunSSMW(RunOptions{Iterations: 40})
		if err != nil {
			t.Fatal(err)
		}
		return res.Accuracy.Last()
	}
	base := run("", 0)
	for _, tc := range []struct {
		codec string
		topK  int
	}{{"fp16", 0}, {"int8", 0}, {"topk", 16}} {
		acc := run(tc.codec, tc.topK)
		if acc < base-0.1 {
			t.Errorf("%s final accuracy %v vs uncompressed %v", tc.codec, acc, base)
		}
	}
}

// TestCompressionNegotiation exercises the Accept byte end to end at the
// worker: a matching Accept gets the compressed payload, everything else —
// no Accept, a different codec, an encoding this build does not know — gets
// the fp64 passthrough. Mixed fleets always interoperate.
func TestCompressionNegotiation(t *testing.T) {
	arch, train, _ := testTask(t)
	shard := train
	w, err := NewWorker(arch, shard, 8, 1, nil, WithCompression(compress.EncInt8, 0))
	if err != nil {
		t.Fatal(err)
	}
	params := tensor.New(arch.Dim())
	req := rpc.Request{Kind: rpc.KindGetGradient, Step: 0, Vec: params}

	plain := w.Handle(req)
	if !plain.OK || plain.Enc != compress.EncFP64 || plain.Vec == nil || plain.Payload != nil {
		t.Fatalf("no-Accept reply not passthrough: %+v", plain)
	}

	req.Accept = compress.EncFP16 // worker speaks int8, not fp16
	mismatch := w.Handle(req)
	if !mismatch.OK || mismatch.Enc != compress.EncFP64 || mismatch.Vec == nil {
		t.Fatalf("codec-mismatch reply not passthrough: %+v", mismatch)
	}

	req.Accept = compress.Encoding(200) // future/unknown encoding
	unknown := w.Handle(req)
	if !unknown.OK || unknown.Enc != compress.EncFP64 || unknown.Vec == nil {
		t.Fatalf("unknown-Accept reply not passthrough: %+v", unknown)
	}

	req.Accept = compress.EncInt8
	matched := w.Handle(req)
	if !matched.OK || matched.Enc != compress.EncInt8 || matched.Payload == nil || !matched.FreePayload {
		t.Fatalf("matching Accept did not compress: %+v", matched)
	}
	var decoded tensor.Vector
	if err := compress.Decode(&decoded, matched.Enc, matched.Payload); err != nil {
		t.Fatalf("compressed reply does not decode: %v", err)
	}
	if len(decoded) != arch.Dim() {
		t.Fatalf("decoded gradient dim %d, want %d", len(decoded), arch.Dim())
	}
}

// TestErrorFeedbackResetOnRestore: restoring a checkpoint through the
// cluster resets every worker's top-k error-feedback residual — the
// residual encodes corrections for a timeline the restore discarded.
func TestErrorFeedbackResetOnRestore(t *testing.T) {
	cfg := compressConfig(t, "topk", 4)
	cfg.NPS, cfg.FPS = 1, 0
	c := newTestCluster(t, cfg)
	if _, err := c.RunSSMW(RunOptions{Iterations: 3}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Server(0).SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunSSMW(RunOptions{Iterations: 3}); err != nil {
		t.Fatal(err)
	}
	dirty := 0
	for _, w := range c.workers {
		if w.compressionResidualNorm() > 0 {
			dirty++
		}
	}
	if dirty == 0 {
		t.Fatal("no worker accumulated a residual; the reset assertion would be vacuous")
	}
	if err := c.RestoreServerCheckpoint(0, &buf); err != nil {
		t.Fatal(err)
	}
	for i, w := range c.workers {
		if n := w.compressionResidualNorm(); n != 0 {
			t.Errorf("worker %d residual %v after restore, want 0", i, n)
		}
	}
	// And the restored cluster keeps training.
	if _, err := c.RunSSMW(RunOptions{Iterations: 2}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicCompressedBitIdentical: deterministic mode stays
// bit-identical per seed with every codec enabled — the per-step payload
// cache advances the error-feedback residual once per step, however many
// pulls arrive, so accuracy curves and byte counts both reproduce exactly.
func TestDeterministicCompressedBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		codec string
		topK  int
	}{{"int8", 0}, {"fp16", 0}, {"topk", 8}} {
		run := func() (*Result, error) {
			cfg := compressConfig(t, tc.codec, tc.topK)
			cfg.Deterministic = true
			cfg.SyncQuorum = true
			cfg.NPS, cfg.FPS = 2, 0
			cfg.Rule = gar.NameMedian
			c := newTestCluster(t, cfg)
			return c.RunMSMW(RunOptions{Iterations: 6, AccEvery: 2})
		}
		a, err := run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Accuracy.Points) != len(b.Accuracy.Points) {
			t.Fatalf("%s: curve lengths differ", tc.codec)
		}
		for i := range a.Accuracy.Points {
			if a.Accuracy.Points[i] != b.Accuracy.Points[i] {
				t.Fatalf("%s: accuracy point %d differs: %v vs %v",
					tc.codec, i, a.Accuracy.Points[i], b.Accuracy.Points[i])
			}
		}
		if a.Wire.ReplyPayloadBytes != b.Wire.ReplyPayloadBytes || a.Wire.BytesOut != b.Wire.BytesOut {
			t.Fatalf("%s: wire accounting differs between identical runs: %+v vs %+v",
				tc.codec, a.Wire, b.Wire)
		}
	}
}

// TestCompressedAsyncSSMW: the bounded-staleness engine's fetchers advertise
// the codec too, so async runs also ship compressed replies.
func TestCompressedAsyncSSMW(t *testing.T) {
	if testing.Short() {
		t.Skip("live async engine")
	}
	cfg := compressConfig(t, "int8", 0)
	cfg.NPS, cfg.FPS = 1, 0
	c := newTestCluster(t, cfg)
	res, err := c.RunAsyncSSMW(RunOptions{Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wire.ReplyFP64Bytes < 4*res.Wire.ReplyPayloadBytes {
		t.Fatalf("async int8 ratio %.2fx < 4x", res.Wire.ReplyCompressionRatio())
	}
}
