package core

import (
	"errors"
	"testing"
	"time"

	"garfield/internal/gar"
)

// shardedBaseConfig is the crash-only server tier the sharded topology
// requires (fps = 0), deterministic + sync-quorum so runs are bit-identical
// and comparable float-for-float.
func shardedBaseConfig(t *testing.T) Config {
	cfg := baseConfig(t)
	cfg.FPS = 0
	cfg.NPS = 3
	cfg.Deterministic = true
	cfg.SyncQuorum = true
	cfg.PullTimeout = 5 * time.Second
	return cfg
}

// TestShardedMatchesFlatCoordinateWise is the golden equivalence lock of the
// sharded protocol: for every coordinate-wise rule and every shard count in
// {1, 2, 3, 7}, the sharded run's model trajectory is bit-identical to the
// flat SSMW run's — the distributed composition of per-shard aggregation and
// reassembly is the flat rule, float for float.
func TestShardedMatchesFlatCoordinateWise(t *testing.T) {
	rules := []string{gar.NameAverage, gar.NameMedian, gar.NameTrimmedMean, gar.NamePhocas}
	opt := RunOptions{Iterations: 3}
	for _, rule := range rules {
		cfg := shardedBaseConfig(t)
		cfg.Rule = rule
		flat := newTestCluster(t, cfg)
		res, err := flat.RunSSMW(opt)
		if err != nil {
			t.Fatalf("%s: flat: %v", rule, err)
		}
		if res.Updates != opt.Iterations {
			t.Fatalf("%s: flat applied %d updates", rule, res.Updates)
		}
		want := flat.Server(0).Params()

		for _, shards := range []int{1, 2, 3, 7} {
			scfg := cfg
			scfg.Shards = shards
			c := newTestCluster(t, scfg)
			sres, err := c.RunSharded(opt)
			if err != nil {
				t.Fatalf("%s/shards=%d: %v", rule, shards, err)
			}
			if sres.Updates != opt.Iterations || sres.ShardRounds != opt.Iterations || sres.ShardAborts != 0 {
				t.Fatalf("%s/shards=%d: updates=%d rounds=%d aborts=%d",
					rule, shards, sres.Updates, sres.ShardRounds, sres.ShardAborts)
			}
			for r := 0; r < c.Servers(); r++ {
				got := c.Server(r).Params()
				if !got.Equal(want) {
					t.Fatalf("%s/shards=%d: replica %d diverged from the flat run", rule, shards, r)
				}
			}
			if shards > 1 && sres.Wire.ShardPulls == 0 {
				t.Fatalf("%s/shards=%d: no shard pulls accounted", rule, shards)
			}
		}
	}
}

// TestShardedHierarchicalSelection: a selection rule shards hierarchically —
// group-local Krum plus a root round over the winners — and keeps every
// replica on the identical trajectory without a model-exchange phase.
func TestShardedHierarchicalSelection(t *testing.T) {
	cfg := shardedBaseConfig(t)
	cfg.NW, cfg.FW = 15, 1 // groups of 5: krum's 2f+3 floor holds per group
	cfg.Rule = gar.NameKrum
	cfg.Shards = 3
	c := newTestCluster(t, cfg)
	res, err := c.RunSharded(RunOptions{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 3 || res.ShardAborts != 0 {
		t.Fatalf("updates=%d aborts=%d", res.Updates, res.ShardAborts)
	}
	want := c.Server(0).Params()
	for r := 1; r < c.Servers(); r++ {
		if !c.Server(r).Params().Equal(want) {
			t.Fatalf("replica %d diverged", r)
		}
	}
}

// TestShardedFailoverAndRecovery: crashing a shard owner mid-run fails its
// shards over to the next live replica (counted), and recovering it catches
// the replica up to the fleet's model before its next round.
func TestShardedFailoverAndRecovery(t *testing.T) {
	cfg := shardedBaseConfig(t)
	cfg.Shards = 3
	c := newTestCluster(t, cfg)
	opt := RunOptions{Iterations: 3}

	if _, err := c.RunSharded(opt); err != nil {
		t.Fatal(err)
	}
	c.CrashServer(0)
	res, err := c.RunSharded(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != opt.Iterations {
		t.Fatalf("crashed-owner segment applied %d of %d updates", res.Updates, opt.Iterations)
	}
	if res.ShardFailovers == 0 {
		t.Fatal("no failovers counted with a crashed owner")
	}
	if err := c.RecoverServer(0); err != nil {
		t.Fatal(err)
	}
	res, err = c.RunSharded(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != opt.Iterations || res.ShardAborts != 0 {
		t.Fatalf("post-recovery segment: updates=%d aborts=%d", res.Updates, res.ShardAborts)
	}
	want := c.Server(0).Params()
	wantStep := c.Server(0).Step()
	for r := 1; r < c.Servers(); r++ {
		if got := c.Server(r).Step(); got != wantStep {
			t.Fatalf("replica %d at step %d, want %d", r, got, wantStep)
		}
		if !c.Server(r).Params().Equal(want) {
			t.Fatalf("recovered fleet diverged at replica %d", r)
		}
	}
}

// TestShardedAbortsCleanly: with a shard owner partitioned from the workers,
// every round aborts before any model write — the no-torn-writes guarantee —
// and healing restores liveness.
func TestShardedAbortsCleanly(t *testing.T) {
	cfg := shardedBaseConfig(t)
	cfg.NPS = 2
	cfg.Shards = 2
	cfg.PullTimeout = 2 * time.Second
	c := newTestCluster(t, cfg)
	before := c.Server(0).Params()

	workerAddrs := make([]string, cfg.NW)
	for i := range workerAddrs {
		workerAddrs[i] = c.WorkerAddr(i)
	}
	c.Partition([]string{c.ServerAddr(0)}, workerAddrs)
	res, err := c.RunSharded(RunOptions{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 0 || res.ShardAborts != 3 {
		t.Fatalf("partitioned segment: updates=%d aborts=%d", res.Updates, res.ShardAborts)
	}
	for r := 0; r < c.Servers(); r++ {
		if !c.Server(r).Params().Equal(before) {
			t.Fatalf("aborted rounds left a model write at replica %d", r)
		}
	}
	c.HealPartitions()
	res, err = c.RunSharded(RunOptions{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 3 || res.ShardAborts != 0 {
		t.Fatalf("healed segment: updates=%d aborts=%d", res.Updates, res.ShardAborts)
	}
}

// TestShardedConfigValidation: the topology's shape requirements fail fast.
func TestShardedConfigValidation(t *testing.T) {
	opt := RunOptions{Iterations: 1}
	t.Run("no shards", func(t *testing.T) {
		cfg := shardedBaseConfig(t)
		c := newTestCluster(t, cfg)
		if _, err := c.RunSharded(opt); !errors.Is(err, ErrConfig) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("byzantine server tier", func(t *testing.T) {
		cfg := shardedBaseConfig(t)
		cfg.Shards = 2
		cfg.FPS = 1
		c := newTestCluster(t, cfg)
		if _, err := c.RunSharded(opt); !errors.Is(err, ErrConfig) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("more shards than coordinates", func(t *testing.T) {
		cfg := shardedBaseConfig(t)
		cfg.Shards = cfg.Arch.Dim() + 1
		c := newTestCluster(t, cfg)
		if _, err := c.RunSharded(opt); !errors.Is(err, ErrConfig) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("hierarchical group floor", func(t *testing.T) {
		cfg := shardedBaseConfig(t)
		cfg.Rule = gar.NameKrum // 2f+3 floor: groups of 2-3 cannot host f=1
		cfg.Shards = 3
		c := newTestCluster(t, cfg)
		if _, err := c.RunSharded(opt); !errors.Is(err, ErrConfig) {
			t.Fatalf("err = %v", err)
		}
	})
}
