package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"garfield/internal/gar"
	"garfield/internal/metrics"
	"garfield/internal/rpc"
	"garfield/internal/tensor"
)

// Result collects the measurements of one training run in the units the
// paper reports: accuracy over iterations (Figures 4, 5, 12a), accuracy over
// wall-clock time (Figures 11, 12b), a per-phase latency breakdown
// (Figures 7, 16), and aggregate throughput.
type Result struct {
	// Accuracy is accuracy vs iteration index.
	Accuracy *metrics.Series
	// AccuracyOverTime is accuracy vs seconds since the run started.
	AccuracyOverTime *metrics.Series
	// Breakdown accumulates per-phase latency.
	Breakdown *metrics.Breakdown
	// Updates is the number of model updates applied (at the observed
	// server).
	Updates int
	// WallTime is the total run duration.
	WallTime time.Duration

	// AvgStaleness is the mean staleness (in steps) of the gradients the
	// observed server aggregated; always 0 for the lockstep protocols.
	AvgStaleness float64
	// StaleDrops counts gradients the observed server discarded for
	// exceeding the staleness bound (async protocols only).
	StaleDrops int

	// ShardRounds, ShardAborts and ShardFailovers instrument the sharded
	// topology (RunSharded): rounds committed through full reassembly,
	// rounds aborted with no model write (a pull or quorum failure anywhere
	// in the round — the all-or-abort guarantee's observable half), and
	// shard-ownership reassignments away from the preferred owner (a crashed
	// owner's shards moving to the next live replica). All zero elsewhere.
	ShardRounds    int
	ShardAborts    int
	ShardFailovers int

	// Wire is the run's byte accounting, summed over every replica's
	// pooled client: frame bytes in/out, and the pull-reply payload bytes
	// as shipped versus their fp64-passthrough baseline — the pair the
	// compression ratio derives from. See rpc.WireStats.
	Wire rpc.WireStats
}

// UpdatesPerSec returns observed throughput in the paper's updates/sec
// metric.
func (r *Result) UpdatesPerSec() float64 {
	if r.WallTime <= 0 {
		return 0
	}
	return float64(r.Updates) / r.WallTime.Seconds()
}

// RunOptions tunes one protocol run.
type RunOptions struct {
	// Iterations is the number of training steps.
	Iterations int
	// AccEvery measures accuracy every that many iterations (and at the
	// end); 0 disables intermediate measurements.
	AccEvery int
}

func (o RunOptions) validate() error {
	if o.Iterations < 1 {
		return fmt.Errorf("%w: iterations=%d", ErrConfig, o.Iterations)
	}
	if o.AccEvery < 0 {
		return fmt.Errorf("%w: accEvery=%d", ErrConfig, o.AccEvery)
	}
	return nil
}

func newResult(name string) *Result {
	return &Result{
		Accuracy:         &metrics.Series{Name: name},
		AccuracyOverTime: &metrics.Series{Name: name},
		Breakdown:        &metrics.Breakdown{},
	}
}

// recordAccuracy measures and records accuracy at iteration i when due.
func (c *Cluster) recordAccuracy(res *Result, s *Server, opt RunOptions, i int, start time.Time) error {
	if opt.AccEvery == 0 && i != opt.Iterations-1 {
		return nil
	}
	if opt.AccEvery != 0 && (i+1)%opt.AccEvery != 0 && i != opt.Iterations-1 {
		return nil
	}
	acc, err := s.ComputeAccuracy(c.cfg.Test)
	if err != nil {
		return fmt.Errorf("core: accuracy at iteration %d: %w", i, err)
	}
	res.Accuracy.Append(float64(i+1), acc)
	res.AccuracyOverTime.Append(c.clock.Now().Sub(start).Seconds(), acc)
	return nil
}

// RunVanilla trains with the fault-intolerant baseline: one server, plain
// averaging, synchronous collection from all workers. It is the TensorFlow /
// PyTorch stand-in every experiment normalizes against.
func (c *Cluster) RunVanilla(opt RunOptions) (*Result, error) {
	return c.runSingleServer(opt, gar.NameAverage, false, "vanilla")
}

// RunSSMW trains the single-server multi-worker application of Listing 1:
// a trusted server aggregates worker gradients with a robust GAR,
// synchronously (q_w = n_w).
func (c *Cluster) RunSSMW(opt RunOptions) (*Result, error) {
	return c.runSingleServer(opt, c.cfg.Rule, true, "ssmw")
}

// RunAggregaThor trains with the AggregaThor baseline: the SSMW topology
// fixed to Multi-Krum, as in the paper's comparisons.
func (c *Cluster) RunAggregaThor(opt RunOptions) (*Result, error) {
	return c.runSingleServer(opt, gar.NameMultiKrum, true, "aggregathor")
}

// runSingleServer drives the roster's first server replica through the
// shared run loop. The stepper re-reads the roster every iteration, so
// mid-run joins/leaves take effect at the next round: the worker quorum
// tracks the active worker count (and, for robust rules, the active
// declared-Byzantine count), and the aggregator is rebuilt only when the
// fleet shape actually changes.
func (c *Cluster) runSingleServer(opt RunOptions, rule string, robust bool, name string) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	res := newResult(name)
	return c.driveSteps(res, &singleServerStepper{c: c, res: res, rule: rule, robust: robust, name: name}, opt)
}

// RunCrashTolerant trains with the strawman crash-tolerant protocol of
// Section 6.2: the server is replicated, every replica collects all worker
// gradients and averages them, and workers (implicitly, via the pull fold-in)
// follow the primary. When the primary crashes the next replica takes over;
// its model may miss updates, which is acceptable for eventual convergence.
// Accuracy is observed at the current primary.
func (c *Cluster) RunCrashTolerant(opt RunOptions) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if c.Servers() < 1 {
		return nil, fmt.Errorf("%w: crash-tolerant needs server replicas", ErrConfig)
	}
	res := newResult("crash-tolerant")
	st := &crashStepper{c: c, res: res, aggs: make(map[int]*Aggregator), keys: make(map[int]aggKey)}
	return c.driveSteps(res, st, opt)
}

// crashStep performs one average-and-update step at replica r with its
// per-replica aggregator and the round's worker quorum q. Only the primary's
// timings feed the breakdown to keep per-iteration semantics.
func (c *Cluster) crashStep(res *Result, agg *Aggregator, r, i, q int, isPrimary bool) error {
	s := c.Server(r)
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.PullTimeout)
	defer cancel()
	commDone := c.phaseTimer()
	grads, err := s.GetGradients(ctx, i, q)
	if isPrimary {
		res.Breakdown.AddComm(commDone())
	}
	if err != nil {
		return err
	}
	aggDone := c.phaseTimer()
	aggr, err := agg.Aggregate(grads)
	if isPrimary {
		res.Breakdown.AddAgg(aggDone())
	}
	if err != nil {
		return err
	}
	return s.UpdateModel(aggr)
}

// RunMSMW trains the multi-server multi-worker application of Listing 2:
// every replica collects n_w - f_w gradients, robust-aggregates them,
// updates its model, then pulls n_ps - f_ps models from its peers,
// robust-aggregates those and overwrites its own state. Byzantine replicas
// serve corrupted models; Byzantine workers serve corrupted gradients.
// Accuracy is observed at the first honest replica. In deterministic mode
// the replicas run in lockstep phase order (all update before anyone pulls
// models, all pull before anyone overwrites its state — see
// msmwStepper.stepLockstep); otherwise they run concurrently.
func (c *Cluster) RunMSMW(opt RunOptions) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if c.Roster().NPS() < 2 {
		return nil, fmt.Errorf("%w: msmw needs at least 2 server replicas", ErrConfig)
	}
	res := newResult("msmw")
	return c.driveSteps(res, newMSMWStepper(c, res), opt)
}

// msmwStep performs one concurrent-mode round at replica r: pull qw
// gradients, robust-aggregate, update, then (on contraction rounds) pull
// qps peer models, robust-aggregate and overwrite. Only replica honest[0]'s
// timings feed the breakdown.
func (c *Cluster) msmwStep(res *Result, gradAgg, modelAgg *Aggregator, r, i, qw, qps int, record bool) error {
	cfg := c.cfg
	s := c.Server(r)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.PullTimeout)
	defer cancel()

	commDone := c.phaseTimer()
	grads, err := s.GetGradients(ctx, i, qw)
	if record {
		res.Breakdown.AddComm(commDone())
	}
	if err != nil {
		return err
	}
	aggDone := c.phaseTimer()
	aggr, err := gradAgg.Aggregate(grads)
	if record {
		res.Breakdown.AddAgg(aggDone())
	}
	if err != nil {
		return err
	}
	if err := s.UpdateModel(aggr); err != nil {
		return err
	}
	if (i+1)%cfg.ModelAggEvery != 0 {
		return nil // contraction is periodic; no model exchange this round
	}

	commDone = c.phaseTimer()
	models, err := s.GetModels(ctx, qps)
	if record {
		res.Breakdown.AddComm(commDone())
	}
	if err != nil {
		return err
	}
	aggDone = c.phaseTimer()
	aggrModel, err := modelAgg.Aggregate(models)
	if record {
		res.Breakdown.AddAgg(aggDone())
	}
	if err != nil {
		return err
	}
	return s.WriteModel(aggrModel)
}

// RunDecentralized trains the peer-to-peer application of Listing 3: every
// node owns both a Worker and a Server object; each iteration it collects
// n - f gradients, robust-aggregates, optionally runs the multi-round
// contract step (non-IID data), updates its model, then aggregates the
// models of n - f peers. The cluster must be built with NPS == NW: node i
// is the pairing of server i and worker i. Accuracy is observed at node 0.
func (c *Cluster) RunDecentralized(opt RunOptions) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	cfg := c.cfg
	if c.Servers() != cfg.NW {
		return nil, fmt.Errorf("%w: decentralized needs nps == nw (one server+worker pair per node), got %d servers %d workers",
			ErrConfig, c.Servers(), cfg.NW)
	}
	n, f := cfg.NW, cfg.FW
	res := newResult("decentralized")
	honest := n - f
	q := n - f
	if cfg.SyncQuorum {
		q = n
	}
	gradAggs := make([]*Aggregator, honest)
	modelAggs := make([]*Aggregator, honest)
	for r := 0; r < honest; r++ {
		var err error
		if gradAggs[r], err = NewAggregator(cfg.Rule, q, f); err != nil {
			return nil, fmt.Errorf("core: decentralized: %w", err)
		}
		if modelAggs[r], err = NewAggregator(cfg.ModelRule, q, f); err != nil {
			return nil, fmt.Errorf("core: decentralized: %w", err)
		}
	}
	st := &decentralizedStepper{c: c, res: res, gradAggs: gradAggs, modelAggs: modelAggs}
	return c.driveSteps(res, st, opt)
}

func (c *Cluster) decentralizedStep(res *Result, gradAgg, modelAgg *Aggregator, r, i int, b *barrier, record bool) error {
	cfg := c.cfg
	s := c.Server(r)
	n, f := cfg.NW, cfg.FW
	q := n - f
	if cfg.SyncQuorum {
		q = n
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.PullTimeout)
	defer cancel()

	commDone := c.phaseTimer()
	grads, err := s.GetGradients(ctx, i, q)
	if record {
		res.Breakdown.AddComm(commDone())
	}
	if err != nil {
		return releaseAndFail(b, err)
	}
	aggDone := c.phaseTimer()
	aggr, err := gradAgg.Aggregate(grads)
	if record {
		res.Breakdown.AddAgg(aggDone())
	}
	if err != nil {
		return releaseAndFail(b, err)
	}

	if cfg.NonIID {
		aggr, err = c.contract(res, s, gradAgg, aggr, b, record)
		if err != nil {
			return err
		}
	} else {
		// Keep barrier phase counts aligned across nodes.
		for step := 0; step < cfg.ContractSteps; step++ {
			if !b.wait() || !b.wait() {
				return errBarrierBroken
			}
		}
	}

	if err := s.UpdateModel(aggr); err != nil {
		return releaseAndFail(b, err)
	}
	if !b.wait() { // all nodes updated before model exchange
		return errBarrierBroken
	}

	commDone = c.phaseTimer()
	models, err := s.GetModels(ctx, q)
	if record {
		res.Breakdown.AddComm(commDone())
	}
	if err != nil {
		return releaseAndFail(b, err)
	}
	if cfg.Deterministic {
		// Lockstep model exchange: all nodes pulled before anyone
		// overwrites its state, so the observed multiset of peer models
		// does not depend on scheduling.
		if !b.wait() {
			return errBarrierBroken
		}
	}
	aggDone = c.phaseTimer()
	aggrModel, err := modelAgg.Aggregate(models)
	if record {
		res.Breakdown.AddAgg(aggDone())
	}
	if err != nil {
		return releaseAndFail(b, err)
	}
	return s.WriteModel(aggrModel)
}

// contract is the multi-round gradient-contraction step of Listing 3
// (lines 16-21): nodes repeatedly publish their aggregated gradient, pull
// their peers', and re-aggregate, pulling the correct nodes' states closer
// together under non-IID data. gradAgg is the node's gradient aggregator
// (the pulled aggregate sets have the same shape as the gradient sets);
// SetLatestAggrGrad clones, so overwriting gradAgg's buffer next round is
// safe.
func (c *Cluster) contract(res *Result, s *Server, gradAgg *Aggregator, aggr tensor.Vector, b *barrier, record bool) (tensor.Vector, error) {
	cfg := c.cfg
	n, f := cfg.NW, cfg.FW
	q := n - f
	if cfg.SyncQuorum {
		q = n
	}
	for step := 0; step < cfg.ContractSteps; step++ {
		s.SetLatestAggrGrad(aggr)
		if !b.wait() { // everyone published before anyone pulls
			return nil, errBarrierBroken
		}
		ctx, cancel := context.WithTimeout(context.Background(), cfg.PullTimeout)
		commDone := c.phaseTimer()
		aggrs, err := s.GetAggrGrads(ctx, q)
		cancel()
		if record {
			res.Breakdown.AddComm(commDone())
		}
		if err != nil {
			return nil, releaseAndFail(b, err)
		}
		aggDone := c.phaseTimer()
		aggr, err = gradAgg.Aggregate(aggrs)
		if record {
			res.Breakdown.AddAgg(aggDone())
		}
		if err != nil {
			return nil, releaseAndFail(b, err)
		}
		if !b.wait() { // everyone pulled before the next publish overwrites
			return nil, errBarrierBroken
		}
	}
	return aggr, nil
}

// barrier synchronizes the in-process node goroutines at phase boundaries.
// A real deployment gets this alignment from the pull quorums themselves;
// in-process we make it explicit so runs are deterministic.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	round  int
	broken bool
}

// errBarrierBroken is returned by a step whose round was aborted because a
// peer broke the phase barrier (the peer's own failure is the root cause).
var errBarrierBroken = errors.New("core: round aborted: a peer failed and broke the phase barrier")

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n participants arrive and reports whether the
// barrier is intact: false means a failing participant broke it, and the
// caller must abort its round rather than proceed — completing the round
// would record a step (and mutate model state) on a phase alignment that no
// longer holds.
func (b *barrier) wait() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		return false
	}
	b.count++
	if b.count == b.n {
		b.count = 0
		b.round++
		b.cond.Broadcast()
		return true
	}
	round := b.round
	for b.round == round && !b.broken {
		b.cond.Wait()
	}
	return !b.broken
}

// break_ permanently releases the barrier so peers of a failed node do not
// deadlock.
func (b *barrier) break_() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.broken = true
	b.cond.Broadcast()
}

// releaseAndFail breaks the barrier — permanently releasing peers awaiting
// any remaining phase — and returns err.
func releaseAndFail(b *barrier, err error) error {
	b.break_()
	return err
}

// firstRootCause picks the error to surface from a round's per-node error
// slice: a node's own failure is the root cause, and peers that merely
// observed the broken barrier are secondary. Returns the node index and its
// error, or (-1, nil) when the round succeeded everywhere.
func firstRootCause(errs []error) (int, error) {
	for r, err := range errs {
		if err != nil && !errors.Is(err, errBarrierBroken) {
			return r, err
		}
	}
	for r, err := range errs {
		if err != nil {
			return r, err
		}
	}
	return -1, nil
}
