package core

import (
	"context"
	"errors"
	"strconv"
	"testing"
	"time"

	"garfield/internal/data"
	"garfield/internal/gar"
	"garfield/internal/rpc"
	"garfield/internal/sgd"
	"garfield/internal/tensor"
	"garfield/internal/transport"
)

// buildPeerRing wires n PeerNodes over an in-memory network and returns the
// nodes plus a cleanup function.
func buildPeerRing(t *testing.T, n int, nonIID bool) []*PeerNode {
	t.Helper()
	arch, train, _ := testTask(t)
	var shards []*data.Dataset
	var err error
	if nonIID {
		shards, err = data.PartitionByLabel(train, n)
	} else {
		shards, err = data.PartitionIID(train, n, 3)
	}
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewMem()
	client := rpc.NewClient(net)
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "peer-" + strconv.Itoa(i)
	}
	init := arch.InitParams(tensor.NewRNG(3))
	nodes := make([]*PeerNode, n)
	for i := 0; i < n; i++ {
		w, err := NewWorker(arch, shards[i], 16, uint64(i)+1, nil)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := sgd.New(sgd.Constant(0.5))
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewServer(ServerConfig{
			Arch: arch, Init: init, Optimizer: opt,
			Client: client, Workers: addrs, Peers: addrs,
		})
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewPeerNode(w, s)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := rpc.Serve(net, addrs[i], node)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		nodes[i] = node
	}
	return nodes
}

func TestNewPeerNodeValidation(t *testing.T) {
	if _, err := NewPeerNode(nil, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestPeerNodeHandlerDispatch(t *testing.T) {
	nodes := buildPeerRing(t, 3, false)
	node := nodes[0]
	params := node.Server().Params()

	// Gradient requests hit the worker half.
	resp := node.Handle(rpc.Request{Kind: rpc.KindGetGradient, Vec: params})
	if !resp.OK {
		t.Fatal("gradient request declined")
	}
	// Model requests hit the server half.
	resp = node.Handle(rpc.Request{Kind: rpc.KindGetModel})
	if !resp.OK {
		t.Fatal("model request declined")
	}
	// Aggr-grad declined before first publish.
	if resp := node.Handle(rpc.Request{Kind: rpc.KindGetAggrGrad}); resp.OK {
		t.Fatal("aggr-grad served before publish")
	}
}

// TestPeerRingTrains drives three peer nodes through concurrent
// DecentralizedStep loops (the cross-process path, minus TCP) and checks
// they all learn.
func TestPeerRingTrains(t *testing.T) {
	const n, iters = 3, 40
	nodes := buildPeerRing(t, n, false)
	errCh := make(chan error, n)
	for _, node := range nodes {
		node := node
		go func() {
			for i := 0; i < iters; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				err := node.DecentralizedStep(ctx, i, n, 0, gar.NameMedian, gar.NameMedian, 1)
				cancel()
				if err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	_, _, test := testTask(t)
	for i, node := range nodes {
		acc, err := node.Server().ComputeAccuracy(test)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 0.75 {
			t.Fatalf("peer %d accuracy = %v", i, acc)
		}
	}
}

// TestPeerContractRetries verifies the retry-based contract: one peer
// publishes late, and the others' pulls succeed anyway within the deadline.
func TestPeerContractRetries(t *testing.T) {
	const n = 3
	nodes := buildPeerRing(t, n, false)
	// Node 2 publishes its aggregated gradient only after a delay.
	go func() {
		time.Sleep(150 * time.Millisecond)
		g := tensor.Filled(nodes[2].Server().Params().Dim(), 0.5)
		nodes[2].Server().SetLatestAggrGrad(g)
	}()
	// Nodes 0 and 1 publish immediately and pull a full quorum of 3.
	for i := 0; i < 2; i++ {
		g := tensor.Filled(nodes[i].Server().Params().Dim(), 0.1)
		nodes[i].Server().SetLatestAggrGrad(g)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	aggrs, err := pullAggrGradsWithRetry(ctx, nodes[0].Server(), n)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggrs) != n {
		t.Fatalf("aggrs = %d", len(aggrs))
	}
}

// TestPeerContractDeadline: when a peer never publishes, the retry loop must
// surface the context deadline instead of spinning forever.
func TestPeerContractDeadline(t *testing.T) {
	const n = 3
	nodes := buildPeerRing(t, n, false)
	nodes[0].Server().SetLatestAggrGrad(tensor.Filled(nodes[0].Server().Params().Dim(), 1))
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	_, err := pullAggrGradsWithRetry(ctx, nodes[0].Server(), n)
	if err == nil {
		t.Fatal("expected deadline error")
	}
}

// TestPeerStepNonIIDWithContract runs the full step including the contract
// rounds on label-sharded data.
func TestPeerStepNonIIDWithContract(t *testing.T) {
	const n, iters = 3, 30
	nodes := buildPeerRing(t, n, true)
	errCh := make(chan error, n)
	for _, node := range nodes {
		node := node
		go func() {
			for i := 0; i < iters; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				err := node.DecentralizedStep(ctx, i, n, 0, gar.NameMedian, gar.NameMedian, 2)
				cancel()
				if err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	_, _, test := testTask(t)
	acc, err := nodes[0].Server().ComputeAccuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Fatalf("non-IID peer accuracy = %v", acc)
	}
}
