package core

import (
	"io"

	"garfield/internal/rpc"
	"garfield/internal/transport"
)

// Wiring abstracts how a cluster's nodes are connected: how a node's RPC
// handler is exposed at an address, how a server replica obtains the client
// it pulls through, and which clock the protocol runners measure on. The
// default live wiring serves real framed-RPC loops over the fault-injectable
// in-memory transport with one pooled persistent client per replica and the
// wall clock. The discrete-event simulator (internal/sim) provides a wiring
// that dispatches requests directly to handlers under a virtual clock — no
// goroutine per node, no serialization on the hot path — which is how one
// process holds thousands of simulated nodes.
type Wiring interface {
	// Serve exposes handler at addr and returns a closer that withdraws it.
	Serve(addr string, handler rpc.Handler) (io.Closer, error)
	// NewCaller returns the pull client used by the node at address self.
	// The caller must stamp self as the request origin when the request
	// carries none (rpc.Client semantics), so adversarial handlers can
	// equivocate deterministically per puller.
	NewCaller(self string) rpc.Caller
	// Clock is the time source runners on this wiring measure with.
	Clock() Clock
}

// liveWiring is the default Wiring: real RPC serving loops over the
// fault-injectable transport, pooled persistent connections (Section 4.1's
// channel reuse), wall time.
type liveWiring struct {
	net *transport.Faulty
}

func (lw liveWiring) Serve(addr string, handler rpc.Handler) (io.Closer, error) {
	return rpc.Serve(lw.net, addr, handler)
}

func (lw liveWiring) NewCaller(self string) rpc.Caller {
	return rpc.NewPooledClientAs(lw.net.Bind(self), self)
}

func (lw liveWiring) Clock() Clock { return WallClock() }

// closeCaller closes a caller when its wiring gave it resources to release
// (pooled connections); simulator callers hold none and are left alone.
func closeCaller(cl rpc.Caller) {
	if closer, ok := cl.(io.Closer); ok {
		_ = closer.Close()
	}
}
