package core

import (
	"bytes"
	"errors"
	"testing"

	"garfield/internal/attack"
	"garfield/internal/rpc"
	"garfield/internal/tensor"
)

// Integrity tests for the v2 checkpoint format (checksum trailer) and the
// derived-state reset on restore. The happy-path round trip lives in
// extensions_test.go.

func savedCheckpoint(t *testing.T, c *Cluster) []byte {
	t.Helper()
	if _, err := c.RunSSMW(RunOptions{Iterations: 5}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Server(0).SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointRejectsTruncation(t *testing.T) {
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	data := savedCheckpoint(t, c)
	s := c.Server(0)

	// Every proper prefix must be rejected — in particular cuts that drop
	// a multiple of 8 bytes, where the final 8 bytes of the remaining
	// payload still parse as a plausible trailer.
	for _, cut := range []int{1, 8, 16, len(data) / 2, len(data) - 1} {
		trunc := data[:len(data)-cut]
		if err := s.LoadCheckpoint(bytes.NewReader(trunc)); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("truncated by %d bytes: err = %v, want ErrBadCheckpoint", cut, err)
		}
	}
}

func TestCheckpointRejectsTrailingGarbage(t *testing.T) {
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	data := savedCheckpoint(t, c)
	s := c.Server(0)

	// The tensor decoder ignores trailing bytes, so without the checksum a
	// shorter checkpoint written over a longer file would "decode". The
	// trailer must catch it.
	garbled := append(append([]byte(nil), data...), 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4)
	if err := s.LoadCheckpoint(bytes.NewReader(garbled)); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("trailing garbage: err = %v, want ErrBadCheckpoint", err)
	}
	// A flipped payload byte must also fail.
	flipped := append([]byte(nil), data...)
	flipped[20] ^= 0xff
	if err := s.LoadCheckpoint(bytes.NewReader(flipped)); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("flipped byte: err = %v, want ErrBadCheckpoint", err)
	}
}

// TestCheckpointResetsDerivedState: a restore must not leave pre-restore
// serving state behind — the published aggregated gradient belongs to the
// timeline the server just rolled back.
func TestCheckpointResetsDerivedState(t *testing.T) {
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	s := c.Server(0)
	data := savedCheckpoint(t, c)

	s.SetLatestAggrGrad(tensor.Filled(cfg.Arch.Dim(), 1))
	if resp := s.Handle(rpc.Request{Kind: rpc.KindGetAggrGrad}); !resp.OK {
		t.Fatal("aggregated gradient should be served before the restore")
	}
	if err := s.LoadCheckpoint(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if resp := s.Handle(rpc.Request{Kind: rpc.KindGetAggrGrad}); resp.OK {
		t.Fatal("pre-restore aggregated gradient served after the restore")
	}
}

// TestCheckpointResetsOptimizerState: restoring must also rewind the
// optimizer's derived training state — the learning-rate schedule continues
// from the checkpointed step, and momentum accumulated on the abandoned
// timeline is cleared.
func TestCheckpointResetsOptimizerState(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Momentum = 0.9
	c := newTestCluster(t, cfg)
	s := c.Server(0)

	var buf bytes.Buffer
	if _, err := c.RunSSMW(RunOptions{Iterations: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunSSMW(RunOptions{Iterations: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := s.opt.Step(); got != 5 {
		t.Fatalf("optimizer step after restore = %d, want the checkpointed 5", got)
	}
	// Momentum velocity must be gone: applying a zero gradient may not move
	// the parameters (a stale velocity would).
	before := s.Params()
	if err := s.UpdateModel(tensor.New(cfg.Arch.Dim())); err != nil {
		t.Fatal(err)
	}
	if !s.Params().Equal(before) {
		t.Fatal("pre-restore momentum velocity still applied after the restore")
	}
}

// TestCheckpointResetsDeterministicReplyCache: a Byzantine server in
// deterministic mode caches one corrupted reply per (kind, step); after a
// restore the cache must be dropped so pullers do not receive a reply drawn
// against pre-restore state.
func TestCheckpointResetsDeterministicReplyCache(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Deterministic = true
	cfg.FPS = 1
	cfg.ServerAttack = attack.NewRandom(tensor.NewRNG(3), 1.0)
	c := newTestCluster(t, cfg)
	byz := c.Server(cfg.NPS - 1)

	var buf bytes.Buffer
	if err := byz.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	req := rpc.Request{Kind: rpc.KindGetModel, Step: 0}
	before := byz.Handle(req)
	if !before.OK {
		t.Fatal("Byzantine server should serve")
	}
	// Cached: the same pull replays the identical corrupted vector.
	if again := byz.Handle(req); !again.Vec.Equal(before.Vec) {
		t.Fatal("deterministic reply cache not in effect")
	}
	if err := byz.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	after := byz.Handle(req)
	if !after.OK {
		t.Fatal("Byzantine server should serve after restore")
	}
	// The stochastic attack must have drawn afresh: a replayed cache would
	// return the bit-identical pre-restore vector.
	if after.Vec.Equal(before.Vec) {
		t.Fatal("pre-restore deterministic reply cache served after the restore")
	}
}
