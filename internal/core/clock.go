package core

import "time"

// Clock is the time source protocol runners measure and sleep on. The live
// wiring uses the wall clock; the discrete-event simulator substitutes a
// virtual clock so wall time, accuracy-over-time axes and phase breakdowns
// become simulated quantities — deterministic for a given seed and immune
// to host load. Any new time.Now()/time.Sleep call in a runner path is a
// bug: it would leak wall time into simulated runs.
type Clock interface {
	// Now returns the current time on this clock. Values from one clock are
	// only comparable to other values from the same clock.
	Now() time.Time
	// Sleep blocks (or, for a virtual clock, advances simulated time) for d.
	Sleep(d time.Duration)
}

// wallClock is the real-time Clock of live deployments. These two methods
// are the single place core touches the host clock; everything else reads
// time through the Clock seam, which is what the wallclock analyzer
// (internal/analysis) enforces at build time.

type wallClock struct{}

//lint:allow wallclock(the live Clock implementation is the one sanctioned wall-time source behind the seam)
func (wallClock) Now() time.Time { return time.Now() }

//lint:allow wallclock(the live Clock implementation is the one sanctioned wall-time source behind the seam)
func (wallClock) Sleep(d time.Duration) { time.Sleep(d) }

// WallClock returns the real-time clock — the default Clock of the live
// wiring.
func WallClock() Clock { return wallClock{} }
