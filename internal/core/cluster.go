package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"garfield/internal/attack"
	"garfield/internal/compress"
	"garfield/internal/data"
	"garfield/internal/model"
	"garfield/internal/rpc"
	"garfield/internal/sgd"
	"garfield/internal/tensor"
	"garfield/internal/transport"
)

// Config describes one in-process Garfield deployment: the cluster shape
// (nw workers of which fw Byzantine, nps server replicas of which fps
// Byzantine), the learning task, and the robust aggregation rule. It plays
// the role of the paper's Controller module inputs.
type Config struct {
	// Arch is the model architecture shared by every node.
	Arch model.Model
	// Train is the training set, sharded across workers; Test is used for
	// accuracy measurements.
	Train *data.Dataset
	Test  *data.Dataset
	// BatchSize is the per-worker mini-batch size (32 in the paper's
	// TensorFlow setup).
	BatchSize int

	// NW and FW are total and Byzantine worker counts.
	NW, FW int
	// NPS and FPS are total and Byzantine server counts. Single-server
	// protocols use only the first server.
	NPS, FPS int

	// Rule is the GAR used by Byzantine-resilient protocols to aggregate
	// gradients.
	Rule string
	// ModelRule is the GAR used to aggregate models among server replicas
	// (MSMW and decentralized). It defaults to Median: the replica count
	// is small, so rules with steep n >= g(f) requirements (Bulyan) are
	// not generally applicable there.
	ModelRule string
	// SyncQuorum makes MSMW and decentralized runs collect from all
	// workers/peers (q = n) instead of n - f — the synchronous-network
	// variant the paper evaluates with Multi-Krum on PyTorch.
	SyncQuorum bool
	// ModelAggEvery makes MSMW replicas exchange and aggregate models
	// every that many iterations (default 1: every iteration, as in
	// Listing 2). ByzSGD's contraction can run periodically; spacing it
	// out lets replicas diverge measurably between contractions, which is
	// what the paper's Table 2 methodology studies.
	ModelAggEvery int

	// WorkerAttack and ServerAttack are the behaviours of the Byzantine
	// nodes (the last FW workers / last FPS servers). Nil means honest
	// (declared-Byzantine-but-benign, as in the throughput experiments).
	WorkerAttack attack.Attack
	ServerAttack attack.Attack

	// ServerByz selects the initial ByzantineServer wrapper mode of the
	// declared-Byzantine replicas — the stateful server-side adversaries
	// (equivocation, seeded per-puller noise) that ServerAttack's per-reply
	// corruption cannot express. The wrapper always exists on declared-
	// Byzantine replicas so a scheduled byz-server fault can flip an
	// initially-honest one adversarial mid-run; an empty Mode starts them
	// honest.
	ServerByz ByzServerConfig

	// NonIID shards training data by label instead of IID, triggering the
	// decentralized contract step.
	NonIID bool
	// ContractSteps is the number of contract rounds per iteration in
	// decentralized learning when NonIID is set.
	ContractSteps int

	// LR is the learning-rate schedule (default: constant 0.1).
	LR sgd.Schedule
	// Momentum is the server-side classical-momentum coefficient
	// (0 disables).
	Momentum float64
	// WorkerMomentum enables worker-side (distributed) momentum: workers
	// reply with exponentially-smoothed gradients, reducing the variance
	// the GAR resilience condition depends on (Section 8's seamless
	// variance-reduction extension).
	WorkerMomentum float64
	// AttackSelfPeers gives Byzantine workers that many self-estimated
	// honest gradients per request, enabling the collusion attacks
	// (little-is-enough, fall-of-empires) in live runs.
	AttackSelfPeers int

	// Compression names the gradient codec of the deployment ("" or
	// "fp64": passthrough; "fp16", "int8", "topk" — see internal/compress).
	// Workers compress their gradient replies for servers that advertise
	// the codec; servers decompress transparently at the RPC layer. TopK is
	// the coordinate budget of the "topk" codec (required with it, ignored
	// otherwise); top-k workers carry an error-feedback residual across
	// steps so dropped coordinates accumulate instead of vanishing.
	Compression string
	TopK        int

	// Shards is the shard count of the sharded-aggregation topology
	// (RunSharded): the coordinate space (coordinate-wise rules) or the
	// worker set (selection rules, hierarchically) is partitioned into that
	// many parts, each owned by a server replica. 0 (the default) leaves
	// sharding off; every other topology ignores it.
	Shards int

	// StalenessBound and StalenessDamping tune the asynchronous protocols
	// (RunAsyncSSMW, RunAsyncMSMW). A gradient computed against the model
	// at step t0 and aggregated at step t has staleness t - t0: gradients
	// staler than the bound tau are discarded, and accepted stale gradients
	// are scaled by damping^staleness before aggregation. Zero values
	// select the defaults (bound 3, damping 0.5) — not "fresh only" /
	// zero-weighting, which are expressed as bound 1 plus a tiny positive
	// damping. Lockstep protocols ignore both.
	StalenessBound   int
	StalenessDamping float64

	// Seed drives all randomness (sharding, sampling, attacks, init).
	Seed uint64
	// PullTimeout bounds each pull round (default 30s).
	PullTimeout time.Duration

	// Deterministic makes runs bit-identical across repetitions at the
	// same seed, at the cost of extra synchronization: workers compute one
	// gradient estimate per step and serve it to every puller (the
	// paper's broadcast semantics) instead of drawing a fresh mini-batch
	// per pull, servers aggregate pulled vectors in canonical (address)
	// order instead of arrival order, and the MSMW replicas run their
	// model-exchange phase in lockstep. Replicated topologies additionally
	// need SyncQuorum (with q < n the responding subset itself depends on
	// timing) and an order-insensitive ModelRule such as median. Used by
	// the scenario sweep runner.
	Deterministic bool
}

func (c *Config) defaults() {
	if c.LR == nil {
		c.LR = sgd.Constant(0.1)
	}
	if c.PullTimeout == 0 {
		c.PullTimeout = 30 * time.Second
	}
	if c.ContractSteps == 0 {
		c.ContractSteps = 1
	}
	if c.ModelRule == "" {
		c.ModelRule = "median"
	}
	if c.ModelAggEvery == 0 {
		c.ModelAggEvery = 1
	}
	if c.NPS == 0 {
		c.NPS = 1
	}
}

// ByzServerConfig parameterizes the ByzantineServer wrappers of a cluster's
// declared-Byzantine replicas.
type ByzServerConfig struct {
	// Mode is the initial behaviour ("" or "honest": benign until a
	// scheduled byz-server fault flips it); see ByzModes.
	Mode string
	// Scale is the noise scale of the random and equivocate modes
	// (0 selects DefaultByzScale).
	Scale float64
}

func (c *Config) validate() error {
	if c.Arch == nil || c.Train == nil || c.Test == nil {
		return fmt.Errorf("%w: arch, train and test are required", ErrConfig)
	}
	if c.NW < 1 || c.BatchSize < 1 {
		return fmt.Errorf("%w: nw=%d batch=%d", ErrConfig, c.NW, c.BatchSize)
	}
	if c.FW < 0 || c.FW >= c.NW {
		return fmt.Errorf("%w: fw=%d of nw=%d", ErrConfig, c.FW, c.NW)
	}
	if c.FPS < 0 || (c.NPS > 0 && c.FPS >= c.NPS) {
		return fmt.Errorf("%w: fps=%d of nps=%d", ErrConfig, c.FPS, c.NPS)
	}
	if c.Rule == "" {
		return fmt.Errorf("%w: rule is required", ErrConfig)
	}
	if c.StalenessBound < 0 {
		return fmt.Errorf("%w: staleness bound %d < 0", ErrConfig, c.StalenessBound)
	}
	if c.Shards < 0 || c.Shards > 65535 {
		return fmt.Errorf("%w: shards=%d (want 0..65535, the wire format's shard index width)", ErrConfig, c.Shards)
	}
	if enc, err := compress.Parse(c.Compression); err != nil {
		return fmt.Errorf("%w: %v", ErrConfig, err)
	} else if enc == compress.EncTopK && c.TopK < 1 {
		return fmt.Errorf("%w: compression %q needs top_k >= 1, got %d", ErrConfig, c.Compression, c.TopK)
	} else if enc != compress.EncTopK && c.TopK != 0 {
		return fmt.Errorf("%w: top_k=%d requires compression \"topk\" (got %q)", ErrConfig, c.TopK, c.Compression)
	}
	if c.StalenessDamping < 0 || c.StalenessDamping > 1 {
		return fmt.Errorf("%w: staleness damping %v not in [0, 1]", ErrConfig, c.StalenessDamping)
	}
	if c.ServerByz.Mode != "" {
		if !ValidByzMode(c.ServerByz.Mode) {
			return fmt.Errorf("%w: unknown byzantine server mode %q (want one of %v)",
				ErrConfig, c.ServerByz.Mode, ByzModes())
		}
		if c.ServerByz.Mode != ByzModeHonest && c.FPS < 1 {
			return fmt.Errorf("%w: server byzantine mode %q needs fps >= 1 declared replicas",
				ErrConfig, c.ServerByz.Mode)
		}
	}
	return nil
}

// asyncParams resolves the async tuning knobs to their effective values.
func (c Config) asyncParams() (tau int, damping float64) {
	tau, damping = c.StalenessBound, c.StalenessDamping
	if tau == 0 {
		tau = DefaultStalenessBound
	}
	if damping == 0 {
		damping = DefaultStalenessDamping
	}
	return tau, damping
}

// Cluster is a fully-wired in-process deployment: every node runs an RPC
// server over a fault-injectable transport, and protocol runners drive the
// training loops of Section 5. The deployment is elastic: workers and server
// replicas can join, leave and scale mid-run through the membership layer
// (membership.go), which owns a versioned roster epoch.
type Cluster struct {
	cfg    Config
	wiring Wiring
	clock  Clock
	// net is the fault-injectable transport of the live wiring; nil under
	// other wirings (the discrete-event simulator), in which case the
	// transport-level fault injectors below are inert no-ops and the
	// crash-evidence failure detector has no sever epochs to read.
	net *transport.Faulty

	// memMu guards the node tables and the roster epoch. The tables are
	// append-only — an index, once assigned, permanently names its node and
	// its address — and departure is expressed through the active flags, so
	// protocol state keyed by node index survives roster transitions.
	// Slices handed out by accessors are replaced wholesale on growth,
	// never mutated in place.
	memMu   sync.RWMutex
	epoch   uint64       // roster version; bumped by every transition
	clients []rpc.Caller // one per server replica; see NewCluster

	workerAddrs  []string
	serverAddrs  []string
	workers      []*Worker
	servers      []*Server
	byzServers   []*ByzantineServer // per replica; nil for honest replicas
	workerSrv    []io.Closer
	serverSrv    []io.Closer
	workerActive []bool
	serverActive []bool
	workerByz    []bool // declared-Byzantine flag per worker (joiners: false)
	serverByz    []bool
	crashed      []*atomic.Bool
	// severBase records each node's transport sever epoch at registration;
	// a later advance is the failure-detector evidence crash-detected
	// departure (DepartWorker/DepartServer) requires.
	severBase map[string]uint64

	initParams tensor.Vector
}

// NewCluster shards the data, spawns nw worker nodes and nps server
// replicas over an in-memory network, and returns the ready cluster.
// Byzantine roles are assigned to the last fw workers and last fps servers.
func NewCluster(cfg Config) (*Cluster, error) {
	return NewClusterWith(cfg, nil)
}

// NewClusterWith is NewCluster over an explicit Wiring. A nil wiring selects
// the live default (fault-injectable in-memory transport, pooled clients,
// wall clock); the discrete-event simulator passes its virtual-time wiring
// here. Construction order — sharding, init-params RNG draw, worker seeds,
// replica wiring — is identical either way, so a simulated cluster starts
// from exactly the state its live counterpart would.
func NewClusterWith(cfg Config, wiring Wiring) (*Cluster, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	var shards []*data.Dataset
	var err error
	if cfg.NonIID {
		shards, err = data.PartitionByLabel(cfg.Train, cfg.NW)
	} else {
		shards, err = data.PartitionIID(cfg.Train, cfg.NW, cfg.Seed)
	}
	if err != nil {
		return nil, fmt.Errorf("core: shard data: %w", err)
	}

	if wiring == nil {
		wiring = liveWiring{net: transport.NewFaulty(transport.NewMem())}
	}
	c := &Cluster{
		cfg:       cfg,
		wiring:    wiring,
		clock:     wiring.Clock(),
		severBase: make(map[string]uint64),
	}
	if lw, ok := wiring.(liveWiring); ok {
		c.net = lw.net
	}
	rng := tensor.NewRNG(cfg.Seed)
	c.initParams = cfg.Arch.InitParams(rng)
	// validate() vetted the codec name already.
	encoding, _ := compress.Parse(cfg.Compression)

	// Workers.
	for i := 0; i < cfg.NW; i++ {
		var atk attack.Attack
		var opts []WorkerOption
		if cfg.WorkerMomentum > 0 {
			opts = append(opts, WithWorkerMomentum(cfg.WorkerMomentum))
		}
		if cfg.Deterministic {
			opts = append(opts, WithDeterministicReplies())
		}
		if encoding != compress.EncFP64 {
			// Every worker compresses — Byzantine ones included: the codec
			// is deployment infrastructure, and whether an attack survives
			// quantization is exactly what the ext-compress study measures.
			opts = append(opts, WithCompression(encoding, cfg.TopK))
		}
		if i >= cfg.NW-cfg.FW {
			atk = cfg.WorkerAttack
			if cfg.AttackSelfPeers > 0 {
				opts = append(opts, WithSelfEstimatedPeers(cfg.AttackSelfPeers))
			}
		}
		opts = append(opts, withWorkerClock(c.clock))
		w, err := NewWorker(cfg.Arch, shards[i], cfg.BatchSize, cfg.Seed+uint64(i)+1, atk, opts...)
		if err != nil {
			c.Close()
			return nil, err
		}
		addr := "worker-" + strconv.Itoa(i)
		srv, err := c.wiring.Serve(addr, w)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("core: start worker %d: %w", i, err)
		}
		c.workers = append(c.workers, w)
		c.workerAddrs = append(c.workerAddrs, addr)
		c.workerSrv = append(c.workerSrv, srv)
		c.workerActive = append(c.workerActive, true)
		c.workerByz = append(c.workerByz, i >= cfg.NW-cfg.FW)
		if c.net != nil {
			c.severBase[addr] = c.net.SeverEpoch(addr)
		}
	}

	// Server replica addresses are fixed before construction so each
	// server knows its peer set.
	for i := 0; i < cfg.NPS; i++ {
		c.serverAddrs = append(c.serverAddrs, "server-"+strconv.Itoa(i))
	}
	for i := 0; i < cfg.NPS; i++ {
		var atk attack.Attack
		if i >= cfg.NPS-cfg.FPS {
			atk = cfg.ServerAttack
		}
		opt, err := newOptimizer(cfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		// Under the live wiring this is a pooled persistent client
		// (Section 4.1's channel reuse): the steady-state pull loop pays no
		// per-call dial. Each replica owns its own caller — the pool
		// serializes same-peer calls per client, so sharing one across
		// replicas would serialize the replicas' concurrent pulls to the
		// same worker. The caller is bound to the replica's address (so
		// partition cuts know the dial's source) and stamps it as the
		// caller identity (so adversarial handlers can equivocate
		// deterministically per puller).
		client := c.wiring.NewCaller(c.serverAddrs[i])
		c.clients = append(c.clients, client)
		s, err := NewServer(ServerConfig{
			Arch:          cfg.Arch,
			Init:          c.initParams,
			Optimizer:     opt,
			Client:        client,
			Workers:       c.workerAddrs,
			Peers:         c.serverAddrs,
			Attack:        atk,
			Deterministic: cfg.Deterministic,
			Accept:        encoding,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		// Declared-Byzantine replicas get the ByzantineServer wrapper —
		// honest passthrough unless ServerByz names a mode — so scheduled
		// byz-server faults can flip their behaviour at runtime.
		var handler rpc.Handler = s
		var byz *ByzantineServer
		if i >= cfg.NPS-cfg.FPS {
			byz, err = NewByzantineServer(s, cfg.ServerByz.Mode, byzSeed(cfg.Seed, i), cfg.ServerByz.Scale)
			if err != nil {
				c.Close()
				return nil, err
			}
			handler = byz
		}
		srv, err := c.wiring.Serve(c.serverAddrs[i], handler)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("core: start server %d: %w", i, err)
		}
		c.servers = append(c.servers, s)
		c.byzServers = append(c.byzServers, byz)
		c.serverSrv = append(c.serverSrv, srv)
		c.serverActive = append(c.serverActive, true)
		c.serverByz = append(c.serverByz, i >= cfg.NPS-cfg.FPS)
		c.crashed = append(c.crashed, new(atomic.Bool))
		if c.net != nil {
			c.severBase[c.serverAddrs[i]] = c.net.SeverEpoch(c.serverAddrs[i])
		}
	}
	return c, nil
}

// byzSeed derives a replica's Byzantine noise seed from the cluster seed by
// domain separation (FNV-64a over a tagged message), so it cannot collide
// with the worker seeds (seed+i+1) or the attack streams.
func byzSeed(seed uint64, replica int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte("/byz-server/" + strconv.Itoa(replica)))
	return h.Sum64()
}

func newOptimizer(cfg Config) (*sgd.Optimizer, error) {
	var opts []sgd.Option
	if cfg.Momentum > 0 {
		opts = append(opts, sgd.WithMomentum(cfg.Momentum))
	}
	opt, err := sgd.New(cfg.LR, opts...)
	if err != nil {
		return nil, fmt.Errorf("core: optimizer: %w", err)
	}
	return opt, nil
}

// Close shuts every node down and waits for their goroutines.
func (c *Cluster) Close() {
	c.memMu.RLock()
	clients := append([]rpc.Caller(nil), c.clients...)
	srvs := append(append([]io.Closer(nil), c.workerSrv...), c.serverSrv...)
	c.memMu.RUnlock()
	for _, cl := range clients {
		if closer, ok := cl.(io.Closer); ok {
			_ = closer.Close()
		}
	}
	for _, s := range srvs {
		if s != nil {
			_ = s.Close()
		}
	}
}

// Server returns replica i (0 is the primary for single-server protocols).
// Indices are stable across roster transitions: a departed replica keeps its
// index (and remains inspectable), it just stops being part of the roster.
func (c *Cluster) Server(i int) *Server {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	return c.servers[i]
}

// Servers returns the number of server replica slots ever created (active
// or departed); see Roster for the live view.
func (c *Cluster) Servers() int {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	return len(c.servers)
}

// Worker returns worker i (stable index, like Server).
func (c *Cluster) Worker(i int) *Worker {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	return c.workers[i]
}

// Workers returns the number of worker slots ever created.
func (c *Cluster) Workers() int {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	return len(c.workers)
}

// CrashServer injects a crash of server replica i: subsequent dials to it
// fail and the protocol runners stop driving its loop.
func (c *Cluster) CrashServer(i int) {
	c.memMu.RLock()
	flag, addr := c.crashed[i], c.serverAddrs[i]
	c.memMu.RUnlock()
	flag.Store(true)
	if c.net != nil {
		c.net.Crash(addr)
	}
}

// serverCrashed reports whether replica i is currently crash-injected.
func (c *Cluster) serverCrashed(i int) bool {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	return c.crashed[i].Load()
}

// primary returns the lowest-index active, non-crashed server replica — the
// fail-over order of the crash-tolerant baseline. ok is false when every
// replica is down or departed.
func (c *Cluster) primary() (int, bool) {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	return c.primaryLocked()
}

func (c *Cluster) primaryLocked() (int, bool) {
	for i := range c.crashed {
		if c.serverActive[i] && !c.crashed[i].Load() {
			return i, true
		}
	}
	return 0, false
}

// CrashWorker injects a crash of worker i.
func (c *Cluster) CrashWorker(i int) {
	if c.net != nil {
		c.net.Crash(c.WorkerAddr(i))
	}
}

// DelayWorker makes worker i a straggler: every pull to it waits d first.
func (c *Cluster) DelayWorker(i int, d time.Duration) {
	if c.net != nil {
		c.net.SetDelay(c.WorkerAddr(i), d)
	}
}

// SlowWorker makes worker i serve every request d late — a slow node rather
// than a slow link: unlike DelayWorker (which delays dials, paid once per
// connection by pooled clients), the service delay applies to every request
// even over persistent connections, which is what a steady straggler in the
// async-vs-lockstep comparisons needs. d = 0 clears the fault.
func (c *Cluster) SlowWorker(i int, d time.Duration) {
	c.Worker(i).SetServeDelay(d)
}

// WorkerAddr returns worker i's network address ("worker-<i>"), the name
// partition groups and chaos programs refer to nodes by.
func (c *Cluster) WorkerAddr(i int) string {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	return c.workerAddrs[i]
}

// ServerAddr returns server replica i's network address ("server-<i>").
func (c *Cluster) ServerAddr(i int) string {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	return c.serverAddrs[i]
}

// Partition blocks traffic between the two node groups (addresses from
// WorkerAddr/ServerAddr) and severs established connections crossing the
// cut, until HealPartitions. Server-side dials carry their replica's source
// address, so server-server cuts work; workers never dial, so a worker-side
// group entry cuts the servers' pulls to it.
func (c *Cluster) Partition(groupA, groupB []string) {
	if c.net != nil {
		c.net.Partition(groupA, groupB)
	}
}

// HealPartitions removes every partition injected so far. Link-fault
// programs and delays stay in place — healing restores reachability, not
// link quality.
func (c *Cluster) HealPartitions() {
	if c.net != nil {
		c.net.Heal()
	}
}

// SetWorkerLinkFault installs a seeded chaos program on every connection to
// worker i: each framed message is dropped, duplicated, reordered or
// corrupted with the program's probabilities. A zero LinkFault clears it.
func (c *Cluster) SetWorkerLinkFault(i int, lf transport.LinkFault, seed uint64) {
	if c.net != nil {
		c.net.SetLinkFault(c.WorkerAddr(i), lf, seed)
	}
}

// SetServerLinkFault is SetWorkerLinkFault for server replica i's links.
func (c *Cluster) SetServerLinkFault(i int, lf transport.LinkFault, seed uint64) {
	if c.net != nil {
		c.net.SetLinkFault(c.ServerAddr(i), lf, seed)
	}
}

// WorkerLinkStats returns the fault decisions taken so far by worker i's
// current link program (zero when none is installed).
func (c *Cluster) WorkerLinkStats(i int) transport.LinkStats {
	if c.net == nil {
		return transport.LinkStats{}
	}
	return c.net.LinkStats(c.WorkerAddr(i))
}

// ServerLinkStats is WorkerLinkStats for server replica i.
func (c *Cluster) ServerLinkStats(i int) transport.LinkStats {
	if c.net == nil {
		return transport.LinkStats{}
	}
	return c.net.LinkStats(c.ServerAddr(i))
}

// SetServerByzMode flips the ByzantineServer wrapper of replica i to the
// given mode — the byz-server scheduled fault. Only declared-Byzantine
// replicas (the last fps) carry the wrapper; flipping an honest replica is
// an error, because the protocol runners drive honest replicas' training
// loops and an adversarial handler under a driven loop would break the
// declared f/fs resilience budget rather than test it.
func (c *Cluster) SetServerByzMode(i int, mode string) error {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	if i < 0 || i >= len(c.byzServers) {
		return fmt.Errorf("%w: server %d of %d", ErrConfig, i, len(c.byzServers))
	}
	byz := c.byzServers[i]
	if byz == nil {
		return fmt.Errorf("%w: server %d is not a declared-Byzantine replica (last fps=%d of nps=%d)",
			ErrConfig, i, c.cfg.FPS, c.cfg.NPS)
	}
	return byz.SetMode(mode)
}

// ByzServer returns replica i's ByzantineServer wrapper, or nil for honest
// replicas.
func (c *Cluster) ByzServer(i int) *ByzantineServer {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	return c.byzServers[i]
}

// WireStats returns the summed byte accounting of every server replica's
// pooled client — the cluster's whole pull traffic, since workers never
// dial. Snapshot before and after a run (or read Result.Wire, which the
// protocol runners populate with exactly that delta) to measure one run's
// bytes on the wire. Callers that keep no byte accounting (the simulator's
// direct-dispatch caller ships no frames) contribute zero.
func (c *Cluster) WireStats() rpc.WireStats {
	c.memMu.RLock()
	clients := append([]rpc.Caller(nil), c.clients...)
	c.memMu.RUnlock()
	var s rpc.WireStats
	for _, cl := range clients {
		if counted, ok := cl.(interface{ Stats() rpc.WireStats }); ok {
			s = s.Add(counted.Stats())
		}
	}
	return s
}

// RestoreServerCheckpoint restores replica i from checkpoint bytes and
// resets every worker's compression error-feedback residual. The residual
// is the un-transmitted remainder of gradients computed against the
// pre-restore timeline; replaying it against the rolled-back model would
// inject corrections for updates that no longer exist. (With several
// replicas, a real deployment restores them together; the residual reset is
// idempotent, so restoring each replica through this method is safe.)
func (c *Cluster) RestoreServerCheckpoint(i int, r io.Reader) error {
	c.memMu.RLock()
	if i < 0 || i >= len(c.servers) {
		n := len(c.servers)
		c.memMu.RUnlock()
		return fmt.Errorf("%w: server %d of %d", ErrConfig, i, n)
	}
	srv := c.servers[i]
	workers := append([]*Worker(nil), c.workers...)
	c.memMu.RUnlock()
	if err := srv.LoadCheckpoint(r); err != nil {
		return err
	}
	for _, w := range workers {
		w.ResetCompression()
	}
	return nil
}
