package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"garfield/internal/tensor"
)

// Checkpointing lets a server persist and restore its model state — the
// classical crash-recovery alternative the paper's related work discusses
// (checkpoint-based fault tolerance for the parameter server). The format is
// a small header (magic, version, step) followed by the encoded parameter
// vector.

const (
	checkpointMagic   = 0x47464c44 // "GFLD"
	checkpointVersion = 1
)

// ErrBadCheckpoint is returned when restoring from corrupt or incompatible
// data.
var ErrBadCheckpoint = errors.New("core: invalid checkpoint")

// SaveCheckpoint writes the server's current step and model state to w.
func (s *Server) SaveCheckpoint(w io.Writer) error {
	s.mu.RLock()
	step := s.currentStep
	params := s.params.Clone()
	s.mu.RUnlock()

	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], checkpointMagic)
	binary.LittleEndian.PutUint32(hdr[4:], checkpointVersion)
	binary.LittleEndian.PutUint32(hdr[8:], step)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	data, err := params.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint restores model state and step counter from r. The
// checkpointed model must match the server's architecture dimension.
func (s *Server) LoadCheckpoint(r io.Reader) error {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("%w: header: %v", ErrBadCheckpoint, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != checkpointMagic {
		return fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != checkpointVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, v)
	}
	step := binary.LittleEndian.Uint32(hdr[8:])

	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("%w: payload: %v", ErrBadCheckpoint, err)
	}
	var params tensor.Vector
	if err := params.UnmarshalBinary(data); err != nil {
		return fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if len(params) != s.arch.Dim() {
		return fmt.Errorf("%w: model dim %d, checkpoint dim %d",
			ErrBadCheckpoint, s.arch.Dim(), len(params))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.params = params
	s.currentStep = step
	return nil
}
