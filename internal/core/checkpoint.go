package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"

	"garfield/internal/tensor"
)

// Checkpointing lets a server persist and restore its model state — the
// classical crash-recovery alternative the paper's related work discusses
// (checkpoint-based fault tolerance for the parameter server). The format is
// a small header (magic, version, step), the encoded parameter vector, and
// an FNV-64a checksum trailer over header+payload. The trailer is what makes
// partial writes detectable: the tensor decoder ignores trailing bytes, so a
// shorter checkpoint written over a longer file (a crashed re-checkpoint)
// still decodes structurally — only the checksum tells the difference.

const (
	checkpointMagic   = 0x47464c44 // "GFLD"
	checkpointVersion = 2          // v2 added the checksum trailer
)

// ErrBadCheckpoint is returned when restoring from corrupt or incompatible
// data.
var ErrBadCheckpoint = errors.New("core: invalid checkpoint")

// SaveCheckpoint writes the server's current step and model state to w.
func (s *Server) SaveCheckpoint(w io.Writer) error {
	s.mu.RLock()
	step := s.currentStep
	params := s.params.Clone()
	s.mu.RUnlock()

	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], checkpointMagic)
	binary.LittleEndian.PutUint32(hdr[4:], checkpointVersion)
	binary.LittleEndian.PutUint32(hdr[8:], step)
	data, err := params.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	sum := fnv.New64a()
	_, _ = sum.Write(hdr[:])
	_, _ = sum.Write(data)
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], sum.Sum64())

	for _, chunk := range [][]byte{hdr[:], data, trailer[:]} {
		if _, err := w.Write(chunk); err != nil {
			return fmt.Errorf("core: save checkpoint: %w", err)
		}
	}
	return nil
}

// LoadCheckpoint restores model state and step counter from r. The
// checkpointed model must match the server's architecture dimension, and the
// checksum trailer must verify — a truncated payload that happens to still
// decode is rejected. On success every piece of derived state is reset along
// with the model: the latest aggregated gradient and the deterministic
// per-step reply cache belong to the pre-restore timeline (serving them
// after recovery would hand peers state from a future the restored server
// has rolled back), and the optimizer's momentum velocity is cleared with
// its learning-rate schedule re-anchored at the checkpointed step.
func (s *Server) LoadCheckpoint(r io.Reader) error {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("%w: header: %v", ErrBadCheckpoint, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != checkpointMagic {
		return fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != checkpointVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, v)
	}
	step := binary.LittleEndian.Uint32(hdr[8:])

	rest, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("%w: payload: %v", ErrBadCheckpoint, err)
	}
	if len(rest) < 8 {
		return fmt.Errorf("%w: missing checksum trailer", ErrBadCheckpoint)
	}
	data, trailer := rest[:len(rest)-8], rest[len(rest)-8:]
	sum := fnv.New64a()
	_, _ = sum.Write(hdr[:])
	_, _ = sum.Write(data)
	if got := binary.LittleEndian.Uint64(trailer); got != sum.Sum64() {
		return fmt.Errorf("%w: checksum mismatch (truncated or corrupted payload)", ErrBadCheckpoint)
	}
	var params tensor.Vector
	if err := params.UnmarshalBinary(data); err != nil {
		return fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if len(params) != s.arch.Dim() {
		return fmt.Errorf("%w: model dim %d, checkpoint dim %d",
			ErrBadCheckpoint, s.arch.Dim(), len(params))
	}
	s.mu.Lock()
	s.params = params
	s.currentStep = step
	s.latestAggr = nil
	s.opt.ResetTo(int(step))
	s.mu.Unlock()
	s.detMu.Lock()
	s.detHas, s.detOK, s.detVec = false, false, nil
	s.detMu.Unlock()
	return nil
}
