package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"garfield/internal/attack"
	"garfield/internal/data"
	"garfield/internal/model"
	"garfield/internal/rpc"
	"garfield/internal/tensor"
)

// Worker is the passive node of Garfield's design (Section 3.2): it owns a
// data shard and responds to gradient requests. The request carries the
// requester's model state (the pull model folds model dissemination into the
// gradient pull), and the worker answers with a gradient estimate computed
// on its next mini-batch.
//
// A Byzantine worker is the same object with a non-nil attack: the paper's
// ByzantineWorker inherits from Worker and only corrupts its replies.
type Worker struct {
	arch      model.Model
	batchSize int
	atk       attack.Attack

	// momentum enables worker-side (distributed) momentum: the worker
	// replies with an exponentially-smoothed gradient instead of the raw
	// estimate. The paper points at this line of work as a seamless
	// variance-reduction extension ("they basically only change the
	// optimization function", Section 8); reducing the gradient variance
	// is what restores the GARs' resilience condition when it is
	// violated.
	momentum float64
	// selfPeers makes a Byzantine worker estimate the honest gradient
	// distribution by drawing that many extra mini-batch gradients from
	// its own shard and feeding them to collusion-style attacks
	// (little-is-enough, fall-of-empires) as the peer sample.
	selfPeers int

	mu       sync.Mutex
	sampler  *data.Sampler
	velocity tensor.Vector

	// serveDelay is an injected per-request service delay in nanoseconds —
	// a slow node (overloaded or under-provisioned worker) as opposed to a
	// slow link. Set through Cluster.SlowWorker / SetServeDelay.
	serveDelay atomic.Int64

	// det enables deterministic replies: the worker computes one reply
	// per step and serves it to every puller — the paper's semantics of a
	// worker broadcasting its gradient estimate to all parameter servers —
	// instead of drawing a fresh mini-batch per pull. detMu serializes the
	// per-step computation so the sampler advances exactly once per step
	// regardless of how many replicas pull concurrently.
	det       bool
	detMu     sync.Mutex
	detStep   uint32
	detHas    bool
	detOK     bool
	detReply  tensor.Vector
	detParams tensor.Vector
}

var _ rpc.Handler = (*Worker)(nil)

// WorkerOption configures optional worker behaviour.
type WorkerOption func(*Worker) error

// WithWorkerMomentum enables worker-side momentum with coefficient
// mu in (0, 1).
func WithWorkerMomentum(mu float64) WorkerOption {
	return func(w *Worker) error {
		if mu <= 0 || mu >= 1 {
			return fmt.Errorf("%w: worker momentum %v not in (0,1)", ErrConfig, mu)
		}
		w.momentum = mu
		return nil
	}
}

// WithSelfEstimatedPeers makes the worker's attack observe k self-estimated
// honest gradients, enabling the collusion attacks without real
// omniscience.
func WithSelfEstimatedPeers(k int) WorkerOption {
	return func(w *Worker) error {
		if k < 1 {
			return fmt.Errorf("%w: self-estimated peers %d < 1", ErrConfig, k)
		}
		w.selfPeers = k
		return nil
	}
}

// WithDeterministicReplies makes the worker serve one cached reply per
// step; see Config.Deterministic.
func WithDeterministicReplies() WorkerOption {
	return func(w *Worker) error {
		w.det = true
		return nil
	}
}

// NewWorker returns a worker over one data shard. atk may be nil for an
// honest worker.
func NewWorker(arch model.Model, shard *data.Dataset, batchSize int, seed uint64, atk attack.Attack, opts ...WorkerOption) (*Worker, error) {
	if arch == nil {
		return nil, fmt.Errorf("%w: nil model", ErrConfig)
	}
	if batchSize <= 0 {
		return nil, fmt.Errorf("%w: batch size %d", ErrConfig, batchSize)
	}
	s, err := data.NewSampler(shard, seed)
	if err != nil {
		return nil, fmt.Errorf("core: worker: %w", err)
	}
	if atk == nil {
		atk = attack.None{}
	}
	w := &Worker{arch: arch, batchSize: batchSize, atk: atk, sampler: s}
	for _, opt := range opts {
		if err := opt(w); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// ComputeGradient draws the next mini-batch and estimates the gradient at
// params — the worker's "main job" in the paper's design. With momentum
// enabled, the reply is the smoothed velocity v = mu*v + g.
func (w *Worker) ComputeGradient(params tensor.Vector) (tensor.Vector, error) {
	w.mu.Lock()
	batch := w.sampler.Next(w.batchSize)
	w.mu.Unlock()
	g, err := w.arch.Gradient(params, batch)
	if err != nil {
		return nil, fmt.Errorf("core: worker gradient: %w", err)
	}
	if w.momentum == 0 {
		return g, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.velocity == nil || len(w.velocity) != len(g) {
		w.velocity = tensor.New(len(g))
	}
	for i := range w.velocity {
		w.velocity[i] = w.momentum*w.velocity[i] + g[i]
	}
	return w.velocity.Clone(), nil
}

// estimatePeers draws selfPeers extra gradients from the worker's own shard
// so collusion attacks can observe a sample of the honest distribution.
func (w *Worker) estimatePeers(params tensor.Vector) []tensor.Vector {
	if w.selfPeers == 0 {
		return nil
	}
	peers := make([]tensor.Vector, 0, w.selfPeers)
	for i := 0; i < w.selfPeers; i++ {
		w.mu.Lock()
		batch := w.sampler.Next(w.batchSize)
		w.mu.Unlock()
		g, err := w.arch.Gradient(params, batch)
		if err != nil {
			continue
		}
		peers = append(peers, g)
	}
	return peers
}

// SetServeDelay makes every subsequent request to the worker take at least d
// of service time — the slow-node fault of the async experiments. d = 0
// clears the delay.
func (w *Worker) SetServeDelay(d time.Duration) {
	w.serveDelay.Store(int64(d))
}

// Handle implements rpc.Handler: it serves KindGetGradient requests and
// declines everything else.
func (w *Worker) Handle(req rpc.Request) rpc.Response {
	if d := w.serveDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	switch req.Kind {
	case rpc.KindGetGradient:
		if req.Vec == nil {
			return rpc.Response{}
		}
		if w.det {
			return w.handleDeterministic(req)
		}
		g, err := w.ComputeGradient(req.Vec)
		if err != nil {
			return rpc.Response{}
		}
		out, ok := w.atk.Apply(g, w.estimatePeers(req.Vec))
		if !ok {
			return rpc.Response{} // omission fault
		}
		return rpc.Response{OK: true, Vec: out}
	case rpc.KindPing:
		return rpc.Response{OK: true}
	default:
		return rpc.Response{}
	}
}

// handleDeterministic serves gradient pulls in deterministic mode: the
// first pull of a step computes the reply (post-attack, so stochastic
// attacks also draw once per step) under detMu, and every later pull of the
// same step receives the cached vector. The reply is computed at the first
// puller's parameters; replicated deterministic runs keep their replicas in
// lockstep (sync quorums plus the MSMW barrier), so every puller carries
// identical parameters and the choice of "first" does not matter.
func (w *Worker) handleDeterministic(req rpc.Request) rpc.Response {
	w.detMu.Lock()
	defer w.detMu.Unlock()
	// The cache matches on both the step and the puller's parameters:
	// protocol segments (fault schedules, chunked runs) restart their
	// step numbering, so a bare step match could replay a reply from a
	// previous segment against evolved parameters.
	if w.detHas && w.detStep == req.Step && req.Vec.Equal(w.detParams) {
		if !w.detOK {
			return rpc.Response{}
		}
		return rpc.Response{OK: true, Vec: w.detReply}
	}
	w.detStep, w.detHas, w.detOK = req.Step, true, false
	w.detReply, w.detParams = nil, req.Vec.Clone()
	g, err := w.ComputeGradient(req.Vec)
	if err != nil {
		return rpc.Response{}
	}
	out, ok := w.atk.Apply(g, w.estimatePeers(req.Vec))
	if !ok {
		return rpc.Response{} // omission fault, replayed for the step
	}
	w.detOK, w.detReply = true, out
	return rpc.Response{OK: true, Vec: out}
}
