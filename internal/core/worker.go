package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"garfield/internal/attack"
	"garfield/internal/compress"
	"garfield/internal/data"
	"garfield/internal/model"
	"garfield/internal/rpc"
	"garfield/internal/tensor"
)

// Worker is the passive node of Garfield's design (Section 3.2): it owns a
// data shard and responds to gradient requests. The request carries the
// requester's model state (the pull model folds model dissemination into the
// gradient pull), and the worker answers with a gradient estimate computed
// on its next mini-batch.
//
// A Byzantine worker is the same object with a non-nil attack: the paper's
// ByzantineWorker inherits from Worker and only corrupts its replies.
type Worker struct {
	arch      model.Model
	batchSize int
	atk       attack.Attack

	// momentum enables worker-side (distributed) momentum: the worker
	// replies with an exponentially-smoothed gradient instead of the raw
	// estimate. The paper points at this line of work as a seamless
	// variance-reduction extension ("they basically only change the
	// optimization function", Section 8); reducing the gradient variance
	// is what restores the GARs' resilience condition when it is
	// violated.
	momentum float64
	// selfPeers makes a Byzantine worker estimate the honest gradient
	// distribution by drawing that many extra mini-batch gradients from
	// its own shard and feeding them to collusion-style attacks
	// (little-is-enough, fall-of-empires) as the peer sample.
	selfPeers int

	// comp, when non-nil, is the worker's gradient compressor: a reply to
	// a puller that advertises the matching Accept encoding ships
	// compressed (internal/compress), everyone else gets the fp64
	// passthrough. The compressor carries the per-worker error-feedback
	// residual for top-k, so it must live here — where the gradient stream
	// lives — not in the transport.
	comp *compress.Compressor

	mu       sync.Mutex
	sampler  *data.Sampler
	velocity tensor.Vector

	// serveDelay is an injected per-request service delay in nanoseconds —
	// a slow node (overloaded or under-provisioned worker) as opposed to a
	// slow link. Set through Cluster.SlowWorker / SetServeDelay. The delay
	// sleeps on clock, so a simulated slow worker burns virtual time, not
	// wall time.
	serveDelay atomic.Int64
	clock      Clock

	// det enables deterministic replies: the worker computes one reply
	// per step and serves it to every puller — the paper's semantics of a
	// worker broadcasting its gradient estimate to all parameter servers —
	// instead of drawing a fresh mini-batch per pull. detMu serializes the
	// per-step computation so the sampler advances exactly once per step
	// regardless of how many replicas pull concurrently.
	det       bool
	detMu     sync.Mutex
	detStep   uint32
	detHas    bool
	detOK     bool
	detReply  tensor.Vector
	detParams tensor.Vector
	// detPayloads caches the step's compressed replies alongside detReply,
	// keyed by the pulled coordinate range ([0, d) for full pulls), so the
	// error-feedback residual advances exactly once per (step, range)
	// however many replicas pull — the property that keeps deterministic
	// runs bit-identical under compression. Ranges within a step must be
	// disjoint (the sharded protocol's are, by construction): top-k folds
	// and updates only the pulled residual slice, so disjoint-range
	// compressions commute, while overlapping ones would double-advance the
	// shared coordinates.
	detPayloads map[[2]uint32][]byte
}

var _ rpc.Handler = (*Worker)(nil)

// WorkerOption configures optional worker behaviour.
type WorkerOption func(*Worker) error

// WithWorkerMomentum enables worker-side momentum with coefficient
// mu in (0, 1).
func WithWorkerMomentum(mu float64) WorkerOption {
	return func(w *Worker) error {
		if mu <= 0 || mu >= 1 {
			return fmt.Errorf("%w: worker momentum %v not in (0,1)", ErrConfig, mu)
		}
		w.momentum = mu
		return nil
	}
}

// WithSelfEstimatedPeers makes the worker's attack observe k self-estimated
// honest gradients, enabling the collusion attacks without real
// omniscience.
func WithSelfEstimatedPeers(k int) WorkerOption {
	return func(w *Worker) error {
		if k < 1 {
			return fmt.Errorf("%w: self-estimated peers %d < 1", ErrConfig, k)
		}
		w.selfPeers = k
		return nil
	}
}

// WithDeterministicReplies makes the worker serve one cached reply per
// step; see Config.Deterministic.
func WithDeterministicReplies() WorkerOption {
	return func(w *Worker) error {
		w.det = true
		return nil
	}
}

// withWorkerClock routes the worker's time reads (the serve-delay sleep)
// through the cluster's clock, so injected service delays cost virtual time
// under the simulator wiring.
func withWorkerClock(clock Clock) WorkerOption {
	return func(w *Worker) error {
		if clock == nil {
			return fmt.Errorf("%w: nil worker clock", ErrConfig)
		}
		w.clock = clock
		return nil
	}
}

// WithCompression makes the worker compress gradient replies with the given
// codec for pullers that advertise it (Request.Accept); topK is the
// coordinate budget of the top-k codec, ignored by the others. EncFP64 is a
// no-op (passthrough is the default).
func WithCompression(enc compress.Encoding, topK int) WorkerOption {
	return func(w *Worker) error {
		if enc == compress.EncFP64 {
			return nil
		}
		c, err := compress.NewCompressor(enc, topK)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrConfig, err)
		}
		w.comp = c
		return nil
	}
}

// NewWorker returns a worker over one data shard. atk may be nil for an
// honest worker.
func NewWorker(arch model.Model, shard *data.Dataset, batchSize int, seed uint64, atk attack.Attack, opts ...WorkerOption) (*Worker, error) {
	if arch == nil {
		return nil, fmt.Errorf("%w: nil model", ErrConfig)
	}
	if batchSize <= 0 {
		return nil, fmt.Errorf("%w: batch size %d", ErrConfig, batchSize)
	}
	s, err := data.NewSampler(shard, seed)
	if err != nil {
		return nil, fmt.Errorf("core: worker: %w", err)
	}
	if atk == nil {
		atk = attack.None{}
	}
	w := &Worker{arch: arch, batchSize: batchSize, atk: atk, sampler: s, clock: WallClock()}
	for _, opt := range opts {
		if err := opt(w); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// ComputeGradient draws the next mini-batch and estimates the gradient at
// params — the worker's "main job" in the paper's design. With momentum
// enabled, the reply is the smoothed velocity v = mu*v + g.
func (w *Worker) ComputeGradient(params tensor.Vector) (tensor.Vector, error) {
	w.mu.Lock()
	batch := w.sampler.Next(w.batchSize)
	w.mu.Unlock()
	g, err := w.arch.Gradient(params, batch)
	if err != nil {
		return nil, fmt.Errorf("core: worker gradient: %w", err)
	}
	if w.momentum == 0 {
		return g, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.velocity == nil || len(w.velocity) != len(g) {
		w.velocity = tensor.New(len(g))
	}
	for i := range w.velocity {
		w.velocity[i] = w.momentum*w.velocity[i] + g[i]
	}
	return w.velocity.Clone(), nil
}

// estimatePeers draws selfPeers extra gradients from the worker's own shard
// so collusion attacks can observe a sample of the honest distribution.
func (w *Worker) estimatePeers(params tensor.Vector) []tensor.Vector {
	if w.selfPeers == 0 {
		return nil
	}
	peers := make([]tensor.Vector, 0, w.selfPeers)
	for i := 0; i < w.selfPeers; i++ {
		w.mu.Lock()
		batch := w.sampler.Next(w.batchSize)
		w.mu.Unlock()
		g, err := w.arch.Gradient(params, batch)
		if err != nil {
			continue
		}
		peers = append(peers, g)
	}
	return peers
}

// SetServeDelay makes every subsequent request to the worker take at least d
// of service time — the slow-node fault of the async experiments. d = 0
// clears the delay.
func (w *Worker) SetServeDelay(d time.Duration) {
	w.serveDelay.Store(int64(d))
}

// Handle implements rpc.Handler: it serves KindGetGradient requests and
// declines everything else.
func (w *Worker) Handle(req rpc.Request) rpc.Response {
	if d := w.serveDelay.Load(); d > 0 {
		w.clock.Sleep(time.Duration(d))
	}
	switch req.Kind {
	case rpc.KindGetGradient:
		if req.Vec == nil {
			return rpc.Response{}
		}
		if req.Ranged() && int(req.Hi) > len(req.Vec) {
			// A ranged pull's slice must fit the model the puller sent;
			// anything else is a malformed or Byzantine request. Declining is
			// the worker's only verdict — it holds no model state to
			// re-bound the range against.
			return rpc.Response{}
		}
		if w.det {
			return w.handleDeterministic(req)
		}
		g, err := w.ComputeGradient(req.Vec)
		if err != nil {
			return rpc.Response{}
		}
		out, ok := w.atk.Apply(g, w.estimatePeers(req.Vec))
		if !ok {
			return rpc.Response{} // omission fault
		}
		return w.reply(req, out)
	case rpc.KindPing:
		return rpc.Response{OK: true}
	default:
		return rpc.Response{}
	}
}

// reply wraps a computed gradient into a response under the negotiated
// payload encoding: compressed when the puller's Accept matches the
// worker's codec exactly, fp64 passthrough otherwise (the mixed-fleet
// fallback). A ranged request (sharded aggregation) receives only its
// [Lo, Hi) slice — compressed per shard with a proportional top-k budget, or
// sliced passthrough. The compressed payload is borrowed from the shared
// buffer pool and handed back by the RPC serving loop after the frame is
// written, so steady-state compression allocates no payload slices. For
// top-k the call also advances the error-feedback residual — each pull is a
// fresh gradient estimate in live mode, so each pull deposits its own
// un-sent remainder (a ranged pull deposits only its slice's).
func (w *Worker) reply(req rpc.Request, vec tensor.Vector) rpc.Response {
	lo, hi := 0, len(vec)
	if req.Ranged() {
		lo, hi = int(req.Lo), int(req.Hi)
	}
	if w.comp == nil || req.Accept != w.comp.Encoding() {
		return rpc.Response{OK: true, Vec: vec[lo:hi]}
	}
	buf := compress.GetBuf(w.comp.MaxEncodedSize(hi - lo))
	return rpc.Response{
		OK:          true,
		Enc:         w.comp.Encoding(),
		Payload:     w.comp.CompressRange(buf, vec, lo, hi),
		FreePayload: true,
	}
}

// handleDeterministic serves gradient pulls in deterministic mode: the
// first pull of a step computes the reply (post-attack, so stochastic
// attacks also draw once per step) under detMu, and every later pull of the
// same step receives the cached vector. The reply is computed at the first
// puller's parameters; replicated deterministic runs keep their replicas in
// lockstep (sync quorums plus the MSMW barrier), so every puller carries
// identical parameters and the choice of "first" does not matter.
func (w *Worker) handleDeterministic(req rpc.Request) rpc.Response {
	w.detMu.Lock()
	defer w.detMu.Unlock()
	// The cache matches on both the step and the puller's parameters:
	// protocol segments (fault schedules, chunked runs) restart their
	// step numbering, so a bare step match could replay a reply from a
	// previous segment against evolved parameters.
	if w.detHas && w.detStep == req.Step && req.Vec.Equal(w.detParams) {
		if !w.detOK {
			return rpc.Response{}
		}
		return w.detResponse(req)
	}
	w.detStep, w.detHas, w.detOK = req.Step, true, false
	w.detReply, w.detParams, w.detPayloads = nil, req.Vec.Clone(), nil
	g, err := w.ComputeGradient(req.Vec)
	if err != nil {
		return rpc.Response{}
	}
	out, ok := w.atk.Apply(g, w.estimatePeers(req.Vec))
	if !ok {
		return rpc.Response{} // omission fault, replayed for the step
	}
	w.detOK, w.detReply = true, out
	return w.detResponse(req)
}

// detResponse serves the step's cached reply under the puller's negotiated
// encoding and coordinate range. Compressed payloads are produced lazily,
// once per (step, range), into cached (non-pooled) buffers every puller of
// that range shares: the error-feedback residual must advance once per
// gradient estimate per range, not once per replica pull, or the run would
// depend on pull arrival order. Callers hold detMu.
func (w *Worker) detResponse(req rpc.Request) rpc.Response {
	lo, hi := 0, len(w.detReply)
	if req.Ranged() {
		lo, hi = int(req.Lo), int(req.Hi)
		if hi > len(w.detReply) {
			return rpc.Response{}
		}
	}
	if w.comp != nil && req.Accept == w.comp.Encoding() {
		key := [2]uint32{uint32(lo), uint32(hi)}
		p, ok := w.detPayloads[key]
		if !ok {
			p = w.comp.CompressRange(make([]byte, 0, w.comp.MaxEncodedSize(hi-lo)), w.detReply, lo, hi)
			if w.detPayloads == nil {
				w.detPayloads = make(map[[2]uint32][]byte)
			}
			w.detPayloads[key] = p
		}
		return rpc.Response{OK: true, Enc: w.comp.Encoding(), Payload: p}
	}
	return rpc.Response{OK: true, Vec: w.detReply[lo:hi]}
}

// ResetCompression clears the compressor's error-feedback residual (a no-op
// without compression). Checkpoint restores call it through the cluster: the
// accumulated residual encodes corrections for model updates the restored
// timeline no longer contains.
func (w *Worker) ResetCompression() {
	if w.comp != nil {
		w.comp.Reset()
	}
}

// compressionResidualNorm exposes the pending error-feedback residual to
// tests (0 without compression).
func (w *Worker) compressionResidualNorm() float64 {
	if w.comp == nil {
		return 0
	}
	return w.comp.ResidualNorm()
}
