package core

import (
	"errors"
	"testing"
	"time"

	"garfield/internal/attack"
	"garfield/internal/data"
	"garfield/internal/gar"
	"garfield/internal/model"
	"garfield/internal/rpc"
	"garfield/internal/sgd"
	"garfield/internal/tensor"
)

// testTask returns a small learnable task: 16-dim Gaussian mixture,
// 3 classes, linear softmax.
func testTask(t *testing.T) (model.Model, *data.Dataset, *data.Dataset) {
	t.Helper()
	train, test, err := data.Generate(data.SyntheticSpec{
		Name: "core-test", Dim: 16, Classes: 3, Train: 600, Test: 200,
		Separation: 1.5, Noise: 0.6, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	arch, err := model.NewLinearSoftmax(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	return arch, train, test
}

func baseConfig(t *testing.T) Config {
	arch, train, test := testTask(t)
	return Config{
		Arch: arch, Train: train, Test: test,
		BatchSize: 16,
		NW:        7, FW: 1,
		NPS: 4, FPS: 1,
		Rule: gar.NameMedian,
		LR:   sgd.Constant(0.5),
		Seed: 7,
	}
}

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestAggregateHelper(t *testing.T) {
	out, err := Aggregate(gar.NameAverage, 0, []tensor.Vector{{2}, {4}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 {
		t.Fatalf("out = %v", out)
	}
	if _, err := Aggregate("nope", 0, []tensor.Vector{{1}}); !errors.Is(err, gar.ErrUnknownRule) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Aggregate(gar.NameMedian, 3, []tensor.Vector{{1}, {2}}); !errors.Is(err, gar.ErrRequirement) {
		t.Fatalf("err = %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	base := baseConfig(t)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil arch", func(c *Config) { c.Arch = nil }},
		{"no rule", func(c *Config) { c.Rule = "" }},
		{"fw >= nw", func(c *Config) { c.FW = c.NW }},
		{"negative fw", func(c *Config) { c.FW = -1 }},
		{"fps >= nps", func(c *Config) { c.FPS = c.NPS }},
		{"zero batch", func(c *Config) { c.BatchSize = 0 }},
		{"zero nw", func(c *Config) { c.NW = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := NewCluster(cfg); !errors.Is(err, ErrConfig) {
				t.Fatalf("err = %v, want ErrConfig", err)
			}
		})
	}
}

func TestVanillaConverges(t *testing.T) {
	cfg := baseConfig(t)
	cfg.FW, cfg.FPS = 0, 0
	c := newTestCluster(t, cfg)
	res, err := c.RunVanilla(RunOptions{Iterations: 80, AccEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc < 0.8 {
		t.Fatalf("vanilla final accuracy = %v, want >= 0.8", acc)
	}
	if res.Updates != 80 {
		t.Fatalf("updates = %d", res.Updates)
	}
	if res.UpdatesPerSec() <= 0 {
		t.Fatal("throughput not measured")
	}
}

func TestSSMWConvergesWithoutAttack(t *testing.T) {
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	res, err := c.RunSSMW(RunOptions{Iterations: 80, AccEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc < 0.8 {
		t.Fatalf("ssmw final accuracy = %v", acc)
	}
}

func TestSSMWToleratesReversedAttack(t *testing.T) {
	cfg := baseConfig(t)
	cfg.FW = 2
	cfg.WorkerAttack = attack.Reversed{Factor: -100}
	c := newTestCluster(t, cfg)
	res, err := c.RunSSMW(RunOptions{Iterations: 80, AccEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc < 0.8 {
		t.Fatalf("ssmw under attack accuracy = %v, want >= 0.8", acc)
	}
}

func TestVanillaFailsUnderReversedAttack(t *testing.T) {
	cfg := baseConfig(t)
	cfg.FW = 2
	cfg.WorkerAttack = attack.Reversed{Factor: -100}
	c := newTestCluster(t, cfg)
	res, err := c.RunVanilla(RunOptions{Iterations: 80, AccEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	// The reversed-and-amplified attack must prevent learning under plain
	// averaging (Figure 5b's vanilla curve).
	if acc := res.Accuracy.Last(); acc > 0.6 {
		t.Fatalf("vanilla under attack accuracy = %v, should fail to learn", acc)
	}
}

func TestAggregaThorConverges(t *testing.T) {
	cfg := baseConfig(t)
	cfg.NW, cfg.FW = 9, 2 // multikrum needs nw-0 >= 2f+3
	c := newTestCluster(t, cfg)
	res, err := c.RunAggregaThor(RunOptions{Iterations: 80, AccEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc < 0.8 {
		t.Fatalf("aggregathor accuracy = %v", acc)
	}
}

func TestCrashTolerantConverges(t *testing.T) {
	cfg := baseConfig(t)
	cfg.FW, cfg.FPS = 0, 0
	c := newTestCluster(t, cfg)
	res, err := c.RunCrashTolerant(RunOptions{Iterations: 80, AccEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc < 0.8 {
		t.Fatalf("crash-tolerant accuracy = %v", acc)
	}
}

func TestCrashTolerantSurvivesPrimaryCrash(t *testing.T) {
	cfg := baseConfig(t)
	cfg.FW, cfg.FPS = 0, 0
	c := newTestCluster(t, cfg)
	// First half of training.
	if _, err := c.RunCrashTolerant(RunOptions{Iterations: 40, AccEvery: 0}); err != nil {
		t.Fatal(err)
	}
	c.CrashServer(0) // kill the primary
	res, err := c.RunCrashTolerant(RunOptions{Iterations: 40, AccEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc < 0.8 {
		t.Fatalf("post-failover accuracy = %v", acc)
	}
	// The observed primary must now be replica 1.
	p, ok := c.primary()
	if !ok || p != 1 {
		t.Fatalf("primary = %d, %v", p, ok)
	}
}

func TestCrashTolerantAllReplicasDown(t *testing.T) {
	cfg := baseConfig(t)
	cfg.NPS, cfg.FPS = 2, 0
	c := newTestCluster(t, cfg)
	c.CrashServer(0)
	c.CrashServer(1)
	if _, err := c.RunCrashTolerant(RunOptions{Iterations: 5}); err == nil {
		t.Fatal("expected failure with all replicas crashed")
	}
}

func TestCrashTolerantFailsUnderByzantineAttack(t *testing.T) {
	cfg := baseConfig(t)
	cfg.FW = 2
	cfg.WorkerAttack = attack.Reversed{Factor: -100}
	c := newTestCluster(t, cfg)
	res, err := c.RunCrashTolerant(RunOptions{Iterations: 80, AccEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc > 0.6 {
		t.Fatalf("crash-tolerant under Byzantine attack accuracy = %v, should fail", acc)
	}
}

func TestMSMWConverges(t *testing.T) {
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	res, err := c.RunMSMW(RunOptions{Iterations: 80, AccEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc < 0.8 {
		t.Fatalf("msmw accuracy = %v", acc)
	}
}

func TestMSMWToleratesByzantineServersAndWorkers(t *testing.T) {
	cfg := baseConfig(t)
	cfg.FW, cfg.FPS = 1, 1
	cfg.WorkerAttack = attack.Reversed{Factor: -100}
	cfg.ServerAttack = attack.NewRandom(tensor.NewRNG(5), 10)
	c := newTestCluster(t, cfg)
	res, err := c.RunMSMW(RunOptions{Iterations: 100, AccEvery: 25})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc < 0.75 {
		t.Fatalf("msmw under dual attack accuracy = %v, want >= 0.75", acc)
	}
}

func TestMSMWNeedsReplicas(t *testing.T) {
	cfg := baseConfig(t)
	cfg.NPS, cfg.FPS = 1, 0
	c := newTestCluster(t, cfg)
	if _, err := c.RunMSMW(RunOptions{Iterations: 5}); !errors.Is(err, ErrConfig) {
		t.Fatalf("err = %v, want ErrConfig", err)
	}
}

func TestMSMWToleratesStraggler(t *testing.T) {
	cfg := baseConfig(t)
	cfg.FW = 1 // quorum nw-fw = 6 of 7
	c := newTestCluster(t, cfg)
	c.DelayWorker(6, time.Hour) // worker 6 never answers in time
	res, err := c.RunMSMW(RunOptions{Iterations: 40, AccEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc < 0.75 {
		t.Fatalf("msmw with straggler accuracy = %v", acc)
	}
}

func TestSSMWFailsWhenWorkerCrashes(t *testing.T) {
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	c.CrashWorker(0)
	// SSMW is synchronous (q = nw): a crashed worker breaks the quorum.
	_, err := c.RunSSMW(RunOptions{Iterations: 5})
	if !errors.Is(err, rpc.ErrQuorum) {
		t.Fatalf("err = %v, want ErrQuorum", err)
	}
}

func TestDecentralizedConvergesIID(t *testing.T) {
	cfg := baseConfig(t)
	cfg.NW, cfg.FW = 5, 1
	cfg.NPS, cfg.FPS = 5, 0 // one server per node
	c := newTestCluster(t, cfg)
	res, err := c.RunDecentralized(RunOptions{Iterations: 60, AccEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc < 0.75 {
		t.Fatalf("decentralized accuracy = %v", acc)
	}
}

func TestDecentralizedConvergesNonIIDWithContract(t *testing.T) {
	cfg := baseConfig(t)
	cfg.NW, cfg.FW = 5, 1
	cfg.NPS = 5
	cfg.NonIID = true
	cfg.ContractSteps = 2
	c := newTestCluster(t, cfg)
	res, err := c.RunDecentralized(RunOptions{Iterations: 80, AccEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc < 0.7 {
		t.Fatalf("decentralized non-IID accuracy = %v", acc)
	}
}

func TestDecentralizedNeedsMatchingCounts(t *testing.T) {
	cfg := baseConfig(t)
	cfg.NW, cfg.NPS = 6, 3
	c := newTestCluster(t, cfg)
	if _, err := c.RunDecentralized(RunOptions{Iterations: 5}); !errors.Is(err, ErrConfig) {
		t.Fatalf("err = %v, want ErrConfig", err)
	}
}

func TestRunOptionsValidation(t *testing.T) {
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	if _, err := c.RunVanilla(RunOptions{Iterations: 0}); !errors.Is(err, ErrConfig) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.RunVanilla(RunOptions{Iterations: 5, AccEvery: -1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkerHandler(t *testing.T) {
	arch, train, _ := testTask(t)
	w, err := NewWorker(arch, train, 8, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	params := arch.InitParams(tensor.NewRNG(1))
	resp := w.Handle(rpc.Request{Kind: rpc.KindGetGradient, Vec: params})
	if !resp.OK || len(resp.Vec) != arch.Dim() {
		t.Fatalf("gradient response = %+v", resp)
	}
	if resp := w.Handle(rpc.Request{Kind: rpc.KindGetGradient}); resp.OK {
		t.Fatal("gradient request without model must be declined")
	}
	if resp := w.Handle(rpc.Request{Kind: rpc.KindGetModel}); resp.OK {
		t.Fatal("worker must decline model requests")
	}
	if resp := w.Handle(rpc.Request{Kind: rpc.KindPing}); !resp.OK {
		t.Fatal("worker must answer pings")
	}
	// Malformed params (wrong dimension) must be declined, not crash.
	if resp := w.Handle(rpc.Request{Kind: rpc.KindGetGradient, Vec: tensor.New(3)}); resp.OK {
		t.Fatal("wrong-dimension model must be declined")
	}
}

func TestWorkerConstructorValidation(t *testing.T) {
	arch, train, _ := testTask(t)
	if _, err := NewWorker(nil, train, 8, 1, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewWorker(arch, train, 0, 1, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewWorker(arch, &data.Dataset{}, 8, 1, nil); err == nil {
		t.Fatal("expected error for empty shard")
	}
}

func TestByzantineWorkerCorruptsReply(t *testing.T) {
	arch, train, _ := testTask(t)
	w, err := NewWorker(arch, train, 8, 1, attack.Reversed{Factor: -1})
	if err != nil {
		t.Fatal(err)
	}
	honest, err := NewWorker(arch, train, 8, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	params := arch.InitParams(tensor.NewRNG(1))
	rb := w.Handle(rpc.Request{Kind: rpc.KindGetGradient, Vec: params})
	rh := honest.Handle(rpc.Request{Kind: rpc.KindGetGradient, Vec: params})
	if !rb.OK || !rh.OK {
		t.Fatal("both should reply")
	}
	// Byzantine reply should differ wildly from honest direction.
	dot, err := rb.Vec.Dot(rh.Vec)
	if err != nil {
		t.Fatal(err)
	}
	if dot >= 0 {
		t.Fatalf("reversed gradient not anti-correlated: dot = %v", dot)
	}
}

func TestDroppingWorkerOmits(t *testing.T) {
	arch, train, _ := testTask(t)
	w, err := NewWorker(arch, train, 8, 1, attack.Drop{})
	if err != nil {
		t.Fatal(err)
	}
	params := arch.InitParams(tensor.NewRNG(1))
	if resp := w.Handle(rpc.Request{Kind: rpc.KindGetGradient, Vec: params}); resp.OK {
		t.Fatal("dropping worker must omit its reply")
	}
}

func TestServerHandlerAndState(t *testing.T) {
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	s := c.Server(0)

	resp := s.Handle(rpc.Request{Kind: rpc.KindGetModel})
	if !resp.OK || len(resp.Vec) != cfg.Arch.Dim() {
		t.Fatalf("model response = %+v", resp)
	}
	// No aggregated gradient published yet.
	if resp := s.Handle(rpc.Request{Kind: rpc.KindGetAggrGrad}); resp.OK {
		t.Fatal("aggr-grad must be declined before first publish")
	}
	s.SetLatestAggrGrad(tensor.Filled(cfg.Arch.Dim(), 1))
	if resp := s.Handle(rpc.Request{Kind: rpc.KindGetAggrGrad}); !resp.OK {
		t.Fatal("aggr-grad must be served after publish")
	}
	if resp := s.Handle(rpc.Request{Kind: rpc.KindPing}); !resp.OK {
		t.Fatal("server must answer pings")
	}
	if resp := s.Handle(rpc.Request{Kind: rpc.KindGetGradient}); resp.OK {
		t.Fatal("server must decline gradient requests")
	}
}

func TestServerUpdateAndWrite(t *testing.T) {
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	s := c.Server(0)
	before := s.Params()
	g := tensor.Filled(cfg.Arch.Dim(), 1)
	if err := s.UpdateModel(g); err != nil {
		t.Fatal(err)
	}
	after := s.Params()
	if before[0] == after[0] {
		t.Fatal("UpdateModel did not change params")
	}
	if s.Step() != 1 {
		t.Fatalf("step = %d", s.Step())
	}
	if err := s.WriteModel(before); err != nil {
		t.Fatal(err)
	}
	if got := s.Params(); got[0] != before[0] {
		t.Fatal("WriteModel did not restore params")
	}
	if err := s.WriteModel(tensor.New(3)); !errors.Is(err, ErrConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestServerParamsIsCopy(t *testing.T) {
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	s := c.Server(0)
	p := s.Params()
	p[0] = 1e9
	if s.Params()[0] == 1e9 {
		t.Fatal("Params leaked internal state")
	}
}

func TestByzantineServerServesCorruptedModel(t *testing.T) {
	cfg := baseConfig(t)
	cfg.FPS = 1
	cfg.ServerAttack = attack.Reversed{Factor: -100}
	c := newTestCluster(t, cfg)
	honest := c.Server(0).Handle(rpc.Request{Kind: rpc.KindGetModel})
	byz := c.Server(cfg.NPS - 1).Handle(rpc.Request{Kind: rpc.KindGetModel})
	if !honest.OK || !byz.OK {
		t.Fatal("both should serve")
	}
	same := true
	for i := range honest.Vec {
		if honest.Vec[i] != byz.Vec[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Byzantine server served honest model")
	}
}

func TestAccuracySeriesMonotoneish(t *testing.T) {
	cfg := baseConfig(t)
	cfg.FW, cfg.FPS = 0, 0
	c := newTestCluster(t, cfg)
	res, err := c.RunVanilla(RunOptions{Iterations: 60, AccEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accuracy.Points) < 5 {
		t.Fatalf("accuracy points = %d", len(res.Accuracy.Points))
	}
	first := res.Accuracy.Points[0].Y
	last := res.Accuracy.Last()
	if last < first {
		t.Fatalf("accuracy regressed: %v -> %v", first, last)
	}
	if last < 0.9 {
		t.Fatalf("final accuracy = %v, want >= 0.9", last)
	}
	// Time series should align with iteration series in length.
	if len(res.AccuracyOverTime.Points) != len(res.Accuracy.Points) {
		t.Fatal("time series length mismatch")
	}
}

func TestBreakdownRecorded(t *testing.T) {
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	res, err := c.RunSSMW(RunOptions{Iterations: 10, AccEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	_, comm, agg := res.Breakdown.Means()
	if comm <= 0 {
		t.Fatal("communication time not recorded")
	}
	if agg <= 0 {
		t.Fatal("aggregation time not recorded")
	}
}
