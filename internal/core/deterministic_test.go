package core

import (
	"testing"

	"garfield/internal/attack"
	"garfield/internal/data"
	"garfield/internal/model"
	"garfield/internal/rpc"
	"garfield/internal/tensor"
)

// detConfig returns a small replicated deployment in deterministic mode.
func detConfig(t *testing.T) Config {
	t.Helper()
	train, test, err := data.Generate(data.SyntheticSpec{
		Name: "det", Dim: 8, Classes: 4, Train: 160, Test: 40,
		Separation: 1.0, Noise: 1.0, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	arch, err := model.NewLinearSoftmax(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Arch: arch, Train: train, Test: test,
		BatchSize: 8,
		NW:        5, FW: 1,
		NPS: 3, FPS: 0,
		Rule:          "median",
		SyncQuorum:    true,
		Deterministic: true,
		Seed:          5,
	}
}

// TestDeterministicMSMWBitIdentical is the core determinism contract: two
// MSMW runs of the same deterministic config end with bit-identical model
// state on every replica — the property the scenario sweep's reproducible
// artifacts rest on.
func TestDeterministicMSMWBitIdentical(t *testing.T) {
	run := func() []tensor.Vector {
		c, err := NewCluster(detConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.RunMSMW(RunOptions{Iterations: 8}); err != nil {
			t.Fatal(err)
		}
		params := make([]tensor.Vector, c.Servers())
		for i := range params {
			params[i] = c.Server(i).Params()
		}
		return params
	}
	a, b := run(), run()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Errorf("replica %d: parameters differ between identical runs", i)
		}
	}
}

// TestDeterministicByzantineServerBitIdentical extends the contract to a
// stochastic Byzantine server: its random-model attack must draw once per
// step (served identically to every puller), keeping two runs bit-identical.
func TestDeterministicByzantineServerBitIdentical(t *testing.T) {
	run := func() tensor.Vector {
		cfg := detConfig(t)
		cfg.NPS, cfg.FPS = 3, 1
		cfg.ServerAttack = attack.NewRandom(tensor.NewRNG(9), 1.0)
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.RunMSMW(RunOptions{Iterations: 8}); err != nil {
			t.Fatal(err)
		}
		return c.Server(0).Params()
	}
	if a, b := run(), run(); !a.Equal(b) {
		t.Error("stochastic Byzantine server broke run-to-run determinism")
	}
}

// TestDeterministicWorkerCachesPerStep: in deterministic mode, every
// replica pulling the same step with the same parameters receives the same
// gradient estimate — the paper's one-broadcast-per-step semantics.
func TestDeterministicWorkerCachesPerStep(t *testing.T) {
	cfg := detConfig(t)
	shards, err := data.PartitionIID(cfg.Train, 1, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(cfg.Arch, shards[0], cfg.BatchSize, cfg.Seed, nil,
		WithDeterministicReplies())
	if err != nil {
		t.Fatal(err)
	}
	params := cfg.Arch.InitParams(tensor.NewRNG(cfg.Seed))

	pull := func(step uint32, p tensor.Vector) tensor.Vector {
		resp := w.Handle(rpc.Request{Kind: rpc.KindGetGradient, Step: step, Vec: p})
		if !resp.OK {
			t.Fatalf("pull at step %d declined", step)
		}
		return resp.Vec
	}
	g1 := pull(0, params)
	g2 := pull(0, params)
	if !g1.Equal(g2) {
		t.Error("same step, same params: replies differ")
	}
	// A new step advances the sampler: fresh estimate.
	g3 := pull(1, params)
	if g1.Equal(g3) {
		t.Error("new step served the cached reply")
	}
	// Same step number but evolved parameters (a protocol segment after a
	// fault restarts numbering): the stale cache must not be replayed.
	other := params.Clone()
	other[0] += 0.5
	g4 := pull(1, other)
	if g3.Equal(g4) {
		t.Error("changed params served the cached reply")
	}
}
