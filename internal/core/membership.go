package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strconv"
	"sync/atomic"

	"garfield/internal/compress"
	"garfield/internal/data"
	"garfield/internal/gar"
)

// This file is the membership/reconfiguration layer: the roster of workers
// and server replicas a Cluster drives is no longer fixed at construction.
// Nodes join (bootstrapping state from the v2 checksummed checkpoint), leave
// gracefully (drain-and-depart), depart on crash evidence (the transport's
// per-address sever epochs), and scale in batches. Every transition is one
// roster epoch: the prospective fleet shape is validated against the
// configured GAR's n >= g(f) floor and the asynchronous q = n - f quorum
// requirement before it is committed, the pull-target lists of every active
// server replica are rebound, and the epoch counter is bumped. Protocol
// runners snapshot the roster per round, so rounds in flight complete
// against the old roster while new rounds observe the new one.

// Roster is an immutable snapshot of the active fleet at one epoch. Indices
// are stable: they name node slots in the Cluster's append-only tables, so a
// snapshot taken at epoch e can still address its nodes after later
// transitions. The address slices are parallel to the index slices.
type Roster struct {
	// Epoch is the roster version this snapshot was taken at. Epoch 0 is
	// the construction-time fleet; every join/leave/depart/scale bumps it.
	Epoch uint64

	// Workers holds the active worker indices in ascending order, and
	// WorkerAddrs their network addresses. FW counts the active workers
	// that were declared Byzantine at construction (joiners are honest);
	// WorkersByz marks which (parallel to Workers).
	Workers     []int
	WorkerAddrs []string
	WorkersByz  []bool
	FW          int

	// Servers, ServerAddrs, ServersByz and FPS are the server-replica
	// mirror.
	Servers     []int
	ServerAddrs []string
	ServersByz  []bool
	FPS         int
}

// NW returns the active worker count.
func (r Roster) NW() int { return len(r.Workers) }

// NPS returns the active server-replica count.
func (r Roster) NPS() int { return len(r.Servers) }

// HonestServers returns the active non-Byzantine replica indices — the
// replicas whose training loops the protocol runners drive.
func (r Roster) HonestServers() []int {
	out := make([]int, 0, len(r.Servers)-r.FPS)
	for k, i := range r.Servers {
		if !r.ServersByz[k] {
			out = append(out, i)
		}
	}
	return out
}

// Roster returns a snapshot of the current active fleet.
func (c *Cluster) Roster() Roster {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	return c.rosterLocked()
}

// RosterEpoch returns the current roster version without building the full
// snapshot — the cheap check the async engine polls between rounds.
func (c *Cluster) RosterEpoch() uint64 {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	return c.epoch
}

func (c *Cluster) rosterLocked() Roster {
	r := Roster{Epoch: c.epoch}
	for i, active := range c.workerActive {
		if !active {
			continue
		}
		r.Workers = append(r.Workers, i)
		r.WorkerAddrs = append(r.WorkerAddrs, c.workerAddrs[i])
		r.WorkersByz = append(r.WorkersByz, c.workerByz[i])
		if c.workerByz[i] {
			r.FW++
		}
	}
	for i, active := range c.serverActive {
		if !active {
			continue
		}
		r.Servers = append(r.Servers, i)
		r.ServerAddrs = append(r.ServerAddrs, c.serverAddrs[i])
		r.ServersByz = append(r.ServersByz, c.serverByz[i])
		if c.serverByz[i] {
			r.FPS++
		}
	}
	return r
}

// validateTransition checks a prospective fleet shape against the resilience
// requirements of the configured rules: the gradient GAR's n >= g(f) floor,
// the asynchronous quorum q = n - f (the q fastest replies must still be
// enough inputs for the GAR), and — when the deployment is replicated — the
// model-aggregation rule's floor across server replicas. A transition that
// fails validation is rejected and leaves the roster unchanged.
func (c *Cluster) validateTransition(nw, fw, nps, fps int) error {
	if nw < 1 {
		return fmt.Errorf("%w: roster transition leaves no workers", ErrConfig)
	}
	if fw >= nw {
		return fmt.Errorf("%w: roster transition leaves fw=%d of nw=%d", ErrConfig, fw, nw)
	}
	min, err := gar.MinN(c.cfg.Rule, fw)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if nw < min {
		return fmt.Errorf("%w: roster transition leaves nw=%d < g(f)=%d for rule %q at fw=%d",
			ErrConfig, nw, min, c.cfg.Rule, fw)
	}
	if q := nw - fw; q < min {
		return fmt.Errorf("%w: roster transition leaves async quorum q=n-f=%d < g(f)=%d for rule %q at fw=%d",
			ErrConfig, q, min, c.cfg.Rule, fw)
	}
	if nps < 1 {
		return fmt.Errorf("%w: roster transition leaves no server replicas", ErrConfig)
	}
	if fps >= nps {
		return fmt.Errorf("%w: roster transition leaves fps=%d of nps=%d", ErrConfig, fps, nps)
	}
	if nps >= 2 {
		minM, err := gar.MinN(c.cfg.ModelRule, fps)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrConfig, err)
		}
		if nps < minM {
			return fmt.Errorf("%w: roster transition leaves nps=%d < g(f)=%d for model rule %q at fps=%d",
				ErrConfig, nps, minM, c.cfg.ModelRule, fps)
		}
	}
	return nil
}

// prospective returns the fleet shape the current active flags describe,
// for feeding validateTransition before flags are flipped.
func (c *Cluster) prospectiveLocked() (nw, fw, nps, fps int) {
	for i, a := range c.workerActive {
		if a {
			nw++
			if c.workerByz[i] {
				fw++
			}
		}
	}
	for i, a := range c.serverActive {
		if a {
			nps++
			if c.serverByz[i] {
				fps++
			}
		}
	}
	return nw, fw, nps, fps
}

// commitLocked finalizes a validated transition: bumps the epoch and rebinds
// the pull-target lists of every active server replica to the new roster.
// In-flight pull rounds keep the list snapshot they started with.
func (c *Cluster) commitLocked() {
	c.epoch++
	r := c.rosterLocked()
	for _, i := range r.Servers {
		c.servers[i].SetWorkers(r.WorkerAddrs)
		c.servers[i].SetPeers(r.ServerAddrs)
	}
}

// joinSeed derives the data-sharding seed of joiner idx by domain separation
// from the cluster seed, so joiner shards are deterministic per seed but
// uncorrelated with the construction-time partition.
func joinSeed(seed uint64, idx int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte("/join-worker/" + strconv.Itoa(idx)))
	return h.Sum64()
}

// JoinWorker adds one honest worker to the roster and returns its index.
// The joiner gets a deterministic IID shard of the training set, the same
// codec/momentum/determinism options as the construction-time fleet, and is
// visible to every active server replica from the next pull round on.
func (c *Cluster) JoinWorker() (int, error) {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	idx, err := c.joinWorkerLocked()
	if err != nil {
		return 0, err
	}
	c.commitLocked()
	return idx, nil
}

func (c *Cluster) joinWorkerLocked() (int, error) {
	idx := len(c.workers)
	shards, err := data.PartitionIID(c.cfg.Train, c.cfg.NW, joinSeed(c.cfg.Seed, idx))
	if err != nil {
		return 0, fmt.Errorf("core: join worker %d: shard data: %w", idx, err)
	}
	var opts []WorkerOption
	if c.cfg.WorkerMomentum > 0 {
		opts = append(opts, WithWorkerMomentum(c.cfg.WorkerMomentum))
	}
	if c.cfg.Deterministic {
		opts = append(opts, WithDeterministicReplies())
	}
	encoding, _ := compress.Parse(c.cfg.Compression)
	if encoding != compress.EncFP64 {
		opts = append(opts, WithCompression(encoding, c.cfg.TopK))
	}
	opts = append(opts, withWorkerClock(c.clock))
	w, err := NewWorker(c.cfg.Arch, shards[idx%c.cfg.NW], c.cfg.BatchSize,
		c.cfg.Seed+uint64(idx)+1, nil, opts...)
	if err != nil {
		return 0, fmt.Errorf("core: join worker %d: %w", idx, err)
	}
	addr := "worker-" + strconv.Itoa(idx)
	srv, err := c.wiring.Serve(addr, w)
	if err != nil {
		return 0, fmt.Errorf("core: join worker %d: %w", idx, err)
	}
	c.workers = append(c.workers, w)
	c.workerAddrs = append(c.workerAddrs, addr)
	c.workerSrv = append(c.workerSrv, srv)
	c.workerActive = append(c.workerActive, true)
	c.workerByz = append(c.workerByz, false)
	if c.net != nil {
		c.severBase[addr] = c.net.SeverEpoch(addr)
	}
	return idx, nil
}

// JoinServer adds one honest server replica and returns its index. The
// replica bootstraps its model, optimizer and step counter from checkpoint:
// pass a reader holding v2 checkpoint bytes (SaveCheckpoint framing), or nil
// to snapshot the current primary live. Like RestoreServerCheckpoint, the
// bootstrap resets every worker's compression error-feedback residual — the
// residual belongs to the timeline the pulled gradients were computed on,
// not to the joiner's restored one.
func (c *Cluster) JoinServer(checkpoint io.Reader) (int, error) {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	idx, err := c.joinServerLocked(checkpoint)
	if err != nil {
		return 0, err
	}
	c.commitLocked()
	return idx, nil
}

func (c *Cluster) joinServerLocked(checkpoint io.Reader) (int, error) {
	idx := len(c.servers)
	if checkpoint == nil {
		p, ok := c.primaryLocked()
		if !ok {
			return 0, fmt.Errorf("%w: join server %d: no live replica to bootstrap from", ErrConfig, idx)
		}
		var buf bytes.Buffer
		if err := c.servers[p].SaveCheckpoint(&buf); err != nil {
			return 0, fmt.Errorf("core: join server %d: snapshot primary: %w", idx, err)
		}
		checkpoint = &buf
	}
	opt, err := newOptimizer(c.cfg)
	if err != nil {
		return 0, err
	}
	addr := "server-" + strconv.Itoa(idx)
	client := c.wiring.NewCaller(addr)
	r := c.rosterLocked()
	encoding, _ := compress.Parse(c.cfg.Compression)
	s, err := NewServer(ServerConfig{
		Arch:          c.cfg.Arch,
		Init:          c.initParams,
		Optimizer:     opt,
		Client:        client,
		Workers:       r.WorkerAddrs,
		Peers:         append(append([]string(nil), r.ServerAddrs...), addr),
		Deterministic: c.cfg.Deterministic,
		Accept:        encoding,
	})
	if err != nil {
		closeCaller(client)
		return 0, fmt.Errorf("core: join server %d: %w", idx, err)
	}
	if err := s.LoadCheckpoint(checkpoint); err != nil {
		closeCaller(client)
		return 0, fmt.Errorf("core: join server %d: bootstrap: %w", idx, err)
	}
	srv, err := c.wiring.Serve(addr, s)
	if err != nil {
		closeCaller(client)
		return 0, fmt.Errorf("core: join server %d: %w", idx, err)
	}
	c.clients = append(c.clients, client)
	c.servers = append(c.servers, s)
	c.byzServers = append(c.byzServers, nil)
	c.serverAddrs = append(c.serverAddrs, addr)
	c.serverSrv = append(c.serverSrv, srv)
	c.serverActive = append(c.serverActive, true)
	c.serverByz = append(c.serverByz, false)
	c.crashed = append(c.crashed, new(atomic.Bool))
	if c.net != nil {
		c.severBase[addr] = c.net.SeverEpoch(addr)
	}
	// The bootstrap rolled the joiner's timeline back to the checkpoint;
	// worker residuals reference the pre-join timeline.
	for i, active := range c.workerActive {
		if active {
			c.workers[i].ResetCompression()
		}
	}
	return idx, nil
}

// LeaveWorker removes worker i gracefully: the prospective roster is
// validated first (rejecting the departure — roster unchanged — if it would
// break the GAR floor or quorum requirement), then the worker is drained:
// it stops being a pull target from the next round on but keeps serving
// in-flight pulls, and its goroutines are reclaimed at Cluster.Close.
func (c *Cluster) LeaveWorker(i int) error {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if err := c.deactivateWorkerLocked(i); err != nil {
		return err
	}
	c.commitLocked()
	return nil
}

func (c *Cluster) deactivateWorkerLocked(i int) error {
	if i < 0 || i >= len(c.workers) {
		return fmt.Errorf("%w: worker %d of %d", ErrConfig, i, len(c.workers))
	}
	if !c.workerActive[i] {
		return fmt.Errorf("%w: worker %d already left the roster", ErrConfig, i)
	}
	nw, fw, nps, fps := c.prospectiveLocked()
	nw--
	if c.workerByz[i] {
		fw--
	}
	if err := c.validateTransition(nw, fw, nps, fps); err != nil {
		return err
	}
	active := append([]bool(nil), c.workerActive...)
	active[i] = false
	c.workerActive = active
	return nil
}

// LeaveServer removes server replica i gracefully, with the same validate-
// then-drain contract as LeaveWorker.
func (c *Cluster) LeaveServer(i int) error {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if err := c.deactivateServerLocked(i); err != nil {
		return err
	}
	c.commitLocked()
	return nil
}

func (c *Cluster) deactivateServerLocked(i int) error {
	if i < 0 || i >= len(c.servers) {
		return fmt.Errorf("%w: server %d of %d", ErrConfig, i, len(c.servers))
	}
	if !c.serverActive[i] {
		return fmt.Errorf("%w: server %d already left the roster", ErrConfig, i)
	}
	nw, fw, nps, fps := c.prospectiveLocked()
	nps--
	if c.serverByz[i] {
		fps--
	}
	if err := c.validateTransition(nw, fw, nps, fps); err != nil {
		return err
	}
	active := append([]bool(nil), c.serverActive...)
	active[i] = false
	c.serverActive = active
	return nil
}

// DepartWorker records the crash-detected departure of worker i. Unlike
// LeaveWorker it requires failure-detector evidence — the transport reports
// the address crashed, or its sever epoch advanced past the registration
// baseline (a partition or link cut severed its connections) — and refuses
// to remove a node nothing has observed failing.
func (c *Cluster) DepartWorker(i int) error {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if i < 0 || i >= len(c.workers) {
		return fmt.Errorf("%w: worker %d of %d", ErrConfig, i, len(c.workers))
	}
	if err := c.severEvidenceLocked(c.workerAddrs[i]); err != nil {
		return err
	}
	if err := c.deactivateWorkerLocked(i); err != nil {
		return err
	}
	c.commitLocked()
	return nil
}

// DepartServer is DepartWorker for server replica i.
func (c *Cluster) DepartServer(i int) error {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if i < 0 || i >= len(c.servers) {
		return fmt.Errorf("%w: server %d of %d", ErrConfig, i, len(c.servers))
	}
	if err := c.severEvidenceLocked(c.serverAddrs[i]); err != nil {
		return err
	}
	if err := c.deactivateServerLocked(i); err != nil {
		return err
	}
	c.commitLocked()
	return nil
}

func (c *Cluster) severEvidenceLocked(addr string) error {
	if c.net == nil {
		return fmt.Errorf("%w: no failure detector on this wiring (crash evidence needs the live transport); use the graceful leave",
			ErrConfig)
	}
	if c.net.Crashed(addr) {
		return nil
	}
	if c.net.SeverEpoch(addr) > c.severBase[addr] {
		return nil
	}
	return fmt.Errorf("%w: no failure evidence for %s (not crashed, sever epoch unchanged); use the graceful leave",
		ErrConfig, addr)
}

// ScaleWorkers applies a batch worker-count change in one roster epoch:
// delta > 0 joins that many honest workers, delta < 0 drains the
// highest-indexed active workers. The whole batch is validated as one
// transition; on rejection the roster is unchanged.
func (c *Cluster) ScaleWorkers(delta int) error {
	if delta == 0 {
		return nil
	}
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if delta > 0 {
		for k := 0; k < delta; k++ {
			if _, err := c.joinWorkerLocked(); err != nil {
				return err
			}
		}
		c.commitLocked()
		return nil
	}
	victims, err := c.highestActive(c.workerActive, -delta, "worker")
	if err != nil {
		return err
	}
	nw, fw, nps, fps := c.prospectiveLocked()
	for _, i := range victims {
		nw--
		if c.workerByz[i] {
			fw--
		}
	}
	if err := c.validateTransition(nw, fw, nps, fps); err != nil {
		return err
	}
	active := append([]bool(nil), c.workerActive...)
	for _, i := range victims {
		active[i] = false
	}
	c.workerActive = active
	c.commitLocked()
	return nil
}

// ScaleServers is ScaleWorkers for server replicas; joins bootstrap from the
// current primary's live checkpoint.
func (c *Cluster) ScaleServers(delta int) error {
	if delta == 0 {
		return nil
	}
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if delta > 0 {
		for k := 0; k < delta; k++ {
			if _, err := c.joinServerLocked(nil); err != nil {
				return err
			}
		}
		c.commitLocked()
		return nil
	}
	victims, err := c.highestActive(c.serverActive, -delta, "server")
	if err != nil {
		return err
	}
	nw, fw, nps, fps := c.prospectiveLocked()
	for _, i := range victims {
		nps--
		if c.serverByz[i] {
			fps--
		}
	}
	if err := c.validateTransition(nw, fw, nps, fps); err != nil {
		return err
	}
	active := append([]bool(nil), c.serverActive...)
	for _, i := range victims {
		active[i] = false
	}
	c.serverActive = active
	c.commitLocked()
	return nil
}

// highestActive returns the n highest-indexed active slots, erroring when
// fewer than n are active.
func (c *Cluster) highestActive(active []bool, n int, kind string) ([]int, error) {
	var out []int
	for i := len(active) - 1; i >= 0 && len(out) < n; i-- {
		if active[i] {
			out = append(out, i)
		}
	}
	if len(out) < n {
		return nil, fmt.Errorf("%w: scale down by %d, only %d active %ss", ErrConfig, n, len(out), kind)
	}
	return out, nil
}

// RecoverServer clears a crash of server replica i and fully resets the
// replica's derived state — the published aggregated gradient and the
// deterministic reply cache — plus every active worker's compression
// error-feedback residual, the same derived-state contract checkpoint
// restore honours. Without the reset, the recovered replica would serve
// vectors from the pre-crash timeline and the residuals would replay
// corrections for updates the fleet has moved past. Recovery is a liveness
// event, not a membership transition: the replica never left the roster, so
// the epoch does not change.
func (c *Cluster) RecoverServer(i int) error {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if i < 0 || i >= len(c.servers) {
		return fmt.Errorf("%w: server %d of %d", ErrConfig, i, len(c.servers))
	}
	if !c.serverActive[i] {
		return fmt.Errorf("%w: server %d departed; recovery is for roster members (rejoin via JoinServer)",
			ErrConfig, i)
	}
	addr := c.serverAddrs[i]
	if c.net != nil {
		c.net.Recover(addr)
	}
	c.crashed[i].Store(false)
	c.servers[i].ResetDerived()
	for j, active := range c.workerActive {
		if active {
			c.workers[j].ResetCompression()
		}
	}
	// Re-baseline the failure detector: the sever epoch advance caused by
	// the crash itself must not count as departure evidence later.
	if c.net != nil {
		c.severBase[addr] = c.net.SeverEpoch(addr)
	}
	return nil
}

// ModelSpread returns the maximum L2 distance between the model of the
// first live honest replica and every other live honest replica — the
// replica-divergence measure the join-convergence invariant bounds: a
// freshly bootstrapped joiner must end the run near the honest fleet's
// model, Byzantine replicas excluded. Zero when fewer than two live honest
// replicas exist.
func (c *Cluster) ModelSpread() float64 {
	c.memMu.RLock()
	var honest []*Server
	for i, active := range c.serverActive {
		if active && !c.serverByz[i] && !c.crashed[i].Load() {
			honest = append(honest, c.servers[i])
		}
	}
	c.memMu.RUnlock()
	if len(honest) < 2 {
		return 0
	}
	ref := honest[0].Params()
	var max float64
	for _, s := range honest[1:] {
		p := s.Params()
		var sum float64
		for d := range ref {
			diff := ref[d] - p[d]
			sum += diff * diff
		}
		if d := math.Sqrt(sum); d > max {
			max = d
		}
	}
	return max
}
