package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"garfield/internal/rpc"
	"garfield/internal/tensor"
)

// PeerNode is the node object of the decentralized application when deployed
// across processes: one RPC endpoint playing both roles, answering gradient
// pulls from its Worker half and model / aggregated-gradient pulls from its
// Server half (Listing 3 creates "both a Server and a Worker object" per
// node).
type PeerNode struct {
	worker *Worker
	server *Server

	// Cached per-shape aggregators: DecentralizedStep runs on the node's
	// single training-loop goroutine, so the rule arenas and output
	// buffers are reused across iterations (rebuilt only if the caller
	// changes rule or quorum shape mid-run).
	gradAgg, modelAgg *Aggregator
	gradKey, modelKey aggKey
}

type aggKey struct {
	rule string
	n, f int
}

func cachedAggregator(slot **Aggregator, key *aggKey, rule string, n, f int) (*Aggregator, error) {
	want := aggKey{rule: rule, n: n, f: f}
	if *slot == nil || *key != want {
		agg, err := NewAggregator(rule, n, f)
		if err != nil {
			return nil, err
		}
		*slot, *key = agg, want
	}
	return *slot, nil
}

var _ rpc.Handler = (*PeerNode)(nil)

// NewPeerNode pairs a worker and a server into one endpoint.
func NewPeerNode(worker *Worker, server *Server) (*PeerNode, error) {
	if worker == nil || server == nil {
		return nil, fmt.Errorf("%w: peer node needs both halves", ErrConfig)
	}
	return &PeerNode{worker: worker, server: server}, nil
}

// Server exposes the server half (the training loop driver).
func (p *PeerNode) Server() *Server { return p.server }

// Handle implements rpc.Handler by role dispatch: gradient requests go to
// the worker half, everything else to the server half.
func (p *PeerNode) Handle(req rpc.Request) rpc.Response {
	switch req.Kind {
	case rpc.KindGetGradient:
		return p.worker.Handle(req)
	default:
		return p.server.Handle(req)
	}
}

// DecentralizedStep executes one iteration of Listing 3 for this node
// against remote peers, with no global barrier: the contract step retries
// until a quorum of peers has published an aggregated gradient for the
// round. q is the collection quorum (n-f, or n under synchrony).
func (p *PeerNode) DecentralizedStep(ctx context.Context, iteration, q, f int, rule, modelRule string, contractSteps int) error {
	s := p.server
	gradAgg, err := cachedAggregator(&p.gradAgg, &p.gradKey, rule, q, f)
	if err != nil {
		return fmt.Errorf("core: peer step %d: %w", iteration, err)
	}
	modelAgg, err := cachedAggregator(&p.modelAgg, &p.modelKey, modelRule, q, f)
	if err != nil {
		return fmt.Errorf("core: peer step %d: %w", iteration, err)
	}
	grads, err := s.GetGradients(ctx, iteration, q)
	if err != nil {
		return fmt.Errorf("core: peer step %d gradients: %w", iteration, err)
	}
	aggr, err := gradAgg.Aggregate(grads)
	if err != nil {
		return fmt.Errorf("core: peer step %d: %w", iteration, err)
	}
	for step := 0; step < contractSteps; step++ {
		s.SetLatestAggrGrad(aggr)
		aggrs, err := pullAggrGradsWithRetry(ctx, s, q)
		if err != nil {
			return fmt.Errorf("core: peer step %d contract %d: %w", iteration, step, err)
		}
		aggr, err = gradAgg.Aggregate(aggrs)
		if err != nil {
			return fmt.Errorf("core: peer step %d contract %d: %w", iteration, step, err)
		}
	}
	if err := s.UpdateModel(aggr); err != nil {
		return err
	}
	models, err := s.GetModels(ctx, q)
	if err != nil {
		return fmt.Errorf("core: peer step %d models: %w", iteration, err)
	}
	aggrModel, err := modelAgg.Aggregate(models)
	if err != nil {
		return fmt.Errorf("core: peer step %d: %w", iteration, err)
	}
	return s.WriteModel(aggrModel)
}

// pullAggrGradsWithRetry keeps pulling until q peers serve an aggregated
// gradient or ctx expires. Peers that have not reached the publish point of
// the current round decline, which surfaces as a quorum miss — transient by
// construction, hence the retry loop (the cross-process substitute for the
// in-process barrier).
func pullAggrGradsWithRetry(ctx context.Context, s *Server, q int) ([]tensor.Vector, error) {
	backoff := 2 * time.Millisecond
	for {
		aggrs, err := s.GetAggrGrads(ctx, q)
		if err == nil {
			return aggrs, nil
		}
		if !errors.Is(err, rpc.ErrQuorum) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("core: contract quorum: %w", ctx.Err())
		//lint:allow wallclock(quorum-retry pacing in the decentralized topology, which the simulator rejects; affects liveness only, never a deterministic artifact)
		case <-time.After(backoff):
		}
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
}
