package core

import (
	"context"
	"fmt"
	"math"

	"garfield/internal/gar"
	"garfield/internal/rpc"
	"garfield/internal/shard"
	"garfield/internal/tensor"
)

// This file is the sharded-aggregation topology: the distributed form of
// internal/shard, breaking the O(n²·d) single-box aggregation wall by
// partitioning the work across the server replicas.
//
// Coordinate-wise rules (average, median, trimmedmean, phocas) shard the
// coordinate space: shard k's owner pulls only the [lo_k, hi_k) slice of
// every worker's gradient (ranged pulls — the wire ships d/S coordinates per
// worker per owner instead of d), aggregates the slices, and publishes the
// part. Selection rules (krum, multikrum, mda, bulyan) shard the worker
// space hierarchically: shard k's owner pulls full gradients from group k's
// workers only, runs the rule locally, and publishes the group winner; the
// root round over the winners runs at every replica during reassembly. The
// coordinate-wise composition is bit-identical to the flat rule; the
// hierarchical one is bounded by the drift envelopes documented and tested
// in internal/shard.
//
// Each round is two phases with an all-or-abort commit:
//
//	Phase A — every shard's owner pulls, aggregates, and publishes its part
//	          (Server.SetShardPart, stamped with the round).
//	Phase B — every live replica collects all S parts (its own locally,
//	          the rest via KindGetShardPart pulls), assembles the full
//	          update — concatenation for coordinate-wise rules, the root
//	          selection round for hierarchical ones — and only after every
//	          live replica holds a complete, width-checked assembly does
//	          anyone apply it. A failure anywhere (quorum miss, owner
//	          unreachable, torn part) aborts the round before the first
//	          model write: the model either takes the full-coordinate
//	          update or none of it, never a partial-coordinate write.
//
// The server tier is crash-only (FPS must be 0): shard owners are trusted
// to aggregate honestly, exactly as the paper's SSMW server is — Byzantine
// workers remain tolerated through the GARs. A crashed owner's shards fail
// over to the next live replica in rotation (ShardFailovers counts the
// reassignments); a replica recovered mid-run catches up by adopting the
// newest live peer's model before its next round (Server.AdoptState).
type shardedStepper struct {
	c   *Cluster
	res *Result
	obs *Server

	coord bool       // coordinate-wise rule: exact coordinate sharding
	plan  shard.Plan // coordinate partition (coord mode only)

	// Phase A aggregators, one per shard (the shard fixes the input shape:
	// quorum width for coordinate-wise, group size for hierarchical), and
	// Phase B root aggregators, one per replica slot (hierarchical only).
	aggs     map[int]*Aggregator
	keys     map[int]aggKey
	rootAggs map[int]*Aggregator
	rootKeys map[int]aggKey

	// scratch holds each replica's assembly buffer; winners holds each
	// replica's pulled group winners (hierarchical). Keyed by replica slot,
	// reused across rounds.
	scratch map[int]tensor.Vector
	winners map[int][]tensor.Vector
}

// RunSharded trains with the sharded-aggregation topology. Requirements:
// Shards >= 1 (and, for coordinate-wise rules, at most the model dimension;
// for selection rules, a worker grouping satisfying the rule's floors), and
// FPS == 0 — reassembly trusts shard owners, so the server tier is
// crash-only while Byzantine workers stay covered by the GARs.
func (c *Cluster) RunSharded(opt RunOptions) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	cfg := c.cfg
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("%w: sharded topology needs shards >= 1, got %d", ErrConfig, cfg.Shards)
	}
	if cfg.FPS != 0 {
		return nil, fmt.Errorf("%w: sharded reassembly trusts shard owners: fps must be 0 (crash faults only on the server tier), got %d",
			ErrConfig, cfg.FPS)
	}
	st := &shardedStepper{
		c: c, res: newResult("sharded"),
		coord: gar.CoordinateWise(cfg.Rule),
		aggs:  make(map[int]*Aggregator), keys: make(map[int]aggKey),
		rootAggs: make(map[int]*Aggregator), rootKeys: make(map[int]aggKey),
		scratch: make(map[int]tensor.Vector), winners: make(map[int][]tensor.Vector),
	}
	if st.coord {
		plan, err := shard.NewPlan(cfg.Arch.Dim(), cfg.Shards)
		if err != nil {
			return nil, fmt.Errorf("%w: sharded: %v", ErrConfig, err)
		}
		st.plan = plan
	} else {
		// Fast-fail the hierarchical shape: group floors and the root
		// round's f=0 floor, validated exactly as the local aggregators
		// will be built.
		if _, err := shard.NewHierarchical(cfg.Rule, cfg.NW, cfg.FW, cfg.Shards); err != nil {
			return nil, fmt.Errorf("%w: sharded: %v", ErrConfig, err)
		}
	}

	res := st.res
	start := c.clock.Now()
	wire0 := c.WireStats()
	for i := 0; i < opt.Iterations; i++ {
		committed, err := st.round(i)
		if err != nil {
			return nil, fmt.Errorf("core: sharded iteration %d: %w", i, err)
		}
		res.Breakdown.EndIteration()
		if committed {
			res.Updates++
			res.ShardRounds++
		} else {
			res.ShardAborts++
		}
		// Accuracy is recorded on the committed/aborted model alike, so the
		// artifact curve keeps one point per schedule slot whatever the
		// fault pattern — the bit-identical sweep contract needs a stable
		// shape.
		if err := c.recordAccuracy(res, st.obs, opt, i, start); err != nil {
			return nil, err
		}
	}
	res.WallTime = c.clock.Now().Sub(start)
	res.Wire = c.WireStats().Sub(wire0)
	return res, nil
}

// liveReplicas returns the active, non-crashed replica slots in roster
// order. With FPS == 0 every live replica is honest and drivable.
func (st *shardedStepper) liveReplicas(ro Roster) []int {
	live := make([]int, 0, len(ro.Servers))
	for _, r := range ro.Servers {
		if !st.c.serverCrashed(r) {
			live = append(live, r)
		}
	}
	return live
}

// ownerOf resolves shard k's owner: the preferred replica is roster slot
// k mod nps, and a crashed preference fails over to the next live replica in
// rotation. Deterministic in (roster, crash set), so every replica derives
// the same ownership map without coordination.
func (st *shardedStepper) ownerOf(ro Roster, k int) (owner int, failedOver, ok bool) {
	n := len(ro.Servers)
	for off := 0; off < n; off++ {
		r := ro.Servers[(k+off)%n]
		if !st.c.serverCrashed(r) {
			return r, off > 0, true
		}
	}
	return 0, false, false
}

// catchUp brings lagging live replicas (recovered after missing committed
// rounds) onto the fleet's newest model: each laggard pulls the model of the
// first replica at the maximum step through its own client and adopts it
// wholesale. Returns false — abort the round — when a pull fails.
func (st *shardedStepper) catchUp(ctx context.Context, live []int) (bool, error) {
	c := st.c
	maxStep, donor := uint32(0), -1
	for _, r := range live {
		if s := c.Server(r).Step(); donor < 0 || s > maxStep {
			maxStep, donor = s, r
		}
	}
	donorAddr := c.ServerAddr(donor)
	for _, r := range live {
		s := c.Server(r)
		if r == donor || s.Step() == maxStep {
			continue
		}
		vec, err := s.client.Call(ctx, donorAddr, rpc.Request{Kind: rpc.KindGetModel, Step: maxStep})
		if err != nil {
			return false, nil // donor unreachable: abort, retry next round
		}
		if err := s.AdoptState(vec, maxStep); err != nil {
			return false, err
		}
	}
	return true, nil
}

// round executes one sharded round. committed reports whether the round's
// update was applied (false: aborted cleanly, no replica wrote its model);
// a non-nil error is fatal to the run (configuration or rule failures, not
// transient network faults).
func (st *shardedStepper) round(i int) (committed bool, err error) {
	c, cfg := st.c, st.c.cfg
	ro := c.Roster()
	live := st.liveReplicas(ro)
	if len(live) == 0 {
		return false, fmt.Errorf("%w: all %d replicas crashed or departed", ErrConfig, len(ro.Servers))
	}
	st.obs = c.Server(live[0])
	S := cfg.Shards

	ctx, cancel := context.WithTimeout(context.Background(), cfg.PullTimeout)
	defer cancel()

	if ok, err := st.catchUp(ctx, live); !ok || err != nil {
		return false, err
	}

	owners := make([]int, S)
	for k := 0; k < S; k++ {
		o, failedOver, ok := st.ownerOf(ro, k)
		if !ok {
			return false, fmt.Errorf("%w: no live replica to own shard %d", ErrConfig, k)
		}
		owners[k] = o
		if failedOver {
			st.res.ShardFailovers++
		}
	}

	// Phase A: owners pull, aggregate and publish their parts.
	if st.coord {
		if ok, err := st.phaseACoord(ctx, ro, owners, i); !ok || err != nil {
			return false, err
		}
	} else {
		if ok, err := st.phaseAHier(ctx, ro, owners, i); !ok || err != nil {
			return false, err
		}
	}

	// Phase B: every live replica collects all parts and assembles the full
	// update. Nothing is applied until every assembly is complete and
	// width-checked — the all-or-abort barrier that rules out torn
	// (partial-coordinate) model writes.
	assembled := make([]tensor.Vector, len(live))
	for idx, r := range live {
		var (
			vec tensor.Vector
			ok  bool
		)
		if st.coord {
			vec, ok, err = st.assembleCoord(ctx, r, owners, i, idx == 0)
		} else {
			vec, ok, err = st.assembleHier(ctx, ro, r, owners, i, idx == 0)
		}
		if !ok || err != nil {
			return false, err
		}
		assembled[idx] = vec
	}
	for idx, r := range live {
		if err := c.Server(r).UpdateModel(assembled[idx]); err != nil {
			return false, err
		}
	}
	return true, nil
}

// phaseACoord runs Phase A for a coordinate-wise rule: shard k's owner pulls
// the [lo_k, hi_k) slice of a full worker quorum and aggregates it with the
// flat rule restricted to those coordinates — exactly the flat aggregation's
// arithmetic on that slice, which is what makes reassembly bit-identical.
func (st *shardedStepper) phaseACoord(ctx context.Context, ro Roster, owners []int, i int) (bool, error) {
	c, cfg := st.c, st.c.cfg
	qw := ro.NW()
	if !cfg.SyncQuorum {
		qw = ro.NW() - ro.FW
	}
	for k := range owners {
		agg, err := st.shardAggregator(k, cfg.Rule, qw, ro.FW)
		if err != nil {
			return false, err
		}
		s := c.Server(owners[k])
		lo, hi := st.plan.Range(k)
		commDone := c.phaseTimer()
		grads, err := s.GetGradientsRange(ctx, i, qw, uint16(k), lo, hi)
		st.res.Breakdown.AddComm(commDone())
		if err != nil {
			return false, nil // quorum miss: abort, no part published
		}
		aggDone := c.phaseTimer()
		part, err := agg.Aggregate(grads)
		st.res.Breakdown.AddAgg(aggDone())
		if err != nil {
			return false, err // rule failure on a full quorum is a bug, not a fault
		}
		s.SetShardPart(uint32(i), uint16(k), part)
	}
	return true, nil
}

// phaseAHier runs Phase A for a selection rule: shard k's owner pulls full
// gradients from group k's workers only and runs the rule locally over the
// group, tolerating up to FW Byzantine members (the declared-Byzantine
// workers are the roster's last FW, so whatever groups they land in stay
// within the per-group budget the drift bounds assume).
func (st *shardedStepper) phaseAHier(ctx context.Context, ro Roster, owners []int, i int) (bool, error) {
	c, cfg := st.c, st.c.cfg
	groups, err := shard.NewGroups(ro.NW(), len(owners))
	if err != nil {
		return false, fmt.Errorf("%w: sharded: %v", ErrConfig, err)
	}
	for k := range owners {
		glo, ghi := groups.Range(k)
		agg, err := st.shardAggregator(k, cfg.Rule, ghi-glo, ro.FW)
		if err != nil {
			return false, err
		}
		s := c.Server(owners[k])
		commDone := c.phaseTimer()
		grads, err := s.GetGradientsFrom(ctx, i, ro.WorkerAddrs[glo:ghi], ghi-glo)
		st.res.Breakdown.AddComm(commDone())
		if err != nil {
			return false, nil // group quorum miss: abort
		}
		aggDone := c.phaseTimer()
		winner, err := agg.Aggregate(grads)
		st.res.Breakdown.AddAgg(aggDone())
		if err != nil {
			return false, err
		}
		s.SetShardPart(uint32(i), uint16(k), winner)
	}
	return true, nil
}

// shardAggregator returns shard k's cached Phase A aggregator, rebuilt only
// when the shape under it changes (a roster transition between rounds).
func (st *shardedStepper) shardAggregator(k int, rule string, n, f int) (*Aggregator, error) {
	slot, key := st.aggs[k], st.keys[k]
	agg, err := cachedAggregator(&slot, &key, rule, n, f)
	if err != nil {
		return nil, err
	}
	st.aggs[k], st.keys[k] = slot, key
	return agg, nil
}

// assembleCoord collects all S coordinate parts at replica r and lays them
// into the replica's scratch buffer. The buffer is pre-filled with NaN and
// every part's width is checked against its shard range before the copy, so
// an incomplete or torn reassembly can never masquerade as a full update:
// the final NaN sweep is the tripwire (shard ranges tile [0, d), so a fully
// collected round leaves no NaN behind).
func (st *shardedStepper) assembleCoord(ctx context.Context, r int, owners []int, i int, record bool) (tensor.Vector, bool, error) {
	c := st.c
	d := st.plan.Dim()
	buf := tensor.Resize(st.scratch[r], d)
	st.scratch[r] = buf
	nan := math.NaN()
	for j := range buf {
		buf[j] = nan
	}
	sr := c.Server(r)
	for k, owner := range owners {
		lo, hi := st.plan.Range(k)
		part, ok, err := st.collectPart(ctx, sr, r, owner, uint32(i), uint16(k), lo, hi, record)
		if !ok || err != nil {
			return nil, false, err
		}
		if len(part) != hi-lo {
			return nil, false, nil // torn part: abort before any write
		}
		copy(buf[lo:hi], part)
	}
	for j := range buf {
		if buf[j] != buf[j] {
			return nil, false, fmt.Errorf("reassembly left coordinate %d unwritten at replica %d", j, r)
		}
	}
	return buf, true, nil
}

// assembleHier collects the S group winners at replica r and runs the root
// selection round over them — every replica derives the identical root
// output from the identical winner set, which is what keeps the replicas'
// models in lockstep without a model-exchange phase.
func (st *shardedStepper) assembleHier(ctx context.Context, ro Roster, r int, owners []int, i int, record bool) (tensor.Vector, bool, error) {
	c, cfg := st.c, st.c.cfg
	d := cfg.Arch.Dim()
	rootF, err := shard.RootF(cfg.Rule, len(owners))
	if err != nil {
		return nil, false, fmt.Errorf("%w: sharded: %v", ErrConfig, err)
	}
	rootSlot, rootKey := st.rootAggs[r], st.rootKeys[r]
	rootAgg, err := cachedAggregator(&rootSlot, &rootKey, cfg.Rule, len(owners), rootF)
	if err != nil {
		return nil, false, err
	}
	st.rootAggs[r], st.rootKeys[r] = rootSlot, rootKey

	ws := st.winners[r][:0]
	sr := c.Server(r)
	for k, owner := range owners {
		part, ok, err := st.collectPart(ctx, sr, r, owner, uint32(i), uint16(k), 0, d, record)
		if !ok || err != nil {
			return nil, false, err
		}
		if len(part) != d {
			return nil, false, nil // torn winner: abort
		}
		ws = append(ws, part)
	}
	st.winners[r] = ws
	aggDone := c.phaseTimer()
	out, err := rootAgg.Aggregate(ws)
	if record {
		st.res.Breakdown.AddAgg(aggDone())
	}
	if err != nil {
		return nil, false, err
	}
	// Land the root output in the replica's own scratch: the root
	// aggregator's buffer is reused next round, and the commit loop applies
	// every replica's assembly only after all are collected.
	buf := tensor.Resize(st.scratch[r], d)
	st.scratch[r] = buf
	copy(buf, out)
	return buf, true, nil
}

// collectPart fetches one part at replica r: a local store read when r owns
// the shard, a KindGetShardPart pull from the owner otherwise. ok == false
// with a nil error means the part is unavailable (owner crashed mid-round,
// pull failed, stale step) — an abort, not a failure.
func (st *shardedStepper) collectPart(ctx context.Context, sr *Server, r, owner int, step uint32, k uint16, lo, hi int, record bool) (tensor.Vector, bool, error) {
	c := st.c
	if owner == r {
		part, ok := sr.shardPartLocal(step, k)
		if !ok {
			return nil, false, nil
		}
		return part, true, nil
	}
	commDone := c.phaseTimer()
	part, err := sr.GetShardPart(ctx, c.ServerAddr(owner), step, k, lo, hi)
	if record {
		st.res.Breakdown.AddComm(commDone())
	}
	if err != nil {
		return nil, false, nil
	}
	return part, true, nil
}
