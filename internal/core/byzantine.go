package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"

	"garfield/internal/rpc"
	"garfield/internal/tensor"
)

// ByzantineServer is the adversarial parameter-server replica of the MSMW
// topology: it wraps an ordinary Server's RPC surface and corrupts the
// models (and aggregated gradients) it serves to its peers. Where the
// attack-based Byzantine server of ServerConfig.Attack corrupts every reply
// the same way, the wrapper implements the behaviours that need server-side
// state or per-puller control — most importantly equivocation, the canonical
// Byzantine-consensus adversary that answers different pullers with
// different values in the same round. The MSMW model contraction (robust
// model aggregation every iteration) is exactly the defense the paper fields
// against such replicas; the chaos invariant harness proves it holds while a
// plain-averaging contraction diverges.
//
// All corruption is seeded and keyed by (request kind, step, puller
// identity), so deterministic-mode runs replay bit-identically: the same
// puller asking about the same step always receives the same corrupted
// vector, whatever the arrival order.
type ByzantineServer struct {
	inner *Server
	seed  uint64

	mu    sync.Mutex
	mode  string
	scale float64
}

// Byzantine-server modes accepted by NewByzantineServer and SetMode.
const (
	// ByzModeHonest serves the wrapped server's replies unchanged — the
	// declared-Byzantine-but-benign replica of the throughput experiments,
	// and the state a scheduled byz-server fault flips away from.
	ByzModeHonest = "honest"
	// ByzModeRandom replaces served vectors with seeded Gaussian noise at
	// the configured scale (the paper's random-vectors attack, server side).
	ByzModeRandom = "random"
	// ByzModeReversed serves the true vector scaled by -100 (the paper's
	// reversed-vectors attack, server side).
	ByzModeReversed = "reversed"
	// ByzModeStale serves the replica's state unchanged but never lets it
	// advance — an honest-looking replica frozen in the past. (An undriven
	// Byzantine replica is naturally stale; the mode exists to name that
	// behaviour explicitly and to pin it against future protocol changes
	// that might start driving Byzantine replicas.)
	ByzModeStale = "stale"
	// ByzModeEquivocate serves the true vector plus per-puller seeded noise:
	// every puller of the same step receives a different model, no two of
	// which agree — the split-brain adversary MSMW's contraction defuses.
	ByzModeEquivocate = "equivocate"
)

// ByzModes lists the recognized modes in a stable order.
func ByzModes() []string {
	return []string{ByzModeHonest, ByzModeRandom, ByzModeReversed,
		ByzModeStale, ByzModeEquivocate}
}

// ValidByzMode reports whether mode is recognized.
func ValidByzMode(mode string) bool {
	switch mode {
	case ByzModeHonest, ByzModeRandom, ByzModeReversed, ByzModeStale, ByzModeEquivocate:
		return true
	}
	return false
}

// DefaultByzScale is the noise scale of the random and equivocate modes when
// the config leaves it zero: large against unit-scale model parameters, so
// an undefended aggregation visibly diverges.
const DefaultByzScale = 10.0

// NewByzantineServer wraps inner with the given initial mode ("" means
// honest). seed drives all corruption noise; scale <= 0 selects
// DefaultByzScale.
func NewByzantineServer(inner *Server, mode string, seed uint64, scale float64) (*ByzantineServer, error) {
	if inner == nil {
		return nil, fmt.Errorf("%w: byzantine server needs an inner server", ErrConfig)
	}
	if mode == "" {
		mode = ByzModeHonest
	}
	if !ValidByzMode(mode) {
		return nil, fmt.Errorf("%w: unknown byzantine server mode %q (want one of %v)",
			ErrConfig, mode, ByzModes())
	}
	if scale <= 0 {
		scale = DefaultByzScale
	}
	return &ByzantineServer{inner: inner, seed: seed, mode: mode, scale: scale}, nil
}

var _ rpc.Handler = (*ByzantineServer)(nil)

// Mode returns the current behaviour.
func (b *ByzantineServer) Mode() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.mode
}

// SetMode switches the behaviour at runtime — the byz-server scheduled fault
// of the chaos engine: a replica that served honestly for the first k
// iterations turns adversarial.
func (b *ByzantineServer) SetMode(mode string) error {
	if mode == "" {
		mode = ByzModeHonest
	}
	if !ValidByzMode(mode) {
		return fmt.Errorf("%w: unknown byzantine server mode %q (want one of %v)",
			ErrConfig, mode, ByzModes())
	}
	b.mu.Lock()
	b.mode = mode
	b.mu.Unlock()
	return nil
}

// Handle implements rpc.Handler: model and aggregated-gradient pulls are
// answered through the current mode's corruption; everything else (pings,
// unknown kinds) passes through to the wrapped server.
func (b *ByzantineServer) Handle(req rpc.Request) rpc.Response {
	switch req.Kind {
	case rpc.KindGetModel, rpc.KindGetAggrGrad:
	default:
		return b.inner.Handle(req)
	}
	b.mu.Lock()
	mode, scale := b.mode, b.scale
	b.mu.Unlock()

	resp := b.inner.Handle(req)
	if mode == ByzModeHonest || mode == ByzModeStale || !resp.OK {
		// Stale is honesty without progress: an undriven replica's state
		// already never advances, so the reply is served as-is.
		return resp
	}
	v := resp.Vec
	switch mode {
	case ByzModeRandom:
		rng := b.replyRNG(req, "")
		resp.Vec = rng.NormalVector(len(v), 0, scale)
	case ByzModeReversed:
		out := v.Clone()
		out.ScaleInPlace(-100)
		resp.Vec = out
	case ByzModeEquivocate:
		rng := b.replyRNG(req, req.From)
		out := v.Clone()
		for i := range out {
			out[i] += scale * rng.Norm()
		}
		resp.Vec = out
	}
	return resp
}

// replyRNG derives the seeded noise stream for one reply: FNV-64a over the
// server seed, the request kind and step, and (for equivocation) the
// puller's identity. The same (kind, step, puller) triple always draws the
// same stream, which is what keeps deterministic-mode chaos runs
// bit-identical across repetitions.
func (b *ByzantineServer) replyRNG(req rpc.Request, from string) *tensor.RNG {
	h := fnv.New64a()
	var buf [13]byte
	binary.LittleEndian.PutUint64(buf[:8], b.seed)
	buf[8] = byte(req.Kind)
	binary.LittleEndian.PutUint32(buf[9:], req.Step)
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(from))
	return tensor.NewRNG(h.Sum64())
}
