package core

import (
	"errors"
	"strings"
	"testing"

	"garfield/internal/rpc"
)

// byzFixture builds a tiny MSMW cluster with one declared-Byzantine replica
// and returns it plus that replica's index.
func byzFixture(t *testing.T, mode string) (*Cluster, int) {
	t.Helper()
	cfg := baseConfig(t)
	cfg.NPS, cfg.FPS = 3, 1
	cfg.ServerByz = ByzServerConfig{Mode: mode}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, cfg.NPS - 1
}

// pullModel asks replica i for its model as an identified puller.
func pullModel(t *testing.T, c *Cluster, i int, from string, step uint32) rpc.Response {
	t.Helper()
	handler := rpc.Handler(c.ByzServer(i))
	if c.ByzServer(i) == nil {
		handler = c.Server(i)
	}
	return handler.Handle(rpc.Request{Kind: rpc.KindGetModel, Step: step, From: from})
}

func TestByzantineServerEquivocates(t *testing.T) {
	c, i := byzFixture(t, ByzModeEquivocate)
	honest := c.Server(i).Params()

	a := pullModel(t, c, i, "server-0", 5)
	b := pullModel(t, c, i, "server-1", 5)
	if !a.OK || !b.OK {
		t.Fatal("equivocating server declined to serve")
	}
	if a.Vec.Equal(b.Vec) {
		t.Fatal("equivocating server served identical models to different pullers")
	}
	if a.Vec.Equal(honest) || b.Vec.Equal(honest) {
		t.Fatal("equivocating server served the honest model")
	}
	// Determinism: the same (step, puller) pair must replay bit-identically.
	a2 := pullModel(t, c, i, "server-0", 5)
	if !a2.Vec.Equal(a.Vec) {
		t.Fatal("equivocation is not deterministic per (step, puller)")
	}
	// A new step draws fresh noise.
	a3 := pullModel(t, c, i, "server-0", 6)
	if a3.Vec.Equal(a.Vec) {
		t.Fatal("equivocation noise did not change across steps")
	}
}

func TestByzantineServerModes(t *testing.T) {
	c, i := byzFixture(t, ByzModeHonest)
	honest := c.Server(i).Params()

	if got := pullModel(t, c, i, "server-0", 1); !got.OK || !got.Vec.Equal(honest) {
		t.Fatal("honest mode corrupted the model")
	}
	if err := c.SetServerByzMode(i, ByzModeReversed); err != nil {
		t.Fatal(err)
	}
	rev := pullModel(t, c, i, "server-0", 1)
	want := honest.Clone()
	want.ScaleInPlace(-100)
	if !rev.Vec.Equal(want) {
		t.Fatal("reversed mode did not serve -100x the model")
	}
	if err := c.SetServerByzMode(i, ByzModeRandom); err != nil {
		t.Fatal(err)
	}
	r1 := pullModel(t, c, i, "server-0", 2)
	r2 := pullModel(t, c, i, "server-1", 2)
	if r1.Vec.Equal(honest) {
		t.Fatal("random mode served the honest model")
	}
	if !r1.Vec.Equal(r2.Vec) {
		t.Fatal("random mode must not equivocate: same step, same noise for all pullers")
	}
	if err := c.SetServerByzMode(i, ByzModeStale); err != nil {
		t.Fatal(err)
	}
	if got := pullModel(t, c, i, "server-0", 3); !got.Vec.Equal(honest) {
		t.Fatal("stale mode must serve the frozen state unchanged")
	}
	// Pings pass through in every mode.
	if got := c.ByzServer(i).Handle(rpc.Request{Kind: rpc.KindPing}); !got.OK {
		t.Fatal("ping did not pass through the wrapper")
	}
}

func TestSetServerByzModeRejectsHonestReplicaAndBadMode(t *testing.T) {
	c, i := byzFixture(t, ByzModeHonest)
	if err := c.SetServerByzMode(0, ByzModeRandom); err == nil ||
		!strings.Contains(err.Error(), "not a declared-Byzantine replica") {
		t.Fatalf("flipping an honest replica: err = %v", err)
	}
	if err := c.SetServerByzMode(i, "nonsense"); err == nil ||
		!strings.Contains(err.Error(), "unknown byzantine server mode") {
		t.Fatalf("bad mode: err = %v", err)
	}
	if err := c.SetServerByzMode(99, ByzModeRandom); err == nil {
		t.Fatal("out-of-range replica accepted")
	}
}

func TestConfigValidatesServerByz(t *testing.T) {
	cfg := baseConfig(t)
	cfg.ServerByz = ByzServerConfig{Mode: "wat"}
	if _, err := NewCluster(cfg); !errors.Is(err, ErrConfig) {
		t.Fatalf("unknown byz mode: err = %v", err)
	}
	cfg = baseConfig(t)
	cfg.NPS, cfg.FPS = 2, 0
	cfg.ServerByz = ByzServerConfig{Mode: ByzModeEquivocate}
	if _, err := NewCluster(cfg); err == nil ||
		!strings.Contains(err.Error(), "needs fps >= 1") {
		t.Fatalf("byz mode without declared replicas: err = %v", err)
	}
}

// TestMSMWContractionDefusesEquivocation is the paper's headline defense in
// miniature: with one equivocating replica out of three, the robust (median)
// model contraction keeps the honest replicas' model bounded, while swapping
// the contraction to plain averaging lets the equivocator drag the model
// away. The chaos harness runs the full-size version of this comparison.
func TestMSMWContractionDefusesEquivocation(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence comparison; skipped in -short runs")
	}
	run := func(modelRule string) float64 {
		cfg := baseConfig(t)
		cfg.NPS, cfg.FPS = 3, 1
		cfg.ModelRule = modelRule
		cfg.SyncQuorum = true
		cfg.ServerByz = ByzServerConfig{Mode: ByzModeEquivocate}
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.RunMSMW(RunOptions{Iterations: 25}); err != nil {
			t.Fatal(err)
		}
		return c.Server(0).Params().Norm()
	}
	robust := run("median")
	poisoned := run("average")
	if robust > 5 {
		t.Fatalf("median contraction drifted to norm %.2f under equivocation", robust)
	}
	if poisoned < 3*robust {
		t.Fatalf("average contraction norm %.2f vs median %.2f: equivocation should dominate the average",
			poisoned, robust)
	}
}
