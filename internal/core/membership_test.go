package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"garfield/internal/attack"
	"garfield/internal/rpc"
	"garfield/internal/tensor"
)

// TestJoinWorkerExpandsRosterMidRun: a worker joins between two training
// stretches; the transition is one epoch, the joiner is honest, and the
// runner drives the widened fleet without losing a round.
func TestJoinWorkerExpandsRosterMidRun(t *testing.T) {
	cfg := baseConfig(t)
	cfg.NPS, cfg.FPS = 1, 0
	c := newTestCluster(t, cfg)
	if _, err := c.RunSSMW(RunOptions{Iterations: 5}); err != nil {
		t.Fatal(err)
	}
	idx, err := c.JoinWorker()
	if err != nil {
		t.Fatal(err)
	}
	ro := c.Roster()
	if ro.Epoch != 1 {
		t.Fatalf("epoch after join = %d, want 1", ro.Epoch)
	}
	if ro.NW() != cfg.NW+1 || ro.Workers[ro.NW()-1] != idx {
		t.Fatalf("roster workers = %v, want %d ending in joiner %d", ro.Workers, cfg.NW+1, idx)
	}
	if ro.WorkersByz[ro.NW()-1] || ro.FW != cfg.FW {
		t.Fatalf("joiner must be honest: byz=%v fw=%d (declared %d)", ro.WorkersByz[ro.NW()-1], ro.FW, cfg.FW)
	}
	res, err := c.RunSSMW(RunOptions{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 5 {
		t.Fatalf("post-join updates = %d, want 5", res.Updates)
	}
}

// TestLeaveWorkerValidatesResilienceFloor: a departure that would drop the
// fleet below the GAR's n >= g(f) floor (or the async q = n - f quorum) is
// rejected and leaves the roster unchanged; a departure with slack drains.
func TestLeaveWorkerValidatesResilienceFloor(t *testing.T) {
	cfg := baseConfig(t)
	// median at fw=1 needs n >= 3 and q = n - f >= 3: nw=4 has no slack.
	cfg.NW, cfg.FW = 4, 1
	cfg.NPS, cfg.FPS = 1, 0
	tight := newTestCluster(t, cfg)
	if err := tight.LeaveWorker(0); !errors.Is(err, ErrConfig) {
		t.Fatalf("leave at the floor: err = %v, want ErrConfig", err)
	}
	if ro := tight.Roster(); ro.Epoch != 0 || ro.NW() != 4 {
		t.Fatalf("rejected leave mutated the roster: epoch=%d nw=%d", ro.Epoch, ro.NW())
	}

	cfg = baseConfig(t)
	cfg.NPS, cfg.FPS = 1, 0
	c := newTestCluster(t, cfg)
	if err := c.LeaveWorker(0); err != nil {
		t.Fatal(err)
	}
	if err := c.LeaveWorker(0); !errors.Is(err, ErrConfig) {
		t.Fatalf("double leave: err = %v, want ErrConfig", err)
	}
	ro := c.Roster()
	if ro.Epoch != 1 || ro.NW() != cfg.NW-1 || ro.Workers[0] != 1 {
		t.Fatalf("roster after drain = epoch %d workers %v", ro.Epoch, ro.Workers)
	}
	if res, err := c.RunSSMW(RunOptions{Iterations: 5}); err != nil || res.Updates != 5 {
		t.Fatalf("post-drain run: res=%+v err=%v", res, err)
	}
}

// TestJoinServerBootstrapsFromCheckpoint: a joining replica restores model,
// optimizer step and parameters from the v2 checkpoint — snapshotted live
// from the primary when no reader is given — and the widened replica set
// keeps training.
func TestJoinServerBootstrapsFromCheckpoint(t *testing.T) {
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	if _, err := c.RunMSMW(RunOptions{Iterations: 5}); err != nil {
		t.Fatal(err)
	}
	idx, err := c.JoinServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	pNew, stepNew := c.Server(idx).Snapshot()
	p0, step0 := c.Server(0).Snapshot()
	if stepNew != step0 || !pNew.Equal(p0) {
		t.Fatalf("joiner state (step %d) differs from the primary checkpoint (step %d)", stepNew, step0)
	}
	if ro := c.Roster(); ro.Epoch != 1 || ro.NPS() != cfg.NPS+1 {
		t.Fatalf("roster after server join: epoch=%d nps=%d", ro.Epoch, ro.NPS())
	}

	// Explicit checkpoint bytes bootstrap the same way.
	var buf bytes.Buffer
	if err := c.Server(1).SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	p1, step1 := c.Server(1).Snapshot()
	idx2, err := c.JoinServer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p2, step2 := c.Server(idx2).Snapshot()
	if step2 != step1 || !p2.Equal(p1) {
		t.Fatal("explicit checkpoint reader did not bootstrap the joiner")
	}

	res, err := c.RunMSMW(RunOptions{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 5 {
		t.Fatalf("post-join updates = %d, want 5", res.Updates)
	}
	if spread := c.ModelSpread(); spread > 1.0 {
		t.Fatalf("honest replica spread %v after joins, want near-zero", spread)
	}
}

// TestDepartRequiresFailureEvidence: crash-detected departure demands the
// failure detector's word — the transport marks the address crashed or its
// sever epoch advanced — while graceful leave stays available either way.
func TestDepartRequiresFailureEvidence(t *testing.T) {
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	if err := c.DepartWorker(2); !errors.Is(err, ErrConfig) {
		t.Fatalf("depart of a healthy worker: err = %v, want ErrConfig (no evidence)", err)
	}
	c.CrashWorker(2)
	if err := c.DepartWorker(2); err != nil {
		t.Fatal(err)
	}
	c.CrashServer(cfg.NPS - 1)
	if err := c.DepartServer(cfg.NPS - 1); err != nil {
		t.Fatal(err)
	}
	ro := c.Roster()
	if ro.Epoch != 2 || ro.NW() != cfg.NW-1 || ro.NPS() != cfg.NPS-1 {
		t.Fatalf("roster after departures: epoch=%d nw=%d nps=%d", ro.Epoch, ro.NW(), ro.NPS())
	}
}

// TestScaleAppliesBatchInOneEpoch: a batch add/remove is one roster epoch,
// validated as a whole; negative scale drains the highest-indexed members
// and a batch that would strand the fleet is rejected atomically.
func TestScaleAppliesBatchInOneEpoch(t *testing.T) {
	cfg := baseConfig(t)
	cfg.NPS, cfg.FPS = 1, 0
	c := newTestCluster(t, cfg)
	if err := c.ScaleWorkers(3); err != nil {
		t.Fatal(err)
	}
	if ro := c.Roster(); ro.Epoch != 1 || ro.NW() != cfg.NW+3 {
		t.Fatalf("after +3: epoch=%d nw=%d", ro.Epoch, ro.NW())
	}
	if err := c.ScaleWorkers(-3); err != nil {
		t.Fatal(err)
	}
	ro := c.Roster()
	if ro.Epoch != 2 || ro.NW() != cfg.NW {
		t.Fatalf("after -3: epoch=%d nw=%d", ro.Epoch, ro.NW())
	}
	if last := ro.Workers[ro.NW()-1]; last != cfg.NW-1 {
		t.Fatalf("scale down drained the wrong slots: workers = %v", ro.Workers)
	}
	if err := c.ScaleWorkers(-cfg.NW); !errors.Is(err, ErrConfig) {
		t.Fatalf("draining the whole fleet: err = %v, want ErrConfig", err)
	}
	if got := c.RosterEpoch(); got != 2 {
		t.Fatalf("rejected batch bumped the epoch to %d", got)
	}
}

// TestRecoverServerResetsDerivedState is the regression test of the full
// recovery contract: recovery clears the crash, drops the published
// aggregated gradient and the deterministic reply cache (state from the
// pre-crash timeline), and is a liveness event — the epoch must not move.
func TestRecoverServerResetsDerivedState(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Deterministic = true
	cfg.ServerAttack = attack.NewRandom(tensor.NewRNG(3), 1.0)
	c := newTestCluster(t, cfg)
	i := cfg.NPS - 1 // the declared-Byzantine replica carries the reply cache
	byz := c.Server(i)

	req := rpc.Request{Kind: rpc.KindGetModel, Step: 0}
	before := byz.Handle(req)
	if !before.OK {
		t.Fatal("Byzantine server should serve")
	}
	if again := byz.Handle(req); !again.Vec.Equal(before.Vec) {
		t.Fatal("deterministic reply cache not in effect")
	}
	byz.SetLatestAggrGrad(tensor.New(cfg.Arch.Dim()))

	c.CrashServer(i)
	if err := c.RecoverServer(i); err != nil {
		t.Fatal(err)
	}
	if got := c.RosterEpoch(); got != 0 {
		t.Fatalf("recovery bumped the membership epoch to %d; it is a liveness event", got)
	}
	after := byz.Handle(req)
	if !after.OK {
		t.Fatal("server should serve after recovery")
	}
	if after.Vec.Equal(before.Vec) {
		t.Fatal("pre-crash deterministic reply cache served after recovery")
	}
	if aggr := byz.Handle(rpc.Request{Kind: rpc.KindGetAggrGrad}); aggr.OK {
		t.Fatal("pre-crash aggregated gradient survived recovery")
	}

	if err := c.LeaveServer(i); err != nil {
		t.Fatal(err)
	}
	if err := c.RecoverServer(i); !errors.Is(err, ErrConfig) {
		t.Fatalf("recover of a departed replica: err = %v, want ErrConfig", err)
	}
}

// TestAsyncRebindsFetchersAcrossEpochs drives the live bounded-staleness
// engine through concurrent membership transitions: the per-replica fetcher
// set must rebind to the new roster (spawning for joiners, cancelling for
// leavers) without losing a single round. Run under -race this also checks
// the roster snapshot discipline of the async loop.
func TestAsyncRebindsFetchersAcrossEpochs(t *testing.T) {
	cfg := baseConfig(t)
	cfg.NPS, cfg.FPS = 1, 0
	c := newTestCluster(t, cfg)
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := c.RunAsyncSSMW(RunOptions{Iterations: 150})
		ch <- outcome{res, err}
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := c.JoinWorker(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := c.LeaveWorker(1); err != nil {
		t.Fatal(err)
	}
	got := <-ch
	if got.err != nil {
		t.Fatal(got.err)
	}
	if got.res.Updates != 150 {
		t.Fatalf("updates = %d, want 150 (churn must not cost rounds)", got.res.Updates)
	}
	if epoch := c.RosterEpoch(); epoch != 2 {
		t.Fatalf("epoch = %d, want 2", epoch)
	}
}
