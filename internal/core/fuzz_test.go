package core

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"garfield/internal/model"
	"garfield/internal/rpc"
	"garfield/internal/sgd"
	"garfield/internal/tensor"
	"garfield/internal/transport"
)

// fuzzServer builds a minimal server (4-parameter linear model) for
// checkpoint decoding; it never trains.
func fuzzServer(tb testing.TB) *Server {
	arch, err := model.NewLinearSoftmax(1, 2)
	if err != nil {
		tb.Fatal(err)
	}
	opt, err := sgd.New(sgd.Constant(0.1))
	if err != nil {
		tb.Fatal(err)
	}
	s, err := NewServer(ServerConfig{
		Arch:      arch,
		Init:      tensor.New(arch.Dim()),
		Optimizer: opt,
		Client:    rpc.NewClient(transport.NewMem()),
	})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// validCheckpoint returns the canonical v2 bytes of a fresh fuzz server.
func validCheckpoint(tb testing.TB) []byte {
	var buf bytes.Buffer
	if err := fuzzServer(tb).SaveCheckpoint(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzCheckpointDecode fuzzes the v2 checksum-trailer checkpoint format: a
// checkpoint file is attacker-controllable state (it sits on disk between
// crash and recovery), so LoadCheckpoint must never panic, must reject every
// mutation of a valid checkpoint (the checksum trailer covers all bytes),
// and must leave the server untouched on rejection.
func FuzzCheckpointDecode(f *testing.F) {
	valid := validCheckpoint(f)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // truncated trailer
	f.Add(valid[:12])           // header only
	mutated := append([]byte(nil), valid...)
	mutated[14] ^= 0xff // payload flip under an intact header
	f.Add(mutated)
	f.Add(append(append([]byte(nil), valid...), 0xde, 0xad)) // trailing junk

	f.Fuzz(func(t *testing.T, data []byte) {
		s := fuzzServer(t)
		before := s.Params()
		err := s.LoadCheckpoint(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadCheckpoint) {
				t.Fatalf("non-checkpoint error class: %v", err)
			}
			if !s.Params().Equal(before) {
				t.Fatal("rejected checkpoint mutated server state")
			}
			return
		}
		// Anything accepted must survive a save/load round trip to the
		// same state and step.
		var buf bytes.Buffer
		if err := s.SaveCheckpoint(&buf); err != nil {
			t.Fatalf("re-save: %v", err)
		}
		s2 := fuzzServer(t)
		if err := s2.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-load: %v", err)
		}
		if !s2.Params().Equal(s.Params()) || s2.Step() != s.Step() {
			t.Fatal("accepted checkpoint does not round trip")
		}
	})
}

// TestCheckpointRejectsEveryByteFlip locks the trailer's coverage
// exhaustively at unit-test scale: flipping any single byte of a valid
// checkpoint must fail the load. (The fuzzer explores beyond this; the table
// keeps the guarantee even in -short CI runs.)
func TestCheckpointRejectsEveryByteFlip(t *testing.T) {
	valid := validCheckpoint(t)
	for i := range valid {
		mutated := append([]byte(nil), valid...)
		mutated[i] ^= 0x20
		s := fuzzServer(t)
		if err := s.LoadCheckpoint(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("flip at byte %d of %d accepted", i, len(valid))
		}
	}
	// And the unmutated checkpoint still loads.
	if err := fuzzServer(t).LoadCheckpoint(bytes.NewReader(valid)); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRejectsTruncationToEveryLength guards the partial-write
// case the v2 trailer exists for.
func TestCheckpointRejectsTruncationToEveryLength(t *testing.T) {
	valid := validCheckpoint(t)
	for n := 0; n < len(valid); n++ {
		s := fuzzServer(t)
		if err := s.LoadCheckpoint(io.LimitReader(bytes.NewReader(valid), int64(n))); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(valid))
		}
	}
}
