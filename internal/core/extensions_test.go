package core

import (
	"bytes"
	"errors"
	"testing"

	"garfield/internal/attack"
	"garfield/internal/model"
	"garfield/internal/rpc"
	"garfield/internal/tensor"
)

// Tests for the extension features: worker-side momentum, self-estimated
// peers for collusion attacks, and server checkpointing.

func TestWorkerMomentumSmoothsReplies(t *testing.T) {
	arch, train, _ := testTask(t)
	w, err := NewWorker(arch, train, 8, 1, nil, WithWorkerMomentum(0.9))
	if err != nil {
		t.Fatal(err)
	}
	params := arch.InitParams(tensor.NewRNG(1))
	// With mu=0.9 the velocity accumulates: after k identical-direction
	// gradients its norm approaches 1/(1-mu) = 10x a single gradient.
	first, err := w.ComputeGradient(params)
	if err != nil {
		t.Fatal(err)
	}
	var last tensor.Vector
	for i := 0; i < 40; i++ {
		last, err = w.ComputeGradient(params)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.Norm() < 3*first.Norm() {
		t.Fatalf("momentum did not accumulate: first %v, last %v", first.Norm(), last.Norm())
	}
}

func TestWorkerMomentumReducesVariance(t *testing.T) {
	arch, train, _ := testTask(t)
	params := arch.InitParams(tensor.NewRNG(1))

	// Measure reply variance across steps, raw vs momentum workers. The
	// momentum stream is an EMA, so consecutive replies fluctuate less
	// around their running mean (relative to their norm).
	spread := func(momentum float64) float64 {
		var opts []WorkerOption
		if momentum > 0 {
			opts = append(opts, WithWorkerMomentum(momentum))
		}
		w, err := NewWorker(arch, train, 4, 2, nil, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var replies []tensor.Vector
		for i := 0; i < 30; i++ {
			g, err := w.ComputeGradient(params)
			if err != nil {
				t.Fatal(err)
			}
			replies = append(replies, g)
		}
		// Relative step-to-step change over the last half (after the EMA
		// warms up).
		var rel float64
		var count int
		for i := 16; i < len(replies); i++ {
			diff, err := replies[i].Sub(replies[i-1])
			if err != nil {
				t.Fatal(err)
			}
			rel += diff.Norm() / replies[i].Norm()
			count++
		}
		return rel / float64(count)
	}
	raw := spread(0)
	smoothed := spread(0.9)
	if smoothed >= raw {
		t.Fatalf("momentum did not reduce relative gradient variability: raw %v, momentum %v", raw, smoothed)
	}
}

func TestWorkerMomentumValidation(t *testing.T) {
	arch, train, _ := testTask(t)
	if _, err := NewWorker(arch, train, 8, 1, nil, WithWorkerMomentum(1.0)); !errors.Is(err, ErrConfig) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewWorker(arch, train, 8, 1, nil, WithSelfEstimatedPeers(0)); !errors.Is(err, ErrConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestSelfEstimatedPeersEnableLittleIsEnough(t *testing.T) {
	arch, train, _ := testTask(t)
	// A LIE worker with self-estimated peers must produce a reply close
	// to the honest mean (that is the attack's stealth property), unlike
	// the peer-less fallback which reverses the gradient.
	lie := attack.LittleIsEnough{Z: 1.0}
	withPeers, err := NewWorker(arch, train, 8, 1, lie, WithSelfEstimatedPeers(5))
	if err != nil {
		t.Fatal(err)
	}
	honest, err := NewWorker(arch, train, 8, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	params := arch.InitParams(tensor.NewRNG(1))
	hResp := honest.Handle(rpc.Request{Kind: rpc.KindGetGradient, Vec: params})
	aResp := withPeers.Handle(rpc.Request{Kind: rpc.KindGetGradient, Vec: params})
	if !hResp.OK || !aResp.OK {
		t.Fatal("both should reply")
	}
	dot, err := aResp.Vec.Dot(hResp.Vec)
	if err != nil {
		t.Fatal(err)
	}
	// Stealthy: positively correlated with the honest direction (the
	// peer-less fallback would be anti-correlated).
	if dot <= 0 {
		t.Fatalf("LIE with peers should stay stealthy (dot = %v)", dot)
	}
}

func TestLiveLittleIsEnoughAgainstMSMW(t *testing.T) {
	cfg := baseConfig(t)
	cfg.FW = 1
	cfg.WorkerAttack = attack.LittleIsEnough{Z: 1.5}
	cfg.AttackSelfPeers = 4
	c := newTestCluster(t, cfg)
	res, err := c.RunMSMW(RunOptions{Iterations: 80, AccEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	// A single stealthy attacker among 7 workers must not prevent
	// convergence under Median aggregation.
	if acc := res.Accuracy.Last(); acc < 0.75 {
		t.Fatalf("msmw under LIE accuracy = %v", acc)
	}
}

func TestClusterWorkerMomentumConverges(t *testing.T) {
	cfg := baseConfig(t)
	cfg.WorkerMomentum = 0.5
	cfg.LR = nil // default
	c := newTestCluster(t, cfg)
	res, err := c.RunSSMW(RunOptions{Iterations: 80, AccEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy.Last(); acc < 0.8 {
		t.Fatalf("worker-momentum ssmw accuracy = %v", acc)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	s := c.Server(0)
	if _, err := c.RunSSMW(RunOptions{Iterations: 10}); err != nil {
		t.Fatal(err)
	}
	before := s.Params()
	step := s.Step()

	var buf bytes.Buffer
	if err := s.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Scramble the state, then restore.
	if err := s.WriteModel(tensor.New(cfg.Arch.Dim())); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	after := s.Params()
	if s.Step() != step {
		t.Fatalf("step = %d, want %d", s.Step(), step)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("params not restored")
		}
	}
}

func TestCheckpointCorruptData(t *testing.T) {
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	s := c.Server(0)

	if err := s.LoadCheckpoint(bytes.NewReader([]byte{1, 2, 3})); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("short data err = %v", err)
	}
	// Valid header structure, wrong magic.
	bad := make([]byte, 12+12)
	if err := s.LoadCheckpoint(bytes.NewReader(bad)); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("bad magic err = %v", err)
	}
}

func TestCheckpointDimensionMismatch(t *testing.T) {
	cfg := baseConfig(t)
	c := newTestCluster(t, cfg)
	var buf bytes.Buffer
	if err := c.Server(0).SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// A cluster with a different architecture must reject the checkpoint.
	cfg2 := baseConfig(t)
	mlp, err := model.NewMLP(16, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg2.Arch = mlp
	c2 := newTestCluster(t, cfg2)
	if err := c2.Server(0).LoadCheckpoint(&buf); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("err = %v", err)
	}
}
