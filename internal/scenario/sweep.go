package scenario

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"garfield/internal/attack"
	"garfield/internal/metrics"
)

// Matrix describes a scenario sweep: a base spec crossed with per-dimension
// value lists. Empty dimensions keep the base spec's value, so a Matrix
// with only Rules set sweeps GARs over one fixed deployment. Expansion is
// a cartesian product in declaration order (topology outermost, f
// innermost), which fixes cell indices and artifact ordering.
type Matrix struct {
	// Name labels the sweep in reports.
	Name string `json:"name,omitempty"`
	// Base is the spec every cell starts from.
	Base Spec `json:"base"`
	// Topologies, Rules, Attacks and FWs are the swept dimensions.
	// Attacks name worker attacks; "none" (or "") clears the base's.
	Topologies []string `json:"topologies,omitempty"`
	Rules      []string `json:"rules,omitempty"`
	Attacks    []string `json:"attacks,omitempty"`
	FWs        []int    `json:"fws,omitempty"`
}

// Cell is one expanded matrix entry.
type Cell struct {
	// Index is the cell's position in expansion order.
	Index int `json:"index"`
	// ID is the cell's stable identifier ("msmw/krum/reversed/fw=2").
	ID string `json:"id"`
	// Spec is the fully-derived cell spec.
	Spec Spec `json:"spec"`
}

// cellSeed derives a cell's seed from the base seed and the cell id: a
// 64-bit FNV-1a hash of the id folded into the base. Identical (base seed,
// id) pairs — and therefore identical sweeps — always produce identical
// cell seeds, while distinct cells get decorrelated streams.
func cellSeed(base uint64, id string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return base ^ h.Sum64()
}

// attackSeed derives a cell's stochastic-attack seed by domain separation:
// the same FNV construction as cellSeed, over the id extended with an
// "/attack" suffix no cell id can end in (ids end in "fw=<n>"). The earlier
// XOR-constant derivation (cellSeed ^ 0xa77ac) could collide with another
// cell's cluster seed — two FNV outputs an XOR-constant apart — silently
// correlating that cell's sharding/init/sampling stream with this cell's
// attack stream; hashing a distinct message cannot.
func attackSeed(base uint64, id string) uint64 {
	return cellSeed(base, id+"/attack")
}

// Expand materializes the cartesian product into concrete cells. Per cell
// it overrides topology, rule, worker attack and fw; derives the cell seed
// via cellSeed (the cluster seed and, for stochastic attacks, the attack
// seed); and stamps name and id. The task (model, dataset, iterations)
// stays the base's, so cells remain comparable.
//
// Every cell runs in deterministic mode regardless of the base spec — the
// sweep's contract is reproducible artifacts. One timing dependence remains
// out of reach: replicated topologies without SyncQuorum collect from the
// fastest q < n peers, and *which* peers answer is inherently
// scheduling-dependent, so give the base SyncQuorum (as sweep-default does)
// when bit-identical artifacts matter.
func (m Matrix) Expand() []Cell {
	topos := m.Topologies
	if len(topos) == 0 {
		topos = []string{m.Base.Topology}
	}
	rules := m.Rules
	if len(rules) == 0 {
		rules = []string{m.Base.Rule}
	}
	attacks := m.Attacks
	if len(attacks) == 0 {
		attacks = []string{m.Base.WorkerAttack.Name}
	}
	fws := m.FWs
	if len(fws) == 0 {
		fws = []int{m.Base.FW}
	}

	cells := make([]Cell, 0, len(topos)*len(rules)*len(attacks)*len(fws))
	for _, topo := range topos {
		for _, rule := range rules {
			for _, atk := range attacks {
				for _, fw := range fws {
					atkLabel := atk
					if atkLabel == "" {
						atkLabel = attack.NameNone
					}
					id := fmt.Sprintf("%s/%s/%s/fw=%d", topo, rule, atkLabel, fw)
					sp := m.Base.clone()
					sp.Name = id
					sp.Description = ""
					sp.Deterministic = true
					sp.Topology = topo
					sp.Rule = rule
					sp.FW = fw
					sp.Seed = cellSeed(m.Base.Seed, id)
					if atkLabel == attack.NameNone {
						sp.WorkerAttack = AttackSpec{}
					} else {
						sp.WorkerAttack.Name = atk
						if sp.WorkerAttack.stochastic() {
							sp.WorkerAttack.Seed = attackSeed(m.Base.Seed, id)
						}
					}
					cells = append(cells, Cell{Index: len(cells), ID: id, Spec: sp})
				}
			}
		}
	}
	return cells
}

// SweepOptions tunes a sweep run.
type SweepOptions struct {
	// Parallel bounds concurrently-running cells (0: GOMAXPROCS).
	Parallel int
	// OutDir, when non-empty, receives the artifacts: one accuracy-curve
	// CSV per cell, a summary.csv, and the aggregate sweep.json report.
	OutDir string
	// Timing adds the wall-clock columns (wall_ms, updates_per_sec) to
	// the report and summary. Off by default: timing is the one
	// non-deterministic part of a cell result, and leaving it out keeps
	// sweep artifacts bit-identical across runs at the same seed.
	Timing bool
}

// CellResult is one cell's outcome in the aggregate report. All fields
// except the timing pair are deterministic functions of the cell spec.
type CellResult struct {
	ID       string `json:"id"`
	Topology string `json:"topology"`
	Rule     string `json:"rule"`
	Attack   string `json:"attack,omitempty"`
	NW       int    `json:"nw"`
	FW       int    `json:"fw"`
	Seed     uint64 `json:"seed"`

	// Status is "ok" or "error"; Error carries the failure (spec
	// validation or run error). A failing cell never aborts the sweep.
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	// FinalAccuracy and MaxAccuracy summarize the accuracy curve;
	// Updates is the number of model updates applied.
	FinalAccuracy float64 `json:"final_accuracy"`
	MaxAccuracy   float64 `json:"max_accuracy"`
	Updates       int     `json:"updates"`

	// WireIn and WireOut are the cell's total RPC frame bytes read/written
	// by the cluster's pooled clients; ReplyPayloadBytes and ReplyFP64Bytes
	// are the pull-reply bodies as shipped versus their fp64-passthrough
	// baseline (ratio = compression factor). All four are deterministic
	// functions of the cell spec — deterministic mode fixes call counts and
	// payload sizes — so they sit in the bit-identical artifact set, not
	// with the timing pair.
	WireIn            uint64 `json:"wire_in"`
	WireOut           uint64 `json:"wire_out"`
	ReplyPayloadBytes uint64 `json:"reply_payload_bytes"`
	ReplyFP64Bytes    uint64 `json:"reply_fp64_bytes"`
	// ShardPulls and ShardReplyBytes count the shard-ranged pulls (and
	// their reply-body bytes) of sharded-topology cells: the ranged
	// gradient pulls plus the part-exchange calls of reassembly. Zero on
	// every other topology; deterministic like the other wire counters.
	ShardPulls      uint64 `json:"shard_pulls"`
	ShardReplyBytes uint64 `json:"shard_reply_bytes"`
	// Accuracy is the (iteration, accuracy) curve, also written as the
	// cell's CSV artifact.
	Accuracy []metrics.Point `json:"accuracy,omitempty"`

	// SimStepP50MS, SimStepP99MS and SimRoundsPerSec carry the
	// discrete-event engine's step-latency percentiles and
	// simulated-time throughput for cells running Engine "sim". Unlike
	// the wall-clock timing pair they are virtual-time derived, hence
	// deterministic per seed and part of the bit-identical artifact set.
	// Zero (and omitted from JSON) on live-engine cells.
	SimStepP50MS    float64 `json:"sim_step_p50_ms,omitempty"`
	SimStepP99MS    float64 `json:"sim_step_p99_ms,omitempty"`
	SimRoundsPerSec float64 `json:"sim_rounds_per_sec,omitempty"`

	// WallMS and UpdatesPerSec are only populated with
	// SweepOptions.Timing; they vary run to run.
	WallMS        float64 `json:"wall_ms,omitempty"`
	UpdatesPerSec float64 `json:"updates_per_sec,omitempty"`
}

// Report aggregates a sweep.
type Report struct {
	Name  string       `json:"name,omitempty"`
	Seed  uint64       `json:"seed"`
	Cells []CellResult `json:"cells"`
}

// RunSweep expands the matrix and runs every cell, Parallel at a time.
// Cell results keep expansion order regardless of completion order. When
// OutDir is set the artifacts are written before returning. Cell failures
// are recorded per cell; the returned error covers only artifact I/O.
func RunSweep(m Matrix, opt SweepOptions) (*Report, error) {
	cells := m.Expand()
	workers := opt.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	results := make([]CellResult, len(cells))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for _, cell := range cells {
		wg.Add(1)
		go func(cell Cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[cell.Index] = runCell(cell, opt.Timing)
		}(cell)
	}
	wg.Wait()

	rep := &Report{Name: m.Name, Seed: m.Base.Seed, Cells: results}
	if opt.OutDir != "" {
		if err := writeArtifacts(rep, opt); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

func runCell(cell Cell, timing bool) CellResult {
	sp := cell.Spec
	out := CellResult{
		ID: cell.ID, Topology: sp.Topology, Rule: sp.Rule,
		Attack: sp.WorkerAttack.Name,
		NW:     sp.NW, FW: sp.FW, Seed: sp.Seed,
	}
	res, simM, err := RunWithSimMetrics(sp)
	if err != nil {
		out.Status = "error"
		out.Error = err.Error()
		return out
	}
	out.Status = "ok"
	if simM != nil {
		out.SimStepP50MS = simM.StepP50MS
		out.SimStepP99MS = simM.StepP99MS
		out.SimRoundsPerSec = simM.RoundsPerSec
	}
	out.FinalAccuracy = res.Accuracy.Last()
	out.MaxAccuracy = res.Accuracy.MaxY()
	out.Updates = res.Updates
	out.WireIn = res.Wire.BytesIn
	out.WireOut = res.Wire.BytesOut
	out.ReplyPayloadBytes = res.Wire.ReplyPayloadBytes
	out.ReplyFP64Bytes = res.Wire.ReplyFP64Bytes
	out.ShardPulls = res.Wire.ShardPulls
	out.ShardReplyBytes = res.Wire.ShardReplyBytes
	out.Accuracy = append([]metrics.Point(nil), res.Accuracy.Points...)
	if timing {
		out.WallMS = float64(res.WallTime.Milliseconds())
		out.UpdatesPerSec = res.UpdatesPerSec()
	}
	return out
}

// cellFileName flattens a cell id into a file name ("msmw/krum/reversed/
// fw=2" -> "msmw_krum_reversed_fw2.csv").
func cellFileName(id string) string {
	return strings.NewReplacer("/", "_", "=", "").Replace(id) + ".csv"
}

// writeArtifacts emits the per-cell accuracy CSVs, the summary CSV and the
// JSON report into opt.OutDir.
func writeArtifacts(rep *Report, opt SweepOptions) error {
	if err := os.MkdirAll(opt.OutDir, 0o755); err != nil {
		return fmt.Errorf("scenario: sweep artifacts: %w", err)
	}
	for _, cell := range rep.Cells {
		if cell.Status != "ok" {
			continue
		}
		if err := writeCurveCSV(filepath.Join(opt.OutDir, cellFileName(cell.ID)), cell); err != nil {
			return err
		}
	}
	if err := writeSummaryCSV(filepath.Join(opt.OutDir, "summary.csv"), rep, opt.Timing); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(opt.OutDir, "sweep.json"))
	if err != nil {
		return fmt.Errorf("scenario: sweep report: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("scenario: sweep report: %w", err)
	}
	return f.Close()
}

func writeCurveCSV(path string, cell CellResult) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("scenario: cell artifact: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"iteration", "accuracy"}); err != nil {
		return err
	}
	for _, p := range cell.Accuracy {
		if err := w.Write([]string{
			strconv.FormatFloat(p.X, 'g', -1, 64),
			strconv.FormatFloat(p.Y, 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Close()
}

func writeSummaryCSV(path string, rep *Report, timing bool) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("scenario: sweep summary: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"id", "topology", "rule", "attack", "nw", "fw", "seed",
		"status", "final_accuracy", "max_accuracy", "updates",
		"wire_in", "wire_out", "reply_payload_bytes", "reply_fp64_bytes",
		"shard_pulls", "shard_reply_bytes",
		"sim_step_p50_ms", "sim_step_p99_ms", "sim_rounds_per_sec"}
	if timing {
		header = append(header, "wall_ms", "updates_per_sec")
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for _, c := range rep.Cells {
		row := []string{
			c.ID, c.Topology, c.Rule, c.Attack,
			strconv.Itoa(c.NW), strconv.Itoa(c.FW),
			strconv.FormatUint(c.Seed, 10), c.Status,
			strconv.FormatFloat(c.FinalAccuracy, 'g', -1, 64),
			strconv.FormatFloat(c.MaxAccuracy, 'g', -1, 64),
			strconv.Itoa(c.Updates),
			strconv.FormatUint(c.WireIn, 10),
			strconv.FormatUint(c.WireOut, 10),
			strconv.FormatUint(c.ReplyPayloadBytes, 10),
			strconv.FormatUint(c.ReplyFP64Bytes, 10),
			strconv.FormatUint(c.ShardPulls, 10),
			strconv.FormatUint(c.ShardReplyBytes, 10),
			strconv.FormatFloat(c.SimStepP50MS, 'g', -1, 64),
			strconv.FormatFloat(c.SimStepP99MS, 'g', -1, 64),
			strconv.FormatFloat(c.SimRoundsPerSec, 'g', -1, 64),
		}
		if timing {
			row = append(row,
				strconv.FormatFloat(c.WallMS, 'g', -1, 64),
				strconv.FormatFloat(c.UpdatesPerSec, 'g', -1, 64))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Close()
}
