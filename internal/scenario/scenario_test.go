package scenario

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"garfield/internal/attack"
	"garfield/internal/tensor"
)

// validSpec returns a small spec that passes validation.
func validSpec() Spec {
	return Spec{
		Topology: TopoSSMW,
		NW:       5, FW: 1,
		Rule:      "median",
		Model:     ModelSpec{Kind: ModelLinear, In: 8, Classes: 4},
		Dataset:   DatasetSpec{Name: "t", Dim: 8, Classes: 4, Train: 120, Test: 40, Separation: 1, Noise: 1, Seed: 1},
		BatchSize: 8,
		Seed:      1, Iterations: 4,
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	for _, name := range Names() {
		sp, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		var buf bytes.Buffer
		if err := sp.EncodeJSON(&buf); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := DecodeJSON(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(sp, got) {
			t.Errorf("%s: round trip changed the spec:\nbefore %+v\nafter  %+v", name, sp, got)
		}
	}
}

func TestDecodeJSONRejectsUnknownFields(t *testing.T) {
	_, err := DecodeJSON(strings.NewReader(`{"topology": "ssmw", "typo_field": 3}`))
	if !errors.Is(err, ErrSpec) {
		t.Fatalf("want ErrSpec for unknown field, got %v", err)
	}
}

func TestAllPresetsValidate(t *testing.T) {
	for _, name := range Names() {
		sp, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("preset %q fails validation: %v", name, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("no-such-scenario"); !errors.Is(err, ErrUnknownScenario) {
		t.Fatalf("want ErrUnknownScenario, got %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string // substring of the error
	}{
		{"unknown topology", func(sp *Spec) { sp.Topology = "ring" }, "unknown topology"},
		{"missing topology", func(sp *Spec) { sp.Topology = "" }, "topology is required"},
		{"unknown rule", func(sp *Spec) { sp.Rule = "super-median" }, "unknown rule"},
		{"missing rule", func(sp *Spec) { sp.Rule = "" }, "rule is required"},
		// The paper's resilience preconditions: median needs n >= 2f+1,
		// krum n >= 2f+3, bulyan n >= 4f+3. Each violated shape must be
		// rejected at validation time, not at run time.
		{"median n <= 2f", func(sp *Spec) { sp.NW, sp.FW = 4, 2 }, "requirement"},
		{"krum n < 2f+3", func(sp *Spec) { sp.Rule = "krum"; sp.NW, sp.FW = 4, 1 }, "requirement"},
		{"bulyan n < 4f+3", func(sp *Spec) { sp.Rule = "bulyan"; sp.NW, sp.FW = 6, 1 }, "requirement"},
		{"fw out of range", func(sp *Spec) { sp.FW = 5 }, "fw=5"},
		{"unknown worker attack", func(sp *Spec) { sp.WorkerAttack.Name = "meteor" }, "unknown attack"},
		{"unknown server attack", func(sp *Spec) { sp.ServerAttack.Name = "meteor" }, "unknown attack"},
		{"unknown model kind", func(sp *Spec) { sp.Model.Kind = "transformer" }, "model kind"},
		{"model/dataset dim mismatch", func(sp *Spec) { sp.Model.In = 16 }, "dataset dim"},
		{"bad dataset", func(sp *Spec) { sp.Dataset.Train = 0 }, "dataset"},
		{"zero iterations", func(sp *Spec) { sp.Iterations = 0 }, "iterations"},
		{"msmw needs replicas", func(sp *Spec) { sp.Topology = TopoMSMW; sp.NPS = 1 }, "nps >= 2"},
		{"fault after out of range", func(sp *Spec) {
			sp.Faults = []Fault{{After: 9, Kind: FaultCrashWorker, Node: 0}}
		}, "outside"},
		{"fault unknown kind", func(sp *Spec) {
			sp.Faults = []Fault{{After: 1, Kind: "meteor", Node: 0}}
		}, "unknown kind"},
		{"fault node out of range", func(sp *Spec) {
			sp.Faults = []Fault{{After: 1, Kind: FaultCrashWorker, Node: 9}}
		}, "worker 9"},
		{"delay fault needs delay", func(sp *Spec) {
			sp.Faults = []Fault{{After: 1, Kind: FaultDelayWorker, Node: 0}}
		}, "delay_ms"},
		{"slow fault needs delay", func(sp *Spec) {
			sp.Faults = []Fault{{After: 1, Kind: FaultSlowWorker, Node: 0}}
		}, "delay_ms"},
		{"async unsupported topology", func(sp *Spec) {
			sp.Topology = TopoDecentralized
			sp.Async = true
		}, "async supports"},
		{"async contradicts sync quorum", func(sp *Spec) {
			sp.Async = true
			sp.SyncQuorum = true
		}, "sync_quorum"},
		{"async deterministic msmw", func(sp *Spec) {
			sp.Topology = TopoMSMW
			sp.NPS = 3
			sp.Async = true
			sp.Deterministic = true
		}, "replay"},
		{"staleness without async", func(sp *Spec) {
			sp.StalenessBound = 3
		}, "require async"},
		{"negative staleness bound", func(sp *Spec) {
			sp.Async = true
			sp.StalenessBound = -1
		}, "staleness_bound"},
		{"damping out of range", func(sp *Spec) {
			sp.Async = true
			sp.StalenessDamping = 1.5
		}, "staleness_damping"},
		{"async rule requirement at q = n - f", func(sp *Spec) {
			// krum needs n >= 2f+3: lockstep ssmw aggregates n=5 inputs
			// (fine at f=1), async only q = n - f = 4 (violating it). The
			// async shape must be what validation checks.
			sp.Rule = "krum"
			sp.Async = true
		}, "requirement"},
	}
	for _, tc := range cases {
		sp := validSpec()
		tc.mutate(&sp)
		err := sp.Validate()
		if !errors.Is(err, ErrSpec) {
			t.Errorf("%s: want ErrSpec, got %v", tc.name, err)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidSpecValidates(t *testing.T) {
	sp := validSpec()
	if err := sp.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestMaterializeDecentralizedForcesPairs(t *testing.T) {
	sp := validSpec()
	sp.Topology = TopoDecentralized
	sp.NPS, sp.FPS = 0, 0
	cfg, err := Materialize(sp)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NPS != sp.NW || cfg.FPS != 0 {
		t.Fatalf("decentralized must pair servers and workers: nps=%d fps=%d (nw=%d)",
			cfg.NPS, cfg.FPS, sp.NW)
	}
}

// TestLiveAttackOverridesOneSlot: a live instance replaces only its own
// slot; the other slot still materializes from its declarative spec.
func TestLiveAttackOverridesOneSlot(t *testing.T) {
	sp := validSpec()
	sp.Topology = TopoMSMW
	sp.NPS, sp.FPS = 4, 1
	custom := attack.Reversed{Factor: -7}
	sp.LiveWorkerAttack = custom
	sp.ServerAttack = AttackSpec{Name: attack.NameReversed}
	cfg, err := Materialize(sp)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WorkerAttack != custom {
		t.Errorf("live worker attack not used: %#v", cfg.WorkerAttack)
	}
	if got, ok := cfg.ServerAttack.(attack.Reversed); !ok || got.Factor != -100 {
		t.Errorf("declarative server attack dropped: %#v", cfg.ServerAttack)
	}
}

// TestAttackSeedSplit pins the seed-0 convention: a stochastic server attack
// without its own seed derives its stream by splitting the worker attack's
// generator, exactly as the paper's attack experiments construct it.
func TestAttackSeedSplit(t *testing.T) {
	sp := validSpec()
	sp.Topology = TopoMSMW
	sp.NPS, sp.FPS = 4, 1
	sp.WorkerAttack = AttackSpec{Name: attack.NameRandom, Seed: 42}
	sp.ServerAttack = AttackSpec{Name: attack.NameRandom}
	cfg, err := Materialize(sp)
	if err != nil {
		t.Fatal(err)
	}

	refRNG := tensor.NewRNG(42)
	refWorker := attack.NewRandom(refRNG, 1.0)
	refServer := attack.NewRandom(refRNG.Split(), 1.0)

	honest := tensor.New(6)
	for _, pair := range []struct {
		name     string
		got, ref attack.Attack
	}{
		{"worker", cfg.WorkerAttack, refWorker},
		{"server", cfg.ServerAttack, refServer},
	} {
		gotV, _ := pair.got.Apply(honest, nil)
		refV, _ := pair.ref.Apply(honest, nil)
		if !reflect.DeepEqual(gotV, refV) {
			t.Errorf("%s attack stream diverges from the split construction", pair.name)
		}
	}
}
