package scenario

import (
	"fmt"
	"time"

	"garfield/internal/attack"
	"garfield/internal/core"
	"garfield/internal/data"
	"garfield/internal/model"
	"garfield/internal/sgd"
	"garfield/internal/tensor"
)

// Materialize validates the spec and turns it into a wired core.Config:
// the model is constructed, the synthetic dataset generated, the
// learning-rate schedule and the attack behaviours instantiated. The
// decentralized topology forces nps == nw (one server+worker pair per node,
// as Listing 3 requires).
func Materialize(sp Spec) (core.Config, error) {
	if err := sp.Validate(); err != nil {
		return core.Config{}, err
	}
	arch, err := buildModel(sp.Model)
	if err != nil {
		return core.Config{}, fmt.Errorf("%w: model: %v", ErrSpec, err)
	}
	train, test, err := data.Generate(sp.Dataset.synthetic())
	if err != nil {
		return core.Config{}, fmt.Errorf("%w: dataset: %v", ErrSpec, err)
	}
	workerAtk, serverAtk, err := buildAttacks(sp)
	if err != nil {
		return core.Config{}, err
	}
	lr, err := buildLR(sp.LR)
	if err != nil {
		return core.Config{}, err
	}

	cfg := core.Config{
		Arch: arch, Train: train, Test: test,
		BatchSize: sp.BatchSize,
		NW:        sp.NW, FW: sp.FW,
		NPS: sp.NPS, FPS: sp.FPS,
		Shards:           sp.Shards,
		Rule:             sp.Rule,
		ModelRule:        sp.ModelRule,
		SyncQuorum:       sp.SyncQuorum,
		StalenessBound:   sp.StalenessBound,
		StalenessDamping: sp.StalenessDamping,
		ModelAggEvery:    sp.ModelAggEvery,
		Compression:      sp.Compression,
		TopK:             sp.TopK,
		NonIID:           sp.NonIID,
		ContractSteps:    sp.ContractSteps,
		WorkerAttack:     workerAtk,
		ServerAttack:     serverAtk,
		ServerByz:        core.ByzServerConfig{Mode: sp.ServerByzMode, Scale: sp.ServerByzScale},
		LR:               lr,
		Momentum:         sp.Momentum,
		WorkerMomentum:   sp.WorkerMomentum,
		AttackSelfPeers:  sp.AttackSelfPeers,
		Seed:             sp.Seed,
		Deterministic:    sp.Deterministic,
	}
	if sp.PullTimeoutMS > 0 {
		cfg.PullTimeout = time.Duration(sp.PullTimeoutMS) * time.Millisecond
	}
	if sp.Topology == TopoDecentralized {
		cfg.NPS, cfg.FPS = cfg.NW, 0
	}
	return cfg, nil
}

// NewCluster materializes the spec and spawns the in-process deployment.
// Callers own the cluster and must Close it; most callers want Run instead,
// which also drives the protocol and the fault schedule.
func NewCluster(sp Spec) (*core.Cluster, error) {
	cfg, err := Materialize(sp)
	if err != nil {
		return nil, err
	}
	return core.NewCluster(cfg)
}

func buildModel(m ModelSpec) (model.Model, error) {
	switch m.Kind {
	case ModelLinear:
		return model.NewLinearSoftmax(m.In, m.Classes)
	case ModelMLP:
		return model.NewMLP(m.In, m.Hidden, m.Classes)
	case ModelCNN:
		return model.NewCNN(m.H, m.W, m.C, m.Kernel, m.Filters, m.Classes)
	case ModelMNISTCNN:
		return model.NewMNISTCNN()
	}
	return nil, fmt.Errorf("unknown model kind %q", m.Kind)
}

func buildLR(lr LRSpec) (sgd.Schedule, error) {
	switch lr.Kind {
	case "":
		return nil, nil // core default: constant 0.1
	case LRConstant:
		return sgd.Constant(lr.Base), nil
	case LRInverseDecay:
		return sgd.InverseDecay{Base: lr.Base, HalfLife: lr.HalfLife}, nil
	case LRStepDecay:
		return sgd.StepDecay{Base: lr.Base, Factor: lr.Factor, Every: lr.Every}, nil
	}
	return nil, fmt.Errorf("%w: unknown lr kind %q", ErrSpec, lr.Kind)
}

// buildAttacks instantiates both attack slots. Randomness wiring follows
// the construction convention of the paper's attack experiments: a seeded
// stochastic worker attack owns a generator, and a stochastic server attack
// without its own seed splits its stream off that generator (both faulty
// sides then derive from one declared seed).
func buildAttacks(sp Spec) (worker, server attack.Attack, err error) {
	// A live instance overrides only its own slot; the other slot still
	// materializes from its declarative spec. (A declarative server
	// attack paired with a live worker attack has no worker generator to
	// split from, so a stochastic one falls back to its own Seed or the
	// package default stream.)
	worker, server = sp.LiveWorkerAttack, sp.LiveServerAttack
	var workerRNG *tensor.RNG
	if worker == nil && sp.WorkerAttack.enabled() {
		if sp.WorkerAttack.stochastic() && sp.WorkerAttack.Seed != 0 {
			workerRNG = tensor.NewRNG(sp.WorkerAttack.Seed)
		}
		worker, err = buildAttack(sp.WorkerAttack, workerRNG)
		if err != nil {
			return nil, nil, err
		}
	}
	if server == nil && sp.ServerAttack.enabled() {
		var rng *tensor.RNG
		switch {
		case sp.ServerAttack.stochastic() && sp.ServerAttack.Seed != 0:
			rng = tensor.NewRNG(sp.ServerAttack.Seed)
		case sp.ServerAttack.stochastic() && workerRNG != nil:
			rng = workerRNG.Split()
		}
		server, err = buildAttack(sp.ServerAttack, rng)
		if err != nil {
			return nil, nil, err
		}
	}
	return worker, server, nil
}

// buildAttack constructs one attack with spec parameters, falling back to
// the attack package's paper defaults for zero-valued fields. rng may be
// nil; stochastic attacks then use the package's fixed default stream.
func buildAttack(a AttackSpec, rng *tensor.RNG) (attack.Attack, error) {
	base, err := attack.New(a.Name, rng)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	switch atk := base.(type) {
	case *attack.Random:
		if a.Scale != 0 {
			return attack.NewRandom(rng, a.Scale), nil
		}
	case attack.Reversed:
		if a.Factor != 0 {
			atk.Factor = a.Factor
			return atk, nil
		}
	case attack.LittleIsEnough:
		if a.Z != 0 {
			atk.Z = a.Z
			return atk, nil
		}
	case attack.FallOfEmpires:
		if a.Epsilon != 0 {
			atk.Epsilon = a.Epsilon
			return atk, nil
		}
	}
	return base, nil
}
