package scenario

import (
	"errors"
	"strings"
	"testing"
)

// TestChurnFaultValidation drives the trajectory-simulating validator: churn
// schedules are checked in application order against the fleet they evolve,
// so later faults may target joiners, and any transition that would strand
// the fleet below the GAR floors is rejected before a cluster exists.
func TestChurnFaultValidation(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Spec)
		wantSub string // "" means the schedule must validate
	}{
		{"crash of a future joiner is legal", func(sp *Spec) {
			sp.Faults = []Fault{
				{After: 5, Kind: FaultJoin},
				{After: 10, Kind: FaultCrashWorker, Node: 9}, // the joiner's slot
			}
		}, ""},
		{"crash beyond the evolved fleet", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: FaultCrashWorker, Node: 9}}
		}, "worker 9 of 9"},
		{"leave sequence hits the async quorum floor", func(sp *Spec) {
			// median at fw=2 needs g(f)=5; after the third leave the quorum
			// q = n - f = 6 - 2 = 4 dips under it.
			sp.Faults = []Fault{
				{After: 5, Kind: FaultLeave, Node: 0},
				{After: 6, Kind: FaultLeave, Node: 1},
				{After: 7, Kind: FaultLeave, Node: 2},
			}
		}, "below g(f)=5"},
		{"leave twice", func(sp *Spec) {
			sp.Faults = []Fault{
				{After: 5, Kind: FaultLeave, Node: 0},
				{After: 10, Kind: FaultLeave, Node: 0},
			}
		}, "worker 0 already left"},
		{"server leaves break the model-rule floor", func(sp *Spec) {
			// nps=4 fps=1 median: two honest departures leave nps=2 < g(1)=3.
			sp.Faults = []Fault{
				{After: 5, Kind: FaultLeave, Node: 0, Target: "server"},
				{After: 10, Kind: FaultLeave, Node: 1, Target: "server"},
			}
		}, `model rule "median"`},
		{"scale needs a delta", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: FaultScale}}
		}, "delta != 0"},
		{"scale down past the fleet", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: FaultScale, Delta: -9}}
		}, "roster left with"},
		{"membership faults on decentralized", func(sp *Spec) {
			sp.Topology = TopoDecentralized
			sp.NPS, sp.FPS = 0, 0
			sp.Faults = []Fault{{After: 5, Kind: FaultJoin}}
		}, "not supported on the decentralized topology"},
		{"bad churn target", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: FaultJoin, Target: "moon"}}
		}, `target "moon"`},
		{"batch scale within floors is legal", func(sp *Spec) {
			sp.Faults = []Fault{
				{After: 5, Kind: FaultScale, Delta: 3},
				{After: 10, Kind: FaultScale, Delta: -3},
				{After: 15, Kind: FaultJoin, Target: "server"},
			}
		}, ""},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			sp := chaosValidSpec()
			tc.mutate(&sp)
			err := sp.Validate()
			if tc.wantSub == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("err = %v, want ErrSpec", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

// TestChurnElasticPresetRunsSegmented drives the full elastic-membership
// demo preset — worker join, server join from checkpoint, graceful drain,
// batch scale — and checks the roster arithmetic and that no round is lost
// across any transition.
func TestChurnElasticPresetRunsSegmented(t *testing.T) {
	sp, err := ByName("churn-elastic")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(sp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	segments, err := RunSegmented(c, sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(segments) != 5 {
		t.Fatalf("segments = %d, want 5 (four churn boundaries)", len(segments))
	}
	total := 0
	for _, seg := range segments {
		total += seg.Result.Updates
	}
	if total != sp.Iterations {
		t.Fatalf("updates = %d, want %d: churn must not cost rounds", total, sp.Iterations)
	}
	ro := c.Roster()
	if ro.Epoch != 4 {
		t.Fatalf("epoch = %d, want 4 (one per churn fault)", ro.Epoch)
	}
	if ro.NW() != sp.NW+1-1+2 || ro.NPS() != sp.NPS+1 {
		t.Fatalf("final fleet %dw/%ds, want %dw/%ds", ro.NW(), ro.NPS(), sp.NW+2, sp.NPS+1)
	}
}
