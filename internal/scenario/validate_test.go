package scenario

import (
	"errors"
	"strings"
	"testing"

	"garfield/internal/core"
	"garfield/internal/gar"
)

// chaosValidSpec returns a minimal spec that passes Validate, for the
// error-path table to mutate.
func chaosValidSpec() Spec {
	m, d := demoTask("validate", 1)
	return Spec{
		Topology: TopoMSMW,
		NW:       9, FW: 2,
		NPS: 4, FPS: 1,
		Rule:  gar.NameMedian,
		Model: m, Dataset: d, BatchSize: 32,
		Seed: 1, Iterations: 20,
	}
}

// TestSpecValidationErrorPaths is the table-driven error-path suite: every
// invalid fault kind, the n >= g(f) resilience requirements per topology,
// async constraints, and the byz-server bounds — asserting on the error
// substrings users actually see.
func TestSpecValidationErrorPaths(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Spec)
		wantSub string
	}{
		// Topology and shape.
		{"empty topology", func(sp *Spec) { sp.Topology = "" }, "topology is required"},
		{"unknown topology", func(sp *Spec) { sp.Topology = "ring" }, `unknown topology "ring"`},
		{"zero workers", func(sp *Spec) { sp.NW = 0 }, "nw=0"},
		{"fw >= nw", func(sp *Spec) { sp.FW = 9 }, "fw=9 of nw=9"},
		{"fps >= nps", func(sp *Spec) { sp.FPS = 4 }, "fps=4 of nps=4"},
		{"msmw single replica", func(sp *Spec) { sp.NPS, sp.FPS = 1, 0 }, "msmw needs nps >= 2"},

		// GAR resilience requirements, n >= g(f), per topology shape.
		{"krum requirement ssmw", func(sp *Spec) {
			sp.Topology, sp.NPS, sp.FPS = TopoSSMW, 0, 0
			sp.Rule, sp.NW, sp.FW = gar.NameKrum, 6, 2 // krum needs n >= 2f+3 = 7
		}, "resilience requirement violated"},
		{"bulyan requirement msmw quorum", func(sp *Spec) {
			sp.Rule, sp.NW, sp.FW = gar.NameBulyan, 9, 2 // q = n-f = 7 < 4f+3 = 11
		}, "resilience requirement violated"},
		{"model rule requirement", func(sp *Spec) {
			sp.ModelRule = gar.NameBulyan // qps = 3 < 4*1+3
		}, `model_rule "bulyan"`},
		{"unknown rule", func(sp *Spec) { sp.Rule = "meen" }, "unknown rule"},
		{"empty rule", func(sp *Spec) { sp.Rule = "" }, "rule is required"},

		// Async constraints.
		{"async on decentralized", func(sp *Spec) {
			sp.Topology, sp.Async = TopoDecentralized, true
		}, "async supports topologies"},
		{"async with sync quorum", func(sp *Spec) {
			sp.Async, sp.SyncQuorum = true, true
		}, "contradicts sync_quorum"},
		{"async staleness without async", func(sp *Spec) {
			sp.StalenessBound = 2
		}, "require async"},
		{"async with non-q GAR", func(sp *Spec) {
			// Async collects q = n - f = 7; bulyan needs 4f+3 = 11.
			sp.Topology, sp.NPS, sp.FPS = TopoSSMW, 0, 0
			sp.Async, sp.Rule = true, gar.NameBulyan
		}, "resilience requirement violated"},

		// Attacks and Byzantine servers.
		{"unknown worker attack", func(sp *Spec) {
			sp.WorkerAttack = AttackSpec{Name: "gaslight"}
		}, "unknown attack"},
		{"unknown byz mode", func(sp *Spec) {
			sp.ServerByzMode = "creative"
		}, `unknown server_byz_mode "creative"`},
		{"byz mode without fps", func(sp *Spec) {
			sp.FPS = 0
			sp.ServerByzMode = core.ByzModeEquivocate
		}, "needs fps >= 1"},

		// Task shape.
		{"unknown model kind", func(sp *Spec) { sp.Model.Kind = "transformer" }, "unknown model kind"},
		{"dim mismatch", func(sp *Spec) { sp.Model.In = 32 }, "model input dim 32 != dataset dim 64"},
		{"zero batch", func(sp *Spec) { sp.BatchSize = 0 }, "batch_size=0"},
		{"zero iterations", func(sp *Spec) { sp.Iterations = 0 }, "iterations=0"},

		// Fault schedule: every invalid kind and bound.
		{"unknown fault kind", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: "meteor-strike"}}
		}, `unknown kind "meteor-strike"`},
		{"fault after out of range", func(sp *Spec) {
			sp.Faults = []Fault{{After: 20, Kind: FaultCrashWorker, Node: 0}}
		}, "after=20 outside [1, 20)"},
		{"crash-server node range", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: FaultCrashServer, Node: 4}}
		}, "server 4 of 4"},
		{"crash-worker node range", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: FaultCrashWorker, Node: 9}}
		}, "worker 9 of 9"},
		{"delay-worker needs delay", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: FaultDelayWorker, Node: 0}}
		}, "needs delay_ms > 0"},
		{"slow-worker needs delay", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: FaultSlowWorker, Node: 0}}
		}, "needs delay_ms > 0"},
		{"partition empty group", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: FaultPartition, GroupA: []string{"server-0"}}}
		}, "non-empty group_a and group_b"},
		{"partition bad node name", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: FaultPartition,
				GroupA: []string{"node-1"}, GroupB: []string{"worker-0"}}}
		}, `bad node name "node-1"`},
		{"partition node out of range", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: FaultPartition,
				GroupA: []string{"worker-12"}, GroupB: []string{"server-0"}}}
		}, `node "worker-12" out of range`},
		{"partition overlapping groups", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: FaultPartition,
				GroupA: []string{"worker-1"}, GroupB: []string{"worker-1"}}}
		}, "both sides of the partition"},
		{"corrupt-link node range", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: FaultCorruptLink, Node: 9}}
		}, "worker 9 of 9"},
		{"corrupt-link server target range", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: FaultCorruptLink, Node: 4, Target: "server"}}
		}, "server 4 of 4"},
		{"corrupt-link bad target", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: FaultCorruptLink, Node: 0, Target: "moon"}}
		}, `target "moon"`},
		{"reorder-link bad prob", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: FaultReorderLink, Node: 0, Prob: 1.5}}
		}, "prob 1.5 not in [0, 1]"},
		{"byz-server outside byzantine tail", func(sp *Spec) {
			// nps=4 fps=1: only replica 3 is a declared adversary slot,
			// so at most fs servers can ever be flipped Byzantine.
			sp.Faults = []Fault{{After: 5, Kind: FaultByzServer, Node: 1, Mode: core.ByzModeRandom}}
		}, "not a declared-Byzantine replica (the last fps=1 of the initial nps=4)"},
		{"byz-server without fps", func(sp *Spec) {
			sp.FPS = 0
			sp.Faults = []Fault{{After: 5, Kind: FaultByzServer, Node: 3, Mode: core.ByzModeRandom}}
		}, "byz-server needs fps >= 1"},
		{"byz-server unknown mode", func(sp *Spec) {
			sp.Faults = []Fault{{After: 5, Kind: FaultByzServer, Node: 3, Mode: "chaotic-evil"}}
		}, `unknown byz-server mode "chaotic-evil"`},
	}

	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			sp := chaosValidSpec()
			tc.mutate(&sp)
			err := sp.Validate()
			if err == nil {
				t.Fatalf("Validate accepted the spec; want error containing %q", tc.wantSub)
			}
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("err = %v, not an ErrSpec", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %q, want substring %q", err.Error(), tc.wantSub)
			}
		})
	}
}

// TestSpecValidationAcceptsChaosKinds pins the happy paths of the new fault
// kinds and their JSON round trip.
func TestSpecValidationAcceptsChaosKinds(t *testing.T) {
	sp := chaosValidSpec()
	sp.ServerByzMode = core.ByzModeEquivocate
	sp.Faults = []Fault{
		{After: 2, Kind: FaultPartition,
			GroupA: []string{"server-0", "server-1"}, GroupB: []string{"worker-7", "worker-8"}},
		{After: 4, Kind: FaultHeal},
		{After: 6, Kind: FaultCorruptLink, Node: 8, Prob: 0.5},
		{After: 8, Kind: FaultReorderLink, Node: 7, Target: "worker"},
		{After: 10, Kind: FaultCorruptLink, Node: 1, Target: "server"},
		{After: 12, Kind: FaultByzServer, Node: 3, Mode: core.ByzModeRandom},
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := sp.EncodeJSON(&b); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped spec fails validation: %v", err)
	}
	if len(back.Faults) != len(sp.Faults) || back.Faults[0].GroupA[1] != "server-1" ||
		back.Faults[5].Mode != core.ByzModeRandom {
		t.Fatalf("fault schedule did not survive the JSON round trip: %+v", back.Faults)
	}
}
