package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// sweepBase returns a matrix base small enough that multi-cell sweeps run
// in well under a second. Deterministic + sync quorums: repeated sweeps
// must be bit-identical.
func sweepBase() Spec {
	sp := validSpec()
	sp.NPS, sp.FPS = 3, 0
	sp.SyncQuorum = true
	sp.Deterministic = true
	sp.Iterations = 6
	sp.AccEvery = 2
	sp.Seed = 77
	return sp
}

func TestExpandDeterministicSeeds(t *testing.T) {
	m := Matrix{
		Base:       sweepBase(),
		Topologies: []string{TopoSSMW, TopoMSMW},
		Rules:      []string{"median", "krum"},
		Attacks:    []string{"reversed", "none"},
	}
	cells := m.Expand()
	if want := 2 * 2 * 2; len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	// Expansion is pure: a second expansion reproduces ids and seeds.
	again := m.Expand()
	if !reflect.DeepEqual(cells, again) {
		t.Fatal("two expansions of the same matrix differ")
	}
	// Distinct cells get decorrelated seeds; identical id => identical seed.
	seeds := map[uint64]string{}
	for _, c := range cells {
		if c.Spec.Seed != cellSeed(m.Base.Seed, c.ID) {
			t.Errorf("cell %s: seed not derived from (base seed, id)", c.ID)
		}
		if prev, dup := seeds[c.Spec.Seed]; dup {
			t.Errorf("cells %s and %s share seed %d", prev, c.ID, c.Spec.Seed)
		}
		seeds[c.Spec.Seed] = c.ID
	}
	// The task is shared across cells so results stay comparable.
	for _, c := range cells {
		if !reflect.DeepEqual(c.Spec.Dataset, m.Base.Dataset) {
			t.Errorf("cell %s: dataset diverged from the base", c.ID)
		}
	}
	// The sweep contract: every cell runs in deterministic mode.
	for _, c := range cells {
		if !c.Spec.Deterministic {
			t.Errorf("cell %s: deterministic mode not forced", c.ID)
		}
	}
	// "none" cells run honest: the worker attack is cleared entirely.
	for _, c := range cells {
		if strings.Contains(c.ID, "/none/") && c.Spec.WorkerAttack != (AttackSpec{}) {
			t.Errorf("cell %s: none attack not cleared: %+v", c.ID, c.Spec.WorkerAttack)
		}
	}
}

// TestAttackSeedDomainSeparated locks the attack-seed derivation in: the
// seed of a stochastic attack must come from hashing id+"/attack" — never
// from XOR-ing a constant into the cell seed, which could collide with
// another cell's cluster seed and correlate the two streams.
func TestAttackSeedDomainSeparated(t *testing.T) {
	m := Matrix{
		Base:       sweepBase(),
		Topologies: []string{TopoSSMW, TopoMSMW},
		Rules:      []string{"median", "krum"},
		Attacks:    []string{"random", "none"},
		FWs:        []int{1, 2},
	}
	cells := m.Expand()
	clusterSeeds := map[uint64]string{}
	for _, c := range cells {
		clusterSeeds[c.Spec.Seed] = c.ID
	}
	checked := 0
	for _, c := range cells {
		if !c.Spec.WorkerAttack.stochastic() {
			continue
		}
		checked++
		// The derivation is pinned: FNV over the domain-separated message.
		if want := cellSeed(m.Base.Seed, c.ID+"/attack"); c.Spec.WorkerAttack.Seed != want {
			t.Errorf("cell %s: attack seed %d, want domain-separated %d",
				c.ID, c.Spec.WorkerAttack.Seed, want)
		}
		// No attack seed may coincide with any cell's cluster seed.
		if other, clash := clusterSeeds[c.Spec.WorkerAttack.Seed]; clash {
			t.Errorf("cell %s: attack seed collides with cluster seed of %s", c.ID, other)
		}
	}
	if checked == 0 {
		t.Fatal("no stochastic-attack cells expanded; the test is vacuous")
	}
}

// TestSweepBitIdentical is the engine's determinism contract: the same
// matrix at the same seed produces byte-identical artifacts, run to run,
// including the replicated MSMW topology.
func TestSweepBitIdentical(t *testing.T) {
	m := Matrix{
		Name:       "determinism",
		Base:       sweepBase(),
		Topologies: []string{TopoSSMW, TopoMSMW},
		Rules:      []string{"median", "krum"},
	}
	dirA, dirB := filepath.Join(t.TempDir(), "a"), filepath.Join(t.TempDir(), "b")
	repA, err := RunSweep(m, SweepOptions{OutDir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	repB, err := RunSweep(m, SweepOptions{OutDir: dirB})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range repA.Cells {
		if c.Status != "ok" {
			t.Fatalf("cell %s failed: %s", c.ID, c.Error)
		}
	}
	if !reflect.DeepEqual(repA, repB) {
		t.Fatal("two sweeps at the same seed produced different reports")
	}
	entries, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	// 4 cell curves + summary.csv + sweep.json.
	if want := len(repA.Cells) + 2; len(entries) != want {
		t.Fatalf("got %d artifacts, want %d", len(entries), want)
	}
	for _, e := range entries {
		a, err := os.ReadFile(filepath.Join(dirA, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, e.Name()))
		if err != nil {
			t.Fatalf("artifact %s missing from second run: %v", e.Name(), err)
		}
		if string(a) != string(b) {
			t.Errorf("artifact %s differs between runs", e.Name())
		}
	}
}

// TestSweepRecordsCellFailure: an invalid cell is reported, not fatal.
func TestSweepRecordsCellFailure(t *testing.T) {
	m := Matrix{
		Base:  sweepBase(),
		Rules: []string{"median", "bulyan"}, // bulyan needs 4f+3 = 7 > nw=5
	}
	rep, err := RunSweep(m, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells[0].Status != "ok" {
		t.Errorf("median cell failed: %s", rep.Cells[0].Error)
	}
	if rep.Cells[1].Status != "error" || rep.Cells[1].Error == "" {
		t.Errorf("bulyan cell should fail validation, got %+v", rep.Cells[1])
	}
}
