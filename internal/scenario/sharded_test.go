package scenario

import (
	"errors"
	"reflect"
	"testing"
)

// shardedSpec returns a small sharded-topology spec that passes validation:
// a crash-only 3-replica server tier owning 2 coordinate ranges.
func shardedSpec() Spec {
	sp := validSpec()
	sp.Topology = TopoSharded
	sp.NPS = 3
	sp.Shards = 2
	sp.SyncQuorum = true
	sp.Deterministic = true
	return sp
}

// TestShardedSpecRuns drives the sharded topology end to end through the
// scenario engine and checks the shard counters reach the merged result.
func TestShardedSpecRuns(t *testing.T) {
	sp := shardedSpec()
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != sp.Iterations || res.ShardRounds != sp.Iterations || res.ShardAborts != 0 {
		t.Fatalf("updates=%d rounds=%d aborts=%d, want %d committed rounds",
			res.Updates, res.ShardRounds, res.ShardAborts, sp.Iterations)
	}
	if res.Wire.ShardPulls == 0 || res.Wire.ShardReplyBytes == 0 {
		t.Fatalf("no shard wire accounting: pulls=%d bytes=%d",
			res.Wire.ShardPulls, res.Wire.ShardReplyBytes)
	}
}

// TestShardedSpecMatchesFlat: through the scenario engine too, a sharded
// coordinate-wise run reproduces the flat SSMW accuracy curve exactly.
func TestShardedSpecMatchesFlat(t *testing.T) {
	sp := shardedSpec()
	sp.AccEvery = 2
	sharded, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	flat := sp
	flat.Topology = TopoSSMW
	flat.NPS, flat.Shards = 0, 0
	fres, err := Run(flat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sharded.Accuracy.Points, fres.Accuracy.Points) {
		t.Errorf("sharded accuracy %v != flat %v", sharded.Accuracy.Points, fres.Accuracy.Points)
	}
}

// TestShardedSimMatchesLive: the sharded protocol is part of the simulator's
// equivalence envelope — the sim-engine run reproduces the live run's curve.
func TestShardedSimMatchesLive(t *testing.T) {
	sp := shardedSpec()
	sp.AccEvery = 2
	live, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	sim := sp
	sim.Engine = EngineSim
	sres, err := Run(sim)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live.Accuracy.Points, sres.Accuracy.Points) {
		t.Errorf("sim accuracy %v != live %v", sres.Accuracy.Points, live.Accuracy.Points)
	}
	if sres.ShardRounds != live.ShardRounds || sres.ShardAborts != live.ShardAborts {
		t.Errorf("sim counters (rounds=%d aborts=%d) != live (rounds=%d aborts=%d)",
			sres.ShardRounds, sres.ShardAborts, live.ShardRounds, live.ShardAborts)
	}
}

// TestShardedFaultScheduleCrashRecover: a shard owner crashes mid-run and
// recovers later; failover keeps every round and the merged counters span
// the segments.
func TestShardedFaultScheduleCrashRecover(t *testing.T) {
	sp := shardedSpec()
	sp.Iterations = 6
	sp.Faults = []Fault{
		{After: 2, Kind: FaultCrashServer, Node: 0},
		{After: 4, Kind: FaultRecoverServer, Node: 0},
	}
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != sp.Iterations || res.ShardRounds != sp.Iterations {
		t.Fatalf("updates=%d rounds=%d, want %d (failover must not eat rounds)",
			res.Updates, res.ShardRounds, sp.Iterations)
	}
	if res.ShardFailovers == 0 {
		t.Fatal("no failovers merged across the crashed segment")
	}
}

// TestShardedSpecValidation covers the sharded topology's spec-level error
// paths.
func TestShardedSpecValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"missing shards", func(sp *Spec) { sp.Shards = 0 }},
		{"byzantine server tier", func(sp *Spec) { sp.FPS = 1 }},
		{"shards off topology", func(sp *Spec) {
			sp.Topology = TopoSSMW
			sp.NPS = 0
		}},
		{"hierarchical group floor", func(sp *Spec) {
			sp.Rule = "krum" // 2f+3: groups of 2-3 cannot host f=1
			sp.Shards = 2
		}},
		{"recover-server out of range", func(sp *Spec) {
			sp.Faults = []Fault{{After: 1, Kind: FaultRecoverServer, Node: 9}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := shardedSpec()
			tc.mutate(&sp)
			if err := sp.Validate(); !errors.Is(err, ErrSpec) {
				t.Fatalf("err = %v, want ErrSpec", err)
			}
		})
	}
}

// TestShardedPresetsRun smoke-runs the shard presets at reduced length —
// the same specs the CI smoke leg and the chaos harness drive.
func TestShardedPresetsRun(t *testing.T) {
	for _, name := range []string{"shard-median", "shard-topk", "shard-hier-krum"} {
		t.Run(name, func(t *testing.T) {
			sp, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			sp.Iterations, sp.AccEvery = 4, 2
			res, err := Run(sp)
			if err != nil {
				t.Fatal(err)
			}
			if res.Updates != sp.Iterations || res.ShardAborts != 0 {
				t.Fatalf("updates=%d aborts=%d", res.Updates, res.ShardAborts)
			}
		})
	}
}
