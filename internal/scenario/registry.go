package scenario

import (
	"fmt"
	"sort"

	"garfield/internal/attack"
	"garfield/internal/core"
	"garfield/internal/gar"
)

// The preset registry: named specs reproducing the paper's headline
// configurations and the repository's example programs. Presets are plain
// Specs — Describe one as JSON, tweak it, and feed it back through Run.

// ErrUnknownScenario is returned by ByName for an unknown preset name.
var ErrUnknownScenario = fmt.Errorf("scenario: unknown scenario")

// demoTask is the examples' learning task: a 64-dimensional 10-class
// Gaussian mixture under a linear softmax — small enough to train in
// seconds, structured enough that attacks visibly break plain averaging.
func demoTask(name string, seed uint64) (ModelSpec, DatasetSpec) {
	return ModelSpec{Kind: ModelLinear, In: 64, Classes: 10},
		DatasetSpec{
			Name: name, Dim: 64, Classes: 10,
			Train: 4000, Test: 1000,
			Separation: 0.45, Noise: 1.0, Seed: seed,
		}
}

// sweepTask is the default sweep cell task: smaller than the demo task so a
// full matrix stays affordable in one invocation.
func sweepTask(seed uint64) (ModelSpec, DatasetSpec) {
	return ModelSpec{Kind: ModelLinear, In: 32, Classes: 10},
		DatasetSpec{
			Name: "sweep", Dim: 32, Classes: 10,
			Train: 1200, Test: 300,
			Separation: 0.4, Noise: 1.0, Seed: seed,
		}
}

func presets() map[string]Spec {
	out := map[string]Spec{}
	add := func(sp Spec) {
		if _, dup := out[sp.Name]; dup {
			panic("scenario: duplicate preset " + sp.Name)
		}
		out[sp.Name] = sp
	}

	// --- The example programs, one spec each. ---
	qm, qd := demoTask("quickstart", 1)
	add(Spec{
		Name:        "quickstart",
		Description: "Listing 1 (SSMW): trusted server, 9 workers, 2 Byzantine, Multi-Krum",
		Topology:    TopoSSMW,
		NW:          9, FW: 2,
		Rule:  gar.NameMultiKrum,
		Model: qm, Dataset: qd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 1, Iterations: 150, AccEvery: 25,
	})

	mm, md := demoTask("msmw-demo", 2)
	add(Spec{
		Name:        "msmw-demo",
		Description: "Listing 2 (MSMW) under live attack: reversed workers, a random server",
		Topology:    TopoMSMW,
		NW:          11, FW: 1,
		NPS: 4, FPS: 1,
		Rule:         gar.NameMultiKrum,
		SyncQuorum:   true,
		WorkerAttack: AttackSpec{Name: attack.NameReversed},
		ServerAttack: AttackSpec{Name: attack.NameRandom, Seed: 99},
		Model:        mm, Dataset: md, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 2, Iterations: 150, AccEvery: 25,
	})

	dm, dd := demoTask("decentralized-demo", 3)
	dd.Train = 5000
	add(Spec{
		Name:        "decentralized-demo",
		Description: "Listing 3 (decentralized): 6 peers, 1 Byzantine, non-IID shards, contract step",
		Topology:    TopoDecentralized,
		NW:          6, FW: 1,
		Rule:   gar.NameMedian,
		NonIID: true, ContractSteps: 2,
		Model: dm, Dataset: dd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 3, Iterations: 200, AccEvery: 25,
	})

	cm, cd := demoTask("crashvsbyz", 4)
	add(Spec{
		Name:        "crashvsbyz-failover",
		Description: "crash-tolerant baseline through a live primary crash at iteration 75",
		Topology:    TopoCrashTolerant,
		NW:          9, NPS: 4,
		Rule:  gar.NameMedian,
		Model: cm, Dataset: cd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 4, Iterations: 150,
		Faults: []Fault{{After: 75, Kind: FaultCrashServer, Node: 0}},
	})
	add(Spec{
		Name:        "crashvsbyz-attack",
		Description: "crash-tolerant baseline under the reversed-vectors attack (collapses)",
		Topology:    TopoCrashTolerant,
		NW:          9, FW: 1,
		NPS: 4, FPS: 1,
		Rule:         gar.NameMedian,
		WorkerAttack: AttackSpec{Name: attack.NameReversed},
		Model:        cm, Dataset: cd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 4, Iterations: 150,
	})
	add(Spec{
		Name:        "crashvsbyz-msmw",
		Description: "MSMW under the same reversed-vectors attack (converges)",
		Topology:    TopoMSMW,
		NW:          9, FW: 1,
		NPS: 4, FPS: 1,
		Rule:         gar.NameMedian,
		WorkerAttack: AttackSpec{Name: attack.NameReversed},
		Model:        cm, Dataset: cd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 4, Iterations: 150,
	})

	add(Spec{
		Name:        "mnistcnn-lie",
		Description: "MNIST_CNN through SSMW with one little-is-enough attacker",
		Topology:    TopoSSMW,
		NW:          5, FW: 1,
		Rule:         gar.NameMedian,
		WorkerAttack: AttackSpec{Name: attack.NameLittleIsEnough},
		// The attacker estimates honest statistics from its own shard —
		// the strongest realistic adversary (no omniscience).
		AttackSelfPeers: 3,
		Model:           ModelSpec{Kind: ModelMNISTCNN},
		Dataset: DatasetSpec{
			Name: "synthetic-mnist", Dim: 28 * 28, Classes: 10,
			Train: 1200, Test: 400,
			Separation: 0.25, Noise: 0.5, Seed: 6,
		},
		BatchSize: 16,
		LR:        LRSpec{Kind: LRConstant, Base: 0.1},
		Seed:      6, Iterations: 60, AccEvery: 15,
	})

	// --- The paper's headline configurations. ---
	am, ad := demoTask("aggregathor", 7)
	add(Spec{
		Name:        "aggregathor",
		Description: "AggregaThor baseline: SSMW topology fixed to Multi-Krum",
		Topology:    TopoAggregaThor,
		NW:          11, FW: 2,
		Rule:  gar.NameMultiKrum,
		Model: am, Dataset: ad, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 7, Iterations: 150, AccEvery: 25,
	})
	vm, vd := demoTask("vanilla-baseline", 8)
	add(Spec{
		Name:        "vanilla-baseline",
		Description: "fault-intolerant baseline: single server, plain averaging",
		Topology:    TopoVanilla,
		NW:          9,
		Rule:        gar.NameAverage,
		Model:       vm, Dataset: vd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 8, Iterations: 150, AccEvery: 25,
	})

	// SSMW and MSMW under each published attack (Figure 5's methodology,
	// one preset per cell). The drop attack gets its own preset below: the
	// synchronous runs here pull all n workers, and a dropper never
	// replies, so drop needs the q = n - f quorum of the MSMW runner.
	for _, atk := range []string{
		attack.NameRandom, attack.NameReversed,
		attack.NameLittleIsEnough, attack.NameFallOfEmpires,
	} {
		sm, sd := demoTask("ssmw-"+atk, 10)
		add(Spec{
			Name:        "ssmw-" + atk,
			Description: "SSMW (Median, 11 workers, 2 Byzantine) under the " + atk + " attack",
			Topology:    TopoSSMW,
			NW:          11, FW: 2,
			Rule:            gar.NameMedian,
			WorkerAttack:    AttackSpec{Name: atk, Seed: 10},
			AttackSelfPeers: 3,
			Model:           sm, Dataset: sd, BatchSize: 32,
			LR:   LRSpec{Kind: LRConstant, Base: 0.25},
			Seed: 10, Iterations: 150, AccEvery: 25,
		})
		xm, xd := demoTask("msmw-"+atk, 11)
		add(Spec{
			Name:        "msmw-" + atk,
			Description: "MSMW (Multi-Krum, 4 replicas) under the " + atk + " attack on workers and servers",
			Topology:    TopoMSMW,
			NW:          11, FW: 2,
			NPS: 4, FPS: 1,
			Rule:            gar.NameMultiKrum,
			SyncQuorum:      true,
			WorkerAttack:    AttackSpec{Name: atk, Seed: 11},
			ServerAttack:    AttackSpec{Name: atk},
			AttackSelfPeers: 3,
			Model:           xm, Dataset: xd, BatchSize: 32,
			LR:   LRSpec{Kind: LRConstant, Base: 0.25},
			Seed: 11, Iterations: 150, AccEvery: 25,
		})
	}

	// The omission fault: live nodes that never reply. Collected with
	// q_w = n_w - f_w (asynchronous quorum), the only mode that tolerates
	// mute nodes.
	om, od := demoTask("msmw-drop", 12)
	add(Spec{
		Name:        "msmw-drop",
		Description: "MSMW with q = n - f quorums riding out 2 mute (dropping) workers",
		Topology:    TopoMSMW,
		NW:          11, FW: 2,
		NPS: 4, FPS: 1,
		Rule:         gar.NameMultiKrum,
		WorkerAttack: AttackSpec{Name: attack.NameDrop},
		Model:        om, Dataset: od, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 12, Iterations: 150, AccEvery: 25,
	})

	// --- The asynchronous bounded-staleness deployments. ---
	// The three cells the async engine opens up: a steady straggler the
	// lockstep runner would pace itself by, a worker crash the q = n - f
	// quorum rides out without losing a round, and Byzantine behaviour on
	// both sides under asynchrony.
	sgm, sgd := demoTask("async-straggler", 30)
	add(Spec{
		Name:        "async-straggler",
		Description: "async SSMW riding out a steady straggler (5ms slow worker, tau=3 staleness bound)",
		Topology:    TopoSSMW,
		Async:       true, StalenessBound: 3,
		NW: 9, FW: 1,
		Rule:  gar.NameMedian,
		Model: sgm, Dataset: sgd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 30, Iterations: 150, AccEvery: 25,
		Faults: []Fault{{After: 1, Kind: FaultSlowWorker, Node: 8, DelayMS: 5}},
	})
	crm, crd := demoTask("async-crash", 31)
	add(Spec{
		Name:        "async-crash",
		Description: "async SSMW through a worker crash at iteration 50 (no round is lost)",
		Topology:    TopoSSMW,
		Async:       true, StalenessBound: 3,
		NW: 9, FW: 1,
		Rule:  gar.NameMedian,
		Model: crm, Dataset: crd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 31, Iterations: 150, AccEvery: 25,
		Faults: []Fault{{After: 50, Kind: FaultCrashWorker, Node: 8}},
	})
	bzm, bzd := demoTask("async-byzantine", 32)
	add(Spec{
		Name:        "async-byzantine",
		Description: "async MSMW under reversed workers and a random Byzantine server (barrier-free contraction)",
		Topology:    TopoMSMW,
		Async:       true, StalenessBound: 3,
		NW: 11, FW: 2,
		NPS: 4, FPS: 1,
		Rule:         gar.NameMultiKrum,
		WorkerAttack: AttackSpec{Name: attack.NameReversed},
		ServerAttack: AttackSpec{Name: attack.NameRandom, Seed: 32},
		Model:        bzm, Dataset: bzd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 32, Iterations: 150, AccEvery: 25,
	})

	// --- The gradient-compression deployments (internal/compress). Each
	// pairs a codec with a live attack, because the interesting question is
	// not the ratio (that is fixed by the codec) but whether robustness
	// survives quantization: the GAR must keep rejecting the attack when
	// every reply — Byzantine ones included — rides the lossy codec. ---
	cim, cid := demoTask("compress-int8", 60)
	add(Spec{
		Name:        "compress-int8",
		Description: "SSMW with int8-quantized gradient replies (~7.8x fewer reply bytes) under little-is-enough",
		Topology:    TopoSSMW,
		NW:          11, FW: 2,
		Rule:            gar.NameMDA,
		Compression:     "int8",
		WorkerAttack:    AttackSpec{Name: attack.NameLittleIsEnough},
		AttackSelfPeers: 3,
		Model:           cim, Dataset: cid, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 60, Iterations: 150, AccEvery: 25,
	})
	cfm, cfd := demoTask("compress-fp16", 61)
	add(Spec{
		Name:        "compress-fp16",
		Description: "MSMW with fp16 gradient replies (4x) under the reversed-vectors attack",
		Topology:    TopoMSMW,
		NW:          11, FW: 2,
		NPS: 4, FPS: 1,
		Rule:         gar.NameMultiKrum,
		SyncQuorum:   true,
		Compression:  "fp16",
		WorkerAttack: AttackSpec{Name: attack.NameReversed},
		Model:        cfm, Dataset: cfd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 61, Iterations: 150, AccEvery: 25,
	})
	ctm, ctd := demoTask("compress-topk", 62)
	add(Spec{
		Name:        "compress-topk",
		Description: "SSMW with top-64 sparsified replies (~8x) and per-worker error feedback, one reversed worker",
		Topology:    TopoSSMW,
		NW:          9, FW: 1,
		Rule:        gar.NameMedian,
		Compression: "topk", TopK: 64,
		WorkerAttack: AttackSpec{Name: attack.NameReversed},
		Model:        ctm, Dataset: ctd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 62, Iterations: 150, AccEvery: 25,
	})

	// --- The sharded-aggregation deployments (internal/shard +
	// core.RunSharded): the coordinate space (or, for selection rules, the
	// worker set) is partitioned across a crash-only server tier, so no
	// single replica pays the full O(n*d) pull or O(n^2*d) selection cost. ---
	shm, shd := demoTask("shard-median", 70)
	add(Spec{
		Name:        "shard-median",
		Description: "sharded coordinate-wise median: 4 replicas each own a quarter of the coordinate space (bit-identical to flat)",
		Topology:    TopoSharded,
		NW:          11, FW: 2,
		NPS: 4, Shards: 4,
		Rule:          gar.NameMedian,
		SyncQuorum:    true,
		Deterministic: true,
		WorkerAttack:  AttackSpec{Name: attack.NameReversed},
		Model:         shm, Dataset: shd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 70, Iterations: 150, AccEvery: 25,
	})
	stm, std := demoTask("shard-topk", 71)
	add(Spec{
		Name:        "shard-topk",
		Description: "sharded median with per-shard top-k sparsified pulls: each owner pulls only its range's share of the budget",
		Topology:    TopoSharded,
		NW:          9, FW: 1,
		NPS: 3, Shards: 3,
		Rule:          gar.NameMedian,
		SyncQuorum:    true,
		Deterministic: true,
		Compression:   "topk", TopK: 16,
		Model: stm, Dataset: std, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 71, Iterations: 150, AccEvery: 25,
	})
	skm, skd := demoTask("shard-hier-krum", 72)
	add(Spec{
		Name:        "shard-hier-krum",
		Description: "hierarchical Krum: 3 groups of 5 workers select locally, a crash-only root round selects among the winners",
		Topology:    TopoSharded,
		NW:          15, FW: 1,
		NPS: 3, Shards: 3,
		Rule:          gar.NameKrum,
		SyncQuorum:    true,
		Deterministic: true,
		Model:         skm, Dataset: skd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 72, Iterations: 150, AccEvery: 25,
	})

	// --- The chaos presets (internal/chaos runs these under machine-
	// checked resilience invariants; `garfield-scenarios chaos` is the CLI
	// front end). Each exercises one adversary class the plain fault menu
	// cannot express. ---

	// An equivocating Byzantine replica from iteration 0, in the
	// deterministic lockstep mode: the safety invariant bounds the honest
	// replicas' model drift, the determinism invariant requires two runs
	// at this seed to emit bit-identical metrics CSV, and the contrast run
	// (same spec, model_rule=average) must diverge.
	eqm, eqd := demoTask("chaos-equivocate", 50)
	add(Spec{
		Name:        "chaos-equivocate",
		Description: "MSMW vs an equivocating Byzantine server (fs=1): contraction bounds drift; averaging diverges",
		Topology:    TopoMSMW,
		NW:          9, FW: 0,
		NPS: 4, FPS: 1,
		Rule:          gar.NameMedian,
		SyncQuorum:    true,
		Deterministic: true,
		ServerByzMode: core.ByzModeEquivocate,
		Model:         eqm, Dataset: eqd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 50, Iterations: 40, AccEvery: 10,
	})

	// A replica that serves honestly for 15 iterations and then turns
	// Byzantine (random models) — the mid-run flip only the byz-server
	// scheduled fault can express.
	bfm, bfd := demoTask("chaos-byz-flip", 51)
	add(Spec{
		Name:        "chaos-byz-flip",
		Description: "MSMW replica flips honest->random at iteration 15 (byz-server scheduled fault)",
		Topology:    TopoMSMW,
		NW:          9, FW: 0,
		NPS: 4, FPS: 1,
		Rule:          gar.NameMedian,
		SyncQuorum:    true,
		Deterministic: true,
		Model:         bfm, Dataset: bfd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 51, Iterations: 40, AccEvery: 10,
		Faults: []Fault{{After: 15, Kind: FaultByzServer, Node: 3, Mode: core.ByzModeRandom}},
	})

	// A network partition cutting two workers off the servers for the
	// middle third of the run, then healing: the liveness invariant
	// requires post-heal steps/sec to recover to >= 80% of the
	// pre-partition segment.
	phm, phd := demoTask("chaos-partition-heal", 52)
	add(Spec{
		Name:        "chaos-partition-heal",
		Description: "MSMW rides out a partition of 2 workers (q = n - f), heals, and recovers throughput",
		Topology:    TopoMSMW,
		NW:          9, FW: 2,
		NPS: 2, FPS: 0,
		Rule:  gar.NameMedian,
		Model: phm, Dataset: phd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 52, Iterations: 45, AccEvery: 15,
		Faults: []Fault{
			{After: 15, Kind: FaultPartition,
				GroupA: []string{"server-0", "server-1"},
				GroupB: []string{"worker-7", "worker-8"}},
			{After: 30, Kind: FaultHeal},
		},
	})

	// A link that corrupts every message to and from one worker: the RPC
	// checksum layer must reject the mangled payloads (the corruption
	// invariant counts the rejections), and the q = n - f quorum must ride
	// out the effectively-mute node.
	clm, cld := demoTask("chaos-corrupt-link", 53)
	add(Spec{
		Name:        "chaos-corrupt-link",
		Description: "worker-8's link corrupts every message; checksums reject them and MSMW rides it out",
		Topology:    TopoMSMW,
		NW:          9, FW: 1,
		NPS: 2, FPS: 0,
		Rule:  gar.NameMedian,
		Model: clm, Dataset: cld, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 53, Iterations: 30, AccEvery: 10,
		Faults: []Fault{{After: 5, Kind: FaultCorruptLink, Node: 8}},
	})

	// Two links that reorder about half their messages: replies arrive one
	// round late and stale, the strict request/response streams desync and
	// resynchronize through the pooled client's drain machinery, and
	// training must neither stall nor lose a round.
	rom, rod := demoTask("chaos-reorder", 54)
	add(Spec{
		Name:        "chaos-reorder",
		Description: "two workers' links reorder half their messages; MSMW absorbs the stale replies",
		Topology:    TopoMSMW,
		NW:          9, FW: 2,
		NPS: 2, FPS: 0,
		Rule:  gar.NameMedian,
		Model: rom, Dataset: rod, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 54, Iterations: 30, AccEvery: 10,
		Faults: []Fault{
			{After: 5, Kind: FaultReorderLink, Node: 7},
			{After: 5, Kind: FaultReorderLink, Node: 8},
		},
	})

	// Elastic membership under attack: two little-is-enough workers press
	// the whole run while the fleet churns — a worker joins at 10, worker 0
	// drains out at 20, and two more scale in at 30. The membership
	// invariant requires one epoch per churn fault and the scheduled final
	// fleet; churn-liveness requires post-churn throughput recovery.
	cam, cad := demoTask("chaos-churn-attack", 55)
	add(Spec{
		Name:        "chaos-churn-attack",
		Description: "SSMW fleet churns (join, drain, scale +2) while 2 little-is-enough workers attack; safety and throughput hold",
		Topology:    TopoSSMW,
		NW:          9, FW: 2,
		Rule:            gar.NameMedian,
		Deterministic:   true,
		WorkerAttack:    AttackSpec{Name: attack.NameLittleIsEnough},
		AttackSelfPeers: 3,
		Model:           cam, Dataset: cad, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 55, Iterations: 40, AccEvery: 10,
		Faults: []Fault{
			{After: 10, Kind: FaultJoin},
			{After: 20, Kind: FaultLeave, Node: 0},
			{After: 30, Kind: FaultScale, Delta: 2},
		},
	})

	// A server replica joins from the primary's checkpoint at the very
	// boundary where a partition heals, with two Byzantine workers attacking
	// throughout: the join-converges invariant requires the bootstrapped
	// replica to end within a small spread of the honest fleet's model.
	jbm, jbd := demoTask("chaos-join-bootstrap", 56)
	add(Spec{
		Name:        "chaos-join-bootstrap",
		Description: "a replica bootstraps from checkpoint as a partition heals, under little-is-enough workers; it converges to the fleet",
		Topology:    TopoMSMW,
		NW:          9, FW: 2,
		NPS: 2, FPS: 0,
		Rule:            gar.NameMedian,
		WorkerAttack:    AttackSpec{Name: attack.NameLittleIsEnough},
		AttackSelfPeers: 3,
		Model:           jbm, Dataset: jbd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 56, Iterations: 30, AccEvery: 10,
		Faults: []Fault{
			{After: 10, Kind: FaultPartition,
				GroupA: []string{"server-0", "server-1"},
				GroupB: []string{"worker-7", "worker-8"}},
			{After: 20, Kind: FaultHeal},
			{After: 20, Kind: FaultJoin, Target: "server"},
		},
	})

	// A shard owner crashes a third of the way in and recovers at the
	// two-thirds mark: its shards fail over to the next live replica (no
	// round is lost), and on recovery the replica catches up from a donor's
	// model. The shard-integrity invariant requires every committed round
	// to be a full-coordinate write — no torn models.
	scm, scd := demoTask("chaos-shard-crash", 73)
	add(Spec{
		Name:        "chaos-shard-crash",
		Description: "sharded median through a shard owner's crash and recovery: failover keeps every round, catch-up rejoins the fleet",
		Topology:    TopoSharded,
		NW:          9, FW: 1,
		NPS: 3, Shards: 3,
		Rule:          gar.NameMedian,
		SyncQuorum:    true,
		Deterministic: true,
		Model:         scm, Dataset: scd, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 73, Iterations: 24, AccEvery: 8,
		Faults: []Fault{
			{After: 8, Kind: FaultCrashServer, Node: 0},
			{After: 16, Kind: FaultRecoverServer, Node: 0},
		},
	})

	// A shard owner partitioned from every worker: its ranged pulls time
	// out, so whole rounds abort cleanly (the safety invariant: zero model
	// writes while partitioned, never a partial one), and the heal restores
	// liveness for the back half of the run.
	spm, spd := demoTask("chaos-shard-partition", 74)
	add(Spec{
		Name:        "chaos-shard-partition",
		Description: "sharded median with a shard owner cut off from all workers: rounds abort with no torn writes until the heal",
		Topology:    TopoSharded,
		NW:          9, FW: 1,
		NPS: 2, Shards: 2,
		Rule:          gar.NameMedian,
		SyncQuorum:    true,
		Deterministic: true,
		Model:         spm, Dataset: spd, BatchSize: 32,
		LR:            LRSpec{Kind: LRConstant, Base: 0.25},
		PullTimeoutMS: 750,
		Seed:          74, Iterations: 24, AccEvery: 8,
		Faults: []Fault{
			{After: 10, Kind: FaultPartition,
				GroupA: []string{"server-0"},
				GroupB: []string{"worker-0", "worker-1", "worker-2", "worker-3",
					"worker-4", "worker-5", "worker-6", "worker-7", "worker-8"}},
			{After: 13, Kind: FaultHeal},
		},
	})

	// The fault-free elastic-membership demo (README quickstart, CI smoke):
	// every membership transition in one short run, no adversary.
	cem, ced := demoTask("churn-elastic", 57)
	add(Spec{
		Name:        "churn-elastic",
		Description: "elastic membership demo: a worker joins, a server bootstraps in, worker 0 drains, two more workers scale in",
		Topology:    TopoMSMW,
		NW:          6, FW: 1,
		NPS: 2, FPS: 0,
		Rule:  gar.NameMedian,
		Model: cem, Dataset: ced, BatchSize: 32,
		LR:   LRSpec{Kind: LRConstant, Base: 0.25},
		Seed: 57, Iterations: 24, AccEvery: 8,
		Faults: []Fault{
			{After: 6, Kind: FaultJoin},
			{After: 12, Kind: FaultJoin, Target: "server"},
			{After: 16, Kind: FaultLeave, Node: 0},
			{After: 20, Kind: FaultScale, Delta: 2},
		},
	})

	// --- The default sweep base (see Matrix). ---
	wm, wd := sweepTask(20211)
	add(Spec{
		Name:        "sweep-default",
		Description: "default sweep cell: 11 workers, 2 Byzantine, sync quorums, small task",
		Topology:    TopoSSMW,
		NW:          11, FW: 2,
		NPS: 4, FPS: 1,
		Rule:          gar.NameMedian,
		SyncQuorum:    true,
		Deterministic: true,
		WorkerAttack:  AttackSpec{Name: attack.NameReversed},
		Model:         wm, Dataset: wd, BatchSize: 16,
		Seed: 20211, Iterations: 30, AccEvery: 10,
	})

	return out
}

var registry = presets()

// Names returns the preset names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ByName returns a copy of the named preset.
func ByName(name string) (Spec, error) {
	sp, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("%w: %q (known: %v)", ErrUnknownScenario, name, Names())
	}
	return sp.clone(), nil
}

// Describe returns the one-line description of a preset.
func Describe(name string) (string, error) {
	sp, ok := registry[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownScenario, name)
	}
	return sp.Description, nil
}
