package scenario

import (
	"reflect"
	"testing"

	"garfield/internal/core"
)

// TestRunMatchesDirectCore pins the engine's zero-overhead contract: a spec
// without faults runs exactly one protocol invocation, bit-identical to
// wiring the same deployment through core by hand.
func TestRunMatchesDirectCore(t *testing.T) {
	sp := validSpec()
	sp.Deterministic = true
	sp.AccEvery = 2

	viaEngine, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}

	cfg, err := Materialize(sp)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	direct, err := c.RunSSMW(core.RunOptions{Iterations: sp.Iterations, AccEvery: sp.AccEvery})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(viaEngine.Accuracy.Points, direct.Accuracy.Points) {
		t.Errorf("engine accuracy %v != direct %v", viaEngine.Accuracy.Points, direct.Accuracy.Points)
	}
	if viaEngine.Updates != direct.Updates {
		t.Errorf("engine updates %d != direct %d", viaEngine.Updates, direct.Updates)
	}
}

// TestFaultScheduleCrashServer drives a crash-tolerant run through a
// primary crash: the run must complete all iterations, fail over, and the
// merged accuracy curve must span both segments with shifted x values.
func TestFaultScheduleCrashServer(t *testing.T) {
	sp := validSpec()
	sp.Topology = TopoCrashTolerant
	sp.NPS = 3
	sp.Iterations = 6
	sp.AccEvery = 2
	sp.Faults = []Fault{{After: 3, Kind: FaultCrashServer, Node: 0}}

	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != sp.Iterations {
		t.Fatalf("updates %d, want %d (crash must not eat iterations)", res.Updates, sp.Iterations)
	}
	pts := res.Accuracy.Points
	if len(pts) == 0 {
		t.Fatal("no accuracy points recorded")
	}
	last := pts[len(pts)-1]
	if last.X != float64(sp.Iterations) {
		t.Errorf("last accuracy at x=%v, want %v (segment offsets lost)", last.X, sp.Iterations)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			t.Errorf("accuracy x values not increasing across segments: %v", pts)
			break
		}
	}
}

// TestFaultScheduleDelayWorker exercises the transport-level delay fault.
func TestFaultScheduleDelayWorker(t *testing.T) {
	sp := validSpec()
	sp.Iterations = 4
	sp.Faults = []Fault{{After: 2, Kind: FaultDelayWorker, Node: 1, DelayMS: 1}}
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != sp.Iterations {
		t.Fatalf("updates %d, want %d", res.Updates, sp.Iterations)
	}
}

// TestAsyncSpecRuns drives the async engine end to end through the scenario
// layer, including a mid-run slow-worker fault segment.
func TestAsyncSpecRuns(t *testing.T) {
	sp := validSpec()
	sp.Async = true
	sp.StalenessBound = 3
	sp.Iterations = 8
	sp.AccEvery = 2
	sp.Faults = []Fault{{After: 4, Kind: FaultSlowWorker, Node: 4, DelayMS: 2}}
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != sp.Iterations {
		t.Fatalf("updates %d, want %d", res.Updates, sp.Iterations)
	}
}

// TestAsyncMSMWSpecRuns covers the replicated async runner dispatch.
func TestAsyncMSMWSpecRuns(t *testing.T) {
	sp := validSpec()
	sp.Topology = TopoMSMW
	sp.NPS, sp.FPS = 3, 0
	sp.Async = true
	sp.Iterations = 6
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != sp.Iterations {
		t.Fatalf("updates %d, want %d", res.Updates, sp.Iterations)
	}
}

// TestAsyncDeterministicReplayThroughEngine: the async seeded replay is
// reproducible through the scenario layer as well.
func TestAsyncDeterministicReplayThroughEngine(t *testing.T) {
	sp := validSpec()
	sp.Async = true
	sp.Deterministic = true
	sp.Iterations = 8
	sp.AccEvery = 2
	a, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Accuracy.Points, b.Accuracy.Points) {
		t.Errorf("async deterministic runs disagree:\n%v\n%v", a.Accuracy.Points, b.Accuracy.Points)
	}
	if a.AvgStaleness != b.AvgStaleness || a.StaleDrops != b.StaleDrops {
		t.Errorf("staleness accounting disagrees: (%v, %d) vs (%v, %d)",
			a.AvgStaleness, a.StaleDrops, b.AvgStaleness, b.StaleDrops)
	}
}

// TestFaultScheduleDeterministic: fault segmentation preserves the
// determinism contract — two runs of a faulted deterministic spec agree.
func TestFaultScheduleDeterministic(t *testing.T) {
	sp := validSpec()
	sp.Deterministic = true
	sp.Topology = TopoCrashTolerant
	sp.NPS = 3
	sp.Iterations = 6
	sp.AccEvery = 1
	sp.Faults = []Fault{{After: 3, Kind: FaultCrashServer, Node: 0}}

	a, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Accuracy.Points, b.Accuracy.Points) {
		t.Errorf("faulted deterministic runs disagree:\n%v\n%v", a.Accuracy.Points, b.Accuracy.Points)
	}
}
