// Package scenario is the declarative deployment engine: it turns the
// paper's evaluation matrix — topologies (SSMW, MSMW, decentralized and the
// baselines) crossed with GARs, attacks and fault conditions — into
// serializable specifications instead of hand-written main functions.
//
// A Spec fully describes one cell of that matrix: cluster shape (n/f on both
// the worker and server side), the GAR, the Byzantine behaviours, the
// learning task (model, synthetic dataset, batch size, learning-rate
// schedule), a network-fault schedule injected through transport.Faulty, and
// the seeds that make the whole run reproducible. Specs round-trip through
// JSON, so scenarios can live in files, flags or version control rather than
// in Go code.
//
// The package provides three layers on top of Spec:
//
//   - a registry of named presets reproducing the paper's headline
//     configurations (registry.go);
//   - a runner that materializes a Spec into an in-process core.Cluster and
//     drives the right protocol through its fault schedule (run.go);
//   - a sweep runner that expands a scenario Matrix (topologies x GARs x
//     attacks x f values) and executes the cells in parallel with
//     deterministic per-cell seeding, emitting CSV and JSON artifacts
//     (sweep.go).
//
// cmd/garfield-scenarios is the CLI front end; the root garfield package
// re-exports the entry points.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"garfield/internal/attack"
	"garfield/internal/compress"
	"garfield/internal/core"
	"garfield/internal/data"
	"garfield/internal/gar"
	"garfield/internal/shard"
)

// ErrSpec reports an invalid scenario specification.
var ErrSpec = errors.New("scenario: invalid spec")

// Topology names accepted by Spec.Topology. They are exactly the protocol
// runners of internal/core: the three applications of the paper plus its
// three baselines.
const (
	// TopoVanilla is the fault-intolerant single-server baseline (plain
	// averaging over all workers).
	TopoVanilla = "vanilla"
	// TopoSSMW is Listing 1: single trusted server, multiple workers,
	// robust gradient aggregation.
	TopoSSMW = "ssmw"
	// TopoAggregaThor is SSMW fixed to Multi-Krum, the AggregaThor
	// comparison baseline.
	TopoAggregaThor = "aggregathor"
	// TopoCrashTolerant is the replicated-server strawman that survives
	// crashes but not Byzantine behaviour.
	TopoCrashTolerant = "crash-tolerant"
	// TopoMSMW is Listing 2: replicated Byzantine-resilient servers.
	TopoMSMW = "msmw"
	// TopoDecentralized is Listing 3: peer-to-peer training, every node
	// a server+worker pair.
	TopoDecentralized = "decentralized"
	// TopoSharded partitions the aggregation itself across a crash-only
	// (fps = 0) server tier: coordinate-wise GARs shard the coordinate
	// space exactly, selection GARs run a two-level hierarchy (see
	// internal/shard and core.RunSharded). Requires Shards >= 1.
	TopoSharded = "sharded"
)

// Topologies returns the recognized topology names in a stable order.
func Topologies() []string {
	return []string{TopoVanilla, TopoSSMW, TopoAggregaThor,
		TopoCrashTolerant, TopoMSMW, TopoDecentralized, TopoSharded}
}

// Engine names accepted by Spec.Engine.
const (
	// EngineLive (the default) runs the cluster over the in-memory
	// transport: real RPC frames, one serving goroutine per node, wall
	// time.
	EngineLive = "live"
	// EngineSim runs the cluster on the discrete-event simulator
	// (internal/sim): direct handler dispatch under a virtual clock, so
	// thousands of nodes fit in one process and every timestamp is
	// deterministic. Requires Deterministic; incompatible with fault
	// schedules and the crash-tolerant/decentralized topologies (their
	// runners use live-transport machinery the simulator does not model).
	EngineSim = "sim"
)

// Engines returns the recognized engine names in a stable order.
func Engines() []string { return []string{EngineLive, EngineSim} }

// Model kinds accepted by ModelSpec.Kind.
const (
	ModelLinear   = "linear"
	ModelMLP      = "mlp"
	ModelCNN      = "cnn"
	ModelMNISTCNN = "mnistcnn"
)

// ModelSpec declaratively describes a model architecture.
type ModelSpec struct {
	// Kind selects the architecture: linear, mlp, cnn or mnistcnn.
	Kind string `json:"kind"`
	// In is the flattened input dimension (linear, mlp).
	In int `json:"in,omitempty"`
	// Hidden is the hidden-layer width (mlp).
	Hidden int `json:"hidden,omitempty"`
	// Classes is the number of output classes (all kinds except mnistcnn,
	// which is fixed at 10).
	Classes int `json:"classes,omitempty"`
	// H, W, C describe the input image (cnn).
	H int `json:"h,omitempty"`
	W int `json:"w,omitempty"`
	C int `json:"c,omitempty"`
	// Kernel and Filters describe the convolution (cnn).
	Kernel  int `json:"kernel,omitempty"`
	Filters int `json:"filters,omitempty"`
}

// inputDim returns the flattened input dimension the model expects, or 0
// when the kind is unknown.
func (m ModelSpec) inputDim() int {
	switch m.Kind {
	case ModelLinear, ModelMLP:
		return m.In
	case ModelCNN:
		return m.H * m.W * m.C
	case ModelMNISTCNN:
		return 28 * 28
	}
	return 0
}

// DatasetSpec mirrors data.SyntheticSpec with JSON tags: a deterministic
// Gaussian-mixture stand-in for the paper's datasets.
type DatasetSpec struct {
	// Name labels the dataset.
	Name string `json:"name,omitempty"`
	// Dim is the flattened feature dimension.
	Dim int `json:"dim"`
	// Classes is the number of mixture components / labels.
	Classes int `json:"classes"`
	// Train and Test are the example counts of each split.
	Train int `json:"train"`
	Test  int `json:"test"`
	// Separation scales the distance between class means.
	Separation float64 `json:"separation"`
	// Noise is the within-class standard deviation.
	Noise float64 `json:"noise"`
	// Seed makes generation deterministic.
	Seed uint64 `json:"seed"`
}

// synthetic converts the spec to the data package's generation input.
func (d DatasetSpec) synthetic() data.SyntheticSpec {
	return data.SyntheticSpec{
		Name: d.Name, Dim: d.Dim, Classes: d.Classes,
		Train: d.Train, Test: d.Test,
		Separation: d.Separation, Noise: d.Noise, Seed: d.Seed,
	}
}

// Learning-rate schedule kinds accepted by LRSpec.Kind.
const (
	LRConstant     = "constant"
	LRInverseDecay = "inverse-decay"
	LRStepDecay    = "step"
)

// LRSpec declaratively describes a learning-rate schedule. The zero value
// selects the core default (constant 0.1).
type LRSpec struct {
	// Kind selects the schedule: constant, inverse-decay or step.
	Kind string `json:"kind,omitempty"`
	// Base is gamma_0.
	Base float64 `json:"base,omitempty"`
	// HalfLife is the inverse-decay half life.
	HalfLife float64 `json:"half_life,omitempty"`
	// Factor and Every parameterize step decay.
	Factor float64 `json:"factor,omitempty"`
	Every  int     `json:"every,omitempty"`
}

// AttackSpec declaratively describes a Byzantine behaviour. The zero value
// (empty name) means honest. Parameter fields left zero take the attack
// package's paper defaults (random scale 1.0, reversed factor -100,
// little-is-enough z 1.5, fall-of-empires epsilon 1.1).
type AttackSpec struct {
	// Name is an attack name accepted by attack.New, or "" for honest.
	Name string `json:"name,omitempty"`
	// Seed seeds stochastic attacks (random). Seed 0 on a stochastic
	// server attack derives its stream by splitting the worker attack's
	// generator — the construction the paper's attack experiments use —
	// and falls back to the attack package's fixed default stream when
	// the worker attack is not stochastic either.
	Seed uint64 `json:"seed,omitempty"`
	// Scale is the random attack's noise scale.
	Scale float64 `json:"scale,omitempty"`
	// Factor is the reversed attack's multiplier.
	Factor float64 `json:"factor,omitempty"`
	// Z is the little-is-enough shift in standard deviations.
	Z float64 `json:"z,omitempty"`
	// Epsilon is the fall-of-empires scaling.
	Epsilon float64 `json:"epsilon,omitempty"`
}

// enabled reports whether the spec names an actual behaviour.
func (a AttackSpec) enabled() bool {
	return a.Name != "" && !strings.EqualFold(a.Name, attack.NameNone)
}

// stochastic reports whether the named attack consumes randomness.
func (a AttackSpec) stochastic() bool {
	return strings.EqualFold(a.Name, attack.NameRandom)
}

// Fault kinds accepted by Fault.Kind.
const (
	// FaultCrashServer crashes server replica Node: subsequent dials to
	// it fail (transport.Faulty severs its links).
	FaultCrashServer = "crash-server"
	// FaultRecoverServer restores a crashed server replica Node: its links
	// come back and (on the sharded topology) the replica catches up to
	// the fleet's model before its next round.
	FaultRecoverServer = "recover-server"
	// FaultCrashWorker crashes worker Node.
	FaultCrashWorker = "crash-worker"
	// FaultDelayWorker makes worker Node a straggler: every dial to it
	// waits DelayMS first (a slow link; pooled clients pay it on re-dial).
	FaultDelayWorker = "delay-worker"
	// FaultSlowWorker makes worker Node serve every request DelayMS late
	// (a slow node: the delay applies per request, even over persistent
	// connections — the steady straggler of the async experiments).
	FaultSlowWorker = "slow-worker"

	// FaultPartition splits the network between GroupA and GroupB (node
	// names like "server-0", "worker-3"): dials across the cut are refused
	// and established crossing connections severed, until a heal fault.
	FaultPartition = "partition"
	// FaultHeal removes every partition injected so far.
	FaultHeal = "heal"
	// FaultCorruptLink installs a seeded chaos program on the target
	// node's links that flips one byte of each framed message with
	// probability Prob (default 1). The RPC checksum layer detects and
	// rejects the mangled payloads, so the node looks faulty, not subtly
	// poisonous.
	FaultCorruptLink = "corrupt-link"
	// FaultReorderLink installs a seeded chaos program that holds back
	// each framed message with probability Prob (default 0.5), delivering
	// it after its successor — adjacent message swaps on the link.
	FaultReorderLink = "reorder-link"
	// FaultByzServer flips the ByzantineServer wrapper of a declared-
	// Byzantine replica (index in [nps-fps, nps)) to Mode: a replica that
	// served honestly turns adversarial mid-run. See core.ByzModes.
	FaultByzServer = "byz-server"

	// FaultJoin adds one honest node to the roster (Target side: "worker",
	// the default, or "server") — a membership epoch transition. A joining
	// server bootstraps model, optimizer and step from the current
	// primary's checkpoint; a joining worker gets a deterministic shard.
	FaultJoin = "join"
	// FaultLeave gracefully drains node Node of the Target side out of the
	// roster. The transition is validated against the GAR's n >= g(f)
	// floor and the async q = n - f requirement; a schedule that would
	// break them is rejected.
	FaultLeave = "leave"
	// FaultScale applies a batch membership change in one epoch: Delta > 0
	// joins that many nodes on the Target side, Delta < 0 drains the
	// highest-indexed active ones.
	FaultScale = "scale"
)

// Fault is one entry of a network-fault schedule: after After iterations
// have completed, the fault is injected through the cluster's
// transport.Faulty layer (or, for byz-server, its ByzantineServer wrapper)
// and training resumes for the remaining iterations.
type Fault struct {
	// After is the number of completed iterations before injection; it
	// must lie in [1, Iterations-1].
	After int `json:"after"`
	// Kind is one of the Fault* kind constants.
	Kind string `json:"kind"`
	// Node is the target node index (server replica or worker); unused by
	// partition and heal.
	Node int `json:"node"`
	// DelayMS is the injected per-pull delay for delay-worker/slow-worker.
	DelayMS int `json:"delay_ms,omitempty"`
	// Prob is the per-message probability of corrupt-link/reorder-link
	// (0 selects the kind's default).
	Prob float64 `json:"prob,omitempty"`
	// Mode is the byz-server behaviour to flip to (core.ByzModes).
	Mode string `json:"mode,omitempty"`
	// Target says which side corrupt-link/reorder-link's and the membership
	// faults' (join/leave/scale) Node indexes: "worker" (the default) or
	// "server".
	Target string `json:"target,omitempty"`
	// Delta is the scale fault's batch size: positive joins, negative
	// drains.
	Delta int `json:"delta,omitempty"`
	// GroupA and GroupB are the two sides of a partition, as node names
	// ("server-<i>", "worker-<i>").
	GroupA []string `json:"group_a,omitempty"`
	GroupB []string `json:"group_b,omitempty"`
}

// Spec fully describes one scenario: a deployment topology, the learning
// task, the adversary, a fault schedule and the run length. It is the
// serializable counterpart of core.Config + core.RunOptions.
type Spec struct {
	// Name identifies the scenario (registry key, sweep cell label).
	Name string `json:"name,omitempty"`
	// Description is a one-line human summary.
	Description string `json:"description,omitempty"`

	// Topology selects the protocol runner; see Topologies.
	Topology string `json:"topology"`

	// NW and FW are total and Byzantine worker counts.
	NW int `json:"nw"`
	FW int `json:"fw,omitempty"`
	// NPS and FPS are total and Byzantine server-replica counts. The
	// decentralized topology ignores them (every node is a server+worker
	// pair, so nps is forced to nw). The sharded topology requires
	// FPS = 0: its server tier is crash-only.
	NPS int `json:"nps,omitempty"`
	FPS int `json:"fps,omitempty"`
	// Shards is the sharded topology's partition count: coordinate-wise
	// rules split the coordinate space into that many ranges, selection
	// rules split the workers into that many groups. Required (>= 1) with
	// the sharded topology, rejected on every other.
	Shards int `json:"shards,omitempty"`

	// Rule is the gradient GAR; ModelRule the server-model GAR (MSMW,
	// decentralized), defaulting to median.
	Rule      string `json:"rule"`
	ModelRule string `json:"model_rule,omitempty"`
	// SyncQuorum collects from all n workers/peers instead of n - f.
	SyncQuorum bool `json:"sync_quorum,omitempty"`
	// Async selects the bounded-staleness execution engine instead of the
	// lockstep runner (ssmw and msmw topologies): servers aggregate as
	// soon as q = nw - fw sufficiently fresh gradients are queued, so
	// stragglers cost freshness rather than progress. Incompatible with
	// SyncQuorum; combined with Deterministic it runs the seeded
	// single-threaded replay (ssmw only).
	Async bool `json:"async,omitempty"`
	// StalenessBound is the async engine's tau: gradients computed more
	// than that many steps ago are discarded. Following the config
	// convention, 0 selects the core default (3) rather than "fresh only";
	// the smallest expressible bound is 1.
	StalenessBound int `json:"staleness_bound,omitempty"`
	// StalenessDamping scales an accepted stale gradient by
	// damping^staleness. 0 selects the core default (0.5) rather than
	// zero-weighting; to effectively silence stale gradients use a tiny
	// positive value, and 1 disables damping.
	StalenessDamping float64 `json:"staleness_damping,omitempty"`
	// ModelAggEvery spaces MSMW model contraction to every k iterations.
	ModelAggEvery int `json:"model_agg_every,omitempty"`
	// NonIID shards by label and enables the decentralized contract step;
	// ContractSteps is the number of contract rounds per iteration.
	NonIID        bool `json:"non_iid,omitempty"`
	ContractSteps int  `json:"contract_steps,omitempty"`

	// WorkerAttack and ServerAttack are the Byzantine behaviours of the
	// last FW workers / last FPS servers.
	WorkerAttack AttackSpec `json:"worker_attack,omitempty"`
	ServerAttack AttackSpec `json:"server_attack,omitempty"`
	// LiveWorkerAttack and LiveServerAttack override the declarative
	// attack specs with caller-constructed instances — the escape hatch
	// for custom adversaries or stateful attack objects deliberately
	// shared across several runs. They do not serialize; a spec loaded
	// from JSON always uses the declarative fields.
	LiveWorkerAttack attack.Attack `json:"-"`
	LiveServerAttack attack.Attack `json:"-"`
	// AttackSelfPeers gives Byzantine workers that many self-estimated
	// honest gradients per request (collusion attacks).
	AttackSelfPeers int `json:"attack_self_peers,omitempty"`

	// ServerByzMode selects the ByzantineServer wrapper behaviour of the
	// declared-Byzantine replicas from iteration 0 (core.ByzModes:
	// honest, random, reversed, stale, equivocate). Empty starts them
	// honest; a byz-server fault can still flip them mid-run.
	ServerByzMode string `json:"server_byz_mode,omitempty"`
	// ServerByzScale is the noise scale of the random/equivocate modes
	// (0 selects the core default).
	ServerByzScale float64 `json:"server_byz_scale,omitempty"`

	// Compression names the gradient codec workers apply to their pull
	// replies: "" or "fp64" (passthrough), "fp16", "int8", "topk" — see
	// internal/compress. TopK is the coordinate budget of the "topk" codec
	// (required with it, rejected otherwise); top-k workers carry an
	// error-feedback residual across steps.
	Compression string `json:"compression,omitempty"`
	TopK        int    `json:"top_k,omitempty"`

	// Model, Dataset and BatchSize describe the learning task.
	Model     ModelSpec   `json:"model"`
	Dataset   DatasetSpec `json:"dataset"`
	BatchSize int         `json:"batch_size"`
	// LR is the learning-rate schedule (zero value: constant 0.1).
	LR LRSpec `json:"lr,omitempty"`
	// Momentum is server-side momentum; WorkerMomentum worker-side.
	Momentum       float64 `json:"momentum,omitempty"`
	WorkerMomentum float64 `json:"worker_momentum,omitempty"`

	// Deterministic makes repeated runs bit-identical at the same seed:
	// workers serve one cached gradient estimate per step, servers
	// aggregate pulled vectors in canonical peer order, and replicated
	// topologies exchange models in lockstep (see core.Config). Combine
	// with SyncQuorum on replicated topologies — a q < n quorum's
	// responding subset is inherently timing-dependent.
	Deterministic bool `json:"deterministic,omitempty"`

	// Engine selects the execution substrate: "" or "live" runs over the
	// in-memory transport, "sim" over the discrete-event simulator (see
	// Engines). Sim requires Deterministic, supports the single-server and
	// msmw topologies (plus the deterministic async ssmw replay), and is
	// incompatible with fault schedules — the simulator has no
	// fault-injecting transport to schedule them through.
	Engine string `json:"engine,omitempty"`
	// SimLatencyMS, SimJitterMS and SimBandwidthMBps parameterize the
	// simulated network: base one-way link latency, per-message uniform
	// jitter bound, and per-link bandwidth charging payload serialization
	// time (0: infinite). All three require Engine "sim"; all-zero
	// simulates an instantaneous network, which is the configuration the
	// sim-vs-live equivalence goldens pin.
	SimLatencyMS     float64 `json:"sim_latency_ms,omitempty"`
	SimJitterMS      float64 `json:"sim_jitter_ms,omitempty"`
	SimBandwidthMBps float64 `json:"sim_bandwidth_mbps,omitempty"`

	// Seed drives all cluster randomness (sharding, init, sampling).
	Seed uint64 `json:"seed"`
	// Iterations and AccEvery tune the run (accuracy is measured every
	// AccEvery iterations and at the end; 0 = final only). A fault
	// schedule splits the run into segments; the AccEvery cadence
	// restarts at each segment boundary.
	Iterations int `json:"iterations"`
	AccEvery   int `json:"acc_every,omitempty"`
	// PullTimeoutMS bounds each pull round (0: core default 30s).
	PullTimeoutMS int `json:"pull_timeout_ms,omitempty"`

	// Faults is the network-fault schedule, applied in After order.
	Faults []Fault `json:"faults,omitempty"`
}

// clone returns a deep copy of the spec (the only reference field is the
// fault schedule).
func (sp Spec) clone() Spec {
	out := sp
	if len(sp.Faults) > 0 {
		out.Faults = append([]Fault(nil), sp.Faults...)
	}
	return out
}

// gradShape returns the (q, f) pair the topology's gradient aggregation
// runs with — the shape Validate checks the GAR's resilience requirement
// against.
func (sp Spec) gradShape() (q, f int) {
	switch sp.Topology {
	case TopoVanilla, TopoCrashTolerant:
		return sp.NW, 0
	case TopoSSMW, TopoAggregaThor:
		if sp.Async {
			return sp.NW - sp.FW, sp.FW // async collects q = n - f
		}
		return sp.NW, sp.FW
	case TopoSharded:
		if sp.SyncQuorum {
			return sp.NW, sp.FW
		}
		return sp.NW - sp.FW, sp.FW
	default: // msmw, decentralized
		if sp.SyncQuorum && !sp.Async {
			return sp.NW, sp.FW
		}
		return sp.NW - sp.FW, sp.FW
	}
}

// Validate checks the spec without materializing it: topology, cluster
// shape, GAR resilience requirements for the shape the topology will
// aggregate with, attack names, task dimensions and the fault schedule.
func (sp Spec) Validate() error {
	switch sp.Topology {
	case TopoVanilla, TopoSSMW, TopoAggregaThor, TopoCrashTolerant,
		TopoMSMW, TopoDecentralized, TopoSharded:
	case "":
		return fmt.Errorf("%w: topology is required (one of %v)", ErrSpec, Topologies())
	default:
		return fmt.Errorf("%w: unknown topology %q (want one of %v)", ErrSpec, sp.Topology, Topologies())
	}
	if sp.NW < 1 {
		return fmt.Errorf("%w: nw=%d", ErrSpec, sp.NW)
	}
	if sp.FW < 0 || sp.FW >= sp.NW {
		return fmt.Errorf("%w: fw=%d of nw=%d", ErrSpec, sp.FW, sp.NW)
	}
	nps := sp.NPS
	if sp.Topology == TopoDecentralized {
		nps = sp.NW
	}
	if sp.FPS < 0 || (nps > 0 && sp.FPS >= nps) {
		return fmt.Errorf("%w: fps=%d of nps=%d", ErrSpec, sp.FPS, nps)
	}
	if sp.Topology == TopoMSMW && nps < 2 {
		return fmt.Errorf("%w: msmw needs nps >= 2, got %d", ErrSpec, nps)
	}
	if sp.Topology == TopoSharded {
		if sp.Shards < 1 {
			return fmt.Errorf("%w: sharded topology needs shards >= 1, got %d", ErrSpec, sp.Shards)
		}
		if sp.FPS != 0 {
			return fmt.Errorf("%w: sharded runs a crash-only server tier (fps must be 0, got %d)", ErrSpec, sp.FPS)
		}
	} else if sp.Shards != 0 {
		return fmt.Errorf("%w: shards=%d requires the sharded topology (got %q)", ErrSpec, sp.Shards, sp.Topology)
	}
	if sp.BatchSize < 1 {
		return fmt.Errorf("%w: batch_size=%d", ErrSpec, sp.BatchSize)
	}
	if sp.Iterations < 1 {
		return fmt.Errorf("%w: iterations=%d", ErrSpec, sp.Iterations)
	}
	if sp.AccEvery < 0 {
		return fmt.Errorf("%w: acc_every=%d", ErrSpec, sp.AccEvery)
	}
	if err := sp.validateAsync(); err != nil {
		return err
	}
	if err := sp.validateEngine(); err != nil {
		return err
	}
	if err := sp.validateCompression(); err != nil {
		return err
	}

	// GAR requirement for the shape this topology aggregates gradients
	// with; surfaces gar.ErrUnknownRule and gar.ErrRequirement (the
	// paper's n >= g(f) preconditions).
	if sp.Rule == "" {
		return fmt.Errorf("%w: rule is required (one of %v)", ErrSpec, gar.Names())
	}
	rule := sp.Rule
	if sp.Topology == TopoAggregaThor {
		rule = gar.NameMultiKrum
	}
	if sp.Topology == TopoVanilla || sp.Topology == TopoCrashTolerant {
		rule = gar.NameAverage
	}
	q, f := sp.gradShape()
	if sp.Topology == TopoSharded && !gar.CoordinateWise(rule) {
		// A selection rule shards hierarchically: the floor that matters is
		// per worker group plus the crash-only root round, not the global
		// (q, f) shape — shard.NewHierarchical checks exactly those.
		if _, err := shard.NewHierarchical(rule, sp.NW, sp.FW, sp.Shards); err != nil {
			return fmt.Errorf("%w: rule %q over %d shard groups (nw=%d, fw=%d): %v",
				ErrSpec, rule, sp.Shards, sp.NW, sp.FW, err)
		}
	} else if _, err := gar.New(rule, q, f); err != nil {
		return fmt.Errorf("%w: rule %q with (q=%d, f=%d): %v", ErrSpec, rule, q, f, err)
	}
	if sp.Topology == TopoMSMW || sp.Topology == TopoDecentralized {
		modelRule := sp.ModelRule
		if modelRule == "" {
			modelRule = gar.NameMedian
		}
		qps, fps := nps-sp.FPS, sp.FPS
		if sp.Topology == TopoDecentralized {
			qps, fps = sp.NW-sp.FW, sp.FW
			if sp.SyncQuorum {
				qps = sp.NW
			}
		} else if sp.SyncQuorum {
			qps = nps
		}
		if _, err := gar.New(modelRule, qps, fps); err != nil {
			return fmt.Errorf("%w: model_rule %q with (q=%d, f=%d): %v", ErrSpec, modelRule, qps, fps, err)
		}
	}

	for _, a := range []AttackSpec{sp.WorkerAttack, sp.ServerAttack} {
		if !a.enabled() {
			continue
		}
		if _, err := attack.New(a.Name, nil); err != nil {
			return fmt.Errorf("%w: %v", ErrSpec, err)
		}
	}
	if sp.ServerByzMode != "" {
		if !core.ValidByzMode(sp.ServerByzMode) {
			return fmt.Errorf("%w: unknown server_byz_mode %q (want one of %v)",
				ErrSpec, sp.ServerByzMode, core.ByzModes())
		}
		if sp.ServerByzMode != core.ByzModeHonest && sp.FPS < 1 {
			return fmt.Errorf("%w: server_byz_mode %q needs fps >= 1 declared Byzantine servers",
				ErrSpec, sp.ServerByzMode)
		}
	}

	if err := sp.validateTask(); err != nil {
		return err
	}
	return sp.validateFaults(nps)
}

// validateAsync checks the bounded-staleness engine's constraints: it backs
// the ssmw and msmw topologies, its quorum is inherently q = n - f
// (SyncQuorum contradicts it), and the seeded deterministic replay exists
// for the single-server topology only.
func (sp Spec) validateAsync() error {
	if !sp.Async {
		if sp.StalenessBound != 0 || sp.StalenessDamping != 0 {
			return fmt.Errorf("%w: staleness_bound/staleness_damping require async", ErrSpec)
		}
		return nil
	}
	if sp.Topology != TopoSSMW && sp.Topology != TopoMSMW {
		return fmt.Errorf("%w: async supports topologies %q and %q, not %q",
			ErrSpec, TopoSSMW, TopoMSMW, sp.Topology)
	}
	if sp.SyncQuorum {
		return fmt.Errorf("%w: async collects q = n - f and contradicts sync_quorum", ErrSpec)
	}
	if sp.Deterministic && sp.Topology != TopoSSMW {
		return fmt.Errorf("%w: deterministic async replay supports %q only", ErrSpec, TopoSSMW)
	}
	if sp.StalenessBound < 0 {
		return fmt.Errorf("%w: staleness_bound=%d", ErrSpec, sp.StalenessBound)
	}
	if sp.StalenessDamping < 0 || sp.StalenessDamping > 1 {
		return fmt.Errorf("%w: staleness_damping=%v not in [0, 1]", ErrSpec, sp.StalenessDamping)
	}
	return nil
}

// validateEngine checks the execution-engine selection. The simulator runs
// the sequential deterministic protocol paths only: it requires
// Deterministic (concurrent steppers would interleave on one event queue in
// scheduler order, forfeiting reproducibility — the engine's whole point),
// excludes the crash-tolerant and decentralized topologies (their runners
// are inherently concurrent), and excludes fault schedules (faults inject
// through the live fault-injecting transport, which a simulated cluster
// does not have). The latency knobs in turn require the sim engine: on the
// live transport they would silently do nothing.
func (sp Spec) validateEngine() error {
	switch sp.Engine {
	case "", EngineLive:
		if sp.SimLatencyMS != 0 || sp.SimJitterMS != 0 || sp.SimBandwidthMBps != 0 {
			return fmt.Errorf("%w: sim_latency_ms/sim_jitter_ms/sim_bandwidth_mbps require engine %q",
				ErrSpec, EngineSim)
		}
		return nil
	case EngineSim:
	default:
		return fmt.Errorf("%w: unknown engine %q (want one of %v)", ErrSpec, sp.Engine, Engines())
	}
	if !sp.Deterministic {
		return fmt.Errorf("%w: engine %q requires deterministic mode", ErrSpec, EngineSim)
	}
	if sp.Topology == TopoCrashTolerant || sp.Topology == TopoDecentralized {
		return fmt.Errorf("%w: engine %q does not support topology %q (concurrent runner)",
			ErrSpec, EngineSim, sp.Topology)
	}
	if len(sp.Faults) > 0 {
		return fmt.Errorf("%w: engine %q does not support fault schedules", ErrSpec, EngineSim)
	}
	if sp.SimLatencyMS < 0 || sp.SimJitterMS < 0 || sp.SimBandwidthMBps < 0 {
		return fmt.Errorf("%w: negative sim latency/jitter/bandwidth", ErrSpec)
	}
	return nil
}

// validateCompression checks the gradient-codec knobs: a known codec name,
// and a top-k budget exactly when the top-k codec asks for one.
func (sp Spec) validateCompression() error {
	enc, err := compress.Parse(sp.Compression)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSpec, err)
	}
	if enc == compress.EncTopK && sp.TopK < 1 {
		return fmt.Errorf("%w: compression %q needs top_k >= 1, got %d", ErrSpec, sp.Compression, sp.TopK)
	}
	if enc != compress.EncTopK && sp.TopK != 0 {
		return fmt.Errorf("%w: top_k=%d requires compression \"topk\" (got %q)", ErrSpec, sp.TopK, sp.Compression)
	}
	return nil
}

func (sp Spec) validateTask() error {
	switch sp.Model.Kind {
	case ModelLinear, ModelMLP, ModelCNN, ModelMNISTCNN:
	case "":
		return fmt.Errorf("%w: model kind is required (linear, mlp, cnn, mnistcnn)", ErrSpec)
	default:
		return fmt.Errorf("%w: unknown model kind %q", ErrSpec, sp.Model.Kind)
	}
	d := sp.Dataset
	if d.Dim <= 0 || d.Classes <= 0 || d.Train <= 0 || d.Test <= 0 {
		return fmt.Errorf("%w: dataset needs positive dim/classes/train/test, got %+v", ErrSpec, d)
	}
	if in := sp.Model.inputDim(); in != 0 && in != d.Dim {
		return fmt.Errorf("%w: model input dim %d != dataset dim %d", ErrSpec, in, d.Dim)
	}
	return nil
}

func (sp Spec) validateFaults(nps int) error {
	if len(sp.Faults) == 0 {
		return nil
	}
	// Validate in application (After) order: the membership faults change
	// the fleet that later entries are checked against, so a crash of a
	// joiner or a partition naming it is legal, while a leave of an
	// already-drained node is not.
	order := make([]int, len(sp.Faults))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return sp.Faults[order[a]].After < sp.Faults[order[b]].After
	})
	if nps == 0 {
		nps = 1 // single-server topologies materialize one server (core default)
	}
	m := newChurnTrajectory(sp.NW, sp.FW, nps, sp.FPS)
	for _, i := range order {
		flt := sp.Faults[i]
		if flt.After < 1 || flt.After >= sp.Iterations {
			return fmt.Errorf("%w: fault %d: after=%d outside [1, %d)", ErrSpec, i, flt.After, sp.Iterations)
		}
		nwSlots, npsSlots := len(m.workerActive), len(m.serverActive)
		switch flt.Kind {
		case FaultCrashServer, FaultRecoverServer:
			if flt.Node < 0 || flt.Node >= npsSlots {
				return fmt.Errorf("%w: fault %d: server %d of %d", ErrSpec, i, flt.Node, npsSlots)
			}
		case FaultCrashWorker, FaultDelayWorker, FaultSlowWorker:
			if flt.Node < 0 || flt.Node >= nwSlots {
				return fmt.Errorf("%w: fault %d: worker %d of %d", ErrSpec, i, flt.Node, nwSlots)
			}
			if flt.Kind != FaultCrashWorker && flt.DelayMS <= 0 {
				return fmt.Errorf("%w: fault %d: %s needs delay_ms > 0", ErrSpec, i, flt.Kind)
			}
		case FaultPartition:
			if len(flt.GroupA) == 0 || len(flt.GroupB) == 0 {
				return fmt.Errorf("%w: fault %d: partition needs non-empty group_a and group_b", ErrSpec, i)
			}
			seen := map[string]bool{}
			for _, g := range [][]string{flt.GroupA, flt.GroupB} {
				for _, name := range g {
					if err := validNodeName(name, nwSlots, npsSlots); err != nil {
						return fmt.Errorf("%w: fault %d: %v", ErrSpec, i, err)
					}
					if seen[name] {
						return fmt.Errorf("%w: fault %d: node %q appears on both sides of the partition", ErrSpec, i, name)
					}
					seen[name] = true
				}
			}
		case FaultHeal:
			// No fields; heal clears every partition.
		case FaultCorruptLink, FaultReorderLink:
			limit, side := nwSlots, "worker"
			if flt.Target == "server" {
				limit, side = npsSlots, "server"
			} else if flt.Target != "" && flt.Target != "worker" {
				return fmt.Errorf("%w: fault %d: %s target %q (want worker or server)", ErrSpec, i, flt.Kind, flt.Target)
			}
			if flt.Node < 0 || flt.Node >= limit {
				return fmt.Errorf("%w: fault %d: %s %d of %d", ErrSpec, i, side, flt.Node, limit)
			}
			if flt.Prob < 0 || flt.Prob > 1 {
				return fmt.Errorf("%w: fault %d: %s prob %v not in [0, 1]", ErrSpec, i, flt.Kind, flt.Prob)
			}
		case FaultByzServer:
			// The target must be a declared-Byzantine replica still on the
			// roster: only those are undriven adversary slots, so the
			// schedule can flip at most fps servers Byzantine — the
			// resilience budget the model GAR was validated against.
			if sp.FPS < 1 {
				return fmt.Errorf("%w: fault %d: byz-server needs fps >= 1 declared Byzantine servers", ErrSpec, i)
			}
			if flt.Node < 0 || flt.Node >= npsSlots || !m.serverByz[flt.Node] {
				return fmt.Errorf("%w: fault %d: byz-server node %d is not a declared-Byzantine replica (the last fps=%d of the initial nps=%d)",
					ErrSpec, i, flt.Node, sp.FPS, nps)
			}
			if !m.serverActive[flt.Node] {
				return fmt.Errorf("%w: fault %d: byz-server node %d already left the roster", ErrSpec, i, flt.Node)
			}
			if flt.Mode != "" && !core.ValidByzMode(flt.Mode) {
				return fmt.Errorf("%w: fault %d: unknown byz-server mode %q (want one of %v)",
					ErrSpec, i, flt.Mode, core.ByzModes())
			}
		case FaultJoin, FaultLeave, FaultScale:
			if sp.Topology == TopoDecentralized {
				return fmt.Errorf("%w: fault %d: membership faults are not supported on the decentralized topology (every node is a server+worker pair)", ErrSpec, i)
			}
			if err := m.apply(sp, i, flt); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: fault %d: unknown kind %q", ErrSpec, i, flt.Kind)
		}
	}
	return nil
}

// churnTrajectory simulates the membership layer's roster across a fault
// schedule so Validate can reject a churn plan that would be refused (or
// strand the fleet) at runtime, before any cluster is built. Slots mirror
// core.Cluster's append-only node tables: joiners extend the tables, leavers
// flip active flags, and indices are stable.
type churnTrajectory struct {
	workerActive, workerByz []bool
	serverActive, serverByz []bool
}

func newChurnTrajectory(nw, fw, nps, fps int) *churnTrajectory {
	m := &churnTrajectory{
		workerActive: make([]bool, nw),
		workerByz:    make([]bool, nw),
		serverActive: make([]bool, nps),
		serverByz:    make([]bool, nps),
	}
	for i := range m.workerActive {
		m.workerActive[i] = true
		m.workerByz[i] = i >= nw-fw
	}
	for i := range m.serverActive {
		m.serverActive[i] = true
		m.serverByz[i] = i >= nps-fps
	}
	return m
}

// apply executes one membership fault on the simulated roster and validates
// the resulting fleet shape the same way core.Cluster does per epoch.
func (m *churnTrajectory) apply(sp Spec, i int, flt Fault) error {
	side := flt.Target
	if side == "" {
		side = "worker"
	}
	if side != "worker" && side != "server" {
		return fmt.Errorf("%w: fault %d: %s target %q (want worker or server)", ErrSpec, i, flt.Kind, side)
	}
	active, byz := &m.workerActive, &m.workerByz
	if side == "server" {
		active, byz = &m.serverActive, &m.serverByz
	}
	switch flt.Kind {
	case FaultJoin:
		*active = append(*active, true)
		*byz = append(*byz, false)
	case FaultLeave:
		if flt.Node < 0 || flt.Node >= len(*active) {
			return fmt.Errorf("%w: fault %d: leave %s %d of %d", ErrSpec, i, side, flt.Node, len(*active))
		}
		if !(*active)[flt.Node] {
			return fmt.Errorf("%w: fault %d: %s %d already left the roster", ErrSpec, i, side, flt.Node)
		}
		(*active)[flt.Node] = false
	case FaultScale:
		if flt.Delta == 0 {
			return fmt.Errorf("%w: fault %d: scale needs delta != 0", ErrSpec, i)
		}
		for k := 0; k < flt.Delta; k++ {
			*active = append(*active, true)
			*byz = append(*byz, false)
		}
		for k, drained := 0, 0; k < -flt.Delta; k++ {
			j := len(*active) - 1
			for ; j >= 0 && !(*active)[j]; j-- {
			}
			if j < 0 {
				return fmt.Errorf("%w: fault %d: scale %s by %d, only %d active", ErrSpec, i, side, flt.Delta, drained)
			}
			(*active)[j] = false
			drained++
		}
	}
	return m.check(sp, i)
}

// check mirrors the membership layer's per-transition validation: the
// gradient GAR's n >= g(f) floor, the async quorum q = n - f, and the
// replicated-topology requirements on the server side.
func (m *churnTrajectory) check(sp Spec, i int) error {
	count := func(active, byz []bool) (n, f int) {
		for j, a := range active {
			if a {
				n++
				if byz[j] {
					f++
				}
			}
		}
		return n, f
	}
	nw, fw := count(m.workerActive, m.workerByz)
	nps, fps := count(m.serverActive, m.serverByz)
	if nw < 1 || fw >= nw {
		return fmt.Errorf("%w: fault %d: roster left with nw=%d fw=%d", ErrSpec, i, nw, fw)
	}
	min, err := gar.MinN(sp.Rule, fw)
	if err != nil {
		return fmt.Errorf("%w: fault %d: %v", ErrSpec, i, err)
	}
	if nw < min || nw-fw < min {
		return fmt.Errorf("%w: fault %d: roster transition leaves nw=%d (q=%d) below g(f)=%d for rule %q at fw=%d",
			ErrSpec, i, nw, nw-fw, min, sp.Rule, fw)
	}
	if nps < 1 || fps >= nps {
		return fmt.Errorf("%w: fault %d: roster left with nps=%d fps=%d", ErrSpec, i, nps, fps)
	}
	if sp.Topology == TopoMSMW && nps < 2 {
		return fmt.Errorf("%w: fault %d: msmw needs nps >= 2, roster transition leaves %d", ErrSpec, i, nps)
	}
	if nps >= 2 {
		modelRule := sp.ModelRule
		if modelRule == "" {
			modelRule = gar.NameMedian
		}
		minM, err := gar.MinN(modelRule, fps)
		if err != nil {
			return fmt.Errorf("%w: fault %d: %v", ErrSpec, i, err)
		}
		if nps < minM {
			return fmt.Errorf("%w: fault %d: roster transition leaves nps=%d below g(f)=%d for model rule %q at fps=%d",
				ErrSpec, i, nps, minM, modelRule, fps)
		}
	}
	return nil
}

// validNodeName checks a partition-group entry: "worker-<i>" or
// "server-<i>" with the index in range.
func validNodeName(name string, nw, nps int) error {
	var idx int
	var limit int
	switch {
	case strings.HasPrefix(name, "worker-"):
		idx, limit = parseIndex(name[len("worker-"):]), nw
	case strings.HasPrefix(name, "server-"):
		idx, limit = parseIndex(name[len("server-"):]), nps
	default:
		return fmt.Errorf("bad node name %q (want worker-<i> or server-<i>)", name)
	}
	if idx < 0 || idx >= limit {
		return fmt.Errorf("node %q out of range (%d nodes on that side)", name, limit)
	}
	return nil
}

// parseIndex parses a non-negative decimal index, returning -1 on junk.
func parseIndex(s string) int {
	if s == "" {
		return -1
	}
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' || n > 1<<20 {
			return -1
		}
		n = n*10 + int(r-'0')
	}
	return n
}

// EncodeJSON writes the spec as indented JSON.
func (sp Spec) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sp)
}

// DecodeJSON parses a spec from JSON, rejecting unknown fields so typos in
// scenario files fail loudly. The decoded spec is not validated; call
// Validate (or let Run do it).
func DecodeJSON(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	return sp, nil
}

// sortedFaults returns the fault schedule ordered by After (stable for
// equal boundaries).
func (sp Spec) sortedFaults() []Fault {
	if len(sp.Faults) == 0 {
		return nil
	}
	out := append([]Fault(nil), sp.Faults...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].After < out[j].After })
	return out
}
