package scenario

import (
	"time"

	"garfield/internal/core"
	"garfield/internal/sim"
)

// SimMetrics is the discrete-event engine's measurement of one simulated
// run: quorum pull rounds, virtual step-latency percentiles, and throughput
// in simulated time. Every field is a deterministic function of (spec,
// seed) — the values sit in the bit-identical artifact set.
type SimMetrics struct {
	// Pulls counts completed quorum pull rounds.
	Pulls int `json:"pulls"`
	// StepP50MS and StepP99MS are virtual-time percentiles of the pull
	// round latency from start to quorum completion, in milliseconds.
	StepP50MS float64 `json:"step_p50_ms"`
	StepP99MS float64 `json:"step_p99_ms"`
	// VirtualSeconds is the run's simulated duration.
	VirtualSeconds float64 `json:"virtual_seconds"`
	// RoundsPerSec is model updates per simulated second (0 when the
	// simulated network is instantaneous — no virtual time elapses).
	RoundsPerSec float64 `json:"rounds_per_sec"`
}

// simWiring builds the discrete-event wiring the spec's sim knobs describe.
func simWiring(sp Spec) *sim.Wiring {
	return sim.New(sim.Config{
		Seed:          sp.Seed,
		Latency:       time.Duration(sp.SimLatencyMS * float64(time.Millisecond)),
		Jitter:        time.Duration(sp.SimJitterMS * float64(time.Millisecond)),
		BandwidthMBps: sp.SimBandwidthMBps,
	})
}

// NewSimCluster materializes the spec onto the discrete-event simulator and
// returns the cluster together with the sim wiring (the handle for
// engine-level stats). Callers own the cluster and must Close it.
func NewSimCluster(sp Spec) (*core.Cluster, *sim.Wiring, error) {
	cfg, err := Materialize(sp)
	if err != nil {
		return nil, nil, err
	}
	w := simWiring(sp)
	c, err := core.NewClusterWith(cfg, w)
	if err != nil {
		return nil, nil, err
	}
	return c, w, nil
}

// simMetrics folds the wiring's stats and the result's virtual wall time
// into the exported summary.
func simMetrics(w *sim.Wiring, res *core.Result) *SimMetrics {
	st := w.Stats()
	m := &SimMetrics{
		Pulls:          st.Pulls,
		StepP50MS:      float64(st.StepP50) / float64(time.Millisecond),
		StepP99MS:      float64(st.StepP99) / float64(time.Millisecond),
		VirtualSeconds: res.WallTime.Seconds(),
	}
	if res.WallTime > 0 {
		m.RoundsPerSec = float64(res.Updates) / res.WallTime.Seconds()
	}
	return m
}

// RunWithSimMetrics is Run for sim-engine specs, additionally returning the
// engine's step-latency and throughput measurements. A live-engine spec
// runs normally and returns nil metrics.
func RunWithSimMetrics(sp Spec) (*core.Result, *SimMetrics, error) {
	if sp.Engine != EngineSim {
		res, err := Run(sp)
		return res, nil, err
	}
	c, w, err := NewSimCluster(sp)
	if err != nil {
		return nil, nil, err
	}
	defer c.Close()
	// Validated sim specs carry no fault schedule, so runOn is exactly one
	// protocol run.
	res, err := runOn(c, sp)
	if err != nil {
		return nil, nil, err
	}
	return res, simMetrics(w, res), nil
}
