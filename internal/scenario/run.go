package scenario

import (
	"fmt"
	"time"

	"garfield/internal/core"
	"garfield/internal/metrics"
)

// Run materializes the spec, spawns the cluster, drives the topology's
// protocol through the spec's fault schedule and returns the merged result.
// It is the one-call entry point of the engine: every example and every
// live-cluster experiment generator goes through it.
func Run(sp Spec) (*core.Result, error) {
	c, err := NewCluster(sp) // Materialize validates
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return runOn(c, sp)
}

// RunOn drives the spec's protocol on an already-materialized cluster.
// Without faults it is exactly one protocol run; a fault schedule splits
// the run at each fault's After boundary, injects the fault through the
// cluster's fault-injecting transport, resumes training, and merges the
// segment results (iteration and wall-clock offsets are shifted so the
// merged curves read as one run).
func RunOn(c *core.Cluster, sp Spec) (*core.Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return runOn(c, sp)
}

// runOn is RunOn for specs already validated by Materialize.
func runOn(c *core.Cluster, sp Spec) (*core.Result, error) {
	faults := sp.sortedFaults()
	if len(faults) == 0 {
		return runTopology(c, sp, core.RunOptions{
			Iterations: sp.Iterations, AccEvery: sp.AccEvery,
		})
	}

	merged := &core.Result{
		Accuracy:         &metrics.Series{Name: sp.Topology},
		AccuracyOverTime: &metrics.Series{Name: sp.Topology},
		Breakdown:        &metrics.Breakdown{},
	}
	done := 0
	next := 0
	for done < sp.Iterations {
		// Find the segment end: the next fault boundary after done, or
		// the end of the run.
		end := sp.Iterations
		for next < len(faults) && faults[next].After <= done {
			next++ // schedule entries at or before done already fired
		}
		if next < len(faults) && faults[next].After < end {
			end = faults[next].After
		}
		seg, err := runTopology(c, sp, core.RunOptions{
			Iterations: end - done, AccEvery: sp.AccEvery,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: segment [%d, %d): %w", done, end, err)
		}
		mergeResult(merged, seg, done)
		done = end
		for next < len(faults) && faults[next].After == done {
			applyFault(c, faults[next])
			next++
		}
	}
	return merged, nil
}

// runTopology dispatches to the protocol runner the topology (and execution
// mode) names.
func runTopology(c *core.Cluster, sp Spec, ro core.RunOptions) (*core.Result, error) {
	if sp.Async {
		switch sp.Topology {
		case TopoSSMW:
			return c.RunAsyncSSMW(ro)
		case TopoMSMW:
			return c.RunAsyncMSMW(ro)
		}
		return nil, fmt.Errorf("%w: async does not support topology %q", ErrSpec, sp.Topology)
	}
	switch sp.Topology {
	case TopoVanilla:
		return c.RunVanilla(ro)
	case TopoSSMW:
		return c.RunSSMW(ro)
	case TopoAggregaThor:
		return c.RunAggregaThor(ro)
	case TopoCrashTolerant:
		return c.RunCrashTolerant(ro)
	case TopoMSMW:
		return c.RunMSMW(ro)
	case TopoDecentralized:
		return c.RunDecentralized(ro)
	}
	return nil, fmt.Errorf("%w: unknown topology %q", ErrSpec, sp.Topology)
}

// applyFault injects one scheduled fault into the cluster's transport.
func applyFault(c *core.Cluster, flt Fault) {
	switch flt.Kind {
	case FaultCrashServer:
		c.CrashServer(flt.Node)
	case FaultCrashWorker:
		c.CrashWorker(flt.Node)
	case FaultDelayWorker:
		c.DelayWorker(flt.Node, time.Duration(flt.DelayMS)*time.Millisecond)
	case FaultSlowWorker:
		c.SlowWorker(flt.Node, time.Duration(flt.DelayMS)*time.Millisecond)
	}
}

// mergeResult folds one segment into the merged result, shifting the
// segment's iteration axis by the iterations already completed and its
// wall-clock axis by the time already spent.
func mergeResult(dst *core.Result, seg *core.Result, iterOffset int) {
	secOffset := dst.WallTime.Seconds()
	for _, p := range seg.Accuracy.Points {
		dst.Accuracy.Append(p.X+float64(iterOffset), p.Y)
	}
	for _, p := range seg.AccuracyOverTime.Points {
		dst.AccuracyOverTime.Append(p.X+secOffset, p.Y)
	}
	dst.Breakdown.Merge(seg.Breakdown)
	if dst.Updates+seg.Updates > 0 {
		dst.AvgStaleness = (dst.AvgStaleness*float64(dst.Updates) +
			seg.AvgStaleness*float64(seg.Updates)) / float64(dst.Updates+seg.Updates)
	}
	dst.StaleDrops += seg.StaleDrops
	dst.Updates += seg.Updates
	dst.WallTime += seg.WallTime
}
