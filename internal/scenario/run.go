package scenario

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"

	"garfield/internal/core"
	"garfield/internal/metrics"
	"garfield/internal/transport"
)

// Run materializes the spec, spawns the cluster on the engine the spec
// names (live transport by default, the discrete-event simulator for
// Engine "sim"), drives the topology's protocol through the spec's fault
// schedule and returns the merged result. It is the one-call entry point of
// the engine: every example and every experiment generator goes through it.
func Run(sp Spec) (*core.Result, error) {
	if sp.Engine == EngineSim {
		res, _, err := RunWithSimMetrics(sp)
		return res, err
	}
	c, err := NewCluster(sp) // Materialize validates
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return runOn(c, sp)
}

// RunOn drives the spec's protocol on an already-materialized cluster.
// Without faults it is exactly one protocol run; a fault schedule splits
// the run at each fault's After boundary, injects the fault through the
// cluster's fault-injecting transport, resumes training, and merges the
// segment results (iteration and wall-clock offsets are shifted so the
// merged curves read as one run).
func RunOn(c *core.Cluster, sp Spec) (*core.Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return runOn(c, sp)
}

// Segment is one fault-free stretch of a segmented run: the iteration range
// it covered, its own Result (unmerged, so per-segment throughput is
// preserved), and the faults injected at its end boundary. The chaos
// invariant harness compares segments — e.g. steps/sec before a partition
// against steps/sec after the heal.
type Segment struct {
	// Start and End delimit the segment's iterations: [Start, End).
	Start, End int
	// Result is the segment's own measurement.
	Result *core.Result
	// FaultsApplied lists the schedule entries injected after the segment
	// completed (empty for the final segment).
	FaultsApplied []Fault
}

// RunSegmented is RunOn without the merge: it drives the spec through its
// fault schedule and returns one Segment per fault-free stretch. Callers
// that want the usual merged curves use RunOn/Run; callers that need
// per-segment measurements (the chaos liveness invariant) use this.
func RunSegmented(c *core.Cluster, sp Spec) ([]Segment, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return runSegmented(c, sp)
}

// runSegmented drives the validated spec segment by segment.
func runSegmented(c *core.Cluster, sp Spec) ([]Segment, error) {
	faults := sp.sortedFaults()
	var segments []Segment
	done := 0
	next := 0
	for done < sp.Iterations {
		// Find the segment end: the next fault boundary after done, or
		// the end of the run.
		end := sp.Iterations
		for next < len(faults) && faults[next].After <= done {
			next++ // schedule entries at or before done already fired
		}
		if next < len(faults) && faults[next].After < end {
			end = faults[next].After
		}
		res, err := runTopology(c, sp, core.RunOptions{
			Iterations: end - done, AccEvery: sp.AccEvery,
		})
		if err != nil {
			return segments, fmt.Errorf("scenario: segment [%d, %d): %w", done, end, err)
		}
		seg := Segment{Start: done, End: end, Result: res}
		done = end
		for next < len(faults) && faults[next].After == done {
			if err := applyFault(c, sp, faults[next]); err != nil {
				segments = append(segments, seg)
				return segments, fmt.Errorf("scenario: fault at iteration %d: %w", done, err)
			}
			seg.FaultsApplied = append(seg.FaultsApplied, faults[next])
			next++
		}
		segments = append(segments, seg)
	}
	return segments, nil
}

// runOn is RunOn for specs already validated by Materialize.
func runOn(c *core.Cluster, sp Spec) (*core.Result, error) {
	if len(sp.Faults) == 0 {
		return runTopology(c, sp, core.RunOptions{
			Iterations: sp.Iterations, AccEvery: sp.AccEvery,
		})
	}
	segments, err := runSegmented(c, sp)
	if err != nil {
		return nil, err
	}
	merged := &core.Result{
		Accuracy:         &metrics.Series{Name: sp.Topology},
		AccuracyOverTime: &metrics.Series{Name: sp.Topology},
		Breakdown:        &metrics.Breakdown{},
	}
	for _, seg := range segments {
		mergeResult(merged, seg.Result, seg.Start)
	}
	return merged, nil
}

// runTopology dispatches to the protocol runner the topology (and execution
// mode) names.
func runTopology(c *core.Cluster, sp Spec, ro core.RunOptions) (*core.Result, error) {
	if sp.Async {
		switch sp.Topology {
		case TopoSSMW:
			return c.RunAsyncSSMW(ro)
		case TopoMSMW:
			return c.RunAsyncMSMW(ro)
		}
		return nil, fmt.Errorf("%w: async does not support topology %q", ErrSpec, sp.Topology)
	}
	switch sp.Topology {
	case TopoVanilla:
		return c.RunVanilla(ro)
	case TopoSSMW:
		return c.RunSSMW(ro)
	case TopoAggregaThor:
		return c.RunAggregaThor(ro)
	case TopoCrashTolerant:
		return c.RunCrashTolerant(ro)
	case TopoMSMW:
		return c.RunMSMW(ro)
	case TopoDecentralized:
		return c.RunDecentralized(ro)
	case TopoSharded:
		return c.RunSharded(ro)
	}
	return nil, fmt.Errorf("%w: unknown topology %q", ErrSpec, sp.Topology)
}

// linkSeed derives a link program's seed from the spec seed and the target
// node, domain-separated (FNV-64a over a tagged message) from the cluster,
// attack and byz-server streams.
func linkSeed(seed uint64, kind string, node int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(fmt.Sprintf("/link/%s/%d", kind, node)))
	return h.Sum64()
}

// Default per-message probabilities when a link fault's Prob is zero:
// corrupt-link mangles every message (the strongest test of the checksum
// path), reorder-link swaps about half.
const (
	defaultCorruptProb = 1.0
	defaultReorderProb = 0.5
)

// applyFault injects one scheduled fault into the cluster. Network faults
// cannot fail on a validated spec; the membership faults can in principle
// (the cluster re-validates every roster transition), and their error
// aborts the run.
func applyFault(c *core.Cluster, sp Spec, flt Fault) error {
	switch flt.Kind {
	case FaultCrashServer:
		c.CrashServer(flt.Node)
	case FaultRecoverServer:
		return c.RecoverServer(flt.Node)
	case FaultCrashWorker:
		c.CrashWorker(flt.Node)
	case FaultDelayWorker:
		c.DelayWorker(flt.Node, time.Duration(flt.DelayMS)*time.Millisecond)
	case FaultSlowWorker:
		c.SlowWorker(flt.Node, time.Duration(flt.DelayMS)*time.Millisecond)
	case FaultPartition:
		c.Partition(flt.GroupA, flt.GroupB)
	case FaultHeal:
		c.HealPartitions()
	case FaultCorruptLink:
		prob := flt.Prob
		if prob == 0 {
			prob = defaultCorruptProb
		}
		lf := transport.LinkFault{Corrupt: prob}
		if flt.Target == "server" {
			c.SetServerLinkFault(flt.Node, lf, linkSeed(sp.Seed, flt.Kind, flt.Node))
		} else {
			c.SetWorkerLinkFault(flt.Node, lf, linkSeed(sp.Seed, flt.Kind, flt.Node))
		}
	case FaultReorderLink:
		prob := flt.Prob
		if prob == 0 {
			prob = defaultReorderProb
		}
		lf := transport.LinkFault{Reorder: prob}
		if flt.Target == "server" {
			c.SetServerLinkFault(flt.Node, lf, linkSeed(sp.Seed, flt.Kind, flt.Node))
		} else {
			c.SetWorkerLinkFault(flt.Node, lf, linkSeed(sp.Seed, flt.Kind, flt.Node))
		}
	case FaultByzServer:
		// Validate pinned the node to the declared-Byzantine tail, so the
		// wrapper exists and SetServerByzMode cannot fail on a validated
		// spec.
		_ = c.SetServerByzMode(flt.Node, flt.Mode)
	case FaultJoin:
		if flt.Target == "server" {
			_, err := c.JoinServer(nil)
			return err
		}
		_, err := c.JoinWorker()
		return err
	case FaultLeave:
		if flt.Target == "server" {
			return c.LeaveServer(flt.Node)
		}
		return c.LeaveWorker(flt.Node)
	case FaultScale:
		if flt.Target == "server" {
			return c.ScaleServers(flt.Delta)
		}
		return c.ScaleWorkers(flt.Delta)
	}
	return nil
}

// mergeResult folds one segment into the merged result, shifting the
// segment's iteration axis by the iterations already completed and its
// wall-clock axis by the time already spent.
func mergeResult(dst *core.Result, seg *core.Result, iterOffset int) {
	secOffset := dst.WallTime.Seconds()
	for _, p := range seg.Accuracy.Points {
		dst.Accuracy.Append(p.X+float64(iterOffset), p.Y)
	}
	for _, p := range seg.AccuracyOverTime.Points {
		dst.AccuracyOverTime.Append(p.X+secOffset, p.Y)
	}
	dst.Breakdown.Merge(seg.Breakdown)
	if dst.Updates+seg.Updates > 0 {
		dst.AvgStaleness = (dst.AvgStaleness*float64(dst.Updates) +
			seg.AvgStaleness*float64(seg.Updates)) / float64(dst.Updates+seg.Updates)
	}
	dst.StaleDrops += seg.StaleDrops
	dst.ShardRounds += seg.ShardRounds
	dst.ShardAborts += seg.ShardAborts
	dst.ShardFailovers += seg.ShardFailovers
	dst.Updates += seg.Updates
	dst.WallTime += seg.WallTime
	dst.Wire = dst.Wire.Add(seg.Wire)
}
