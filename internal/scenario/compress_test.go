package scenario

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestCompressionSpecValidation: the codec knobs are vetted like every
// other spec field — unknown names and inconsistent top-k budgets fail
// loudly before a cluster is built.
func TestCompressionSpecValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		errPart string
	}{
		{"unknown codec", func(sp *Spec) { sp.Compression = "gzip" }, "unknown encoding"},
		{"topk without budget", func(sp *Spec) { sp.Compression = "topk" }, "top_k >= 1"},
		{"budget without topk", func(sp *Spec) { sp.TopK = 8 }, `requires compression "topk"`},
		{"budget on dense codec", func(sp *Spec) { sp.Compression = "int8"; sp.TopK = 8 }, `requires compression "topk"`},
	}
	for _, tc := range cases {
		sp := validSpec()
		tc.mutate(&sp)
		err := sp.Validate()
		if !errors.Is(err, ErrSpec) {
			t.Errorf("%s: err = %v, want ErrSpec", tc.name, err)
			continue
		}
		if !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("%s: err %q does not mention %q", tc.name, err, tc.errPart)
		}
	}
	// And the valid shapes pass.
	for _, ok := range []struct {
		codec string
		topK  int
	}{{"", 0}, {"fp64", 0}, {"fp16", 0}, {"int8", 0}, {"topk", 16}} {
		sp := validSpec()
		sp.Compression, sp.TopK = ok.codec, ok.topK
		if err := sp.Validate(); err != nil {
			t.Errorf("compression=%q top_k=%d rejected: %v", ok.codec, ok.topK, err)
		}
	}
}

// TestCompressionSpecJSONRoundTrip: the new knobs serialize with the spec.
func TestCompressionSpecJSONRoundTrip(t *testing.T) {
	sp := validSpec()
	sp.Compression = "topk"
	sp.TopK = 12
	var buf strings.Builder
	if err := sp.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Compression != "topk" || back.TopK != 12 {
		t.Fatalf("round trip lost compression knobs: %+v", back)
	}
}

// TestCompressedRunAccountsBytes: a compressed scenario run reports wire
// accounting through Result, with the int8 ratio the acceptance criteria
// demand.
func TestCompressedRunAccountsBytes(t *testing.T) {
	sp := validSpec()
	sp.Compression = "int8"
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Wire.Replies == 0 {
		t.Fatal("no reply accounting in scenario result")
	}
	if res.Wire.ReplyFP64Bytes < 4*res.Wire.ReplyPayloadBytes {
		t.Fatalf("int8 reply ratio %.2fx < 4x", res.Wire.ReplyCompressionRatio())
	}
}

// TestSweepBitIdenticalWithCompression extends the engine's determinism
// contract to the compression path: identical compressed sweeps — top-k
// error feedback included — produce byte-identical artifacts, now carrying
// the wire-byte columns.
func TestSweepBitIdenticalWithCompression(t *testing.T) {
	base := sweepBase()
	base.Compression = "topk"
	base.TopK = 8
	m := Matrix{
		Name:  "determinism-compressed",
		Base:  base,
		Rules: []string{"median", "krum"},
	}
	dirA, dirB := filepath.Join(t.TempDir(), "a"), filepath.Join(t.TempDir(), "b")
	repA, err := RunSweep(m, SweepOptions{OutDir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	repB, err := RunSweep(m, SweepOptions{OutDir: dirB})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range repA.Cells {
		if c.Status != "ok" {
			t.Fatalf("cell %s failed: %s", c.ID, c.Error)
		}
		if c.ReplyPayloadBytes == 0 || c.ReplyFP64Bytes <= c.ReplyPayloadBytes {
			t.Fatalf("cell %s: top-k accounting not compressed: shipped %d baseline %d",
				c.ID, c.ReplyPayloadBytes, c.ReplyFP64Bytes)
		}
	}
	if !reflect.DeepEqual(repA, repB) {
		t.Fatal("two compressed sweeps at the same seed produced different reports")
	}
	summaryA, err := os.ReadFile(filepath.Join(dirA, "summary.csv"))
	if err != nil {
		t.Fatal(err)
	}
	summaryB, err := os.ReadFile(filepath.Join(dirB, "summary.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(summaryA) != string(summaryB) {
		t.Fatal("summary.csv differs between identical compressed sweeps")
	}
	header := strings.SplitN(string(summaryA), "\n", 2)[0]
	for _, col := range []string{"wire_in", "wire_out", "reply_payload_bytes", "reply_fp64_bytes"} {
		if !strings.Contains(header, col) {
			t.Fatalf("summary.csv header %q missing column %q", header, col)
		}
	}
}
