package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"garfield/internal/core"
	"garfield/internal/tensor"
)

// simScaleSpec builds a sim-engine spec for nw workers: a small linear task
// whose dataset is just big enough to give every worker a shard, a couple
// of virtual-latency knobs so virtual time actually elapses, and a short
// run — at simulator scale the node count, not the iteration count, is what
// the tests are probing.
func simScaleSpec(topo string, nw, fw, nps, fps, iters int) Spec {
	sp := Spec{
		Name:     "sim-scale",
		Topology: topo,
		NW:       nw, FW: fw,
		NPS: nps, FPS: fps,
		Rule:          "median",
		Deterministic: true,
		Engine:        EngineSim,
		SimLatencyMS:  1.0,
		SimJitterMS:   0.2,
		Model:         ModelSpec{Kind: ModelLinear, In: 16, Classes: 4},
		Dataset: DatasetSpec{
			Name: "sim-scale", Dim: 16, Classes: 4,
			Train: 2 * nw, Test: 64,
			Separation: 1.0, Noise: 0.2, Seed: 1,
		},
		BatchSize: 2,
		Seed:      20210, Iterations: iters,
	}
	if fw > 0 {
		sp.WorkerAttack = AttackSpec{Name: "reversed"}
	}
	if topo == TopoMSMW {
		sp.SyncQuorum = true
	}
	return sp
}

// TestSimSweepBitIdentical is the seed-stability lock at simulator scale:
// two sweeps over 1,000-worker sim cells must produce byte-identical
// sweep.json, summary.csv and curve artifacts — including the sim columns
// (step p50/p99, rounds/sec), which are virtual-time derived and therefore
// inside the bit-identical set.
func TestSimSweepBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("1,000-node sweep runs twice; skipped with -short")
	}
	m := Matrix{
		Name: "sim-determinism",
		Base: simScaleSpec(TopoSSMW, 1000, 100, 0, 0, 3),
		FWs:  []int{0, 100},
	}
	dirA, dirB := filepath.Join(t.TempDir(), "a"), filepath.Join(t.TempDir(), "b")
	repA, err := RunSweep(m, SweepOptions{OutDir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	repB, err := RunSweep(m, SweepOptions{OutDir: dirB})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range repA.Cells {
		if c.Status != "ok" {
			t.Fatalf("cell %s failed: %s", c.ID, c.Error)
		}
		if c.SimStepP50MS <= 0 || c.SimStepP99MS < c.SimStepP50MS || c.SimRoundsPerSec <= 0 {
			t.Fatalf("cell %s: degenerate sim metrics %+v", c.ID, c)
		}
	}
	if !reflect.DeepEqual(repA, repB) {
		t.Fatal("two sim sweeps at the same seed produced different reports")
	}
	entries, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(repA.Cells) + 2; len(entries) != want {
		t.Fatalf("got %d artifacts, want %d", len(entries), want)
	}
	for _, e := range entries {
		a, err := os.ReadFile(filepath.Join(dirA, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, e.Name()))
		if err != nil {
			t.Fatalf("artifact %s missing from second run: %v", e.Name(), err)
		}
		if string(a) != string(b) {
			t.Errorf("artifact %s differs between runs", e.Name())
		}
	}
}

// TestSimCrossNSafetyInvariant checks the safety invariant the simulator
// unlocks at sizes the live transport cannot reach: under up to f reversed
// attackers, median keeps the final model within a constant factor of the
// honest run's — at every n. A GAR (or engine) bug that let attacker mass
// through would blow the attacked norm up relative to the honest baseline.
func TestSimCrossNSafetyInvariant(t *testing.T) {
	sizes := []int{100, 1000, 5000}
	if testing.Short() {
		sizes = []int{100}
	}
	for _, n := range sizes {
		f := n / 10
		spH := simScaleSpec(TopoSSMW, n, 0, 0, 0, 3)
		spA := simScaleSpec(TopoSSMW, n, f, 0, 0, 3)
		pH := finalParams(t, spH)
		pA := finalParams(t, spA)
		nh, na := pH.Norm(), pA.Norm()
		if na > 10*(nh+1) {
			t.Fatalf("n=%d: attacked norm %v >> honest norm %v (safety bound violated)", n, na, nh)
		}
	}
}

// finalParams runs the sim spec and returns the first server's final model.
func finalParams(t *testing.T, sp Spec) tensor.Vector {
	t.Helper()
	c, _, err := NewSimCluster(sp)
	if err != nil {
		t.Fatalf("%s: cluster: %v", sp.Name, err)
	}
	defer c.Close()
	if _, err := RunOn(c, sp); err != nil {
		t.Fatalf("%s: run: %v", sp.Name, err)
	}
	return c.Server(c.Roster().Servers[0]).Params()
}

// TestSimHostLoadIndependent is the regression test for the wall-clock
// audit: every timestamp in a simulated run flows from the virtual clock,
// so repeated runs must agree on *everything* — including WallTime, the
// accuracy-over-time axis and the phase breakdown, the fields that on the
// live engine vary with host load. Runs under -race in CI like the rest of
// the package.
func TestSimHostLoadIndependent(t *testing.T) {
	sp := simScaleSpec(TopoMSMW, 24, 3, 4, 1, 4)
	sp.AccEvery = 2
	run := func() (*core.Result, *SimMetrics) {
		res, m, err := RunWithSimMetrics(sp)
		if err != nil {
			t.Fatal(err)
		}
		return res, m
	}
	res0, met0 := run()
	if res0.WallTime <= 0 {
		t.Fatalf("virtual wall time %v, want > 0 with 1ms links", res0.WallTime)
	}
	for i := 0; i < 2; i++ {
		res, met := run()
		if res.WallTime != res0.WallTime {
			t.Fatalf("run %d: virtual wall time %v != %v", i, res.WallTime, res0.WallTime)
		}
		if !reflect.DeepEqual(res.AccuracyOverTime, res0.AccuracyOverTime) {
			t.Fatalf("run %d: accuracy-over-time axes differ", i)
		}
		if !reflect.DeepEqual(res.Accuracy, res0.Accuracy) {
			t.Fatalf("run %d: accuracy curves differ", i)
		}
		if !reflect.DeepEqual(met, met0) {
			t.Fatalf("run %d: sim metrics %+v != %+v", i, met, met0)
		}
	}
}

// TestSimScaleSmoke is the acceptance bar: 5,000 workers (500 of them
// reversed attackers) against 20 server replicas, in one process, in under
// a minute, with live step-latency percentiles and simulated throughput
// coming out the other end.
func TestSimScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("5,000-node cluster; skipped with -short")
	}
	sp := simScaleSpec(TopoMSMW, 5000, 500, 20, 0, 3)
	t0 := time.Now()
	res, met, err := RunWithSimMetrics(sp)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(t0)
	if elapsed > 60*time.Second {
		t.Fatalf("5,000-worker sim took %v, acceptance bar is 60s", elapsed)
	}
	if res.Updates != sp.Iterations {
		t.Fatalf("updates %d, want %d", res.Updates, sp.Iterations)
	}
	if met.Pulls == 0 || met.StepP50MS <= 0 || met.StepP99MS < met.StepP50MS || met.RoundsPerSec <= 0 {
		t.Fatalf("degenerate sim metrics at scale: %+v", met)
	}
	t.Logf("5,000 workers + 20 replicas: %v wall, %d pulls, p50=%.3fms p99=%.3fms, %.2f rounds/virtual-sec",
		elapsed, met.Pulls, met.StepP50MS, met.StepP99MS, met.RoundsPerSec)
}
