package scenario

import (
	"os"
	"path/filepath"
	"testing"

	"garfield/internal/core"
	"garfield/internal/metrics"
	"garfield/internal/tensor"
)

// simGoldenPresets are the live-scale presets the sim-vs-live equivalence
// goldens pin: every registry preset that runs on a sim-supported topology
// with a q = n quorum and no fault schedule. The q = n restriction is load-
// bearing, not convenience: with q < n the live engine cancels straggler
// pulls after the quorum and those workers still consumed a sampler draw,
// while the simulator never dispatches a cancelled arrival — the two
// engines agree on the model trajectory only when every pull reaches every
// peer.
var simGoldenPresets = []string{
	"quickstart",
	"vanilla-baseline",
	"aggregathor",
	"mnistcnn-lie",
	"ssmw-random",
	"ssmw-reversed",
	"ssmw-littleisenough",
	"ssmw-fallofempires",
	"msmw-demo",
	"msmw-random",
	"msmw-reversed",
	"msmw-littleisenough",
	"msmw-fallofempires",
	"compress-int8",
	"compress-fp16",
	"compress-topk",
	"sweep-default",
}

// goldenSpec loads a preset and pins it for the equivalence comparison:
// deterministic mode on both legs and a shortened run so the full table
// stays fast.
func goldenSpec(t *testing.T, name string) Spec {
	t.Helper()
	sp, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	sp.Deterministic = true
	if sp.Iterations > 12 {
		sp.Iterations = 12
		sp.AccEvery = 4
	}
	return sp
}

// runLeg materializes the spec on its engine, drives the protocol, and
// returns the result together with the first server's final parameters.
func runLeg(t *testing.T, sp Spec) (*core.Result, tensor.Vector) {
	t.Helper()
	var c *core.Cluster
	var err error
	if sp.Engine == EngineSim {
		c, _, err = NewSimCluster(sp)
	} else {
		c, err = NewCluster(sp)
	}
	if err != nil {
		t.Fatalf("%s: cluster: %v", sp.Name, err)
	}
	defer c.Close()
	res, err := RunOn(c, sp)
	if err != nil {
		t.Fatalf("%s: run: %v", sp.Name, err)
	}
	return res, c.Server(c.Roster().Servers[0]).Params()
}

// curveBytes renders an accuracy curve through the sweep's own CSV writer
// and returns the artifact bytes.
func curveBytes(t *testing.T, dir, leg string, points []metrics.Point) []byte {
	t.Helper()
	path := filepath.Join(dir, leg+".csv")
	if err := writeCurveCSV(path, CellResult{Accuracy: points}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSimMatchesLiveDeterministic is the equivalence golden: for every
// live-scale preset, a simulated run at zero configured latency must be
// bit-identical to the live deterministic run at the same seed — same model
// trajectory (final parameters, float for float), same update count, and a
// byte-identical accuracy-curve CSV artifact.
func TestSimMatchesLiveDeterministic(t *testing.T) {
	presets := simGoldenPresets
	if testing.Short() {
		presets = []string{"quickstart", "msmw-demo", "sweep-default"}
	}
	for _, name := range presets {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sp := goldenSpec(t, name)
			liveRes, liveParams := runLeg(t, sp)

			simSp := sp
			simSp.Engine = EngineSim // zero latency knobs: instantaneous network
			simRes, simParams := runLeg(t, simSp)

			if !liveParams.Equal(simParams) {
				t.Fatalf("final parameters diverge (dim %d)", liveParams.Dim())
			}
			if liveRes.Updates != simRes.Updates {
				t.Fatalf("updates: live %d, sim %d", liveRes.Updates, simRes.Updates)
			}
			dir := t.TempDir()
			lb := curveBytes(t, dir, "live", liveRes.Accuracy.Points)
			sb := curveBytes(t, dir, "sim", simRes.Accuracy.Points)
			if string(lb) != string(sb) {
				t.Fatalf("accuracy-curve CSVs differ:\nlive:\n%s\nsim:\n%s", lb, sb)
			}
		})
	}
}

// TestSimMatchesLiveAsyncReplay extends the goldens to the deterministic
// async engine: the seeded single-threaded replay issues its pulls through
// rpc.Caller.Call, so it runs under either wiring and must not notice which
// one it got.
func TestSimMatchesLiveAsyncReplay(t *testing.T) {
	sp, err := ByName("async-crash")
	if err != nil {
		t.Fatal(err)
	}
	sp.Faults = nil // the replay schedule, not transport faults, is the point
	sp.Deterministic = true
	sp.Iterations, sp.AccEvery = 12, 4
	liveRes, liveParams := runLeg(t, sp)

	simSp := sp
	simSp.Engine = EngineSim
	simRes, simParams := runLeg(t, simSp)

	if !liveParams.Equal(simParams) {
		t.Fatal("async replay: final parameters diverge between live and sim")
	}
	if liveRes.Updates != simRes.Updates || liveRes.StaleDrops != simRes.StaleDrops ||
		liveRes.AvgStaleness != simRes.AvgStaleness {
		t.Fatalf("async replay: live (updates=%d drops=%d stale=%v) != sim (updates=%d drops=%d stale=%v)",
			liveRes.Updates, liveRes.StaleDrops, liveRes.AvgStaleness,
			simRes.Updates, simRes.StaleDrops, simRes.AvgStaleness)
	}
}
