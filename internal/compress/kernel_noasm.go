//go:build !amd64 || purego

package compress

// useAsmCodec is false on targets without the AVX2/F16C kernels (and under
// the purego build tag, which CI uses to keep the generic path covered); the
// stubs below exist only to satisfy the dispatch functions and are
// unreachable.
const useAsmCodec = false

func f16EncodeAsm([]byte, []float64)                     { panic("compress: no asm kernels") }
func f16DecodeAsm([]float64, []byte)                     { panic("compress: no asm kernels") }
func int8RangeAsm([]float64) (float64, float64, bool)    { panic("compress: no asm kernels") }
func int8QuantAsm([]byte, []float64, float64, float64)   { panic("compress: no asm kernels") }
func int8DequantAsm([]float64, []byte, float64, float64) { panic("compress: no asm kernels") }
func foldAbsAsm(acc, v, mags []float64)                  { panic("compress: no asm kernels") }
