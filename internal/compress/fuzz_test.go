package compress

import (
	"testing"

	"garfield/internal/tensor"
)

// Fuzz and corruption suites for the codec decoders. A compressed payload
// normally rides inside a CRC-32C-checksummed RPC frame, but the decoders
// cannot assume that: a Byzantine peer authors its payload bytes directly,
// checksummed and all, so Decode must never panic and must reject every
// structural inconsistency (mirroring FuzzCheckpointDecode for the
// checkpoint format). Value-level flips the structure cannot witness decode
// to different numbers — that is the GARs' problem, and exactly what the
// checksummed frames exist to keep honest links from introducing.

// fuzzPayloads returns one canonical payload per codec.
func fuzzPayloads(tb testing.TB) map[Encoding][]byte {
	tb.Helper()
	v := testVector(300, 99) // spans one full int8 chunk plus a remainder
	out := map[Encoding][]byte{}
	for _, enc := range []Encoding{EncFP64, EncFP16, EncInt8, EncTopK} {
		c, err := NewCompressor(enc, 9)
		if err != nil {
			tb.Fatal(err)
		}
		out[enc] = c.Compress(nil, v)
	}
	return out
}

// FuzzCompressDecode fuzzes Decode across every encoding byte: arbitrary
// (enc, payload) pairs must either decode cleanly or return an error —
// never panic, never read out of bounds — and a successful decode must
// re-encode/re-decode to the identical vector under the stateless codecs.
func FuzzCompressDecode(f *testing.F) {
	for enc, payload := range fuzzPayloads(f) {
		f.Add(byte(enc), payload)
	}
	f.Add(byte(EncTopK), []byte{4, 0, 0, 0, 9, 0, 0, 0}) // k > d
	f.Add(byte(255), []byte{1, 2, 3})
	f.Add(byte(EncInt8), []byte{})
	// The double-rounding boundary neighborhood: an fp16 payload holding the
	// patterns whose float64 expansions sit on or next to the rounding
	// boundaries the fp16 fix is about — max subnormal (0x03ff), min normal
	// (0x0400), max finite (0x7bff), Inf (0x7c00), the canonical quiet NaN
	// (0x7e00), an unquieted NaN payload (0x7c01), min subnormal (0x0001)
	// and an odd-mantissa normal (0x3c01, the nearest-even tie's landing
	// spot). The fixed-point re-encode in the fuzz body then walks the
	// mutated neighborhoods through float16bits/float16frombits.
	f.Add(byte(EncFP16), []byte{
		8, 0, 0, 0, // d = 8
		0xff, 0x03, 0x00, 0x04, 0xff, 0x7b, 0x00, 0x7c,
		0x00, 0x7e, 0x01, 0x7c, 0x01, 0x00, 0x01, 0x3c,
	})
	f.Fuzz(func(t *testing.T, encByte byte, data []byte) {
		enc := Encoding(encByte)
		var out tensor.Vector
		if err := Decode(&out, enc, data); err != nil {
			return
		}
		if !enc.Valid() {
			t.Fatalf("unknown encoding %d decoded successfully", encByte)
		}
		// Deterministic re-encode for the dense codecs: decode(enc(x)) is a
		// fixed point once the first lossy pass has happened.
		if enc == EncFP64 || enc == EncFP16 {
			c, err := NewCompressor(enc, 0)
			if err != nil {
				t.Fatal(err)
			}
			var again tensor.Vector
			if err := Decode(&again, enc, c.Compress(nil, out)); err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if len(again) != len(out) {
				t.Fatalf("re-decode length %d != %d", len(again), len(out))
			}
		}
	})
}

// TestDecodeRejectsTruncation exhaustively truncates each codec's canonical
// payload: every strict prefix must be rejected — the decoders validate the
// exact expected length before reading values, so truncation can never
// silently decode to a shorter vector.
func TestDecodeRejectsTruncation(t *testing.T) {
	for enc, payload := range fuzzPayloads(t) {
		for cut := 0; cut < len(payload); cut++ {
			var out tensor.Vector
			if err := Decode(&out, enc, payload[:cut]); err == nil {
				t.Fatalf("%v: truncation to %d of %d bytes decoded successfully", enc, cut, len(payload))
			}
		}
	}
}

// TestDecodeRejectsTrailingGarbage: appended bytes are structural corruption
// for every codec (payloads are exactly one vector).
func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	for enc, payload := range fuzzPayloads(t) {
		grown := append(append([]byte{}, payload...), 0xab)
		var out tensor.Vector
		if err := Decode(&out, enc, grown); err == nil {
			t.Fatalf("%v: trailing garbage decoded successfully", enc)
		}
	}
}

// TestDecodeSurvivesByteFlips exhaustively flips every byte of each codec's
// canonical payload: the decoder must never panic; it may reject (a length,
// index or header flip) or decode to different values (a value flip — the
// frame checksum, not the codec, guards value integrity on the wire).
func TestDecodeSurvivesByteFlips(t *testing.T) {
	for enc, payload := range fuzzPayloads(t) {
		for i := range payload {
			mutated := append([]byte{}, payload...)
			mutated[i] ^= 0xff
			var out tensor.Vector
			_ = Decode(&out, enc, mutated) // must not panic
		}
	}
}

// TestTopKRejectsDisorderedIndices: duplicate, descending or out-of-range
// index lists are adversarial payloads, not value noise, and must fail.
func TestTopKRejectsDisorderedIndices(t *testing.T) {
	mk := func(d, k uint32, entries ...uint32) []byte {
		b := make([]byte, 8+12*len(entries))
		le := func(off int, v uint32) {
			b[off], b[off+1], b[off+2], b[off+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		}
		le(0, d)
		le(4, k)
		for n, idx := range entries {
			le(8+12*n, idx)
		}
		return b
	}
	cases := map[string][]byte{
		"duplicate index":  mk(8, 2, 3, 3),
		"descending index": mk(8, 2, 5, 2),
		"index >= d":       mk(8, 1, 8),
		"k > d":            mk(2, 3, 0, 1, 1),
	}
	for name, payload := range cases {
		var out tensor.Vector
		if err := Decode(&out, EncTopK, payload); err == nil {
			t.Fatalf("top-k accepted %s", name)
		}
	}
}
