package compress

import (
	"encoding/binary"
	"math"
)

// The codec kernel layer: every per-coordinate loop of the dense codecs and
// the top-k fold runs through one of these dispatch functions, which pick the
// AVX2/F16C assembly implementation (kernel_amd64.s) when the CPU supports it
// and the portable generic implementation otherwise (and always for the tail
// elements the vector kernels don't cover). The assembly mirrors the generic
// code bit for bit — same rounding scheme, same operation order, no FMA
// contraction — which the differential suite (kernel_test.go) locks across
// alignments, tail lengths and special values. Builds with the `purego` tag
// (or non-amd64 targets) compile only the generic path.

// f16Encode writes the binary16 encoding of src to dst (2 bytes per
// coordinate, little-endian). dst must hold 2*len(src) bytes.
func f16Encode(dst []byte, src []float64) {
	if useAsmCodec {
		n := len(src) &^ 3
		if n > 0 {
			f16EncodeAsm(dst, src[:n])
			dst, src = dst[2*n:], src[n:]
		}
	}
	f16EncodeGeneric(dst, src)
}

// f16Decode expands len(dst) binary16 values from src into dst. src must
// hold 2*len(dst) bytes.
func f16Decode(dst []float64, src []byte) {
	if useAsmCodec {
		n := len(dst) &^ 3
		if n > 0 {
			f16DecodeAsm(dst[:n], src)
			dst, src = dst[n:], src[2*n:]
		}
	}
	f16DecodeGeneric(dst, src)
}

// int8Range returns the minimum and maximum of v plus whether v contains a
// NaN (which poisons the whole chunk's range — see appendInt8). len(v) >= 1.
// Zero results are normalized to +0 so the asm min/max (whose ±0 tie-breaks
// differ from the scalar compare chain) and the generic path agree bitwise.
func int8Range(v []float64) (lo, hi float64, nan bool) {
	if useAsmCodec && len(v) >= 8 {
		n := len(v) &^ 3
		lo, hi, nan = int8RangeAsm(v[:n])
		if n < len(v) {
			tlo, thi, tnan := int8RangeGeneric(v[n:])
			if tlo < lo {
				lo = tlo
			}
			if thi > hi {
				hi = thi
			}
			nan = nan || tnan
		}
	} else {
		lo, hi, nan = int8RangeGeneric(v)
	}
	if lo == 0 {
		lo = 0
	}
	if hi == 0 {
		hi = 0
	}
	return lo, hi, nan
}

// int8Quant writes round((v[i]-lo)*rstep) clamped to [0, 255] into q.
// len(q) == len(v); every v[i] is finite and rstep is finite and positive
// (non-finite ranges take the constant-chunk path in appendInt8).
func int8Quant(q []byte, v []float64, lo, rstep float64) {
	if useAsmCodec {
		n := len(v) &^ 3
		if n > 0 {
			int8QuantAsm(q, v[:n], lo, rstep)
			q, v = q[n:], v[n:]
		}
	}
	int8QuantGeneric(q, v, lo, rstep)
}

// int8Dequant writes lo + step*float64(q[i]) into dst. len(dst) == len(q).
func int8Dequant(dst []float64, q []byte, lo, step float64) {
	if useAsmCodec {
		n := len(dst) &^ 3
		if n > 0 {
			int8DequantAsm(dst[:n], q, lo, step)
			dst, q = dst[n:], q[n:]
		}
	}
	int8DequantGeneric(dst, q, lo, step)
}

// foldAbs folds v into the error-feedback accumulator and records each
// coordinate's selection magnitude: acc[i] += v[i], mags[i] = |acc[i]|, with
// NaN mapped to -1 so poison coordinates rank below every real magnitude in
// the top-k selection. All three slices share one length.
func foldAbs(acc, v, mags []float64) {
	if useAsmCodec {
		n := len(acc) &^ 3
		if n > 0 {
			foldAbsAsm(acc[:n], v[:n], mags[:n])
			acc, v, mags = acc[n:], v[n:], mags[n:]
		}
	}
	foldAbsGeneric(acc, v, mags)
}

// --- portable generic kernels ---

func f16EncodeGeneric(dst []byte, src []float64) {
	for i, x := range src {
		binary.LittleEndian.PutUint16(dst[2*i:], float16bits(x))
	}
}

func f16DecodeGeneric(dst []float64, src []byte) {
	for i := range dst {
		dst[i] = float16frombits(binary.LittleEndian.Uint16(src[2*i:]))
	}
}

func int8RangeGeneric(v []float64) (lo, hi float64, nan bool) {
	lo, hi = v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
		if x != x {
			nan = true
		}
	}
	return lo, hi, nan
}

func int8QuantGeneric(q []byte, v []float64, lo, rstep float64) {
	for i, x := range v {
		c := math.Round((x - lo) * rstep)
		if c < 0 {
			c = 0
		} else if c > 255 {
			c = 255
		}
		q[i] = byte(c)
	}
}

func int8DequantGeneric(dst []float64, q []byte, lo, step float64) {
	for i, c := range q {
		dst[i] = lo + step*float64(c)
	}
}

func foldAbsGeneric(acc, v, mags []float64) {
	for i := range acc {
		a := acc[i] + v[i]
		acc[i] = a
		m := math.Abs(a)
		if m != m {
			m = -1
		}
		mags[i] = m
	}
}
