package compress

import (
	"math"

	"garfield/internal/tensor"
)

// CompressRange appends the encoding of v[lo:hi] to dst — the payload of a
// shard-ranged pull reply. The caller must guarantee 0 <= lo < hi <= len(v);
// the rpc layer validates ranges before they reach a compressor.
//
// The dense codecs are pure functions of the slice, so slicing before
// encoding is all there is to it. Top-k is stateful: the error-feedback
// residual stays full-dimension and only its [lo:hi) slice is folded and
// updated, so a fleet of shard owners each pulling their own range leaves
// exactly the same residual the single flat pull would — per-shard error
// feedback composes coordinate for coordinate, and no residual reallocation
// churn happens when ranges of different widths interleave. The per-range
// top-k budget is the configured k scaled by the range's share of the
// dimension (at least 1), so S shard pulls ship ~k kept coordinates in total,
// matching the flat pull's budget.
func (c *Compressor) CompressRange(dst []byte, v tensor.Vector, lo, hi int) []byte {
	switch c.enc {
	case EncFP16:
		return appendFP16(dst, v[lo:hi])
	case EncInt8:
		return appendInt8(dst, v[lo:hi])
	case EncTopK:
		c.mu.Lock()
		defer c.mu.Unlock()
		if len(c.residual) != len(v) {
			c.residual = tensor.New(len(v))
		}
		return c.topKLocked(dst, v[lo:hi], c.residual[lo:hi], RangeK(c.k, len(v), lo, hi))
	default:
		return appendFP64(dst, v[lo:hi])
	}
}

// RangeK returns the top-k budget of a [lo, hi) range of a d-dimensional
// vector under a full-vector budget of k: k scaled by the range's share of
// the coordinates, rounded to nearest, floored at 1 so every shard ships
// something. Deterministic, so every replica prices a shard identically.
func RangeK(k, d, lo, hi int) int {
	w := hi - lo
	if w >= d {
		return k
	}
	ks := int(math.Round(float64(k) * float64(w) / float64(d)))
	if ks < 1 {
		ks = 1
	}
	if ks > w {
		ks = w
	}
	return ks
}
