//go:build amd64 && !purego

#include "textflag.h"

// Constants for the integer fp16 encode kernel (four 64-bit lanes each).

DATA ·kM52+0(SB)/8, $0x000fffffffffffff
DATA ·kM52+8(SB)/8, $0x000fffffffffffff
DATA ·kM52+16(SB)/8, $0x000fffffffffffff
DATA ·kM52+24(SB)/8, $0x000fffffffffffff
GLOBL ·kM52(SB), RODATA|NOPTR, $32

DATA ·kE2047+0(SB)/8, $2047
DATA ·kE2047+8(SB)/8, $2047
DATA ·kE2047+16(SB)/8, $2047
DATA ·kE2047+24(SB)/8, $2047
GLOBL ·kE2047(SB), RODATA|NOPTR, $32

DATA ·kSIGN16+0(SB)/8, $0x8000
DATA ·kSIGN16+8(SB)/8, $0x8000
DATA ·kSIGN16+16(SB)/8, $0x8000
DATA ·kSIGN16+24(SB)/8, $0x8000
GLOBL ·kSIGN16(SB), RODATA|NOPTR, $32

// (1<<41)-1: round-to-nearest bias minus the tie bit (mantissa shift 42).
DATA ·kHALFM1+0(SB)/8, $0x000001ffffffffff
DATA ·kHALFM1+8(SB)/8, $0x000001ffffffffff
DATA ·kHALFM1+16(SB)/8, $0x000001ffffffffff
DATA ·kHALFM1+24(SB)/8, $0x000001ffffffffff
GLOBL ·kHALFM1(SB), RODATA|NOPTR, $32

DATA ·kIMPL+0(SB)/8, $0x0010000000000000
DATA ·kIMPL+8(SB)/8, $0x0010000000000000
DATA ·kIMPL+16(SB)/8, $0x0010000000000000
DATA ·kIMPL+24(SB)/8, $0x0010000000000000
GLOBL ·kIMPL(SB), RODATA|NOPTR, $32

DATA ·kC1008+0(SB)/8, $1008
DATA ·kC1008+8(SB)/8, $1008
DATA ·kC1008+16(SB)/8, $1008
DATA ·kC1008+24(SB)/8, $1008
GLOBL ·kC1008(SB), RODATA|NOPTR, $32

DATA ·kC1009+0(SB)/8, $1009
DATA ·kC1009+8(SB)/8, $1009
DATA ·kC1009+16(SB)/8, $1009
DATA ·kC1009+24(SB)/8, $1009
GLOBL ·kC1009(SB), RODATA|NOPTR, $32

DATA ·kC1050+0(SB)/8, $1050
DATA ·kC1050+8(SB)/8, $1050
DATA ·kC1050+16(SB)/8, $1050
DATA ·kC1050+24(SB)/8, $1050
GLOBL ·kC1050(SB), RODATA|NOPTR, $32

DATA ·kC1051+0(SB)/8, $1051
DATA ·kC1051+8(SB)/8, $1051
DATA ·kC1051+16(SB)/8, $1051
DATA ·kC1051+24(SB)/8, $1051
GLOBL ·kC1051(SB), RODATA|NOPTR, $32

DATA ·kONE+0(SB)/8, $1
DATA ·kONE+8(SB)/8, $1
DATA ·kONE+16(SB)/8, $1
DATA ·kONE+24(SB)/8, $1
GLOBL ·kONE(SB), RODATA|NOPTR, $32

DATA ·k7C00+0(SB)/8, $0x7c00
DATA ·k7C00+8(SB)/8, $0x7c00
DATA ·k7C00+16(SB)/8, $0x7c00
DATA ·k7C00+24(SB)/8, $0x7c00
GLOBL ·k7C00(SB), RODATA|NOPTR, $32

DATA ·k7E00+0(SB)/8, $0x7e00
DATA ·k7E00+8(SB)/8, $0x7e00
DATA ·k7E00+16(SB)/8, $0x7e00
DATA ·k7E00+24(SB)/8, $0x7e00
GLOBL ·k7E00(SB), RODATA|NOPTR, $32

// VPERMD index selecting the low dword of each qword lane.
DATA ·kPERM+0(SB)/4, $0
DATA ·kPERM+4(SB)/4, $2
DATA ·kPERM+8(SB)/4, $4
DATA ·kPERM+12(SB)/4, $6
DATA ·kPERM+16(SB)/4, $0
DATA ·kPERM+20(SB)/4, $0
DATA ·kPERM+24(SB)/4, $0
DATA ·kPERM+28(SB)/4, $0
GLOBL ·kPERM(SB), RODATA|NOPTR, $32

DATA ·kABS+0(SB)/8, $0x7fffffffffffffff
DATA ·kABS+8(SB)/8, $0x7fffffffffffffff
DATA ·kABS+16(SB)/8, $0x7fffffffffffffff
DATA ·kABS+24(SB)/8, $0x7fffffffffffffff
GLOBL ·kABS(SB), RODATA|NOPTR, $32

DATA ·kNEG1F+0(SB)/8, $-1.0
DATA ·kNEG1F+8(SB)/8, $-1.0
DATA ·kNEG1F+16(SB)/8, $-1.0
DATA ·kNEG1F+24(SB)/8, $-1.0
GLOBL ·kNEG1F(SB), RODATA|NOPTR, $32

DATA ·kHALFF+0(SB)/8, $0.5
DATA ·kHALFF+8(SB)/8, $0.5
DATA ·kHALFF+16(SB)/8, $0.5
DATA ·kHALFF+24(SB)/8, $0.5
GLOBL ·kHALFF(SB), RODATA|NOPTR, $32

DATA ·kONEF+0(SB)/8, $1.0
DATA ·kONEF+8(SB)/8, $1.0
DATA ·kONEF+16(SB)/8, $1.0
DATA ·kONEF+24(SB)/8, $1.0
GLOBL ·kONEF(SB), RODATA|NOPTR, $32

DATA ·k255F+0(SB)/8, $255.0
DATA ·k255F+8(SB)/8, $255.0
DATA ·k255F+16(SB)/8, $255.0
DATA ·k255F+24(SB)/8, $255.0
GLOBL ·k255F(SB), RODATA|NOPTR, $32

// func cpuSupportsAVX2F16C() bool
//
// True when CPUID reports F16C, AVX and OSXSAVE (leaf 1 ECX bits 29/28/27),
// the OS enabled XMM+YMM state saving (XCR0 bits 1-2), and CPUID leaf 7
// reports AVX2 (EBX bit 5).
TEXT ·cpuSupportsAVX2F16C(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<27 | 1<<28 | 1<<29), R8
	CMPL R8, $(1<<27 | 1<<28 | 1<<29)
	JNE  no

	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no

	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   no

	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func f16EncodeAsm(dst []byte, src []float64)
//
// Branch-free float64→binary16 on four 64-bit integer lanes per iteration:
// the exact arithmetic of the scalar float16bits — normal path rounds the
// 52-bit mantissa to 10 bits with a ties-to-even bias and lets the carry
// ride into the exponent, the subnormal path uses per-lane variable shifts
// (VPSRLVQ counts >= 64 conveniently yield 0, which IS the underflow-to-zero
// answer), overflow clamps to 0x7c00 and NaN canonicalizes to 0x7e00.
// No narrowing float conversion anywhere, hence no double rounding and no
// MXCSR manipulation (which Go's asynchronous preemption does not preserve).
TEXT ·f16EncodeAsm(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ src_len+32(FP), CX
	SHRQ $2, CX
	JZ   done

	VMOVDQU ·kM52(SB), Y15
	VMOVDQU ·kE2047(SB), Y14
	VMOVDQU ·kHALFM1(SB), Y13
	VMOVDQU ·kIMPL(SB), Y12
	VMOVDQU ·k7C00(SB), Y11
	VMOVDQU ·k7E00(SB), Y10
	VMOVDQU ·kPERM(SB), Y9

loop:
	VMOVDQU (SI), Y0

	// Field extraction: mant (Y1), biased exponent e (Y2), sign16 (Y3).
	VPAND  Y15, Y0, Y1
	VPSRLQ $52, Y0, Y2
	VPAND  Y14, Y2, Y2
	VPSRLQ $48, Y0, Y3
	VPAND  ·kSIGN16(SB), Y3, Y3

	// Normal path into Y5: m = (mant + (2^41-1) + lsb) >> 42,
	// r = ((e-1008) << 10) + m, clamped to 0x7c00.
	VPSRLQ $42, Y1, Y4
	VPAND  ·kONE(SB), Y4, Y4
	VPADDQ Y13, Y1, Y5
	VPADDQ Y4, Y5, Y5
	VPSRLQ $42, Y5, Y5
	VPSUBQ ·kC1008(SB), Y2, Y4
	VPSLLQ $10, Y4, Y4
	VPADDQ Y4, Y5, Y5
	VPCMPGTQ  Y11, Y5, Y6
	VPBLENDVB Y6, Y11, Y5, Y5

	// Subnormal path into Y7: s = 1051-e, variable-shift rounding of the
	// mantissa with its implicit bit restored.
	VPOR    Y12, Y1, Y4
	VMOVDQU ·kC1051(SB), Y6
	VPSUBQ  Y2, Y6, Y6
	VPSRLVQ Y6, Y4, Y7
	VPAND   ·kONE(SB), Y7, Y7
	VPADDQ  Y4, Y7, Y7
	VMOVDQU ·kC1050(SB), Y8
	VPSUBQ  Y2, Y8, Y8
	VMOVDQU ·kONE(SB), Y4
	VPSLLVQ Y8, Y4, Y8
	VPSUBQ  ·kONE(SB), Y8, Y8
	VPADDQ  Y8, Y7, Y7
	VPSRLVQ Y6, Y7, Y7

	// Select subnormal where e <= 1008, then override NaN lanes
	// (e == 2047 and mant != 0) with the canonical 0x7e00.
	VMOVDQU   ·kC1009(SB), Y8
	VPCMPGTQ  Y2, Y8, Y8
	VPBLENDVB Y8, Y7, Y5, Y5
	VPCMPEQQ  Y14, Y2, Y6
	VPXOR     Y7, Y7, Y7
	VPCMPEQQ  Y7, Y1, Y7
	VPANDN    Y6, Y7, Y7
	VPBLENDVB Y7, Y10, Y5, Y5
	VPOR      Y3, Y5, Y5

	// Pack the four 16-bit lane results into 8 output bytes.
	VPERMD    Y5, Y9, Y5
	VPACKUSDW X5, X5, X5
	VMOVQ     X5, (DI)

	ADDQ $32, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  loop

done:
	VZEROUPPER
	RET

// func f16DecodeAsm(dst []float64, src []byte)
//
// F16C expansion: VCVTPH2PS then VCVTPS2PD, both exact (and the hardware
// SNaN quieting matches the fixed scalar float16frombits bit for bit).
TEXT ·f16DecodeAsm(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ dst_len+8(FP), CX
	SHRQ $2, CX
	JZ   done

loop:
	VCVTPH2PS (SI), X0
	VCVTPS2PD X0, Y1
	VMOVUPD   Y1, (DI)
	ADDQ $8, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop

done:
	VZEROUPPER
	RET

// func int8RangeAsm(v []float64) (lo, hi float64, nan bool)
//
// Running VMINPD/VMAXPD accumulators plus an unordered-compare OR that
// detects NaN anywhere (the min/max lanes are meaningless once a NaN is
// present; the caller poisons the chunk on the flag).
TEXT ·int8RangeAsm(SB), NOSPLIT, $0-41
	MOVQ v_base+0(FP), SI
	MOVQ v_len+8(FP), CX

	VMOVUPD (SI), Y0
	VMOVUPD (SI), Y1
	VCMPPD  $3, Y0, Y0, Y2
	ADDQ    $32, SI
	SUBQ    $4, CX
	JZ      reduce

loop:
	VMOVUPD (SI), Y4
	VMINPD  Y4, Y0, Y0
	VMAXPD  Y4, Y1, Y1
	VCMPPD  $3, Y4, Y4, Y3
	VORPD   Y3, Y2, Y2
	ADDQ    $32, SI
	SUBQ    $4, CX
	JNZ     loop

reduce:
	VEXTRACTF128 $1, Y0, X4
	VMINPD       X4, X0, X0
	VPERMILPD    $1, X0, X4
	VMINSD       X4, X0, X0
	VEXTRACTF128 $1, Y1, X4
	VMAXPD       X4, X1, X1
	VPERMILPD    $1, X1, X4
	VMAXSD       X4, X1, X1
	VMOVSD       X0, lo+24(FP)
	VMOVSD       X1, hi+32(FP)
	VMOVMSKPD    Y2, AX
	TESTL        AX, AX
	SETNE        nan+40(FP)
	VZEROUPPER
	RET

// func int8QuantAsm(q []byte, v []float64, lo, rstep float64)
//
// q[i] = clamp(round((v[i]-lo)*rstep), 0, 255). round is exactly
// math.Round (half away from zero): round-to-nearest-even via VROUNDPD,
// then +1 wherever the discarded fraction was exactly one half — the
// arguments here are always >= 0, so away-from-zero means up.
TEXT ·int8QuantAsm(SB), NOSPLIT, $0-64
	MOVQ q_base+0(FP), DI
	MOVQ v_base+24(FP), SI
	MOVQ v_len+32(FP), CX
	SHRQ $2, CX
	JZ   done

	VBROADCASTSD lo+48(FP), Y12
	VBROADCASTSD rstep+56(FP), Y13
	VMOVUPD      ·kHALFF(SB), Y11
	VMOVUPD      ·kONEF(SB), Y10
	VMOVUPD      ·k255F(SB), Y9
	VXORPD       Y8, Y8, Y8

loop:
	VMOVUPD  (SI), Y0
	VSUBPD   Y12, Y0, Y0
	VMULPD   Y13, Y0, Y0
	VROUNDPD $0, Y0, Y1
	VSUBPD   Y1, Y0, Y2
	VCMPPD   $0, Y11, Y2, Y2
	VANDPD   Y10, Y2, Y2
	VADDPD   Y2, Y1, Y1
	VMAXPD   Y8, Y1, Y1
	VMINPD   Y9, Y1, Y1
	VCVTTPD2DQY Y1, X1
	VPACKUSDW   X1, X1, X1
	VPACKUSWB   X1, X1, X1
	VMOVD       X1, (DI)

	ADDQ $32, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  loop

done:
	VZEROUPPER
	RET

// func int8DequantAsm(dst []float64, q []byte, lo, step float64)
//
// dst[i] = lo + step*float64(q[i]): separate multiply and add, exactly the
// scalar expression (no FMA contraction on either path).
TEXT ·int8DequantAsm(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ q_base+24(FP), SI
	MOVQ dst_len+8(FP), CX
	SHRQ $2, CX
	JZ   done

	VBROADCASTSD lo+48(FP), Y12
	VBROADCASTSD step+56(FP), Y13

loop:
	VPMOVZXBD (SI), X0
	VCVTDQ2PD X0, Y0
	VMULPD    Y13, Y0, Y0
	VADDPD    Y12, Y0, Y0
	VMOVUPD   Y0, (DI)
	ADDQ $4, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop

done:
	VZEROUPPER
	RET

// func foldAbsAsm(acc, v, mags []float64)
//
// acc += v; mags = |acc| with NaN mapped to -1 (below every real magnitude,
// so poison coordinates rank last in the top-k selection).
TEXT ·foldAbsAsm(SB), NOSPLIT, $0-72
	MOVQ acc_base+0(FP), DI
	MOVQ v_base+24(FP), SI
	MOVQ mags_base+48(FP), DX
	MOVQ acc_len+8(FP), CX
	SHRQ $2, CX
	JZ   done

	VMOVUPD ·kABS(SB), Y12
	VMOVUPD ·kNEG1F(SB), Y11

loop:
	VMOVUPD   (DI), Y0
	VADDPD    (SI), Y0, Y0
	VMOVUPD   Y0, (DI)
	VANDPD    Y12, Y0, Y1
	VCMPPD    $3, Y0, Y0, Y2
	VBLENDVPD Y2, Y11, Y1, Y1
	VMOVUPD   Y1, (DX)

	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, DX
	DECQ CX
	JNZ  loop

done:
	VZEROUPPER
	RET
