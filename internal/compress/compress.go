// Package compress is the gradient-compression subsystem: pluggable codecs
// that shrink the bytes a pull reply moves over the wire. Garfield's
// Byzantine-resilience overhead is dominated by communication — every round
// ships full-precision gradient vectors from n_w workers to n_ps server
// replicas, and the MSMW topology multiplies that by the replication factor —
// so at production model sizes the network, not the aggregation kernel, is
// the bottleneck.
//
// Three codecs are provided behind one Encoding byte:
//
//   - EncFP64: lossless passthrough — the seed wire format (8 bytes per
//     coordinate), and the fallback every mixed fleet can speak;
//   - EncFP16 / EncInt8: linear quantization — fp16 halves-per-coordinate
//     (4x), int8 per-chunk scale+offset quantization (~7.8x) with
//     deterministic round-to-nearest;
//   - EncTopK: top-k sparsification — only the k largest-magnitude
//     coordinates ship, and a per-worker error-feedback residual accumulator
//     (Compressor) folds what was dropped back into the next gradient, the
//     standard trick that preserves convergence under aggressive sparsity.
//
// Negotiation lives in the RPC layer: a pull request advertises the one
// encoding its issuer can decode (Request.Accept), the serving node answers
// with its configured codec only when the two agree, and everything else
// falls back to fp64 passthrough — so mixed fleets interoperate and unknown
// encoding bytes are rejected at decode time. Compressed payloads ride
// inside the v2 checksummed frames, so a corrupted payload is caught by the
// CRC before it ever reaches a decoder here.
//
// Every encoder is a deterministic pure function of its input (plus, for
// top-k, the residual state), so deterministic-mode runs stay bit-identical
// per seed with compression enabled.
package compress

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"garfield/internal/tensor"
)

// Encoding identifies a payload encoding on the wire. The zero value is the
// lossless fp64 passthrough, so a zero Request/Response is always valid and
// old-style nodes that never set the byte interoperate unchanged.
type Encoding uint8

// The wire encodings. Values are wire format: never renumber.
const (
	// EncFP64 is the lossless passthrough (the seed format).
	EncFP64 Encoding = 0
	// EncFP16 is IEEE-754 half-precision quantization (2 bytes/coord).
	EncFP16 Encoding = 1
	// EncInt8 is per-chunk linear int8 quantization (~1 byte/coord).
	EncInt8 Encoding = 2
	// EncTopK is top-k magnitude sparsification (12 bytes/kept coord).
	EncTopK Encoding = 3

	// encMax bounds the known encodings; anything >= is rejected.
	encMax = 4
)

// String implements fmt.Stringer with the names Parse accepts.
func (e Encoding) String() string {
	switch e {
	case EncFP64:
		return "fp64"
	case EncFP16:
		return "fp16"
	case EncInt8:
		return "int8"
	case EncTopK:
		return "topk"
	default:
		return fmt.Sprintf("encoding(%d)", uint8(e))
	}
}

// Valid reports whether e is a known wire encoding.
func (e Encoding) Valid() bool { return e < encMax }

// Names returns the encoding names Parse accepts, in wire-value order.
func Names() []string { return []string{"fp64", "fp16", "int8", "topk"} }

// Parse maps a codec name to its Encoding. "" and "none" mean the fp64
// passthrough (no compression).
func Parse(name string) (Encoding, error) {
	switch strings.ToLower(name) {
	case "", "none", "fp64":
		return EncFP64, nil
	case "fp16":
		return EncFP16, nil
	case "int8":
		return EncInt8, nil
	case "topk", "top-k":
		return EncTopK, nil
	}
	return 0, fmt.Errorf("%w: %q (want one of %v)", ErrUnknownEncoding, name, Names())
}

// MaxDim bounds the coordinate count a decoded vector may claim — sized for
// the biggest Table-1 model (VGG, ~128M parameters) with headroom, and far
// below what a mangled sparse header could otherwise demand (see decodeTopK).
const MaxDim = 1 << 28

var (
	// ErrUnknownEncoding is returned for an encoding byte (or name) this
	// build does not know. Decoders reject it rather than guess: an unknown
	// byte means a newer or Byzantine peer, and misreading its payload as
	// some other codec would be silent poisoning.
	ErrUnknownEncoding = errors.New("compress: unknown encoding")

	// ErrCorrupt is returned when a payload fails the codec's structural
	// validation (truncated, oversized, or internally inconsistent).
	ErrCorrupt = errors.New("compress: corrupt payload")
)

// Decode decodes a compressed payload produced by Compressor.Compress (or
// Append*) into out, reusing out's backing array when its capacity suffices.
// Decoding is stateless — error feedback is a compress-side concern — so one
// Decode serves every connection of a client. Every codec validates the
// payload's structure strictly (exact length for the dense codecs, ordered
// in-range indices for top-k): truncations and length mismatches return
// ErrCorrupt, unknown encodings ErrUnknownEncoding.
func Decode(out *tensor.Vector, enc Encoding, data []byte) error {
	return DecodeBounded(out, enc, data, MaxDim)
}

// DecodeBounded is Decode with a caller-supplied upper bound on the output
// dimension. Callers that know the plausible reply dimension — a gradient
// puller knows its own model's — must pass it: the sparse layout is the one
// codec whose payload does not grow with the dimension it claims, so
// without the bound a Byzantine peer's ~20-byte header could demand a
// multi-gigabyte output allocation. The bound is clamped to MaxDim.
func DecodeBounded(out *tensor.Vector, enc Encoding, data []byte, maxDim int) error {
	if maxDim > MaxDim {
		maxDim = MaxDim
	}
	switch enc {
	case EncFP64:
		return decodeFP64(out, data, maxDim)
	case EncFP16:
		return decodeFP16(out, data, maxDim)
	case EncInt8:
		return decodeInt8(out, data, maxDim)
	case EncTopK:
		return decodeTopK(out, data, maxDim)
	}
	return fmt.Errorf("%w: byte %d", ErrUnknownEncoding, uint8(enc))
}

// MaxEncodedSize returns an upper bound on the encoded size of a
// d-dimensional vector under enc (k bounds top-k; ignored otherwise). It is
// the capacity contract Compress relies on for single-allocation appends.
func MaxEncodedSize(enc Encoding, d, k int) int {
	switch enc {
	case EncFP16:
		return fp16Size(d)
	case EncInt8:
		return int8Size(d)
	case EncTopK:
		if k > d {
			k = d
		}
		return topKSize(k)
	default:
		return 4 + 8*d
	}
}

// FP64EncodedSize returns the bytes a d-dimensional vector costs under the
// passthrough encoding — the baseline compression ratios are quoted against.
func FP64EncodedSize(d int) int { return 4 + 8*d }

// bufPool recycles compressed-payload buffers between the serve-side
// compressors and the RPC serving loop, so the steady-state pull loop
// allocates no per-reply payload slices (the Section 4.4 memory-management
// discipline, extended to the compression subsystem).
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf borrows a payload buffer of length 0 and capacity >= n from the
// pool. Release it with PutBuf once the payload has been serialized.
func GetBuf(n int) []byte {
	p := bufPool.Get().(*[]byte)
	b := *p
	if cap(b) < n {
		b = make([]byte, 0, n)
	}
	return b[:0]
}

// PutBuf returns a buffer obtained from GetBuf to the pool.
func PutBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// Compressor is the serve-side state of one node: its configured codec plus,
// for top-k, the error-feedback residual accumulator. It is safe for
// concurrent use (a worker serves many server replicas at once); the
// residual update is serialized under the internal mutex so each compressed
// reply sees — and deposits — a consistent residual.
type Compressor struct {
	enc Encoding
	k   int

	mu       sync.Mutex
	residual tensor.Vector
	scratch  topKScratch
}

// NewCompressor returns a compressor for the given encoding. k is the top-k
// budget (coordinates kept per gradient) and is required — positive — for
// EncTopK, ignored otherwise.
func NewCompressor(enc Encoding, k int) (*Compressor, error) {
	if !enc.Valid() {
		return nil, fmt.Errorf("%w: byte %d", ErrUnknownEncoding, uint8(enc))
	}
	if enc == EncTopK && k < 1 {
		return nil, fmt.Errorf("compress: top-k needs k >= 1, got %d", k)
	}
	return &Compressor{enc: enc, k: k}, nil
}

// Encoding returns the codec this compressor produces.
func (c *Compressor) Encoding() Encoding { return c.enc }

// MaxEncodedSize bounds the bytes Compress will append for a d-dimensional
// input — the capacity to pre-size an append target with.
func (c *Compressor) MaxEncodedSize(d int) int { return MaxEncodedSize(c.enc, d, c.k) }

// Compress appends the encoding of v to dst and returns the extended slice.
// For EncTopK the call is stateful: the pending error-feedback residual is
// added to v before selection, and the un-transmitted remainder becomes the
// new residual. The other codecs are pure functions of v.
func (c *Compressor) Compress(dst []byte, v tensor.Vector) []byte {
	switch c.enc {
	case EncFP16:
		return appendFP16(dst, v)
	case EncInt8:
		return appendInt8(dst, v)
	case EncTopK:
		return c.compressTopK(dst, v)
	default:
		return appendFP64(dst, v)
	}
}

// Reset clears the error-feedback residual. Checkpoint restores call it: the
// accumulated residual belongs to the rolled-back timeline, and folding it
// into post-restore gradients would replay corrections for updates the model
// no longer contains.
func (c *Compressor) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.residual = nil
}

// ResidualNorm returns the L2 norm of the pending error-feedback residual
// (0 for the stateless codecs) — an observability hook for tests and the
// experiments harness.
func (c *Compressor) ResidualNorm() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.residual == nil {
		return 0
	}
	return c.residual.Norm()
}
