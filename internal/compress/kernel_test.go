//go:build amd64 && !purego

package compress

import (
	"bytes"
	"math"
	"testing"
)

// The differential suite: every assembly kernel must be bit-identical to its
// generic counterpart across alignments, tail lengths, and the full special
// value zoo (NaN payloads, infinities, subnormals, signed zeros, rounding-tie
// midpoints). The generic path itself is locked by the exhaustive and
// big.Float suites in quant_test.go, so agreement here certifies the asm.
// Builds with -tags purego compile none of this and run the generic path
// through the ordinary codec tests instead.

// withGenericCodec runs f with the asm kernels force-disabled so the dispatch
// functions take the generic path. Not safe for parallel tests.
func withGenericCodec(f func()) {
	old := useAsmCodec
	useAsmCodec = false
	defer func() { useAsmCodec = old }()
	f()
}

func skipIfNoAsm(t *testing.T) {
	t.Helper()
	if !useAsmCodec {
		t.Skip("CPU lacks AVX2/F16C; asm kernels not in use")
	}
}

// tortureFloats returns a corpus covering every structural case of the fp16
// encode: all four rounding paths, both tie directions, saturation, deep
// underflow, and non-finite values with assorted payloads.
func tortureFloats() []float64 {
	vals := []float64{
		0, math.Copysign(0, -1),
		1, -1, 0.5, 1.5, 2.5, 65504, -65504,
		65519.999, 65520, 65520.0000001, 100000, -1e300,
		math.Inf(1), math.Inf(-1),
		math.NaN(), -math.NaN(),
		math.Float64frombits(0x7ff0000000000001), // signaling NaN
		math.Float64frombits(0xfff8dead00000001),
		0x1p-14, 0x1p-15, 0x1p-24, 0x1p-25, 0x1p-26, 0x1p-1074,
		0x1p-25 + 0x1p-77, // just above the zero/subnormal tie
		-0x1p-24, -0x1p-25,
		1 + 0x1p-11, 1 + 0x1p-11 + 0x1p-53, 1 + 0x1p-11 - 0x1p-53,
		math.Float64frombits(0x3ff0000000000001),
		6.10351562e-05, // largest fp16 subnormal neighborhood
	}
	// Every fp16-exact value and its tie midpoints against the next value up.
	for m := uint32(0); m < 0x7c00; m++ {
		a := float16frombits(uint16(m))
		b := float16frombits(uint16(m + 1))
		if m+1 == 0x7c00 {
			b = 65536 // overflow boundary: first value past the fp16 range
		}
		mid := a + (b-a)/2
		vals = append(vals, a, -a, mid, -mid,
			math.Nextafter(mid, math.Inf(-1)), math.Nextafter(mid, math.Inf(1)))
	}
	rng := uint64(0x1234_5678_9abc_def0)
	next := func() uint64 {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		return z ^ z>>31
	}
	for i := 0; i < 20000; i++ {
		// Exponent spread biased around the fp16 range so every path is hit.
		e := 1023 - 32 + int(next()%64)
		bits := next()&(1<<52-1) | uint64(e)<<52 | next()<<63
		vals = append(vals, math.Float64frombits(bits))
	}
	return vals
}

func TestF16EncodeAsmMatchesGeneric(t *testing.T) {
	skipIfNoAsm(t)
	vals := tortureFloats()
	// Sweep lengths (tail handling) and start offsets (alignment).
	for off := 0; off < 5; off++ {
		for _, d := range []int{1, 3, 4, 5, 7, 8, 11, 12, 16, 31, 64, 100, 1000} {
			if off+d > len(vals) {
				continue
			}
			src := vals[off : off+d]
			got := make([]byte, 2*d)
			want := make([]byte, 2*d)
			f16Encode(got, src)
			f16EncodeGeneric(want, src)
			if !bytes.Equal(got, want) {
				for i := 0; i < d; i++ {
					if got[2*i] != want[2*i] || got[2*i+1] != want[2*i+1] {
						t.Fatalf("off=%d d=%d: f16Encode(%x = %g) asm=%02x%02x generic=%02x%02x",
							off, d, math.Float64bits(src[i]), src[i],
							got[2*i+1], got[2*i], want[2*i+1], want[2*i])
					}
				}
			}
		}
	}
	// Bulk pass over the whole corpus at once (long-vector code path).
	got := make([]byte, 2*len(vals))
	want := make([]byte, 2*len(vals))
	f16Encode(got, vals)
	f16EncodeGeneric(want, vals)
	if !bytes.Equal(got, want) {
		t.Fatal("bulk f16Encode diverges from generic")
	}
}

func TestF16DecodeAsmMatchesGenericExhaustive(t *testing.T) {
	skipIfNoAsm(t)
	// All 65536 bit patterns, decoded 4 per group plus a tail.
	src := make([]byte, 2*65536+2)
	for p := 0; p < 65536; p++ {
		src[2*p] = byte(p)
		src[2*p+1] = byte(p >> 8)
	}
	src[2*65536] = 0x01 // odd tail byte pair
	d := 65537
	got := make([]float64, d)
	want := make([]float64, d)
	f16Decode(got, src)
	f16DecodeGeneric(want, src)
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("pattern %#04x: asm decode %x (%g), generic %x (%g)",
				i, math.Float64bits(got[i]), got[i], math.Float64bits(want[i]), want[i])
		}
	}
}

func TestInt8RangeAsmMatchesGeneric(t *testing.T) {
	skipIfNoAsm(t)
	cases := [][]float64{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{-1, -2, -3, -4, -5, -6, -7, -8, -9},
		{0, math.Copysign(0, -1), 0, math.Copysign(0, -1), 1, -1, 0, 0},
		{math.Copysign(0, -1), math.Copysign(0, -1), math.Copysign(0, -1), math.Copysign(0, -1), math.Copysign(0, -1), math.Copysign(0, -1), math.Copysign(0, -1), math.Copysign(0, -1)},
		{math.Inf(1), math.Inf(-1), 0, 1, 2, 3, 4, 5},
		{5, 5, 5, 5, 5, 5, 5, 5, 5, 5},
	}
	// NaN at every position of a 17-element vector.
	for p := 0; p < 17; p++ {
		v := make([]float64, 17)
		for i := range v {
			v[i] = float64(i) - 8
		}
		v[p] = math.NaN()
		cases = append(cases, v)
	}
	rng := uint64(7)
	next := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(int64(rng>>11))*0x1p-52 - 0.5
	}
	for _, d := range []int{8, 9, 11, 12, 15, 16, 64, 257, 1000} {
		v := make([]float64, d)
		for i := range v {
			v[i] = next()
		}
		cases = append(cases, v)
	}
	for ci, v := range cases {
		lo, hi, nan := int8Range(v)
		var glo, ghi float64
		var gnan bool
		withGenericCodec(func() { glo, ghi, gnan = int8Range(v) })
		if nan != gnan {
			t.Fatalf("case %d: nan flag asm=%v generic=%v", ci, nan, gnan)
		}
		if nan {
			continue // lo/hi unspecified once the chunk is poisoned
		}
		if math.Float64bits(lo) != math.Float64bits(glo) || math.Float64bits(hi) != math.Float64bits(ghi) {
			t.Fatalf("case %d: asm range [%x, %x], generic [%x, %x]",
				ci, math.Float64bits(lo), math.Float64bits(hi),
				math.Float64bits(glo), math.Float64bits(ghi))
		}
	}
}

func TestInt8QuantAsmMatchesGeneric(t *testing.T) {
	skipIfNoAsm(t)
	type quantCase struct {
		v         []float64
		lo, rstep float64
	}
	cases := []quantCase{
		// Exact tie midpoints: (x-lo)*rstep lands on k+0.5 precisely, which
		// exercises the round-half-away fix-up lane by lane.
		{[]float64{0.5, 1.5, 2.5, 3.5, 127.5, 253.5, 254.5, 255.5}, 0, 1},
		{[]float64{0.25, 0.75, 1.25, 1.75, 63.5, 64.25, 300, -5}, 0, 2},
		{[]float64{10.5, 11.5, 12.49999999999, 12.5, 13.5000000001, 260, 270.5, -1}, 10, 1},
	}
	rng := uint64(42)
	next := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(rng>>11) * 0x1p-52
	}
	for _, d := range []int{1, 4, 5, 8, 13, 16, 256, 1000} {
		v := make([]float64, d)
		lo := next()*10 - 5
		hi := lo + next()*20 + 1e-9
		for i := range v {
			v[i] = lo + next()*(hi-lo)
		}
		v[0], v[d-1] = lo, hi
		rstep := 255 / (hi - lo)
		cases = append(cases, quantCase{v, lo, rstep})
	}
	for ci, c := range cases {
		got := make([]byte, len(c.v))
		want := make([]byte, len(c.v))
		int8Quant(got, c.v, c.lo, c.rstep)
		withGenericCodec(func() { int8Quant(want, c.v, c.lo, c.rstep) })
		if !bytes.Equal(got, want) {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("case %d: quant(%g; lo=%g rstep=%g) asm=%d generic=%d",
						ci, c.v[i], c.lo, c.rstep, got[i], want[i])
				}
			}
		}
	}
}

func TestInt8DequantAsmMatchesGeneric(t *testing.T) {
	skipIfNoAsm(t)
	q := make([]byte, 256+7)
	for i := range q {
		q[i] = byte(i)
	}
	// Includes the pathological ranges a corrupt or Byzantine payload can
	// carry: negative step, zero step, infinities, NaN.
	params := []struct{ lo, step float64 }{
		{0, 1}, {-3.25, 0.0078125}, {1e30, 2e28}, {0, -1.5},
		{5, 0}, {0, math.Inf(1)}, {math.NaN(), 1}, {0, math.NaN()},
		{-0.5, 1e-300}, {math.Float64frombits(0x8000000000000000), 0.25},
	}
	for _, p := range params {
		for _, d := range []int{1, 3, 4, 8, 9, 256, len(q)} {
			got := make([]float64, d)
			want := make([]float64, d)
			int8Dequant(got, q[:d], p.lo, p.step)
			withGenericCodec(func() { int8Dequant(want, q[:d], p.lo, p.step) })
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("lo=%g step=%g d=%d code=%d: asm=%x generic=%x",
						p.lo, p.step, d, q[i], math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
}

func TestFoldAbsAsmMatchesGeneric(t *testing.T) {
	skipIfNoAsm(t)
	rng := uint64(99)
	next := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(int64(rng>>11))*0x1p-52 - 0.5
	}
	for _, d := range []int{1, 3, 4, 5, 8, 17, 64, 1000} {
		acc := make([]float64, d)
		vec := make([]float64, d)
		for i := range acc {
			acc[i], vec[i] = next(), next()
		}
		if d >= 5 {
			// NaN, Inf-Inf cancellation and -0 through both paths.
			acc[1], vec[1] = math.NaN(), 1
			acc[2], vec[2] = math.Inf(1), math.Inf(-1)
			acc[3], vec[3] = math.Copysign(0, -1), math.Copysign(0, -1)
			acc[4], vec[4] = math.Inf(-1), 5
		}
		acc2 := append([]float64(nil), acc...)
		magsA := make([]float64, d)
		magsG := make([]float64, d)
		foldAbs(acc, vec, magsA)
		withGenericCodec(func() { foldAbs(acc2, vec, magsG) })
		for i := range magsA {
			if math.Float64bits(acc[i]) != math.Float64bits(acc2[i]) {
				t.Fatalf("d=%d i=%d: acc asm=%x generic=%x", d, i,
					math.Float64bits(acc[i]), math.Float64bits(acc2[i]))
			}
			if math.Float64bits(magsA[i]) != math.Float64bits(magsG[i]) {
				t.Fatalf("d=%d i=%d: mags asm=%x generic=%x", d, i,
					math.Float64bits(magsA[i]), math.Float64bits(magsG[i]))
			}
		}
	}
}
