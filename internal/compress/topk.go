package compress

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"garfield/internal/tensor"
)

// Top-k sparsification: only the k largest-magnitude coordinates of the
// gradient ship; everything else is dropped — but not lost. The Compressor
// keeps a per-node error-feedback residual: each round the pending residual
// is added to the fresh gradient before selection, and whatever the
// selection leaves behind becomes the next residual. Small coordinates
// therefore accumulate until they cross the selection threshold instead of
// being silenced forever, which is the property that preserves convergence
// under aggressive sparsity.
//
// Selection is deterministic: coordinates are ordered by (|value| desc,
// index asc) — the index tie-break makes the kept set a pure function of the
// input — and the encoded entries are emitted in ascending index order, so
// identical inputs produce identical bytes.

// topKSize returns the encoded size for k kept coordinates: uint32 d,
// uint32 k, then (uint32 index, float64 value) per entry.
func topKSize(k int) int { return 8 + 12*k }

// topKScratch is the selection workspace a Compressor reuses across calls.
type topKScratch struct {
	idx []int
}

// compressTopK appends the top-k encoding of v + residual and updates the
// residual to the un-transmitted remainder. The lock serializes concurrent
// pulls, so each reply sees — and deposits — a consistent residual.
func (c *Compressor) compressTopK(dst []byte, v tensor.Vector) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()

	d := len(v)
	k := c.k
	if k > d {
		k = d
	}
	// Fold the pending residual into the signal being compressed.
	if len(c.residual) != d {
		c.residual = tensor.New(d)
	}
	acc := c.residual // after this call, acc IS the new residual
	for i := range acc {
		acc[i] += v[i]
	}

	// Deterministic selection: |value| descending, index ascending on ties.
	// Quickselect instead of a full sort — selection is the per-reply hot
	// path and only the top k of d matter, so O(d) expected beats
	// O(d log d) by ~30x at d = 1M.
	if cap(c.scratch.idx) < d {
		c.scratch.idx = make([]int, d)
	}
	idx := c.scratch.idx[:d]
	for i := range idx {
		idx[i] = i
	}
	selectTopK(acc, idx, k)
	kept := idx[:k]
	sort.Ints(kept)

	off := len(dst)
	dst = append(dst, make([]byte, topKSize(k))...)
	b := dst[off:]
	binary.LittleEndian.PutUint32(b, uint32(d))
	binary.LittleEndian.PutUint32(b[4:], uint32(k))
	b = b[8:]
	for n, i := range kept {
		binary.LittleEndian.PutUint32(b[12*n:], uint32(i))
		binary.LittleEndian.PutUint64(b[12*n+4:], math.Float64bits(acc[i]))
		acc[i] = 0 // transmitted exactly; nothing left to feed back
	}
	return dst
}

// ranksBefore is the selection's total order: a ranks before b when its
// magnitude is larger, ties broken toward the lower index — a pure function
// of the input, so the kept set never depends on scheduling or pivot luck.
func ranksBefore(acc tensor.Vector, a, b int) bool {
	ma, mb := math.Abs(acc[a]), math.Abs(acc[b])
	if ma != mb {
		return ma > mb
	}
	return a < b
}

// selectTopK partially orders idx so its first k entries are the k
// best-ranked coordinates (in arbitrary internal order): an iterative
// quickselect with a deterministic median-of-three pivot.
func selectTopK(acc tensor.Vector, idx []int, k int) {
	lo, hi := 0, len(idx)-1
	for lo < hi {
		// Deterministic median-of-three pivot, moved to hi.
		mid := lo + (hi-lo)/2
		if ranksBefore(acc, idx[mid], idx[lo]) {
			idx[lo], idx[mid] = idx[mid], idx[lo]
		}
		if ranksBefore(acc, idx[hi], idx[lo]) {
			idx[lo], idx[hi] = idx[hi], idx[lo]
		}
		if ranksBefore(acc, idx[hi], idx[mid]) {
			idx[mid], idx[hi] = idx[hi], idx[mid]
		}
		idx[mid], idx[hi] = idx[hi], idx[mid]
		pivot := idx[hi]
		// Lomuto partition: everything ranking before the pivot moves left.
		store := lo
		for i := lo; i < hi; i++ {
			if ranksBefore(acc, idx[i], pivot) {
				idx[store], idx[i] = idx[i], idx[store]
				store++
			}
		}
		idx[store], idx[hi] = idx[hi], idx[store]
		switch {
		case store == k || store == k-1:
			return
		case k < store:
			hi = store - 1
		default:
			lo = store + 1
		}
	}
}

// AppendTopK is the stateless top-k encoder (no error feedback): it keeps
// the k largest-magnitude coordinates of v as-is. The round-trip property
// tests and the codec benchmarks use it; live workers go through Compressor.
func AppendTopK(dst []byte, v tensor.Vector, k int) []byte {
	c := Compressor{enc: EncTopK, k: k}
	return c.compressTopK(dst, v)
}

func decodeTopK(out *tensor.Vector, data []byte, maxDim int) error {
	if len(data) < 8 {
		return fmt.Errorf("%w: top-k header of %d bytes", ErrCorrupt, len(data))
	}
	d := int(binary.LittleEndian.Uint32(data))
	k := int(binary.LittleEndian.Uint32(data[4:]))
	if d > maxDim {
		// The sparse layout is the one codec whose payload does not grow
		// with d, so a mangled or adversarial header could otherwise make a
		// twenty-byte payload demand a multi-gigabyte output vector. Pullers
		// pass their model dimension as the bound (DecodeBounded); MaxDim is
		// the backstop.
		return fmt.Errorf("%w: top-k d=%d exceeds the %d-coordinate bound", ErrCorrupt, d, maxDim)
	}
	if k > d {
		return fmt.Errorf("%w: top-k k=%d > d=%d", ErrCorrupt, k, d)
	}
	if len(data) != topKSize(k) {
		return fmt.Errorf("%w: top-k payload of %d bytes for k=%d", ErrCorrupt, len(data), k)
	}
	dst := resize(out, d)
	for i := range dst {
		dst[i] = 0
	}
	b := data[8:]
	prev := -1
	for n := 0; n < k; n++ {
		i := int(binary.LittleEndian.Uint32(b[12*n:]))
		if i <= prev || i >= d {
			// Indices must be strictly ascending and in range — anything
			// else is a mangled or adversarial payload.
			return fmt.Errorf("%w: top-k index %d after %d (d=%d)", ErrCorrupt, i, prev, d)
		}
		prev = i
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[12*n+4:]))
	}
	return nil
}
