package compress

import (
	"encoding/binary"
	"fmt"
	"math"

	"garfield/internal/tensor"
)

// Top-k sparsification: only the k largest-magnitude coordinates of the
// gradient ship; everything else is dropped — but not lost. The Compressor
// keeps a per-node error-feedback residual: each round the pending residual
// is added to the fresh gradient before selection, and whatever the
// selection leaves behind becomes the next residual. Small coordinates
// therefore accumulate until they cross the selection threshold instead of
// being silenced forever, which is the property that preserves convergence
// under aggressive sparsity.
//
// Selection is deterministic: coordinates are ordered by (|value| desc,
// index asc) — the index tie-break makes the kept set a pure function of the
// input — and the encoded entries are emitted in ascending index order, so
// identical inputs produce identical bytes.

// topKSize returns the encoded size for k kept coordinates: uint32 d,
// uint32 k, then (uint32 index, float64 value) per entry.
func topKSize(k int) int { return 8 + 12*k }

// topKScratch is the selection workspace a Compressor reuses across calls:
// one float64 magnitude per coordinate, plus the radix histogram the
// selection's bucketing pass fills. The previous scheme carried an []int
// index permutation and ran quickselect through two levels of indirection
// (idx[i] -> acc[idx[i]]) followed by sort.Ints on the survivors; selecting
// on a flat magnitude array and re-deriving the kept set with a threshold
// scan is both cache-friendly and sort-free.
type topKScratch struct {
	mags []float64
	hist []uint32 // 1<<radixBits counters, reused across calls
}

// magOf is a coordinate's selection magnitude: |x| with NaN mapped to -1,
// matching the foldAbs kernel, so Byzantine poison coordinates rank below
// every real magnitude (all of which are >= 0).
func magOf(x float64) float64 {
	m := math.Abs(x)
	if m != m {
		return -1
	}
	return m
}

// compressTopK appends the top-k encoding of v + residual and updates the
// residual to the un-transmitted remainder. The lock serializes concurrent
// pulls, so each reply sees — and deposits — a consistent residual.
//
// Selection is by threshold: t is the k-th largest magnitude (value-only
// quickselect over the scratch array — it scrambles the scratch, which is
// fine, magnitudes are recomputed from acc on the fly afterwards), and the
// kept set is every coordinate above t plus the lowest-indexed coordinates
// exactly at t until k entries are out. That reproduces the historical
// (|value| desc, index asc) order as a pure function of the input, and the
// emit scan runs in ascending index order, so no sort is needed to produce
// the canonical encoding.
func (c *Compressor) compressTopK(dst []byte, v tensor.Vector) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()

	// Fold the pending residual into the signal being compressed.
	if len(c.residual) != len(v) {
		c.residual = tensor.New(len(v))
	}
	return c.topKLocked(dst, v, c.residual, c.k)
}

// topKLocked encodes the top-k coordinates of v + acc and leaves the
// un-transmitted remainder in acc. acc must match v's length — for a full
// compression it is the whole residual, for a ranged one (CompressRange) the
// matching residual slice, so per-shard error feedback composes coordinate
// for coordinate with the full-vector case. Callers hold c.mu.
func (c *Compressor) topKLocked(dst []byte, v, acc tensor.Vector, k int) []byte {
	d := len(v)
	if k > d {
		k = d
	}
	if cap(c.scratch.mags) < d {
		c.scratch.mags = make([]float64, d)
	}
	mags := c.scratch.mags[:d]
	foldAbs(acc, v, mags)

	t := math.Inf(-1) // k == d: every coordinate clears the threshold
	need := 0
	if k < d && k > 0 {
		var above int
		t, above = c.scratch.selectKthLargest(mags, k)
		need = k - above // ties at t to keep, lowest indices first
	}

	off := len(dst)
	dst = append(dst, make([]byte, topKSize(k))...)
	b := dst[off:]
	binary.LittleEndian.PutUint32(b, uint32(d))
	binary.LittleEndian.PutUint32(b[4:], uint32(k))
	b = b[8:]
	n := 0
	for i := 0; i < d && n < k; i++ {
		m := magOf(acc[i])
		if m > t {
			// keep
		} else if m == t && need > 0 {
			need--
		} else {
			continue
		}
		binary.LittleEndian.PutUint32(b[12*n:], uint32(i))
		binary.LittleEndian.PutUint64(b[12*n+4:], math.Float64bits(acc[i]))
		acc[i] = 0 // transmitted exactly; nothing left to feed back
		n++
	}
	return dst
}

// radixBits is the width of the selection's one coarse bucketing pass: the
// top 16 bits of the order-preserving key cover the sign and the full
// exponent, so for any realistically-distributed gradient the k-th
// magnitude's bucket holds a tiny fraction of the coordinates and the
// quickselect finisher runs on those alone. The histogram is 256 KiB of
// reused scratch.
const radixBits = 16

// ordKey maps a float64 to a uint64 whose unsigned order matches the
// float's total order (negatives below positives, -NaN at the very bottom):
// the standard sign-flip trick. Magnitudes here are >= 0 or the NaN
// sentinel -1, but the map is total so the selection never cares.
func ordKey(x float64) uint64 {
	b := math.Float64bits(x)
	// Branch-free: negatives (sign-extended mask all ones) flip every bit,
	// non-negatives flip just the sign — this runs 2 per element in the
	// selection's hot passes, where a data-dependent branch mispredicts.
	return b ^ (uint64(int64(b)>>63) | 1<<63)
}

// selectKthLargest returns the k-th largest value t of m (1 <= k <= len(m))
// together with the number of values strictly greater than t, reordering m
// in the process. One radix pass buckets every value by the top radixBits of
// its order-preserving key and locates the bucket holding the answer; the
// bucket's members are compacted to the front of m (m is scratch — the
// caller recomputes magnitudes afterwards) and a quickselect finishes among
// them. Random-magnitude arrays — the common case — leave the finisher a
// tiny fraction of the coordinates; a degenerate single-bucket array
// (constant gradient) falls back to quickselect over everything, which the
// three-way partition below handles in one pass.
func (s *topKScratch) selectKthLargest(m []float64, k int) (t float64, above int) {
	if len(s.hist) == 0 {
		s.hist = make([]uint32, 1<<radixBits)
	}
	hist := s.hist
	for i := range hist {
		hist[i] = 0
	}
	for _, x := range m {
		hist[ordKey(x)>>(64-radixBits)]++
	}
	// Walk buckets from the top of the order until k values are covered.
	higher := 0 // values in buckets strictly greater than the answer's
	bucket := len(hist) - 1
	for {
		n := int(hist[bucket])
		if higher+n >= k {
			break
		}
		higher += n
		bucket--
	}
	// Compact the answer's bucket to the front; the k-th largest overall is
	// the (k-higher)-th largest among exactly these.
	w := 0
	target := uint64(bucket)
	for _, x := range m {
		if ordKey(x)>>(64-radixBits) == target {
			m[w] = x
			w++
		}
	}
	t = quickselectLargest(m[:w], k-higher)
	// Every tie of t shares its key, hence its bucket: the exact
	// strictly-greater count is the higher buckets plus this bucket's
	// members above t — counted over the compacted few, not all of m.
	above = higher
	for _, x := range m[:w] {
		if x > t {
			above++
		}
	}
	return t, above
}

// quickselectLargest returns the k-th largest value of m (1 <= k <= len(m)),
// reordering m: an iterative quickselect with a deterministic
// median-of-three pivot and a three-way (Dutch flag) partition, so arrays
// full of duplicates — a constant gradient makes every magnitude equal —
// finish in one pass instead of degrading quadratically.
func quickselectLargest(m []float64, k int) float64 {
	lo, hi := 0, len(m)-1
	target := k - 1 // descending-rank position of the answer
	for lo < hi {
		a, b, c := m[lo], m[lo+(hi-lo)/2], m[hi]
		pivot := medianOf3(a, b, c)
		// Partition into [lo, lt) > pivot, [lt, gt] == pivot, (gt, hi] < pivot.
		lt, gt, i := lo, hi, lo
		for i <= gt {
			switch x := m[i]; {
			case x > pivot:
				m[i], m[lt] = m[lt], m[i]
				lt++
				i++
			case x < pivot:
				m[i], m[gt] = m[gt], m[i]
				gt--
			default:
				i++
			}
		}
		switch {
		case target < lt:
			hi = lt - 1
		case target > gt:
			lo = gt + 1
		default:
			return pivot
		}
	}
	return m[target]
}

func medianOf3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// AppendTopK is the stateless top-k encoder (no error feedback): it keeps
// the k largest-magnitude coordinates of v as-is. The round-trip property
// tests and the codec benchmarks use it; live workers go through Compressor.
func AppendTopK(dst []byte, v tensor.Vector, k int) []byte {
	c := Compressor{enc: EncTopK, k: k}
	return c.compressTopK(dst, v)
}

func decodeTopK(out *tensor.Vector, data []byte, maxDim int) error {
	if len(data) < 8 {
		return fmt.Errorf("%w: top-k header of %d bytes", ErrCorrupt, len(data))
	}
	d := int(binary.LittleEndian.Uint32(data))
	k := int(binary.LittleEndian.Uint32(data[4:]))
	if d > maxDim {
		// The sparse layout is the one codec whose payload does not grow
		// with d, so a mangled or adversarial header could otherwise make a
		// twenty-byte payload demand a multi-gigabyte output vector. Pullers
		// pass their model dimension as the bound (DecodeBounded); MaxDim is
		// the backstop.
		return fmt.Errorf("%w: top-k d=%d exceeds the %d-coordinate bound", ErrCorrupt, d, maxDim)
	}
	if k > d {
		return fmt.Errorf("%w: top-k k=%d > d=%d", ErrCorrupt, k, d)
	}
	if len(data) != topKSize(k) {
		return fmt.Errorf("%w: top-k payload of %d bytes for k=%d", ErrCorrupt, len(data), k)
	}
	dst := resize(out, d)
	for i := range dst {
		dst[i] = 0
	}
	b := data[8:]
	prev := -1
	for n := 0; n < k; n++ {
		i := int(binary.LittleEndian.Uint32(b[12*n:]))
		if i <= prev || i >= d {
			// Indices must be strictly ascending and in range — anything
			// else is a mangled or adversarial payload.
			return fmt.Errorf("%w: top-k index %d after %d (d=%d)", ErrCorrupt, i, prev, d)
		}
		prev = i
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[12*n+4:]))
	}
	return nil
}
