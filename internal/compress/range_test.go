package compress

import (
	"bytes"
	"testing"

	"garfield/internal/tensor"
)

func rangeTestVector(d int) tensor.Vector {
	rng := tensor.NewRNG(0x5A4D)
	return rng.NormalVector(d, 0, 3)
}

// TestCompressRangeFullEqualsCompress: the full range is the flat path,
// byte for byte, for every codec — a ranged protocol with one shard is the
// unsharded protocol.
func TestCompressRangeFullEqualsCompress(t *testing.T) {
	v := rangeTestVector(257)
	for _, enc := range []Encoding{EncFP64, EncFP16, EncInt8, EncTopK} {
		a, err := NewCompressor(enc, 32)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewCompressor(enc, 32)
		if err != nil {
			t.Fatal(err)
		}
		flat := a.Compress(nil, v)
		ranged := b.CompressRange(nil, v, 0, len(v))
		if !bytes.Equal(flat, ranged) {
			t.Fatalf("%v: CompressRange(0, d) differs from Compress", enc)
		}
	}
}

// TestCompressRangeDenseSlices: for the stateless codecs a ranged payload is
// exactly the slice's flat encoding.
func TestCompressRangeDenseSlices(t *testing.T) {
	v := rangeTestVector(100)
	for _, enc := range []Encoding{EncFP64, EncFP16, EncInt8} {
		c, err := NewCompressor(enc, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range [][2]int{{0, 37}, {37, 81}, {81, 100}} {
			got := c.CompressRange(nil, v, r[0], r[1])
			want := c.Compress(nil, tensor.Vector(v[r[0]:r[1]]))
			if !bytes.Equal(got, want) {
				t.Fatalf("%v range [%d,%d): ranged payload differs from slice encoding", enc, r[0], r[1])
			}
		}
	}
}

// TestCompressRangeTopKResidual: ranged top-k keeps a full-dimension
// residual, updates only the pulled slice, and error feedback works per
// shard — a dropped coordinate resurfaces on that shard's next pull.
func TestCompressRangeTopKResidual(t *testing.T) {
	const d = 64
	v := rangeTestVector(d)
	c, err := NewCompressor(EncTopK, 8)
	if err != nil {
		t.Fatal(err)
	}
	ranges := [][2]int{{0, 21}, {21, 42}, {42, 64}}

	var decoded tensor.Vector
	assembled := tensor.New(d)
	for _, r := range ranges {
		payload := c.CompressRange(nil, v, r[0], r[1])
		if err := DecodeBounded(&decoded, EncTopK, payload, r[1]-r[0]); err != nil {
			t.Fatalf("range [%d,%d): %v", r[0], r[1], err)
		}
		if len(decoded) != r[1]-r[0] {
			t.Fatalf("range [%d,%d): decoded %d coordinates", r[0], r[1], len(decoded))
		}
		copy(assembled[r[0]:r[1]], decoded)
	}
	// Every transmitted coordinate is exact; the rest went to the residual.
	kept := 0
	for i := range assembled {
		if assembled[i] != 0 {
			if assembled[i] != v[i] {
				t.Fatalf("coordinate %d: got %v, want %v", i, assembled[i], v[i])
			}
			kept++
		}
	}
	if kept == 0 {
		t.Fatal("no coordinates transmitted")
	}
	if c.ResidualNorm() == 0 {
		t.Fatal("expected a pending residual after sparsified pulls")
	}

	// Second round on the same vector: residual feedback means previously
	// dropped coordinates grow, so the union of two rounds covers more than
	// either alone — and the ranged path must be deterministic per state.
	c2, _ := NewCompressor(EncTopK, 8)
	for _, r := range ranges {
		p1 := c.CompressRange(nil, v, r[0], r[1])
		c2.CompressRange(nil, v, r[0], r[1]) // advance c2 to the same state
		p2 := c2.CompressRange(nil, v, r[0], r[1])
		if !bytes.Equal(p1, p2) {
			t.Fatalf("range [%d,%d): same state, different payloads", r[0], r[1])
		}
	}
}

func TestRangeK(t *testing.T) {
	if got := RangeK(32, 100, 0, 100); got != 32 {
		t.Fatalf("full range: RangeK = %d, want 32", got)
	}
	if got := RangeK(32, 100, 0, 50); got != 16 {
		t.Fatalf("half range: RangeK = %d, want 16", got)
	}
	if got := RangeK(2, 1000, 0, 10); got != 1 {
		t.Fatalf("tiny range: RangeK = %d, want the floor 1", got)
	}
	if got := RangeK(1000, 100, 10, 20); got != 10 {
		t.Fatalf("budget past width: RangeK = %d, want the width 10", got)
	}
	// The per-shard budgets of a balanced partition sum to ~k.
	total := 0
	for _, r := range [][2]int{{0, 25}, {25, 50}, {50, 75}, {75, 100}} {
		total += RangeK(32, 100, r[0], r[1])
	}
	if total != 32 {
		t.Fatalf("4-shard budgets sum to %d, want 32", total)
	}
}
