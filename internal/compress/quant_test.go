package compress

import (
	"math"
	"math/big"
	"sort"
	"testing"
)

// The fp16 rounding suites. float16bits promises correctly-rounded
// (round-to-nearest, ties-to-even) binary16 conversion; the original
// implementation narrowed through float32 first, which double-rounds: a
// float64 just above a half-precision tie midpoint can round *to* the
// midpoint in float32, after which ties-to-even picks the wrong fp16
// neighbor. These tests lock the contract two independent ways — an
// exhaustive walk of every adjacent fp16 pair's float64 neighborhood, and a
// randomized property test against a big.Float midpoint reference — and both
// fail against the double-rounding implementation.

// fp16Magnitude returns the positive fp16 value of magnitude pattern m
// (0 <= m <= 0x7c00; 0x7c00 is +Inf) as an exact float64.
func fp16Magnitude(m uint16) float64 { return float16frombits(m) }

// TestFloat16BitsExhaustiveRoundTrip: every finite binary16 value is exactly
// representable in float64, so converting it back must reproduce its bit
// pattern exactly — including signed zeros, every subnormal, and ±Inf.
func TestFloat16BitsExhaustiveRoundTrip(t *testing.T) {
	for sign := uint16(0); sign <= 1; sign++ {
		s := sign << 15
		for m := uint16(0); m <= 0x7c00; m++ {
			h := s | m
			x := float16frombits(h)
			if got := float16bits(x); got != h {
				t.Fatalf("round trip of %#04x (%v): got %#04x", h, x, got)
			}
		}
	}
	// NaN canonicalizes (payloads are not preserved, the sign is).
	if got := float16bits(math.NaN()); got&0x7fff != 0x7e00 {
		t.Fatalf("NaN: got %#04x, want canonical 0x7e00", got)
	}
	negNaN := math.Float64frombits(0xfff8_0000_0000_0001)
	if got := float16bits(negNaN); got != 0xfe00 {
		t.Fatalf("-NaN: got %#04x, want 0xfe00", got)
	}
	snan := math.Float64frombits(0x7ff0_0000_0000_0001)
	if got := float16bits(snan); got&0x7fff != 0x7e00 {
		t.Fatalf("sNaN: got %#04x, want canonical 0x7e00", got)
	}
}

// TestFloat16BitsExhaustiveNeighborhoods walks every pair of adjacent fp16
// magnitudes (including the underflow boundary below the smallest subnormal
// and the overflow boundary to Inf) and checks the three decisive float64
// inputs in the gap: the exact tie midpoint must round to the even neighbor,
// and one float64 ulp to either side must round to the nearer neighbor.
//
// The off-midpoint probes are exactly the inputs the float32 detour got
// wrong: midpoint ± 1 float64-ulp collapses onto the midpoint when narrowed
// to float32, after which ties-to-even picks the even neighbor regardless of
// which side the input was on.
func TestFloat16BitsExhaustiveNeighborhoods(t *testing.T) {
	for sign := uint16(0); sign <= 1; sign++ {
		s := sign << 15
		// signed applies the test sign to a positive magnitude.
		signed := func(x float64) float64 {
			if sign == 1 {
				return -x
			}
			return x
		}
		for m := uint16(0); m < 0x7c00; m++ {
			lo := fp16Magnitude(m)
			var hi float64
			if m+1 == 0x7c00 {
				// Overflow boundary: the "next value" behaves as 2^16, the
				// first power of two past the largest finite fp16 (65504),
				// so the rounding boundary to Inf is 65520.
				hi = 65536
			} else {
				hi = fp16Magnitude(m + 1)
			}
			mid := (lo + hi) / 2 // both have <= 12 significant bits: exact

			even := m
			if even&1 == 1 {
				even = m + 1
			}
			if got := float16bits(signed(mid)); got != s|even {
				t.Fatalf("sign=%d m=%#04x: midpoint %v -> %#04x, want even neighbor %#04x",
					sign, m, signed(mid), got, s|even)
			}
			above := math.Nextafter(mid, math.Inf(1))
			if got := float16bits(signed(above)); got != s|(m+1) {
				t.Fatalf("sign=%d m=%#04x: midpoint+ulp %v -> %#04x, want upper neighbor %#04x",
					sign, m, signed(above), got, s|(m+1))
			}
			below := math.Nextafter(mid, 0)
			if got := float16bits(signed(below)); got != s|m {
				t.Fatalf("sign=%d m=%#04x: midpoint-ulp %v -> %#04x, want lower neighbor %#04x",
					sign, m, signed(below), got, s|m)
			}
		}
	}
}

// refFloat16bits is an independent correctly-rounded float64→binary16
// reference: it brackets |x| between adjacent fp16 magnitudes by binary
// search over the (monotonic) bit patterns and decides with an exact
// big.Float comparison against the tie midpoint — no narrowing conversions
// anywhere, so it cannot double-round by construction.
func refFloat16bits(x float64) uint16 {
	var sign uint16
	if math.Signbit(x) {
		sign = 0x8000
	}
	if math.IsNaN(x) {
		return sign | 0x7e00
	}
	ax := math.Abs(x)
	// Overflow: magnitudes at or past the 65520 boundary round to Inf
	// (ties-to-even: 2^16 has an even significand, 65504 an odd one).
	if ax > 65520 {
		return sign | 0x7c00
	}
	// Largest magnitude pattern with value <= ax.
	m := uint16(sort.Search(0x7c00, func(i int) bool {
		return fp16Magnitude(uint16(i+1)) > ax
	}))
	lo, hi := fp16Magnitude(m), 65536.0
	hiPat := m + 1
	if hiPat < 0x7c00 {
		hi = fp16Magnitude(hiPat)
	}
	// Exact midpoint comparison in big.Float (SetFloat64 and the halved sum
	// are exact at 100 bits of precision).
	mid := new(big.Float).SetPrec(100).SetFloat64(lo)
	mid.Add(mid, new(big.Float).SetPrec(100).SetFloat64(hi))
	mid.Quo(mid, big.NewFloat(2))
	switch new(big.Float).SetPrec(100).SetFloat64(ax).Cmp(mid) {
	case -1:
		return sign | m
	case +1:
		return sign | hiPat
	default: // exact tie: even mantissa wins
		if m&1 == 0 {
			return sign | m
		}
		return sign | hiPat
	}
}

// TestFloat16BitsBigFloatReference drives float16bits with float64 inputs
// concentrated in and around the binary16 range — random mantissas across
// the full exponent span from deep underflow to overflow, plus exact tie
// midpoints and their float64 neighbors — and compares every result against
// the big.Float reference.
func TestFloat16BitsBigFloatReference(t *testing.T) {
	rng := newSplitMix(0x9e3779b97f4a7c15)
	check := func(x float64) {
		t.Helper()
		got, want := float16bits(x), refFloat16bits(x)
		if got != want {
			t.Fatalf("float16bits(%v = %#016x) = %#04x, want %#04x",
				x, math.Float64bits(x), got, want)
		}
	}
	for i := 0; i < 100_000; i++ {
		// Exponent spans [-32, 24): covers underflow-to-zero, the subnormal
		// band, all normals, and overflow-to-Inf.
		e := int(rng.next()%56) - 32
		mant := rng.next() & (1<<52 - 1)
		signBit := (rng.next() & 1) << 63
		x := math.Float64frombits(signBit | uint64(e+1023)<<52 | mant)
		check(x)
	}
	// Deterministic torture points: every 64th adjacent pair's midpoint and
	// float64 neighbors (the exhaustive test covers all of them; here they
	// also cross-check the reference itself).
	for m := uint16(0); m < 0x7c00; m += 64 {
		lo := fp16Magnitude(m)
		hi := 65536.0
		if m+1 < 0x7c00 {
			hi = fp16Magnitude(m + 1)
		}
		mid := (lo + hi) / 2
		for _, x := range []float64{lo, mid, hi,
			math.Nextafter(mid, 0), math.Nextafter(mid, math.Inf(1))} {
			check(x)
			check(-x)
		}
	}
	for _, x := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1),
		65504, 65519.999, 65520, math.Nextafter(65520, 0), math.Nextafter(65520, math.Inf(1)),
		0x1p-24, 0x1p-25, math.Nextafter(0x1p-25, 1), math.Nextafter(0x1p-25, 0), 0x1p-26,
		5.960464477539063e-08, 1 + 0x1p-11 + 0x1p-53} {
		check(x)
		check(-x)
	}
}

// splitMix is a tiny deterministic PRNG for the property test (fixed seed;
// no global or time-seeded randomness).
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
