//go:build amd64 && !purego

package compress

// useAsmCodec gates the AVX2/F16C codec kernels on runtime CPU support
// (CPUID feature bits plus OS support for the YMM register state), following
// the internal/gar dot-kernel dispatch pattern.
var useAsmCodec = cpuSupportsAVX2F16C()

// cpuSupportsAVX2F16C reports whether the CPU and OS support AVX2 and F16C.
// Implemented in kernel_amd64.s.
func cpuSupportsAVX2F16C() bool

// f16EncodeAsm converts len(src) float64 (a multiple of 4) to binary16 into
// dst using branch-free integer AVX2 — the exact rounding arithmetic of
// float16bits on four 64-bit lanes at a time, so no narrowing conversion
// ever double-rounds. Implemented in kernel_amd64.s.
func f16EncodeAsm(dst []byte, src []float64)

// f16DecodeAsm expands len(dst) binary16 values (a multiple of 4) from src
// via F16C VCVTPH2PS + VCVTPS2PD. Implemented in kernel_amd64.s.
func f16DecodeAsm(dst []float64, src []byte)

// int8RangeAsm returns the min, max and NaN-presence of v (len a multiple
// of 4, >= 4). Implemented in kernel_amd64.s.
func int8RangeAsm(v []float64) (lo, hi float64, nan bool)

// int8QuantAsm quantizes len(v) values (a multiple of 4) into q.
// Implemented in kernel_amd64.s.
func int8QuantAsm(q []byte, v []float64, lo, rstep float64)

// int8DequantAsm dequantizes len(dst) codes (a multiple of 4) from q.
// Implemented in kernel_amd64.s.
func int8DequantAsm(dst []float64, q []byte, lo, step float64)

// foldAbsAsm is the vectorized error-feedback fold: acc += v,
// mags = |acc| with NaN mapped to -1 (lengths a multiple of 4).
// Implemented in kernel_amd64.s.
func foldAbsAsm(acc, v, mags []float64)
