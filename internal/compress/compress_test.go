package compress

import (
	"bytes"
	"encoding/binary"
	"math"
	"sort"
	"testing"

	"garfield/internal/gar"
	"garfield/internal/tensor"
)

func testVector(d int, seed uint64) tensor.Vector {
	rng := tensor.NewRNG(seed)
	return rng.NormalVector(d, 0, 1)
}

// roundTrip compresses v with a fresh compressor and decodes the payload.
func roundTrip(t *testing.T, enc Encoding, k int, v tensor.Vector) tensor.Vector {
	t.Helper()
	c, err := NewCompressor(enc, k)
	if err != nil {
		t.Fatal(err)
	}
	payload := c.Compress(nil, v)
	var out tensor.Vector
	if err := Decode(&out, enc, payload); err != nil {
		t.Fatalf("%v decode: %v", enc, err)
	}
	if len(out) != len(v) {
		t.Fatalf("%v round trip: got %d coords, want %d", enc, len(out), len(v))
	}
	return out
}

func TestFP64RoundTripExact(t *testing.T) {
	for _, d := range []int{0, 1, 3, 4, 7, 257, 1000} {
		v := testVector(d, 1)
		out := roundTrip(t, EncFP64, 0, v)
		if !out.Equal(v) {
			t.Fatalf("fp64 round trip not exact at d=%d", d)
		}
	}
}

func TestFP16RoundTripWithinHalfPrecision(t *testing.T) {
	v := testVector(1000, 2)
	out := roundTrip(t, EncFP16, 0, v)
	for i := range v {
		// binary16 has 11 significand bits: relative error <= 2^-11.
		if err := math.Abs(out[i] - v[i]); err > math.Abs(v[i])/2048+1e-7 {
			t.Fatalf("fp16 coord %d: %v -> %v (err %v)", i, v[i], out[i], err)
		}
	}
}

func TestFP16SpecialValues(t *testing.T) {
	v := tensor.Vector{0, math.Copysign(0, -1), 1, -1, 65504, -65504, 1e20, -1e20, math.Inf(1), math.Inf(-1), 6e-8, 1e-30}
	out := roundTrip(t, EncFP16, 0, v)
	if out[0] != 0 || out[2] != 1 || out[3] != -1 {
		t.Fatalf("fp16 exact values mangled: %v", out[:4])
	}
	if out[4] != 65504 || out[5] != -65504 {
		t.Fatalf("fp16 max-normal mangled: %v %v", out[4], out[5])
	}
	// Out-of-range magnitudes saturate to ±Inf rather than wrapping.
	for i := 6; i <= 9; i++ {
		if !math.IsInf(out[i], int(math.Copysign(1, v[i]))) {
			t.Fatalf("fp16 overflow coord %d: %v -> %v, want Inf", i, v[i], out[i])
		}
	}
	if out[11] != 0 {
		t.Fatalf("fp16 underflow: %v -> %v, want 0", v[11], out[11])
	}
	nan := roundTrip(t, EncFP16, 0, tensor.Vector{math.NaN()})
	if !math.IsNaN(nan[0]) {
		t.Fatalf("fp16 NaN decoded as %v; a poison value must stay poisonous", nan[0])
	}
}

func TestInt8RoundTripWithinChunkStep(t *testing.T) {
	for _, d := range []int{1, 255, 256, 257, 1000} {
		v := testVector(d, 3)
		out := roundTrip(t, EncInt8, 0, v)
		for start := 0; start < d; start += int8Chunk {
			end := start + int8Chunk
			if end > d {
				end = d
			}
			lo, hi := v[start], v[start]
			for _, x := range v[start:end] {
				lo, hi = math.Min(lo, x), math.Max(hi, x)
			}
			// Half a quantization step plus float32 range rounding.
			tol := (hi-lo)/255/2 + 1e-6*(math.Abs(lo)+math.Abs(hi)) + 1e-12
			for i := start; i < end; i++ {
				if err := math.Abs(out[i] - v[i]); err > tol {
					t.Fatalf("int8 d=%d coord %d: %v -> %v (err %v > tol %v)", d, i, v[i], out[i], err, tol)
				}
			}
		}
	}
}

func TestInt8ConstantChunk(t *testing.T) {
	v := tensor.Vector{2.5, 2.5, 2.5}
	out := roundTrip(t, EncInt8, 0, v)
	for i, x := range out {
		if math.Abs(x-2.5) > 1e-6 {
			t.Fatalf("constant chunk coord %d decoded as %v", i, x)
		}
	}
}

// TestInt8NaNPoisonsChunk: a NaN anywhere in a chunk — first element or
// mid-chunk, where the min/max scan alone would skip it — must decode as
// NaN for the whole chunk, never be laundered into a finite in-range value
// a GAR distance filter would accept.
func TestInt8NaNPoisonsChunk(t *testing.T) {
	for _, pos := range []int{0, 1, 2, 299} {
		v := testVector(300, 8)
		v[pos] = math.NaN()
		out := roundTrip(t, EncInt8, 0, v)
		// The poisoned chunk decodes NaN everywhere; the other chunk stays
		// finite.
		chunkStart := (pos / int8Chunk) * int8Chunk
		chunkEnd := chunkStart + int8Chunk
		if chunkEnd > len(v) {
			chunkEnd = len(v)
		}
		for i := range out {
			inPoisoned := i >= chunkStart && i < chunkEnd
			if inPoisoned && !math.IsNaN(out[i]) {
				t.Fatalf("NaN at %d: coord %d decoded finite %v — poison laundered", pos, i, out[i])
			}
			if !inPoisoned && math.IsNaN(out[i]) {
				t.Fatalf("NaN at %d: coord %d in a clean chunk decoded NaN", pos, i)
			}
		}
	}
}

func TestInt8CompressionRatio(t *testing.T) {
	const d = 100_000
	v := testVector(d, 4)
	c, _ := NewCompressor(EncInt8, 0)
	payload := c.Compress(nil, v)
	if ratio := float64(FP64EncodedSize(d)) / float64(len(payload)); ratio < 4 {
		t.Fatalf("int8 ratio %.2fx < 4x (payload %d bytes)", ratio, len(payload))
	}
}

func TestTopKKeepsLargestAndZeroesRest(t *testing.T) {
	v := tensor.Vector{0.1, -5, 0.2, 4, -0.3, 3, 0}
	out := roundTrip(t, EncTopK, 3, v)
	want := tensor.Vector{0, -5, 0, 4, 0, 3, 0}
	if !out.Equal(want) {
		t.Fatalf("top-3 of %v = %v, want %v", v, out, want)
	}
}

func TestTopKTieBreaksByIndex(t *testing.T) {
	v := tensor.Vector{1, -1, 1, 1}
	out := roundTrip(t, EncTopK, 2, v)
	want := tensor.Vector{1, -1, 0, 0}
	if !out.Equal(want) {
		t.Fatalf("tied top-2 of %v = %v, want the lowest indices %v", v, out, want)
	}
}

func TestTopKClampsKToDimension(t *testing.T) {
	v := tensor.Vector{1, 2}
	out := roundTrip(t, EncTopK, 10, v)
	if !out.Equal(v) {
		t.Fatalf("k>d round trip %v != %v", out, v)
	}
}

// TestTopKErrorFeedback locks the error-feedback contract: coordinates the
// selection drops accumulate in the residual and ship once they dominate,
// so the cumulative transmitted signal tracks the cumulative input signal.
func TestTopKErrorFeedback(t *testing.T) {
	const d, k, rounds = 64, 8, 50
	c, err := NewCompressor(EncTopK, k)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(9)
	sumIn := tensor.New(d)
	sumOut := tensor.New(d)
	var decoded tensor.Vector
	for r := 0; r < rounds; r++ {
		g := rng.NormalVector(d, 0, 1)
		if err := sumIn.AddInPlace(g); err != nil {
			t.Fatal(err)
		}
		payload := c.Compress(nil, g)
		if err := Decode(&decoded, EncTopK, payload); err != nil {
			t.Fatal(err)
		}
		if err := sumOut.AddInPlace(decoded); err != nil {
			t.Fatal(err)
		}
	}
	// cumulative-in = cumulative-out + pending residual, exactly: every
	// dropped coordinate lives on in the residual, nothing is lost.
	diff := sumIn.Clone()
	if err := diff.AXPY(-1, sumOut); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	residual := c.residual.Clone()
	c.mu.Unlock()
	if err := diff.AXPY(-1, residual); err != nil {
		t.Fatal(err)
	}
	if diff.Norm() > 1e-9 {
		t.Fatalf("error feedback leaks signal: |sumIn - sumOut - residual| = %v", diff.Norm())
	}
	// And the residual stays bounded — it feeds back rather than growing.
	if residual.Norm() > sumIn.Norm() {
		t.Fatalf("residual norm %v exceeds cumulative signal norm %v", residual.Norm(), sumIn.Norm())
	}
}

// TestSelectTopKMatchesSortReference: the threshold selection keeps exactly
// the set a full (|v| desc, idx asc) sort would keep, across random inputs
// with heavy ties (and the value quickselect agrees with the sorted k-th
// magnitude).
func TestSelectTopKMatchesSortReference(t *testing.T) {
	rng := tensor.NewRNG(13)
	for trial := 0; trial < 80; trial++ {
		d := 1 + int(rng.NormalVector(1, 40, 20)[0])
		if d < 1 {
			d = 1
		}
		v := rng.NormalVector(d, 0, 1)
		for i := range v {
			// Quantize to force magnitude ties.
			v[i] = math.Round(v[i]*4) / 4
		}
		if trial%7 == 0 {
			v[trial%d] = math.NaN() // poison ranks below every magnitude
		}
		k := 1 + trial%d

		// Reference: full sort by (magnitude desc, index asc).
		ref := make([]int, d)
		for i := range ref {
			ref[i] = i
		}
		sort.Slice(ref, func(a, b int) bool {
			ma, mb := magOf(v[ref[a]]), magOf(v[ref[b]])
			if ma != mb {
				return ma > mb
			}
			return ref[a] < ref[b]
		})
		want := append([]int(nil), ref[:k]...)
		sort.Ints(want)

		// The radix+quickselect k-th largest must match the sorted k-th.
		mags := make([]float64, d)
		for i, x := range v {
			mags[i] = magOf(x)
		}
		var scratch topKScratch
		got, above := scratch.selectKthLargest(mags, k)
		if ref := magOf(v[ref[k-1]]); got != ref {
			t.Fatalf("trial %d (d=%d, k=%d): selectKthLargest=%v, sorted k-th=%v", trial, d, k, got, ref)
		}
		wantAbove := 0
		for _, x := range v {
			if magOf(x) > got {
				wantAbove++
			}
		}
		if above != wantAbove {
			t.Fatalf("trial %d (d=%d, k=%d): above=%d, want %d", trial, d, k, above, wantAbove)
		}

		// And the encoder's kept index set must match the reference set.
		c := Compressor{enc: EncTopK, k: k}
		payload := c.compressTopK(nil, v)
		gotK := make([]int, 0, k)
		for n := 0; n < k; n++ {
			gotK = append(gotK, int(binary.LittleEndian.Uint32(payload[8+12*n:])))
		}
		for i := range want {
			if gotK[i] != want[i] {
				t.Fatalf("trial %d (d=%d, k=%d): threshold selection kept %v, sort reference %v", trial, d, k, gotK, want)
			}
		}
	}
}

// TestCompressorSteadyStateZeroAlloc: after one warmup call has grown the
// residual, the selection scratch and the decode receiver to size, a
// compress+decode round trip performs zero heap allocations for every
// encoding — the property the codec benchmarks report and the pull loop's
// latency depends on.
func TestCompressorSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation disables the append-make extend-in-place optimization; alloc counts are a build-mode artifact")
	}
	const d = 4096
	v := testVector(d, 31)
	for _, tc := range []struct {
		enc Encoding
		k   int
	}{
		{EncFP64, 0}, {EncFP16, 0}, {EncInt8, 0}, {EncTopK, d / 100},
	} {
		c, err := NewCompressor(tc.enc, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 0, c.MaxEncodedSize(d))
		var out tensor.Vector
		roundTripOnce := func() {
			payload := c.Compress(buf[:0], v)
			if err := Decode(&out, tc.enc, payload); err != nil {
				t.Fatal(err)
			}
		}
		roundTripOnce() // warmup: scratch and receiver grow to size here
		if allocs := testing.AllocsPerRun(10, roundTripOnce); allocs != 0 {
			t.Errorf("%v: %v allocs per steady-state round trip, want 0", tc.enc, allocs)
		}
	}
}

func TestCompressorResetClearsResidual(t *testing.T) {
	c, err := NewCompressor(EncTopK, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Compress(nil, tensor.Vector{3, 2, 1})
	if c.ResidualNorm() == 0 {
		t.Fatal("expected a pending residual after a lossy compression")
	}
	c.Reset()
	if c.ResidualNorm() != 0 {
		t.Fatal("Reset left a residual behind")
	}
	// Post-reset compression must behave exactly like a fresh compressor's.
	fresh, _ := NewCompressor(EncTopK, 1)
	a := c.Compress(nil, tensor.Vector{1, 5, 2})
	b := fresh.Compress(nil, tensor.Vector{1, 5, 2})
	if !bytes.Equal(a, b) {
		t.Fatal("post-reset compression differs from a fresh compressor")
	}
}

// TestDeterministicBytes: every codec is a deterministic pure function of
// its input (and residual state), so two identically-driven compressors emit
// identical bytes — the property deterministic-mode runs rely on.
func TestDeterministicBytes(t *testing.T) {
	v := testVector(777, 11)
	for _, enc := range []Encoding{EncFP64, EncFP16, EncInt8, EncTopK} {
		a, _ := NewCompressor(enc, 32)
		b, _ := NewCompressor(enc, 32)
		for round := 0; round < 3; round++ {
			pa := a.Compress(nil, v)
			pb := b.Compress(nil, v)
			if !bytes.Equal(pa, pb) {
				t.Fatalf("%v round %d: identical inputs produced different bytes", enc, round)
			}
		}
	}
}

// TestGARSelectionSurvivesRoundTrip is the subsystem's robustness property:
// aggregating round-tripped (lossily compressed) gradients with the
// selection GARs must land within tolerance of aggregating the originals —
// quantization noise must not flip Krum/MDA/Bulyan onto a Byzantine input.
func TestGARSelectionSurvivesRoundTrip(t *testing.T) {
	const n, f, d = 15, 3, 4096
	rng := tensor.NewRNG(21)
	honest := rng.NormalVector(d, 0, 1)
	inputs := make([]tensor.Vector, n)
	for i := range inputs {
		if i < n-f {
			// Honest cluster: small per-worker noise around a shared mean.
			inputs[i] = honest.Clone()
			noise := rng.NormalVector(d, 0, 0.1)
			if err := inputs[i].AddInPlace(noise); err != nil {
				t.Fatal(err)
			}
		} else {
			// Byzantine tail: far-away vectors the GARs must reject.
			inputs[i] = rng.NormalVector(d, 50, 5)
		}
	}

	for _, enc := range []Encoding{EncFP16, EncInt8, EncTopK} {
		// Per-worker compressors, as deployed (top-k keeps 25% of coords).
		decoded := make([]tensor.Vector, n)
		for i, v := range inputs {
			c, err := NewCompressor(enc, d/4)
			if err != nil {
				t.Fatal(err)
			}
			if err := Decode(&decoded[i], enc, c.Compress(nil, v)); err != nil {
				t.Fatal(err)
			}
		}
		for _, rule := range []string{gar.NameKrum, gar.NameMDA, gar.NameBulyan} {
			r, err := gar.New(rule, n, f)
			if err != nil {
				t.Fatal(err)
			}
			orig, err := r.Aggregate(inputs)
			if err != nil {
				t.Fatal(err)
			}
			origDist, err := orig.Distance(honest)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := gar.New(rule, n, f)
			if err != nil {
				t.Fatal(err)
			}
			agg, err := r2.Aggregate(decoded)
			if err != nil {
				t.Fatal(err)
			}
			// The compressed aggregate must stay in the honest cluster —
			// the Byzantine tail sits ~50*sqrt(d) away, so landing anywhere
			// near it means quantization noise flipped the selection. The
			// dense codecs must additionally stay within a small factor of
			// the uncompressed aggregate; top-k (which deliberately zeroes
			// 3/4 of a dense vector, relying on error feedback across
			// rounds) only has to preserve the rejection.
			dist, err := agg.Distance(honest)
			if err != nil {
				t.Fatal(err)
			}
			byzDist := 50 * math.Sqrt(d) // distance scale of the Byzantine tail
			if dist > byzDist/20 {
				t.Fatalf("%s under %v left the honest cluster: dist %v (Byzantine scale %v)", rule, enc, dist, byzDist)
			}
			if enc != EncTopK && dist > 3*origDist+1 {
				t.Fatalf("%s under %v drifted: dist %v vs uncompressed %v", rule, enc, dist, origDist)
			}
		}
	}
}

func TestDecodeRejectsUnknownEncoding(t *testing.T) {
	var out tensor.Vector
	for _, enc := range []Encoding{encMax, 17, 255} {
		if err := Decode(&out, enc, []byte{0, 0, 0, 0}); err == nil {
			t.Fatalf("encoding byte %d accepted", enc)
		}
	}
	if _, err := NewCompressor(Encoding(99), 0); err == nil {
		t.Fatal("NewCompressor accepted an unknown encoding")
	}
	if _, err := NewCompressor(EncTopK, 0); err == nil {
		t.Fatal("NewCompressor accepted top-k without a k budget")
	}
}

func TestParseNames(t *testing.T) {
	cases := map[string]Encoding{
		"": EncFP64, "none": EncFP64, "fp64": EncFP64,
		"fp16": EncFP16, "int8": EncInt8, "topk": EncTopK, "TOP-K": EncTopK,
	}
	for name, want := range cases {
		got, err := Parse(name)
		if err != nil || got != want {
			t.Fatalf("Parse(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := Parse("gzip"); err == nil {
		t.Fatal("Parse accepted an unknown codec name")
	}
	for _, name := range Names() {
		enc, err := Parse(name)
		if err != nil || enc.String() != name {
			t.Fatalf("name %q does not round-trip: %v %v", name, enc, err)
		}
	}
}

func TestBufPoolRoundTrip(t *testing.T) {
	b := GetBuf(128)
	if len(b) != 0 || cap(b) < 128 {
		t.Fatalf("GetBuf(128): len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, 1, 2, 3)
	PutBuf(b)
	PutBuf(nil) // must not panic
}

func TestDecodeReusesReceiver(t *testing.T) {
	v := testVector(500, 30)
	c, _ := NewCompressor(EncInt8, 0)
	payload := c.Compress(nil, v)
	out := make(tensor.Vector, 0, 1000)
	backing := &out[:1][0]
	if err := Decode(&out, EncInt8, payload); err != nil {
		t.Fatal(err)
	}
	if &out[0] != backing {
		t.Fatal("decode reallocated a receiver with sufficient capacity")
	}
}
