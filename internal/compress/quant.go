package compress

import (
	"encoding/binary"
	"fmt"
	"math"

	"garfield/internal/tensor"
)

// The dense codecs. All layouts are little-endian and carry the coordinate
// count up front, so a decoder can check the payload's exact expected length
// before touching a single value — truncation and trailing garbage both fail
// structurally, which is what the byte-flip/truncation suites lock in.

// --- fp64 passthrough ---

// appendFP64 appends the lossless encoding of v (the tensor wire format:
// uint32 len + 8 bytes per coordinate).
func appendFP64(dst []byte, v tensor.Vector) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, v.EncodedSize())...)
	// Encoding into a correctly-sized buffer cannot fail.
	_ = v.EncodeTo(dst[off:])
	return dst
}

// decodeFP64 is the strict inverse of appendFP64: unlike the tensor
// decoder — which tolerates trailing bytes so framed streams can over-read —
// a compressed payload is exactly one vector, so excess length is corruption.
func decodeFP64(out *tensor.Vector, data []byte, maxDim int) error {
	if len(data) < 4 {
		return fmt.Errorf("%w: fp64 header of %d bytes", ErrCorrupt, len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n > maxDim {
		return fmt.Errorf("%w: fp64 d=%d exceeds the %d-coordinate bound", ErrCorrupt, n, maxDim)
	}
	if len(data) != 4+8*n {
		return fmt.Errorf("%w: fp64 payload of %d bytes for %d values", ErrCorrupt, len(data), n)
	}
	if err := out.UnmarshalBinary(data); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nil
}

// --- fp16 half-precision ---

// fp16Size returns the encoded size of a d-dimensional vector: uint32 len +
// 2 bytes per coordinate (4x smaller than fp64).
func fp16Size(d int) int { return 4 + 2*d }

// appendFP16 appends the IEEE-754 binary16 encoding of v. Conversion rounds
// to nearest-even — bit-identical across runs and platforms — and saturates
// out-of-range magnitudes to ±Inf (gradients at training scale never get
// there; a Byzantine vector that does survives as ±Inf, which the GARs'
// distance filters reject like any other outlier).
func appendFP16(dst []byte, v tensor.Vector) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, fp16Size(len(v)))...)
	b := dst[off:]
	binary.LittleEndian.PutUint32(b, uint32(len(v)))
	b = b[4:]
	for i, x := range v {
		binary.LittleEndian.PutUint16(b[2*i:], float16bits(x))
	}
	return dst
}

func decodeFP16(out *tensor.Vector, data []byte, maxDim int) error {
	if len(data) < 4 {
		return fmt.Errorf("%w: fp16 header of %d bytes", ErrCorrupt, len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n > maxDim {
		return fmt.Errorf("%w: fp16 d=%d exceeds the %d-coordinate bound", ErrCorrupt, n, maxDim)
	}
	if len(data) != fp16Size(n) {
		return fmt.Errorf("%w: fp16 payload of %d bytes for %d values", ErrCorrupt, len(data), n)
	}
	dst := resize(out, n)
	b := data[4:]
	for i := range dst {
		dst[i] = float16frombits(binary.LittleEndian.Uint16(b[2*i:]))
	}
	return nil
}

// float16bits converts x to IEEE-754 binary16, rounding to nearest-even.
// The conversion goes through float32 first (exact for every float64 a
// gradient pipeline produces at half-precision scale) and then narrows
// mantissa and exponent by hand.
func float16bits(x float64) uint16 {
	f := math.Float32bits(float32(x))
	sign := uint16(f>>16) & 0x8000
	exp := int32(f>>23&0xff) - 127 + 15
	mant := f & 0x7fffff

	switch {
	case exp >= 0x1f:
		// Overflow to Inf; NaN keeps a mantissa bit.
		if int32(f>>23&0xff) == 0xff && mant != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00 // ±Inf
	case exp <= 0:
		// Subnormal or underflow to zero.
		if exp < -10 {
			return sign
		}
		mant |= 0x800000 // implicit leading bit
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		m := mant >> shift
		// Round to nearest, ties to even.
		if rem := mant & ((1 << shift) - 1); rem > half || (rem == half && m&1 == 1) {
			m++
		}
		return sign | uint16(m)
	default:
		m := mant >> 13
		if rem := mant & 0x1fff; rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
			m++
			if m == 0x400 { // mantissa overflow carries into the exponent
				m = 0
				exp++
				if exp >= 0x1f {
					return sign | 0x7c00
				}
			}
		}
		return sign | uint16(exp)<<10 | uint16(m)
	}
}

// float16frombits expands an IEEE-754 binary16 value to float64 (exact).
func float16frombits(h uint16) float64 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	var f uint32
	switch {
	case exp == 0x1f: // Inf / NaN
		f = sign | 0xff<<23 | mant<<13
	case exp == 0: // zero / subnormal
		if mant == 0 {
			f = sign
		} else {
			// Normalize the subnormal.
			e := int32(-1)
			for mant&0x400 == 0 {
				mant <<= 1
				e--
			}
			f = sign | uint32(e+127-15+1)<<23 | (mant&0x3ff)<<13
		}
	default:
		f = sign | (exp-15+127)<<23 | mant<<13
	}
	return float64(math.Float32frombits(f))
}

// --- int8 per-chunk linear quantization ---

// int8Chunk is the quantization granularity: each chunk carries its own
// (lo, hi) range as float32, so one outlier coordinate cannot destroy the
// resolution of the whole vector — only of its 256-coordinate neighbourhood.
// At 8 header bytes per 256 values the overhead is ~0.25 bits/coordinate:
// ~7.8x smaller than fp64.
const int8Chunk = 256

// int8Size returns the encoded size of a d-dimensional vector: uint32 len +
// per chunk (lo float32, hi float32, 1 byte per coordinate).
func int8Size(d int) int {
	chunks := (d + int8Chunk - 1) / int8Chunk
	return 4 + 8*chunks + d
}

// appendInt8 appends the per-chunk linear quantization of v: each value maps
// to round((x-lo)/(hi-lo)*255) with round-half-away-from-zero (math.Round),
// a deterministic pure function of the chunk. NaN in the input makes the
// chunk's range NaN and every value decode as NaN — faithfully preserving a
// Byzantine poison value rather than laundering it into a finite number.
func appendInt8(dst []byte, v tensor.Vector) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, int8Size(len(v)))...)
	b := dst[off:]
	binary.LittleEndian.PutUint32(b, uint32(len(v)))
	b = b[4:]
	for len(v) > 0 {
		n := len(v)
		if n > int8Chunk {
			n = int8Chunk
		}
		chunk := v[:n]
		lo, hi := chunk[0], chunk[0]
		for _, x := range chunk[1:] {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			if math.IsNaN(x) {
				// NaN compares false against everything, so the min/max
				// scan alone would skip a mid-chunk NaN and quantize it
				// through byte(NaN) — an implementation-defined conversion
				// that launders the poison into a finite in-range value.
				// Poison the whole chunk's range instead.
				lo, hi = math.NaN(), math.NaN()
				break
			}
		}
		// The stored float32 range is what the decoder will reconstruct
		// against, so quantize relative to it, not the float64 range.
		lo32, hi32 := float32(lo), float32(hi)
		binary.LittleEndian.PutUint32(b, math.Float32bits(lo32))
		binary.LittleEndian.PutUint32(b[4:], math.Float32bits(hi32))
		step := (float64(hi32) - float64(lo32)) / 255
		q := b[8 : 8+n]
		if step == 0 || math.IsNaN(step) || math.IsInf(step, 0) {
			// Constant chunk (every value decodes to lo), or a non-finite
			// range that decodes to NaN/Inf regardless of the codes.
			for i := range q {
				q[i] = 0
			}
		} else {
			for i, x := range chunk {
				c := math.Round((x - float64(lo32)) / step)
				if c < 0 {
					c = 0
				} else if c > 255 {
					c = 255
				}
				q[i] = byte(c)
			}
		}
		b = b[8+n:]
		v = v[n:]
	}
	return dst
}

func decodeInt8(out *tensor.Vector, data []byte, maxDim int) error {
	if len(data) < 4 {
		return fmt.Errorf("%w: int8 header of %d bytes", ErrCorrupt, len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n > maxDim {
		return fmt.Errorf("%w: int8 d=%d exceeds the %d-coordinate bound", ErrCorrupt, n, maxDim)
	}
	if len(data) != int8Size(n) {
		return fmt.Errorf("%w: int8 payload of %d bytes for %d values", ErrCorrupt, len(data), n)
	}
	dst := resize(out, n)
	b := data[4:]
	for len(dst) > 0 {
		m := len(dst)
		if m > int8Chunk {
			m = int8Chunk
		}
		lo := float64(math.Float32frombits(binary.LittleEndian.Uint32(b)))
		hi := float64(math.Float32frombits(binary.LittleEndian.Uint32(b[4:])))
		step := (hi - lo) / 255
		q := b[8 : 8+m]
		for i, c := range q {
			dst[i] = lo + step*float64(c)
		}
		b = b[8+m:]
		dst = dst[m:]
	}
	return nil
}

// resize points *out at a vector of n coordinates via tensor.Resize (reuse
// the backing array when capacity suffices); every decoder overwrites all
// coordinates.
func resize(out *tensor.Vector, n int) tensor.Vector {
	*out = tensor.Resize(*out, n)
	return *out
}
