package compress

import (
	"encoding/binary"
	"fmt"
	"math"

	"garfield/internal/tensor"
)

// The dense codecs. All layouts are little-endian and carry the coordinate
// count up front, so a decoder can check the payload's exact expected length
// before touching a single value — truncation and trailing garbage both fail
// structurally, which is what the byte-flip/truncation suites lock in.

// --- fp64 passthrough ---

// appendFP64 appends the lossless encoding of v (the tensor wire format:
// uint32 len + 8 bytes per coordinate).
func appendFP64(dst []byte, v tensor.Vector) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, v.EncodedSize())...)
	// Encoding into a correctly-sized buffer cannot fail.
	_ = v.EncodeTo(dst[off:])
	return dst
}

// decodeFP64 is the strict inverse of appendFP64: unlike the tensor
// decoder — which tolerates trailing bytes so framed streams can over-read —
// a compressed payload is exactly one vector, so excess length is corruption.
func decodeFP64(out *tensor.Vector, data []byte, maxDim int) error {
	if len(data) < 4 {
		return fmt.Errorf("%w: fp64 header of %d bytes", ErrCorrupt, len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n > maxDim {
		return fmt.Errorf("%w: fp64 d=%d exceeds the %d-coordinate bound", ErrCorrupt, n, maxDim)
	}
	if len(data) != 4+8*n {
		return fmt.Errorf("%w: fp64 payload of %d bytes for %d values", ErrCorrupt, len(data), n)
	}
	if err := out.UnmarshalBinary(data); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nil
}

// --- fp16 half-precision ---

// fp16Size returns the encoded size of a d-dimensional vector: uint32 len +
// 2 bytes per coordinate (4x smaller than fp64).
func fp16Size(d int) int { return 4 + 2*d }

// appendFP16 appends the IEEE-754 binary16 encoding of v. Conversion rounds
// to nearest-even — bit-identical across runs and platforms — and saturates
// out-of-range magnitudes to ±Inf (gradients at training scale never get
// there; a Byzantine vector that does survives as ±Inf, which the GARs'
// distance filters reject like any other outlier).
func appendFP16(dst []byte, v tensor.Vector) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, fp16Size(len(v)))...)
	b := dst[off:]
	binary.LittleEndian.PutUint32(b, uint32(len(v)))
	f16Encode(b[4:], v)
	return dst
}

func decodeFP16(out *tensor.Vector, data []byte, maxDim int) error {
	if len(data) < 4 {
		return fmt.Errorf("%w: fp16 header of %d bytes", ErrCorrupt, len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n > maxDim {
		return fmt.Errorf("%w: fp16 d=%d exceeds the %d-coordinate bound", ErrCorrupt, n, maxDim)
	}
	if len(data) != fp16Size(n) {
		return fmt.Errorf("%w: fp16 payload of %d bytes for %d values", ErrCorrupt, len(data), n)
	}
	dst := resize(out, n)
	f16Decode(dst, data[4:])
	return nil
}

// float16bits converts x to IEEE-754 binary16, rounding to nearest-even.
// The rounding works directly on the float64 bits: narrowing through float32
// first — the original implementation — double-rounds, because a float64
// just above a half-precision tie midpoint can land exactly on the midpoint
// in float32, after which ties-to-even picks the wrong fp16 neighbor. The
// quant_test.go suites lock this against an exhaustive neighborhood walk and
// a big.Float reference, and the branch-free rounding below is the exact
// scheme the AVX2 encode kernel mirrors, so asm and purego stay
// bit-identical. Out-of-range magnitudes saturate to ±Inf; NaN canonicalizes
// to sign|0x7e00.
func float16bits(x float64) uint16 {
	b := math.Float64bits(x)
	sign := uint16(b>>48) & 0x8000
	e := int(b >> 52 & 0x7ff)
	mant := b & (1<<52 - 1)
	if e == 0x7ff { // Inf or NaN
		if mant != 0 {
			return sign | 0x7e00 // NaN canonicalizes (the sign survives)
		}
		return sign | 0x7c00
	}
	exp := e - 1023 + 15
	switch {
	case exp >= 0x1f:
		// |x| >= 2^16: past every finite binary16, saturate to Inf.
		return sign | 0x7c00
	case exp <= 0:
		// Subnormal or underflow: |x| < 2^-14.
		if exp < -10 {
			// Below half the smallest subnormal (or a tie with it, which
			// rounds to the even zero): signed zero.
			return sign
		}
		mant |= 1 << 52        // implicit leading bit
		s := uint(43 - exp)    // 43..53
		lsb := (mant >> s) & 1 // ties-to-even: round up only onto even
		m := (mant + (1<<(s-1) - 1) + lsb) >> s
		// A carry to m == 0x400 is exactly the smallest normal's encoding.
		return sign | uint16(m)
	default: // normal: 1 <= exp <= 30
		const shift = 42 // 52-bit float64 mantissa -> 10-bit fp16 mantissa
		lsb := (mant >> shift) & 1
		m := (mant + (1<<(shift-1) - 1) + lsb) >> shift
		// A mantissa carry (m == 0x400) propagates into the exponent by
		// plain addition; from exp == 30 it lands exactly on 0x7c00 = Inf.
		return sign | (uint16(exp)<<10 + uint16(m))
	}
}

// float16frombits expands an IEEE-754 binary16 value to float64 (exact).
// The original implementation normalized subnormals with an off-by-one
// exponent — every subnormal decoded at half its value. The F16C hardware
// decode (VCVTPH2PS + VCVTPS2PD) computes the correct expansion, and the
// fixed scalar matches it bit for bit, signaling-NaN quieting included.
func float16frombits(h uint16) float64 {
	sign := uint64(h&0x8000) << 48
	exp := uint64(h >> 10 & 0x1f)
	mant := uint64(h & 0x3ff)
	switch {
	case exp == 0x1f: // Inf / NaN
		if mant != 0 {
			// Quiet the NaN (preserving the payload), exactly as the
			// hardware conversion does.
			mant |= 0x200
		}
		return math.Float64frombits(sign | 0x7ff<<52 | mant<<42)
	case exp == 0: // zero / subnormal
		// mant * 2^-24, exact in float64 (mant has at most 10 bits).
		v := float64(mant) * 0x1p-24
		if sign != 0 {
			v = -v
		}
		return v
	default:
		return math.Float64frombits(sign | (exp-15+1023)<<52 | mant<<42)
	}
}

// --- int8 per-chunk linear quantization ---

// int8Chunk is the quantization granularity: each chunk carries its own
// (lo, hi) range as float32, so one outlier coordinate cannot destroy the
// resolution of the whole vector — only of its 256-coordinate neighbourhood.
// At 8 header bytes per 256 values the overhead is ~0.25 bits/coordinate:
// ~7.8x smaller than fp64.
const int8Chunk = 256

// int8Size returns the encoded size of a d-dimensional vector: uint32 len +
// per chunk (lo float32, hi float32, 1 byte per coordinate).
func int8Size(d int) int {
	chunks := (d + int8Chunk - 1) / int8Chunk
	return 4 + 8*chunks + d
}

// appendInt8 appends the per-chunk linear quantization of v: each value maps
// to round((x-lo) * (255/(hi-lo))) with round-half-away-from-zero
// (math.Round) — the multiply-by-reciprocal form, which the SIMD kernel
// reproduces exactly — a deterministic pure function of the chunk. NaN in the input makes the
// chunk's range NaN and every value decode as NaN — faithfully preserving a
// Byzantine poison value rather than laundering it into a finite number.
func appendInt8(dst []byte, v tensor.Vector) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, int8Size(len(v)))...)
	b := dst[off:]
	binary.LittleEndian.PutUint32(b, uint32(len(v)))
	b = b[4:]
	for len(v) > 0 {
		n := len(v)
		if n > int8Chunk {
			n = int8Chunk
		}
		chunk := v[:n]
		lo, hi, nan := int8Range(chunk)
		if nan {
			// NaN compares false against everything, so a plain min/max scan
			// would skip a mid-chunk NaN and quantize it through byte(NaN) —
			// an implementation-defined conversion that launders the poison
			// into a finite in-range value. Poison the whole chunk's range
			// instead so every value decodes as NaN.
			lo, hi = math.NaN(), math.NaN()
		}
		// The stored float32 range is what the decoder will reconstruct
		// against, so quantize relative to it, not the float64 range.
		lo32, hi32 := float32(lo), float32(hi)
		binary.LittleEndian.PutUint32(b, math.Float32bits(lo32))
		binary.LittleEndian.PutUint32(b[4:], math.Float32bits(hi32))
		span := float64(hi32) - float64(lo32)
		q := b[8 : 8+n]
		if span == 0 || math.IsNaN(span) || math.IsInf(span, 0) {
			// Constant chunk (every value decodes to lo), or a non-finite
			// range that decodes to NaN/Inf regardless of the codes.
			for i := range q {
				q[i] = 0
			}
		} else {
			int8Quant(q, chunk, float64(lo32), 255/span)
		}
		b = b[8+n:]
		v = v[n:]
	}
	return dst
}

func decodeInt8(out *tensor.Vector, data []byte, maxDim int) error {
	if len(data) < 4 {
		return fmt.Errorf("%w: int8 header of %d bytes", ErrCorrupt, len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n > maxDim {
		return fmt.Errorf("%w: int8 d=%d exceeds the %d-coordinate bound", ErrCorrupt, n, maxDim)
	}
	if len(data) != int8Size(n) {
		return fmt.Errorf("%w: int8 payload of %d bytes for %d values", ErrCorrupt, len(data), n)
	}
	dst := resize(out, n)
	b := data[4:]
	for len(dst) > 0 {
		m := len(dst)
		if m > int8Chunk {
			m = int8Chunk
		}
		lo := float64(math.Float32frombits(binary.LittleEndian.Uint32(b)))
		hi := float64(math.Float32frombits(binary.LittleEndian.Uint32(b[4:])))
		step := (hi - lo) / 255
		int8Dequant(dst[:m], b[8:8+m], lo, step)
		b = b[8+m:]
		dst = dst[m:]
	}
	return nil
}

// resize points *out at a vector of n coordinates via tensor.Resize (reuse
// the backing array when capacity suffices); every decoder overwrites all
// coordinates.
func resize(out *tensor.Vector, n int) tensor.Vector {
	*out = tensor.Resize(*out, n)
	return *out
}
