//go:build !race

package compress

// raceEnabled reports whether the race detector is compiled in; see
// race_test.go for why allocation assertions skip under it.
const raceEnabled = false
