//go:build race

package compress

// raceEnabled reports whether the race detector is compiled in. Allocation-
// count assertions skip under race: instrumentation disables the compiler's
// append(s, make([]T, n)...) extend-in-place optimization, so every encoder
// materializes its temporary — an artifact of the build mode, not a codec
// regression.
const raceEnabled = true
