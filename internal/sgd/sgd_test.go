package sgd

import (
	"errors"
	"math"
	"testing"

	"garfield/internal/tensor"
)

func TestConstantSchedule(t *testing.T) {
	s := Constant(0.1)
	if s.LR(0) != 0.1 || s.LR(1000) != 0.1 {
		t.Fatal("Constant schedule not constant")
	}
}

func TestInverseDecay(t *testing.T) {
	s := InverseDecay{Base: 1, HalfLife: 10}
	if s.LR(0) != 1 {
		t.Fatalf("LR(0) = %v", s.LR(0))
	}
	if math.Abs(s.LR(10)-0.5) > 1e-12 {
		t.Fatalf("LR(10) = %v, want 0.5", s.LR(10))
	}
	if s.LR(100) >= s.LR(10) {
		t.Fatal("decay not monotone")
	}
}

func TestStepDecay(t *testing.T) {
	s := StepDecay{Base: 1, Factor: 0.1, Every: 5}
	if s.LR(4) != 1 {
		t.Fatalf("LR(4) = %v", s.LR(4))
	}
	if math.Abs(s.LR(5)-0.1) > 1e-12 {
		t.Fatalf("LR(5) = %v", s.LR(5))
	}
	if math.Abs(s.LR(10)-0.01) > 1e-12 {
		t.Fatalf("LR(10) = %v", s.LR(10))
	}
	zero := StepDecay{Base: 2, Factor: 0.5, Every: 0}
	if zero.LR(100) != 2 {
		t.Fatal("Every=0 should disable decay")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil schedule err = %v", err)
	}
	if _, err := New(Constant(0.1), WithMomentum(1.0)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("momentum 1.0 err = %v", err)
	}
	if _, err := New(Constant(0.1), WithMomentum(-0.1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("momentum -0.1 err = %v", err)
	}
}

func TestApplyPlainSGD(t *testing.T) {
	o, err := New(Constant(0.5))
	if err != nil {
		t.Fatal(err)
	}
	p := tensor.Vector{1, 2}
	if err := o.Apply(p, tensor.Vector{2, -2}); err != nil {
		t.Fatal(err)
	}
	if p[0] != 0 || p[1] != 3 {
		t.Fatalf("params = %v", p)
	}
	if o.Step() != 1 {
		t.Fatalf("step = %d", o.Step())
	}
}

func TestApplyMomentumAccumulates(t *testing.T) {
	o, err := New(Constant(1), WithMomentum(0.5))
	if err != nil {
		t.Fatal(err)
	}
	p := tensor.Vector{0}
	g := tensor.Vector{1}
	// v1 = 1, p = -1; v2 = 1.5, p = -2.5
	if err := o.Apply(p, g); err != nil {
		t.Fatal(err)
	}
	if err := o.Apply(p, g); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-(-2.5)) > 1e-12 {
		t.Fatalf("params = %v, want -2.5", p[0])
	}
}

func TestApplyDimensionMismatch(t *testing.T) {
	o, err := New(Constant(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Apply(tensor.Vector{1}, tensor.Vector{1, 2}); !errors.Is(err, tensor.ErrDimensionMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestApplyUsesSchedule(t *testing.T) {
	o, err := New(StepDecay{Base: 1, Factor: 0, Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := tensor.Vector{10}
	if err := o.Apply(p, tensor.Vector{1}); err != nil {
		t.Fatal(err)
	}
	if p[0] != 9 {
		t.Fatalf("step 0 used wrong lr: %v", p[0])
	}
	if err := o.Apply(p, tensor.Vector{1}); err != nil {
		t.Fatal(err)
	}
	if p[0] != 9 { // lr at step 1 is 0
		t.Fatalf("step 1 should be a no-op: %v", p[0])
	}
	if o.LR() != 0 {
		t.Fatalf("LR() = %v", o.LR())
	}
}

func TestReset(t *testing.T) {
	o, err := New(Constant(1), WithMomentum(0.9))
	if err != nil {
		t.Fatal(err)
	}
	p := tensor.Vector{0}
	if err := o.Apply(p, tensor.Vector{1}); err != nil {
		t.Fatal(err)
	}
	o.Reset()
	if o.Step() != 0 {
		t.Fatalf("step after reset = %d", o.Step())
	}
	p2 := tensor.Vector{0}
	if err := o.Apply(p2, tensor.Vector{1}); err != nil {
		t.Fatal(err)
	}
	if p2[0] != -1 {
		t.Fatalf("velocity not cleared: %v", p2[0])
	}
}

func TestOptimizerConvergesOnQuadratic(t *testing.T) {
	// Minimize f(x) = ||x - c||^2 / 2; gradient = x - c.
	c := tensor.Vector{3, -2, 7}
	x := tensor.Vector{0, 0, 0}
	o, err := New(Constant(0.3), WithMomentum(0.5))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 200; k++ {
		g, err := x.Sub(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Apply(x, g); err != nil {
			t.Fatal(err)
		}
	}
	d, err := x.Distance(c)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-6 {
		t.Fatalf("did not converge: distance %v", d)
	}
}

// TestApplySteadyStateZeroAlloc pins the optimizer side of the
// zero-allocation training iteration: once the momentum buffer exists,
// Apply performs in-place updates only.
func TestApplySteadyStateZeroAlloc(t *testing.T) {
	opt, err := New(Constant(0.1), WithMomentum(0.9))
	if err != nil {
		t.Fatal(err)
	}
	params := tensor.Filled(1024, 1)
	grad := tensor.Filled(1024, 0.01)
	if err := opt.Apply(params, grad); err != nil {
		t.Fatal(err) // first call allocates the velocity buffer
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := opt.Apply(params, grad); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Apply allocs/op = %v, want 0", allocs)
	}
}
