// Package sgd implements the stochastic gradient descent optimizer
// (Section 2.1 of the paper): x_{k+1} = x_k - gamma_k * G(x_k, xi), with
// optional classical momentum and configurable learning-rate schedules.
package sgd

import (
	"errors"
	"fmt"

	"garfield/internal/tensor"
)

// Schedule maps a step index to a learning rate gamma_k.
type Schedule interface {
	// LR returns the learning rate for step k (0-based).
	LR(k int) float64
}

// Constant is a fixed learning rate.
type Constant float64

var _ Schedule = Constant(0)

// LR implements Schedule.
func (c Constant) LR(int) float64 { return float64(c) }

// InverseDecay implements gamma_k = base / (1 + k/halfLife), the standard
// Robbins–Monro-style decay used in the Byzantine-SGD literature.
type InverseDecay struct {
	// Base is gamma_0.
	Base float64
	// HalfLife is the step count after which the rate halves. Must be > 0.
	HalfLife float64
}

var _ Schedule = InverseDecay{}

// LR implements Schedule.
func (d InverseDecay) LR(k int) float64 {
	return d.Base / (1 + float64(k)/d.HalfLife)
}

// StepDecay multiplies the rate by Factor every Every steps.
type StepDecay struct {
	Base   float64
	Factor float64
	Every  int
}

var _ Schedule = StepDecay{}

// LR implements Schedule.
func (d StepDecay) LR(k int) float64 {
	lr := d.Base
	if d.Every <= 0 {
		return lr
	}
	for i := d.Every; i <= k; i += d.Every {
		lr *= d.Factor
	}
	return lr
}

// ErrBadConfig reports an invalid optimizer configuration.
var ErrBadConfig = errors.New("sgd: invalid configuration")

// Optimizer applies (aggregated) gradients to a parameter vector it does not
// own — the Server object owns the parameters, matching the paper's design.
type Optimizer struct {
	schedule Schedule
	momentum float64
	velocity tensor.Vector
	step     int
}

// Option configures an Optimizer.
type Option func(*Optimizer) error

// WithMomentum enables classical momentum with coefficient mu in [0, 1).
func WithMomentum(mu float64) Option {
	return func(o *Optimizer) error {
		if mu < 0 || mu >= 1 {
			return fmt.Errorf("%w: momentum %v not in [0,1)", ErrBadConfig, mu)
		}
		o.momentum = mu
		return nil
	}
}

// New returns an optimizer with the given schedule.
func New(schedule Schedule, opts ...Option) (*Optimizer, error) {
	if schedule == nil {
		return nil, fmt.Errorf("%w: nil schedule", ErrBadConfig)
	}
	o := &Optimizer{schedule: schedule}
	for _, opt := range opts {
		if err := opt(o); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// Step returns the current step counter (number of updates applied).
func (o *Optimizer) Step() int { return o.step }

// LR returns the learning rate the next Apply will use.
func (o *Optimizer) LR() float64 { return o.schedule.LR(o.step) }

// Apply performs one SGD update in place: params -= lr * (momentum-smoothed)
// grad, then advances the step counter.
func (o *Optimizer) Apply(params, grad tensor.Vector) error {
	if len(params) != len(grad) {
		return fmt.Errorf("sgd: %w", tensor.ErrDimensionMismatch)
	}
	lr := o.schedule.LR(o.step)
	o.step++
	if o.momentum == 0 {
		return params.AXPY(-lr, grad)
	}
	if o.velocity == nil {
		o.velocity = tensor.New(len(params))
	}
	if len(o.velocity) != len(params) {
		return fmt.Errorf("sgd: velocity %w", tensor.ErrDimensionMismatch)
	}
	for i := range o.velocity {
		o.velocity[i] = o.momentum*o.velocity[i] + grad[i]
	}
	return params.AXPY(-lr, o.velocity)
}

// Reset clears the step counter and momentum state (used when a server
// replica overwrites its model after model aggregation).
func (o *Optimizer) Reset() {
	o.ResetTo(0)
}

// ResetTo clears the momentum state and sets the step counter, so a server
// restored from a checkpoint resumes its learning-rate schedule at the
// checkpointed step instead of wherever the abandoned timeline left it.
func (o *Optimizer) ResetTo(step int) {
	o.step = step
	o.velocity = nil
}
