package rpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"garfield/internal/compress"
	"garfield/internal/tensor"
	"garfield/internal/transport"
)

// PooledClient is a Client variant that keeps one persistent connection per
// peer instead of dialing per call — the connection-reuse optimization real
// gRPC deployments get from HTTP/2 channels. Requests to the same peer are
// serialized over its connection (the wire protocol is strict
// request/response); requests to different peers still run fully in
// parallel, which is what Garfield's fan-out needs. For the same reason,
// concurrent callers (e.g. several server replicas) should each own a
// PooledClient rather than share one.
//
// PooledClient is the protocol default (core.Cluster and cmd/garfield-node
// both construct one per node): per-call dial latency and dial allocations
// disappear from the steady-state pull loop. Per-call cancellation semantics
// are retained for straggler handling, and cancellation is cheap: a
// cancelled call poisons the connection's I/O deadline to unblock itself,
// and when the request had been fully written and no byte of the reply
// consumed, the connection survives — the late reply is owed on the wire and
// drained by the next call to that peer, so steady-state straggler
// cancellation causes no re-dial churn. Only a cancellation that interrupts
// mid-frame tears the connection down (it is re-dialed lazily). The
// dial-per-call Client remains available for one-shot use and backs the
// connection-reuse ablation bench.
type PooledClient struct {
	network transport.Network
	self    string

	// Wire accounting (see WireStats): updated lock-free on every call so
	// compression ratios are observable in every run artifact.
	calls        atomic.Uint64
	bytesOut     atomic.Uint64
	bytesIn      atomic.Uint64
	replies      atomic.Uint64
	replyPayload atomic.Uint64
	replyFP64    atomic.Uint64
	shardPulls   atomic.Uint64
	shardReplies atomic.Uint64
	retries      atomic.Uint64
	backoffNanos atomic.Uint64

	// jitterState seeds the retry-backoff jitter (splitmix64 per draw): a
	// per-client stream so concurrent retriers against one rejoining peer
	// spread out without contending on a shared RNG.
	jitterState atomic.Uint64

	mu     sync.Mutex
	closed bool
	conns  map[string]*pooledConn
}

// WireStats is a snapshot of a PooledClient's byte accounting: how many
// frame bytes moved in each direction, and — for the pull replies that
// actually carried vectors — what they cost on the wire versus what the
// same replies would have cost under the fp64 passthrough encoding. The
// fp64 baseline is computed from each decoded reply's dimension, so
// ReplyFP64Bytes / ReplyPayloadBytes is the exact end-to-end compression
// ratio of the reply stream.
type WireStats struct {
	// Calls counts call attempts that reached the wire.
	Calls uint64
	// BytesOut and BytesIn are total frame bytes written and read
	// (headers and checksums included; drained late replies count too).
	BytesOut uint64
	BytesIn  uint64
	// Replies counts successfully decoded OK replies.
	Replies uint64
	// ReplyPayloadBytes is the frame-body bytes of those replies as
	// shipped; ReplyFP64Bytes is what the same replies would have cost
	// under the passthrough encoding.
	ReplyPayloadBytes uint64
	ReplyFP64Bytes    uint64
	// ShardPulls counts the successfully decoded replies of sharded-
	// aggregation traffic — ranged gradient pulls and shard-part reassembly
	// pulls — and ShardReplyBytes their shipped payload bytes. Both are
	// subsets of Replies / ReplyPayloadBytes: together with them they show
	// what fraction of the reply stream the sharding layer moved.
	ShardPulls      uint64
	ShardReplyBytes uint64
	// Retries counts call attempts repeated after a retriable idle-death
	// failure; BackoffNanos is the total time those retries spent sleeping
	// in the jittered exponential backoff. Together they make churn storms
	// observable: a rejoining replica that forces the fleet through the
	// backoff path shows up here, not as silent latency.
	Retries      uint64
	BackoffNanos uint64
}

// Add returns the field-wise sum of two snapshots (aggregating a cluster's
// per-replica clients).
func (s WireStats) Add(o WireStats) WireStats {
	return WireStats{
		Calls:             s.Calls + o.Calls,
		BytesOut:          s.BytesOut + o.BytesOut,
		BytesIn:           s.BytesIn + o.BytesIn,
		Replies:           s.Replies + o.Replies,
		ReplyPayloadBytes: s.ReplyPayloadBytes + o.ReplyPayloadBytes,
		ReplyFP64Bytes:    s.ReplyFP64Bytes + o.ReplyFP64Bytes,
		ShardPulls:        s.ShardPulls + o.ShardPulls,
		ShardReplyBytes:   s.ShardReplyBytes + o.ShardReplyBytes,
		Retries:           s.Retries + o.Retries,
		BackoffNanos:      s.BackoffNanos + o.BackoffNanos,
	}
}

// Sub returns the field-wise difference s - o (delta between two snapshots
// of the same client set).
func (s WireStats) Sub(o WireStats) WireStats {
	return WireStats{
		Calls:             s.Calls - o.Calls,
		BytesOut:          s.BytesOut - o.BytesOut,
		BytesIn:           s.BytesIn - o.BytesIn,
		Replies:           s.Replies - o.Replies,
		ReplyPayloadBytes: s.ReplyPayloadBytes - o.ReplyPayloadBytes,
		ReplyFP64Bytes:    s.ReplyFP64Bytes - o.ReplyFP64Bytes,
		ShardPulls:        s.ShardPulls - o.ShardPulls,
		ShardReplyBytes:   s.ShardReplyBytes - o.ShardReplyBytes,
		Retries:           s.Retries - o.Retries,
		BackoffNanos:      s.BackoffNanos - o.BackoffNanos,
	}
}

// ReplyCompressionRatio returns fp64-baseline bytes over shipped bytes for
// the reply stream (1.0 for an uncompressed fleet, 0 when no replies).
func (s WireStats) ReplyCompressionRatio() float64 {
	if s.ReplyPayloadBytes == 0 {
		return 0
	}
	return float64(s.ReplyFP64Bytes) / float64(s.ReplyPayloadBytes)
}

// Stats returns a snapshot of the client's wire accounting.
func (c *PooledClient) Stats() WireStats {
	return WireStats{
		Calls:             c.calls.Load(),
		BytesOut:          c.bytesOut.Load(),
		BytesIn:           c.bytesIn.Load(),
		Replies:           c.replies.Load(),
		ReplyPayloadBytes: c.replyPayload.Load(),
		ReplyFP64Bytes:    c.replyFP64.Load(),
		ShardPulls:        c.shardPulls.Load(),
		ShardReplyBytes:   c.shardReplies.Load(),
		Retries:           c.retries.Load(),
		BackoffNanos:      c.backoffNanos.Load(),
	}
}

var _ Caller = (*PooledClient)(nil)

type pooledConn struct {
	mu      sync.Mutex
	conn    net.Conn
	rd      countingReader // wraps conn; detects partially-consumed frames
	pending int            // replies owed on the wire by cancelled calls
	closed  bool

	// Cancellation machinery: one persistent watcher goroutine per peer,
	// armed and disarmed by value over channels, so watching a call for
	// cancellation allocates nothing. state is the in-flight call's
	// outcome register; the arm/disarm handshake guarantees the watcher
	// never touches a successor call's connection.
	state  atomic.Int32
	arm    chan armReq
	disarm chan struct{}
}

type armReq struct {
	ctx  context.Context
	conn net.Conn
}

// watch is the per-peer cancellation watcher: for every armed call it either
// observes ctx cancellation — poisoning that call's connection deadline to
// unblock its I/O — or is disarmed when the call completes first. The
// disarm handshake in both branches means the watcher is provably idle
// between calls.
func (pc *pooledConn) watch() {
	for a := range pc.arm {
		select {
		case <-a.ctx.Done():
			if pc.state.CompareAndSwap(callInFlight, callCancelled) {
				_ = a.conn.SetDeadline(pastDeadline)
			}
			<-pc.disarm
		case <-pc.disarm:
		}
	}
}

func (pc *pooledConn) disarmCall() { pc.disarm <- struct{}{} }

// countingReader counts consumed bytes so a cancelled read can prove the
// reply frame was untouched (and the connection therefore reusable).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// NewPooledClient returns a pooled client dialing over the given network.
func NewPooledClient(network transport.Network) *PooledClient {
	return NewPooledClientAs(network, "")
}

// NewPooledClientAs is NewPooledClient with a caller identity: every request
// that does not already carry one is stamped with self (see Request.From).
func NewPooledClientAs(network transport.Network, self string) *PooledClient {
	return &PooledClient{
		network: network,
		self:    self,
		conns:   make(map[string]*pooledConn),
	}
}

// Close tears down every pooled connection and stops the watchers. Calls
// issued after Close fail.
func (c *PooledClient) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, pc := range c.conns {
		pc.mu.Lock()
		if pc.conn != nil {
			_ = pc.conn.Close()
			pc.conn = nil
		}
		if !pc.closed {
			pc.closed = true
			close(pc.arm)
		}
		pc.mu.Unlock()
	}
}

func (c *PooledClient) peer(addr string) (*pooledConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errClientClosed
	}
	pc, ok := c.conns[addr]
	if !ok {
		pc = &pooledConn{
			arm:    make(chan armReq),
			disarm: make(chan struct{}),
		}
		go pc.watch()
		c.conns[addr] = pc
	}
	return pc, nil
}

// Per-call cancellation states; see Call.
const (
	callInFlight int32 = iota
	callFinished
	callCancelled
)

// pastDeadline is the sentinel deadline a cancelled call sets to unblock its
// connection I/O without closing the connection.
var pastDeadline = time.Unix(1, 0)

// errClientClosed is returned for calls issued after Close.
var errClientClosed = errors.New("rpc: pooled client closed")

// Retry policy for retriable idle-death failures: the first retry is
// immediate (the overwhelmingly common case is a single severed idle
// connection, and an instant re-dial restores it), later retries back off
// exponentially with jitter so a churn storm — every replica in the fleet
// re-dialing a node that just rejoined — spreads out instead of thundering
// in lockstep. maxCallAttempts bounds the total attempts per Call.
const (
	maxCallAttempts  = 4
	retryBackoffBase = 2 * time.Millisecond
	retryBackoffCap  = 16 * time.Millisecond
)

// DefaultCallDeadline bounds a Call whose context carries no deadline of its
// own: with retries in the loop, an unbounded call against a peer that dies
// mid-churn could otherwise block its connection slot indefinitely.
const DefaultCallDeadline = 30 * time.Second

// jitterBackoff draws a jittered sleep in [d/2, d] from the client's
// splitmix64 stream (equal-jitter policy: half deterministic so backoff
// still separates attempt rounds, half random so concurrent retriers
// decorrelate).
func (c *PooledClient) jitterBackoff(d time.Duration) time.Duration {
	x := c.jitterState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	half := uint64(d) / 2
	if half == 0 {
		return d
	}
	return time.Duration(half + x%(half+1))
}

// Call performs one round trip over the peer's persistent connection,
// dialing lazily on first use and re-dialing after failures. A pooled
// connection can die while idle — a peer restart, a membership departure, or
// injected faults severing links (transport.Faulty severs on Crash and
// SetDelay) — in which case the first reuse fails before any reply byte
// arrives. Pull requests are idempotent reads, so such failures — and
// refused dials, the signature of a peer mid-rejoin — are retried
// transparently over a fresh connection instead of surfacing to the protocol
// layer: immediately first, then under bounded exponential backoff with
// jitter (see maxCallAttempts). Retry counts and backoff time are exposed in
// WireStats. A context without a deadline is bounded by DefaultCallDeadline.
func (c *PooledClient) Call(ctx context.Context, addr string, req Request) (tensor.Vector, error) {
	return c.callInto(ctx, addr, req, nil)
}

// callInto is Call decoding the reply into *dst when dst is non-nil. The
// destination survives retries: each attempt decodes over the same backing
// array, and only a successful decode re-points *dst.
func (c *PooledClient) callInto(ctx context.Context, addr string, req Request, dst *tensor.Vector) (tensor.Vector, error) {
	req = stamp(req, c.self)
	pc, err := c.peer(addr)
	if err != nil {
		return nil, err
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultCallDeadline)
		defer cancel()
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()

	backoff := retryBackoffBase
	for attempt := 1; ; attempt++ {
		vec, retry, err := c.callLocked(ctx, pc, addr, req, dst)
		if err == nil || !retry || attempt >= maxCallAttempts || ctx.Err() != nil {
			return vec, err
		}
		c.retries.Add(1)
		if attempt > 1 {
			// Second and later retries sleep; the connection slot is held
			// across the sleep, which is intentional — same-peer calls are
			// serialized anyway, and releasing the lock mid-retry would
			// reorder the request stream.
			d := c.jitterBackoff(backoff)
			//lint:allow wallclock(retry backoff paces live-network redials; simulated runs dispatch through sim.Caller and never enter PooledClient)
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
				c.backoffNanos.Add(uint64(d))
			case <-ctx.Done():
				timer.Stop()
				return nil, err
			}
			if backoff < retryBackoffCap {
				backoff *= 2
			}
		}
	}
}

// callLocked is one call attempt over pc (held locked by the caller). retry
// reports a failure mode that is safe to repeat over a fresh connection: the
// connection had been reused (so it may simply have died while idle), no
// byte of this call's reply was consumed, and the failure was not a
// caller-initiated cancellation.
func (c *PooledClient) callLocked(ctx context.Context, pc *pooledConn, addr string, req Request, dst *tensor.Vector) (vec tensor.Vector, retry bool, err error) {
	if pc.closed {
		return nil, false, errClientClosed
	}
	reused := pc.conn != nil
	if pc.conn == nil {
		conn, err := c.network.Dial(ctx, addr)
		if err != nil {
			// A refused dial is the transient signature of churn — the peer
			// is mid-rejoin, or a partition is healing — so it is retried
			// under the bounded backoff. A peer that is genuinely gone keeps
			// refusing and the attempt budget bounds the cost.
			return nil, true, fmt.Errorf("rpc: pooled dial %q: %w", addr, err)
		}
		pc.conn = conn
		pc.rd = countingReader{r: conn}
		pc.pending = 0
	}
	// A call that was cancelled before touching the stream must not poison
	// the pooled connection for its successors.
	if ctxErr := ctx.Err(); ctxErr != nil {
		return nil, false, ctxErr
	}
	// Clear any deadline poison left by a previously-cancelled call (its
	// watcher was disarmed before this call could acquire the lock).
	_ = pc.conn.SetDeadline(time.Time{})

	// Arm the watcher: it either poisons this connection's deadline on ctx
	// cancellation or is disarmed on return. The state CAS decides the
	// race between cancellation and completion (e.g. PullFirstQ cancelling
	// stragglers just as this peer's reply lands): whichever side
	// transitions first wins, and the loser does not touch the connection.
	pc.state.Store(callInFlight)
	pc.arm <- armReq{ctx: ctx, conn: pc.conn}
	defer pc.disarmCall()

	fail := func(stage string, err error) (tensor.Vector, bool, error) {
		_ = pc.conn.Close()
		pc.conn = nil
		// Cancellation is never retried; a fresh dial is pointless work
		// the caller has already abandoned.
		retriable := reused && pc.state.Load() != callCancelled
		return nil, retriable, fmt.Errorf("rpc: pooled %s %q: %w", stage, addr, wrapCtx(ctx, err))
	}

	// Drain replies owed by cancelled predecessors so the stream is
	// positioned at this call's response.
	for pc.pending > 0 {
		start := pc.rd.n
		stale, err := readFramePooled(&pc.rd)
		if err != nil {
			if pc.state.Load() == callCancelled && pc.rd.n == start {
				// Cancelled before the stale reply arrived; the stream
				// is still clean, leave the debt for the next call.
				// Cancellation is caller-initiated: report it plainly.
				return nil, false, wrapCtx(ctx, err)
			}
			return fail("drain", err)
		}
		c.bytesIn.Add(uint64(frameHeaderSize + len(*stale)))
		putBuf(stale)
		pc.pending--
	}

	c.calls.Add(1)
	c.bytesOut.Add(uint64(frameHeaderSize + encodedRequestSize(req)))
	if err := writeRequestFrame(pc.conn, req); err != nil {
		// A failed or interrupted write leaves the request stream in an
		// unknown state; the connection cannot be reused.
		return fail("send to", err)
	}
	start := pc.rd.n
	payload, err := readFramePooled(&pc.rd)
	if err != nil {
		if pc.state.Load() == callCancelled && pc.rd.n == start {
			// Request fully sent, no reply byte consumed: the peer still
			// owes one response on this stream. Keep the connection and
			// let the next call drain it. Cancellation is
			// caller-initiated: report it plainly, without formatting.
			pc.pending++
			return nil, false, wrapCtx(ctx, err)
		}
		if pc.rd.n != start {
			// A partially-consumed reply is a genuine mid-stream
			// failure, not an idle death: never retry.
			reused = false
		}
		return fail("receive from", err)
	}
	c.bytesIn.Add(uint64(frameHeaderSize + len(*payload)))
	payloadLen := len(*payload)
	resp, err := decodeResponseInto(dst, *payload, replyDimBound(req))
	putBuf(payload)
	if err != nil {
		reused = false // protocol corruption, not an idle death
		return fail("decode from", err)
	}
	if err := correlate(req, resp); err != nil {
		// The stream handed this call some other request's reply (e.g. a
		// duplicated request frame shifted the conversation): the
		// connection's request/response alignment is unknowable, so tear
		// it down. Not retried on this attempt — the desync, unlike an
		// idle death, may reproduce systematically.
		reused = false
		return fail("correlate from", err)
	}
	pc.state.CompareAndSwap(callInFlight, callFinished)
	if !resp.OK {
		return nil, false, fmt.Errorf("rpc: %q: %w", addr, ErrNotServed)
	}
	// Reply accounting: what this reply cost as shipped, and what the same
	// vector would have cost under the fp64 passthrough (7-byte response
	// header + the tensor wire format) — the pair every compression ratio
	// in the artifacts derives from.
	c.replies.Add(1)
	c.replyPayload.Add(uint64(payloadLen))
	if req.Kind == KindGetShardPart || req.Ranged() {
		// Sharded-aggregation traffic: shard-part reassembly pulls and
		// ranged gradient pulls, attributed for the per-shard columns of
		// the sweep artifacts.
		c.shardPulls.Add(1)
		c.shardReplies.Add(uint64(payloadLen))
	}
	baseline := respHeaderSize // vector-less OK reply (ping)
	if resp.Vec != nil {
		baseline += compress.FP64EncodedSize(len(resp.Vec))
	}
	c.replyFP64.Add(uint64(baseline))
	return resp.Vec, false, nil
}

// PullFirstQ implements Caller; see pullFirstQ. Straggler cancellation
// leaves the affected connections pooled whenever the reply stream is clean
// (see Call), so repeated pull rounds do not re-dial.
func (c *PooledClient) PullFirstQ(ctx context.Context, peers []string, q int, req Request) ([]Reply, error) {
	return pullFirstQ(ctx, c, peers, q, req, nil)
}

// PullFirstQInto implements Caller; see pullFirstQ.
func (c *PooledClient) PullFirstQInto(ctx context.Context, peers []string, q int, req Request, slots ReplySlots) ([]Reply, error) {
	return pullFirstQ(ctx, c, peers, q, req, slots)
}
