package rpc

import (
	"context"
	"fmt"
	"net"
	"sync"

	"garfield/internal/tensor"
	"garfield/internal/transport"
)

// PooledClient is a Client variant that keeps one persistent connection per
// peer instead of dialing per call — the connection-reuse optimization real
// gRPC deployments get from HTTP/2 channels. Requests to the same peer are
// serialized over its connection (the wire protocol is strict
// request/response); requests to different peers still run fully in
// parallel, which is what Garfield's fan-out needs.
//
// Trade-off vs Client: no per-call dial latency and fewer allocations, but a
// straggler request to a peer delays subsequent requests to that same peer,
// and cancelling one call tears down the shared connection (it is re-dialed
// lazily). The dial-per-call Client remains the default in protocols; the
// pooled variant backs the connection-reuse ablation bench.
type PooledClient struct {
	network transport.Network

	mu    sync.Mutex
	conns map[string]*pooledConn
}

type pooledConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// NewPooledClient returns a pooled client dialing over the given network.
func NewPooledClient(network transport.Network) *PooledClient {
	return &PooledClient{
		network: network,
		conns:   make(map[string]*pooledConn),
	}
}

// Close tears down every pooled connection.
func (c *PooledClient) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, pc := range c.conns {
		pc.mu.Lock()
		if pc.conn != nil {
			_ = pc.conn.Close()
			pc.conn = nil
		}
		pc.mu.Unlock()
	}
}

func (c *PooledClient) peer(addr string) *pooledConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	pc, ok := c.conns[addr]
	if !ok {
		pc = &pooledConn{}
		c.conns[addr] = pc
	}
	return pc
}

// Call performs one round trip over the peer's persistent connection,
// dialing lazily on first use and re-dialing after failures.
func (c *PooledClient) Call(ctx context.Context, addr string, req Request) (tensor.Vector, error) {
	pc := c.peer(addr)
	pc.mu.Lock()
	defer pc.mu.Unlock()

	if pc.conn == nil {
		conn, err := c.network.Dial(ctx, addr)
		if err != nil {
			return nil, fmt.Errorf("rpc: pooled dial %q: %w", addr, err)
		}
		pc.conn = conn
	}

	// Honour ctx cancellation while blocked on I/O; a cancelled call
	// poisons the shared connection, so drop it for re-dial.
	done := make(chan struct{})
	conn := pc.conn
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.Close()
		case <-done:
		}
	}()
	defer close(done)

	fail := func(stage string, err error) (tensor.Vector, error) {
		_ = pc.conn.Close()
		pc.conn = nil
		return nil, fmt.Errorf("rpc: pooled %s %q: %w", stage, addr, wrapCtx(ctx, err))
	}
	if err := writeFrame(pc.conn, encodeRequest(req)); err != nil {
		return fail("send to", err)
	}
	payload, err := readFrame(pc.conn)
	if err != nil {
		return fail("receive from", err)
	}
	resp, err := decodeResponse(payload)
	if err != nil {
		return fail("decode from", err)
	}
	if !resp.OK {
		return nil, fmt.Errorf("rpc: %q: %w", addr, ErrNotServed)
	}
	return resp.Vec, nil
}
