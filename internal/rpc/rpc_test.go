package rpc

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"garfield/internal/compress"
	"garfield/internal/tensor"
	"garfield/internal/transport"
)

// echoHandler returns the request vector scaled by 2, or declines when the
// request carries no vector.
func echoHandler() Handler {
	return HandlerFunc(func(req Request) Response {
		if req.Vec == nil {
			return Response{}
		}
		return Response{OK: true, Vec: req.Vec.Scale(2)}
	})
}

func TestWireRequestRoundTrip(t *testing.T) {
	tests := []Request{
		{Kind: KindPing, Step: 0},
		{Kind: KindGetModel, Step: 42},
		{Kind: KindGetGradient, Step: 7, Vec: tensor.Vector{1.5, -2.5}},
	}
	for _, req := range tests {
		got, err := decodeRequest(encodeRequest(req))
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != req.Kind || got.Step != req.Step {
			t.Fatalf("round trip = %+v, want %+v", got, req)
		}
		if (got.Vec == nil) != (req.Vec == nil) {
			t.Fatalf("vec presence mismatch: %+v vs %+v", got, req)
		}
		for i := range req.Vec {
			if got.Vec[i] != req.Vec[i] {
				t.Fatalf("vec mismatch at %d", i)
			}
		}
	}
}

func TestWireResponseRoundTrip(t *testing.T) {
	tests := []Response{
		{OK: false},
		{OK: true, Vec: tensor.Vector{3, 4}},
		{OK: true}, // ok with no vector
	}
	for _, resp := range tests {
		got, err := decodeResponse(encodeResponse(resp), compress.MaxDim)
		if err != nil {
			t.Fatal(err)
		}
		if got.OK != resp.OK {
			t.Fatalf("OK mismatch: %+v vs %+v", got, resp)
		}
	}
}

func TestWireMalformed(t *testing.T) {
	if _, err := decodeRequest([]byte{1, 2}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
	if _, err := decodeResponse(nil, compress.MaxDim); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
	// hasVec flag set but payload truncated
	bad := encodeRequest(Request{Kind: KindGetGradient, Vec: tensor.Vector{1}})
	if _, err := decodeRequest(bad[:7]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
}

func TestKindString(t *testing.T) {
	if KindGetGradient.String() != "get-gradient" || Kind(99).String() != "kind(99)" {
		t.Fatal("Kind.String broken")
	}
}

func TestServeNilHandler(t *testing.T) {
	if _, err := Serve(transport.NewMem(), "a", nil); err == nil {
		t.Fatal("expected error for nil handler")
	}
}

func TestCallRoundTrip(t *testing.T) {
	net := transport.NewMem()
	srv, err := Serve(net, "peer", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(net)
	out, err := c.Call(context.Background(), "peer",
		Request{Kind: KindGetGradient, Step: 1, Vec: tensor.Vector{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 4 {
		t.Fatalf("out = %v", out)
	}
}

func TestCallDeclined(t *testing.T) {
	net := transport.NewMem()
	srv, err := Serve(net, "peer", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(net)
	_, err = c.Call(context.Background(), "peer", Request{Kind: KindPing})
	if !errors.Is(err, ErrNotServed) {
		t.Fatalf("err = %v, want ErrNotServed", err)
	}
}

func TestCallUnknownPeer(t *testing.T) {
	c := NewClient(transport.NewMem())
	if _, err := c.Call(context.Background(), "ghost", Request{Kind: KindPing}); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestCallContextCancelUnblocks(t *testing.T) {
	net := transport.NewMem()
	// Handler that never answers until released.
	block := make(chan struct{})
	srv, err := Serve(net, "hang", HandlerFunc(func(Request) Response {
		<-block
		return Response{}
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Deferred calls run LIFO: the handler must be released (close) before
	// srv.Close waits for the serving goroutines.
	defer srv.Close()
	defer close(block)

	c := NewClient(net)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Call(ctx, "hang", Request{Kind: KindPing})
	if err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancel did not unblock the call promptly")
	}
}

func TestServerSurvivesMalformedFrame(t *testing.T) {
	net := transport.NewMem()
	srv, err := Serve(net, "peer", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial(context.Background(), "peer")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Write a garbage frame: valid length prefix, junk payload (too short
	// for a request header).
	if err := writeFrame(conn, []byte{9}); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := decodeResponse(payload, compress.MaxDim)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("malformed request was acknowledged OK")
	}
	// The connection must still work for well-formed requests.
	if err := writeFrame(conn, encodeRequest(Request{Kind: KindGetGradient, Vec: tensor.Vector{1}})); err != nil {
		t.Fatal(err)
	}
	payload, err = readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = decodeResponse(payload, compress.MaxDim)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatal("valid request after malformed one was rejected")
	}
}

func TestPullFirstQAll(t *testing.T) {
	net := transport.NewMem()
	peers := []string{"w1", "w2", "w3"}
	for _, p := range peers {
		srv, err := Serve(net, p, echoHandler())
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
	}
	c := NewClient(net)
	replies, err := c.PullFirstQ(context.Background(), peers, 3,
		Request{Kind: KindGetGradient, Vec: tensor.Vector{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 3 {
		t.Fatalf("replies = %d", len(replies))
	}
}

func TestPullFirstQToleratesSlowPeer(t *testing.T) {
	inner := transport.NewMem()
	net := transport.NewFaulty(inner)
	peers := []string{"w1", "w2", "w3"}
	for _, p := range peers {
		srv, err := Serve(net, p, echoHandler())
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
	}
	net.SetDelay("w3", time.Hour) // w3 is an unbounded straggler

	c := NewClient(net)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	replies, err := c.PullFirstQ(ctx, peers, 2,
		Request{Kind: KindGetGradient, Vec: tensor.Vector{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 2 {
		t.Fatalf("replies = %d", len(replies))
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("did not return promptly with q of n")
	}
	for _, r := range replies {
		if r.From == "w3" {
			t.Fatal("straggler reply included")
		}
	}
}

func TestPullFirstQToleratesCrashedPeer(t *testing.T) {
	inner := transport.NewMem()
	net := transport.NewFaulty(inner)
	peers := []string{"w1", "w2", "w3"}
	for _, p := range peers {
		srv, err := Serve(net, p, echoHandler())
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
	}
	net.Crash("w2")

	c := NewClient(net)
	replies, err := c.PullFirstQ(context.Background(), peers, 2,
		Request{Kind: KindGetGradient, Vec: tensor.Vector{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 2 {
		t.Fatalf("replies = %d", len(replies))
	}
}

func TestPullFirstQQuorumFailure(t *testing.T) {
	inner := transport.NewMem()
	net := transport.NewFaulty(inner)
	peers := []string{"w1", "w2", "w3"}
	for _, p := range peers {
		srv, err := Serve(net, p, echoHandler())
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
	}
	net.Crash("w1")
	net.Crash("w2")

	c := NewClient(net)
	_, err := c.PullFirstQ(context.Background(), peers, 2,
		Request{Kind: KindGetGradient, Vec: tensor.Vector{1}})
	if !errors.Is(err, ErrQuorum) {
		t.Fatalf("err = %v, want ErrQuorum", err)
	}
}

func TestPullFirstQInvalidQuorum(t *testing.T) {
	c := NewClient(transport.NewMem())
	if _, err := c.PullFirstQ(context.Background(), []string{"a"}, 0, Request{}); err == nil {
		t.Fatal("expected error for q=0")
	}
	if _, err := c.PullFirstQ(context.Background(), []string{"a"}, 2, Request{}); err == nil {
		t.Fatal("expected error for q > n")
	}
}

func TestPullFirstQDeadline(t *testing.T) {
	inner := transport.NewMem()
	net := transport.NewFaulty(inner)
	srv, err := Serve(net, "w1", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	net.SetDelay("w1", time.Hour)

	c := NewClient(net)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = c.PullFirstQ(ctx, []string{"w1"}, 1,
		Request{Kind: KindGetGradient, Vec: tensor.Vector{1}})
	if !errors.Is(err, ErrQuorum) {
		t.Fatalf("err = %v, want ErrQuorum", err)
	}
}

func TestPullFirstQCancelsStragglers(t *testing.T) {
	net := transport.NewMem()
	var slowStarted, slowFinished atomic.Int32
	fast := HandlerFunc(func(req Request) Response {
		return Response{OK: true, Vec: tensor.Vector{1}}
	})
	slow := HandlerFunc(func(req Request) Response {
		slowStarted.Add(1)
		time.Sleep(200 * time.Millisecond)
		slowFinished.Add(1)
		return Response{OK: true, Vec: tensor.Vector{2}}
	})
	s1, err := Serve(net, "fast1", fast)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := Serve(net, "fast2", fast)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s3, err := Serve(net, "slow", slow)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()

	c := NewClient(net)
	start := time.Now()
	replies, err := c.PullFirstQ(context.Background(), []string{"fast1", "fast2", "slow"}, 2,
		Request{Kind: KindPing})
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 2 {
		t.Fatalf("replies = %d", len(replies))
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("PullFirstQ waited for straggler: %v", elapsed)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	net := transport.NewMem()
	srv, err := Serve(net, "x", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	net := transport.NewMem()
	srv, err := Serve(net, "peer", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(net)
	const calls = 50
	errCh := make(chan error, calls)
	for i := 0; i < calls; i++ {
		i := i
		go func() {
			v := tensor.Vector{float64(i)}
			out, err := c.Call(context.Background(), "peer",
				Request{Kind: KindGetGradient, Step: uint32(i), Vec: v})
			if err == nil && out[0] != 2*float64(i) {
				err = errors.New("wrong payload")
			}
			errCh <- err
		}()
	}
	for i := 0; i < calls; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCallOverTCP(t *testing.T) {
	var net transport.TCP
	srv, err := Serve(net, "127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(net)
	out, err := c.Call(context.Background(), srv.Addr(),
		Request{Kind: KindGetGradient, Vec: tensor.Vector{21}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 42 {
		t.Fatalf("out = %v", out)
	}
}
