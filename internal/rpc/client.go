package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"garfield/internal/tensor"
	"garfield/internal/transport"
)

// Caller is the pull-call contract the protocol layer programs against: one
// request/response round trip plus the first-q-of-n collection primitive.
// Client (dial-per-call) and PooledClient (persistent connections, the
// protocol default) both implement it.
type Caller interface {
	// Call performs one request/response round trip with a single peer.
	Call(ctx context.Context, addr string, req Request) (tensor.Vector, error)
	// PullFirstQ fans req out to every peer and returns the fastest q
	// replies, cancelling the stragglers.
	PullFirstQ(ctx context.Context, peers []string, q int, req Request) ([]Reply, error)
	// PullFirstQInto is PullFirstQ with caller-owned decode destinations:
	// peer i's reply decodes directly into *slots.ReplySlot(i), reusing its
	// capacity, instead of allocating a fresh vector per reply — the fused
	// decode-aggregate path (gar.ReplyArena implements ReplySlots). The
	// returned Reply.Vec values alias the slots and are valid until the next
	// pull against the same slots; a nil slots degrades to PullFirstQ.
	PullFirstQInto(ctx context.Context, peers []string, q int, req Request, slots ReplySlots) ([]Reply, error)
}

// ReplySlots provides per-peer decode destinations for a pull round. Slot i
// is resolved once, sequentially, before the fan-out spawns its goroutines —
// implementations may grow backing storage inside ReplySlot but the returned
// pointers must stay valid afterwards (each pull goroutine writes only
// through its own resolved pointer).
type ReplySlots interface {
	ReplySlot(i int) *tensor.Vector
}

// callerInto is the internal decode-into contract shared by Client and
// PooledClient: one round trip whose reply vector is decoded into *dst when
// dst is non-nil (capacity reuse via tensor.Resize), freshly allocated
// otherwise.
type callerInto interface {
	callInto(ctx context.Context, addr string, req Request, dst *tensor.Vector) (tensor.Vector, error)
}

// Client issues pull requests to peers. Calls are parallelized across peers
// (Section 4.1: "our implementation parallelizes RPC calls"), and the
// first-q-of-n collection primitive implements the semantics of
// get_gradients(t, q): return the fastest q replies, cancel the stragglers.
type Client struct {
	network transport.Network
	self    string
}

var _ Caller = (*Client)(nil)

// NewClient returns a client dialing over the given network.
func NewClient(network transport.Network) *Client {
	return &Client{network: network}
}

// NewClientAs is NewClient with a caller identity: every request that does
// not already carry one is stamped with self (see Request.From).
func NewClientAs(network transport.Network, self string) *Client {
	return &Client{network: network, self: self}
}

// stamp fills in the caller identity on requests that lack one.
func stamp(req Request, self string) Request {
	if req.From == "" {
		req.From = self
	}
	return req
}

var (
	// ErrQuorum is returned by PullFirstQ when fewer than q peers replied
	// successfully before the context expired or all calls failed.
	ErrQuorum = errors.New("rpc: quorum not reached")

	// ErrNotServed is returned by Call when the peer answered but had
	// nothing to serve (Response.OK == false).
	ErrNotServed = errors.New("rpc: peer declined request")

	// ErrMismatchedReply is returned when a reply's request echo does not
	// match the call that read it — the stream delivered some other
	// request's response (e.g. a chaos link duplicated a request frame and
	// desynchronized the strict request/response conversation). The reply
	// may be authentic and checksummed, but it answers the wrong question;
	// callers treat it as a transport failure, never as data.
	ErrMismatchedReply = errors.New("rpc: reply does not correlate with the request")
)

// correlate checks a decoded response against the request that awaited it.
// A zero echo on a decline is the server's "anonymous decline" for an
// unreadable (corrupted/malformed) request and passes; anything else must
// echo the request exactly.
func correlate(req Request, resp Response) error {
	if resp.EchoKind == req.Kind && resp.EchoStep == req.Step {
		return nil
	}
	if !resp.OK && resp.EchoKind == 0 && resp.EchoStep == 0 {
		return nil
	}
	return fmt.Errorf("%w: got %v/step %d for %v/step %d",
		ErrMismatchedReply, resp.EchoKind, resp.EchoStep, req.Kind, req.Step)
}

// Call performs one request/response round trip with a single peer. Each
// call uses a dedicated connection, torn down afterwards; connection cost on
// the in-memory and loopback transports is negligible, and independence
// between calls is what lets PullFirstQ cancel stragglers safely.
func (c *Client) Call(ctx context.Context, addr string, req Request) (tensor.Vector, error) {
	return c.callInto(ctx, addr, req, nil)
}

// callInto is Call decoding the reply into *dst when dst is non-nil.
func (c *Client) callInto(ctx context.Context, addr string, req Request, dst *tensor.Vector) (tensor.Vector, error) {
	req = stamp(req, c.self)
	conn, err := c.network.Dial(ctx, addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %q: %w", addr, err)
	}
	defer func() { _ = conn.Close() }()

	// Honour ctx cancellation while blocked on pipe/socket I/O.
	done := make(chan struct{})
	var closeOnce sync.Once
	go func() {
		select {
		case <-ctx.Done():
			closeOnce.Do(func() { _ = conn.Close() })
		case <-done:
		}
	}()
	defer close(done)

	if err := writeRequestFrame(conn, req); err != nil {
		return nil, fmt.Errorf("rpc: send to %q: %w", addr, wrapCtx(ctx, err))
	}
	payload, err := readFramePooled(conn)
	if err != nil {
		return nil, fmt.Errorf("rpc: receive from %q: %w", addr, wrapCtx(ctx, err))
	}
	resp, err := decodeResponseInto(dst, *payload, replyDimBound(req))
	putBuf(payload)
	if err != nil {
		return nil, fmt.Errorf("rpc: from %q: %w", addr, err)
	}
	if err := correlate(req, resp); err != nil {
		return nil, fmt.Errorf("rpc: %q: %w", addr, err)
	}
	if !resp.OK {
		return nil, fmt.Errorf("rpc: %q: %w", addr, ErrNotServed)
	}
	return resp.Vec, nil
}

// PullFirstQ implements Caller; see pullFirstQ.
func (c *Client) PullFirstQ(ctx context.Context, peers []string, q int, req Request) ([]Reply, error) {
	return pullFirstQ(ctx, c, peers, q, req, nil)
}

// PullFirstQInto implements Caller; see pullFirstQ.
func (c *Client) PullFirstQInto(ctx context.Context, peers []string, q int, req Request, slots ReplySlots) ([]Reply, error) {
	return pullFirstQ(ctx, c, peers, q, req, slots)
}

// wrapCtx surfaces context cancellation as the root cause when a connection
// was torn down because the deadline passed.
func wrapCtx(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return err
}

// Reply pairs a peer address with the vector it returned.
type Reply struct {
	From string
	Vec  tensor.Vector
}

type pullResult struct {
	reply Reply
	err   error
}

type pullTask struct {
	c    Caller
	ci   callerInto // non-nil with dst: decode into the fused reply slot
	ctx  context.Context
	peer string
	req  Request
	dst  *tensor.Vector
	out  chan<- pullResult
	wg   *sync.WaitGroup
}

func runPullTask(t *pullTask) {
	defer t.wg.Done()
	var vec tensor.Vector
	var err error
	if t.ci != nil {
		vec, err = t.ci.callInto(t.ctx, t.peer, t.req, t.dst)
	} else {
		vec, err = t.c.Call(t.ctx, t.peer, t.req)
	}
	t.out <- pullResult{reply: Reply{From: t.peer, Vec: vec}, err: err}
}

// pullFirstQ fans the request out to every peer in parallel and returns as
// soon as q replies have arrived, cancelling the outstanding calls. With
// q == len(peers) it behaves synchronously (wait for everyone); with
// q < len(peers) it tolerates len(peers)-q slow, crashed or silent peers —
// exactly the (q_w <= n_w) contract of the paper's get_gradients.
//
// The returned replies preserve arrival order (fastest first). When fewer
// than q replies arrive before ctx expires, the successful prefix is
// returned along with ErrQuorum.
//
// With non-nil slots (the fused decode path), peer i's reply decodes into
// *slots.ReplySlot(i). Slots are resolved in this goroutine, before any task
// starts, because resolving may grow the slot table; each spawned task then
// only writes through its own pre-resolved pointer, and the deferred
// wg.Wait guarantees no task outlives the call — so the caller may reuse the
// slots for the next round the moment this returns.
func pullFirstQ(ctx context.Context, c Caller, peers []string, q int, req Request, slots ReplySlots) ([]Reply, error) {
	if q <= 0 || q > len(peers) {
		return nil, fmt.Errorf("rpc: invalid quorum %d of %d peers", q, len(peers))
	}
	subCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var ci callerInto
	if slots != nil {
		// A Caller without the decode-into fast path serves slot-less pulls
		// transparently.
		ci, _ = c.(callerInto)
	}

	results := make(chan pullResult, len(peers))
	var wg sync.WaitGroup
	// One flat task slab and a named goroutine body instead of per-peer
	// closures: the fan-out itself costs two allocations however many peers
	// participate.
	tasks := make([]pullTask, len(peers))
	for i, peer := range peers {
		tasks[i] = pullTask{c: c, ctx: subCtx, peer: peer, req: req, out: results, wg: &wg}
		if ci != nil {
			tasks[i].ci = ci
			tasks[i].dst = slots.ReplySlot(i)
		}
	}
	for i := range tasks {
		wg.Add(1)
		go runPullTask(&tasks[i])
	}
	// Drain the results channel fully once all calls returned so the
	// goroutines above never block; the buffer already guarantees that,
	// the wait guarantees no goroutine outlives the call.
	defer wg.Wait()

	replies := make([]Reply, 0, q)
	failures := 0
	for range peers {
		select {
		case r := <-results:
			if r.err != nil {
				failures++
				if failures > len(peers)-q {
					return replies, fmt.Errorf("%w: %d/%d failed, last: %v",
						ErrQuorum, failures, len(peers), r.err)
				}
				continue
			}
			replies = append(replies, r.reply)
			if len(replies) == q {
				cancel() // stragglers are no longer needed
				return replies, nil
			}
		case <-ctx.Done():
			return replies, fmt.Errorf("%w: %d/%d replies before deadline: %v",
				ErrQuorum, len(replies), q, ctx.Err())
		}
	}
	return replies, fmt.Errorf("%w: %d/%d replies", ErrQuorum, len(replies), q)
}
