package rpc

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"garfield/internal/tensor"
	"garfield/internal/transport"
)

func TestPooledCallRoundTrip(t *testing.T) {
	net := transport.NewMem()
	srv, err := Serve(net, "peer", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewPooledClient(net)
	defer c.Close()
	for i := 0; i < 5; i++ {
		out, err := c.Call(context.Background(), "peer",
			Request{Kind: KindGetGradient, Step: uint32(i), Vec: tensor.Vector{float64(i)}})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != 2*float64(i) {
			t.Fatalf("call %d: out = %v", i, out)
		}
	}
}

func TestPooledReusesConnection(t *testing.T) {
	inner := transport.NewMem()
	counting := &countingNetwork{Network: inner}
	srv, err := Serve(inner, "peer", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewPooledClient(counting)
	defer c.Close()
	for i := 0; i < 10; i++ {
		if _, err := c.Call(context.Background(), "peer",
			Request{Kind: KindGetGradient, Vec: tensor.Vector{1}}); err != nil {
			t.Fatal(err)
		}
	}
	if counting.dials.Load() != 1 {
		t.Fatalf("dials = %d, want 1", counting.dials.Load())
	}
}

func TestPooledRedialsAfterServerRestart(t *testing.T) {
	net := transport.NewMem()
	srv, err := Serve(net, "peer", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	c := NewPooledClient(net)
	defer c.Close()
	if _, err := c.Call(context.Background(), "peer",
		Request{Kind: KindGetGradient, Vec: tensor.Vector{1}}); err != nil {
		t.Fatal(err)
	}
	// Kill and restart the server; the pooled connection is now dead.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := Serve(net, "peer", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	// First call may fail on the dead connection; the retry must succeed
	// over a fresh dial.
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		_, lastErr = c.Call(context.Background(), "peer",
			Request{Kind: KindGetGradient, Vec: tensor.Vector{1}})
		if lastErr == nil {
			break
		}
	}
	if lastErr != nil {
		t.Fatalf("pooled client did not recover: %v", lastErr)
	}
}

func TestPooledDeclined(t *testing.T) {
	net := transport.NewMem()
	srv, err := Serve(net, "peer", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewPooledClient(net)
	defer c.Close()
	if _, err := c.Call(context.Background(), "peer", Request{Kind: KindPing}); !errors.Is(err, ErrNotServed) {
		t.Fatalf("err = %v", err)
	}
	// Declined responses must not poison the connection.
	if _, err := c.Call(context.Background(), "peer",
		Request{Kind: KindGetGradient, Vec: tensor.Vector{1}}); err != nil {
		t.Fatalf("follow-up call failed: %v", err)
	}
}

func TestPooledContextCancel(t *testing.T) {
	net := transport.NewMem()
	block := make(chan struct{})
	srv, err := Serve(net, "hang", HandlerFunc(func(Request) Response {
		<-block
		return Response{}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(block)

	c := NewPooledClient(net)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Call(ctx, "hang", Request{Kind: KindPing}); err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancel did not unblock pooled call")
	}
}

func TestPooledDialFailure(t *testing.T) {
	c := NewPooledClient(transport.NewMem())
	defer c.Close()
	if _, err := c.Call(context.Background(), "ghost", Request{Kind: KindPing}); err == nil {
		t.Fatal("expected dial error")
	}
}

// countingNetwork counts dials to verify connection reuse.
type countingNetwork struct {
	transport.Network
	dials atomic.Int32
}

func (c *countingNetwork) Dial(ctx context.Context, addr string) (net.Conn, error) {
	c.dials.Add(1)
	return c.Network.Dial(ctx, addr)
}

// TestPooledCancelKeepsConnection pins the cheap-cancellation contract: a
// call cancelled while awaiting a slow peer leaves the connection pooled
// (the reply is owed on the wire), and the next call to that peer drains the
// stale reply and receives its own response — all over the original
// connection, with no re-dial.
func TestPooledCancelKeepsConnection(t *testing.T) {
	inner := transport.NewMem()
	counting := &countingNetwork{Network: inner}
	release := make(chan struct{})
	first := true
	srv, err := Serve(inner, "peer", HandlerFunc(func(req Request) Response {
		if first {
			first = false
			<-release // hold the first reply back until the call is cancelled
		}
		return Response{OK: true, Vec: tensor.Vector{float64(req.Step)}}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewPooledClient(counting)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := c.Call(ctx, "peer", Request{Kind: KindGetModel, Step: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call err = %v, want context.Canceled", err)
	}
	close(release) // the stale reply for step 1 now lands on the wire

	out, err := c.Call(context.Background(), "peer", Request{Kind: KindGetModel, Step: 2})
	if err != nil {
		t.Fatalf("post-cancel call failed: %v", err)
	}
	if out[0] != 2 {
		t.Fatalf("post-cancel call got reply %v, want the step-2 reply", out)
	}
	if got := counting.dials.Load(); got != 1 {
		t.Fatalf("dials = %d, want 1 (cancellation must not tear down the connection)", got)
	}
}

// TestPooledPullFirstQ exercises the first-q collection primitive over the
// protocol-default pooled client, including repeated rounds with straggler
// cancellation in between.
func TestPooledPullFirstQ(t *testing.T) {
	net := transport.NewMem()
	addrs := []string{"a", "b", "c", "d", "e"}
	for _, addr := range addrs {
		addr := addr
		srv, err := Serve(net, addr, HandlerFunc(func(req Request) Response {
			return Response{OK: true, Vec: tensor.Vector{1}}
		}))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
	}
	c := NewPooledClient(net)
	defer c.Close()
	for round := 0; round < 20; round++ {
		replies, err := c.PullFirstQ(context.Background(), addrs, 3, Request{Kind: KindGetModel})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(replies) != 3 {
			t.Fatalf("round %d: %d replies", round, len(replies))
		}
	}
}
