package rpc

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"garfield/internal/tensor"
	"garfield/internal/transport"
)

func TestPooledCallRoundTrip(t *testing.T) {
	net := transport.NewMem()
	srv, err := Serve(net, "peer", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewPooledClient(net)
	defer c.Close()
	for i := 0; i < 5; i++ {
		out, err := c.Call(context.Background(), "peer",
			Request{Kind: KindGetGradient, Step: uint32(i), Vec: tensor.Vector{float64(i)}})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != 2*float64(i) {
			t.Fatalf("call %d: out = %v", i, out)
		}
	}
}

func TestPooledReusesConnection(t *testing.T) {
	inner := transport.NewMem()
	counting := &countingNetwork{Network: inner}
	srv, err := Serve(inner, "peer", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewPooledClient(counting)
	defer c.Close()
	for i := 0; i < 10; i++ {
		if _, err := c.Call(context.Background(), "peer",
			Request{Kind: KindGetGradient, Vec: tensor.Vector{1}}); err != nil {
			t.Fatal(err)
		}
	}
	if counting.dials.Load() != 1 {
		t.Fatalf("dials = %d, want 1", counting.dials.Load())
	}
}

func TestPooledRedialsAfterServerRestart(t *testing.T) {
	net := transport.NewMem()
	srv, err := Serve(net, "peer", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	c := NewPooledClient(net)
	defer c.Close()
	if _, err := c.Call(context.Background(), "peer",
		Request{Kind: KindGetGradient, Vec: tensor.Vector{1}}); err != nil {
		t.Fatal(err)
	}
	// Kill and restart the server; the pooled connection is now dead.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := Serve(net, "peer", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	// First call may fail on the dead connection; the retry must succeed
	// over a fresh dial.
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		_, lastErr = c.Call(context.Background(), "peer",
			Request{Kind: KindGetGradient, Vec: tensor.Vector{1}})
		if lastErr == nil {
			break
		}
	}
	if lastErr != nil {
		t.Fatalf("pooled client did not recover: %v", lastErr)
	}
}

func TestPooledDeclined(t *testing.T) {
	net := transport.NewMem()
	srv, err := Serve(net, "peer", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewPooledClient(net)
	defer c.Close()
	if _, err := c.Call(context.Background(), "peer", Request{Kind: KindPing}); !errors.Is(err, ErrNotServed) {
		t.Fatalf("err = %v", err)
	}
	// Declined responses must not poison the connection.
	if _, err := c.Call(context.Background(), "peer",
		Request{Kind: KindGetGradient, Vec: tensor.Vector{1}}); err != nil {
		t.Fatalf("follow-up call failed: %v", err)
	}
}

func TestPooledContextCancel(t *testing.T) {
	net := transport.NewMem()
	block := make(chan struct{})
	srv, err := Serve(net, "hang", HandlerFunc(func(Request) Response {
		<-block
		return Response{}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(block)

	c := NewPooledClient(net)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Call(ctx, "hang", Request{Kind: KindPing}); err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancel did not unblock pooled call")
	}
}

func TestPooledDialFailure(t *testing.T) {
	c := NewPooledClient(transport.NewMem())
	defer c.Close()
	if _, err := c.Call(context.Background(), "ghost", Request{Kind: KindPing}); err == nil {
		t.Fatal("expected dial error")
	}
}

// countingNetwork counts dials to verify connection reuse.
type countingNetwork struct {
	transport.Network
	dials atomic.Int32
}

func (c *countingNetwork) Dial(ctx context.Context, addr string) (net.Conn, error) {
	c.dials.Add(1)
	return c.Network.Dial(ctx, addr)
}
