package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"garfield/internal/compress"
	"garfield/internal/tensor"
	"garfield/internal/transport"
)

// compressingHandler serves vec compressed when the request's Accept byte
// matches enc, passthrough otherwise — the negotiation contract every
// serving node follows.
func compressingHandler(enc compress.Encoding, k int, vec tensor.Vector) Handler {
	comp, err := compress.NewCompressor(enc, k)
	if err != nil {
		panic(err)
	}
	return HandlerFunc(func(req Request) Response {
		if req.Accept != enc {
			return Response{OK: true, Vec: vec}
		}
		buf := compress.GetBuf(comp.MaxEncodedSize(len(vec)))
		return Response{OK: true, Enc: enc, Payload: comp.Compress(buf, vec), FreePayload: true}
	})
}

// TestCompressedReplyRoundTrip: a compressed reply crosses the full framed
// wire path — encode, checksum, decode, decompress — and the protocol layer
// receives a plain vector within the codec's tolerance.
func TestCompressedReplyRoundTrip(t *testing.T) {
	net := transport.NewMem()
	rng := tensor.NewRNG(4)
	vec := rng.NormalVector(2000, 0, 1)
	srv, err := Serve(net, "peer", compressingHandler(compress.EncInt8, 0, vec))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewPooledClient(net)
	defer c.Close()

	got, err := c.Call(context.Background(), "peer", Request{Kind: KindGetModel, Accept: compress.EncInt8})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vec) {
		t.Fatalf("got %d coords, want %d", len(got), len(vec))
	}
	for i := range vec {
		if math.Abs(got[i]-vec[i]) > 0.02 {
			t.Fatalf("coord %d: %v vs %v", i, got[i], vec[i])
		}
	}
	// Counters: the shipped reply must be far below its fp64 baseline.
	s := c.Stats()
	if s.Replies != 1 || s.ReplyPayloadBytes == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ReplyFP64Bytes < 4*s.ReplyPayloadBytes {
		t.Fatalf("int8 over the wire: shipped %d baseline %d", s.ReplyPayloadBytes, s.ReplyFP64Bytes)
	}

	// Without the Accept byte the same peer serves passthrough — the
	// mixed-fleet fallback — and the counters agree ratio == 1 for it.
	c2 := NewPooledClient(net)
	defer c2.Close()
	plain, err := c2.Call(context.Background(), "peer", Request{Kind: KindGetModel})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(vec) {
		t.Fatal("passthrough fallback did not return the exact vector")
	}
	if s2 := c2.Stats(); s2.ReplyPayloadBytes != s2.ReplyFP64Bytes {
		t.Fatalf("passthrough stats disagree with themselves: %+v", s2)
	}
}

// TestUnknownReplyEncodingRejected: a reply stamped with an encoding byte
// this build does not know must fail the call — never be guessed at.
func TestUnknownReplyEncodingRejected(t *testing.T) {
	net := transport.NewMem()
	srv, err := Serve(net, "peer", HandlerFunc(func(Request) Response {
		return Response{OK: true, Enc: compress.Encoding(200), Payload: []byte{1, 2, 3}}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewPooledClient(net)
	defer c.Close()
	_, err = c.Call(context.Background(), "peer", Request{Kind: KindGetModel})
	if !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("err = %v, want ErrBadEncoding", err)
	}
}

// TestCorruptCompressedPayloadRejected: a structurally-invalid compressed
// payload (here: a truncated top-k body under an honest length claim) is
// rejected at decode, not silently mis-read.
func TestCorruptCompressedPayloadRejected(t *testing.T) {
	net := transport.NewMem()
	srv, err := Serve(net, "peer", HandlerFunc(func(Request) Response {
		return Response{OK: true, Enc: compress.EncTopK, Payload: []byte{9, 0, 0, 0, 2, 0, 0, 0, 5}}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewPooledClient(net)
	defer c.Close()
	_, err = c.Call(context.Background(), "peer", Request{Kind: KindGetModel})
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

// TestOversizedSparseReplyRejected: a Byzantine peer answering a gradient
// pull with a tiny top-k payload that claims a huge dimension must be
// rejected by the puller's dimension bound (the model travelled in the
// request, so the reply cannot plausibly exceed it) — twenty attacker
// bytes never buy a multi-gigabyte allocation.
func TestOversizedSparseReplyRejected(t *testing.T) {
	net := transport.NewMem()
	bomb := make([]byte, 20)
	binary.LittleEndian.PutUint32(bomb, uint32(compress.MaxDim)) // d = 268M
	binary.LittleEndian.PutUint32(bomb[4:], 1)                   // k = 1
	srv, err := Serve(net, "peer", HandlerFunc(func(Request) Response {
		return Response{OK: true, Enc: compress.EncTopK, Payload: bomb}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewPooledClient(net)
	defer c.Close()
	req := Request{Kind: KindGetGradient, Accept: compress.EncTopK, Vec: make(tensor.Vector, 64)}
	if _, err := c.Call(context.Background(), "peer", req); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed (dimension bound)", err)
	}
}

// TestRequestAcceptRoundTrip: the Accept byte survives the request codec,
// including values this build does not know (they ride through for the
// handler to ignore).
func TestRequestAcceptRoundTrip(t *testing.T) {
	for _, acc := range []compress.Encoding{compress.EncFP64, compress.EncInt8, compress.EncTopK, 250} {
		req := Request{Kind: KindGetGradient, Step: 9, Accept: acc, From: "server-1", Vec: tensor.Vector{1, 2}}
		back, err := decodeRequest(encodeRequest(req))
		if err != nil {
			t.Fatal(err)
		}
		if back.Accept != acc || back.From != req.From || back.Step != req.Step {
			t.Fatalf("accept %d: round trip %+v", acc, back)
		}
	}
}

// TestPooledClientStatsAccounting pins the counter arithmetic on the plain
// path: N identical calls, exact payload sizes both ways.
func TestPooledClientStatsAccounting(t *testing.T) {
	net := transport.NewMem()
	const d = 100
	vec := make(tensor.Vector, d)
	srv, err := Serve(net, "peer", HandlerFunc(func(Request) Response {
		return Response{OK: true, Vec: vec}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewPooledClient(net)
	defer c.Close()
	const calls = 5
	req := Request{Kind: KindGetModel, Step: 3, From: "me"}
	for i := 0; i < calls; i++ {
		if _, err := c.Call(context.Background(), "peer", req); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	wantReply := uint64(calls) * uint64(7+4+8*d)
	if s.Calls != calls || s.Replies != calls {
		t.Fatalf("stats = %+v", s)
	}
	if s.ReplyPayloadBytes != wantReply || s.ReplyFP64Bytes != wantReply {
		t.Fatalf("reply bytes %d/%d, want %d", s.ReplyPayloadBytes, s.ReplyFP64Bytes, wantReply)
	}
	wantOut := uint64(calls) * uint64(frameHeaderSize+encodedRequestSize(req))
	if s.BytesOut != wantOut {
		t.Fatalf("bytes out %d, want %d", s.BytesOut, wantOut)
	}
	if s.BytesIn != wantReply+uint64(calls)*frameHeaderSize {
		t.Fatalf("bytes in %d", s.BytesIn)
	}
	if got := s.ReplyCompressionRatio(); got != 1 {
		t.Fatalf("ratio = %v, want 1", got)
	}
}
