package rpc

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"garfield/internal/compress"
	"garfield/internal/tensor"
	"garfield/internal/transport"
)

// Handler serves pull requests. Garfield node objects (Server, Worker,
// Byzantine variants) implement it; the RPC layer is oblivious to roles.
type Handler interface {
	// Handle produces the response for one request. Implementations must
	// be safe for concurrent use: the server dispatches requests from many
	// connections in parallel, which is how the paper parallelizes
	// replicated communication. req.Vec is only valid for the duration of
	// the call — the server reuses its backing array for the next request
	// on the connection — so implementations must not retain it.
	Handle(req Request) Response
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(Request) Response

var _ Handler = HandlerFunc(nil)

// Handle implements Handler.
func (f HandlerFunc) Handle(req Request) Response { return f(req) }

// Server accepts connections on one address and serves pull requests.
type Server struct {
	listener net.Listener
	handler  Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server for handler at addr on the given network. It returns
// once the listener is active; request dispatch runs in the background until
// Close.
func Serve(network transport.Network, addr string, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("rpc: nil handler")
	}
	l, err := network.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen %q: %w", addr, err)
	}
	s := &Server{
		listener: l,
		handler:  handler,
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops accepting, closes every live connection and waits for all
// serving goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	// The request struct, its payload vector and the frame buffers are all
	// reused across the connection's requests: a steady-state pull loop
	// costs the server no per-request allocation beyond what the handler
	// itself does.
	var req Request
	var spareVec tensor.Vector
	for {
		payload, err := readFramePooled(conn)
		if err != nil {
			if errors.Is(err, ErrChecksum) {
				// The frame arrived corrupted but fully framed: the
				// stream is positioned at the next frame boundary, so
				// decline the request and keep serving rather than
				// punishing the caller for a mangling network.
				if werr := writeResponseFrame(conn, Response{}); werr != nil {
					return
				}
				continue
			}
			return
		}
		if req.Vec == nil {
			req.Vec = spareVec
		}
		spare, err := decodeRequestInto(&req, *payload)
		putBuf(payload)
		if spare != nil {
			spareVec = spare
		}
		if err != nil {
			// A malformed request may come from a Byzantine peer;
			// answer not-OK rather than tearing the conn down so
			// honest retries on the same connection still work.
			req = Request{}
			if werr := writeResponseFrame(conn, Response{}); werr != nil {
				return
			}
			continue
		}
		resp := s.handler.Handle(req)
		// Correlate the reply with the request it answers (see
		// Response.EchoKind): handlers stay oblivious, the serving loop
		// stamps. The decline paths above deliberately send a zero echo —
		// an "anonymous decline" for requests the server could not read.
		resp.EchoKind, resp.EchoStep = req.Kind, req.Step
		err = writeResponseFrame(conn, resp)
		if resp.FreePayload && resp.Payload != nil {
			// The handler borrowed its compressed payload from the shared
			// pool; the frame has been copied out, so hand it back.
			compress.PutBuf(resp.Payload)
		}
		if err != nil {
			return
		}
	}
}
