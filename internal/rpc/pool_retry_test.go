package rpc

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"garfield/internal/tensor"
	"garfield/internal/transport"
)

// TestPooledRetriesIdleDeath: a pooled connection severed while idle (a
// peer restart or an injected fault — transport.Faulty severs links on
// Crash and SetDelay) must be re-dialed transparently within one Call, not
// surface a failure to the protocol layer. Pulls are idempotent reads, so
// the single retry is safe.
// flakyDialNetwork refuses the first n dials, then delegates — the
// deterministic stand-in for a peer that is mid-rejoin when the fleet's
// clients come knocking.
type flakyDialNetwork struct {
	transport.Network
	failures atomic.Int32
}

func (f *flakyDialNetwork) Dial(ctx context.Context, addr string) (net.Conn, error) {
	if f.failures.Add(-1) >= 0 {
		return nil, errors.New("connection refused")
	}
	return f.Network.Dial(ctx, addr)
}

// TestPooledDialRetryRidesOutRejoiningPeer: a dial refused while a peer
// rejoins is retried under the bounded jittered backoff within one Call, and
// the retry work is accounted in WireStats — Retries counts the repeated
// attempts, BackoffNanos the time spent sleeping between them.
func TestPooledDialRetryRidesOutRejoiningPeer(t *testing.T) {
	inner := transport.NewMem()
	srv, err := Serve(inner, "peer", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	flaky := &flakyDialNetwork{Network: inner}
	flaky.failures.Store(2) // attempts 1 and 2 refused, attempt 3 connects
	c := NewPooledClient(flaky)
	defer c.Close()

	if _, err := c.Call(context.Background(), "peer", Request{Kind: KindGetGradient, Vec: tensor.Vector{1}}); err != nil {
		t.Fatalf("call through two refused dials failed: %v", err)
	}
	st := c.Stats()
	if st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", st.Retries)
	}
	if st.BackoffNanos == 0 {
		t.Fatal("BackoffNanos = 0: the second retry must have slept in the backoff")
	}
	if st.Calls != 1 || st.Replies != 1 {
		t.Fatalf("Calls = %d Replies = %d, want 1/1 (refused dials never reached the wire)", st.Calls, st.Replies)
	}
}

// TestPooledDialRetryBounded: a peer that keeps refusing exhausts the
// attempt budget and surfaces the dial error — the backoff is bounded, not
// an infinite loop — with every repeated attempt counted.
func TestPooledDialRetryBounded(t *testing.T) {
	c := NewPooledClient(transport.NewMem())
	defer c.Close()
	if _, err := c.Call(context.Background(), "ghost", Request{Kind: KindPing}); err == nil {
		t.Fatal("expected dial error")
	}
	st := c.Stats()
	if st.Retries != maxCallAttempts-1 {
		t.Fatalf("Retries = %d, want %d (attempt budget exhausted)", st.Retries, maxCallAttempts-1)
	}
	if st.Calls != 0 {
		t.Fatalf("Calls = %d, want 0: no attempt reached the wire", st.Calls)
	}
}

// TestWireStatsRetryCountersRoundTrip: the retry counters ride the WireStats
// Add/Sub algebra like every other field (cluster aggregation and snapshot
// deltas depend on it).
func TestWireStatsRetryCountersRoundTrip(t *testing.T) {
	a := WireStats{Calls: 5, Retries: 3, BackoffNanos: 1500}
	b := WireStats{Calls: 2, Retries: 1, BackoffNanos: 400}
	if got := a.Add(b).Sub(b); got != a {
		t.Fatalf("Add/Sub round trip = %+v, want %+v", got, a)
	}
}

func TestPooledRetriesIdleDeath(t *testing.T) {
	faulty := transport.NewFaulty(transport.NewMem())
	srv, err := Serve(faulty, "peer", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewPooledClient(faulty)
	defer c.Close()

	req := Request{Kind: KindGetGradient, Vec: tensor.Vector{1}}
	if _, err := c.Call(context.Background(), "peer", req); err != nil {
		t.Fatal(err)
	}
	// Injecting a link delay severs the established connection; the next
	// single Call must ride through via redial.
	faulty.SetDelay("peer", time.Millisecond)
	if _, err := c.Call(context.Background(), "peer", req); err != nil {
		t.Fatalf("one Call over a severed-idle connection failed: %v", err)
	}
}
