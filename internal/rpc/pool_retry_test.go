package rpc

import (
	"context"
	"testing"
	"time"

	"garfield/internal/tensor"
	"garfield/internal/transport"
)

// TestPooledRetriesIdleDeath: a pooled connection severed while idle (a
// peer restart or an injected fault — transport.Faulty severs links on
// Crash and SetDelay) must be re-dialed transparently within one Call, not
// surface a failure to the protocol layer. Pulls are idempotent reads, so
// the single retry is safe.
func TestPooledRetriesIdleDeath(t *testing.T) {
	faulty := transport.NewFaulty(transport.NewMem())
	srv, err := Serve(faulty, "peer", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewPooledClient(faulty)
	defer c.Close()

	req := Request{Kind: KindGetGradient, Vec: tensor.Vector{1}}
	if _, err := c.Call(context.Background(), "peer", req); err != nil {
		t.Fatal(err)
	}
	// Injecting a link delay severs the established connection; the next
	// single Call must ride through via redial.
	faulty.SetDelay("peer", time.Millisecond)
	if _, err := c.Call(context.Background(), "peer", req); err != nil {
		t.Fatalf("one Call over a severed-idle connection failed: %v", err)
	}
}
