// Package rpc implements Garfield's pull-based communication layer
// (Section 4.1 of the paper): a compact binary protocol over any
// transport.Network, a per-node RPC server, and clients whose PullFirstQ
// primitive returns the fastest q replies out of n peers — the mechanism
// behind get_gradients(t, q) and get_models(q).
//
// # Roles and contracts
//
// The layer is oblivious to node roles; three small contracts connect it to
// the rest of the system:
//
//   - Handler is the server side: Handle(Request) Response. Garfield node
//     objects (core.Server, core.Worker and their Byzantine variants)
//     implement it. Handlers must be safe for concurrent use — the server
//     dispatches requests from many connections in parallel, which is how
//     the paper parallelizes replicated communication. req.Vec is only
//     valid for the duration of the call; retain a copy if needed.
//   - Caller is the client side: one Call round trip plus the
//     first-q-of-n PullFirstQ collection primitive. Client (dial-per-call)
//     and PooledClient (persistent connections, the protocol default)
//     both implement it.
//   - Request/Response frame a Kind (gradient, model, aggregated-gradient,
//     ping), a step counter, and one tensor.Vector payload, encoded with
//     the unrolled codec of internal/tensor.
//
// # Pull semantics
//
// PullFirstQ fans a request out to every peer in parallel and returns as
// soon as q replies arrived, cancelling the stragglers. q == n is the
// synchronous mode (wait for everyone); q < n tolerates n - q slow, crashed
// or mute peers — the (q_w <= n_w) contract of the paper's communication
// abstractions. Replies preserve arrival order (fastest first); protocol
// code that needs a scheduling-independent order re-sorts them (see
// core.Config.Deterministic).
//
// PooledClient keeps one persistent connection per peer (Section 4.1's
// channel reuse): steady-state pulls pay no dial, straggler cancellation
// leaves a clean connection pooled with its reply drained by the next call,
// and a connection that died while idle (peer restart, injected link fault)
// is re-dialed transparently within one Call — pulls are idempotent reads,
// so the single retry is safe. Wire buffers come from a sync.Pool, making
// the hot path allocation-free up to the reply vectors themselves.
package rpc
