// Package rpc implements Garfield's pull-based communication layer
// (Section 4.1 of the paper): a compact binary protocol over any
// transport.Network, a per-node RPC server, and a client whose
// PullFirstQ primitive returns the fastest q replies out of n peers —
// the mechanism behind get_gradients(t, q) and get_models(q).
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"garfield/internal/tensor"
)

// Kind enumerates request types, mirroring the paper's protocol buffers for
// gradients, models and aggregated gradients.
type Kind uint8

// Request kinds.
const (
	// KindGetGradient asks a worker for its gradient estimate at the
	// model state carried in the request, for a given step.
	KindGetGradient Kind = iota + 1
	// KindGetModel asks a server replica for its current model state.
	KindGetModel
	// KindGetAggrGrad asks a decentralized peer for its latest aggregated
	// gradient (the contract step of Listing 3).
	KindGetAggrGrad
	// KindPing checks liveness.
	KindPing
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindGetGradient:
		return "get-gradient"
	case KindGetModel:
		return "get-model"
	case KindGetAggrGrad:
		return "get-aggr-grad"
	case KindPing:
		return "ping"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Request is one pull: kind + step + optional vector payload (the model
// state for KindGetGradient).
type Request struct {
	Kind Kind
	Step uint32
	// Vec is the optional request payload (nil when absent).
	Vec tensor.Vector
}

// Response carries the pulled vector, or OK=false when the node has nothing
// to serve (e.g. a Byzantine node dropping its reply, or a step mismatch).
type Response struct {
	OK  bool
	Vec tensor.Vector
}

const (
	// maxFrame bounds a single message; large enough for the biggest
	// Table-1 model (VGG, ~128M params = ~1 GiB) plus headers.
	maxFrame = 1<<30 + 64
)

var (
	// ErrFrameTooLarge is returned for frames exceeding maxFrame.
	ErrFrameTooLarge = errors.New("rpc: frame too large")

	// ErrMalformed is returned for syntactically invalid messages.
	ErrMalformed = errors.New("rpc: malformed message")
)

// writeFrame writes a length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads a length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// encodeRequest serializes r: kind(1) step(4) hasVec(1) [vec].
func encodeRequest(r Request) []byte {
	size := 6
	if r.Vec != nil {
		size += r.Vec.EncodedSize()
	}
	buf := make([]byte, size)
	buf[0] = byte(r.Kind)
	binary.LittleEndian.PutUint32(buf[1:], r.Step)
	if r.Vec != nil {
		buf[5] = 1
		// Encoding into a correctly-sized buffer cannot fail.
		_ = r.Vec.EncodeTo(buf[6:])
	}
	return buf
}

// decodeRequest parses the output of encodeRequest.
func decodeRequest(b []byte) (Request, error) {
	if len(b) < 6 {
		return Request{}, fmt.Errorf("%w: request of %d bytes", ErrMalformed, len(b))
	}
	r := Request{
		Kind: Kind(b[0]),
		Step: binary.LittleEndian.Uint32(b[1:]),
	}
	if b[5] == 1 {
		if err := r.Vec.UnmarshalBinary(b[6:]); err != nil {
			return Request{}, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
	}
	return r, nil
}

// encodeResponse serializes r: ok(1) [vec].
func encodeResponse(r Response) []byte {
	size := 1
	if r.OK && r.Vec != nil {
		size += r.Vec.EncodedSize()
	}
	buf := make([]byte, size)
	if r.OK {
		buf[0] = 1
		if r.Vec != nil {
			_ = r.Vec.EncodeTo(buf[1:])
		}
	}
	return buf
}

// decodeResponse parses the output of encodeResponse.
func decodeResponse(b []byte) (Response, error) {
	if len(b) < 1 {
		return Response{}, fmt.Errorf("%w: empty response", ErrMalformed)
	}
	r := Response{OK: b[0] == 1}
	if r.OK && len(b) > 1 {
		if err := r.Vec.UnmarshalBinary(b[1:]); err != nil {
			return Response{}, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
	}
	return r, nil
}
