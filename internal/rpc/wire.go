package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"

	"garfield/internal/compress"
	"garfield/internal/tensor"
)

// Kind enumerates request types, mirroring the paper's protocol buffers for
// gradients, models and aggregated gradients.
type Kind uint8

// Request kinds.
const (
	// KindGetGradient asks a worker for its gradient estimate at the
	// model state carried in the request, for a given step.
	KindGetGradient Kind = iota + 1
	// KindGetModel asks a server replica for its current model state.
	KindGetModel
	// KindGetAggrGrad asks a decentralized peer for its latest aggregated
	// gradient (the contract step of Listing 3).
	KindGetAggrGrad
	// KindPing checks liveness.
	KindPing
	// KindGetShardPart asks a server replica for the aggregated part of one
	// coordinate shard (or one hierarchical group winner) at a given step —
	// the reassembly pull of the sharded-aggregation protocol. The request's
	// Shard field names the part; Lo/Hi carry its coordinate range.
	KindGetShardPart
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindGetGradient:
		return "get-gradient"
	case KindGetModel:
		return "get-model"
	case KindGetAggrGrad:
		return "get-aggr-grad"
	case KindPing:
		return "ping"
	case KindGetShardPart:
		return "get-shard-part"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Request is one pull: kind + step + optional caller identity + optional
// vector payload (the model state for KindGetGradient).
type Request struct {
	Kind Kind
	Step uint32
	// Accept is the payload-encoding negotiation byte: the one compressed
	// encoding (internal/compress) the caller is prepared to decode in the
	// reply, besides the always-acceptable fp64 passthrough. A serving node
	// compresses only when its configured codec matches Accept exactly;
	// every other pairing — an old caller that never sets the byte, a new
	// caller pulling an uncompressed node, or an encoding this build does
	// not know — falls back to passthrough, which is how mixed fleets
	// interoperate.
	Accept compress.Encoding
	// From is the caller's self-declared address ("" when anonymous). It
	// is advisory — a Byzantine caller can lie — and exists so adversarial
	// handlers (the equivocating Byzantine server) can answer different
	// pullers differently and deterministically. Honest handlers must not
	// trust it. At most 255 bytes survive encoding.
	From string
	// Shard names the coordinate shard (or hierarchical group) a sharded
	// pull addresses: a KindGetShardPart request asks for part number Shard,
	// and a ranged KindGetGradient carries the shard index its range belongs
	// to so per-shard wire accounting stays attributable. Zero otherwise.
	Shard uint16
	// Lo and Hi delimit the half-open coordinate range [Lo, Hi) of a sharded
	// pull. Hi > Lo marks the request as ranged: a ranged gradient pull asks
	// the worker for only that slice of its gradient (the request still
	// carries the full model in Vec — the worker needs every coordinate to
	// compute the gradient), and the reply's decoder is bounded by Hi-Lo
	// instead of the model dimension. Both zero on unsharded requests.
	Lo, Hi uint32
	// Vec is the optional request payload (nil when absent).
	Vec tensor.Vector
}

// Ranged reports whether the request addresses a proper coordinate range
// (Hi > Lo) rather than the full vector.
func (r Request) Ranged() bool { return r.Hi > r.Lo }

// Response carries the pulled vector, or OK=false when the node has nothing
// to serve (e.g. a Byzantine node dropping its reply, or a step mismatch).
// EchoKind and EchoStep correlate the response with its request: the serving
// loop stamps them from the request it answered, and clients reject replies
// whose echo does not match the call they issued. Without correlation, a
// network that duplicates a request frame desynchronizes the strict
// request/response stream one-for-all: every later call on the connection
// would silently receive its predecessor's reply — an authentic, checksummed,
// wrong-step vector. The echo turns that silent poisoning into a detected
// transport failure (ErrMismatchedReply; the connection is torn down and the
// call retried or surfaced).
// A response's vector travels under a negotiated payload encoding: Enc names
// it, and for anything other than the fp64 passthrough the handler supplies
// the pre-compressed bytes in Payload (produced by a compress.Compressor —
// for error-feedback codecs the residual update must happen where the
// gradient stream lives, not in the transport). The encoding byte sits
// inside the checksummed frame body like every other payload byte, so it is
// integrity-protected; decoders reject unknown encodings outright.
type Response struct {
	OK       bool
	EchoKind Kind
	EchoStep uint32
	// Enc is the encoding of the reply payload. EncFP64 (the zero value)
	// means Vec is serialized directly — the seed wire format.
	Enc compress.Encoding
	// Vec is the reply vector (passthrough encoding). Ignored by the
	// encoder when Enc != EncFP64.
	Vec tensor.Vector
	// Payload is the pre-compressed reply body when Enc != EncFP64. On the
	// decode side it is never populated: decodeResponse decompresses
	// straight into Vec, so the protocol layer only ever sees vectors.
	Payload []byte
	// FreePayload tells the serving loop that Payload was borrowed from
	// compress.GetBuf and may be recycled once the frame is written (a
	// handler serving a long-lived cached payload leaves it false).
	FreePayload bool
}

const (
	// maxFrame bounds a single message; large enough for the biggest
	// Table-1 model (VGG, ~128M params = ~1 GiB) plus headers.
	maxFrame = 1<<30 + 64
)

var (
	// ErrFrameTooLarge is returned for frames exceeding maxFrame.
	ErrFrameTooLarge = errors.New("rpc: frame too large")

	// ErrMalformed is returned for syntactically invalid messages.
	ErrMalformed = errors.New("rpc: malformed message")

	// ErrChecksum is returned when a frame's payload fails checksum
	// verification — bytes were corrupted in flight (an adversarial
	// network element, modelled by transport.LinkFault). The payload is
	// rejected before it reaches the decoder: a corrupted gradient or
	// model can never silently poison aggregation.
	ErrChecksum = errors.New("rpc: payload checksum mismatch")
)

// castagnoli is the CRC-32C table; Castagnoli is hardware-accelerated on
// amd64/arm64, so the integrity pass costs a small fraction of the codec.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksumRejects counts frames rejected for checksum mismatch, process
// wide. The chaos invariant harness reads it to prove injected corruption
// was detected rather than absorbed.
var checksumRejects atomic.Uint64

// ChecksumRejects returns the number of frames this process has rejected
// for payload checksum mismatch.
func ChecksumRejects() uint64 { return checksumRejects.Load() }

// bufPool recycles wire buffers across calls and connections — the paper's
// Section 4.4 memory-management optimization applied to the RPC layer. Both
// the framed-send and framed-receive paths borrow from it, so a steady-state
// pull loop stops allocating per-message byte slices entirely.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getBuf borrows a buffer of length n from the pool.
func getBuf(n int) *[]byte {
	p := bufPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

// putBuf returns a borrowed buffer to the pool.
func putBuf(p *[]byte) { bufPool.Put(p) }

// The frame layout is a 4-byte little-endian length prefix followed by the
// frame body: a 4-byte CRC-32C of the payload, then the payload itself. The
// length counts the body (checksum word included), so the stream remains
// generically "length-prefixed frames" — which is the shape
// transport.LinkFault's frame-wise chaos programs reassemble. Readers verify
// the checksum before handing the payload to a decoder and reject mismatches
// with ErrChecksum; a network that flips body bytes (the chaos corrupt
// program, or a real mangling middlebox) therefore cannot silently feed
// garbage into model or gradient aggregation.
const frameHeaderSize = 8 // length prefix + checksum word

// putFrameHeader writes the length prefix and checksum word for payload into
// b[:frameHeaderSize].
func putFrameHeader(b, payload []byte) {
	binary.LittleEndian.PutUint32(b, uint32(4+len(payload)))
	binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(payload, castagnoli))
}

// writeFrame writes a checksummed, length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	p := getBuf(frameHeaderSize + len(payload))
	b := *p
	copy(b[frameHeaderSize:], payload)
	putFrameHeader(b, b[frameHeaderSize:])
	_, err := w.Write(b)
	putBuf(p)
	return err
}

// writeRequestFrame encodes req and its frame header into one pooled buffer
// and writes it with a single Write call (one syscall / pipe handoff per
// message instead of two, and no per-message allocation).
func writeRequestFrame(w io.Writer, req Request) error {
	size := encodedRequestSize(req)
	p := getBuf(frameHeaderSize + size)
	b := *p
	encodeRequestTo(b[frameHeaderSize:], req)
	putFrameHeader(b, b[frameHeaderSize:])
	_, err := w.Write(b)
	putBuf(p)
	return err
}

// writeResponseFrame is writeRequestFrame for responses.
func writeResponseFrame(w io.Writer, resp Response) error {
	size := encodedResponseSize(resp)
	p := getBuf(frameHeaderSize + size)
	b := *p
	encodeResponseTo(b[frameHeaderSize:], resp)
	putFrameHeader(b, b[frameHeaderSize:])
	_, err := w.Write(b)
	putBuf(p)
	return err
}

// readFrame reads a checksummed frame's payload into a fresh slice.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if n < 4 {
		return nil, fmt.Errorf("%w: frame body of %d bytes", ErrMalformed, n)
	}
	payload := make([]byte, n-4)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if sum := crc32.Checksum(payload, castagnoli); sum != binary.LittleEndian.Uint32(hdr[4:]) {
		checksumRejects.Add(1)
		return nil, fmt.Errorf("%w: %d-byte payload", ErrChecksum, n-4)
	}
	return payload, nil
}

// readFramePooled reads a checksummed frame's payload into a pooled buffer.
// The caller must release the returned buffer with putBuf once the payload
// has been decoded. A checksum mismatch consumes the whole frame (the stream
// stays positioned at the next frame boundary) and returns ErrChecksum.
func readFramePooled(r io.Reader) (*[]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if n < 4 {
		return nil, fmt.Errorf("%w: frame body of %d bytes", ErrMalformed, n)
	}
	p := getBuf(int(n - 4))
	if _, err := io.ReadFull(r, *p); err != nil {
		putBuf(p)
		return nil, err
	}
	if sum := crc32.Checksum(*p, castagnoli); sum != binary.LittleEndian.Uint32(hdr[4:]) {
		putBuf(p)
		checksumRejects.Add(1)
		return nil, fmt.Errorf("%w: %d-byte payload", ErrChecksum, n-4)
	}
	return p, nil
}

// fromLen bounds the encoded caller identity to one length byte, truncating
// longer strings (identities are short node addresses in practice).
func fromLen(r Request) int {
	if len(r.From) > 255 {
		return 255
	}
	return len(r.From)
}

// reqFixedSize is the fixed request prefix: kind(1) step(4) accept(1)
// shard(2) lo(4) hi(4), followed by fromLen(1) from(n) hasVec(1) [vec].
const reqFixedSize = 16

func encodedRequestSize(r Request) int {
	size := reqFixedSize + 2 + fromLen(r)
	if r.Vec != nil {
		size += r.Vec.EncodedSize()
	}
	return size
}

// encodeRequestTo serializes r into buf (len encodedRequestSize(r)):
// kind(1) step(4) accept(1) shard(2) lo(4) hi(4) fromLen(1) from(n)
// hasVec(1) [vec].
func encodeRequestTo(buf []byte, r Request) {
	buf[0] = byte(r.Kind)
	binary.LittleEndian.PutUint32(buf[1:], r.Step)
	buf[5] = byte(r.Accept)
	binary.LittleEndian.PutUint16(buf[6:], r.Shard)
	binary.LittleEndian.PutUint32(buf[8:], r.Lo)
	binary.LittleEndian.PutUint32(buf[12:], r.Hi)
	n := fromLen(r)
	buf[reqFixedSize] = byte(n)
	copy(buf[reqFixedSize+1:], r.From[:n])
	buf[reqFixedSize+1+n] = 0
	if r.Vec != nil {
		buf[reqFixedSize+1+n] = 1
		// Encoding into a correctly-sized buffer cannot fail.
		_ = r.Vec.EncodeTo(buf[reqFixedSize+2+n:])
	}
}

// encodeRequest serializes r into a fresh slice.
func encodeRequest(r Request) []byte {
	buf := make([]byte, encodedRequestSize(r))
	encodeRequestTo(buf, r)
	return buf
}

// decodeRequestInto parses the output of encodeRequest into req, reusing
// req.Vec's backing array when its capacity suffices. On requests without a
// payload req.Vec is nil; the previous buffer is handed back in spare so the
// caller can keep it for the next request.
func decodeRequestInto(req *Request, b []byte) (spare tensor.Vector, err error) {
	if len(b) < reqFixedSize+2 {
		return req.Vec, fmt.Errorf("%w: request of %d bytes", ErrMalformed, len(b))
	}
	req.Kind = Kind(b[0])
	req.Step = binary.LittleEndian.Uint32(b[1:])
	// An unknown Accept byte is not an error: the negotiation contract is
	// "compress only on exact codec match", so a value this build does not
	// know simply never matches and the reply falls back to passthrough.
	req.Accept = compress.Encoding(b[5])
	req.Shard = binary.LittleEndian.Uint16(b[6:])
	req.Lo = binary.LittleEndian.Uint32(b[8:])
	req.Hi = binary.LittleEndian.Uint32(b[12:])
	n := int(b[reqFixedSize])
	if len(b) < reqFixedSize+2+n {
		return req.Vec, fmt.Errorf("%w: request of %d bytes, from of %d", ErrMalformed, len(b), n)
	}
	req.From = string(b[reqFixedSize+1 : reqFixedSize+1+n])
	if b[reqFixedSize+1+n] != 1 {
		spare = req.Vec
		req.Vec = nil
		return spare, nil
	}
	if err := req.Vec.UnmarshalBinary(b[reqFixedSize+2+n:]); err != nil {
		return req.Vec, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return nil, nil
}

// decodeRequest parses the output of encodeRequest.
func decodeRequest(b []byte) (Request, error) {
	var req Request
	if _, err := decodeRequestInto(&req, b); err != nil {
		return Request{}, err
	}
	return req, nil
}

// respHeaderSize is the fixed response prefix: ok(1) echoKind(1)
// echoStep(4) enc(1). The baseline byte accounting (WireStats) and every
// encode/decode below derive from this one constant.
const respHeaderSize = 7

func encodedResponseSize(r Response) int {
	size := respHeaderSize
	if !r.OK {
		return size
	}
	if r.Enc != compress.EncFP64 {
		return size + len(r.Payload)
	}
	if r.Vec != nil {
		size += r.Vec.EncodedSize()
	}
	return size
}

// encodeResponseTo serializes r into buf (len encodedResponseSize(r)):
// ok(1) echoKind(1) echoStep(4) enc(1) [payload]. The payload is the
// passthrough-encoded Vec under EncFP64, the handler-supplied compressed
// bytes otherwise.
func encodeResponseTo(buf []byte, r Response) {
	buf[0] = 0
	if r.OK {
		buf[0] = 1
	}
	buf[1] = byte(r.EchoKind)
	binary.LittleEndian.PutUint32(buf[2:], r.EchoStep)
	buf[6] = byte(r.Enc)
	if !r.OK {
		buf[6] = 0
		return
	}
	if r.Enc != compress.EncFP64 {
		copy(buf[7:], r.Payload)
		return
	}
	if r.Vec != nil {
		_ = r.Vec.EncodeTo(buf[7:])
	}
}

// encodeResponse serializes r into a fresh slice.
func encodeResponse(r Response) []byte {
	buf := make([]byte, encodedResponseSize(r))
	encodeResponseTo(buf, r)
	return buf
}

// ErrBadEncoding is returned for a reply whose payload-encoding byte names
// a codec this build does not know. It is rejected, never guessed at: the
// byte is integrity-protected by the frame checksum, so an unknown value
// means a newer or Byzantine peer, and decoding its payload as some other
// codec would be silent poisoning.
var ErrBadEncoding = errors.New("rpc: unknown payload encoding")

// decodeResponse parses the output of encodeResponse, decompressing a
// non-passthrough payload into Vec — the protocol layer above only ever
// sees plain vectors, whatever travelled on the wire. dimBound caps the
// dimension a compressed payload may claim (see replyDimBound): the sparse
// codec's payload does not grow with the dimension, so without the bound a
// Byzantine peer's twenty-byte reply could demand a multi-gigabyte output
// allocation.
func decodeResponse(b []byte, dimBound int) (Response, error) {
	return decodeResponseInto(nil, b, dimBound)
}

// decodeResponseInto is decodeResponse fused with a caller-owned
// destination: with a non-nil dst the reply vector decodes in place over
// dst's backing array (grown only when capacity falls short — both the
// compressed decoders and the fp64 unmarshal reuse capacity), and *dst is
// re-pointed at the result so the capacity survives for the next round even
// after growth. The steady state of a pull loop therefore decodes every
// reply with zero vector allocations, whatever codec is on the wire.
func decodeResponseInto(dst *tensor.Vector, b []byte, dimBound int) (Response, error) {
	if len(b) < respHeaderSize {
		return Response{}, fmt.Errorf("%w: response of %d bytes", ErrMalformed, len(b))
	}
	r := Response{
		OK:       b[0] == 1,
		EchoKind: Kind(b[1]),
		EchoStep: binary.LittleEndian.Uint32(b[2:]),
		Enc:      compress.Encoding(b[6]),
	}
	if !r.OK {
		return r, nil
	}
	if !r.Enc.Valid() {
		return Response{}, fmt.Errorf("%w: byte %d", ErrBadEncoding, b[6])
	}
	if dst != nil {
		r.Vec = *dst
	}
	if r.Enc != compress.EncFP64 {
		if err := compress.DecodeBounded(&r.Vec, r.Enc, b[respHeaderSize:], dimBound); err != nil {
			return Response{}, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		if dst != nil {
			*dst = r.Vec
		}
		return r, nil
	}
	if len(b) > respHeaderSize {
		if err := r.Vec.UnmarshalBinary(b[respHeaderSize:]); err != nil {
			return Response{}, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
	} else {
		r.Vec = nil
	}
	if dst != nil && r.Vec != nil {
		*dst = r.Vec
	}
	return r, nil
}

// replyDimBound returns the decoder's output-dimension cap for one call: a
// ranged pull asks for exactly the [Lo, Hi) slice, so its reply cannot
// plausibly exceed that width; a gradient pull folds the model into the
// request, so its reply cannot exceed that dimension; calls without either
// fall back to the global compress.MaxDim backstop.
func replyDimBound(req Request) int {
	if req.Ranged() {
		return int(req.Hi - req.Lo)
	}
	if req.Vec != nil {
		return len(req.Vec)
	}
	return compress.MaxDim
}
