package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"garfield/internal/tensor"
)

// Kind enumerates request types, mirroring the paper's protocol buffers for
// gradients, models and aggregated gradients.
type Kind uint8

// Request kinds.
const (
	// KindGetGradient asks a worker for its gradient estimate at the
	// model state carried in the request, for a given step.
	KindGetGradient Kind = iota + 1
	// KindGetModel asks a server replica for its current model state.
	KindGetModel
	// KindGetAggrGrad asks a decentralized peer for its latest aggregated
	// gradient (the contract step of Listing 3).
	KindGetAggrGrad
	// KindPing checks liveness.
	KindPing
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindGetGradient:
		return "get-gradient"
	case KindGetModel:
		return "get-model"
	case KindGetAggrGrad:
		return "get-aggr-grad"
	case KindPing:
		return "ping"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Request is one pull: kind + step + optional vector payload (the model
// state for KindGetGradient).
type Request struct {
	Kind Kind
	Step uint32
	// Vec is the optional request payload (nil when absent).
	Vec tensor.Vector
}

// Response carries the pulled vector, or OK=false when the node has nothing
// to serve (e.g. a Byzantine node dropping its reply, or a step mismatch).
type Response struct {
	OK  bool
	Vec tensor.Vector
}

const (
	// maxFrame bounds a single message; large enough for the biggest
	// Table-1 model (VGG, ~128M params = ~1 GiB) plus headers.
	maxFrame = 1<<30 + 64
)

var (
	// ErrFrameTooLarge is returned for frames exceeding maxFrame.
	ErrFrameTooLarge = errors.New("rpc: frame too large")

	// ErrMalformed is returned for syntactically invalid messages.
	ErrMalformed = errors.New("rpc: malformed message")
)

// bufPool recycles wire buffers across calls and connections — the paper's
// Section 4.4 memory-management optimization applied to the RPC layer. Both
// the framed-send and framed-receive paths borrow from it, so a steady-state
// pull loop stops allocating per-message byte slices entirely.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getBuf borrows a buffer of length n from the pool.
func getBuf(n int) *[]byte {
	p := bufPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

// putBuf returns a borrowed buffer to the pool.
func putBuf(p *[]byte) { bufPool.Put(p) }

// writeFrame writes a length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	p := getBuf(4 + len(payload))
	b := *p
	binary.LittleEndian.PutUint32(b, uint32(len(payload)))
	copy(b[4:], payload)
	_, err := w.Write(b)
	putBuf(p)
	return err
}

// writeRequestFrame encodes req and its length prefix into one pooled buffer
// and writes it with a single Write call (one syscall / pipe handoff per
// message instead of two, and no per-message allocation).
func writeRequestFrame(w io.Writer, req Request) error {
	size := encodedRequestSize(req)
	p := getBuf(4 + size)
	b := *p
	binary.LittleEndian.PutUint32(b, uint32(size))
	encodeRequestTo(b[4:], req)
	_, err := w.Write(b)
	putBuf(p)
	return err
}

// writeResponseFrame is writeRequestFrame for responses.
func writeResponseFrame(w io.Writer, resp Response) error {
	size := encodedResponseSize(resp)
	p := getBuf(4 + size)
	b := *p
	binary.LittleEndian.PutUint32(b, uint32(size))
	encodeResponseTo(b[4:], resp)
	_, err := w.Write(b)
	putBuf(p)
	return err
}

// readFrame reads a length-prefixed payload into a fresh slice.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// readFramePooled reads a length-prefixed payload into a pooled buffer. The
// caller must release the returned buffer with putBuf once the payload has
// been decoded.
func readFramePooled(r io.Reader) (*[]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	p := getBuf(int(n))
	if _, err := io.ReadFull(r, *p); err != nil {
		putBuf(p)
		return nil, err
	}
	return p, nil
}

func encodedRequestSize(r Request) int {
	size := 6
	if r.Vec != nil {
		size += r.Vec.EncodedSize()
	}
	return size
}

// encodeRequestTo serializes r into buf (len encodedRequestSize(r)):
// kind(1) step(4) hasVec(1) [vec].
func encodeRequestTo(buf []byte, r Request) {
	buf[0] = byte(r.Kind)
	binary.LittleEndian.PutUint32(buf[1:], r.Step)
	buf[5] = 0
	if r.Vec != nil {
		buf[5] = 1
		// Encoding into a correctly-sized buffer cannot fail.
		_ = r.Vec.EncodeTo(buf[6:])
	}
}

// encodeRequest serializes r into a fresh slice.
func encodeRequest(r Request) []byte {
	buf := make([]byte, encodedRequestSize(r))
	encodeRequestTo(buf, r)
	return buf
}

// decodeRequestInto parses the output of encodeRequest into req, reusing
// req.Vec's backing array when its capacity suffices. On requests without a
// payload req.Vec is nil; the previous buffer is handed back in spare so the
// caller can keep it for the next request.
func decodeRequestInto(req *Request, b []byte) (spare tensor.Vector, err error) {
	if len(b) < 6 {
		return req.Vec, fmt.Errorf("%w: request of %d bytes", ErrMalformed, len(b))
	}
	req.Kind = Kind(b[0])
	req.Step = binary.LittleEndian.Uint32(b[1:])
	if b[5] != 1 {
		spare = req.Vec
		req.Vec = nil
		return spare, nil
	}
	if err := req.Vec.UnmarshalBinary(b[6:]); err != nil {
		return req.Vec, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return nil, nil
}

// decodeRequest parses the output of encodeRequest.
func decodeRequest(b []byte) (Request, error) {
	var req Request
	if _, err := decodeRequestInto(&req, b); err != nil {
		return Request{}, err
	}
	return req, nil
}

func encodedResponseSize(r Response) int {
	size := 1
	if r.OK && r.Vec != nil {
		size += r.Vec.EncodedSize()
	}
	return size
}

// encodeResponseTo serializes r into buf (len encodedResponseSize(r)):
// ok(1) [vec].
func encodeResponseTo(buf []byte, r Response) {
	buf[0] = 0
	if r.OK {
		buf[0] = 1
		if r.Vec != nil {
			_ = r.Vec.EncodeTo(buf[1:])
		}
	}
}

// encodeResponse serializes r into a fresh slice.
func encodeResponse(r Response) []byte {
	buf := make([]byte, encodedResponseSize(r))
	encodeResponseTo(buf, r)
	return buf
}

// decodeResponse parses the output of encodeResponse.
func decodeResponse(b []byte) (Response, error) {
	if len(b) < 1 {
		return Response{}, fmt.Errorf("%w: empty response", ErrMalformed)
	}
	r := Response{OK: b[0] == 1}
	if r.OK && len(b) > 1 {
		if err := r.Vec.UnmarshalBinary(b[1:]); err != nil {
			return Response{}, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
	}
	return r, nil
}
