package rpc

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"garfield/internal/compress"
	"garfield/internal/tensor"
	"garfield/internal/transport"
)

// TestFrameChecksumRejectsCorruption locks the acceptance criterion of the
// chaos engine: a payload byte flipped in flight must be rejected by the
// frame reader with ErrChecksum, never delivered to the decoder.
func TestFrameChecksumRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	resp := Response{OK: true, Vec: tensor.Vector{1, 2, 3, 4}}
	if err := writeResponseFrame(&buf, resp); err != nil {
		t.Fatal(err)
	}
	clean := append([]byte(nil), buf.Bytes()...)

	// Every flipped payload byte position must be caught.
	for i := frameHeaderSize; i < len(clean); i++ {
		mangled := append([]byte(nil), clean...)
		mangled[i] ^= 0x40
		if _, err := readFrame(bytes.NewReader(mangled)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at byte %d: err = %v, want ErrChecksum", i, err)
		}
	}
	// A flipped checksum byte is equally fatal.
	mangled := append([]byte(nil), clean...)
	mangled[5] ^= 0x01
	if _, err := readFrame(bytes.NewReader(mangled)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("checksum flip: err = %v, want ErrChecksum", err)
	}
	// The clean frame still round-trips.
	payload, err := readFrame(bytes.NewReader(clean))
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeResponse(payload, compress.MaxDim)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Vec.Equal(resp.Vec) {
		t.Fatalf("round trip = %v, want %v", got.Vec, resp.Vec)
	}
}

// TestCorruptLinkNeverPoisons drives real pulls through a transport whose
// link corrupts every frame, and asserts no corrupted vector is ever
// delivered: every call either fails or returns the honest bytes (frames
// whose flipped byte happened to be restored by a second flip — impossible
// with one flip per direction, so here: every call fails).
func TestCorruptLinkNeverPoisons(t *testing.T) {
	net := transport.NewFaulty(transport.NewMem())
	honest := tensor.Vector{1, 2, 3, 4, 5, 6, 7, 8}
	srv, err := Serve(net, "w", HandlerFunc(func(req Request) Response {
		return Response{OK: true, Vec: honest.Clone()}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	net.SetLinkFault("w", transport.LinkFault{Corrupt: 1}, 42)

	before := ChecksumRejects()
	client := NewPooledClient(net)
	defer client.Close()
	delivered := 0
	for i := 0; i < 10; i++ {
		vec, err := client.Call(context.Background(), "w", Request{Kind: KindGetGradient, Step: uint32(i), Vec: honest.Clone()})
		if err != nil {
			continue
		}
		delivered++
		if !vec.Equal(honest) {
			t.Fatalf("call %d delivered a corrupted vector: %v", i, vec)
		}
	}
	// With corruption probability 1 on both directions, nothing should get
	// through — and whatever the delivery count, nothing corrupted did.
	if delivered != 0 {
		t.Fatalf("%d calls delivered vectors through a corrupt-every-frame link", delivered)
	}
	if ChecksumRejects() == before {
		t.Fatal("no checksum rejections recorded; corruption was not detected")
	}
	if stats := net.LinkStats("w"); stats.Corrupted == 0 {
		t.Fatalf("link stats = %+v, want corrupted frames", stats)
	}
}

// TestServerSurvivesCorruptedRequestFrame: a checksum-failing request must
// be declined (not-OK) without tearing down the connection, so an honest
// retry on the same stream still works.
func TestServerSurvivesCorruptedRequestFrame(t *testing.T) {
	mem := transport.NewMem()
	srv, err := Serve(mem, "s", HandlerFunc(func(req Request) Response {
		return Response{OK: true, Vec: tensor.Vector{9}}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := mem.Dial(context.Background(), "s")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Hand-craft a corrupted frame: valid header for the payload, then
	// flip a payload byte after computing the checksum.
	var buf bytes.Buffer
	if err := writeRequestFrame(&buf, Request{Kind: KindPing}); err != nil {
		t.Fatal(err)
	}
	mangled := buf.Bytes()
	mangled[len(mangled)-1] ^= 0xff
	if _, err := conn.Write(mangled); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := decodeResponse(payload, compress.MaxDim)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("server served a corrupted request")
	}
	// The connection must still be usable.
	if err := writeRequestFrame(conn, Request{Kind: KindGetGradient, Step: 1, Vec: tensor.Vector{1}}); err != nil {
		t.Fatal(err)
	}
	payload, err = readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = decodeResponse(payload, compress.MaxDim)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Vec) != 1 || resp.Vec[0] != 9 {
		t.Fatalf("post-corruption request not served: %+v", resp)
	}
}

// TestRequestFromRoundTrip pins the identity field's wire behaviour,
// including the 255-byte truncation.
func TestRequestFromRoundTrip(t *testing.T) {
	long := string(bytes.Repeat([]byte{'x'}, 300))
	for _, req := range []Request{
		{Kind: KindPing, Step: 3},
		{Kind: KindGetModel, Step: 4, From: "server-2"},
		{Kind: KindGetGradient, Step: 5, From: "server-0", Vec: tensor.Vector{1, 2}},
		{Kind: KindGetModel, Step: 6, From: long},
	} {
		got, err := decodeRequest(encodeRequest(req))
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		want := req.From
		if len(want) > 255 {
			want = want[:255]
		}
		if got.From != want {
			t.Fatalf("From round trip = %q, want %q", got.From, want)
		}
	}
}

// TestClientIdentityStamped: a client constructed with an identity stamps it
// into requests, and the handler observes it.
func TestClientIdentityStamped(t *testing.T) {
	mem := transport.NewMem()
	seen := make(chan string, 2)
	srv, err := Serve(mem, "s", HandlerFunc(func(req Request) Response {
		seen <- req.From
		return Response{OK: true, Vec: tensor.Vector{1}}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pc := NewPooledClientAs(mem, "server-7")
	defer pc.Close()
	if _, err := pc.Call(context.Background(), "s", Request{Kind: KindPing}); err != nil {
		t.Fatal(err)
	}
	if got := <-seen; got != "server-7" {
		t.Fatalf("pooled client stamped From = %q, want server-7", got)
	}
	cl := NewClientAs(mem, "node-3")
	if _, err := cl.Call(context.Background(), "s", Request{Kind: KindPing}); err != nil {
		t.Fatal(err)
	}
	if got := <-seen; got != "node-3" {
		t.Fatalf("client stamped From = %q, want node-3", got)
	}
}

// TestDuplicateLinkNeverServesStaleReplies locks the reply-correlation
// guarantee: a chaos link that duplicates request frames desynchronizes the
// strict request/response stream, and without correlation every later call
// on the connection would silently receive its predecessor's (authentic,
// checksummed, wrong-step) reply. With the echo check, a delivered reply
// always answers the step that asked for it; desyncs fail the call instead.
func TestDuplicateLinkNeverServesStaleReplies(t *testing.T) {
	net := transport.NewFaulty(transport.NewMem())
	srv, err := Serve(net, "w", HandlerFunc(func(req Request) Response {
		// The reply encodes the step it answers, so staleness is visible.
		return Response{OK: true, Vec: tensor.Vector{float64(req.Step)}}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	net.SetLinkFault("w", transport.LinkFault{Duplicate: 1}, 77)

	client := NewPooledClient(net)
	defer client.Close()
	delivered, failures := 0, 0
	for step := 0; step < 20; step++ {
		vec, err := client.Call(context.Background(), "w",
			Request{Kind: KindGetGradient, Step: uint32(step), Vec: tensor.Vector{1}})
		if err != nil {
			failures++
			continue
		}
		delivered++
		if len(vec) != 1 || vec[0] != float64(step) {
			t.Fatalf("call for step %d delivered the reply for step %v (stale)", step, vec)
		}
	}
	if failures == 0 {
		t.Fatal("a duplicate-every-frame link caused no detected failures; correlation is not engaging")
	}
	t.Logf("%d calls delivered correctly, %d failed loudly", delivered, failures)
}

// TestCorrelationRejectsShiftedReply drives the mismatch path directly: a
// reply carrying another request's echo must surface ErrMismatchedReply.
func TestCorrelationRejectsShiftedReply(t *testing.T) {
	mem := transport.NewMem()
	l, err := mem.Listen("s")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := readFrame(conn); err != nil {
			return
		}
		// Answer with a stale echo (previous step).
		_ = writeResponseFrame(conn, Response{OK: true, EchoKind: KindGetModel, EchoStep: 6, Vec: tensor.Vector{1}})
	}()
	client := NewClient(mem)
	_, err = client.Call(context.Background(), "s", Request{Kind: KindGetModel, Step: 7})
	if !errors.Is(err, ErrMismatchedReply) {
		t.Fatalf("err = %v, want ErrMismatchedReply", err)
	}
}
