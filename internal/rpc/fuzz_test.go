package rpc

import (
	"testing"

	"garfield/internal/compress"
	"garfield/internal/tensor"
)

// Fuzz targets: a Byzantine peer controls every byte it sends, so the
// decoders must never panic and must either round-trip or return an error.
// `go test` runs these over the seed corpus; `go test -fuzz` explores.

func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(encodeRequest(Request{Kind: KindPing, Step: 7}))
	f.Add(encodeRequest(Request{Kind: KindGetGradient, Step: 1, Vec: tensor.Vector{1, 2, 3}}))
	f.Add(encodeRequest(Request{Kind: KindGetModel, Step: 2, From: "server-1"}))
	f.Add(encodeRequest(Request{Kind: KindGetGradient, Step: 3, From: "s", Vec: tensor.Vector{4}}))
	f.Add(encodeRequest(Request{Kind: KindGetGradient, Step: 4, Accept: compress.EncInt8, Vec: tensor.Vector{5, 6}}))
	f.Add(encodeRequest(Request{Kind: KindGetGradient, Step: 5, Shard: 2, Lo: 10, Hi: 20, From: "server-0"}))
	f.Add(encodeRequest(Request{Kind: KindGetShardPart, Step: 6, Shard: 1, Lo: 0, Hi: 3, From: "server-2"}))
	// hasVec flag set, truncated payload.
	bad := encodeRequest(Request{Kind: KindGetGradient, Vec: tensor.Vector{1, 2}})
	f.Add(bad[:9])
	// from length pointing past the buffer.
	f.Add([]byte{1, 0, 0, 0, 0, 200, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeRequest(data)
		if err != nil {
			return
		}
		// A successfully decoded request must re-encode and re-decode to
		// the same structure.
		again, err := decodeRequest(encodeRequest(req))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Kind != req.Kind || again.Step != req.Step || again.From != req.From {
			t.Fatalf("round trip mismatch: %+v vs %+v", again, req)
		}
		if again.Shard != req.Shard || again.Lo != req.Lo || again.Hi != req.Hi {
			t.Fatalf("shard range round trip mismatch: %+v vs %+v", again, req)
		}
		if len(again.Vec) != len(req.Vec) {
			t.Fatalf("vec length mismatch: %d vs %d", len(again.Vec), len(req.Vec))
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add(encodeResponse(Response{OK: true, Vec: tensor.Vector{4, 5}}))
	f.Add(encodeResponse(Response{OK: true, EchoKind: KindGetModel, EchoStep: 9, Vec: tensor.Vector{6}}))
	f.Add(encodeResponse(Response{}))
	f.Add(encodeResponse(Response{EchoKind: KindPing, EchoStep: 3}))
	comp, _ := compress.NewCompressor(compress.EncTopK, 2)
	f.Add(encodeResponse(Response{OK: true, Enc: compress.EncTopK,
		Payload: comp.Compress(nil, tensor.Vector{1, -7, 3, 0.5})}))
	f.Add(encodeResponse(Response{OK: true, Enc: compress.Encoding(250), Payload: []byte{1, 2}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := decodeResponse(data, compress.MaxDim)
		if err != nil {
			return
		}
		// Decoding decompresses into Vec and never populates Payload, so a
		// compressed reply re-encodes as passthrough: normalize before the
		// round trip.
		resp.Enc = compress.EncFP64
		again, err := decodeResponse(encodeResponse(resp), compress.MaxDim)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.OK != resp.OK || again.EchoKind != resp.EchoKind || again.EchoStep != resp.EchoStep {
			t.Fatalf("round trip mismatch: %+v vs %+v", again, resp)
		}
		if len(again.Vec) != len(resp.Vec) {
			t.Fatalf("vec length mismatch: %d vs %d", len(again.Vec), len(resp.Vec))
		}
	})
}
