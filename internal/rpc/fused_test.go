package rpc

import (
	"context"
	"testing"
	"time"

	"garfield/internal/compress"
	"garfield/internal/gar"
	"garfield/internal/tensor"
	"garfield/internal/transport"
)

// The protocol layer hands gar.ReplyArena to PullFirstQInto; keep the
// interface satisfaction pinned here, next to the contract it serves.
var _ ReplySlots = (*gar.ReplyArena)(nil)

// TestDecodeResponseIntoReusesDestination locks the heart of the fused
// decode path: with a warm destination, decoding a reply — compressed or
// fp64 passthrough — allocates nothing and lands in the destination's
// backing array. This is the "no intermediate []float64 per reply"
// guarantee the codec benchmarks ride on.
func TestDecodeResponseIntoReusesDestination(t *testing.T) {
	rng := tensor.NewRNG(11)
	vec := rng.NormalVector(2048, 0, 1)

	comp, err := compress.NewCompressor(compress.EncInt8, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"int8": encodeResponse(Response{OK: true, Enc: compress.EncInt8,
			Payload: comp.Compress(nil, vec)}),
		"fp64": encodeResponse(Response{OK: true, Vec: vec}),
	}
	for name, wire := range cases {
		var dst tensor.Vector
		// Warm the destination: first decode sizes the backing array.
		if _, err := decodeResponseInto(&dst, wire, len(vec)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		base := &dst[0]
		allocs := testing.AllocsPerRun(50, func() {
			r, err := decodeResponseInto(&dst, wire, len(vec))
			if err != nil {
				t.Fatal(err)
			}
			if &r.Vec[0] != base || &dst[0] != base {
				t.Fatal("decode abandoned the warm destination")
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: %v allocs per warm decode, want 0", name, allocs)
		}
	}

	// A vector-less OK reply (ping ack) must yield a nil Vec, not the stale
	// contents of the destination slot.
	var dst tensor.Vector = tensor.Vector{1, 2, 3}
	r, err := decodeResponseInto(&dst, encodeResponse(Response{OK: true}), compress.MaxDim)
	if err != nil {
		t.Fatal(err)
	}
	if r.Vec != nil {
		t.Fatalf("vector-less reply decoded as %v", r.Vec)
	}
}

// TestPullFirstQIntoReusesSlots runs two full pull rounds against live
// compressing peers through the pooled client and checks that each peer's
// round-two reply decoded into the same backing array as round one — the
// arena's slots, not fresh vectors — while still carrying the right values.
func TestPullFirstQIntoReusesSlots(t *testing.T) {
	net := transport.NewMem()
	peers := []string{"a", "b", "c"}
	rng := tensor.NewRNG(12)
	served := map[string]tensor.Vector{}
	for _, p := range peers {
		vec := rng.NormalVector(1500, 0, 1)
		served[p] = vec
		srv, err := Serve(net, p, compressingHandler(compress.EncInt8, 0, vec))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
	}
	c := NewPooledClient(net)
	defer c.Close()

	arena := gar.NewReplyArena(len(peers))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req := Request{Kind: KindGetModel, Accept: compress.EncInt8}

	pull := func() map[string]*float64 {
		replies, err := c.PullFirstQInto(ctx, peers, len(peers), req, arena)
		if err != nil {
			t.Fatal(err)
		}
		backing := map[string]*float64{}
		for _, r := range replies {
			want := served[r.From]
			if len(r.Vec) != len(want) {
				t.Fatalf("%s: %d coords, want %d", r.From, len(r.Vec), len(want))
			}
			for i := range want {
				if d := r.Vec[i] - want[i]; d > 0.02 || d < -0.02 {
					t.Fatalf("%s coord %d: %v vs %v", r.From, i, r.Vec[i], want[i])
				}
			}
			backing[r.From] = &r.Vec[0]
		}
		return backing
	}

	first := pull()
	second := pull()
	for _, p := range peers {
		if first[p] != second[p] {
			t.Fatalf("peer %s reply re-allocated between rounds: fused decode missed the arena slot", p)
		}
	}
}
