package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// randPkgs are the stochastic standard-library packages the analyzer polices.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// seededRandAllowed are the math/rand package-level functions that do NOT
// draw from (or reseed) the process-global source: explicit constructors fed
// by a caller-supplied seed. Everything else at package scope — rand.Intn,
// rand.Float64, rand.Shuffle, rand.Seed, ... — goes through global state and
// is forbidden module-wide.
var seededRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// SeededRand enforces the repo's randomness discipline across the whole
// module: every random draw must flow through an explicitly seeded stream
// (the SplitMix64 / FNV domain-separation pattern of core, scenario and
// transport), never the process-global math/rand source, and no generator may
// be seeded from the wall clock. The global source is shared mutable state —
// any draw anywhere perturbs every later draw, which is exactly how
// "unrelated change shifts the sweep artifacts" reproducibility bugs are
// born; a time-seeded generator is different on every run by construction.
// The runtime counterpart is TestAttackSeedDomainSeparated, which can only
// catch collisions on exercised paths.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "forbid the global math/rand source and wall-clock-seeded RNGs; " +
		"inject seeded streams (escape hatch: //lint:allow seededrand(reason))",
	Run: runSeededRand,
}

func runSeededRand(pass *Pass) error {
	// Nested constructors (rand.New(rand.NewSource(seed))) would report the
	// same wall-clock read once per enclosing call; dedupe by position.
	reported := map[token.Pos]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj := pass.TypesInfo.Uses[n]
				if obj == nil || !isRandPkgFunc(obj) {
					return true
				}
				if !seededRandAllowed[n.Name] {
					pass.Reportf(n.Pos(),
						"rand.%s draws from the process-global source; inject a seeded stream instead",
						n.Name)
				}
			case *ast.CallExpr:
				// rand.NewSource(...), rand.New(...), rand.NewPCG(...):
				// legal constructors — unless the seed expression reads the
				// wall clock, which makes every run unique by construction.
				f := funcOf(pass.TypesInfo, n)
				if f == nil || f.Pkg() == nil || !randPkgs[f.Pkg().Path()] || !seededRandAllowed[f.Name()] {
					return true
				}
				for _, arg := range n.Args {
					if id := wallClockReadIn(pass, arg); id != nil && !reported[id.Pos()] {
						reported[id.Pos()] = true
						pass.Reportf(id.Pos(),
							"RNG seeded from the wall clock (time.%s): every run draws a different stream; derive the seed from configuration",
							id.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// wallClockReadIn returns the first identifier inside expr resolving to a
// host-clock read (time.Now, time.Since, ...), or nil.
func wallClockReadIn(pass *Pass, expr ast.Expr) *ast.Ident {
	var found *ast.Ident
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || !wallclockForbidden[id.Name] {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && isPkgFunc(obj, "time", id.Name) {
			found = id
			return false
		}
		return true
	})
	return found
}

func isRandPkgFunc(obj types.Object) bool {
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil || !randPkgs[f.Pkg().Path()] {
		return false
	}
	return f.Type().(*types.Signature).Recv() == nil
}
