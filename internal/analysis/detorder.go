package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetOrderScope lists the packages whose outputs ride inside the
// deterministic artifact contract: sweep CSV/JSON artifacts, wire replies,
// roster snapshots, aggregation inputs, chaos invariant reports. Map
// iteration order leaking into any ordered output there is exactly the bug
// class behind the canonical-reply-ordering work in the scenario engine
// (TestSweepBitIdentical and friends defend it at runtime).
var DetOrderScope = []string{
	"garfield/internal/core",
	"garfield/internal/sim",
	"garfield/internal/gar",
	"garfield/internal/rpc",
	"garfield/internal/compress",
	"garfield/internal/scenario",
	"garfield/internal/metrics",
	"garfield/internal/tensor",
	"garfield/internal/attack",
	"garfield/internal/transport",
	"garfield/internal/chaos",
}

// detOrderWriters are method/function names whose call inside a map-range
// body emits into an ordered sink: stream writers, formatters, encoders and
// hashers (a hash over map-ordered input is just as run-dependent as a CSV).
var detOrderWriters = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Encode": true, "WriteAll": true, "Sum": true, "Sum64": true, "Sum32": true,
}

// DetOrder flags `range` over a map whose body feeds an ordered output — an
// append to a slice that outlives the loop (unless that slice is later
// sorted in the same function), a write/format/encode/hash call, or a
// channel send — inside the deterministic-scope packages. Go randomizes map
// iteration per run, so each of these turns a bit-identical artifact into a
// per-run shuffle. The fix is mechanical: collect the keys, sort them,
// iterate the sorted slice.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc: "map iteration must not feed ordered outputs in deterministic " +
		"packages; iterate sorted keys (escape hatch: //lint:allow detorder(reason))",
	Run: runDetOrder,
}

func runDetOrder(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), DetOrderScope) {
		return nil
	}
	for _, file := range pass.Files {
		// Walk function by function: the sort-suppression needs the
		// statements that follow the loop in the enclosing function.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			checkDetOrderFunc(pass, body)
			return true
		})
	}
	return nil
}

func checkDetOrderFunc(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false // nested literals are walked as their own functions
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		reportDetOrder(pass, body, rng)
		return true
	})
}

// reportDetOrder reports the first order-sensitive effect in one map-range
// body (one diagnostic per loop keeps the sweep reviewable; fixing the loop
// fixes every effect in it).
func reportDetOrder(pass *Pass, fn *ast.BlockStmt, rng *ast.RangeStmt) {
	done := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if done {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rng && isMapRange(pass, n) {
				// The nested map-range is reported on its own; its effects
				// belong to it.
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.TypesInfo, call) || i >= len(n.Lhs) {
					continue
				}
				dst, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Uses[dst]
				if obj == nil || withinNode(rng, obj.Pos()) {
					continue // loop-local accumulation dies with the loop
				}
				if sortedAfter(pass, fn, rng, obj) {
					continue // collect-then-sort: the canonical fix
				}
				pass.Reportf(rng.For,
					"map iteration order feeds ordered output: append to %q escapes the loop unsorted; iterate sorted keys or sort the result",
					dst.Name)
				done = true
				return false
			}
		case *ast.CallExpr:
			if f := funcOf(pass.TypesInfo, n); f != nil && detOrderWriters[f.Name()] {
				pass.Reportf(rng.For,
					"map iteration order feeds ordered output: %s inside the loop body emits per-iteration; iterate sorted keys",
					f.Name())
				done = true
				return false
			}
		case *ast.SendStmt:
			pass.Reportf(rng.For,
				"map iteration order feeds ordered output: channel send inside the loop body; iterate sorted keys")
			done = true
			return false
		}
		return true
	})
}

func isMapRange(pass *Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append" && isUniverse(info, id)
}

func withinNode(n ast.Node, pos token.Pos) bool {
	return pos >= n.Pos() && pos <= n.End()
}

// sortedAfter reports whether, after the range loop in the same function,
// the accumulated slice is passed to a sort/slices call — the
// collect-then-sort idiom that restores a canonical order.
func sortedAfter(pass *Pass, fn *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		f := funcOf(pass.TypesInfo, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if p := f.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if firstMention(pass.TypesInfo, arg, obj).IsValid() {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
