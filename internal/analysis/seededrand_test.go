package analysis_test

import (
	"testing"

	"garfield/internal/analysis"
	"garfield/internal/analysis/analysistest"
)

func TestSeededRandFixtures(t *testing.T) {
	// seededrand is module-wide, so any package path is in scope.
	analysistest.Run(t, analysis.SeededRand, "testdata/seededrand", "garfield/internal/experiments")
}
