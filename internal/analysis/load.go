package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` in dir over patterns and
// returns the decoded package stream. -export materializes export data for
// every package in the dependency graph through the build cache, which is
// what lets the type checker resolve imports without golang.org/x/tools:
// the standard gc importer reads those files directly.
func goList(dir string, patterns ...string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportImporter returns a types importer backed by an import-path → export
// data file map (as produced by `go list -export`).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// LoadExports materializes export data for the full dependency graph of
// patterns (package paths or ./... patterns, resolved in dir) and returns the
// import-path → export-file map. The fixture harness uses it to type-check
// testdata sources against the real standard library.
func LoadExports(dir string, patterns ...string) (map[string]string, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// Load enumerates the packages matching patterns (relative to dir), parses
// their non-test sources and type-checks them against export data. Packages
// that fail to list or type-check abort the load: the linter runs after
// `go build ./...` in every workflow, so a broken package here is a loader
// bug, not a user error worth soldiering past.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listedPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		pkg, info, err := Check(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		out = append(out, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: pkg,
			Info:  info,
		})
	}
	return out, nil
}

// Check type-checks one package's parsed files with full use/def/type/selection
// recording — the shared resolution step behind Load, the vettool protocol and
// the fixture harness.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
