package analysis_test

import (
	"testing"

	"garfield/internal/analysis"
	"garfield/internal/analysis/analysistest"
)

func TestBufDisciplineFixtures(t *testing.T) {
	// bad.go carries the seeded leaks and use-after-release cases; ok.go in
	// the same fixture package must contribute zero diagnostics (releases,
	// escapes, optimistic joins, the allow hatch).
	analysistest.Run(t, analysis.BufDiscipline, "testdata/bufdiscipline", "garfield/internal/compress")
}
