package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BufDiscipline enforces the pooled-buffer ownership protocol module-wide:
// a buffer acquired from a pool (compress.GetBuf, the rpc wire-buffer pool's
// getBuf, or a raw (*sync.Pool).Get) must, within the acquiring function,
// either be released back (PutBuf/putBuf/(*sync.Pool).Put — directly or via
// defer) on every path, or visibly transfer ownership (returned, stored into
// a struct/map/channel, passed to another function, captured by a closure).
// After a release the buffer must never be referenced again.
//
// The analysis is intraprocedural and flow-sensitive over structured control
// flow: an early `return err` between acquisition and release is reported as
// a leak on that path — the bug class the zero-alloc steady-state benchmarks
// only surface as a slow drift in allocation counts. It is deliberately
// conservative about aliasing: any use that could communicate the buffer to
// code outside the function counts as an ownership transfer and ends
// tracking, so diagnostics are high-confidence.
var BufDiscipline = &Analyzer{
	Name: "bufdiscipline",
	Doc: "pooled buffers (GetBuf/sync.Pool) must be released on every " +
		"non-escaping path and never used after release " +
		"(escape hatch: //lint:allow bufdiscipline(reason))",
	Run: runBufDiscipline,
}

func runBufDiscipline(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			bd := &bufCheck{pass: pass, parents: buildParents(body)}
			bd.scanBlock(body.List)
			return true
		})
	}
	return nil
}

// bufCheck runs the per-function analysis. parents maps every node in the
// function body to its syntactic parent, which the escape classifier climbs.
type bufCheck struct {
	pass    *Pass
	parents map[ast.Node]ast.Node
}

func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// scanBlock finds acquisitions in a statement list and tracks each through
// the remainder of the list. Nested blocks are scanned through the recursive
// walk in runBufDiscipline? No — nested acquisitions are found here too, by
// recursing into compound statements.
func (bd *bufCheck) scanBlock(stmts []ast.Stmt) {
	for i, s := range stmts {
		if obj, id := bd.acquisition(s); obj != nil {
			st := bd.track(stmts[i+1:], obj, id.Pos(), stHeld)
			if st == stHeld {
				bd.pass.Reportf(id.Pos(),
					"pool buffer %q is never released (PutBuf/Put) and never escapes this function", id.Name)
			}
		}
		// Recurse into compound statements so acquisitions at any nesting
		// depth are tracked within their own scope. Function literals are
		// handled by the top-level Inspect.
		switch s := s.(type) {
		case *ast.BlockStmt:
			bd.scanBlock(s.List)
		case *ast.IfStmt:
			bd.scanBlock(s.Body.List)
			if els, ok := s.Else.(*ast.BlockStmt); ok {
				bd.scanBlock(els.List)
			} else if els, ok := s.Else.(*ast.IfStmt); ok {
				bd.scanBlock([]ast.Stmt{els})
			}
		case *ast.ForStmt:
			bd.scanBlock(s.Body.List)
		case *ast.RangeStmt:
			bd.scanBlock(s.Body.List)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				bd.scanBlock(c.(*ast.CaseClause).Body)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				bd.scanBlock(c.(*ast.CaseClause).Body)
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				bd.scanBlock(c.(*ast.CommClause).Body)
			}
		case *ast.LabeledStmt:
			bd.scanBlock([]ast.Stmt{s.Stmt})
		}
	}
}

// tracking status of one acquisition through one path.
type bufStatus int

const (
	stHeld     bufStatus = iota // buffer owned, release still due
	stReleased                  // released on the straight-line path
	stMaybe                     // released on some but not all joined paths
	stDone                      // escaped, deferred-released, or reassigned: no further obligations
)

// track walks the statements following an acquisition and returns the status
// at fall-through. Leaks at return statements are reported as they are found.
func (bd *bufCheck) track(stmts []ast.Stmt, obj types.Object, acq token.Pos, st bufStatus) bufStatus {
	for _, s := range stmts {
		if st == stDone {
			return st
		}
		st = bd.trackStmt(s, obj, acq, st)
	}
	return st
}

func (bd *bufCheck) trackStmt(s ast.Stmt, obj types.Object, acq token.Pos, st bufStatus) bufStatus {
	// Use-after-release: on the straight-line released path, any further
	// mention of the buffer — including a second release — is a bug. A plain
	// reassignment (`buf = getBuf(n)` after the release) rebinds the name to
	// a fresh buffer and is exempt; scanBlock tracks it as its own
	// acquisition.
	if st == stReleased && bd.mentions(s, obj) && !bd.reassignsOnly(s, obj) {
		if _, ok := s.(*ast.DeferStmt); !ok {
			bd.pass.Reportf(firstMention(bd.pass.TypesInfo, s, obj),
				"pool buffer %q used after release: the pool may have re-issued it", obj.Name())
			return stDone // one report per acquisition; avoid cascades
		}
	}

	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && bd.isRelease(call, obj) {
			return stReleased
		}
	case *ast.DeferStmt:
		if bd.isRelease(s.Call, obj) {
			return stDone // deferred release covers every path from here on
		}
	case *ast.AssignStmt:
		// Reassignment of the tracked variable itself: `buf = append(buf,..)`
		// and `buf = buf[:n]` keep ownership; anything else rebinds the name
		// and ends tracking (a held buffer dropped this way is beyond an
		// intraprocedural checker's certainty).
		for i, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && bd.pass.TypesInfo.Uses[id] == obj {
				if st == stHeld && i < len(s.Rhs) && selfDerived(bd.pass.TypesInfo, s.Rhs[i], obj) {
					return st
				}
				return stDone
			}
		}
	case *ast.ReturnStmt:
		if st == stHeld {
			if bd.escapes(s, obj) {
				return stDone // ownership returned to the caller
			}
			bd.pass.Reportf(s.Return,
				"pool buffer %q (acquired at line %d) is not released on this return path",
				obj.Name(), bd.pass.Fset.Position(acq).Line)
		}
		return stDone
	case *ast.BlockStmt:
		return bd.track(s.List, obj, acq, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st = bd.trackStmt(s.Init, obj, acq, st)
		}
		if st == stHeld && bd.escapes(s.Cond, obj) {
			return stDone
		}
		thenSt := bd.track(s.Body.List, obj, acq, st)
		elseSt := st
		if s.Else != nil {
			elseSt = bd.trackStmt(s.Else, obj, acq, st)
		}
		return joinStatus(thenSt, elseSt)
	case *ast.ForStmt:
		for _, h := range []ast.Node{nodeOrNil(s.Init), nodeOrNil(s.Cond), nodeOrNil(s.Post)} {
			if h != nil && st == stHeld && bd.escapes(h, obj) {
				return stDone // escaping use in the loop header
			}
		}
		after := bd.track(s.Body.List, obj, acq, st)
		// The body may run zero times, so a release (or escape) inside it is
		// conditional.
		return joinStatus(st, after)
	case *ast.RangeStmt:
		if st == stHeld && bd.escapes(s.X, obj) {
			return stDone // escaping use in the loop header
		}
		after := bd.track(s.Body.List, obj, acq, st)
		// The body may run zero times, so a release (or escape) inside it is
		// conditional.
		return joinStatus(st, after)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		hasDefault := false
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			clauses = sw.Body.List
		case *ast.SelectStmt:
			clauses = sw.Body.List
		}
		out := stDone
		first := true
		for _, c := range clauses {
			var body []ast.Stmt
			switch c := c.(type) {
			case *ast.CaseClause:
				body = c.Body
				if c.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				body = c.Body
				if c.Comm == nil {
					hasDefault = true
				}
			}
			cs := bd.track(body, obj, acq, st)
			if first {
				out, first = cs, false
			} else {
				out = joinStatus(out, cs)
			}
		}
		if first { // no clauses at all
			return st
		}
		if !hasDefault {
			out = joinStatus(out, st) // the no-case-matched fall-through
		}
		return out
	case *ast.LabeledStmt:
		return bd.trackStmt(s.Stmt, obj, acq, st)
	case *ast.GoStmt:
		if st == stHeld && bd.mentions(s, obj) {
			return stDone // handed to a goroutine: ownership transferred
		}
	}
	if st == stHeld && bd.escapes(s, obj) {
		return stDone
	}
	return st
}

// joinStatus merges the fall-through statuses of sibling branches. A path
// that terminated (returned) contributes stDone and must not mask the other
// branch, so stDone joins transparently.
func joinStatus(a, b bufStatus) bufStatus {
	if a == stDone {
		return b
	}
	if b == stDone {
		return a
	}
	if a == b {
		return a
	}
	return stMaybe
}

// acquisition recognizes `v := GetBuf(n)`, `v := getBuf(n)` and
// `v := pool.Get().(*T)` forms and returns the defined/assigned variable.
func (bd *bufCheck) acquisition(s ast.Stmt) (types.Object, *ast.Ident) {
	as, ok := s.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, nil
	}
	rhs := ast.Unparen(as.Rhs[0])
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = ast.Unparen(ta.X)
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	f := funcOf(bd.pass.TypesInfo, call)
	if f == nil {
		return nil, nil
	}
	if !isAcquireFunc(f) {
		return nil, nil
	}
	obj := bd.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = bd.pass.TypesInfo.Uses[id]
	}
	return obj, id
}

func isAcquireFunc(f *types.Func) bool {
	if f.FullName() == "(*sync.Pool).Get" {
		return true
	}
	name := f.Name()
	return (name == "GetBuf" || name == "getBuf") && f.Type().(*types.Signature).Recv() == nil
}

func isReleaseFunc(f *types.Func) bool {
	if f.FullName() == "(*sync.Pool).Put" {
		return true
	}
	name := f.Name()
	return (name == "PutBuf" || name == "putBuf") && f.Type().(*types.Signature).Recv() == nil
}

// isRelease reports whether call releases obj: a release function with the
// buffer (or its address) among the arguments.
func (bd *bufCheck) isRelease(call *ast.CallExpr, obj types.Object) bool {
	f := funcOf(bd.pass.TypesInfo, call)
	if f == nil || !isReleaseFunc(f) {
		return false
	}
	for _, arg := range call.Args {
		if bd.mentions(arg, obj) {
			return true
		}
	}
	return false
}

// mentions reports whether any identifier under n resolves to obj.
func (bd *bufCheck) mentions(n ast.Node, obj types.Object) bool {
	return firstMention(bd.pass.TypesInfo, n, obj) != token.NoPos
}

func firstMention(info *types.Info, n ast.Node, obj types.Object) token.Pos {
	found := token.NoPos
	ast.Inspect(n, func(x ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && info.Uses[id] == obj {
			found = id.Pos()
			return false
		}
		return true
	})
	return found
}

// escapes reports whether n contains a use of obj that may communicate the
// buffer outside the function: an argument to a non-builtin, non-release
// call; a value returned, sent, stored into a composite literal, assigned to
// another variable or location; its address taken into such a context; or a
// capture by a function literal. Element reads/writes (buf[i]), len/cap/copy,
// self-append and re-slicing do not escape.
func (bd *bufCheck) escapes(n ast.Node, obj types.Object) bool {
	escaped := false
	ast.Inspect(n, func(x ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok || bd.pass.TypesInfo.Uses[id] != obj {
			return true
		}
		if bd.identEscapes(id, obj) {
			escaped = true
		}
		return true
	})
	return escaped
}

// identEscapes climbs from one mention of the buffer to classify its context.
func (bd *bufCheck) identEscapes(id *ast.Ident, obj types.Object) bool {
	// A mention anywhere inside a nested function literal is a capture:
	// ownership is shared with the closure regardless of what the closure
	// does with it (even a release — the closure may run much later).
	for n := bd.parents[ast.Node(id)]; n != nil; n = bd.parents[n] {
		if _, ok := n.(*ast.FuncLit); ok {
			return true
		}
	}
	var cur ast.Node = id
	for {
		parent := bd.parents[cur]
		if parent == nil {
			return false
		}
		switch p := parent.(type) {
		case *ast.ParenExpr:
			cur = p
		case *ast.IndexExpr:
			if p.X == cur {
				return false // element access: bytes copy by value
			}
			return false // used as an index: no aliasing
		case *ast.SliceExpr:
			if p.X == cur {
				cur = p // the sub-slice aliases the buffer; its fate decides
				continue
			}
			return false // used as a bound
		case *ast.StarExpr:
			cur = p // *p of a *[]byte box: the slice aliases the pool box
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				cur = p // &buf: the pointer's fate decides
				continue
			}
			return false
		case *ast.BinaryExpr:
			return false // only nil-comparisons type-check for slices
		case *ast.CallExpr:
			if cur == p.Fun {
				return false
			}
			return bd.callArgEscapes(p, cur)
		case *ast.KeyValueExpr:
			if p.Value == cur {
				cur = p
				continue
			}
			return false
		case *ast.CompositeLit:
			return true // stored into a value that outlives the expression
		case *ast.ReturnStmt:
			return true
		case *ast.SendStmt:
			return p.Value == cur
		case *ast.FuncLit:
			return true // captured by a closure
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == cur {
					return false // buf[i] = x / buf = ... handled at stmt level
				}
			}
			// On the RHS: aliased into another variable or location unless it
			// is the tracked variable's own reassignment (handled by the
			// statement walk before escapes is consulted).
			return true
		case *ast.RangeStmt:
			return false // for i := range buf
		case *ast.IncDecStmt, *ast.ExprStmt, *ast.IfStmt, *ast.ForStmt,
			*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.CaseClause, *ast.BlockStmt,
			*ast.DeferStmt, *ast.GoStmt, *ast.LabeledStmt, *ast.SelectStmt,
			*ast.CommClause, *ast.DeclStmt:
			return false // expression consumed by a statement: no aliasing left
		case *ast.TypeAssertExpr:
			cur = p
		default:
			// Unknown context: assume the worst so tracking ends rather than
			// misreporting downstream.
			return true
		}
	}
}

// nodeOrNil lifts a possibly-nil concrete AST node into a comparable ast.Node.
func nodeOrNil[T ast.Node](n T) ast.Node {
	var zero T
	if any(n) == any(zero) {
		return nil
	}
	return n
}

// reassignsOnly reports whether every mention of obj in s sits in a plain
// assignment-target position (the name is being rebound, not the buffer
// used).
func (bd *bufCheck) reassignsOnly(s ast.Stmt, obj types.Object) bool {
	as, ok := s.(*ast.AssignStmt)
	if !ok {
		return false
	}
	lhsIdents := map[*ast.Ident]bool{}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			lhsIdents[id] = true
		}
	}
	only := true
	ast.Inspect(as, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && bd.pass.TypesInfo.Uses[id] == obj && !lhsIdents[id] {
			only = false
		}
		return only
	})
	return only
}

// callArgEscapes classifies the buffer appearing as argument arg of call.
func (bd *bufCheck) callArgEscapes(call *ast.CallExpr, arg ast.Node) bool {
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isUniverse(bd.pass.TypesInfo, fun) {
		switch fun.Name {
		case "len", "cap", "copy", "clear", "min", "max", "string":
			return false // reads or copies element bytes; no aliasing
		case "append":
			// append(buf, ...) re-derives buf (handled as reassignment);
			// append(dst, buf...) copies elements out. Only append(dst, buf)
			// — storing the slice header itself — aliases.
			if len(call.Args) > 0 && call.Args[0] == arg {
				return false
			}
			return !(call.Ellipsis != token.NoPos && len(call.Args) > 0 && call.Args[len(call.Args)-1] == arg)
		}
	}
	if f := funcOf(bd.pass.TypesInfo, call); f != nil && isReleaseFunc(f) {
		return false // releases are recognized by the statement walk
	}
	return true
}

func isUniverse(info *types.Info, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	return obj.Parent() == types.Universe
}

// selfDerived reports whether expr derives from obj alone through
// append/re-slice/index — the idioms that keep ownership with the same
// variable (`buf = append(buf, b)`, `buf = buf[:n]`).
func selfDerived(info *types.Info, expr ast.Expr, obj types.Object) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[e] == obj
	case *ast.SliceExpr:
		return selfDerived(info, e.X, obj)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && isUniverse(info, id) {
			return len(e.Args) > 0 && selfDerived(info, e.Args[0], obj)
		}
	}
	return false
}
