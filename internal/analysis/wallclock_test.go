package analysis_test

import (
	"testing"

	"garfield/internal/analysis"
	"garfield/internal/analysis/analysistest"
)

func TestWallclockFixtures(t *testing.T) {
	// Type-check the fixture under an in-scope package path: every listed
	// clock read must be reported, the allow hatch must suppress, and an
	// empty or mis-targeted allow must not.
	analysistest.Run(t, analysis.Wallclock, "testdata/wallclock", "garfield/internal/core")
}

func TestWallclockOutOfScope(t *testing.T) {
	// The same clock reads under a non-deterministic package path are legal.
	analysistest.RunExpectClean(t, analysis.Wallclock, "testdata/wallclock_outofscope", "garfield/internal/experiments")
}
