// Package analysis is the repo's static-analysis layer: a small, dependency-free
// go/analysis-style framework plus four analyzers that turn the codebase's
// hardest-won runtime invariants into compile-time errors.
//
// The four analyzers, each grounded in a contract a runtime regression already
// defends:
//
//   - wallclock: forbids direct wall-clock reads (time.Now, time.Sleep,
//     time.After, ...) in the deterministic packages reachable from protocol
//     runners and the discrete-event simulator. The runtime counterpart is the
//     TestSimHostLoadIndependent audit; the analyzer catches the violation at
//     build time on every path, exercised or not.
//
//   - seededrand: forbids the global math/rand source and wall-clock-seeded
//     generators everywhere in the module. Randomness must flow through
//     injected seeded streams (the SplitMix64 / FNV domain-separation pattern
//     used throughout core, scenario and transport). The runtime counterpart
//     is TestAttackSeedDomainSeparated.
//
//   - bufdiscipline: a flow-sensitive check that every pooled-buffer
//     acquisition (compress.GetBuf, the rpc wire-buffer pool, raw sync.Pool)
//     is released on every non-escaping path and never referenced after
//     release. The runtime counterpart is the zero-alloc steady-state bench
//     suite — which only notices a leak as a slow drift in allocation counts.
//
//   - detorder: flags iteration over maps whose results feed ordered outputs
//     (slice appends, writer calls, channel sends) in deterministic-mode
//     packages — the class of bug behind the canonical-reply-ordering work in
//     the scenario engine's bit-identical artifact contract.
//
// Every analyzer honors a single escape hatch: a comment of the form
//
//	//lint:allow <analyzer>(<reason>)
//
// on the offending line or the line directly above it suppresses the
// diagnostic. The reason is mandatory — an empty reason does not suppress —
// so every exemption in the tree documents why the invariant does not apply.
//
// The framework half of the package (Analyzer, Pass, Load, RunAnalyzers,
// VetUnit) deliberately mirrors the golang.org/x/tools/go/analysis API shape,
// but is built only on the standard library: packages are enumerated and
// type-checked via `go list -export` export data, and cmd/garfield-lint
// speaks the `go vet -vettool` unit-checker protocol directly. See
// TESTING.md, "Static analysis layer".
package analysis
