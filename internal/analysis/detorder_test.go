package analysis_test

import (
	"testing"

	"garfield/internal/analysis"
	"garfield/internal/analysis/analysistest"
)

func TestDetOrderFixtures(t *testing.T) {
	analysistest.Run(t, analysis.DetOrder, "testdata/detorder", "garfield/internal/scenario")
}

func TestDetOrderOutOfScope(t *testing.T) {
	// Human-facing CLIs may print maps in iteration order.
	analysistest.RunExpectClean(t, analysis.DetOrder, "testdata/detorder_outofscope", "garfield/internal/experiments")
}
