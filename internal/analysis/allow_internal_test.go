package analysis

import "testing"

// The allow hatch is load-bearing: a regex that accepts an empty reason would
// let unexplained suppressions into the tree, and one that rejects valid forms
// would push people toward disabling the linter. Pin both edges.
func TestAllowCommentGrammar(t *testing.T) {
	accept := []string{
		"//lint:allow wallclock(live clock seam)",
		"// lint:allow bufdiscipline(retained by the frame cache)",
		"//lint:allow detorder(consumer is order-free)  ",
		"//lint:allow seededrand(reason; punctuation, numbers 123 — fine)",
	}
	for _, c := range accept {
		if m := allowRE.FindStringSubmatch(c); m == nil {
			t.Errorf("allowRE rejected well-formed comment %q", c)
		}
	}
	reject := []string{
		"//lint:allow wallclock()",          // empty reason
		"//lint:allow wallclock(   )",       // whitespace-only reason
		"//lint:allow wallclock",            // no reason at all
		"//lint:allow (missing analyzer)",   // no analyzer name
		"// nolint:allow wallclock(reason)", // wrong directive
		"//lint:allow wallclock(reason) trailing words",
	}
	for _, c := range reject {
		if m := allowRE.FindStringSubmatch(c); m != nil {
			t.Errorf("allowRE accepted malformed comment %q as %v", c, m)
		}
	}
}
