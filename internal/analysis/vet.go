package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// importerFunc adapts a function to types.Importer (the import-map
// translation layer over the export-data importer).
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// This file implements the `go vet -vettool` unit-checker protocol from the
// standard library alone (the role golang.org/x/tools/go/analysis/unitchecker
// plays in the official framework), so `go vet
// -vettool=$(which garfield-lint) ./...` runs the custom analyzers with
// cmd/go's caching and package graph. The protocol, per
// cmd/go/internal/work.(*Builder).vet:
//
//  1. `tool -V=full` must print "<name> version devel ... buildID=<id>"; the
//     id keys cmd/go's action cache, so it must change when the tool does —
//     we hash the executable.
//  2. For each package, cmd/go invokes `tool [flags] <objdir>/vet.cfg` in the
//     package directory. The cfg JSON names the sources, the import map and
//     the export-data file of every dependency.
//  3. The tool writes cfg.VetxOutput (analysis facts; ours are empty), prints
//     diagnostics to stderr, and exits nonzero if it found any.
//
// Dependency packages are vetted with VetxOnly=true purely to collect facts;
// since these analyzers are fact-free, those invocations short-circuit.

// vetConfig mirrors cmd/go's vetConfig JSON (the fields this tool consumes).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	NonGoFiles  []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// VetUnit runs analyzers over the single compilation unit described by the
// vet config file at cfgPath, printing diagnostics to stderr. The returned
// exit code follows unitchecker's convention: 0 clean, 1 tool failure, 2
// diagnostics reported.
func VetUnit(analyzers []*Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "garfield-lint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "garfield-lint: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}
	// Facts first: cmd/go caches the vetx output file even for failed runs,
	// and dependency-only (VetxOnly) invocations need nothing else.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "garfield-lint: writing vetx output: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "garfield-lint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	imp := ExportImporter(fset, exports)
	lookup := func(path string) string {
		if mapped, ok := cfg.ImportMap[path]; ok {
			return mapped
		}
		return path
	}
	pkg, info, err := Check(fset, cfg.ImportPath, files, importerFunc(func(path string) (*types.Package, error) {
		return imp.Import(lookup(path))
	}))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "garfield-lint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := RunAnalyzers(fset, files, pkg, info, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "garfield-lint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// PrintVersion emits the -V=full line cmd/go's toolID parser expects,
// content-addressed by the executable so analyzer changes invalidate vet's
// action cache.
func PrintVersion(w io.Writer, progname string) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Fprintf(w, "%s version devel buildID=%s\n", progname, id)
}

// IsVetCfg reports whether arg names a vet config file — the tail argument
// cmd/go passes in vettool mode.
func IsVetCfg(arg string) bool { return strings.HasSuffix(arg, ".cfg") }
