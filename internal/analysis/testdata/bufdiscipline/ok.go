// The legal side of the bufdiscipline contract: straight-line release,
// deferred release, branch-complete release, ownership transfers, and the
// conservative cases the analyzer deliberately stays silent on.
package fixture

import "sync"

// Straight-line acquire → use → release.
func okStraightLine(n int) int {
	buf := GetBuf(n)
	buf = append(buf, make([]byte, n)...)
	total := len(buf) + cap(buf)
	PutBuf(buf)
	return total
}

// Deferred release covers every path, early returns included.
func okDeferred(n int, fail bool) error {
	buf := GetBuf(n)
	defer PutBuf(buf)
	if fail {
		return errFixture
	}
	buf = append(buf, 1)
	return nil
}

// Released in both branches: complete.
func okBothBranches(n int, big bool) {
	buf := GetBuf(n)
	if big {
		buf = append(buf, 1)
		PutBuf(buf)
	} else {
		PutBuf(buf)
	}
}

// Returning the buffer transfers ownership to the caller (the GetBuf shape
// itself).
func okEscapeReturn(n int) []byte {
	buf := GetBuf(n)
	buf = append(buf, 9)
	return buf
}

// Storing into a struct transfers ownership (the Response.Payload shape: the
// serving loop releases it after the frame is written).
func okEscapeStruct(n int) envelope {
	buf := GetBuf(n)
	return envelope{payload: buf}
}

// Passing to another function transfers ownership as far as an
// intraprocedural analysis can know.
func okEscapeCall(n int) {
	buf := GetBuf(n)
	process(buf)
}

// Handing to a goroutine transfers ownership.
func okEscapeGo(n int) {
	buf := GetBuf(n)
	go process(buf)
}

// Captured by a closure: ownership is shared with the closure.
func okEscapeClosure(n int) func() {
	buf := GetBuf(n)
	return func() { PutBuf(buf) }
}

// Element access, len/cap/copy and re-slicing are plain uses, not escapes —
// the release is still required (and present).
func okLocalUses(n int) byte {
	buf := GetBuf(n)
	buf = buf[:cap(buf)]
	if len(buf) == 0 {
		PutBuf(buf)
		return 0
	}
	buf[0] = 42
	dst := make([]byte, len(buf))
	copy(dst, buf)
	first := buf[0]
	PutBuf(buf)
	return first + dst[0]
}

// Released on one path only: the analyzer is optimistic at joins (the other
// path may release later, as here) and stays silent rather than guessing.
func okMaybeRelease(n int, early bool) {
	buf := GetBuf(n)
	if early {
		PutBuf(buf)
	}
	if !early {
		PutBuf(buf)
	}
}

// Acquire and release per loop iteration.
func okPerIteration(rounds, n int) {
	for i := 0; i < rounds; i++ {
		buf := GetBuf(n)
		buf = append(buf, byte(i))
		PutBuf(buf)
	}
}

// Rebinding after a release starts a fresh tracked acquisition, not a
// use-after-release.
func okRebind(n int) {
	buf := GetBuf(n)
	PutBuf(buf)
	buf = GetBuf(2 * n)
	PutBuf(buf)
}

// The sync.Pool happy path, boxed-pointer style (the rpc wire-buffer pool
// shape).
func okSyncPool(pool *sync.Pool, n int) int {
	box := pool.Get().(*[]byte)
	if cap(*box) < n {
		*box = make([]byte, n)
	}
	*box = (*box)[:n]
	size := len(*box)
	pool.Put(box)
	return size
}

// The escape hatch: a justified allowance on the acquisition suppresses a
// leak report (e.g. a buffer intentionally retained in a cache).
func okAllowed(n int) int {
	buf := GetBuf(n) //lint:allow bufdiscipline(fixture: retained beyond this call by design)
	return cap(buf)
}
