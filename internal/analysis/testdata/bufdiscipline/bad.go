// Fixture for the bufdiscipline analyzer (module-wide scope). GetBuf/PutBuf
// stand in for the repo's pooled-buffer pairs (compress.GetBuf/PutBuf, the
// rpc wire-buffer pool); the analyzer matches acquire/release functions by
// name and (*sync.Pool).Get/Put by method identity, so local stubs exercise
// the same code paths the real pools do.
package fixture

import "sync"

func GetBuf(n int) []byte { return make([]byte, 0, n) }

func PutBuf(b []byte) {}

func process(b []byte) {}

type envelope struct{ payload []byte }

// Never released, never escaping: reported at the acquisition.
func leakForgotten(n int) {
	buf := GetBuf(n) // want "never released"
	buf = append(buf, 1, 2, 3)
	_ = len(buf)
}

// A return that only reads the buffer does not transfer ownership; the
// missing release is reported on that path.
func leakAtReturn(n int) int {
	buf := GetBuf(n)
	return len(buf) // want "not released on this return path"
}

// Released on the happy path but leaked on the early error return.
func leakEarlyReturn(n int, fail bool) error {
	buf := GetBuf(n)
	if fail {
		return errFixture // want "not released on this return path"
	}
	buf = append(buf, 0)
	PutBuf(buf)
	return nil
}

// Referenced after release: the pool may already have re-issued it.
func useAfterRelease(n int) byte {
	buf := GetBuf(n)
	buf = append(buf, 7)
	PutBuf(buf)
	return buf[0] // want "used after release"
}

// A second release is a use-after-release too.
func doubleRelease(n int) {
	buf := GetBuf(n)
	PutBuf(buf)
	PutBuf(buf) // want "used after release"
}

// Raw sync.Pool acquisitions follow the same discipline.
func leakSyncPool(pool *sync.Pool, fail bool) error {
	box := pool.Get().(*[]byte)
	if fail {
		return errFixture // want "not released on this return path"
	}
	pool.Put(box)
	return nil
}

var errFixture error
