// The same host-clock reads as the wallclock fixture, type-checked under a
// package path OUTSIDE the analyzer's scope (the experiments harness measures
// real wall time on purpose): nothing may be reported.
package fixture

import "time"

func measure() time.Duration {
	t0 := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(t0)
}
