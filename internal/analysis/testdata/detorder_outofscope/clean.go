// The same map-order leak as the detorder fixture, type-checked under a
// package path outside the deterministic scope (a CLI printing a human
// report): nothing may be reported.
package fixture

import (
	"fmt"
	"io"
)

func report(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
