// Fixture for the wallclock analyzer, type-checked under an in-scope package
// path (garfield/internal/core). Every forbidden host-clock read is seeded
// with a want; pure time arithmetic must stay silent; the //lint:allow hatch
// must suppress.
package fixture

import "time"

// Injected clock stand-in: the sanctioned pattern.
type clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

func violations(ch chan<- time.Time) time.Duration {
	t0 := time.Now()             // want "time.Now reads the host clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the host clock"
	elapsed := time.Since(t0)    // want "time.Since reads the host clock"
	select {
	case tick := <-time.After(time.Second): // want "time.After reads the host clock"
		ch <- tick
	default:
	}
	timer := time.NewTimer(elapsed) // want "time.NewTimer reads the host clock"
	timer.Stop()
	return elapsed
}

// A method-value reference launders the read through a variable; the
// analyzer flags uses, not just calls.
func laundered() time.Time {
	read := time.Now // want "time.Now reads the host clock"
	return read()
}

// Pure time arithmetic and construction never touch the host clock.
func pure(c clock) time.Time {
	base := time.Unix(0, 0)
	c.Sleep(3 * time.Second)
	return base.Add(2 * time.Hour).Truncate(time.Minute)
}

// The escape hatch: a justified allowance on the offending line suppresses.
func sanctioned() time.Time {
	return time.Now() //lint:allow wallclock(fixture: the one sanctioned wall-time source)
}

// An allowance on the line above the offending one also suppresses.
func sanctionedAbove() {
	//lint:allow wallclock(fixture: liveness pacing only)
	time.Sleep(time.Millisecond)
}

// An allowance with an empty reason does NOT suppress: justifications are
// mandatory.
func unjustified() time.Time {
	//lint:allow wallclock()
	return time.Now() // want "time.Now reads the host clock"
}

// An allowance for a different analyzer does not suppress this one.
func wrongAnalyzer() time.Time {
	//lint:allow detorder(wrong hatch)
	return time.Now() // want "time.Now reads the host clock"
}
