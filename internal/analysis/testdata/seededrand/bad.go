// Fixture for the seededrand analyzer (module-wide scope): the process-global
// math/rand source and wall-clock-seeded generators are forbidden; explicitly
// seeded streams are the sanctioned pattern.
package fixture

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func globalSource() float64 {
	n := rand.Intn(10)                                          // want "rand.Intn draws from the process-global source"
	x := rand.Float64()                                         // want "rand.Float64 draws from the process-global source"
	p := rand.Perm(4)                                           // want "rand.Perm draws from the process-global source"
	rand.Shuffle(4, func(i, j int) { p[i], p[j] = p[j], p[i] }) // want "rand.Shuffle draws from the process-global source"
	return x + float64(n+p[0])
}

func globalSourceV2() int {
	return randv2.IntN(10) // want "rand.IntN draws from the process-global source"
}

// A function value laundering the global source is still a use.
func laundered() func() int64 {
	return rand.Int63 // want "rand.Int63 draws from the process-global source"
}

func clockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "RNG seeded from the wall clock"
}

func clockSeededDirect() rand.Source {
	return rand.NewSource(time.Now().Unix()) // want "RNG seeded from the wall clock"
}

// The sanctioned pattern: seeds flow in from configuration; draws go through
// the injected stream.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64() // methods on an injected *rand.Rand are fine
}

func seededV2(seed uint64) uint64 {
	return randv2.New(randv2.NewPCG(seed, 1)).Uint64()
}

// The escape hatch with a justification suppresses.
func sanctioned() int {
	return rand.Intn(6) //lint:allow seededrand(fixture: demo code outside any reproducibility contract)
}
