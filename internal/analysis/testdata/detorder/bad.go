// Fixture for the detorder analyzer, type-checked under an in-scope package
// path. Map ranges feeding ordered outputs are seeded violations; the
// collect-then-sort idiom and order-free aggregations must stay silent.
package fixture

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
)

// Appending map keys into a slice that escapes the loop unsorted: the
// classic per-run shuffle.
func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "append to \"keys\" escapes the loop unsorted"
		keys = append(keys, k)
	}
	return keys
}

// Writing rows straight out of map iteration: CSV-shuffle.
func rowsUnsorted(w io.Writer, m map[string]float64) {
	for k, v := range m { // want "Fprintf inside the loop body"
		fmt.Fprintf(w, "%s,%g\n", k, v)
	}
}

// Hashing map-ordered input is as run-dependent as printing it.
func digestUnsorted(m map[string][]byte) uint64 {
	h := fnv.New64a()
	for _, v := range m { // want "Write inside the loop body"
		h.Write(v)
	}
	return h.Sum64()
}

// Sending per-key work into a channel fixes downstream order to map order.
func fanOutUnsorted(m map[string]int, ch chan string) {
	for k := range m { // want "channel send inside the loop body"
		ch <- k
	}
}

// The canonical fix: collect, sort, then emit — silent.
func keysSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Order-free aggregation over a map is fine.
func sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

// Rebuilding one map from another is order-free.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Loop-local accumulation dies with the iteration: no ordered output
// escapes.
func perKeyScratch(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// Ranging over a slice is always ordered; nothing to report.
func sliceRange(xs []string, w io.Writer) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}

// The escape hatch with a justification suppresses.
func sanctioned(m map[string]int, ch chan string) {
	//lint:allow detorder(fixture: consumer is an order-free set accumulator)
	for k := range m {
		ch <- k
	}
}
