// Package analysistest runs one analyzer over a directory of fixture sources
// and asserts its diagnostics against `// want "substring"` comments — the
// same contract as golang.org/x/tools/go/analysis/analysistest, rebuilt on
// the standard library so the analyzer suite stays dependency-free.
//
// Fixture conventions:
//
//   - Every line expected to produce a diagnostic carries a comment
//     `// want "substr"` (several quoted fragments assert several
//     diagnostics). The fragment is matched as a substring of the message.
//   - Lines carrying a well-formed //lint:allow comment assert the OPPOSITE:
//     the harness fails if a diagnostic survives there, proving the escape
//     hatch works. Seeded violations and annotated allowances therefore live
//     side by side in the same fixture.
//   - The package path the fixture is checked under is chosen by the caller,
//     which is how scope-restricted analyzers (wallclock, detorder) are
//     exercised both inside and outside their scope from one corpus.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"garfield/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run checks the fixture directory under pkgPath with analyzer a and asserts
// the diagnostics match the fixture's want comments exactly.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	files, sources, err := parseFixtures(fset, dir)
	if err != nil {
		t.Fatal(err)
	}
	imports := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatalf("unquoting import %s: %v", imp.Path.Value, err)
			}
			imports[path] = true
		}
	}
	var patterns []string
	for p := range imports {
		patterns = append(patterns, p)
	}
	exports := map[string]string{}
	if len(patterns) > 0 {
		exports, err = analysis.LoadExports(".", patterns...)
		if err != nil {
			t.Fatal(err)
		}
	}
	pkg, info, err := analysis.Check(fset, pkgPath, files, analysis.ExportImporter(fset, exports))
	if err != nil {
		t.Fatalf("type-checking fixtures in %s: %v", dir, err)
	}
	diags, err := analysis.RunAnalyzers(fset, files, pkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]string{}
	for file, src := range sources {
		for i, line := range strings.Split(src, "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			k := key{file, i + 1}
			for _, q := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
				want, err := strconv.Unquote(`"` + q[1] + `"`)
				if err != nil {
					t.Fatalf("%s:%d: bad want fragment %q: %v", file, i+1, q[1], err)
				}
				wants[k] = append(wants[k], want)
			}
			if len(wants[k]) == 0 {
				t.Fatalf("%s:%d: want comment with no quoted fragments", file, i+1)
			}
		}
	}

	allowed := analysis.AllowedLines(fset, files, a.Name)
	for _, d := range diags {
		k := key{d.Position.Filename, d.Position.Line}
		if allowed[k.file][k.line] || allowed[k.file][k.line-1] {
			t.Errorf("%s: diagnostic survived a //lint:allow comment: %s", d.Position, d.Message)
			continue
		}
		idx := -1
		for i, w := range wants[k] {
			if strings.Contains(d.Message, w) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", d.Position, d.Message)
			continue
		}
		wants[k] = append(wants[k][:idx], wants[k][idx+1:]...)
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w)
		}
	}
}

// RunExpectClean asserts the analyzer reports nothing for the fixture
// directory under pkgPath — the out-of-scope half of a scoped analyzer's
// contract.
func RunExpectClean(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	files, _, err := parseFixtures(fset, dir)
	if err != nil {
		t.Fatal(err)
	}
	imports := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[path] = true
			}
		}
	}
	var patterns []string
	for p := range imports {
		patterns = append(patterns, p)
	}
	exports := map[string]string{}
	if len(patterns) > 0 {
		exports, err = analysis.LoadExports(".", patterns...)
		if err != nil {
			t.Fatal(err)
		}
	}
	pkg, info, err := analysis.Check(fset, pkgPath, files, analysis.ExportImporter(fset, exports))
	if err != nil {
		t.Fatalf("type-checking fixtures in %s: %v", dir, err)
	}
	diags, err := analysis.RunAnalyzers(fset, files, pkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: unexpected diagnostic outside analyzer scope: %s", d.Position, d.Message)
	}
}

func parseFixtures(fset *token.FileSet, dir string) ([]*ast.File, map[string]string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, nil, err
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("no fixture sources in %s", dir)
	}
	var files []*ast.File
	sources := map[string]string{}
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, nil, err
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("parsing fixture %s: %v", name, err)
		}
		files = append(files, f)
		sources[name] = string(src)
	}
	return files, sources, nil
}
