package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. The API shape deliberately mirrors
// golang.org/x/tools/go/analysis so the checks could migrate to the official
// framework wholesale if the dependency ever becomes available; until then
// the driver in this package supplies loading, suppression and the vettool
// protocol from the standard library alone.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow <name>(reason) suppression comments.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run reports violations against one type-checked package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // all syntax, test files included (filtered at report time)
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation, position-resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, SeededRand, BufDiscipline, DetOrder}
}

// RunAnalyzers applies analyzers to one type-checked package and returns the
// surviving diagnostics: suppressed ones (//lint:allow on the offending or
// preceding line, non-empty reason) and any landing in _test.go files are
// dropped, and the remainder is sorted by position. This is the single
// reporting path shared by the standalone driver, the vettool protocol and
// the fixture test harness, so suppression semantics cannot drift between
// them.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis %s: %s: %w", a.Name, pkg.Path(), err)
		}
	}
	allows := buildAllowIndex(fset, files)
	kept := diags[:0]
	for _, d := range diags {
		if strings.HasSuffix(d.Position.Filename, "_test.go") {
			continue // runtime tests legitimately touch wall clocks and raw RNGs
		}
		if allows.suppresses(d) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Position, kept[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// inScope reports whether a package path falls under any of the listed
// package-path prefixes (exact match or a "/"-separated child).
func inScope(pkgPath string, scope []string) bool {
	for _, s := range scope {
		if pkgPath == s || strings.HasPrefix(pkgPath, s+"/") {
			return true
		}
	}
	return false
}

// funcOf resolves a call's callee to its package-level *types.Func (methods
// included), or nil for builtins, conversions, function-typed variables and
// anything else without a named callee.
func funcOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}
