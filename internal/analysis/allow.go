package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
)

// The one escape hatch every analyzer honors:
//
//	//lint:allow <analyzer>(<reason>)
//
// placed on the offending line or the line directly above it. The reason is
// mandatory: an allow with an empty reason suppresses nothing, so every
// exemption in the tree states why the invariant does not apply at that site.
// (This mirrors the repo's runtime posture — escape hatches exist, e.g.
// scenario's LiveWorkerAttack, but each one carries its justification.)
var allowRE = regexp.MustCompile(`^//\s*lint:allow\s+([a-zA-Z][a-zA-Z0-9_]*)\(([^)]*[^)\s][^)]*)\)\s*$`)

// allowIndex maps file → line → analyzer names allowed on that line.
type allowIndex map[string]map[int]map[string]bool

func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := allowIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					idx[pos.Filename] = byLine
				}
				names := byLine[pos.Line]
				if names == nil {
					names = map[string]bool{}
					byLine[pos.Line] = names
				}
				names[m[1]] = true
			}
		}
	}
	return idx
}

// suppresses reports whether d is covered by an allow comment on its own line
// or the line directly above.
func (idx allowIndex) suppresses(d Diagnostic) bool {
	byLine := idx[d.Position.Filename]
	if byLine == nil {
		return false
	}
	return byLine[d.Position.Line][d.Analyzer] || byLine[d.Position.Line-1][d.Analyzer]
}

// AllowedLines is exposed for the fixture harness: it reports, per file, the
// lines carrying a well-formed allow comment for the named analyzer.
func AllowedLines(fset *token.FileSet, files []*ast.File, analyzer string) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for file, byLine := range buildAllowIndex(fset, files) {
		for line, names := range byLine {
			if names[analyzer] {
				if out[file] == nil {
					out[file] = map[int]bool{}
				}
				out[file][line] = true
			}
		}
	}
	return out
}
