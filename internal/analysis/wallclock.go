package analysis

import (
	"go/ast"
)

// WallclockScope lists the package-path prefixes where wall-clock reads are
// forbidden: everything reachable from protocol runners and the discrete-event
// simulator, where a stray time.Now would leak host time into runs whose every
// timestamp must be a pure function of the seed (the contract the
// TestSimHostLoadIndependent regression audits at runtime). Packages outside
// the scope — the CLIs, the controller, the experiments harness — measure
// real wall time on purpose and are not checked.
var WallclockScope = []string{
	"garfield/internal/core",
	"garfield/internal/sim",
	"garfield/internal/gar",
	"garfield/internal/rpc",
}

// wallclockForbidden is the set of time-package functions that read or wait on
// the host clock. Pure constructors and arithmetic (time.Duration, time.Unix,
// t.Add, ...) stay legal: the invariant is about where time *comes from*, not
// about the time types.
var wallclockForbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Wallclock forbids direct host-clock access in deterministic packages. Time
// must be injected through core.Clock (live wiring: the wall clock; simulator:
// the virtual clock), so that simulated runs stay bit-identical under any host
// load. The check flags every *use* of a forbidden time function — calls and
// method-value references alike — so a `f := time.Now; f()` laundering does
// not slip through.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Sleep/After/... in deterministic packages; " +
		"inject core.Clock instead (escape hatch: //lint:allow wallclock(reason))",
	Run: runWallclock,
}

func runWallclock(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), WallclockScope) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || !wallclockForbidden[id.Name] {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || !isPkgFunc(obj, "time", id.Name) {
				return true
			}
			pass.Reportf(id.Pos(),
				"time.%s reads the host clock in deterministic package %s; thread core.Clock through instead",
				id.Name, pass.Pkg.Path())
			return true
		})
	}
	return nil
}
