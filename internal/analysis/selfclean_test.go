package analysis_test

import (
	"testing"

	"garfield/internal/analysis"
)

// TestTreeIsLintClean is the tree-clean gate as a test: the whole module must
// pass every analyzer with zero unsuppressed diagnostics, exactly as
// `garfield-lint ./...` and the CI lint job demand. A failure here means a
// regression slipped in (or an analyzer grew a false positive — either way it
// blocks).
func TestTreeIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module; skipped in -short")
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages")
	}
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analysis.All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
