package controller

import (
	"context"
	"fmt"
	"io"
	"os/exec"
	"sync"
	"time"
)

// Launcher runs a manifest's node commands as local child processes — the
// single-machine counterpart of the paper's SSH deployment. Workers are
// started first (they serve passively), then servers; the launcher waits for
// the servers to exit and then terminates the workers.
type Launcher struct {
	// Binary is the garfield-node executable path.
	Binary string
	// Stdout and Stderr receive the children's combined output.
	Stdout io.Writer
	Stderr io.Writer
	// StartupDelay is how long to wait after starting the workers before
	// starting the servers (lets listeners come up).
	StartupDelay time.Duration
}

// syncWriter serializes writes from concurrently-running child processes;
// handing several exec.Cmds the same raw writer would race.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	if s.w == nil {
		return len(p), nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// Run deploys the manifest and blocks until the server processes finish or
// the context is cancelled. Worker processes are killed on return.
func (l *Launcher) Run(ctx context.Context, m *Manifest) error {
	if l.Binary == "" {
		return fmt.Errorf("%w: launcher needs the garfield-node binary path", ErrManifest)
	}
	stdout := &syncWriter{w: l.Stdout}
	stderr := &syncWriter{w: l.Stderr}
	delay := l.StartupDelay
	if delay == 0 {
		delay = 300 * time.Millisecond
	}
	cmds := m.Commands()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var workers []*exec.Cmd
	stopWorkers := func() {
		for _, w := range workers {
			if w.Process != nil {
				_ = w.Process.Kill()
			}
		}
		for _, w := range workers {
			_ = w.Wait()
		}
	}
	for _, nc := range cmds {
		if nc.Role != "worker" {
			continue
		}
		cmd := exec.CommandContext(runCtx, l.Binary, nc.Args...)
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			stopWorkers()
			return fmt.Errorf("controller: start worker %s: %w", nc.Addr, err)
		}
		workers = append(workers, cmd)
	}
	defer stopWorkers()

	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
		return ctx.Err()
	}

	// Servers and decentralized peers are the processes whose completion
	// ends the deployment; passive workers are killed afterwards.
	var wg sync.WaitGroup
	errs := make(chan error, len(cmds))
	for _, nc := range cmds {
		if nc.Role != "server" && nc.Role != "peer" {
			continue
		}
		nc := nc
		cmd := exec.CommandContext(runCtx, l.Binary, nc.Args...)
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("controller: start server %s: %w", nc.Addr, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cmd.Wait(); err != nil {
				errs <- fmt.Errorf("controller: server %s: %w", nc.Addr, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err // report the first server failure
	}
	return ctx.Err()
}
