// Package controller implements Garfield's Controller module (Section 3.2):
// it parses a cluster manifest — which nodes play which roles, their
// addresses, the experiment parameters — validates it against the chosen
// protocol's resilience requirements, and produces the per-node command
// lines that deploy the cluster. A local launcher runs the whole manifest as
// child processes for single-machine deployments (the paper launches over
// SSH; the command lines this package generates are what one would run on
// each remote host).
package controller

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"garfield/internal/gar"
)

// Manifest describes one cluster deployment, the controller's input.
type Manifest struct {
	// Protocol selects the application: "ssmw", "msmw" or "decentralized".
	// For "decentralized", Workers lists the peer nodes and Servers must
	// be empty (every node plays both roles).
	Protocol string `json:"protocol"`
	// Workers and Servers list node addresses (host:port).
	Workers []string `json:"workers"`
	Servers []string `json:"servers"`
	// FW and FPS are the declared Byzantine counts.
	FW  int `json:"fw"`
	FPS int `json:"fps"`
	// Rule is the gradient GAR; ModelRule the model GAR (default median).
	Rule      string `json:"rule"`
	ModelRule string `json:"modelRule,omitempty"`
	// Iterations, BatchSize, Seed, LR parameterize training.
	Iterations int     `json:"iterations"`
	BatchSize  int     `json:"batchSize"`
	Seed       uint64  `json:"seed"`
	LR         float64 `json:"lr"`
	// Dim/Classes/Train/Test shape the synthetic task every node
	// regenerates locally from the shared seed.
	Dim     int `json:"dim"`
	Classes int `json:"classes"`
	Train   int `json:"train"`
	Test    int `json:"test"`
}

var (
	// ErrManifest reports an invalid manifest.
	ErrManifest = errors.New("controller: invalid manifest")
)

// Parse decodes and validates a JSON manifest.
func Parse(data []byte) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrManifest, err)
	}
	m.applyDefaults()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

func (m *Manifest) applyDefaults() {
	if m.Protocol == "" {
		m.Protocol = "ssmw"
	}
	if m.Rule == "" {
		m.Rule = gar.NameMedian
	}
	if m.ModelRule == "" {
		m.ModelRule = gar.NameMedian
	}
	if m.Iterations == 0 {
		m.Iterations = 100
	}
	if m.BatchSize == 0 {
		m.BatchSize = 32
	}
	if m.LR == 0 {
		m.LR = 0.25
	}
	if m.Dim == 0 {
		m.Dim = 64
	}
	if m.Classes == 0 {
		m.Classes = 10
	}
	if m.Train == 0 {
		m.Train = 4000
	}
	if m.Test == 0 {
		m.Test = 1000
	}
}

// Validate checks the manifest against the protocol's requirements,
// including the GAR resilience preconditions of Section 3.1.
func (m *Manifest) Validate() error {
	switch m.Protocol {
	case "ssmw", "msmw", "decentralized":
	default:
		return fmt.Errorf("%w: protocol %q (want ssmw, msmw or decentralized)", ErrManifest, m.Protocol)
	}
	if len(m.Workers) == 0 {
		return fmt.Errorf("%w: no workers", ErrManifest)
	}
	switch m.Protocol {
	case "decentralized":
		if len(m.Servers) != 0 {
			return fmt.Errorf("%w: decentralized lists peers under workers; servers must be empty", ErrManifest)
		}
		if len(m.Workers) < 2 {
			return fmt.Errorf("%w: decentralized needs >= 2 peers", ErrManifest)
		}
	case "ssmw":
		if len(m.Servers) != 1 {
			return fmt.Errorf("%w: ssmw needs exactly 1 server, got %d", ErrManifest, len(m.Servers))
		}
	case "msmw":
		if len(m.Servers) < 2 {
			return fmt.Errorf("%w: msmw needs >= 2 server replicas", ErrManifest)
		}
	}
	if m.FW < 0 || m.FW >= len(m.Workers) {
		return fmt.Errorf("%w: fw=%d of %d workers", ErrManifest, m.FW, len(m.Workers))
	}
	if m.FPS < 0 || (len(m.Servers) > 0 && m.FPS >= len(m.Servers)) {
		return fmt.Errorf("%w: fps=%d of %d servers", ErrManifest, m.FPS, len(m.Servers))
	}
	if m.Protocol == "decentralized" && m.FPS != 0 {
		return fmt.Errorf("%w: decentralized has no servers; set fps=0", ErrManifest)
	}
	if err := checkAddrs(m.Workers); err != nil {
		return err
	}
	if err := checkAddrs(m.Servers); err != nil {
		return err
	}
	// The gradient GAR must be satisfiable with the quorum the protocol
	// collects: nw (ssmw, synchronous) or nw - fw (msmw and decentralized,
	// asynchronous).
	q := len(m.Workers)
	if m.Protocol != "ssmw" {
		q -= m.FW
	}
	minN, err := gar.MinN(m.Rule, m.FW)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrManifest, err)
	}
	if q < minN {
		return fmt.Errorf("%w: rule %s with fw=%d needs %d inputs, protocol collects %d",
			ErrManifest, m.Rule, m.FW, minN, q)
	}
	if m.Protocol == "msmw" {
		qm := len(m.Servers) - m.FPS
		minM, err := gar.MinN(m.ModelRule, m.FPS)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrManifest, err)
		}
		if qm < minM {
			return fmt.Errorf("%w: model rule %s with fps=%d needs %d inputs, protocol collects %d",
				ErrManifest, m.ModelRule, m.FPS, minM, qm)
		}
	}
	return nil
}

func checkAddrs(addrs []string) error {
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		if !strings.Contains(a, ":") {
			return fmt.Errorf("%w: address %q is not host:port", ErrManifest, a)
		}
		if seen[a] {
			return fmt.Errorf("%w: duplicate address %q", ErrManifest, a)
		}
		seen[a] = true
	}
	return nil
}

// NodeCommand is one process the deployment needs: the garfield-node
// argument vector to run (on the host owning Addr).
type NodeCommand struct {
	// Role is "worker" or "server".
	Role string
	// Addr is the node's listen address.
	Addr string
	// Args is the full garfield-node argument list (excluding the binary
	// name).
	Args []string
}

// Commands expands the manifest into one command per node — the launch plan
// the paper's controller executes over SSH.
func (m *Manifest) Commands() []NodeCommand {
	shared := []string{
		"-nw", strconv.Itoa(len(m.Workers)),
		"-batch", strconv.Itoa(m.BatchSize),
		"-dim", strconv.Itoa(m.Dim),
		"-classes", strconv.Itoa(m.Classes),
		"-train", strconv.Itoa(m.Train),
		"-test", strconv.Itoa(m.Test),
		"-seed", strconv.FormatUint(m.Seed, 10),
	}
	cmds := make([]NodeCommand, 0, len(m.Workers)+len(m.Servers))
	if m.Protocol == "decentralized" {
		for i, addr := range m.Workers {
			args := []string{
				"-role", "peer",
				"-listen", addr,
				"-index", strconv.Itoa(i),
				"-peers", strings.Join(m.Workers, ","),
				"-rule", m.Rule,
				"-model-rule", m.ModelRule,
				"-fw", strconv.Itoa(m.FW),
				"-iterations", strconv.Itoa(m.Iterations),
				"-lr", strconv.FormatFloat(m.LR, 'g', -1, 64),
			}
			args = append(args, shared...)
			cmds = append(cmds, NodeCommand{Role: "peer", Addr: addr, Args: args})
		}
		return cmds
	}
	for i, addr := range m.Workers {
		args := []string{"-role", "worker", "-listen", addr, "-index", strconv.Itoa(i)}
		args = append(args, shared...)
		cmds = append(cmds, NodeCommand{Role: "worker", Addr: addr, Args: args})
	}
	for _, addr := range m.Servers {
		args := []string{
			"-role", "server",
			"-listen", addr,
			"-workers", strings.Join(m.Workers, ","),
			"-rule", m.Rule,
			"-model-rule", m.ModelRule,
			"-fw", strconv.Itoa(m.FW),
			"-fps", strconv.Itoa(m.FPS),
			"-iterations", strconv.Itoa(m.Iterations),
			"-lr", strconv.FormatFloat(m.LR, 'g', -1, 64),
		}
		if m.Protocol == "msmw" {
			args = append(args, "-peers", strings.Join(m.Servers, ","))
		}
		args = append(args, shared...)
		cmds = append(cmds, NodeCommand{Role: "server", Addr: addr, Args: args})
	}
	return cmds
}
