package controller

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func validManifest() string {
	return `{
		"protocol": "msmw",
		"workers": ["h1:7001", "h2:7002", "h3:7003", "h4:7004", "h5:7005"],
		"servers": ["h6:7000", "h7:7000", "h8:7000", "h9:7000"],
		"fw": 1, "fps": 1,
		"rule": "median",
		"iterations": 50,
		"seed": 9
	}`
}

func TestParseValid(t *testing.T) {
	m, err := Parse([]byte(validManifest()))
	if err != nil {
		t.Fatal(err)
	}
	if m.Protocol != "msmw" || len(m.Workers) != 5 || len(m.Servers) != 4 {
		t.Fatalf("manifest = %+v", m)
	}
	// Defaults applied.
	if m.BatchSize != 32 || m.ModelRule != "median" || m.Dim != 64 {
		t.Fatalf("defaults not applied: %+v", m)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	bad := strings.Replace(validManifest(), `"fw": 1`, `"fw": 1, "bogus": 2`, 1)
	if _, err := Parse([]byte(bad)); !errors.Is(err, ErrManifest) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("{")); !errors.Is(err, ErrManifest) {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	base, err := Parse([]byte(validManifest()))
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"bad protocol", func(m *Manifest) { m.Protocol = "p2p" }},
		{"no workers", func(m *Manifest) { m.Workers = nil }},
		{"no servers", func(m *Manifest) { m.Servers = nil }},
		{"ssmw multi server", func(m *Manifest) { m.Protocol = "ssmw" }},
		{"msmw one server", func(m *Manifest) { m.Servers = m.Servers[:1] }},
		{"fw too big", func(m *Manifest) { m.FW = 5 }},
		{"fps too big", func(m *Manifest) { m.FPS = 4 }},
		{"negative fw", func(m *Manifest) { m.FW = -1 }},
		{"bad addr", func(m *Manifest) { m.Workers[0] = "nohostport" }},
		{"dup addr", func(m *Manifest) { m.Workers[1] = m.Workers[0] }},
		{"unknown rule", func(m *Manifest) { m.Rule = "zzz" }},
		{"rule unsatisfiable", func(m *Manifest) { m.Rule = "bulyan" }}, // q=4 < 4f+3=7
		{"model rule unsatisfiable", func(m *Manifest) { m.ModelRule = "krum" }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := *base
			m.Workers = append([]string(nil), base.Workers...)
			m.Servers = append([]string(nil), base.Servers...)
			tt.mutate(&m)
			if err := m.Validate(); !errors.Is(err, ErrManifest) {
				t.Fatalf("err = %v, want ErrManifest", err)
			}
		})
	}
}

func TestValidateSSMWQuorum(t *testing.T) {
	// SSMW collects all nw gradients, so bulyan with fw=1 needs nw >= 7.
	m := &Manifest{
		Protocol: "ssmw",
		Workers:  []string{"a:1", "b:1", "c:1", "d:1", "e:1", "f:1", "g:1"},
		Servers:  []string{"s:1"},
		FW:       1,
		Rule:     "bulyan",
	}
	m.applyDefaults()
	if err := m.Validate(); err != nil {
		t.Fatalf("7-worker bulyan ssmw should validate: %v", err)
	}
	m.Workers = m.Workers[:6]
	if err := m.Validate(); !errors.Is(err, ErrManifest) {
		t.Fatalf("6-worker bulyan ssmw must fail: %v", err)
	}
}

func TestCommands(t *testing.T) {
	m, err := Parse([]byte(validManifest()))
	if err != nil {
		t.Fatal(err)
	}
	cmds := m.Commands()
	if len(cmds) != 9 {
		t.Fatalf("commands = %d, want 9", len(cmds))
	}
	var workers, servers int
	for _, c := range cmds {
		joined := strings.Join(c.Args, " ")
		switch c.Role {
		case "worker":
			workers++
			if !strings.Contains(joined, "-role worker") || !strings.Contains(joined, "-index") {
				t.Fatalf("worker args = %q", joined)
			}
		case "server":
			servers++
			if !strings.Contains(joined, "-role server") {
				t.Fatalf("server args = %q", joined)
			}
			if !strings.Contains(joined, "-peers h6:7000,h7:7000,h8:7000,h9:7000") {
				t.Fatalf("msmw server missing peers: %q", joined)
			}
			if !strings.Contains(joined, "-workers h1:7001,h2:7002,h3:7003,h4:7004,h5:7005") {
				t.Fatalf("server missing workers: %q", joined)
			}
		}
		if !strings.Contains(joined, "-seed 9") {
			t.Fatalf("missing shared seed: %q", joined)
		}
	}
	if workers != 5 || servers != 4 {
		t.Fatalf("workers=%d servers=%d", workers, servers)
	}
}

func TestCommandsSSMWHasNoPeers(t *testing.T) {
	m := &Manifest{
		Protocol: "ssmw",
		Workers:  []string{"a:1", "b:1", "c:1"},
		Servers:  []string{"s:1"},
		Rule:     "median",
		FW:       1,
	}
	m.applyDefaults()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Commands() {
		if c.Role == "server" && strings.Contains(strings.Join(c.Args, " "), "-peers") {
			t.Fatal("ssmw server should not get -peers")
		}
	}
}

func TestLauncherNeedsBinary(t *testing.T) {
	m, err := Parse([]byte(validManifest()))
	if err != nil {
		t.Fatal(err)
	}
	var l Launcher
	if err := l.Run(context.Background(), m); !errors.Is(err, ErrManifest) {
		t.Fatalf("err = %v", err)
	}
}
