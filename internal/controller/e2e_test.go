package controller

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestLauncherEndToEnd builds the real garfield-node binary and deploys a
// complete SSMW cluster as child processes over loopback TCP — the full
// multi-process path of the paper's Controller module.
func TestLauncherEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process deployment skipped in -short mode")
	}
	binary := filepath.Join(t.TempDir(), "garfield-node")
	build := exec.Command("go", "build", "-o", binary, "garfield/cmd/garfield-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build garfield-node: %v\n%s", err, out)
	}

	ports := freeLoopbackPorts(t, 4)
	m := &Manifest{
		Protocol:   "ssmw",
		Workers:    ports[:3],
		Servers:    ports[3:],
		FW:         0,
		Rule:       "median",
		Iterations: 20,
		BatchSize:  16,
		Seed:       21,
		LR:         0.5,
		Dim:        16,
		Classes:    3,
		Train:      400,
		Test:       150,
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	l := Launcher{
		Binary:       binary,
		Stdout:       &out,
		Stderr:       &out,
		StartupDelay: 500 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	if err := l.Run(ctx, m); err != nil {
		t.Fatalf("launcher: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "done: final accuracy") {
		t.Fatalf("server never finished:\n%s", out.String())
	}
}

func freeLoopbackPorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", l.Addr().(*net.TCPAddr).Port)
	}
	for _, l := range listeners {
		_ = l.Close()
	}
	return addrs
}
