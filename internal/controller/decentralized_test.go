package controller

import (
	"errors"
	"strings"
	"testing"
)

func decentralizedManifest() *Manifest {
	m := &Manifest{
		Protocol: "decentralized",
		Workers:  []string{"a:1", "b:1", "c:1", "d:1", "e:1"},
		FW:       1,
		Rule:     "median",
	}
	m.applyDefaults()
	return m
}

func TestDecentralizedManifestValidates(t *testing.T) {
	m := decentralizedManifest()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDecentralizedManifestErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"servers present", func(m *Manifest) { m.Servers = []string{"s:1"} }},
		{"one peer", func(m *Manifest) { m.Workers = m.Workers[:1] }},
		{"fps nonzero", func(m *Manifest) { m.FPS = 1 }},
		{"quorum unsatisfiable", func(m *Manifest) { m.FW = 2 }}, // q = 3 < 2f+1 = 5
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := decentralizedManifest()
			tt.mutate(m)
			if err := m.Validate(); !errors.Is(err, ErrManifest) {
				t.Fatalf("err = %v, want ErrManifest", err)
			}
		})
	}
}

func TestDecentralizedCommands(t *testing.T) {
	m := decentralizedManifest()
	cmds := m.Commands()
	if len(cmds) != 5 {
		t.Fatalf("commands = %d, want 5", len(cmds))
	}
	for i, c := range cmds {
		if c.Role != "peer" {
			t.Fatalf("role = %q", c.Role)
		}
		joined := strings.Join(c.Args, " ")
		if !strings.Contains(joined, "-role peer") {
			t.Fatalf("args = %q", joined)
		}
		if !strings.Contains(joined, "-peers a:1,b:1,c:1,d:1,e:1") {
			t.Fatalf("missing peer list: %q", joined)
		}
		if !strings.Contains(joined, "-fw 1") {
			t.Fatalf("missing fw: %q", joined)
		}
		if i == 2 && !strings.Contains(joined, "-index 2") {
			t.Fatalf("missing index: %q", joined)
		}
	}
}
