// Package simnet is the deterministic performance model used to regenerate
// the paper's throughput experiments (Figures 6-10 and the appendix ones).
//
// The paper measures wall-clock throughput on Grid5000 clusters; that
// hardware is unavailable here, so the scaling experiments run against an
// analytic cost model instead of a stopwatch. The model is deliberately
// simple — four additive terms per iteration — yet captures every effect the
// paper attributes its results to:
//
//	compute        gradient computation, linear in the model dimension d;
//	NIC time       messages serialized through the busiest node's link
//	               (bandwidth term) plus one latency per communication round;
//	fabric time    total message volume through the shared switch fabric —
//	               the term that makes decentralized O(n^2)-message protocols
//	               stop scaling (Figure 9a);
//	serialization  per-byte marshalling cost at the busiest endpoint; this
//	               models the tensor <-> wire conversions (Section 4.1 notes
//	               "the overhead of these conversions ... is non-negligible")
//	               that vanilla frameworks avoid with their native runtimes;
//	aggregation    per-element GAR cost with the asymptotics of Section 3.1.
//
// A Deployment pairs a System (vanilla, AggregaThor, crash-tolerant, SSMW,
// MSMW, decentralized — the same six the live protocols implement) with a
// hardware Profile (the paper's CPU and GPU cluster settings) and a cluster
// shape; Iteration returns the modelled per-iteration breakdown and
// UpdatesPerSec the modelled throughput.
//
// Vanilla deployments use the frameworks' optimized collective runtime,
// which both skips serialization and overlaps transfers; this is modelled by
// a collective-efficiency factor < 1 on the NIC term and no serialization
// cost. Numbers produced by this package are not the paper's absolute
// numbers; the experiments compare shapes (orderings, ratios, crossovers).
//
// The live counterpart to this model is the in-process cluster of
// internal/core driven through internal/scenario: simnet answers "how does
// this topology scale on datacenter hardware", the live path answers "what
// does this exact Go implementation do" — the ext-throughput experiment
// checks that the model's orderings hold for the latter.
package simnet
