package simnet

import (
	"errors"
	"testing"

	"garfield/internal/model"
)

// resnet50 is the model dimension most throughput experiments use.
const resnet50 = 23539850

func dep(sys System, cluster Profile) Deployment {
	return Deployment{
		Sys: sys, NW: 18, FW: 3, NPS: 6, FPS: 1,
		Rule: "bulyan", D: resnet50, Cluster: cluster,
	}
}

func mustIter(t *testing.T, d Deployment) Breakdown {
	t.Helper()
	b, err := d.Iteration()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSystemString(t *testing.T) {
	if SystemMSMW.String() != "msmw" {
		t.Fatalf("String = %q", SystemMSMW.String())
	}
	if System(99).String() != "system(99)" {
		t.Fatalf("String = %q", System(99).String())
	}
}

func TestValidation(t *testing.T) {
	bad := dep(SystemMSMW, CPU())
	bad.NPS = 0
	if _, err := bad.Iteration(); !errors.Is(err, ErrBadDeployment) {
		t.Fatalf("err = %v", err)
	}
	bad = dep(SystemSSMW, CPU())
	bad.NW = 0
	if _, err := bad.Iteration(); !errors.Is(err, ErrBadDeployment) {
		t.Fatalf("err = %v", err)
	}
	bad = dep(System(42), CPU())
	if _, err := bad.Iteration(); !errors.Is(err, ErrBadDeployment) {
		t.Fatalf("err = %v", err)
	}
	bad = dep(SystemSSMW, CPU())
	bad.FW = -1
	if _, err := bad.Iteration(); !errors.Is(err, ErrBadDeployment) {
		t.Fatalf("err = %v", err)
	}
}

// TestOrderingCPU checks the headline ordering of Figure 7: vanilla is
// fastest, then SSMW/crash, then MSMW, then decentralized slowest.
func TestOrderingCPU(t *testing.T) {
	cpu := CPU()
	vanilla := mustIter(t, dep(SystemVanilla, cpu)).TotalSec()
	ssmw := mustIter(t, dep(SystemSSMW, cpu)).TotalSec()
	crash := mustIter(t, dep(SystemCrashTolerant, cpu)).TotalSec()
	msmw := mustIter(t, dep(SystemMSMW, cpu)).TotalSec()
	decen := mustIter(t, dep(SystemDecentralized, cpu)).TotalSec()

	if !(vanilla < ssmw && ssmw < crash && crash < msmw && msmw < decen) {
		t.Fatalf("ordering violated: vanilla=%v ssmw=%v crash=%v msmw=%v dec=%v",
			vanilla, ssmw, crash, msmw, decen)
	}
}

// TestSSMWCheaperThanCrash mirrors "the cost of workers' Byzantine
// resilience (using SSMW) is always less than that of crash tolerance".
func TestSSMWCheaperThanCrash(t *testing.T) {
	for _, p := range []Profile{CPU(), GPU()} {
		for _, prof := range model.Table1() {
			d1 := dep(SystemSSMW, p)
			d1.D = prof.Params
			d2 := dep(SystemCrashTolerant, p)
			d2.D = prof.Params
			if mustIter(t, d1).TotalSec() >= mustIter(t, d2).TotalSec() {
				t.Fatalf("SSMW not cheaper than crash for %s on %s", prof.Name, p.Name)
			}
		}
	}
}

// TestCommunicationDominatesOverhead mirrors "communication accounts for
// more than 75% of the overhead while robust aggregation contributes to only
// 11%" (Section 6.6, CPU cluster, ResNet-50).
func TestCommunicationDominatesOverhead(t *testing.T) {
	cpu := CPU()
	base := mustIter(t, dep(SystemVanilla, cpu))
	msmw := mustIter(t, dep(SystemMSMW, cpu))
	overhead := msmw.TotalSec() - base.TotalSec()
	commShare := (msmw.CommSec - base.CommSec) / overhead
	aggShare := (msmw.AggSec - base.AggSec) / overhead
	if commShare < 0.70 {
		t.Fatalf("communication share of overhead = %.2f, want > 0.70", commShare)
	}
	if aggShare > 0.15 {
		t.Fatalf("aggregation share of overhead = %.2f, want <= 0.15", aggShare)
	}
}

// TestGPUFasterThanCPU mirrors "using GPUs achieves a performance
// improvement of at least one order of magnitude over CPUs" for compute.
func TestGPUFasterThanCPU(t *testing.T) {
	cpuT := mustIter(t, dep(SystemVanilla, CPU())).TotalSec()
	gpuT := mustIter(t, dep(SystemVanilla, GPU())).TotalSec()
	if cpuT/gpuT < 3 {
		t.Fatalf("GPU speedup only %.1fx", cpuT/gpuT)
	}
}

// TestComputeRoughlyEqualAcrossSystems mirrors Figure 7's observation that
// computation time is the same (~1.6 s) for all deployments.
func TestComputeRoughlyEqualAcrossSystems(t *testing.T) {
	cpu := CPU()
	want := mustIter(t, dep(SystemSSMW, cpu)).ComputeSec
	if want < 1.0 || want > 2.5 {
		t.Fatalf("ResNet-50 CPU compute = %v s, want ~1.6", want)
	}
	for _, sys := range []System{SystemVanilla, SystemCrashTolerant, SystemMSMW, SystemDecentralized} {
		got := mustIter(t, dep(sys, cpu)).ComputeSec
		if got != want {
			t.Fatalf("compute differs for %v: %v vs %v", sys, got, want)
		}
	}
}

// TestDecentralizedAggTwiceSSMW mirrors "the aggregation time in
// decentralized learning is two times bigger than that of SSMW".
func TestDecentralizedAggTwiceSSMW(t *testing.T) {
	cpu := CPU()
	ssmw := mustIter(t, dep(SystemSSMW, cpu)).AggSec
	decen := mustIter(t, dep(SystemDecentralized, cpu)).AggSec
	ratio := decen / ssmw
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("dec/ssmw aggregation ratio = %v, want ~2", ratio)
	}
}

// TestParameterServerScalesDecentralizedDoesNot mirrors Figure 8: in
// batches/sec, PS systems keep improving with nw while decentralized
// flattens or degrades.
func TestParameterServerScalesDecentralizedDoesNot(t *testing.T) {
	cpu := CPU()
	gain := func(sys System, nw int) float64 {
		d := dep(sys, cpu)
		d.D = 1756426 // CifarNet, as in Figure 8a
		d.NW = nw
		b, err := d.BatchesPerSec()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	// SSMW throughput at nw=20 must clearly beat nw=5.
	if gain(SystemSSMW, 20) < 1.5*gain(SystemSSMW, 5) {
		t.Fatal("SSMW does not scale with nw")
	}
	// Decentralized gains far less going 5 -> 20.
	decRatio := gain(SystemDecentralized, 20) / gain(SystemDecentralized, 5)
	ssmwRatio := gain(SystemSSMW, 20) / gain(SystemSSMW, 5)
	if decRatio > 0.8*ssmwRatio {
		t.Fatalf("decentralized scales too well: dec %.2fx vs ssmw %.2fx", decRatio, ssmwRatio)
	}
}

// TestDecentralizedCommQuadratic mirrors Figure 9a: decentralized
// communication time grows superlinearly in n while vanilla grows linearly.
func TestDecentralizedCommQuadratic(t *testing.T) {
	gpu := GPU()
	comm := func(sys System, n int) float64 {
		d := dep(sys, gpu)
		d.D = 1e6
		d.NW = n
		c, err := d.CommTime()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	// Growth factor from n=3 to n=6 (doubling n).
	decGrowth := comm(SystemDecentralized, 6) / comm(SystemDecentralized, 3)
	vanGrowth := comm(SystemVanilla, 6) / comm(SystemVanilla, 3)
	if decGrowth <= vanGrowth {
		t.Fatalf("decentralized comm growth %.2fx not above vanilla %.2fx", decGrowth, vanGrowth)
	}
}

// TestCommLinearInD mirrors Figures 3b/9b: all comm times are linear in d
// once bandwidth dominates.
func TestCommLinearInD(t *testing.T) {
	cpu := CPU()
	d1 := dep(SystemSSMW, cpu)
	d1.D = 1e7
	d2 := dep(SystemSSMW, cpu)
	d2.D = 2e7
	c1, err := d1.CommTime()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := d2.CommTime()
	if err != nil {
		t.Fatal(err)
	}
	ratio := c2 / c1
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("comm not ~linear in d: ratio %.2f", ratio)
	}
}

// TestFwHasLittleEffect mirrors Figure 10a: at fixed nw, increasing fw
// leaves throughput nearly unchanged.
func TestFwHasLittleEffect(t *testing.T) {
	cpu := CPU()
	base := dep(SystemMSMW, cpu)
	base.FW = 0
	t0, err := base.UpdatesPerSec()
	if err != nil {
		t.Fatal(err)
	}
	base.FW = 3
	t3, err := base.UpdatesPerSec()
	if err != nil {
		t.Fatal(err)
	}
	if rel := (t0 - t3) / t0; rel > 0.10 {
		t.Fatalf("fw=3 dropped throughput by %.0f%%, want < 10%%", rel*100)
	}
}

// TestFpsDropsThroughput mirrors Figure 10b: tolerating more Byzantine
// servers (which forces more replicas) visibly drops throughput, but by less
// than ~50% per the paper.
func TestFpsDropsThroughput(t *testing.T) {
	cpu := CPU()
	at := func(fps int) float64 {
		d := dep(SystemMSMW, cpu)
		d.FPS = fps
		d.NPS = 3*fps + 1
		if fps == 0 {
			d.NPS = 1
		}
		u, err := d.UpdatesPerSec()
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	t0, t3 := at(0), at(3)
	if t3 >= t0 {
		t.Fatal("more Byzantine servers did not reduce throughput")
	}
	if drop := (t0 - t3) / t0; drop > 0.60 {
		t.Fatalf("throughput drop %.0f%% too large, paper reports < ~50%%", drop*100)
	}
}

// TestOverheadFlattensWithModelSize mirrors Section 6.6: the Byzantine
// slowdown relative to vanilla grows with d only up to a point, then stays
// roughly constant (communication, which is O(d) for everyone, prevails).
func TestOverheadFlattensWithModelSize(t *testing.T) {
	cpu := CPU()
	slowdown := func(d int) float64 {
		v := dep(SystemVanilla, cpu)
		v.D = d
		m := dep(SystemMSMW, cpu)
		m.D = d
		return mustIter(t, m).TotalSec() / mustIter(t, v).TotalSec()
	}
	s50 := slowdown(23539850)  // ResNet-50
	s200 := slowdown(62697610) // ResNet-200
	sVGG := slowdown(128807306)
	if rel := (sVGG - s200) / s200; rel > 0.15 {
		t.Fatalf("slowdown still growing for huge models: resnet200 %.2f vgg %.2f", s200, sVGG)
	}
	_ = s50
}

// TestAggregaThorSlowerThanSSMW mirrors Figure 8a: Garfield's SSMW
// outperforms AggregaThor.
func TestAggregaThorSlowerThanSSMW(t *testing.T) {
	cpu := CPU()
	agg := dep(SystemAggregaThor, cpu)
	agg.D = 1756426
	agg.Rule = "multikrum"
	ssmw := dep(SystemSSMW, cpu)
	ssmw.D = 1756426
	ssmw.Rule = "multikrum"
	a, err := agg.UpdatesPerSec()
	if err != nil {
		t.Fatal(err)
	}
	s, err := ssmw.UpdatesPerSec()
	if err != nil {
		t.Fatal(err)
	}
	// AggregaThor avoids serialization but pays the older-stack compute
	// penalty; Figure 8a has Garfield's SSMW ahead.
	if a >= s*1.2 {
		t.Fatalf("AggregaThor (%v) much faster than SSMW (%v)", a, s)
	}
}

func TestBinomial(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{6, 3, 20}, {18, 3, 816}, {5, 0, 1}, {5, 5, 1}, {5, 6, 0}, {5, -1, 0},
	}
	for _, tt := range tests {
		if got := binomial(tt.n, tt.k); got != tt.want {
			t.Fatalf("binomial(%d,%d) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestAggOpsAsymptotics(t *testing.T) {
	// Multi-Krum is quadratic in n; median linear.
	lin := aggOps("median", 10, 3, 1000) / aggOps("median", 5, 1, 1000)
	quad := aggOps("multikrum", 10, 3, 1000) / aggOps("multikrum", 5, 1, 1000)
	if lin != 2 {
		t.Fatalf("median n-scaling = %v, want 2", lin)
	}
	if quad != 4 {
		t.Fatalf("multikrum n-scaling = %v, want 4", quad)
	}
}

func TestPipelinedGPUHidesAggregation(t *testing.T) {
	gpu := GPU()
	d := dep(SystemMSMW, gpu)
	b := mustIter(t, d)
	// With pipelining, visible aggregation must be far below the raw cost.
	raw := gpu.AggSecPerOp * d.aggregation()
	if b.AggSec > raw {
		t.Fatalf("pipelining increased aggregation: %v > %v", b.AggSec, raw)
	}
}

func TestBatchesPerSecConsistent(t *testing.T) {
	d := dep(SystemSSMW, CPU())
	u, err := d.UpdatesPerSec()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.BatchesPerSec()
	if err != nil {
		t.Fatal(err)
	}
	if b != u*float64(d.NW) {
		t.Fatalf("batches %v != updates %v * nw", b, u)
	}
}
