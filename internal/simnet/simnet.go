package simnet

import (
	"errors"
	"fmt"
	"math"

	"garfield/internal/gar"
)

// System enumerates the deployments compared throughout Section 6.
type System int

// Systems under comparison.
const (
	// SystemVanilla is the fault-intolerant TensorFlow/PyTorch baseline.
	SystemVanilla System = iota + 1
	// SystemAggregaThor is SSMW restricted to the AggregaThor design:
	// trusted central server, Multi-Krum, shared-graph runtime (modelled
	// as SSMW with slightly cheaper serialization, since it keeps the
	// native runtime, but an older, slower compute stack).
	SystemAggregaThor
	// SystemCrashTolerant replicates the server for crash failures only
	// (primary/backup with averaging).
	SystemCrashTolerant
	// SystemSSMW is single-server multi-worker Byzantine resilience.
	SystemSSMW
	// SystemMSMW is multi-server multi-worker Byzantine resilience.
	SystemMSMW
	// SystemDecentralized is peer-to-peer collaborative learning.
	SystemDecentralized
)

var systemNames = map[System]string{
	SystemVanilla:       "vanilla",
	SystemAggregaThor:   "aggregathor",
	SystemCrashTolerant: "crash-tolerant",
	SystemSSMW:          "ssmw",
	SystemMSMW:          "msmw",
	SystemDecentralized: "decentralized",
}

// String implements fmt.Stringer.
func (s System) String() string {
	if n, ok := systemNames[s]; ok {
		return n
	}
	return fmt.Sprintf("system(%d)", int(s))
}

// Systems returns all modelled systems in presentation order.
func Systems() []System {
	return []System{SystemVanilla, SystemAggregaThor, SystemCrashTolerant,
		SystemSSMW, SystemMSMW, SystemDecentralized}
}

// Profile describes one evaluation cluster. Two stock profiles mirror the
// paper's testbeds: CPU (Section 6.1's CPU cluster, 2x10 Gbps Ethernet) and
// GPU (the two-GPU nodes).
type Profile struct {
	// Name labels the profile ("cpu", "gpu").
	Name string
	// LatencySec is the one-way message latency.
	LatencySec float64
	// LinkBytesPerSec is a node's NIC bandwidth.
	LinkBytesPerSec float64
	// FabricBytesPerSec is the switch fabric's aggregate capacity; total
	// traffic is serialized through it.
	FabricBytesPerSec float64
	// ComputeSecPerParam is gradient-computation time per model parameter.
	ComputeSecPerParam float64
	// AggSecPerOp is the robust-aggregation cost per elementary operation
	// (one coordinate of one vector touched once).
	AggSecPerOp float64
	// SerializeSecPerByte is the marshalling cost per byte at an endpoint
	// for Garfield's pull-based RPC; zero for native collectives.
	SerializeSecPerByte float64
	// CollectiveEfficiency scales the NIC term for vanilla deployments
	// (< 1: optimized overlapping collectives).
	CollectiveEfficiency float64
	// BytesPerParam is the wire size of one parameter (4: float32, as in
	// the paper's frameworks).
	BytesPerParam float64
	// Pipelined reports whether communication overlaps aggregation
	// (the PyTorch per-layer pipeline of Section 4.2).
	Pipelined bool
}

// CPU returns the CPU-cluster profile (10 Gbps Ethernet, Xeon compute).
// ComputeSecPerParam is calibrated so ResNet-50 (23.5M params) takes the
// ~1.6 s/iteration Figure 7 reports.
func CPU() Profile {
	return Profile{
		Name:                 "cpu",
		LatencySec:           100e-6,
		LinkBytesPerSec:      2.5e9, // 2 x 10 Gbps per node (Section 6.1)
		FabricBytesPerSec:    2.0e10,
		ComputeSecPerParam:   6.8e-8,
		AggSecPerOp:          4.0e-11,
		SerializeSecPerByte:  4.0e-10,
		CollectiveEfficiency: 0.25,
		BytesPerParam:        4,
	}
}

// GPU returns the GPU-cluster profile: roughly an order of magnitude faster
// compute and aggregation (matching the paper's ">= one order of magnitude"
// CPU-to-GPU improvement), GPU-to-GPU collectives for the vanilla baseline,
// and pinned-memory serialization.
func GPU() Profile {
	return Profile{
		Name:                 "gpu",
		LatencySec:           100e-6,
		LinkBytesPerSec:      2.5e9,
		FabricBytesPerSec:    2.0e10,
		ComputeSecPerParam:   6.0e-9,
		AggSecPerOp:          2.0e-12,
		SerializeSecPerByte:  5.0e-10,
		CollectiveEfficiency: 0.15,
		BytesPerParam:        4,
		Pipelined:            true,
	}
}

// Deployment is one configuration whose iteration cost the model predicts.
type Deployment struct {
	// Sys selects the protocol.
	Sys System
	// NW and FW are total and Byzantine worker counts. For
	// SystemDecentralized, NW is the total node count.
	NW, FW int
	// NPS and FPS are total and Byzantine server counts (ignored by
	// single-server systems).
	NPS, FPS int
	// Rule is the GAR used for robust aggregation.
	Rule string
	// D is the model dimension (number of parameters).
	D int
	// Cluster is the hardware profile.
	Cluster Profile
}

// ErrBadDeployment reports an invalid configuration.
var ErrBadDeployment = errors.New("simnet: invalid deployment")

// Breakdown is the per-iteration latency decomposition matching Figure 7's
// stacked bars.
type Breakdown struct {
	// ComputeSec is the gradient-computation time.
	ComputeSec float64
	// CommSec is communication (NIC + fabric + latency + serialization).
	CommSec float64
	// AggSec is robust-aggregation time.
	AggSec float64
}

// TotalSec returns the iteration latency, accounting for comm/agg pipelining
// when the profile enables it.
func (b Breakdown) TotalSec() float64 { return b.ComputeSec + b.CommSec + b.AggSec }

func (d Deployment) validate() error {
	if d.NW < 1 || d.D < 1 {
		return fmt.Errorf("%w: nw=%d d=%d", ErrBadDeployment, d.NW, d.D)
	}
	if d.FW < 0 || d.FPS < 0 {
		return fmt.Errorf("%w: fw=%d fps=%d", ErrBadDeployment, d.FW, d.FPS)
	}
	switch d.Sys {
	case SystemCrashTolerant, SystemMSMW:
		if d.NPS < 1 {
			return fmt.Errorf("%w: %v needs nps >= 1", ErrBadDeployment, d.Sys)
		}
	case SystemVanilla, SystemAggregaThor, SystemSSMW, SystemDecentralized:
	default:
		return fmt.Errorf("%w: unknown system %d", ErrBadDeployment, int(d.Sys))
	}
	return nil
}

// aggOps returns the elementary-operation count of one aggregation of n
// d-dimensional vectors under the named rule (Section 3.1 asymptotics).
func aggOps(rule string, n, f, d int) float64 {
	nf, df := float64(n), float64(d)
	switch rule {
	case gar.NameAverage, gar.NameMedian, gar.NameTrimmedMean:
		return nf * df
	case gar.NameKrum, gar.NameMultiKrum, gar.NameBulyan:
		return nf * nf * df
	case gar.NameMDA:
		return binomial(n, f) + nf*nf*df
	default:
		return nf * df
	}
}

// binomial returns C(n, k) as a float64 (saturating, no overflow concerns
// for the modelled ranges).
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 1; i <= k; i++ {
		out *= float64(n - k + i)
		out /= float64(i)
	}
	return out
}

// messageLoad summarizes one iteration's traffic.
type messageLoad struct {
	rounds  int     // sequential communication rounds (latency term)
	nicMsgs float64 // messages through the busiest node's NIC
	total   float64 // total messages through the fabric
}

// load derives the traffic pattern of each protocol. Counts follow the
// message flows of Section 5's listings:
//
//	vanilla/AggregaThor/SSMW: server broadcasts the model to nw workers and
//	  collects nw gradients (2 rounds, busiest NIC = server).
//	crash-tolerant: like SSMW, plus workers push their update to every
//	  backup replica and the primary serves all model fetches.
//	MSMW: workers pull models and push gradients to all nps replicas; the
//	  replicas then exchange models pairwise (3 rounds; Listing 2).
//	decentralized: every node exchanges both a gradient and a model with
//	  every other node (Listing 3), i.e. Theta(n^2) total messages.
func (d Deployment) load() messageLoad {
	nw, nps := float64(d.NW), float64(d.NPS)
	switch d.Sys {
	case SystemVanilla, SystemAggregaThor, SystemSSMW:
		return messageLoad{rounds: 2, nicMsgs: 2 * nw, total: 2 * nw}
	case SystemCrashTolerant:
		return messageLoad{
			rounds:  2,
			nicMsgs: 2*nw + nps,
			total:   nw + nw*nps,
		}
	case SystemMSMW:
		// The fw term models waiting on more replies as the declared
		// Byzantine worker count grows (the appendix observes a slight
		// throughput decrease with fw, especially under stragglers).
		return messageLoad{
			rounds:  3,
			nicMsgs: 2*nw + 2*(nps-1) + float64(d.FPS)*nw/nps + float64(d.FW),
			total:   nw*nps + nps*(nps-1) + nw,
		}
	case SystemDecentralized:
		n := nw
		return messageLoad{
			rounds:  2,
			nicMsgs: 4 * (n - 1),
			total:   2 * n * (n - 1),
		}
	default:
		return messageLoad{}
	}
}

// aggregation returns the iteration's total aggregation operation count.
func (d Deployment) aggregation() float64 {
	switch d.Sys {
	case SystemVanilla, SystemCrashTolerant:
		return aggOps(gar.NameAverage, d.NW, 0, d.D)
	case SystemAggregaThor:
		return aggOps(gar.NameMultiKrum, d.NW, d.FW, d.D)
	case SystemSSMW:
		return aggOps(d.Rule, d.NW, d.FW, d.D)
	case SystemMSMW:
		return aggOps(d.Rule, d.NW, d.FW, d.D) + aggOps(d.Rule, d.NPS, d.FPS, d.D)
	case SystemDecentralized:
		// Gradient aggregation plus the model-aggregation step of
		// Listing 3 — "the aggregation time in decentralized learning is
		// two times bigger than that of SSMW" (Section 6.6).
		return 2 * aggOps(d.Rule, d.NW, d.FW, d.D)
	default:
		return 0
	}
}

// garfieldStack reports whether the deployment runs on Garfield's pull-based
// RPC (paying serialization) or on the framework's native collectives.
func (d Deployment) garfieldStack() bool {
	// AggregaThor ships its own gRPC-based communication layer as well, so
	// only the vanilla frameworks ride the optimized native collectives.
	return d.Sys != SystemVanilla
}

// Iteration returns the modelled per-iteration latency breakdown.
func (d Deployment) Iteration() (Breakdown, error) {
	if err := d.validate(); err != nil {
		return Breakdown{}, err
	}
	p := d.Cluster
	bytes := float64(d.D) * p.BytesPerParam
	ld := d.load()

	compute := p.ComputeSecPerParam * float64(d.D)
	if d.Sys == SystemAggregaThor {
		// AggregaThor builds on TF 1.10; the paper attributes part of its
		// deficit vs Garfield-SSMW to the older, slower stack.
		compute *= 1.15
	}

	nic := bytes / p.LinkBytesPerSec * ld.nicMsgs
	if !d.garfieldStack() {
		nic *= p.CollectiveEfficiency
	}
	fabric := bytes / p.FabricBytesPerSec * ld.total
	latency := p.LatencySec * float64(ld.rounds)
	ser := 0.0
	if d.garfieldStack() {
		ser = p.SerializeSecPerByte * bytes * ld.nicMsgs
		if d.Sys == SystemAggregaThor {
			// Without Garfield's memory-management tricks (Section 4.4)
			// each conversion pays extra copies.
			ser *= 1.3
		}
	}
	comm := latency + nic + fabric + ser

	agg := p.AggSecPerOp * d.aggregation()

	if p.Pipelined && d.garfieldStack() {
		// Per-layer pipelining overlaps aggregation with communication
		// (Section 4.2); the shorter of the two hides behind the longer,
		// except for a fill/drain residue.
		overlapped := math.Max(comm, agg) + 0.15*math.Min(comm, agg)
		// Report the overlap entirely inside the comm term, keeping the
		// stacked-bar semantics of Figure 16 (comm and agg fused).
		agg = math.Min(agg, overlapped-comm)
		if agg < 0 {
			comm, agg = overlapped, 0
		}
	}

	return Breakdown{ComputeSec: compute, CommSec: comm, AggSec: agg}, nil
}

// UpdatesPerSec returns modelled throughput in model updates per second
// (the paper's updates/sec metric).
func (d Deployment) UpdatesPerSec() (float64, error) {
	b, err := d.Iteration()
	if err != nil {
		return 0, err
	}
	return 1 / b.TotalSec(), nil
}

// BatchesPerSec returns modelled throughput in worker batches per second
// (the Figure 8 metric: each iteration processes one batch per worker).
func (d Deployment) BatchesPerSec() (float64, error) {
	u, err := d.UpdatesPerSec()
	if err != nil {
		return 0, err
	}
	return u * float64(d.NW), nil
}

// CommTime returns only the communication component, the Figure 9 metric.
func (d Deployment) CommTime() (float64, error) {
	b, err := d.Iteration()
	if err != nil {
		return 0, err
	}
	return b.CommSec, nil
}
