package simnet

import (
	"testing"

	"garfield/internal/model"
)

// Shape tests for the remaining paper claims the cost model must reproduce
// (Figures 15 and 16 of the appendix).

// TestPTSlowdownExceedsTF mirrors the appendix observation that the
// PyTorch-GPU Garfield slowdown vs its vanilla baseline exceeds the
// TensorFlow-CPU one, because vanilla PyTorch's reduce() is a GPU-to-GPU
// collective that is much harder to compete with.
func TestPTSlowdownExceedsTF(t *testing.T) {
	resnet, err := model.ProfileByName("ResNet-50")
	if err != nil {
		t.Fatal(err)
	}
	slow := func(cluster Profile, nw, nps int) float64 {
		van := Deployment{Sys: SystemVanilla, NW: nw, FW: 3, NPS: nps, FPS: 1,
			Rule: "multikrum", D: resnet.Params, Cluster: cluster}
		msmw := van
		msmw.Sys = SystemMSMW
		vb, err := van.Iteration()
		if err != nil {
			t.Fatal(err)
		}
		mb, err := msmw.Iteration()
		if err != nil {
			t.Fatal(err)
		}
		return mb.TotalSec() / vb.TotalSec()
	}
	tf := slow(CPU(), 18, 6)
	pt := slow(GPU(), 10, 3)
	if pt <= tf {
		t.Fatalf("PT/GPU slowdown (%.2f) not above TF/CPU (%.2f)", pt, tf)
	}
}

// TestSmallModelsCheaperFaultTolerance mirrors "the cost of fault-tolerance
// is not clear with training small networks": the smallest model has the
// smallest slowdown on both clusters.
func TestSmallModelsCheaperFaultTolerance(t *testing.T) {
	for _, cluster := range []Profile{CPU(), GPU()} {
		slow := func(d int) float64 {
			van := Deployment{Sys: SystemVanilla, NW: 10, FW: 3, NPS: 3, FPS: 1,
				Rule: "multikrum", D: d, Cluster: cluster}
			msmw := van
			msmw.Sys = SystemMSMW
			vb, err := van.Iteration()
			if err != nil {
				t.Fatal(err)
			}
			mb, err := msmw.Iteration()
			if err != nil {
				t.Fatal(err)
			}
			return mb.TotalSec() / vb.TotalSec()
		}
		small := slow(79510)     // MNIST_CNN
		large := slow(128807306) // VGG
		if small >= large {
			t.Fatalf("%s: small-model slowdown (%.2f) not below VGG's (%.2f)",
				cluster.Name, small, large)
		}
	}
}

// TestPipelinedBreakdownOrdering mirrors Figure 16: vanilla's comm+agg is
// far below the fault-tolerant systems', and Garfield's exceeds the
// crash-tolerant one's.
func TestPipelinedBreakdownOrdering(t *testing.T) {
	resnet, err := model.ProfileByName("ResNet-50")
	if err != nil {
		t.Fatal(err)
	}
	commAgg := func(sys System) float64 {
		d := Deployment{Sys: sys, NW: 10, FW: 3, NPS: 3, FPS: 1,
			Rule: "multikrum", D: resnet.Params, Cluster: GPU()}
		b, err := d.Iteration()
		if err != nil {
			t.Fatal(err)
		}
		return b.CommSec + b.AggSec
	}
	vanilla := commAgg(SystemVanilla)
	crash := commAgg(SystemCrashTolerant)
	garfield := commAgg(SystemMSMW)
	if !(vanilla < crash && crash < garfield) {
		t.Fatalf("ordering violated: vanilla=%.3f crash=%.3f garfield=%.3f",
			vanilla, crash, garfield)
	}
	if crash < 3*vanilla {
		t.Fatalf("vanilla comm+agg (%.3f) not clearly below crash (%.3f)", vanilla, crash)
	}
}
