// Package shard partitions the coordinate space of the model across server
// replicas and re-expresses gradient aggregation over the partition — the
// structural change that breaks the O(n²·d) single-box wall: with S shards,
// each replica scores 1/S of the coordinates (coordinate-wise rules) or 1/S
// of the workers (selection rules), so aggregation cost scales down with the
// fleet instead of being pinned to one aggregator.
//
// Two regimes, chosen by gar.CoordinateWise:
//
//   - Coordinate-wise rules (average, median, trimmedmean, phocas) shard
//     exactly. Every output coordinate depends only on the matching input
//     coordinates, so aggregating each contiguous slice independently and
//     concatenating the results is bit-identical to the unsharded rule —
//     the property the golden equivalence tests lock float-for-float across
//     shard counts {1, 2, 3, 7}.
//
//   - Selection rules (krum, multikrum, mda, bulyan) score whole vectors by
//     L2 geometry and cannot be split by coordinate. They shard
//     hierarchically: workers are partitioned into G contiguous groups, each
//     group runs the rule locally over its members' gradients, and a root
//     round runs the same rule over the G group winners. The output is not
//     identical to the flat rule, but it is bounded: see the drift bounds
//     below.
//
// # Hierarchical drift bounds
//
// Let H be the set of honest inputs, diam(H) the largest pairwise L2
// distance within H, and assume at most f Byzantine inputs per group (the
// same per-aggregation bound f the flat rule assumes globally). Then:
//
//   - Krum / MultiKrum: every group winner is within diam(H) of some honest
//     input (Krum's selection guarantee under n ≥ 2f+3 per group), and the
//     root selection picks among such winners, so the hierarchical output
//     lies within 2·diam(H) of the flat Krum output.
//
//   - MDA: each group output is the mean of an (n_g−f)-subset whose diameter
//     is at most diam(H) (the minimal-diameter subset can always fall back
//     to the group's honest members), so group outputs — and the root mean
//     over them — stay within 2·diam(H) of the flat MDA output.
//
//   - Bulyan: both levels reduce to coordinate-wise averages of values
//     bracketed by honest coordinates, so the hierarchical output is within
//     2·diam(H) of the flat output in L2 (and within the honest coordinate
//     range per coordinate).
//
// The shard tests assert these 2·diam(H) envelopes on seeded fixtures with
// exactly f Byzantine inputs per group.
package shard

import (
	"fmt"

	"garfield/internal/gar"
	"garfield/internal/tensor"
)

// Plan is a deterministic partition of [0, d) into n contiguous ranges:
// the first d mod n ranges hold ⌈d/n⌉ coordinates, the rest ⌊d/n⌋. The same
// construction partitions worker index space into hierarchical groups
// (NewGroups), so shard maps are a pure function of (d, n) and every replica
// derives an identical plan without coordination.
type Plan struct {
	d, n int
}

// NewPlan partitions d coordinates into n contiguous ranges. n must be at
// least 1 and at most d (empty shards would make their owners decorative and
// break the "every shard has coordinates" invariant reassembly relies on).
func NewPlan(d, n int) (Plan, error) {
	if n < 1 || d < 1 || n > d {
		return Plan{}, fmt.Errorf("shard: invalid plan: %d coordinates into %d shards", d, n)
	}
	return Plan{d: d, n: n}, nil
}

// N returns the number of shards.
func (p Plan) N() int { return p.n }

// Dim returns the partitioned dimension.
func (p Plan) Dim() int { return p.d }

// Range returns the half-open coordinate range [lo, hi) of shard i.
func (p Plan) Range(i int) (lo, hi int) {
	base, rem := p.d/p.n, p.d%p.n
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// MaxWidth returns the widest shard's coordinate count — the per-replica
// critical path of one sharded aggregation round.
func (p Plan) MaxWidth() int {
	if p.d%p.n != 0 {
		return p.d/p.n + 1
	}
	return p.d / p.n
}

// OwnerOf returns the shard index holding coordinate c.
func (p Plan) OwnerOf(c int) int {
	base, rem := p.d/p.n, p.d%p.n
	wide := rem * (base + 1) // coordinates covered by the ⌈d/n⌉-wide shards
	if c < wide {
		return c / (base + 1)
	}
	return rem + (c-wide)/base
}

// Sharded aggregates with a coordinate-wise rule split across a Plan: shard
// i's slice of every input is aggregated by its own rule instance into the
// matching slice of the output. The result is bit-identical to the flat rule
// (see the package comment); the per-shard rule instances are what a real
// deployment distributes one-per-replica, and what the sharded benchmark
// times one of (the critical path).
type Sharded struct {
	plan  Plan
	rules []gar.Rule
	views []tensor.Vector // per-shard input view scratch, reused across calls
}

// NewSharded builds a sharded coordinate-wise aggregator: rule over n inputs
// tolerating f Byzantine ones, split into shards slices of dimension d.
func NewSharded(rule string, n, f, d, shards int) (*Sharded, error) {
	if !gar.CoordinateWise(rule) {
		return nil, fmt.Errorf("shard: rule %q is not coordinate-wise; use NewHierarchical", rule)
	}
	plan, err := NewPlan(d, shards)
	if err != nil {
		return nil, err
	}
	s := &Sharded{plan: plan, rules: make([]gar.Rule, shards), views: make([]tensor.Vector, n)}
	for i := range s.rules {
		r, err := gar.New(rule, n, f)
		if err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
		s.rules[i] = r
	}
	return s, nil
}

// Plan returns the aggregator's coordinate partition.
func (s *Sharded) Plan() Plan { return s.plan }

// AggregateInto runs each shard's rule over the inputs' matching slices,
// writing shard i's result into dst[lo_i:hi_i]. dst is reused when its
// capacity suffices; the written vector is returned.
func (s *Sharded) AggregateInto(dst tensor.Vector, inputs []tensor.Vector) (tensor.Vector, error) {
	if len(inputs) != len(s.views) {
		return nil, fmt.Errorf("%w: sharded expects %d, got %d", gar.ErrInputCount, len(s.views), len(inputs))
	}
	d, err := tensor.CheckSameDim(inputs)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	if d != s.plan.Dim() {
		return nil, fmt.Errorf("shard: %w: plan over %d coordinates, inputs have %d",
			tensor.ErrDimensionMismatch, s.plan.Dim(), d)
	}
	dst = tensor.Resize(dst, d)
	for i, r := range s.rules {
		lo, hi := s.plan.Range(i)
		for j, v := range inputs {
			s.views[j] = v[lo:hi]
		}
		out, err := r.AggregateInto(dst[lo:hi], s.views)
		if err != nil {
			return nil, fmt.Errorf("shard %d [%d:%d): %w", i, lo, hi, err)
		}
		if &out[0] != &dst[lo] {
			// The rule allocated fresh storage despite sufficient capacity;
			// land the slice where reassembly expects it.
			copy(dst[lo:hi], out)
		}
	}
	return dst, nil
}

// NewGroups partitions n workers into g contiguous hierarchical groups —
// the worker-space analogue of NewPlan.
func NewGroups(n, g int) (Plan, error) {
	p, err := NewPlan(n, g)
	if err != nil {
		return Plan{}, fmt.Errorf("shard: invalid groups: %d workers into %d groups", n, g)
	}
	return p, nil
}

// RootF returns the largest Byzantine tolerance t the named rule supports
// over g root-round inputs (the most adversarial group winners the root
// selection can absorb), or an error when g is below the rule's f=0 floor —
// too few groups for the rule to run at all.
func RootF(rule string, g int) (int, error) {
	min0, err := gar.MinN(rule, 0)
	if err != nil {
		return 0, err
	}
	if g < min0 {
		return 0, fmt.Errorf("%w: rule %q needs at least %d root inputs, got %d groups",
			gar.ErrRequirement, rule, min0, g)
	}
	t := 0
	for {
		m, err := gar.MinN(rule, t+1)
		if err != nil || g < m {
			return t, nil
		}
		t++
	}
}

// Hierarchical aggregates with a selection rule in two levels: the inputs
// are partitioned into contiguous groups, each group runs the rule locally
// over its members, and a root instance of the same rule aggregates the
// group winners. Safety holds under at most f Byzantine inputs per group;
// the output tracks the flat rule within the drift bounds documented in the
// package comment.
type Hierarchical struct {
	groups  Plan
	locals  []gar.Rule
	root    gar.Rule
	winners []tensor.Vector // per-group winner buffers, reused across calls
	views   []tensor.Vector
}

// NewHierarchical builds a two-level aggregator: rule over n inputs split
// into groups contiguous groups, tolerating f Byzantine inputs per group.
// Every group must satisfy the rule's n ≥ g(f) floor, and the group count
// must reach the rule's f=0 floor for the root round.
func NewHierarchical(rule string, n, f, groups int) (*Hierarchical, error) {
	if gar.CoordinateWise(rule) {
		return nil, fmt.Errorf("shard: rule %q is coordinate-wise; use NewSharded (exact)", rule)
	}
	gp, err := NewGroups(n, groups)
	if err != nil {
		return nil, err
	}
	rootF, err := RootF(rule, groups)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	root, err := gar.New(rule, groups, rootF)
	if err != nil {
		return nil, fmt.Errorf("shard: root: %w", err)
	}
	h := &Hierarchical{
		groups:  gp,
		locals:  make([]gar.Rule, groups),
		root:    root,
		winners: make([]tensor.Vector, groups),
		views:   make([]tensor.Vector, 0, n),
	}
	for i := range h.locals {
		lo, hi := gp.Range(i)
		r, err := gar.New(rule, hi-lo, f)
		if err != nil {
			return nil, fmt.Errorf("shard: group %d (%d members): %w", i, hi-lo, err)
		}
		h.locals[i] = r
	}
	return h, nil
}

// Groups returns the worker partition.
func (h *Hierarchical) Groups() Plan { return h.groups }

// RootF returns the root round's Byzantine tolerance.
func (h *Hierarchical) RootF() int { return h.root.F() }

// AggregateInto runs the group-local selections, then the root round over
// the winners, into dst (reused when capacity suffices).
func (h *Hierarchical) AggregateInto(dst tensor.Vector, inputs []tensor.Vector) (tensor.Vector, error) {
	if len(inputs) != h.groups.Dim() {
		return nil, fmt.Errorf("%w: hierarchical expects %d, got %d", gar.ErrInputCount, h.groups.Dim(), len(inputs))
	}
	for i, r := range h.locals {
		lo, hi := h.groups.Range(i)
		h.views = append(h.views[:0], inputs[lo:hi]...)
		w, err := r.AggregateInto(h.winners[i], h.views)
		if err != nil {
			return nil, fmt.Errorf("shard: group %d: %w", i, err)
		}
		h.winners[i] = w
	}
	out, err := h.root.AggregateInto(dst, h.winners)
	if err != nil {
		return nil, fmt.Errorf("shard: root: %w", err)
	}
	return out, nil
}
