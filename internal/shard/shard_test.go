package shard

import (
	"math"
	"strconv"
	"testing"

	"garfield/internal/gar"
	"garfield/internal/tensor"
)

func genInputs(seed uint64, n, d int) []tensor.Vector {
	rng := tensor.NewRNG(seed)
	out := make([]tensor.Vector, n)
	for i := range out {
		out[i] = rng.NormalVector(d, 0, 10)
	}
	return out
}

// TestPlanPartition: the ranges tile [0, d) contiguously, widths differ by
// at most one, MaxWidth is the widest, and OwnerOf inverts Range.
func TestPlanPartition(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{64, 1}, {64, 2}, {64, 3}, {64, 7}, {65, 7}, {7, 7}, {1000003, 8}} {
		p, err := NewPlan(tc.d, tc.n)
		if err != nil {
			t.Fatalf("NewPlan(%d, %d): %v", tc.d, tc.n, err)
		}
		next, maxW, minW := 0, 0, tc.d
		for i := 0; i < p.N(); i++ {
			lo, hi := p.Range(i)
			if lo != next || hi <= lo {
				t.Fatalf("plan(%d,%d) shard %d: range [%d,%d) not contiguous after %d", tc.d, tc.n, i, lo, hi, next)
			}
			if w := hi - lo; w > maxW {
				maxW = w
			} else if w < minW {
				minW = w
			}
			for c := lo; c < hi; c += 1 + (hi-lo)/3 {
				if got := p.OwnerOf(c); got != i {
					t.Fatalf("plan(%d,%d): OwnerOf(%d) = %d, want %d", tc.d, tc.n, c, got, i)
				}
			}
			next = hi
		}
		if next != tc.d {
			t.Fatalf("plan(%d,%d): ranges end at %d", tc.d, tc.n, next)
		}
		if minW < maxW-1 {
			t.Fatalf("plan(%d,%d): widths range [%d,%d], want balanced", tc.d, tc.n, minW, maxW)
		}
		if p.MaxWidth() != maxW {
			t.Fatalf("plan(%d,%d): MaxWidth %d, want %d", tc.d, tc.n, p.MaxWidth(), maxW)
		}
	}
	for _, tc := range []struct{ d, n int }{{0, 1}, {4, 0}, {4, 5}, {-1, 1}} {
		if _, err := NewPlan(tc.d, tc.n); err == nil {
			t.Fatalf("NewPlan(%d, %d): expected error", tc.d, tc.n)
		}
	}
}

// TestShardedBitIdentical is the golden equivalence lock: sharded
// coordinate-wise aggregation is float-for-float identical to the flat rule
// at every tested shard count, including dimensions that do not divide
// evenly.
func TestShardedBitIdentical(t *testing.T) {
	rules := []struct {
		name string
		n, f int
	}{
		{gar.NameAverage, 7, 0},
		{gar.NameMedian, 7, 2},
		{gar.NameTrimmedMean, 7, 2},
		{gar.NamePhocas, 7, 2},
	}
	for _, rc := range rules {
		for _, d := range []int{7, 64, 65, 97} {
			inputs := genInputs(0xD15C0+uint64(d), rc.n, d)
			flatRule, err := gar.New(rc.name, rc.n, rc.f)
			if err != nil {
				t.Fatal(err)
			}
			flat, err := flatRule.Aggregate(inputs)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 3, 7} {
				t.Run(rc.name+"/d="+strconv.Itoa(d)+"/s="+strconv.Itoa(shards), func(t *testing.T) {
					s, err := NewSharded(rc.name, rc.n, rc.f, d, shards)
					if err != nil {
						t.Fatal(err)
					}
					got, err := s.AggregateInto(nil, inputs)
					if err != nil {
						t.Fatal(err)
					}
					if !got.Equal(flat) {
						t.Fatalf("sharded output differs from flat %s at d=%d shards=%d", rc.name, d, shards)
					}
					// Steady state: a second round must land in the same
					// backing array bit-identically.
					again, err := s.AggregateInto(got, inputs)
					if err != nil {
						t.Fatal(err)
					}
					if &again[0] != &got[0] {
						t.Fatal("second aggregation reallocated the destination")
					}
					if !again.Equal(flat) {
						t.Fatal("second aggregation differs from flat")
					}
				})
			}
		}
	}
}

func TestShardedRejects(t *testing.T) {
	if _, err := NewSharded(gar.NameKrum, 9, 2, 64, 2); err == nil {
		t.Fatal("NewSharded accepted a selection rule")
	}
	s, err := NewSharded(gar.NameMedian, 5, 2, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateInto(nil, genInputs(1, 4, 64)); err == nil {
		t.Fatal("accepted wrong input count")
	}
	if _, err := s.AggregateInto(nil, genInputs(1, 5, 32)); err == nil {
		t.Fatal("accepted wrong dimension")
	}
}

// hierFixture builds n inputs in g contiguous groups: honest members drawn
// near a common distribution, plus exactly f Byzantine members per group
// (the first f slots of each group) serving wildly scaled vectors. Returns
// the inputs, the honest subset, and the honest diameter diam(H).
func hierFixture(seed uint64, n, g, f, d int) (inputs, honest []tensor.Vector, diam float64) {
	rng := tensor.NewRNG(seed)
	inputs = make([]tensor.Vector, n)
	gp, err := NewGroups(n, g)
	if err != nil {
		panic(err)
	}
	for i := 0; i < g; i++ {
		lo, hi := gp.Range(i)
		for j := lo; j < hi; j++ {
			if j-lo < f {
				inputs[j] = rng.NormalVector(d, 50, 100) // Byzantine: far off-distribution
				continue
			}
			inputs[j] = rng.NormalVector(d, 0, 1)
			honest = append(honest, inputs[j])
		}
	}
	for a := range honest {
		for b := a + 1; b < len(honest); b++ {
			dist, _ := honest[a].Distance(honest[b])
			if dist > diam {
				diam = dist
			}
		}
	}
	return inputs, honest, diam
}

// TestHierarchicalDriftBounds locks the documented drift envelope: with at
// most f Byzantine inputs per group, the two-level selection output stays
// within 2·diam(H) of the flat rule's output on seeded fixtures, and within
// the Byzantine-free reference's envelope too (the hierarchy does not
// amplify the adversary).
func TestHierarchicalDriftBounds(t *testing.T) {
	cases := []struct {
		rule       string
		n, g, f, d int
	}{
		{gar.NameKrum, 15, 3, 1, 64},
		{gar.NameMultiKrum, 15, 3, 1, 64},
		{gar.NameMDA, 12, 3, 1, 64},
		{gar.NameBulyan, 21, 3, 1, 64},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			inputs, _, diam := hierFixture(0xBEEF+uint64(len(tc.rule)), tc.n, tc.g, tc.f, tc.d)
			h, err := NewHierarchical(tc.rule, tc.n, tc.f, tc.g)
			if err != nil {
				t.Fatal(err)
			}
			hier, err := h.AggregateInto(nil, inputs)
			if err != nil {
				t.Fatal(err)
			}
			totalF := tc.g * tc.f
			flatRule, err := gar.New(tc.rule, tc.n, totalF)
			if err != nil {
				t.Fatal(err)
			}
			flat, err := flatRule.Aggregate(inputs)
			if err != nil {
				t.Fatal(err)
			}
			drift, err := hier.Distance(flat)
			if err != nil {
				t.Fatal(err)
			}
			bound := 2 * diam
			if math.IsNaN(drift) || drift > bound {
				t.Fatalf("%s hierarchical drift %.4g exceeds 2·diam(H) = %.4g", tc.rule, drift, bound)
			}
			t.Logf("%s: drift %.4g within 2·diam(H) = %.4g (diam %.4g)", tc.rule, drift, bound, diam)

			// Determinism: the same fixture aggregates to the same bits.
			again, err := h.AggregateInto(nil, inputs)
			if err != nil {
				t.Fatal(err)
			}
			if !again.Equal(hier) {
				t.Fatalf("%s hierarchical aggregation is not deterministic", tc.rule)
			}
		})
	}
}

// TestHierarchicalFloors: construction rejects group shapes below the rule's
// resilience floor at either level.
func TestHierarchicalFloors(t *testing.T) {
	// Krum needs 2f+3 = 5 members per group: 4 groups of 3 fail locally.
	if _, err := NewHierarchical(gar.NameKrum, 12, 1, 4); err == nil {
		t.Fatal("accepted krum groups below the 2f+3 local floor")
	}
	// Krum's root round needs at least MinN(krum, 0) = 3 winners.
	if _, err := NewHierarchical(gar.NameKrum, 10, 1, 2); err == nil {
		t.Fatal("accepted a krum root round below the f=0 floor")
	}
	// Coordinate-wise rules must go through NewSharded.
	if _, err := NewHierarchical(gar.NameMedian, 9, 1, 3); err == nil {
		t.Fatal("accepted a coordinate-wise rule")
	}
	// Valid shape: root tolerance is the documented max t with G >= g(t).
	h, err := NewHierarchical(gar.NameMDA, 15, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.RootF(); got != 2 { // mda: 2t+1 <= 5 → t = 2
		t.Fatalf("RootF = %d, want 2", got)
	}
}
