package experiments

import (
	"fmt"

	"garfield/internal/attack"
	"garfield/internal/core"
	"garfield/internal/data"
	"garfield/internal/gar"
	"garfield/internal/metrics"
	"garfield/internal/model"
	"garfield/internal/scenario"
	"garfield/internal/tensor"
)

// Extension experiments: ablations beyond the paper's figure set, covering
// the design choices DESIGN.md §6 calls out. Their ids carry an "ext-"
// prefix so they are never confused with reproduced paper artifacts.

// ExtMomentum quantifies how worker-side momentum (the paper's Section-8
// variance-reduction pointer) affects the GAR variance condition: for each
// rule it reports in how many of the sampled steps the condition held, with
// and without momentum.
func ExtMomentum(opt Options) (Renderable, error) {
	steps := 20
	if opt.Quick {
		steps = 8
	}
	const n, f, batchSize = 10, 3, 16

	train, _, err := data.Generate(data.SyntheticSpec{
		Name: "ext-momentum", Dim: 32, Classes: 5,
		Train: 2000, Test: 10, Separation: 1.0, Noise: 1.0, Seed: opt.seed(),
	})
	if err != nil {
		return nil, err
	}
	arch, err := model.NewLinearSoftmax(32, 5)
	if err != nil {
		return nil, err
	}
	rules := []string{gar.NameMDA, gar.NameKrum, gar.NameMedian}

	count := func(momentum float64) (map[string]int, error) {
		shards, err := data.PartitionIID(train, n, opt.seed())
		if err != nil {
			return nil, err
		}
		samplers := make([]*data.Sampler, n)
		velocities := make([]tensor.Vector, n)
		for i := range samplers {
			if samplers[i], err = data.NewSampler(shards[i], opt.seed()+uint64(i)); err != nil {
				return nil, err
			}
		}
		params := arch.InitParams(tensor.NewRNG(opt.seed()))
		allIdx := make([]int, train.Len())
		for i := range allIdx {
			allIdx[i] = i
		}
		full := train.Batch(allIdx)
		satisfied := make(map[string]int, len(rules))
		for step := 0; step < steps; step++ {
			grads := make([]tensor.Vector, n)
			for i := 0; i < n; i++ {
				g, err := arch.Gradient(params, samplers[i].Next(batchSize))
				if err != nil {
					return nil, err
				}
				if momentum > 0 {
					if velocities[i] == nil {
						velocities[i] = tensor.New(len(g))
					}
					for c := range g {
						velocities[i][c] = momentum*velocities[i][c] + g[c]
					}
					g = velocities[i].Scale(1 - momentum)
				}
				grads[i] = g
			}
			trueGrad, err := arch.Gradient(params, full)
			if err != nil {
				return nil, err
			}
			for _, rule := range rules {
				rep, err := gar.CheckVarianceCondition(rule, f, grads, trueGrad)
				if err != nil {
					return nil, err
				}
				if rep.Satisfied {
					satisfied[rule]++
				}
			}
			if err := params.AXPY(-0.1, trueGrad); err != nil {
				return nil, err
			}
		}
		return satisfied, nil
	}

	raw, err := count(0)
	if err != nil {
		return nil, err
	}
	smoothed, err := count(0.9)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:  fmt.Sprintf("Extension: variance condition satisfaction over %d steps (n=%d, f=%d)", steps, n, f),
		Header: []string{"GAR", "plain SGD", "worker momentum 0.9"},
	}
	for _, rule := range rules {
		t.AddRow(rule,
			fmt.Sprintf("%d/%d", raw[rule], steps),
			fmt.Sprintf("%d/%d", smoothed[rule], steps))
	}
	return t, nil
}

// ExtGARs compares every robust rule's final accuracy under the
// reversed-vectors attack in the same SSMW deployment — the library-level
// "which GAR should I pick" table. It is a one-dimensional scenario sweep:
// one base spec, a Rules axis.
func ExtGARs(opt Options) (Renderable, error) {
	iters := 120
	if opt.Quick {
		iters = 30
	}
	// nw=15, fw=3 satisfies every rule's precondition (bulyan: 4*3+3=15).
	rules := []string{
		gar.NameMedian, gar.NameTrimmedMean, gar.NameKrum, gar.NameMultiKrum,
		gar.NameMDA, gar.NameBulyan, gar.NameGeoMedian, gar.NamePhocas,
	}
	m, d := cifarStyleTask(opt)
	t := &metrics.Table{
		Title:  "Extension: final accuracy per GAR under the reversed-vectors attack (nw=15, fw=3)",
		Header: []string{"GAR", "final accuracy"},
	}
	for _, rule := range rules {
		sp := scenario.Spec{
			Topology: scenario.TopoSSMW,
			Model:    m, Dataset: d,
			BatchSize: 16,
			NW:        15, FW: 3,
			Rule:         rule,
			WorkerAttack: scenario.AttackSpec{Name: attack.NameReversed},
			Seed:         opt.seed(),
			Iterations:   iters,
		}
		res, err := scenario.Run(sp)
		if err != nil {
			return nil, fmt.Errorf("ext-gars %s: %w", rule, err)
		}
		t.AddRow(rule, fmt.Sprintf("%.4f", res.Accuracy.Last()))
	}
	return t, nil
}

// ExtLiveThroughput measures real wall-clock updates/sec of every protocol
// on the in-process cluster — the live counterpart of the simnet-modelled
// Figures 6-8, useful for checking that the model's orderings also hold for
// the actual Go implementation (at laptop scale the network term is pipes,
// so only the protocol-structure ordering carries over, not the ratios).
func ExtLiveThroughput(opt Options) (Renderable, error) {
	iters := 60
	if opt.Quick {
		iters = 20
	}
	m, d := cifarStyleTask(opt)
	sp := tfSetup(opt, m, d)
	if !opt.Quick {
		// Keep the live sweep affordable even in full mode.
		sp.NW, sp.FW, sp.NPS, sp.FPS = 9, 1, 4, 1
	}
	t := &metrics.Table{
		Title:  fmt.Sprintf("Extension: live throughput over %d iterations (in-process cluster)", iters),
		Header: []string{"System", "updates/sec"},
	}
	for _, sys := range []string{"vanilla", "ssmw", "crash-tolerant", "msmw", "decentralized"} {
		res, err := runSystem(sys, sp, core.RunOptions{Iterations: iters, AccEvery: 0})
		if err != nil {
			return nil, fmt.Errorf("ext-live %s: %w", sys, err)
		}
		t.AddRow(displayName(sys), fmt.Sprintf("%.1f", res.UpdatesPerSec()))
	}
	return t, nil
}

// ExtStale studies the staleness fault the paper's Drop attack cannot model:
// a live node that keeps replaying its first gradient. Robust aggregation
// must contain it; plain averaging absorbs a persistent bias.
func ExtStale(opt Options) (Renderable, error) {
	iters := 120
	if opt.Quick {
		iters = 30
	}
	m, d := cifarStyleTask(opt)
	t := &metrics.Table{
		Title:  "Extension: accuracy with one stale node (replays its first gradient)",
		Header: []string{"System", "final accuracy"},
	}
	for _, sys := range []string{"vanilla", "ssmw"} {
		sp := scenario.Spec{
			Model: m, Dataset: d,
			BatchSize: 16,
			NW:        9, FW: 1,
			Rule:         gar.NameMedian,
			WorkerAttack: scenario.AttackSpec{Name: attack.NameStale},
			Seed:         opt.seed(),
		}
		res, err := runSystem(sys, sp, core.RunOptions{Iterations: iters, AccEvery: 0})
		if err != nil {
			return nil, fmt.Errorf("ext-stale %s: %w", sys, err)
		}
		t.AddRow(displayName(sys), fmt.Sprintf("%.4f", res.Accuracy.Last()))
	}
	return t, nil
}
