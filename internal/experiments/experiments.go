// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6 plus the appendix). Each experiment has a stable id
// ("table1", "fig3a", ..., "table2") and produces the same rows/series the
// paper plots: convergence experiments run live in-process clusters
// (internal/core), micro-benchmarks time the real GAR implementations
// (internal/gar), and scaling experiments evaluate the deterministic cluster
// cost model (internal/simnet).
package experiments

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

// Options tunes a run.
type Options struct {
	// Quick shrinks dimensions, sweeps and iteration counts so the whole
	// suite finishes in seconds (used by tests and the bench harness);
	// full mode approaches the paper's scales where feasible.
	Quick bool
	// Seed drives all randomness.
	Seed uint64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 20211
	}
	return o.Seed
}

// Renderable is anything that can print itself (metrics.Figure,
// metrics.Table).
type Renderable interface {
	Render(w io.Writer) error
}

// CSVRenderable is implemented by outputs that also support CSV export.
type CSVRenderable interface {
	RenderCSV(w io.Writer) error
}

// Generator produces one experiment's output.
type Generator func(opt Options) (Renderable, error)

// ErrUnknownExperiment is returned by Run for an unknown id.
var ErrUnknownExperiment = errors.New("experiments: unknown experiment")

// registry maps experiment ids to generators; descriptions feed the CLI help.
var registry = map[string]struct {
	gen  Generator
	desc string
}{
	"table1": {Table1, "model catalogue: names, parameter counts, sizes"},
	"fig3a":  {Fig3a, "GAR aggregation time vs number of inputs n"},
	"fig3b":  {Fig3b, "GAR aggregation time vs input dimension d"},
	"fig4a":  {Fig4a, "convergence vs iterations, CifarNet-style task (TF/CPU setup)"},
	"fig4b":  {Fig4b, "convergence vs epochs, ResNet-50-style task (PT/GPU setup)"},
	"fig5a":  {Fig5a, "tolerance to the random-vectors attack"},
	"fig5b":  {Fig5b, "tolerance to the reversed-vectors attack"},
	"fig6a":  {Fig6a, "throughput slowdown vs model, CPU cluster"},
	"fig6b":  {Fig6b, "throughput slowdown vs model, GPU cluster"},
	"fig7":   {Fig7, "per-iteration latency breakdown, CPU cluster"},
	"fig8a":  {Fig8a, "throughput vs number of workers, CPU (TF setup)"},
	"fig8b":  {Fig8b, "throughput vs number of workers, GPU (PT setup)"},
	"fig9a":  {Fig9a, "decentralized communication time vs n"},
	"fig9b":  {Fig9b, "decentralized communication time vs d"},
	"fig10a": {Fig10a, "throughput vs number of Byzantine workers"},
	"fig10b": {Fig10b, "throughput vs number of Byzantine servers"},
	"fig11a": {Fig11a, "convergence vs wall-clock time, CifarNet-style task"},
	"fig11b": {Fig11b, "convergence vs wall-clock time, ResNet-50-style task"},
	"fig12a": {Fig12a, "MDA convergence vs iterations"},
	"fig12b": {Fig12b, "MDA convergence vs time"},
	"fig13a": {Fig13a, "Garfield throughput vs f_w, CPU"},
	"fig13b": {Fig13b, "Garfield throughput vs f_w, GPU"},
	"fig14a": {Fig14a, "Garfield throughput vs f_ps, CPU"},
	"fig14b": {Fig14b, "Garfield throughput vs f_ps, GPU"},
	"fig15":  {Fig15, "PyTorch-style slowdown per model, GPU"},
	"fig16":  {Fig16, "PyTorch-style latency breakdown, GPU (pipelined)"},
	"table2": {Table2, "parameter-vector alignment: cos(phi) of top difference vectors"},

	// Extension experiments (beyond the paper's figure set; DESIGN.md §6).
	"ext-momentum":   {ExtMomentum, "EXT: worker momentum restoring the GAR variance condition"},
	"ext-gars":       {ExtGARs, "EXT: every robust GAR under the reversed-vectors attack"},
	"ext-stale":      {ExtStale, "EXT: staleness fault vs robust aggregation"},
	"ext-throughput": {ExtLiveThroughput, "EXT: live in-process throughput of every protocol"},
	"ext-async":      {ExtAsyncThroughput, "EXT: async bounded-staleness vs lockstep SSMW under a straggler"},
	"ext-compress":   {ExtCompress, "EXT: gradient compression codecs — bytes-on-wire vs accuracy vs attack rejection"},
	"chaos":          {ExtChaos, "EXT: chaos-engine invariants (safety/liveness/determinism/corruption/membership churn) per preset"},
}

// IDs returns all experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Describe returns the one-line description of an experiment id.
func Describe(id string) (string, error) {
	e, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
	}
	return e.desc, nil
}

// Run generates experiment id and renders it to w as an aligned table.
func Run(id string, opt Options, w io.Writer) error {
	r, err := generate(id, opt)
	if err != nil {
		return err
	}
	return r.Render(w)
}

// RunCSV generates experiment id and renders it to w as CSV.
func RunCSV(id string, opt Options, w io.Writer) error {
	r, err := generate(id, opt)
	if err != nil {
		return err
	}
	c, ok := r.(CSVRenderable)
	if !ok {
		return fmt.Errorf("experiments: %s has no CSV form", id)
	}
	return c.RenderCSV(w)
}

func generate(id string, opt Options) (Renderable, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q (known: %v)", ErrUnknownExperiment, id, IDs())
	}
	r, err := e.gen(opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	return r, nil
}
