package experiments

import (
	"garfield/internal/chaos"
)

// ExtChaos runs the chaos engine's invariant suites over every chaos preset
// and tabulates the verdicts: one row per (preset, invariant) with the
// measured evidence. It is the experiment-harness face of internal/chaos —
// the same properties the package's tests assert in CI, rendered for humans.
// Verdicts render even when an invariant fails — the table is the
// diagnostic; the chaos package tests and the CLI exit code are the
// enforcement points.
func ExtChaos(opt Options) (Renderable, error) {
	reports, err := chaos.RunAll(chaos.Options{Quick: opt.Quick, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	t, _ := chaos.ReportTable(
		"Chaos invariants: seeded fault programs vs machine-checked resilience properties", reports)
	return t, nil
}
