package experiments

import (
	"fmt"

	"garfield/internal/core"
	"garfield/internal/gar"
	"garfield/internal/metrics"
	"garfield/internal/scenario"
)

// ExtAsyncThroughput compares the lockstep and bounded-staleness SSMW
// engines under a straggler fault schedule: one worker serves every request
// late, so the synchronous q = n runner is paced by it while the async
// engine keeps updating from the fresh quorum. The table reports updates/sec
// and final accuracy for both modes plus the async engine's staleness
// profile — the throughput-vs-freshness trade the paper's asynchronous
// deployment mode is about.
func ExtAsyncThroughput(opt Options) (Renderable, error) {
	// The straggler delay is the lockstep engine's per-iteration sleep
	// floor; it is sized well above scheduler noise so the reported ratio
	// reflects the engines, not machine load.
	const delayMS = 10
	iters := 60
	if opt.Quick {
		iters = 16
	}
	m, d := cifarStyleTask(opt)
	base := scenario.Spec{
		Topology: scenario.TopoSSMW,
		NW:       9, FW: 1,
		Rule:  gar.NameMedian,
		Model: m, Dataset: d, BatchSize: 16,
		LR:         scenario.LRSpec{Kind: scenario.LRConstant, Base: 0.25},
		Seed:       opt.seed(),
		Iterations: iters,
		Faults: []scenario.Fault{
			{After: 1, Kind: scenario.FaultSlowWorker, Node: 8, DelayMS: delayMS},
		},
	}

	sync := base
	syncRes, err := scenario.Run(sync)
	if err != nil {
		return nil, fmt.Errorf("ext-async sync: %w", err)
	}
	async := base
	async.Async = true
	async.StalenessBound = 3
	asyncRes, err := scenario.Run(async)
	if err != nil {
		return nil, fmt.Errorf("ext-async async: %w", err)
	}

	t := &metrics.Table{
		Title: fmt.Sprintf("Extension: async vs lockstep SSMW under a straggler (%d iterations, one worker %dms slow)",
			iters, delayMS),
		Header: []string{"Engine", "updates/sec", "final accuracy", "avg staleness", "stale drops"},
	}
	addRow := func(name string, res *core.Result) {
		t.AddRow(name,
			fmt.Sprintf("%.1f", res.UpdatesPerSec()),
			fmt.Sprintf("%.4f", res.Accuracy.Last()),
			fmt.Sprintf("%.2f", res.AvgStaleness),
			fmt.Sprintf("%d", res.StaleDrops))
	}
	addRow("lockstep (q = n)", syncRes)
	addRow("async (q = n-f, tau = 3)", asyncRes)
	speedup := 0.0
	if s := syncRes.UpdatesPerSec(); s > 0 {
		speedup = asyncRes.UpdatesPerSec() / s
	}
	t.AddRow("async speedup", fmt.Sprintf("%.2fx", speedup), "", "", "")
	return t, nil
}
