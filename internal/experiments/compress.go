package experiments

import (
	"fmt"

	"garfield/internal/attack"
	"garfield/internal/gar"
	"garfield/internal/metrics"
	"garfield/internal/scenario"
)

// ExtCompress is the gradient-compression study: for each codec it measures
// bytes-on-wire (pull-reply payloads against their fp64 baseline),
// throughput, and — the part that matters for a Byzantine-ML system — final
// accuracy both honestly and under the collusion attacks. The robustness
// question is whether a lossy codec lets little-is-enough / fall-of-empires
// slip past the selection GARs: quantization noise shrinks the margin those
// attacks already exploit, so the study pins Krum-family rules against them
// under every codec. A codec passes when honest accuracy matches fp64 and
// the attacked runs still converge (the GAR keeps rejecting the attack).
func ExtCompress(opt Options) (Renderable, error) {
	iters := 120
	if opt.Quick {
		iters = 30
	}
	m, d := cifarStyleTask(opt)
	// nw=15, fw=3 satisfies bulyan's 4f+3; topK keeps 25% of coordinates.
	const nw, fw = 15, 3
	codecs := []struct {
		name string
		topK int
	}{
		{"fp64", 0},
		{"fp16", 0},
		{"int8", 0},
		{"topk", 0}, // budget filled in below (depends on model dim)
	}
	// A quarter of the gradient's coordinates per reply; the model is
	// linear over d.Dim inputs with 10 classes (plus biases), so derive the
	// budget from the task rather than hard-coding a dimension.
	topKBudget := (d.Dim*10 + 10) / 4

	base := func(codec string, topK int) scenario.Spec {
		return scenario.Spec{
			Topology: scenario.TopoSSMW,
			Model:    m, Dataset: d,
			BatchSize: 16,
			NW:        nw, FW: fw,
			Rule:        gar.NameMDA,
			Compression: codec, TopK: topK,
			LR:   scenario.LRSpec{Kind: scenario.LRConstant, Base: 0.25},
			Seed: opt.seed(), Iterations: iters,
		}
	}

	t := &metrics.Table{
		Title: fmt.Sprintf("Extension: gradient compression — bytes vs accuracy vs robustness over %d iterations (nw=%d, fw=%d)", iters, nw, fw),
		Header: []string{"codec", "reply KB", "ratio", "updates/sec",
			"acc honest", "acc LIE/mda", "acc empire/krum", "acc LIE/bulyan"},
	}
	for _, codec := range codecs {
		topK := codec.topK
		if codec.name == "topk" {
			topK = topKBudget
		}

		honest := base(codec.name, topK)
		honest.FW = 0 // no declared Byzantine workers in the honest run
		resHonest, err := scenario.Run(honest)
		if err != nil {
			return nil, fmt.Errorf("ext-compress %s honest: %w", codec.name, err)
		}

		attacked := func(rule, atk string) (float64, error) {
			sp := base(codec.name, topK)
			sp.Rule = rule
			sp.WorkerAttack = scenario.AttackSpec{Name: atk}
			sp.AttackSelfPeers = 3
			res, err := scenario.Run(sp)
			if err != nil {
				return 0, fmt.Errorf("ext-compress %s %s/%s: %w", codec.name, rule, atk, err)
			}
			return res.Accuracy.Last(), nil
		}
		lieMDA, err := attacked(gar.NameMDA, attack.NameLittleIsEnough)
		if err != nil {
			return nil, err
		}
		empireKrum, err := attacked(gar.NameKrum, attack.NameFallOfEmpires)
		if err != nil {
			return nil, err
		}
		lieBulyan, err := attacked(gar.NameBulyan, attack.NameLittleIsEnough)
		if err != nil {
			return nil, err
		}

		w := resHonest.Wire
		t.AddRow(codec.name,
			fmt.Sprintf("%.1f", float64(w.ReplyPayloadBytes)/1024),
			fmt.Sprintf("%.2fx", w.ReplyCompressionRatio()),
			fmt.Sprintf("%.1f", resHonest.UpdatesPerSec()),
			fmt.Sprintf("%.4f", resHonest.Accuracy.Last()),
			fmt.Sprintf("%.4f", lieMDA),
			fmt.Sprintf("%.4f", empireKrum),
			fmt.Sprintf("%.4f", lieBulyan))
	}
	return t, nil
}
