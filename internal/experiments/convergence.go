package experiments

import (
	"fmt"

	"garfield/internal/attack"
	"garfield/internal/core"
	"garfield/internal/gar"
	"garfield/internal/metrics"
	"garfield/internal/scenario"
	"garfield/internal/tensor"
)

// The convergence experiments run live in-process clusters through the
// declarative scenario engine: each experiment is a scenario.Spec (task +
// deployment) crossed with the systems under comparison. Two task scales
// stand in for the paper's CifarNet/CPU and ResNet-50/GPU settings; the
// cluster shapes follow Section 6.1's setups, scaled down in quick mode.

// cifarStyleTask is the CifarNet stand-in: a linear softmax over a CIFAR-
// shaped synthetic mixture (flattened to a reduced dimension so the full
// suite stays tractable).
func cifarStyleTask(opt Options) (scenario.ModelSpec, scenario.DatasetSpec) {
	dim, train, test := 128, 3000, 600
	if opt.Quick {
		dim, train, test = 24, 500, 200
	}
	return scenario.ModelSpec{Kind: scenario.ModelLinear, In: dim, Classes: 10},
		scenario.DatasetSpec{
			Name: "cifar-style", Dim: dim, Classes: 10,
			Train: train, Test: test, Separation: 1.1, Noise: 1.0, Seed: opt.seed(),
		}
}

// resnetStyleTask is the ResNet-50 stand-in: a one-hidden-layer MLP (deeper,
// non-convex) over the same data family.
func resnetStyleTask(opt Options) (scenario.ModelSpec, scenario.DatasetSpec) {
	dim, hidden, train, test := 128, 48, 3000, 600
	if opt.Quick {
		dim, hidden, train, test = 24, 12, 500, 200
	}
	return scenario.ModelSpec{Kind: scenario.ModelMLP, In: dim, Hidden: hidden, Classes: 10},
		scenario.DatasetSpec{
			Name: "resnet-style", Dim: dim, Classes: 10,
			Train: train, Test: test, Separation: 1.0, Noise: 1.0, Seed: opt.seed() + 1,
		}
}

// tfSetup is the paper's TensorFlow deployment (nw=18, fw=3, nps=6, fps=1,
// batch 32, Bulyan + asynchrony), scaled down in quick mode. The returned
// spec has no topology yet: convergenceFigure runs it once per system.
func tfSetup(opt Options, m scenario.ModelSpec, d scenario.DatasetSpec) scenario.Spec {
	sp := scenario.Spec{
		Model: m, Dataset: d,
		BatchSize: 32,
		NW:        18, FW: 3,
		NPS: 6, FPS: 1,
		Rule: gar.NameBulyan,
		LR:   scenario.LRSpec{Kind: scenario.LRConstant, Base: 0.25},
		Seed: opt.seed(),
	}
	if opt.Quick {
		sp.NW, sp.FW = 9, 1
		sp.NPS, sp.FPS = 4, 1
		sp.BatchSize = 16
	}
	return sp
}

// ptSetup is the paper's PyTorch deployment (nw=10, fw=3, nps=3, fps=1,
// batch 100, Multi-Krum + synchrony).
func ptSetup(opt Options, m scenario.ModelSpec, d scenario.DatasetSpec) scenario.Spec {
	sp := scenario.Spec{
		Model: m, Dataset: d,
		BatchSize: 100,
		NW:        10, FW: 3,
		NPS: 3, FPS: 1,
		Rule:       gar.NameMultiKrum,
		SyncQuorum: true,
		LR:         scenario.LRSpec{Kind: scenario.LRConstant, Base: 0.25},
		Seed:       opt.seed(),
	}
	if opt.Quick {
		sp.BatchSize = 16
	}
	return sp
}

// runSystem runs the spec as the named system (a scenario topology) on a
// fresh cluster through the scenario engine.
func runSystem(system string, sp scenario.Spec, ro core.RunOptions) (*core.Result, error) {
	sp.Topology = system
	sp.Iterations, sp.AccEvery = ro.Iterations, ro.AccEvery
	res, err := scenario.Run(sp)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", system, err)
	}
	return res, nil
}

// convergenceFigure runs each system on a fresh cluster over the same task
// and collects accuracy series; overTime selects the x axis (iterations vs
// seconds).
func convergenceFigure(title, xlabel string, systems []string, sp scenario.Spec,
	ro core.RunOptions, overTime bool) (Renderable, error) {
	fig := &metrics.Figure{Title: title, XLabel: xlabel, YLabel: "accuracy"}
	for _, system := range systems {
		res, err := runSystem(system, sp, ro)
		if err != nil {
			return nil, err
		}
		src := res.Accuracy
		if overTime {
			src = res.AccuracyOverTime
		}
		s := fig.AddSeries(displayName(system))
		s.Points = append(s.Points, src.Points...)
	}
	return fig, nil
}

func displayName(system string) string {
	switch system {
	case scenario.TopoVanilla:
		return "Vanilla"
	case scenario.TopoSSMW:
		return "SSMW"
	case scenario.TopoMSMW:
		return "MSMW"
	case scenario.TopoCrashTolerant:
		return "Crash-tolerant"
	case scenario.TopoDecentralized:
		return "Decentralized"
	case scenario.TopoAggregaThor:
		return "AggregaThor"
	default:
		return system
	}
}

func convIters(opt Options) core.RunOptions {
	if opt.Quick {
		return core.RunOptions{Iterations: 30, AccEvery: 10}
	}
	return core.RunOptions{Iterations: 200, AccEvery: 20}
}

// fig4aSystems are the curves of Figure 4a.
func fig4aSystems() []string {
	return []string{"vanilla", "crash-tolerant", "ssmw", "msmw", "decentralized", "aggregathor"}
}

// fig4bSystems are the curves of Figure 4b (no AggregaThor: it is
// TensorFlow-only in the paper).
func fig4bSystems() []string {
	return []string{"vanilla", "crash-tolerant", "ssmw", "msmw", "decentralized"}
}

// Fig4a regenerates convergence-vs-iterations on the CifarNet-style task
// under the TensorFlow setup.
func Fig4a(opt Options) (Renderable, error) {
	m, d := cifarStyleTask(opt)
	return convergenceFigure(
		"Figure 4a: Convergence with CifarNet-style task (TF setup)",
		"iterations", fig4aSystems(), tfSetup(opt, m, d), convIters(opt), false)
}

// Fig4b regenerates convergence-vs-iterations on the ResNet-50-style task
// under the PyTorch setup.
func Fig4b(opt Options) (Renderable, error) {
	m, d := resnetStyleTask(opt)
	return convergenceFigure(
		"Figure 4b: Convergence with ResNet-50-style task (PT setup)",
		"iterations", fig4bSystems(), ptSetup(opt, m, d), convIters(opt), false)
}

// Fig11a regenerates convergence-vs-time for the Figure 4a runs.
func Fig11a(opt Options) (Renderable, error) {
	m, d := cifarStyleTask(opt)
	return convergenceFigure(
		"Figure 11a: Convergence over time, CifarNet-style task",
		"time (s)", []string{"vanilla", "aggregathor", "crash-tolerant", "msmw"},
		tfSetup(opt, m, d), convIters(opt), true)
}

// Fig11b regenerates convergence-vs-time for the Figure 4b runs.
func Fig11b(opt Options) (Renderable, error) {
	m, d := resnetStyleTask(opt)
	return convergenceFigure(
		"Figure 11b: Convergence over time, ResNet-50-style task",
		"time (s)", []string{"vanilla", "crash-tolerant", "msmw"},
		ptSetup(opt, m, d), convIters(opt), true)
}

// fig5Spec is the attack experiment setup: CifarNet-style task, 11 workers
// and (in the fault-tolerant systems) a replicated server, 1 Byzantine node
// on each side. The attacks are live instances deliberately shared across
// the compared systems: a stochastic attack's stream then continues from
// one system run to the next, as the paper's methodology samples one
// adversary across its comparison.
func fig5Spec(opt Options, workerAtk, serverAtk attack.Attack) scenario.Spec {
	m, d := cifarStyleTask(opt)
	sp := scenario.Spec{
		Model: m, Dataset: d,
		BatchSize: 32,
		NW:        11, FW: 1,
		NPS: 4, FPS: 1,
		Rule:             gar.NameMultiKrum,
		SyncQuorum:       true,
		LiveWorkerAttack: workerAtk,
		LiveServerAttack: serverAtk,
		LR:               scenario.LRSpec{Kind: scenario.LRConstant, Base: 0.25},
		Seed:             opt.seed(),
	}
	if opt.Quick {
		sp.BatchSize = 16
	}
	return sp
}

func fig5(opt Options, title string, workerAtk, serverAtk attack.Attack) (Renderable, error) {
	return convergenceFigure(title, "iterations",
		[]string{"vanilla", "crash-tolerant", "msmw"},
		fig5Spec(opt, workerAtk, serverAtk), convIters(opt), false)
}

// Fig5a regenerates the random-vectors attack experiment.
func Fig5a(opt Options) (Renderable, error) {
	rng := tensor.NewRNG(opt.seed() ^ 0xa77ac)
	return fig5(opt, "Figure 5a: Tolerance to the random-vectors attack",
		attack.NewRandom(rng, 1.0), attack.NewRandom(rng.Split(), 1.0))
}

// Fig5b regenerates the reversed-vectors attack experiment.
func Fig5b(opt Options) (Renderable, error) {
	return fig5(opt, "Figure 5b: Tolerance to the reversed-vectors attack",
		attack.Reversed{Factor: -100}, attack.Reversed{Factor: -100})
}

// Fig12a regenerates MDA convergence vs iterations (TF setup, MDA GAR).
func Fig12a(opt Options) (Renderable, error) {
	return fig12(opt, "Figure 12a: Convergence with MDA (iterations)", false)
}

// Fig12b regenerates MDA convergence vs time.
func Fig12b(opt Options) (Renderable, error) {
	return fig12(opt, "Figure 12b: Convergence with MDA (time)", true)
}

func fig12(opt Options, title string, overTime bool) (Renderable, error) {
	m, d := cifarStyleTask(opt)
	sp := tfSetup(opt, m, d)
	sp.Rule = gar.NameMDA
	xlabel := "iterations"
	if overTime {
		xlabel = "time (s)"
	}
	return convergenceFigure(title, xlabel,
		[]string{"vanilla", "crash-tolerant", "msmw"}, sp, convIters(opt), overTime)
}

// Table2 regenerates the parameter-vector alignment study: during an MSMW
// run, every sampleEvery steps the correct replicas' parameter vectors are
// collected, the two largest-norm pairwise difference vectors are kept, and
// cos(phi) between them is reported. The cluster is materialized through
// the scenario engine but driven in chunks directly (the study needs access
// to replica state between chunks).
func Table2(opt Options) (Renderable, error) {
	iters, warmup, sampleEvery := 205, 100, 5
	if opt.Quick {
		iters, warmup, sampleEvery = 45, 10, 5
	}
	m, d := cifarStyleTask(opt)
	sp := tfSetup(opt, m, d)
	sp.Topology = scenario.TopoMSMW
	sp.Iterations = iters
	// Contraction runs every other iteration, so the replicas sampled at
	// odd chunk boundaries carry genuine divergence — per-iteration
	// contraction would make the correct replicas bit-identical and the
	// alignment study vacuous.
	sp.ModelAggEvery = 2
	c, err := scenario.NewCluster(sp)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	honest := sp.NPS - sp.FPS

	table := &metrics.Table{
		Title:  "Table 2: Parameter-vector alignment at correct servers",
		Header: []string{"Step", "cos(phi)", "max diff1", "max diff2"},
	}
	for done := 0; done < iters; done += sampleEvery {
		chunk := sampleEvery
		if done+chunk > iters {
			chunk = iters - done
		}
		if _, err := c.RunMSMW(core.RunOptions{Iterations: chunk, AccEvery: 0}); err != nil {
			return nil, err
		}
		step := done + chunk
		if step <= warmup {
			continue
		}
		params := make([]tensor.Vector, honest)
		for r := 0; r < honest; r++ {
			params[r] = c.Server(r).Params()
		}
		cosPhi, n1, n2, err := topDiffAlignment(params)
		if err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprintf("%d", step),
			fmt.Sprintf("%.6f", cosPhi),
			fmt.Sprintf("%.6g", n1),
			fmt.Sprintf("%.6g", n2))
	}
	return table, nil
}

// topDiffAlignment computes all pairwise difference vectors of the given
// parameter vectors, keeps the two with the largest norms, and returns the
// cosine of the angle between them along with both norms.
func topDiffAlignment(params []tensor.Vector) (cosPhi, norm1, norm2 float64, err error) {
	type diff struct {
		v    tensor.Vector
		norm float64
	}
	var diffs []diff
	for i := 0; i < len(params); i++ {
		for j := i + 1; j < len(params); j++ {
			d, err := params[i].Sub(params[j])
			if err != nil {
				return 0, 0, 0, err
			}
			diffs = append(diffs, diff{v: d, norm: d.Norm()})
		}
	}
	if len(diffs) < 2 {
		return 0, 0, 0, fmt.Errorf("experiments: need >= 3 correct replicas, got %d", len(params))
	}
	// Select top-2 by norm.
	best, second := 0, 1
	if diffs[second].norm > diffs[best].norm {
		best, second = second, best
	}
	for k := 2; k < len(diffs); k++ {
		switch {
		case diffs[k].norm > diffs[best].norm:
			second = best
			best = k
		case diffs[k].norm > diffs[second].norm:
			second = k
		}
	}
	// Align signs: a difference vector's orientation is arbitrary (i-j vs
	// j-i), so compare absolute alignment as the paper's methodology
	// implies for "how aligned" the differences are.
	c, err := diffs[best].v.CosineSimilarity(diffs[second].v)
	if err != nil {
		return 0, 0, 0, err
	}
	if c < 0 {
		c = -c
	}
	return c, diffs[best].norm, diffs[second].norm, nil
}
