package experiments

import (
	"fmt"
	"strconv"
	"time"

	"garfield/internal/gar"
	"garfield/internal/metrics"
	"garfield/internal/model"
	"garfield/internal/tensor"
)

// Table1 regenerates the paper's model catalogue.
func Table1(Options) (Renderable, error) {
	t := &metrics.Table{
		Title:  "Table 1: Models used to evaluate Garfield",
		Header: []string{"Model", "# parameters", "Size (MB)"},
	}
	for _, p := range model.Table1() {
		t.AddRow(p.Name, strconv.Itoa(p.Params), fmt.Sprintf("%.1f", p.SizeMB()))
	}
	return t, nil
}

// microGARs returns the five rules of Figure 3 in the paper's legend order.
func microGARs() []string {
	return []string{gar.NameBulyan, gar.NameMDA, gar.NameMultiKrum, gar.NameMedian, gar.NameAverage}
}

// timeAggregation measures the wall-clock aggregation time of one rule over
// freshly generated inputs, averaged over reps runs (the paper averages 21).
func timeAggregation(rule string, n, f, d, reps int, seed uint64) (time.Duration, error) {
	r, err := gar.New(rule, n, f)
	if err != nil {
		return 0, err
	}
	rng := tensor.NewRNG(seed)
	inputs := make([]tensor.Vector, n)
	for i := range inputs {
		inputs[i] = rng.NormalVector(d, 0, 1)
	}
	// One warm-up run outside the measurement.
	if _, err := r.Aggregate(inputs); err != nil {
		return 0, err
	}
	start := time.Now()
	for rep := 0; rep < reps; rep++ {
		if _, err := r.Aggregate(inputs); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(reps), nil
}

// fig3F is the paper's choice of declared Byzantine inputs for the
// micro-benchmark: f = floor((n-3)/4), making n = 7 the smallest valid n.
func fig3F(n int) int { return (n - 3) / 4 }

// Fig3a regenerates the aggregation-time-vs-n micro-benchmark (d fixed).
func Fig3a(opt Options) (Renderable, error) {
	d := 1_000_000 // paper: 1e7; scaled to keep the full suite tractable
	reps := 5
	ns := []int{7, 9, 11, 13, 15, 17, 19, 21, 23}
	if opt.Quick {
		d = 10_000
		reps = 2
		ns = []int{7, 11, 15, 19, 23}
	}
	fig := &metrics.Figure{
		Title:  "Figure 3a: GAR aggregation time vs number of inputs (d=" + strconv.Itoa(d) + ")",
		XLabel: "n",
		YLabel: "aggregation time (sec)",
	}
	for _, rule := range microGARs() {
		s := fig.AddSeries(rule)
		for _, n := range ns {
			f := 0
			if rule != gar.NameAverage {
				f = fig3F(n)
			}
			dt, err := timeAggregation(rule, n, f, d, reps, opt.seed())
			if err != nil {
				return nil, err
			}
			s.Append(float64(n), dt.Seconds())
		}
	}
	return fig, nil
}

// Fig3b regenerates the aggregation-time-vs-d micro-benchmark (n fixed).
func Fig3b(opt Options) (Renderable, error) {
	n := 17
	f := fig3F(n)
	reps := 5
	ds := []int{100_000, 300_000, 1_000_000, 3_000_000, 10_000_000}
	if opt.Quick {
		reps = 2
		ds = []int{1_000, 10_000, 100_000}
	}
	fig := &metrics.Figure{
		Title:  "Figure 3b: GAR aggregation time vs input dimension (n=17)",
		XLabel: "d",
		YLabel: "aggregation time (sec)",
	}
	for _, rule := range microGARs() {
		s := fig.AddSeries(rule)
		for _, d := range ds {
			fr := f
			if rule == gar.NameAverage {
				fr = 0
			}
			dt, err := timeAggregation(rule, n, fr, d, reps, opt.seed())
			if err != nil {
				return nil, err
			}
			s.Append(float64(d), dt.Seconds())
		}
	}
	return fig, nil
}
